// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment end to end
// (building, profiling, and simulating the full workload suite) and reports
// the experiment's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints the measured analogues of the
// paper's results alongside the harness cost.
package repro

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// BenchmarkTable1 regenerates Table 1 (program reference behaviour) and
// reports the suite-wide general-pointer share of loads.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		var general, loads float64
		for _, row := range r.Rows {
			general += row.GeneralPct * float64(row.Refs)
			loads += float64(row.Refs)
		}
		b.ReportMetric(100*general/loads, "%general-loads")
	}
}

// BenchmarkFigure2 regenerates Figure 2 (impact of load latency on IPC) and
// reports the weighted-average integer IPC gain of 1-cycle loads.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IntAvg[1]/r.IntAvg[0], "int-1cyc-gain")
		b.ReportMetric(r.IntAvg[2]/r.IntAvg[0], "int-perfect-gain")
	}
}

// BenchmarkFigure3 regenerates Figure 3 (load offset distributions) and
// reports the zero-offset share of general-pointer loads (averaged over the
// plotted benchmarks).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		var zero float64
		var n int
		for _, sr := range r.Series {
			if sr.RefType.String() == "general" {
				zero += sr.Cumulative[0]
				n++
			}
		}
		b.ReportMetric(100*zero/float64(n), "%zero-offset-general")
	}
}

// BenchmarkTable3 regenerates Table 3 (statistics and prediction failure
// rates without software support) and reports the mean load failure rate.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		var fail float64
		for _, row := range r.Rows {
			fail += row.LoadFail32
		}
		b.ReportMetric(100*fail/float64(len(r.Rows)), "%load-fail-hw")
	}
}

// BenchmarkTable4 regenerates Table 4 (software support) and reports the
// mean remaining load failure rate and its no-R+R column.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		var all, norr float64
		for _, row := range r.Rows {
			all += row.LoadFailAll
			norr += row.LoadFailNoRR
		}
		n := float64(len(r.Rows))
		b.ReportMetric(100*all/n, "%load-fail-sw")
		b.ReportMetric(100*norr/n, "%load-fail-sw-noRR")
	}
}

// BenchmarkFigure6 regenerates Figure 6 (speedups) and reports the paper's
// headline numbers: weighted-average integer and FP speedups with hardware
// only and with software support (32-byte blocks).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.IntAvg[2], "int-speedup-hw")
		b.ReportMetric(r.IntAvg[3], "int-speedup-hwsw")
		b.ReportMetric(r.FPAvg[2], "fp-speedup-hw")
		b.ReportMetric(r.FPAvg[3], "fp-speedup-hwsw")
	}
}

// BenchmarkTable6 regenerates Table 6 (bandwidth overhead) and reports the
// worst-case overhead with software support, with and without R+R
// speculation.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		maxRR, maxNoRR := 0.0, 0.0
		for _, row := range r.Rows {
			if row.SWRR > maxRR {
				maxRR = row.SWRR
			}
			if row.SWNoRR > maxNoRR {
				maxNoRR = row.SWNoRR
			}
		}
		b.ReportMetric(100*maxRR, "%max-bw-sw-rr")
		b.ReportMetric(100*maxNoRR, "%max-bw-sw-norr")
	}
}

// BenchmarkAblations regenerates the ablation study and reports the
// geometric-mean cost of restricting the cache to one outstanding miss.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		r, err := s.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		var mshr float64
		for _, row := range r.Rows {
			mshr += row.MSHR1Rel
		}
		b.ReportMetric(mshr/float64(len(r.Rows)), "mshr1-rel-cycles")
	}
}

// BenchmarkPipeline is the repo's perf-trajectory benchmark: it measures
// timing-simulator throughput (cycles simulated per second) on the
// compress workload for the baseline and FAC machines, and writes the
// run records plus throughput metrics to BENCH_pipeline.json — the
// artifact successive PRs diff (`go run ./cmd/experiments -diff`) to
// detect simulator performance or statistics regressions. Set BENCH_OUT
// to redirect the artifact (CI smoke runs do, so a measurement pass
// never clobbers the committed trajectory file); see docs/PERFORMANCE.md.
func BenchmarkPipeline(b *testing.B) {
	b.ReportAllocs()
	w, err := workload.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.Build(w, workload.BaseToolchain())
	if err != nil {
		b.Fatal(err)
	}
	machines := []experiments.Machine{experiments.MBase32, experiments.MFAC32}
	rep := obs.NewReport("go test -bench BenchmarkPipeline", runtime.Version())
	var cycles, insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range machines {
			cfg, err := experiments.MachineConfig(m)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Run(p, cfg, 0)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Stats.Cycles
			insts += res.Stats.Insts
			if i == 0 {
				rep.Add(res.Stats.Record(w.Name, w.Class.String(), "base", string(m)))
			}
		}
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(cycles)/sec/1e6, "Mcycles/s")
	b.ReportMetric(float64(insts)/sec/1e6, "Minsts/s")
	rep.Metrics = map[string]float64{
		"mcycles_per_sec": float64(cycles) / sec / 1e6,
		"minsts_per_sec":  float64(insts) / sec / 1e6,
	}
	data, err := rep.Encode()
	if err != nil {
		b.Fatal(err)
	}
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		out = "BENCH_pipeline.json"
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEmulator measures raw functional simulation speed
// (instructions per second) on the compress workload.
func BenchmarkEmulator(b *testing.B) {
	w, err := workload.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.Build(w, workload.BaseToolchain())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		e := emu.New(p)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		insts += e.InstCount
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minsts/s")
}

// BenchmarkTimingSimulator measures cycle-level simulation speed on the
// compress workload with fast address calculation enabled.
func BenchmarkTimingSimulator(b *testing.B) {
	w, err := workload.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.Build(w, workload.BaseToolchain())
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.FAC = true
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(p, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Stats.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minsts/s")
}

// BenchmarkCompiler measures end-to-end compile+assemble+link speed on the
// largest workload source.
func BenchmarkCompiler(b *testing.B) {
	w, err := workload.ByName("nbody")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := workload.Build(w, workload.FACToolchain()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelatedWork regenerates the Section 6 comparisons: fast address
// calculation vs the Golden-Mudge load target buffer, and the LUI vs AGI
// pipeline organizations.
func BenchmarkRelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		ltbRes, err := s.CompareLTB()
		if err != nil {
			b.Fatal(err)
		}
		var facWins int
		for _, row := range ltbRes.Rows {
			if row.FACSW >= row.LTBLast {
				facWins++
			}
		}
		b.ReportMetric(float64(facWins), "fac-beats-ltb-last")
		agiRes, err := s.CompareAGI()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(agiRes.IntAvg[0], "agi-int-speedup")
		b.ReportMetric(agiRes.IntAvg[2], "facsw-int-speedup")
	}
}
