// Speedup: one benchmark measured the way the paper's Figure 6 measures it
// — baseline machine, hardware-only fast address calculation, and hardware
// plus the Section 4 compiler/linker support — with the Table 6 bandwidth
// overhead for each configuration.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	name := flag.String("benchmark", "qsortst", "workload to measure")
	flag.Parse()

	w, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	baseProg, err := workload.Build(w, workload.BaseToolchain())
	if err != nil {
		log.Fatal(err)
	}
	facProg, err := workload.Build(w, workload.FACToolchain())
	if err != nil {
		log.Fatal(err)
	}

	baseCfg := pipeline.DefaultConfig()
	facCfg := baseCfg
	facCfg.FAC = true

	baseline, err := core.Run(baseProg, baseCfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := core.Run(baseProg, facCfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	hwsw, err := core.Run(facProg, facCfg, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (%s)\n", w.Name, w.Analogue)
	fmt.Printf("output: %s", baseline.Output)
	fmt.Printf("\n%-28s %12s %8s %9s %10s %10s\n", "configuration", "cycles", "IPC", "speedup", "load-fail", "bandwidth")
	row := func(name string, r core.Result) {
		fmt.Printf("%-28s %12d %8.3f %9.3f %9.1f%% %9.1f%%\n",
			name, r.Stats.Cycles, r.IPC(),
			float64(baseline.Stats.Cycles)/float64(r.Stats.Cycles),
			100*r.Stats.LoadFailRate(), 100*r.Stats.BandwidthOverhead())
	}
	row("baseline (2-cycle loads)", baseline)
	row("fast address calc (H/W)", hw)
	row("fast address calc (H/W+S/W)", hwsw)
}
