// Quickstart: the fast-address-calculation predictor on the paper's own
// worked examples (Figure 5), followed by a minimal end-to-end run showing
// the load-use stall of Figure 1 disappearing when fast address calculation
// is enabled.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fac"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

func main() {
	// Part 1 — Figure 5: the predictor circuit on the paper's examples.
	// Geometry: 16KB direct-mapped data cache with 16-byte blocks.
	geom := fac.Config{BlockBits: 4, SetBits: 14}
	examples := []struct {
		desc      string
		base, ofs uint32
		isReg     bool
	}{
		{"(a) load r3, 0(r8)     pointer dereference", 0x100400AC, 0, false},
		{"(b) load r3, 2436(gp)  aligned global pointer", 0x10000000, 2436, false},
		{"(c) load r3, 0x66(sp)  small stack offset", 0x7fff5b84, 0x66, false},
		{"(d) load r3, 364(sp)   carry into the set index", 0x7fff5b84, 364, false},
	}
	fmt.Println("Figure 5 — fast address calculation examples (16KB cache, 16B blocks)")
	for _, e := range examples {
		r := geom.Predict(e.base, e.ofs, e.isReg)
		verdict := "PREDICTED"
		if !r.OK {
			verdict = "MISPREDICT (" + r.Failure.String() + ")"
		}
		fmt.Printf("  %-48s base=%08x ofs=%08x -> speculative %08x, actual %08x  %s\n",
			e.desc, e.base, e.ofs, r.Predicted, e.base+e.ofs, verdict)
	}

	// Part 2 — Figure 1: an untolerated load latency, then the same
	// three-instruction sequence with fast address calculation.
	src := `
	.data
v:	.word 7
	.text
main:
	la   $t0, v          # add rx,ry,rz
	lw   $t1, 0($t0)     # load rw,0(rx)
	sub  $a0, $t1, $t1   # sub ra,rb,rw  (depends on the load)
	li   $v0, 10
	syscall
`
	run := func(facOn bool) uint64 {
		cfg := pipeline.DefaultConfig()
		cfg.PerfectICache = true
		cfg.PerfectDCache = true
		cfg.FAC = facOn
		res, err := core.BuildAndRun(src, prog.DefaultConfig(), cfg, 1000)
		if err != nil {
			log.Fatal(err)
		}
		return res.Stats.Cycles
	}
	base, fast := run(false), run(true)
	fmt.Printf("\nFigure 1 — load-use sequence: %d cycles with 2-cycle loads, %d with fast address calculation (the load-use stall is gone)\n",
		base, fast)
}
