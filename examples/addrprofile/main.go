// Addrprofile: the paper's Section 2 analysis for one benchmark — dynamic
// reference counts, the global/stack/general breakdown of loads, the
// cumulative offset-size distribution per class (Figure 3), and the
// prediction failure rates the raw hardware would see (Table 3).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/fac"
	"repro/internal/profile"
	"repro/internal/workload"
)

func main() {
	name := flag.String("benchmark", "compress", "workload to profile")
	falign := flag.Bool("falign", false, "profile the software-support binary instead")
	flag.Parse()

	w, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	tc := workload.BaseToolchain()
	if *falign {
		tc = workload.FACToolchain()
	}
	p, err := workload.Build(w, tc)
	if err != nil {
		log.Fatal(err)
	}
	geo16 := fac.Config{BlockBits: 4, SetBits: 14}
	geo32 := fac.Config{BlockBits: 5, SetBits: 14}
	prof, _, err := profile.Run(p, 0, geo16, geo32)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s, toolchain %s\n", w.Name, tc.Name)
	fmt.Printf("instructions %d, loads %d (%.1f%%), stores %d (%.1f%%)\n\n",
		prof.Insts,
		prof.Loads, 100*float64(prof.Loads)/float64(prof.Insts),
		prof.Stores, 100*float64(prof.Stores)/float64(prof.Insts))

	fmt.Println("load breakdown and cumulative offset distribution (Figure 3):")
	for rt := profile.Global; rt < profile.NumRefTypes; rt++ {
		share := prof.LoadTypeShare(rt)
		dist := prof.CumulativeOffsetDist(rt)
		var bar strings.Builder
		for k := 0; k <= 16; k += 2 {
			fmt.Fprintf(&bar, "%3.0f%% ", 100*dist[k])
		}
		fmt.Printf("  %-8s %5.1f%% of loads | cum%% at 0/2/4/../16 bits: %s\n",
			rt, 100*share, bar.String())
	}

	fmt.Println("\nprediction failure rates (hardware only):")
	fmt.Printf("  16-byte blocks: loads %5.1f%%  stores %5.1f%%\n",
		100*prof.LoadFailRate(0), 100*prof.StoreFailRate(0))
	fmt.Printf("  32-byte blocks: loads %5.1f%%  stores %5.1f%%\n",
		100*prof.LoadFailRate(1), 100*prof.StoreFailRate(1))
	fmt.Printf("  32-byte blocks, excluding reg+reg mode: loads %5.1f%%  stores %5.1f%%\n",
		100*prof.LoadFailRateNoRR(1), 100*prof.StoreFailRateNoRR(1))
}
