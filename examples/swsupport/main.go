// Swsupport: the effect of each Section 4 software-support ingredient on
// prediction accuracy, measured one knob at a time on a single benchmark —
// global-pointer alignment, stack-frame alignment, static/struct alignment,
// and malloc alignment.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/fac"
	"repro/internal/minic"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/workload"
)

func main() {
	name := flag.String("benchmark", "compress", "workload to measure")
	flag.Parse()
	w, err := workload.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name string
		opts minic.Options
		gp   bool
	}
	none := minic.BaseOptions()
	all := minic.FACOptions()
	onlyStack := none
	onlyStack.AlignStack = true
	onlyStatics := none
	onlyStatics.AlignStatics = true
	onlyStructs := none
	onlyStructs.AlignStructs = true
	onlyMalloc := none
	onlyMalloc.MallocAlign = 32

	variants := []variant{
		{"none (baseline)", none, false},
		{"+ gp alignment", none, true},
		{"+ stack alignment", onlyStack, false},
		{"+ static alignment", onlyStatics, false},
		{"+ struct padding", onlyStructs, false},
		{"+ malloc alignment", onlyMalloc, false},
		{"all (paper Section 4)", all, true},
	}

	geo := fac.Config{BlockBits: 5, SetBits: 14}
	fmt.Printf("benchmark %s — prediction failure rates (32B blocks), one knob at a time\n\n", w.Name)
	fmt.Printf("%-24s %10s %10s %12s\n", "software support", "load-fail", "store-fail", "no-R+R load")
	for _, v := range variants {
		asmText, err := minic.Compile(w.Source, v.opts)
		if err != nil {
			log.Fatal(err)
		}
		obj, err := asm.Assemble(asmText)
		if err != nil {
			log.Fatal(err)
		}
		link := prog.DefaultConfig()
		link.AlignGP = v.gp
		p, err := prog.Link(obj, link)
		if err != nil {
			log.Fatal(err)
		}
		prof, e, err := profile.Run(p, 0, geo)
		if err != nil {
			log.Fatal(err)
		}
		if e.Out.String() != w.Expected {
			log.Fatalf("%s: output changed under %q", w.Name, v.name)
		}
		fmt.Printf("%-24s %9.1f%% %9.1f%% %11.1f%%\n", v.name,
			100*prof.LoadFailRate(0), 100*prof.StoreFailRate(0), 100*prof.LoadFailRateNoRR(0))
	}
}
