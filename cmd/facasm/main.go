// Command facasm assembles and links one assembly translation unit and
// prints a listing of the linked program: sections, symbols, and the
// disassembled, relocated text.
//
// Usage:
//
//	facasm [-align-gp] input.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

func main() {
	alignGP := flag.Bool("align-gp", false, "align the global pointer region (paper Section 4 linker support)")
	locals := flag.Bool("locals", false, "include local (dot-prefixed) labels in the symbol listing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: facasm [-align-gp] input.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	obj, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	cfg := prog.DefaultConfig()
	cfg.AlignGP = *alignGP
	p, err := prog.Link(obj, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("entry    %#08x\n", p.Entry)
	fmt.Printf("gp       %#08x\n", p.GP)
	fmt.Printf("sp       %#08x\n", p.SP)
	fmt.Printf("heap     %#08x\n", p.HeapBase)
	fmt.Printf("text     %#08x..%#08x (%d instructions)\n\n", p.TextBase, p.TextEnd(), len(p.Insts))

	fmt.Println("symbols:")
	for _, name := range p.SymbolNames() {
		if !*locals && name[0] == '.' {
			continue
		}
		fmt.Printf("  %#08x  %s\n", p.Symbols[name], name)
	}
	fmt.Println("\ntext:")
	for i, in := range p.Insts {
		pc := p.TextBase + uint32(i*isa.InstBytes)
		fmt.Printf("  %#08x:  %08x  %v\n", pc, p.Words[i], in)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facasm:", err)
	os.Exit(1)
}
