// Command faclint statically classifies every load/store site of a program
// by fast-address-calculation predictability (internal/staticfac): for each
// site it proves that the predictor can never fail (proven_predictable),
// that it fails on every speculation (proven_failing), or reports unknown.
// This is the compile-time side of the paper's Section 4 argument: software
// alignment support exists precisely to move sites into the provable class.
//
// Usage:
//
//	faclint [-falign] [-block 32] [-sites] -benchmark compress
//	faclint [-falign] -suite [-min-classified 0.5]
//	faclint [-falign] [-json] input.c | input.s
//	faclint -benchmark queens -explain 0x400344
//	faclint -benchmark queens -explain-first
//
// With -explain PC (or -explain-first) the output is a blame chain: the
// reaching-definition walk from the site's imprecise operands down to the
// root causes the analysis can name — a poisoned global cell and the
// store that poisoned it, an escaped stack slot and the address-taking
// instruction, an untracked syscall or call-clobbered register, or a
// function-entry join.
//
// With -json, output follows the deterministic "fac/static/v1" schema
// (docs/ANALYSIS.md). With -min-classified F the exit status is non-zero
// unless at least fraction F of all sites received a non-unknown verdict —
// the CI smoke gate.
//
// Multiple inputs (-suite, or several files) build and analyze in
// parallel; results print in input order, so the output is byte-identical
// to a sequential run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fac"
	"repro/internal/minic"
	"repro/internal/prog"
	"repro/internal/staticfac"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive the full
// CLI in-process and byte-compare output across runs.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench    = fs.String("benchmark", "", "analyze a built-in benchmark")
		suite    = fs.Bool("suite", false, "analyze the full benchmark suite")
		falign   = fs.Bool("falign", false, "compile with software alignment support")
		block    = fs.Int("block", 32, "cache block size for the predictor (16 or 32)")
		setBits  = fs.Uint("setbits", 14, "log2 of the direct-mapped cache span in bytes")
		sites    = fs.Bool("sites", false, "print the per-site verdict table")
		jsonOut  = fs.Bool("json", false, "emit the fac/static/v1 JSON report")
		minFrac  = fs.Float64("min-classified", 0, "exit non-zero unless this fraction of sites is classified")
		explain  = fs.String("explain", "", "print the blame chain for the site at this pc (hex)")
		explain1 = fs.Bool("explain-first", false, "print the blame chain for the first unknown site of each program")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fatal := func(err error) int {
		fmt.Fprintln(stderr, "faclint:", err)
		return 1
	}

	blockBits := uint(5)
	if *block == 16 {
		blockBits = 4
	}
	geom := fac.Config{BlockBits: blockBits, SetBits: *setBits}
	if err := geom.Validate(); err != nil {
		return fatal(err)
	}
	toolchain := "base"
	if *falign {
		toolchain = "falign"
	}

	// A job names one input and knows how to build it; build and analysis
	// both run inside the worker so the expensive work parallelizes.
	type job struct {
		name  string
		build func() (*prog.Program, error)
	}
	var jobs []job
	switch {
	case *suite:
		tc := workload.BaseToolchain()
		if *falign {
			tc = workload.FACToolchain()
		}
		for _, w := range workload.All() {
			w := w
			jobs = append(jobs, job{w.Name, func() (*prog.Program, error) {
				p, err := workload.Build(w, tc)
				if err != nil {
					return nil, fmt.Errorf("build %s: %w", w.Name, err)
				}
				return p, nil
			}})
		}
	case *bench != "":
		jobs = append(jobs, job{*bench, func() (*prog.Program, error) {
			return buildBench(*bench, *falign)
		}})
	default:
		if fs.NArg() == 0 {
			return fatal(fmt.Errorf("need -benchmark NAME, -suite, or input files"))
		}
		for _, arg := range fs.Args() {
			arg := arg
			name := strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
			jobs = append(jobs, job{name, func() (*prog.Program, error) {
				return buildFile(arg, *falign)
			}})
		}
	}

	var explainPC uint64
	if *explain != "" {
		var err error
		explainPC, err = strconv.ParseUint(*explain, 0, 32)
		if err != nil {
			return fatal(fmt.Errorf("bad -explain pc %q: %w", *explain, err))
		}
	}

	// Fan the jobs out over a bounded worker pool. Results land in a
	// per-job slot, so the reporting loop below walks them in input order
	// and the output is identical to a sequential run.
	type result struct {
		p   *prog.Program
		a   *staticfac.Analysis
		err error
	}
	results := make([]result, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p, err := jobs[i].build()
				if err != nil {
					results[i].err = err
					continue
				}
				results[i] = result{p: p, a: staticfac.Analyze(p, geom)}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	var report *staticfac.Report
	var total, classified, ivRefined int
	for i, jb := range jobs {
		res := results[i]
		if res.err != nil {
			return fatal(res.err)
		}
		a := res.a
		if *explain != "" || *explain1 {
			pc := uint32(explainPC)
			if *explain1 {
				first, ok := a.FirstUnknown()
				if !ok {
					fmt.Fprintf(stdout, "%s: no unknown sites\n", jb.name)
					continue
				}
				pc = first
			}
			text, ok := a.Explain(pc)
			if !ok {
				return fatal(fmt.Errorf("%s: %#08x is not a memory-access site", jb.name, pc))
			}
			if len(jobs) > 1 {
				fmt.Fprintf(stdout, "%s:\n", jb.name)
			}
			fmt.Fprint(stdout, text)
			continue
		}
		s := a.Summary()
		total += s.Sites
		classified += s.Sites - s.ByVerdict[staticfac.VerdictUnknown]
		ivRefined += s.IvRefined
		if *jsonOut {
			if report == nil {
				report = staticfac.NewReport(a)
			}
			report.Add(jb.name, toolchain, a)
			continue
		}
		fmt.Fprintf(stdout, "%-10s %-7s sites %4d: proven_predictable %4d, proven_failing %3d, unknown %4d  [classified %5.1f%%]\n",
			jb.name, toolchain, s.Sites,
			s.ByVerdict[staticfac.VerdictPredictable],
			s.ByVerdict[staticfac.VerdictFailing],
			s.ByVerdict[staticfac.VerdictUnknown],
			100*s.Classified())
		if *sites {
			printSites(stdout, a)
		}
	}
	if *explain != "" || *explain1 {
		return 0
	}
	if *jsonOut && report != nil {
		b, err := report.Encode()
		if err != nil {
			return fatal(err)
		}
		stdout.Write(b)
	} else if len(jobs) > 1 {
		frac := 0.0
		if total > 0 {
			frac = float64(classified) / float64(total)
		}
		fmt.Fprintf(stdout, "%-10s %-7s sites %4d classified %d  [%.1f%%]  interval-refined %d\n",
			"TOTAL", toolchain, total, classified, 100*frac, ivRefined)
	}
	if *minFrac > 0 {
		frac := 0.0
		if total > 0 {
			frac = float64(classified) / float64(total)
		}
		if total == 0 || frac < *minFrac {
			fmt.Fprintf(stderr, "faclint: classified fraction %.3f below required %.3f (%d/%d sites)\n",
				frac, *minFrac, classified, total)
			return 1
		}
	}
	return 0
}

func printSites(w io.Writer, p *staticfac.Analysis) {
	fmt.Fprintf(w, "  %-10s %-19s %-22s %-28s %-13s %-13s %s\n",
		"pc", "verdict", "can-fail", "instruction", "base", "offset", "function")
	for i := range p.Sites {
		s := &p.Sites[i]
		canFail := "-"
		if s.CanFail != 0 {
			canFail = s.CanFail.String()
		}
		fn := s.Func
		if !s.Reached {
			fn += " (dead)"
		}
		fmt.Fprintf(w, "  %#08x  %-19s %-22s %-28s %-13s %-13s %s\n",
			s.PC, s.Verdict, canFail, s.Inst.String(), s.Base, s.Offset, fn)
	}
}

func buildBench(name string, falign bool) (*prog.Program, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	tc := workload.BaseToolchain()
	if falign {
		tc = workload.FACToolchain()
	}
	return workload.Build(w, tc)
}

func buildFile(path string, falign bool) (*prog.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	link := prog.DefaultConfig()
	opts := minic.BaseOptions()
	if falign {
		opts = minic.FACOptions()
		link.AlignGP = true
	}
	if strings.HasSuffix(path, ".s") {
		obj, err := asm.Assemble(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Link(obj, link)
	}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		return nil, err
	}
	return core.Build(asmText, link)
}
