// Command faclint statically classifies every load/store site of a program
// by fast-address-calculation predictability (internal/staticfac): for each
// site it proves that the predictor can never fail (proven_predictable),
// that it fails on every speculation (proven_failing), or reports unknown.
// This is the compile-time side of the paper's Section 4 argument: software
// alignment support exists precisely to move sites into the provable class.
//
// Usage:
//
//	faclint [-falign] [-block 32] [-sites] -benchmark compress
//	faclint [-falign] -suite [-min-classified 0.5]
//	faclint [-falign] [-json] input.c | input.s
//
// With -json, output follows the deterministic "fac/static/v1" schema
// (docs/ANALYSIS.md). With -min-classified F the exit status is non-zero
// unless at least fraction F of all sites received a non-unknown verdict —
// the CI smoke gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fac"
	"repro/internal/minic"
	"repro/internal/prog"
	"repro/internal/staticfac"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("benchmark", "", "analyze a built-in benchmark")
		suite   = flag.Bool("suite", false, "analyze the full benchmark suite")
		falign  = flag.Bool("falign", false, "compile with software alignment support")
		block   = flag.Int("block", 32, "cache block size for the predictor (16 or 32)")
		setBits = flag.Uint("setbits", 14, "log2 of the direct-mapped cache span in bytes")
		sites   = flag.Bool("sites", false, "print the per-site verdict table")
		jsonOut = flag.Bool("json", false, "emit the fac/static/v1 JSON report")
		minFrac = flag.Float64("min-classified", 0, "exit non-zero unless this fraction of sites is classified")
	)
	flag.Parse()

	blockBits := uint(5)
	if *block == 16 {
		blockBits = 4
	}
	geom := fac.Config{BlockBits: blockBits, SetBits: *setBits}
	if err := geom.Validate(); err != nil {
		fatal(err)
	}
	toolchain := "base"
	if *falign {
		toolchain = "falign"
	}

	type input struct {
		name string
		p    *prog.Program
	}
	var inputs []input
	switch {
	case *suite:
		tc := workload.BaseToolchain()
		if *falign {
			tc = workload.FACToolchain()
		}
		for _, w := range workload.All() {
			p, err := workload.Build(w, tc)
			if err != nil {
				fatal(fmt.Errorf("build %s: %w", w.Name, err))
			}
			inputs = append(inputs, input{w.Name, p})
		}
	case *bench != "":
		p, err := buildBench(*bench, *falign)
		if err != nil {
			fatal(err)
		}
		inputs = append(inputs, input{*bench, p})
	default:
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("need -benchmark NAME, -suite, or input files"))
		}
		for _, arg := range flag.Args() {
			p, err := buildFile(arg, *falign)
			if err != nil {
				fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
			inputs = append(inputs, input{name, p})
		}
	}

	var report *staticfac.Report
	var total, classified, ivRefined int
	for _, in := range inputs {
		a := staticfac.Analyze(in.p, geom)
		s := a.Summary()
		total += s.Sites
		classified += s.Sites - s.ByVerdict[staticfac.VerdictUnknown]
		ivRefined += s.IvRefined
		if *jsonOut {
			if report == nil {
				report = staticfac.NewReport(a)
			}
			report.Add(in.name, toolchain, a)
			continue
		}
		fmt.Printf("%-10s %-7s sites %4d: proven_predictable %4d, proven_failing %3d, unknown %4d  [classified %5.1f%%]\n",
			in.name, toolchain, s.Sites,
			s.ByVerdict[staticfac.VerdictPredictable],
			s.ByVerdict[staticfac.VerdictFailing],
			s.ByVerdict[staticfac.VerdictUnknown],
			100*s.Classified())
		if *sites {
			printSites(in.p, a)
		}
	}
	if *jsonOut && report != nil {
		b, err := report.Encode()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
	} else if len(inputs) > 1 {
		frac := 0.0
		if total > 0 {
			frac = float64(classified) / float64(total)
		}
		fmt.Printf("%-10s %-7s sites %4d classified %d  [%.1f%%]  interval-refined %d\n",
			"TOTAL", toolchain, total, classified, 100*frac, ivRefined)
	}
	if *minFrac > 0 {
		frac := 0.0
		if total > 0 {
			frac = float64(classified) / float64(total)
		}
		if total == 0 || frac < *minFrac {
			fmt.Fprintf(os.Stderr, "faclint: classified fraction %.3f below required %.3f (%d/%d sites)\n",
				frac, *minFrac, classified, total)
			os.Exit(1)
		}
	}
}

func printSites(p *prog.Program, a *staticfac.Analysis) {
	fmt.Printf("  %-10s %-19s %-22s %-28s %-13s %-13s %s\n",
		"pc", "verdict", "can-fail", "instruction", "base", "offset", "function")
	for i := range a.Sites {
		s := &a.Sites[i]
		canFail := "-"
		if s.CanFail != 0 {
			canFail = s.CanFail.String()
		}
		fn := s.Func
		if !s.Reached {
			fn += " (dead)"
		}
		fmt.Printf("  %#08x  %-19s %-22s %-28s %-13s %-13s %s\n",
			s.PC, s.Verdict, canFail, s.Inst.String(), s.Base, s.Offset, fn)
	}
}

func buildBench(name string, falign bool) (*prog.Program, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	tc := workload.BaseToolchain()
	if falign {
		tc = workload.FACToolchain()
	}
	return workload.Build(w, tc)
}

func buildFile(path string, falign bool) (*prog.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	link := prog.DefaultConfig()
	opts := minic.BaseOptions()
	if falign {
		opts = minic.FACOptions()
		link.AlignGP = true
	}
	if strings.HasSuffix(path, ".s") {
		obj, err := asm.Assemble(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Link(obj, link)
	}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		return nil, err
	}
	return core.Build(asmText, link)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faclint:", err)
	os.Exit(1)
}
