package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOnce(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("faclint %v exited %d: %s", args, code, errb.String())
	}
	return out.String()
}

// TestSuiteDeterministic pins the parallel suite path: per-program builds
// and analyses fan out over a worker pool, but the report must be
// byte-identical run to run (and identical for the JSON schema too) —
// goroutine scheduling must never reorder or interleave output.
func TestSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full suite twice")
	}
	for _, args := range [][]string{
		{"-suite"},
		{"-suite", "-json"},
		{"-suite", "-falign"},
	} {
		a := runOnce(t, args...)
		b := runOnce(t, args...)
		if a != b {
			t.Errorf("faclint %v output differs between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", args, a, b)
		}
		if a == "" {
			t.Errorf("faclint %v produced no output", args)
		}
	}
}

// TestSuiteTotalLine sanity-checks that the parallel path still aggregates
// across programs: the TOTAL line exists and counts a plausible site count.
func TestSuiteTotalLine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full suite")
	}
	out := runOnce(t, "-suite")
	if !strings.Contains(out, "TOTAL") {
		t.Fatalf("no TOTAL line in suite output:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "TOTAL") && !strings.Contains(line, "sites 2525") {
			t.Errorf("unexpected TOTAL line (site count moved — update this test and the CI gate deliberately): %s", line)
		}
	}
}

// TestExplainFirstDeterministic pins blame chains end to end through the
// CLI: -explain-first on a real benchmark names a root cause, twice,
// byte-identically.
func TestExplainFirstDeterministic(t *testing.T) {
	args := []string{"-benchmark", "queens", "-explain-first"}
	a := runOnce(t, args...)
	b := runOnce(t, args...)
	if a != b {
		t.Errorf("explain output differs between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "verdict=unknown") {
		t.Errorf("explain-first did not land on an unknown site:\n%s", a)
	}
	if !strings.Contains(a, "poisoned") && !strings.Contains(a, "untracked") &&
		!strings.Contains(a, "clobbered") && !strings.Contains(a, "escaped") &&
		!strings.Contains(a, "control flow joins") && !strings.Contains(a, "entry hypothesis") {
		t.Errorf("blame chain names no root cause:\n%s", a)
	}
}
