package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// proc is one facd process under soak control: the command, its
// announced base URL, and its captured stdout.
type proc struct {
	cmd      *exec.Cmd
	base     string
	out      *bytes.Buffer
	scanDone chan struct{}
}

// startFacd launches one facd and waits for its listening announcement.
func startFacd(bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start facd: %w", err)
	}
	p := &proc{cmd: cmd, out: &bytes.Buffer{}, scanDone: make(chan struct{})}
	ready := make(chan string, 1)
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.out.WriteString(line + "\n")
			if addr, ok := strings.CutPrefix(line, "facd listening on "); ok {
				select {
				case ready <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-ready:
		p.base = "http://" + addr
		return p, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("facd never announced its address")
	}
}

func postBatch(httpc *http.Client, base string, jobs []map[string]any) (batch string, err error) {
	body, err := json.Marshal(map[string]any{"jobs": jobs})
	if err != nil {
		return "", err
	}
	resp, err := httpc.Post(base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	var sub struct {
		Batch string `json:"batch"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit status %d: %s", resp.StatusCode, sub.Error)
	}
	return sub.Batch, nil
}

type batchCounts struct {
	Terminal  bool `json:"terminal"`
	Total     int  `json:"total"`
	Done      int  `json:"done"`
	Failed    int  `json:"failed"`
	Cancelled int  `json:"cancelled"`
}

func waitBatch(httpc *http.Client, base, batch string, timeout time.Duration) (batchCounts, error) {
	deadline := time.Now().Add(timeout)
	for {
		var st batchCounts
		resp, err := httpc.Get(base + "/v1/batches/" + batch)
		if err != nil {
			return st, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return st, err
		}
		if st.Terminal {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("batch %s not terminal after %v (%+v)", batch, timeout, st)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getReport(httpc *http.Client, base, batch string) ([]byte, error) {
	resp, err := httpc.Get(base + "/v1/batches/" + batch + "/report")
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report status %d: %s", resp.StatusCode, data)
	}
	return data, nil
}

// runFleet soaks the distributed fabric: N workers, a coordinator
// sharding over them, a mid-batch SIGKILL of one worker, and a
// stand-alone reference daemon the surviving fleet must byte-match.
func runFleet(o options) error {
	if o.fleetSize < 2 {
		return fmt.Errorf("-fleet-size %d: a worker kill needs at least 2", o.fleetSize)
	}
	tmp, err := os.MkdirTemp("", "facload-fleet")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "facd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/facd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build facd: %w", err)
	}

	// Workers: real simulating daemons, each with its own shard cache.
	var workers []*proc
	var workerURLs []string
	for i := 0; i < o.fleetSize; i++ {
		w, err := startFacd(bin,
			"-addr", "127.0.0.1:0",
			"-workers", "2",
			"-queue", "64",
			"-cache", filepath.Join(tmp, fmt.Sprintf("cache%d", i)),
		)
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
		defer w.cmd.Process.Kill()
		workers = append(workers, w)
		workerURLs = append(workerURLs, w.base)
	}

	// The coordinator: same facd binary, no local simulation — its runner
	// is the fleet dispatcher. A short hedge delay keeps straggler
	// re-dispatch fast once a worker is killed.
	coord, err := startFacd(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "4",
		"-queue", "64",
		"-coordinator", strings.Join(workerURLs, ","),
		"-hedge-after", "2s",
	)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	defer coord.cmd.Process.Kill()

	// The reference: one stand-alone daemon whose report bytes define
	// correct output for the same batch.
	ref, err := startFacd(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-queue", "64")
	if err != nil {
		return fmt.Errorf("reference daemon: %w", err)
	}
	defer ref.cmd.Process.Kill()

	httpc := &http.Client{Timeout: 5 * time.Minute}
	fmt.Printf("facload: fleet soak — coordinator %s over %d workers, reference %s\n",
		coord.base, len(workers), ref.base)

	// Probe the workload's natural instruction count through the
	// coordinator itself, which also proves the dispatch path end to end.
	probe, _ := json.Marshal(map[string]any{
		"workload": o.workload, "toolchain": o.toolchain, "machine": o.machine,
	})
	presp, err := httpc.Post(coord.base+"/v1/run", "application/json", bytes.NewReader(probe))
	if err != nil {
		return fmt.Errorf("probe run via coordinator: %w", err)
	}
	var probed struct {
		Record struct {
			Insts uint64 `json:"instructions"`
		} `json:"record"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(presp.Body).Decode(&probed)
	presp.Body.Close()
	if err != nil {
		return err
	}
	if presp.StatusCode != http.StatusOK || probed.Record.Insts == 0 {
		return fmt.Errorf("probe run status %d: %s", presp.StatusCode, probed.Error)
	}
	natural := probed.Record.Insts

	// One batch of unique jobs (distinct max_insts above the natural
	// count → distinct shard keys, identical timing), so the batch spreads
	// over the ring and every job costs a real simulation somewhere.
	var jobs []map[string]any
	for i := 0; i < o.fleetJobs; i++ {
		jobs = append(jobs, map[string]any{
			"workload":  o.workload,
			"toolchain": o.toolchain,
			"machine":   o.machine,
			"max_insts": natural + 1 + uint64(i),
		})
	}
	batch, err := postBatch(httpc, coord.base, jobs)
	if err != nil {
		return fmt.Errorf("fleet submit: %w", err)
	}

	// SIGKILL one worker while the batch is in flight. No drain, no
	// goodbye: its in-flight simulations die with the process and the
	// coordinator must fail its shard over to the survivors.
	victim := workers[0]
	if err := victim.cmd.Process.Kill(); err != nil {
		return err
	}
	victim.cmd.Wait()
	fmt.Printf("facload: SIGKILLed worker %s mid-batch\n", victim.base)

	st, err := waitBatch(httpc, coord.base, batch, 5*time.Minute)
	if err != nil {
		return err
	}
	if st.Done != o.fleetJobs || st.Failed != 0 || st.Cancelled != 0 {
		return fmt.Errorf("worker kill lost jobs: done=%d failed=%d cancelled=%d of %d",
			st.Done, st.Failed, st.Cancelled, o.fleetJobs)
	}
	fleetReport, err := getReport(httpc, coord.base, batch)
	if err != nil {
		return err
	}

	// Every shard saw work: the coordinator's /metrics fleet section must
	// show a dispatch to each worker, including the one later killed.
	mresp, err := httpc.Get(coord.base + "/metrics")
	if err != nil {
		return err
	}
	var metrics struct {
		Fleet []struct {
			URL        string `json:"url"`
			Dispatched uint64 `json:"dispatched"`
			Completed  uint64 `json:"completed"`
		} `json:"fleet"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&metrics)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	if len(metrics.Fleet) != len(workers) {
		return fmt.Errorf("/metrics reports %d fleet workers, want %d", len(metrics.Fleet), len(workers))
	}
	var totalCompleted uint64
	for _, w := range metrics.Fleet {
		fmt.Printf("facload: worker %s dispatched=%d completed=%d\n", w.URL, w.Dispatched, w.Completed)
		if w.Dispatched == 0 {
			return fmt.Errorf("worker %s never received work for its shard", w.URL)
		}
		totalCompleted += w.Completed
	}
	if totalCompleted < uint64(o.fleetJobs) {
		return fmt.Errorf("fleet completed %d dispatches for %d jobs", totalCompleted, o.fleetJobs)
	}

	// The reference daemon runs the identical batch; distribution and the
	// worker kill must be invisible in the bytes.
	refBatch, err := postBatch(httpc, ref.base, jobs)
	if err != nil {
		return fmt.Errorf("reference submit: %w", err)
	}
	if st, err = waitBatch(httpc, ref.base, refBatch, 5*time.Minute); err != nil {
		return err
	}
	if st.Done != o.fleetJobs {
		return fmt.Errorf("reference batch done=%d of %d", st.Done, o.fleetJobs)
	}
	refReport, err := getReport(httpc, ref.base, refBatch)
	if err != nil {
		return err
	}
	if !bytes.Equal(fleetReport, refReport) {
		return fmt.Errorf("fleet report differs from reference daemon:\n--- fleet ---\n%s\n--- reference ---\n%s",
			fleetReport, refReport)
	}
	fmt.Printf("facload: %d jobs survived the worker kill, report byte-identical to reference (%d bytes)\n",
		o.fleetJobs, len(fleetReport))

	// Finally, the coordinator honors the same drain contract as a single
	// daemon: SIGTERM mid-batch, exit 0, and the accounting identity
	// submitted == completed+failed+cancelled with nothing dropped.
	if _, err := postBatch(httpc, coord.base, jobs[:o.fleetJobs/2]); err != nil {
		return fmt.Errorf("drain-batch submit: %w", err)
	}
	if err := coord.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-coord.scanDone:
	case <-time.After(5 * time.Minute):
		return fmt.Errorf("coordinator did not exit after SIGTERM")
	}
	if err := coord.cmd.Wait(); err != nil {
		return fmt.Errorf("coordinator exited uncleanly: %w\noutput:\n%s", err, coord.out.String())
	}
	m := drainLine.FindStringSubmatch(coord.out.String())
	if m == nil {
		return fmt.Errorf("coordinator missing clean-drain line; output:\n%s", coord.out.String())
	}
	var submitted, completed, failed, cancelled uint64
	fmt.Sscanf(m[1], "%d", &submitted)
	fmt.Sscanf(m[2], "%d", &completed)
	fmt.Sscanf(m[3], "%d", &failed)
	fmt.Sscanf(m[4], "%d", &cancelled)
	if submitted != completed+failed+cancelled {
		return fmt.Errorf("coordinator drain dropped jobs: submitted=%d completed+failed+cancelled=%d",
			submitted, completed+failed+cancelled)
	}
	if failed != 0 {
		return fmt.Errorf("coordinator drain failed jobs: %d", failed)
	}
	fmt.Printf("facload: coordinator drained cleanly (submitted=%d completed=%d cancelled=%d)\n",
		submitted, completed, cancelled)
	return nil
}
