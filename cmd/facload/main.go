// Command facload is a mixed-tenant load generator and soak test for
// facd. It builds the daemon, boots it with N equally-weighted
// authenticated tenants and deliberately tight per-tenant quotas, then
// hammers it from one open-loop submitter per tenant so the service runs
// saturated for the whole soak. Every submission is a unique simulation
// (the instruction budget varies per job), so the overload is real work,
// not cache hits.
//
// Mid-soak — while submitters are still racing — facload sends the
// daemon SIGTERM and verifies the hardening contract end to end:
//
//   - Graceful-drain correctness: facd exits 0 and its final accounting
//     line satisfies submitted == completed+failed+cancelled, submitted
//     equals the number of jobs facload saw accepted with 202, and
//     nothing failed or was cancelled: no admitted job is ever dropped
//     unreported, even with submissions racing the drain.
//   - Fairness: per-tenant completed-run counts from the access log stay
//     within -fair-min (min/max ratio, default 0.5) at equal weights —
//     no tenant is starved.
//   - Bounded queueing: the p99 of per-job queue wait from access-log
//     complete events stays under -p99-max.
//
// With -fleet, facload instead soaks the distributed fabric: it boots
// two worker daemons, a coordinator sharding across them, and a
// stand-alone reference daemon, submits a batch of unique jobs, SIGKILLs
// one worker mid-batch, and verifies that the batch drains with zero
// lost jobs, that every worker received work for its shard, and that the
// coordinator's report bytes are identical to the reference daemon's.
// It then SIGTERMs the coordinator mid-batch and checks the same
// drain-accounting identity the single-daemon soak enforces.
//
// Usage (from the repo root):
//
//	go run ./cmd/facload                      # 4 tenants, 30s soak
//	go run ./cmd/facload -tenants 3 -duration 5s
//	go run ./cmd/facload -fleet               # coordinator + 2 workers, worker kill
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

type options struct {
	tenants     int
	duration    time.Duration
	workers     int
	maxQueued   int
	maxInFlight int
	fairMin     float64
	p99Max      time.Duration
	minPerTen   int
	workload    string
	toolchain   string
	machine     string
	fleet       bool
	fleetSize   int
	fleetJobs   int
}

func main() {
	var o options
	flag.IntVar(&o.tenants, "tenants", 4, "number of equally-weighted tenants submitting concurrently")
	flag.DurationVar(&o.duration, "duration", 30*time.Second, "soak length before the mid-soak SIGTERM")
	flag.IntVar(&o.workers, "workers", 2, "daemon worker pool size (small keeps the service saturated)")
	flag.IntVar(&o.maxQueued, "max-queued-per-client", 8, "per-tenant queued-jobs quota on the daemon")
	flag.IntVar(&o.maxInFlight, "max-inflight-per-client", 2, "per-tenant in-flight cap on the daemon")
	flag.Float64Var(&o.fairMin, "fair-min", 0.5, "minimum allowed min/max ratio of per-tenant completed runs")
	flag.DurationVar(&o.p99Max, "p99-max", 5*time.Second, "maximum allowed p99 queue wait")
	flag.IntVar(&o.minPerTen, "min-completed-per-tenant", 5, "throughput floor: every tenant must complete at least this many runs")
	flag.StringVar(&o.workload, "workload", "hashp", "workload to submit (a short one keeps per-run cost low)")
	flag.StringVar(&o.toolchain, "toolchain", "base", "toolchain for submitted jobs")
	flag.StringVar(&o.machine, "machine", "base32", "machine for submitted jobs")
	flag.BoolVar(&o.fleet, "fleet", false, "soak the sharded fleet (coordinator + workers + mid-batch worker kill) instead of one daemon")
	flag.IntVar(&o.fleetSize, "fleet-size", 2, "worker daemon count for -fleet")
	flag.IntVar(&o.fleetJobs, "fleet-jobs", 12, "batch size for the -fleet soak")
	flag.Parse()

	soak := run
	if o.fleet {
		soak = runFleet
	}
	if err := soak(o); err != nil {
		fmt.Fprintln(os.Stderr, "facload:", err)
		os.Exit(1)
	}
	fmt.Println("facload OK")
}

func token(i int) string { return fmt.Sprintf("tok-t%d", i) }

// authedJSON posts a JSON body with a tenant's bearer token.
func authedJSON(client *http.Client, url, tok string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+tok)
	return client.Do(req)
}

var drainLine = regexp.MustCompile(`facd drained cleanly \(submitted=(\d+) completed=(\d+) failed=(\d+) cancelled=(\d+)\)`)

func run(o options) error {
	if o.tenants < 2 {
		return fmt.Errorf("-tenants %d: fairness needs at least 2", o.tenants)
	}
	tmp, err := os.MkdirTemp("", "facload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "facd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/facd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build facd: %w", err)
	}

	var clients []string
	for i := 0; i < o.tenants; i++ {
		clients = append(clients, fmt.Sprintf("t%d:%s:1", i, token(i)))
	}
	accessLog := filepath.Join(tmp, "access.jsonl")
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", fmt.Sprint(o.workers),
		"-queue", fmt.Sprint(o.tenants*o.maxQueued),
		"-clients", strings.Join(clients, ","),
		"-max-queued-per-client", fmt.Sprint(o.maxQueued),
		"-max-inflight-per-client", fmt.Sprint(o.maxInFlight),
		"-access-log", accessLog,
	)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start facd: %w", err)
	}
	defer daemon.Process.Kill()

	ready := make(chan string, 1)
	scanDone := make(chan struct{})
	var outBuf bytes.Buffer
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			outBuf.WriteString(line + "\n")
			if addr, ok := strings.CutPrefix(line, "facd listening on "); ok {
				ready <- addr
			}
		}
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("facd never announced its address")
	}

	httpc := &http.Client{Timeout: 2 * time.Minute}

	// Probe the workload's natural instruction count with one synchronous
	// run (sync runs are outside the batch accounting). Each soak job then
	// sets a unique max_insts above the natural count, so every submission
	// has a distinct cache key and costs a real simulation — overload, not
	// cache traffic — while still running to its natural completion.
	probe, err := json.Marshal(map[string]any{
		"workload": o.workload, "toolchain": o.toolchain, "machine": o.machine,
	})
	if err != nil {
		return err
	}
	presp, err := authedJSON(httpc, base+"/v1/run", token(0), probe)
	if err != nil {
		return fmt.Errorf("probe run: %w", err)
	}
	var probed struct {
		Record struct {
			Insts uint64 `json:"instructions"`
		} `json:"record"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(presp.Body).Decode(&probed)
	presp.Body.Close()
	if err != nil {
		return err
	}
	if presp.StatusCode != http.StatusOK || probed.Record.Insts == 0 {
		return fmt.Errorf("probe run status %d: %s", presp.StatusCode, probed.Error)
	}
	natural := probed.Record.Insts
	fmt.Printf("facload: soaking %s for %v (%d tenants, %d workers, %d insts/run)\n",
		base, o.duration, o.tenants, o.workers, natural)

	// The soak: one open-loop submitter per tenant, single-job batches,
	// retrying on 429 backpressure, stopping at the first 503 (drain) or
	// transport error (server gone). jobSeq makes every job unique.
	var jobSeq atomic.Uint64
	accepted := make([]atomic.Uint64, o.tenants)
	var wg sync.WaitGroup
	for ten := 0; ten < o.tenants; ten++ {
		wg.Add(1)
		go func(ten int) {
			defer wg.Done()
			for {
				body, err := json.Marshal(map[string]any{"jobs": []map[string]any{{
					"workload":  o.workload,
					"toolchain": o.toolchain,
					"machine":   o.machine,
					"max_insts": natural + 1 + jobSeq.Add(1),
				}}})
				if err != nil {
					panic(err)
				}
				resp, err := authedJSON(httpc, base+"/v1/batches", token(ten), body)
				if err != nil {
					return // server shut its listener; soak is over
				}
				code := resp.StatusCode
				resp.Body.Close()
				switch code {
				case http.StatusAccepted:
					accepted[ten].Add(1)
				case http.StatusTooManyRequests:
					time.Sleep(20 * time.Millisecond) // backpressure; retry
				case http.StatusServiceUnavailable:
					return // draining
				default:
					fmt.Fprintf(os.Stderr, "facload: tenant %d submit status %d\n", ten, code)
					return
				}
			}
		}(ten)
	}

	// Mid-soak SIGTERM: the submitters are still racing when the drain
	// starts, which is exactly the window the drop-free guarantee covers.
	time.Sleep(o.duration)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	wg.Wait()
	select {
	case <-scanDone:
	case <-time.After(5 * time.Minute):
		return fmt.Errorf("facd did not exit after SIGTERM")
	}
	if err := daemon.Wait(); err != nil {
		return fmt.Errorf("facd exited uncleanly: %w\noutput:\n%s", err, outBuf.String())
	}

	var totalAccepted uint64
	for ten := range accepted {
		totalAccepted += accepted[ten].Load()
	}

	// Assertion 1 — graceful-drain correctness. The daemon's final line is
	// its own accounting identity; cross-check it against what the clients
	// observed so a dropped-but-unreported job cannot hide on either side.
	m := drainLine.FindStringSubmatch(outBuf.String())
	if m == nil {
		return fmt.Errorf("missing clean-drain line; output:\n%s", outBuf.String())
	}
	var submitted, completed, failed, cancelled uint64
	fmt.Sscanf(m[1], "%d", &submitted)
	fmt.Sscanf(m[2], "%d", &completed)
	fmt.Sscanf(m[3], "%d", &failed)
	fmt.Sscanf(m[4], "%d", &cancelled)
	if submitted != completed+failed+cancelled {
		return fmt.Errorf("drain dropped jobs: submitted=%d but completed+failed+cancelled=%d",
			submitted, completed+failed+cancelled)
	}
	if submitted != totalAccepted {
		return fmt.Errorf("daemon admitted %d jobs but clients saw %d accepted (lost or phantom admissions)",
			submitted, totalAccepted)
	}
	if failed != 0 || cancelled != 0 {
		return fmt.Errorf("soak jobs did not all succeed: failed=%d cancelled=%d", failed, cancelled)
	}

	// Assertions 2 and 3 come from the access log: per-tenant completions
	// for fairness, per-job queue waits for the latency bound.
	doneByTenant, waits, err := readCompletions(accessLog)
	if err != nil {
		return err
	}
	var logged uint64
	for _, n := range doneByTenant {
		logged += n
	}
	if logged != submitted {
		return fmt.Errorf("access log records %d completions, daemon reports %d", logged, submitted)
	}

	minDone, maxDone := ^uint64(0), uint64(0)
	for ten := 0; ten < o.tenants; ten++ {
		n := doneByTenant[fmt.Sprintf("t%d", ten)]
		fmt.Printf("facload: tenant t%d accepted=%d completed=%d\n", ten, accepted[ten].Load(), n)
		if n < minDone {
			minDone = n
		}
		if n > maxDone {
			maxDone = n
		}
		if n < uint64(o.minPerTen) {
			return fmt.Errorf("tenant t%d completed only %d runs (floor %d)", ten, n, o.minPerTen)
		}
	}
	ratio := float64(minDone) / float64(maxDone)
	if ratio < o.fairMin {
		return fmt.Errorf("unfair schedule: min/max completed ratio %.2f < %.2f (min=%d max=%d)",
			ratio, o.fairMin, minDone, maxDone)
	}

	sort.Float64s(waits)
	p99 := waits[(len(waits)*99+99)/100-1]
	fmt.Printf("facload: %d jobs drained cleanly, fairness ratio %.2f, queue wait p50=%.0fms p99=%.0fms\n",
		submitted, ratio, waits[len(waits)/2], p99)
	if p99 > float64(o.p99Max.Milliseconds()) {
		return fmt.Errorf("queue wait p99 %.0fms exceeds %v", p99, o.p99Max)
	}
	return nil
}

// readCompletions parses the daemon's JSONL access log into per-tenant
// completed-run counts and the queue-wait distribution.
func readCompletions(path string) (map[string]uint64, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("open access log: %w", err)
	}
	defer f.Close()
	byTenant := make(map[string]uint64)
	var waits []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e struct {
			Event       string  `json:"event"`
			Client      string  `json:"client"`
			QueueWaitMS float64 `json:"queue_wait_ms"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, nil, fmt.Errorf("bad access-log line %q: %w", sc.Text(), err)
		}
		if e.Event == "complete" {
			byTenant[e.Client]++
			waits = append(waits, e.QueueWaitMS)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(waits) == 0 {
		return nil, nil, fmt.Errorf("access log %s has no complete events", path)
	}
	return byTenant, waits, nil
}
