// Command facd is the simulation daemon: it serves the repository's
// cycle-level simulator over an HTTP/JSON API so experiment drivers can
// submit batches of (workload, toolchain, machine) jobs, poll their
// status, and fetch results as canonical obs.RunRecord reports.
//
// The daemon is deterministic end to end: a batch report is byte-identical
// to what an in-process run of the same jobs would export, so results can
// be cached, diffed, and shared across machines. docs/SERVICE.md describes
// the API, the content-addressed result cache, the multi-tenant quota and
// fair-scheduling model, and the operational endpoints.
//
// Usage:
//
//	facd -addr :8080 -cache ~/.fac-cache
//	facd -addr 127.0.0.1:0 -workers 4 -job-timeout 5m
//	facd -clients alice:tokenA:2,bob:tokenB:1 -access-log access.jsonl
//
// With -clients, every API request (except /healthz and /metrics) must
// carry "Authorization: Bearer <token>"; tenants are scheduled in
// weighted-fair order and held to per-tenant queue and in-flight quotas.
//
// facd prints "facd listening on <addr>" once it accepts connections. On
// SIGTERM or SIGINT it stops accepting work, drains queued and running
// jobs (bounded by -drain-timeout), and exits 0 on a clean drain, printing
// its final job accounting (submitted == completed+failed+cancelled on a
// clean drain — no admitted job is ever dropped unreported).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
)

// options gathers the daemon configuration parsed from flags.
type options struct {
	addr         string
	workers      int
	queueDepth   int
	jobTimeout   time.Duration
	cacheDir     string
	cacheMax     int64
	maxInsts     uint64
	drainTimeout time.Duration

	clients        string
	maxQueuedPer   int
	maxInFlightPer int
	maxBodyBytes   int64
	accessLogPath  string

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.IntVar(&o.workers, "workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queueDepth, "queue", 0, "global job queue depth before submissions get 429 (0 = 64)")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 0, "per-job deadline (0 = none)")
	flag.StringVar(&o.cacheDir, "cache", "", "persistent result cache directory (shared with cmd/experiments -cache)")
	flag.Int64Var(&o.cacheMax, "cache-max-bytes", 0, "evict least-recently-used cache entries beyond this size (0 = unbounded)")
	flag.Uint64Var(&o.maxInsts, "max-insts", simsvc.DefaultMaxInsts, "instruction budget per simulation")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 2*time.Minute, "how long to wait for in-flight jobs on shutdown")
	flag.StringVar(&o.clients, "clients", "", "authenticated tenants as name:token[:weight],... (empty = open access, one anonymous tenant)")
	flag.IntVar(&o.maxQueuedPer, "max-queued-per-client", 0, "per-tenant queued-jobs quota (0 = the global -queue depth)")
	flag.IntVar(&o.maxInFlightPer, "max-inflight-per-client", 0, "per-tenant cap on concurrently running jobs, batch+sync (0 = -workers)")
	flag.Int64Var(&o.maxBodyBytes, "max-body-bytes", 0, "reject request bodies larger than this with 413 (0 = 4 MiB)")
	flag.StringVar(&o.accessLogPath, "access-log", "", "write JSONL access events (request/admit/reject/complete) to this file; \"-\" = stderr")
	flag.DurationVar(&o.readHeaderTimeout, "read-header-timeout", 10*time.Second, "close connections whose request headers take longer than this (slowloris guard)")
	flag.DurationVar(&o.readTimeout, "read-timeout", time.Minute, "close connections whose full request takes longer than this to read")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 15*time.Minute, "abort responses not fully written within this (must exceed the longest sync run; 0 = none)")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "close idle keep-alive connections after this")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "facd:", err)
		os.Exit(1)
	}
}

// parseClients parses the -clients flag: comma-separated
// name:token[:weight] entries. Weights default to 1; quota caps come
// from the shared -max-queued-per-client / -max-inflight-per-client
// flags.
func parseClients(s string) ([]simsvc.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	var out []simsvc.TenantConfig
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("bad -clients entry %q (want name:token[:weight])", entry)
		}
		c := simsvc.TenantConfig{Name: parts[0], Token: parts[1]}
		if len(parts) == 3 {
			w, err := strconv.Atoi(parts[2])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad weight in -clients entry %q", entry)
			}
			c.Weight = w
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients %q names no tenants", s)
	}
	return out, nil
}

// newHTTPServer wires the connection timeouts that keep one slow or
// stalled client from holding a connection (and its goroutine) forever:
// ReadHeaderTimeout bounds the slowloris window, ReadTimeout the whole
// request read, WriteTimeout the response (it must exceed the longest
// synchronous run), and IdleTimeout reclaims parked keep-alives.
func newHTTPServer(h http.Handler, o options) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}
}

func run(o options) error {
	runner := &simsvc.Runner{
		Resolve: func(m string) (pipeline.Config, error) {
			return experiments.MachineConfig(experiments.Machine(m))
		},
		MaxInsts: o.maxInsts,
	}
	if o.cacheDir != "" {
		dc, err := simsvc.OpenDiskCache(o.cacheDir, o.cacheMax)
		if err != nil {
			return fmt.Errorf("open cache: %w", err)
		}
		runner.Cache = dc
	}

	clients, err := parseClients(o.clients)
	if err != nil {
		return err
	}
	var accessLog obs.AccessSink
	switch o.accessLogPath {
	case "":
	case "-":
		accessLog = obs.NewAccessLog(os.Stderr)
	default:
		f, err := os.OpenFile(o.accessLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open access log: %w", err)
		}
		defer f.Close()
		accessLog = obs.NewAccessLog(f)
	}

	svc, err := simsvc.NewServer(simsvc.ServerConfig{
		Workers:            o.workers,
		QueueDepth:         o.queueDepth,
		JobTimeout:         o.jobTimeout,
		Clients:            clients,
		DefaultMaxQueued:   o.maxQueuedPer,
		DefaultMaxInFlight: o.maxInFlightPer,
		MaxBodyBytes:       o.maxBodyBytes,
		AccessLog:          accessLog,
	}, runner)
	if err != nil {
		return err
	}
	svc.Start()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(svc.Handler(), o)

	// Announce readiness on stdout; scripts (and the CI smoke stage) parse
	// this line to find the bound port.
	fmt.Printf("facd listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("facd draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := svc.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh
	st := svc.Stats()
	if drainErr != nil {
		return fmt.Errorf("drain (submitted=%d completed=%d failed=%d cancelled=%d): %w",
			st.Submitted, st.Completed, st.Failed, st.Cancelled, drainErr)
	}
	// The accounting identity on this line is the drop-free guarantee
	// cmd/facload asserts: every admitted job reached a terminal state.
	fmt.Printf("facd drained cleanly (submitted=%d completed=%d failed=%d cancelled=%d)\n",
		st.Submitted, st.Completed, st.Failed, st.Cancelled)
	return nil
}
