// Command facd is the simulation daemon: it serves the repository's
// cycle-level simulator over an HTTP/JSON API so experiment drivers can
// submit batches of (workload, toolchain, machine) jobs, poll their
// status, and fetch results as canonical obs.RunRecord reports.
//
// The daemon is deterministic end to end: a batch report is byte-identical
// to what an in-process run of the same jobs would export, so results can
// be cached, diffed, and shared across machines. docs/SERVICE.md describes
// the API, the content-addressed result cache, the multi-tenant quota and
// fair-scheduling model, and the operational endpoints.
//
// Usage:
//
//	facd -addr :8080 -cache ~/.fac-cache
//	facd -addr 127.0.0.1:0 -workers 4 -job-timeout 5m
//	facd -clients alice:tokenA:2,bob:tokenB:1 -access-log access.jsonl
//	facd -coordinator http://w1:8080,http://w2:8080
//
// With -clients (or -clients-file, which additionally reloads on
// SIGHUP without dropping work), every API request (except /healthz and
// /metrics) must carry "Authorization: Bearer <token>"; tenants are
// scheduled in weighted-fair order and held to per-tenant queue and
// in-flight quotas.
//
// With -coordinator, the daemon simulates nothing itself: each job is
// dispatched to the worker daemon owning the job's content-addressed
// cache key on a consistent-hash ring, with failover and hedged
// re-dispatch around the ring when a worker dies or straggles. The API
// (including batch progress streams) is identical either way, and so —
// byte for byte — are the reports.
//
// facd prints "facd listening on <addr>" once it accepts connections. On
// SIGTERM or SIGINT it stops accepting work, drains queued and running
// jobs (bounded by -drain-timeout), and exits 0 on a clean drain, printing
// its final job accounting (submitted == completed+failed+cancelled on a
// clean drain — no admitted job is ever dropped unreported).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
	"repro/internal/workload"
)

// options gathers the daemon configuration parsed from flags.
type options struct {
	addr         string
	workers      int
	queueDepth   int
	jobTimeout   time.Duration
	cacheDir     string
	cacheMax     int64
	maxInsts     uint64
	drainTimeout time.Duration

	clients        string
	clientsFile    string
	maxQueuedPer   int
	maxInFlightPer int
	maxBodyBytes   int64
	accessLogPath  string
	warm           bool

	coordinator string
	workerToken string
	hedgeAfter  time.Duration

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	flag.IntVar(&o.workers, "workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queueDepth, "queue", 0, "global job queue depth before submissions get 429 (0 = 64)")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 0, "per-job deadline (0 = none)")
	flag.StringVar(&o.cacheDir, "cache", "", "persistent result cache directory (shared with cmd/experiments -cache)")
	flag.Int64Var(&o.cacheMax, "cache-max-bytes", 0, "evict least-recently-used cache entries beyond this size (0 = unbounded)")
	flag.Uint64Var(&o.maxInsts, "max-insts", simsvc.DefaultMaxInsts, "instruction budget per simulation")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 2*time.Minute, "how long to wait for in-flight jobs on shutdown")
	flag.StringVar(&o.clients, "clients", "", "authenticated tenants as name:token[:weight],... (empty = open access, one anonymous tenant)")
	flag.StringVar(&o.clientsFile, "clients-file", "", "read tenants from this file (one name:token[:weight] per line, # comments); SIGHUP reloads it without dropping work")
	flag.BoolVar(&o.warm, "warm", false, "pre-simulate and pin the standard experiment grid in the result cache before serving (requires -cache)")
	flag.StringVar(&o.coordinator, "coordinator", "", "run as fleet coordinator dispatching to these worker daemon URLs (comma-separated); no local simulation")
	flag.StringVar(&o.workerToken, "worker-token", "", "bearer token the coordinator presents to its workers")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 0, "coordinator: launch a backup dispatch on the next shard owner after this straggler delay (0 = 30s, negative = never)")
	flag.IntVar(&o.maxQueuedPer, "max-queued-per-client", 0, "per-tenant queued-jobs quota (0 = the global -queue depth)")
	flag.IntVar(&o.maxInFlightPer, "max-inflight-per-client", 0, "per-tenant cap on concurrently running jobs, batch+sync (0 = -workers)")
	flag.Int64Var(&o.maxBodyBytes, "max-body-bytes", 0, "reject request bodies larger than this with 413 (0 = 4 MiB)")
	flag.StringVar(&o.accessLogPath, "access-log", "", "write JSONL access events (request/admit/reject/complete) to this file; \"-\" = stderr")
	flag.DurationVar(&o.readHeaderTimeout, "read-header-timeout", 10*time.Second, "close connections whose request headers take longer than this (slowloris guard)")
	flag.DurationVar(&o.readTimeout, "read-timeout", time.Minute, "close connections whose full request takes longer than this to read")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 15*time.Minute, "abort responses not fully written within this (must exceed the longest sync run; 0 = none)")
	flag.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "close idle keep-alive connections after this")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "facd:", err)
		os.Exit(1)
	}
}

// parseClients parses the -clients flag: comma-separated
// name:token[:weight] entries. Weights default to 1; quota caps come
// from the shared -max-queued-per-client / -max-inflight-per-client
// flags.
func parseClients(s string) ([]simsvc.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	var out []simsvc.TenantConfig
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
			return nil, fmt.Errorf("bad -clients entry %q (want name:token[:weight])", entry)
		}
		c := simsvc.TenantConfig{Name: parts[0], Token: parts[1]}
		if len(parts) == 3 {
			w, err := strconv.Atoi(parts[2])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("bad weight in -clients entry %q", entry)
			}
			c.Weight = w
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients %q names no tenants", s)
	}
	return out, nil
}

// loadClientsFile reads a tenants file: one name:token[:weight] entry
// per line, blank lines and #-comments ignored. The same parser backs
// startup and SIGHUP reloads, so a file that boots the daemon always
// reloads cleanly too.
func loadClientsFile(path string) ([]simsvc.TenantConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("clients file: %w", err)
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("clients file %s names no tenants", path)
	}
	return parseClients(strings.Join(entries, ","))
}

// warmSpecs enumerates the standard experiment grid — every workload
// under each (toolchain, machine) pair of the paper's central figure —
// as job specs for cache warming.
func warmSpecs() []simsvc.JobSpec {
	var specs []simsvc.JobSpec
	for _, w := range workload.All() {
		for _, pair := range experiments.StandardGrid() {
			specs = append(specs, simsvc.JobSpec{Workload: w.Name, Toolchain: pair[0], Machine: pair[1]})
		}
	}
	return specs
}

// newHTTPServer wires the connection timeouts that keep one slow or
// stalled client from holding a connection (and its goroutine) forever:
// ReadHeaderTimeout bounds the slowloris window, ReadTimeout the whole
// request read, WriteTimeout the response (it must exceed the longest
// synchronous run), and IdleTimeout reclaims parked keep-alives.
func newHTTPServer(h http.Handler, o options) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}
}

func run(o options) error {
	runner := &simsvc.Runner{
		Resolve: func(m string) (pipeline.Config, error) {
			return experiments.MachineConfig(experiments.Machine(m))
		},
		MaxInsts: o.maxInsts,
	}
	if o.cacheDir != "" {
		dc, err := simsvc.OpenDiskCache(o.cacheDir, o.cacheMax)
		if err != nil {
			return fmt.Errorf("open cache: %w", err)
		}
		runner.Cache = dc
	}

	var jobRunner simsvc.JobRunner = runner
	if o.coordinator != "" {
		urls := strings.Split(o.coordinator, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		disp, err := fleet.New(fleet.Config{
			Workers:    urls,
			Token:      o.workerToken,
			Local:      runner,
			HedgeAfter: o.hedgeAfter,
		})
		if err != nil {
			return err
		}
		pingCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = disp.Ping(pingCtx)
		cancel()
		if err != nil {
			return err
		}
		jobRunner = disp
	}

	var clients []simsvc.TenantConfig
	var err error
	switch {
	case o.clientsFile != "" && o.clients != "":
		return fmt.Errorf("use -clients or -clients-file, not both")
	case o.clientsFile != "":
		clients, err = loadClientsFile(o.clientsFile)
	default:
		clients, err = parseClients(o.clients)
	}
	if err != nil {
		return err
	}
	var accessLog obs.AccessSink
	switch o.accessLogPath {
	case "":
	case "-":
		accessLog = obs.NewAccessLog(os.Stderr)
	default:
		f, err := os.OpenFile(o.accessLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open access log: %w", err)
		}
		defer f.Close()
		accessLog = obs.NewAccessLog(f)
	}

	svc, err := simsvc.NewServer(simsvc.ServerConfig{
		Workers:            o.workers,
		QueueDepth:         o.queueDepth,
		JobTimeout:         o.jobTimeout,
		Clients:            clients,
		DefaultMaxQueued:   o.maxQueuedPer,
		DefaultMaxInFlight: o.maxInFlightPer,
		MaxBodyBytes:       o.maxBodyBytes,
		AccessLog:          accessLog,
	}, jobRunner)
	if err != nil {
		return err
	}

	if o.warm {
		if runner.Cache == nil {
			return fmt.Errorf("-warm requires -cache")
		}
		if o.coordinator != "" {
			return fmt.Errorf("-warm runs local simulations; a coordinator has none (warm the workers instead)")
		}
		simulated, hits, err := runner.Warm(context.Background(), warmSpecs())
		if err != nil {
			return fmt.Errorf("warm: %w", err)
		}
		// Parsed by scripts, like the listening line below.
		fmt.Printf("facd warmed standard grid (simulated=%d cached=%d pinned=%d)\n",
			simulated, hits, simulated+hits)
	}
	svc.Start()

	if o.clientsFile != "" {
		// Token rotation without restart: SIGHUP re-reads the tenants file
		// and swaps it in atomically. A bad file or a reload that would
		// orphan live work is rejected and the old table stays in force.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				clients, err := loadClientsFile(o.clientsFile)
				if err == nil {
					err = svc.ReloadClients(clients)
				}
				if err != nil {
					fmt.Printf("facd clients reload rejected: %v\n", err)
					continue
				}
				fmt.Printf("facd reloaded clients (%d tenants)\n", len(clients))
			}
		}()
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(svc.Handler(), o)

	// Announce readiness on stdout; scripts (and the CI smoke stage) parse
	// this line to find the bound port.
	fmt.Printf("facd listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("facd draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	drainErr := svc.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh
	st := svc.Stats()
	if drainErr != nil {
		return fmt.Errorf("drain (submitted=%d completed=%d failed=%d cancelled=%d): %w",
			st.Submitted, st.Completed, st.Failed, st.Cancelled, drainErr)
	}
	// The accounting identity on this line is the drop-free guarantee
	// cmd/facload asserts: every admitted job reached a terminal state.
	fmt.Printf("facd drained cleanly (submitted=%d completed=%d failed=%d cancelled=%d)\n",
		st.Submitted, st.Completed, st.Failed, st.Cancelled)
	return nil
}
