// Command facd is the simulation daemon: it serves the repository's
// cycle-level simulator over an HTTP/JSON API so experiment drivers can
// submit batches of (workload, toolchain, machine) jobs, poll their
// status, and fetch results as canonical obs.RunRecord reports.
//
// The daemon is deterministic end to end: a batch report is byte-identical
// to what an in-process run of the same jobs would export, so results can
// be cached, diffed, and shared across machines. docs/SERVICE.md describes
// the API, the content-addressed result cache, and the operational
// endpoints.
//
// Usage:
//
//	facd -addr :8080 -cache ~/.fac-cache
//	facd -addr 127.0.0.1:0 -workers 4 -job-timeout 5m
//
// facd prints "facd listening on <addr>" once it accepts connections. On
// SIGTERM or SIGINT it stops accepting work, drains queued and running
// jobs (bounded by -drain-timeout), and exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "job queue depth before submissions get 429 (0 = 64)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
		cacheDir     = flag.String("cache", "", "persistent result cache directory (shared with cmd/experiments -cache)")
		cacheMax     = flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this size (0 = unbounded)")
		maxInsts     = flag.Uint64("max-insts", simsvc.DefaultMaxInsts, "instruction budget per simulation")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long to wait for in-flight jobs on shutdown")
	)
	flag.Parse()

	if err := run(*addr, *workers, *queueDepth, *jobTimeout, *cacheDir, *cacheMax, *maxInsts, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "facd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queueDepth int, jobTimeout time.Duration, cacheDir string, cacheMax int64, maxInsts uint64, drainTimeout time.Duration) error {
	runner := &simsvc.Runner{
		Resolve: func(m string) (pipeline.Config, error) {
			return experiments.MachineConfig(experiments.Machine(m))
		},
		MaxInsts: maxInsts,
	}
	if cacheDir != "" {
		dc, err := simsvc.OpenDiskCache(cacheDir, cacheMax)
		if err != nil {
			return fmt.Errorf("open cache: %w", err)
		}
		runner.Cache = dc
	}

	svc := simsvc.NewServer(simsvc.ServerConfig{
		Workers:    workers,
		QueueDepth: queueDepth,
		JobTimeout: jobTimeout,
	}, runner)
	svc.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}

	// Announce readiness on stdout; scripts (and the CI smoke stage) parse
	// this line to find the bound port.
	fmt.Printf("facd listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("facd draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := svc.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Println("facd drained cleanly")
	return nil
}
