package main

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestParseClients covers the -clients flag grammar.
func TestParseClients(t *testing.T) {
	got, err := parseClients("alice:tok-a:2, bob:tok-b ,carol:tok-c")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d clients, want 3", len(got))
	}
	if got[0].Name != "alice" || got[0].Token != "tok-a" || got[0].Weight != 2 {
		t.Fatalf("alice parsed as %+v", got[0])
	}
	if got[1].Name != "bob" || got[1].Token != "tok-b" || got[1].Weight != 0 {
		t.Fatalf("bob parsed as %+v", got[1])
	}

	if got, err := parseClients(""); err != nil || got != nil {
		t.Fatalf("empty flag: %v, %v", got, err)
	}

	for _, bad := range []string{
		"alice",          // no token
		"alice:",         // empty token
		":tok",           // empty name
		"a:t:x",          // non-numeric weight
		"a:t:0",          // weight < 1
		"a:t:-1",         // negative weight
		"a:t:2:extra",    // too many fields
		",,",             // nothing but separators
		"ok:tok,broken:", // one good entry does not excuse a bad one
	} {
		if got, err := parseClients(bad); err == nil {
			t.Fatalf("parseClients(%q) accepted: %+v", bad, got)
		}
	}
}

// TestSlowlorisTimeout is the regression test for the unbounded
// http.Server: a client that opens a connection and trickles headers
// without ever finishing must be cut off by ReadHeaderTimeout instead of
// holding a connection goroutine forever.
func TestSlowlorisTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o := options{
		readHeaderTimeout: 200 * time.Millisecond,
		readTimeout:       time.Second,
		writeTimeout:      time.Second,
		idleTimeout:       time.Second,
	}
	srv := newHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), o)
	if srv.ReadHeaderTimeout == 0 || srv.ReadTimeout == 0 || srv.WriteTimeout == 0 || srv.IdleTimeout == 0 {
		t.Fatal("newHTTPServer left a connection timeout unset")
	}
	go srv.Serve(ln)
	defer srv.Close()

	// Send a request line and one header, then stall without the
	// terminating blank line — the classic slowloris hold.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow: 1\r\n"); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	_, rerr := conn.Read(buf)
	elapsed := time.Since(start)
	if rerr == nil {
		t.Fatal("server answered a request whose headers never completed")
	}
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server still holding the stalled connection after %v", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled connection closed only after %v; ReadHeaderTimeout not effective", elapsed)
	}

	// A well-formed request on a fresh connection still succeeds.
	conn2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn2).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "200") {
		t.Fatalf("healthy request got %q", line)
	}
}
