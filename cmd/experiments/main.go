// Command experiments regenerates the paper's evaluation: every table and
// figure of Austin, Pnevmatikatos & Sohi, "Streamlining Data Cache Access
// with Fast Address Calculation" (ISCA 1995), measured on this repository's
// substitute benchmark suite.
//
// Usage:
//
//	experiments                      # run everything
//	experiments -fig2                # one experiment (also -table1 -fig3
//	                                 #   -table3 -table4 -fig6 -table6 -ablate
//	                                 #   -ltb -agi -predictors -sweep)
//	experiments -fig6 -json out.json # also export every timing run as a
//	                                 #   machine-readable obs.RunRecord report
//	experiments -diff old.json new.json  # compare two exported reports and
//	                                 #   print cycle/IPC regressions
//	experiments -cache ~/.fac-cache  # reuse (and extend) a persistent result
//	                                 #   cache shared with the facd daemon
//	experiments -cache d -deps d/deps.jsonl  # incremental: a re-run with
//	                                 #   unchanged inputs re-simulates nothing
//	experiments -remote http://host:8080     # run the grid on a daemon or
//	                                 #   fleet coordinator instead of locally
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/depslog"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/simsvc"
)

func main() {
	var (
		fig2     = flag.Bool("fig2", false, "Figure 2: impact of load latency on IPC")
		table1   = flag.Bool("table1", false, "Table 1: program reference behavior")
		fig3     = flag.Bool("fig3", false, "Figure 3: load offset distributions")
		table3   = flag.Bool("table3", false, "Table 3: stats without software support")
		table4   = flag.Bool("table4", false, "Table 4: stats with software support")
		fig6     = flag.Bool("fig6", false, "Figure 6: speedups")
		table6   = flag.Bool("table6", false, "Table 6: bandwidth overhead")
		ablate   = flag.Bool("ablate", false, "ablations (tag adder, store buffer, MSHRs, block size)")
		ltbCmp   = flag.Bool("ltb", false, "FAC vs load target buffer comparison (related work)")
		agiCmp   = flag.Bool("agi", false, "FAC vs AGI pipeline organization (related work)")
		predGrid = flag.Bool("predictors", false, "cross-predictor grid: FAC vs the predictor zoo (internal/predict)")
		sweep    = flag.Bool("sweep", false, "cache-size sensitivity sweep")
		jsonOut  = flag.String("json", "", "write every timing run as a RunRecord report to this file")
		diffMode = flag.Bool("diff", false, "compare two RunRecord reports: -diff old.json new.json")
		tol      = flag.Float64("tolerance", 0.005, "relative change reported by -diff")
		cacheDir = flag.String("cache", "", "persistent result cache directory (shared with the facd daemon)")
		cacheMax = flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this size (0 = unbounded)")
		depsPath = flag.String("deps", "", "ninja-style dependency log for incremental re-runs (records input hashes; reports the clean/dirty split)")
		remote   = flag.String("remote", "", "run named-machine simulations on this facd daemon or fleet coordinator URL instead of locally")
		token    = flag.String("token", "", "bearer token for -remote")
	)
	flag.Parse()

	if *diffMode {
		if err := runDiff(flag.Args(), *tol); err != nil {
			fmt.Fprintln(os.Stderr, "diff failed:", err)
			os.Exit(1)
		}
		return
	}
	all := !(*fig2 || *table1 || *fig3 || *table3 || *table4 || *fig6 || *table6 || *ablate || *ltbCmp || *agiCmp || *predGrid || *sweep)

	s := experiments.NewSuite()
	if *cacheDir != "" {
		dc, err := simsvc.OpenDiskCache(*cacheDir, *cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cache open failed:", err)
			os.Exit(1)
		}
		s.SetCache(dc)
	}
	if *depsPath != "" {
		dl, err := depslog.Open(*depsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deps log open failed:", err)
			os.Exit(1)
		}
		defer dl.Close()
		s.SetDeps(dl)
	}
	if *remote != "" {
		s.SetRemote(&simsvc.Client{Base: *remote, Token: *token})
	}
	steps := []struct {
		on   bool
		name string
		run  func() (string, error)
	}{
		{*table1 || all, "Table 1", func() (string, error) {
			r, err := s.Table1()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*fig2 || all, "Figure 2", func() (string, error) {
			r, err := s.Figure2()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*fig3 || all, "Figure 3", func() (string, error) {
			r, err := s.Figure3()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*table3 || all, "Table 3", func() (string, error) {
			r, err := s.Table3()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*table4 || all, "Table 4", func() (string, error) {
			r, err := s.Table4()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*fig6 || all, "Figure 6", func() (string, error) {
			r, err := s.Figure6()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*table6 || all, "Table 6", func() (string, error) {
			r, err := s.Table6()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*ablate || all, "Ablations", func() (string, error) {
			r, err := s.Ablations()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*ltbCmp || all, "LTB comparison", func() (string, error) {
			r, err := s.CompareLTB()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*agiCmp || all, "AGI comparison", func() (string, error) {
			r, err := s.CompareAGI()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*predGrid || all, "Predictor grid", func() (string, error) {
			r, err := s.ComparePredictors()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
		{*sweep || all, "Cache sweep", func() (string, error) {
			r, err := s.CacheSweep()
			if err != nil {
				return "", err
			}
			return r.Table().String(), nil
		}},
	}
	for _, st := range steps {
		if !st.on {
			continue
		}
		t0 := time.Now()
		out, err := st.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", st.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %.1fs]\n\n", st.name, time.Since(t0).Seconds())
	}

	if *jsonOut != "" {
		rep := s.Report("cmd/experiments")
		data, err := rep.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "json export failed:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "json export failed:", err)
			os.Exit(1)
		}
		fmt.Printf("[%d run records written to %s]\n", len(rep.Records), *jsonOut)
	}

	if st, ok := s.CacheStats(); ok {
		fmt.Printf("[result cache %s: %d entries, %d hits / %d misses (%.0f%% hit rate)]\n",
			st.Dir, st.Entries, st.Hits, st.Misses, 100*st.HitRate())
	}
	// The incremental-rebuild proof line: an unchanged re-run with -deps
	// prints simulated=0 with every run deps-clean.
	if c := s.Counts(); *depsPath != "" || *remote != "" {
		fmt.Printf("[runs: simulated=%d remote=%d cache-hits=%d deps-clean=%d]\n",
			c.Simulated, c.Remote, c.CacheHits, c.DepsClean)
	}
}

// runDiff loads two exported reports and prints the records whose
// cycles/IPC/stall totals moved by more than tol (docs/OBSERVABILITY.md
// describes the workflow). It exits non-zero via the caller on I/O or
// schema errors; differences alone are not an error.
func runDiff(args []string, tol float64) error {
	if len(args) != 2 {
		return fmt.Errorf("need exactly two report files, got %d", len(args))
	}
	load := func(path string) (*obs.Report, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return obs.DecodeReport(data)
	}
	oldRep, err := load(args[0])
	if err != nil {
		return err
	}
	newRep, err := load(args[1])
	if err != nil {
		return err
	}
	lines := obs.Diff(oldRep, newRep, tol)
	if len(lines) == 0 {
		fmt.Printf("no differences above %.2f%% (%d records compared)\n", 100*tol, len(newRep.Records))
		return nil
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	return nil
}
