// Command facprof attributes fast-address-calculation mispredictions to
// individual load/store instructions: for a program (or built-in benchmark)
// it reports the reference-behaviour summary and the top mispredicting
// instruction sites with disassembly, failure signals, and the enclosing
// function — the analysis the paper's Section 5.4 performed to diagnose
// "array index failures" and "domain-specific storage allocators".
//
// Usage:
//
//	facprof [-falign] [-block 32] [-top 20] -benchmark compress
//	facprof [-falign] input.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/minic"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/workload"
)

type site struct {
	pc       uint32
	total    uint64
	fails    uint64
	failMask fac.Failure
}

func main() {
	var (
		bench  = flag.String("benchmark", "", "profile a built-in benchmark")
		falign = flag.Bool("falign", false, "compile with software support")
		block  = flag.Int("block", 32, "cache block size for the predictor (16 or 32)")
		top    = flag.Int("top", 15, "number of top mispredicting sites to show")
	)
	flag.Parse()

	p, err := buildInput(*bench, flag.Args(), *falign)
	if err != nil {
		fatal(err)
	}
	blockBits := uint(5)
	if *block == 16 {
		blockBits = 4
	}
	geom := fac.Config{BlockBits: blockBits, SetBits: 14}

	e := emu.New(p)
	e.MaxInsts = 2_000_000_000
	prof := profile.New(geom)
	sites := make(map[uint32]*site)
	for !e.Halted {
		tr, err := e.Step()
		if err != nil {
			fatal(err)
		}
		prof.Note(tr)
		if !tr.Inst.Op.IsMem() {
			continue
		}
		s := sites[tr.PC]
		if s == nil {
			s = &site{pc: tr.PC}
			sites[tr.PC] = s
		}
		s.total++
		if res := geom.Predict(tr.Base, tr.Offset, tr.IsRegOffset); !res.OK {
			s.fails++
			s.failMask |= res.Failure
		}
	}

	pr := &prof.P
	fmt.Printf("instructions %d, loads %d, stores %d\n", pr.Insts, pr.Loads, pr.Stores)
	fmt.Printf("load breakdown: global %.1f%%, stack %.1f%%, general %.1f%%\n",
		100*pr.LoadTypeShare(profile.Global),
		100*pr.LoadTypeShare(profile.Stack),
		100*pr.LoadTypeShare(profile.General))
	fmt.Printf("failure rates (block %d): loads %.1f%%, stores %.1f%% (no-R+R: %.1f%% / %.1f%%)\n\n",
		*block, 100*pr.LoadFailRate(0), 100*pr.StoreFailRate(0),
		100*pr.LoadFailRateNoRR(0), 100*pr.StoreFailRateNoRR(0))

	var list []*site
	for _, s := range sites {
		if s.fails > 0 {
			list = append(list, s)
		}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].fails > list[j].fails })
	fmt.Printf("top mispredicting sites:\n")
	fmt.Printf("%-10s %-10s %-8s %-24s %-28s %s\n", "pc", "fails", "rate", "signals", "instruction", "function")
	for i, s := range list {
		if i >= *top {
			break
		}
		in, _ := p.InstAt(s.pc)
		fmt.Printf("%#08x  %-10d %6.1f%%  %-24s %-28s %s\n",
			s.pc, s.fails, 100*float64(s.fails)/float64(s.total),
			s.failMask.String(), in.String(), p.FuncName(s.pc))
	}
	if len(list) == 0 {
		fmt.Println("  (none — every access predicted)")
	}
}

func buildInput(bench string, args []string, falign bool) (*prog.Program, error) {
	if bench != "" {
		w, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		tc := workload.BaseToolchain()
		if falign {
			tc = workload.FACToolchain()
		}
		return workload.Build(w, tc)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("need exactly one input file (or -benchmark NAME)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	link := prog.DefaultConfig()
	opts := minic.BaseOptions()
	if falign {
		opts = minic.FACOptions()
		link.AlignGP = true
	}
	if strings.HasSuffix(args[0], ".s") {
		obj, err := asm.Assemble(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Link(obj, link)
	}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		return nil, err
	}
	return core.Build(asmText, link)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facprof:", err)
	os.Exit(1)
}
