// Command facprof attributes fast-address-calculation mispredictions to
// individual load/store instructions: for a program (or built-in benchmark)
// it reports the reference-behaviour summary and the top mispredicting
// instruction sites with disassembly, failure signals, and the enclosing
// function — the analysis the paper's Section 5.4 performed to diagnose
// "array index failures" and "domain-specific storage allocators".
//
// Site attribution consumes the timing simulator's observability event
// stream (internal/obs): the program runs on the FAC machine with an
// obs.SiteCollector attached, so the table reflects the accesses the
// machine actually speculated (register+register speculation is enabled
// to attribute that failure class too). The header's failure rates come
// from the functional profile over every executed access, so the two can
// differ slightly: an access in the shadow of a misprediction does not
// speculate and therefore produces no event.
//
// Usage:
//
//	facprof [-falign] [-block 32] [-top 20] -benchmark compress
//	facprof [-falign] input.c
//	facprof -predictors -benchmark compress   # per-site comparison against
//	                                          # the predictor zoo machines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/fac"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/staticfac"
	"repro/internal/workload"
)

func main() {
	var (
		bench  = flag.String("benchmark", "", "profile a built-in benchmark")
		falign = flag.Bool("falign", false, "compile with software support")
		block  = flag.Int("block", 32, "cache block size for the predictor (16 or 32)")
		top    = flag.Int("top", 15, "number of top mispredicting sites to show")
		static = flag.Bool("static", false, "add the static FAC-predictability verdict column (internal/staticfac)")
		preds  = flag.Bool("predictors", false, "add per-predictor columns: how each zoo machine (internal/predict) fares on the replaying sites")
	)
	flag.Parse()

	p, err := buildInput(*bench, flag.Args(), *falign)
	if err != nil {
		fatal(err)
	}
	blockBits := uint(5)
	if *block == 16 {
		blockBits = 4
	}
	geom := fac.Config{BlockBits: blockBits, SetBits: 14}

	// Functional pass: the Section 2 reference-behaviour summary over
	// every executed access.
	prof, _, err := profile.Run(p, 2_000_000_000, geom)
	if err != nil {
		fatal(err)
	}

	// Timing pass: the FAC machine with a site collector on the event
	// stream, attributing each speculative access to its static site.
	cfg := pipeline.DefaultConfig()
	cfg.FAC = true
	cfg.SpeculateRegReg = true // attribute R+R failures too
	cfg.DCache.BlockSize = *block
	sites := obs.NewSiteCollector()
	if _, err := core.RunWithSink(p, cfg, 2_000_000_000, sites); err != nil {
		fatal(err)
	}

	fmt.Printf("instructions %d, loads %d, stores %d\n", prof.Insts, prof.Loads, prof.Stores)
	fmt.Printf("load breakdown: global %.1f%%, stack %.1f%%, general %.1f%%\n",
		100*prof.LoadTypeShare(profile.Global),
		100*prof.LoadTypeShare(profile.Stack),
		100*prof.LoadTypeShare(profile.General))
	fmt.Printf("failure rates (block %d): loads %.1f%%, stores %.1f%% (no-R+R: %.1f%% / %.1f%%)\n\n",
		*block, 100*prof.LoadFailRate(0), 100*prof.StoreFailRate(0),
		100*prof.LoadFailRateNoRR(0), 100*prof.StoreFailRateNoRR(0))

	// Optional cross-predictor passes: each zoo machine replays the same
	// program with its own site collector, so every FAC-replaying site can
	// be compared against what the alternatives would have done there.
	altNames := []string{"pcax", "stride", "selective"}
	altSites := make(map[string]*obs.SiteCollector)
	if *preds {
		for _, name := range altNames {
			acfg := pipeline.DefaultConfig()
			acfg.Predictor = name
			acfg.SpeculateRegReg = true
			acfg.DCache.BlockSize = *block
			sc := obs.NewSiteCollector()
			if _, err := core.RunWithSink(p, acfg, 2_000_000_000, sc); err != nil {
				fatal(err)
			}
			altSites[name] = sc
		}
	}

	var analysis *staticfac.Analysis
	if *static {
		analysis = staticfac.Analyze(p, cfg.FACGeometry())
		s := analysis.Summary()
		claims := 0
		for i := range analysis.Sites {
			if analysis.Sites[i].CellKind != staticfac.CellNone {
				claims++
			}
		}
		fmt.Printf("static verdicts: proven_predictable %d, proven_failing %d, unknown %d of %d sites [classified %.1f%%], %d memory-cell value claims\n\n",
			s.ByVerdict[staticfac.VerdictPredictable],
			s.ByVerdict[staticfac.VerdictFailing],
			s.ByVerdict[staticfac.VerdictUnknown],
			s.Sites, 100*s.Classified(), claims)
	}

	list := sites.TopFailing(*top)
	fmt.Printf("top mispredicting sites (speculated accesses on the FAC machine):\n")
	header := []string{"pc", "fails", "rate", "signals"}
	if *static {
		header = append(header, "static")
	}
	if *preds {
		header = append(header, altNames...)
		header = append(header, "best")
	}
	header = append(header, "instruction", "function")
	widths := map[string]int{"pc": 10, "fails": 10, "rate": 8, "signals": 24,
		"static": 15, "pcax": 9, "stride": 9, "selective": 9, "best": 10, "instruction": 28}
	for _, h := range header {
		if wd := widths[h]; wd > 0 {
			fmt.Printf("%-*s ", wd, h)
		} else {
			fmt.Printf("%s", h)
		}
	}
	fmt.Println()
	for _, s := range list {
		in, _ := p.InstAt(s.PC)
		cells := []string{
			fmt.Sprintf("%#08x", s.PC),
			fmt.Sprintf("%d", s.Fails),
			fmt.Sprintf("%5.1f%%", 100*s.FailRate()),
			s.FailMask.String(),
		}
		if *static {
			verdict := "-"
			if site := analysis.SiteAt(s.PC); site != nil {
				verdict = site.Verdict.String()
			}
			cells = append(cells, verdict)
		}
		if *preds {
			// Which predictor would have covered this replaying site: a
			// machine covers it when it speculates there and mispredicts
			// less often than the FAC machine did.
			best, bestRate := "none", s.FailRate()
			for _, name := range altNames {
				alt := altSites[name].Sites[s.PC]
				switch {
				case alt == nil || alt.Speculated+alt.NoPredict == 0:
					cells = append(cells, "-")
				case alt.Speculated == 0:
					cells = append(cells, "declined")
				default:
					cells = append(cells, fmt.Sprintf("%5.1f%%", 100*alt.FailRate()))
					if alt.FailRate() < bestRate {
						best, bestRate = name, alt.FailRate()
					}
				}
			}
			cells = append(cells, best)
		}
		cells = append(cells, in.String(), p.FuncName(s.PC))
		for i, c := range cells {
			if wd := widths[header[i]]; wd > 0 {
				fmt.Printf("%-*s ", wd, c)
			} else {
				fmt.Printf("%s", c)
			}
		}
		fmt.Println()
	}
	if len(list) == 0 {
		fmt.Println("  (none — every access predicted)")
	}
}

func buildInput(bench string, args []string, falign bool) (*prog.Program, error) {
	if bench != "" {
		w, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		tc := workload.BaseToolchain()
		if falign {
			tc = workload.FACToolchain()
		}
		return workload.Build(w, tc)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("need exactly one input file (or -benchmark NAME)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	link := prog.DefaultConfig()
	opts := minic.BaseOptions()
	if falign {
		opts = minic.FACOptions()
		link.AlignGP = true
	}
	if strings.HasSuffix(args[0], ".s") {
		obj, err := asm.Assemble(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Link(obj, link)
	}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		return nil, err
	}
	return core.Build(asmText, link)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facprof:", err)
	os.Exit(1)
}
