// Command facc compiles MiniC source to assembly for the extended MIPS-like
// target, optionally enabling the paper's fast-address-calculation software
// support (Section 4 alignment optimizations).
//
// Usage:
//
//	facc [-falign] [-fno-strength-reduce] [-o out.s] input.c
//	facc -benchmark compress            # compile a built-in workload
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/minic"
	"repro/internal/workload"
)

func main() {
	var (
		out    = flag.String("o", "", "output file (default stdout)")
		falign = flag.Bool("falign", false, "enable fast-address-calculation alignment optimizations")
		noSR   = flag.Bool("fno-strength-reduce", false, "disable strength reduction of array subscripts")
		peep   = flag.Bool("fpeephole", false, "enable peephole cleanups of the generated assembly")
		bench  = flag.String("benchmark", "", "compile a built-in benchmark instead of a file")
	)
	flag.Parse()

	var src string
	switch {
	case *bench != "":
		w, err := workload.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		src = w.Source
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: facc [flags] input.c   (or -benchmark NAME; see -h)")
		os.Exit(2)
	}

	opts := minic.BaseOptions()
	if *falign {
		opts = minic.FACOptions()
	}
	if *noSR {
		opts.StrengthReduce = false
	}
	if *peep {
		opts.Peephole = true
	}
	asmText, err := minic.Compile(src, opts)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(asmText)
		return
	}
	if err := os.WriteFile(*out, []byte(asmText), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facc:", err)
	os.Exit(1)
}
