// Command facsim runs a program on the timing simulator and reports the
// paper's statistics: cycles, IPC, cache behaviour, and — when fast address
// calculation is enabled — prediction and bandwidth outcomes.
//
// The input is either a MiniC file (compiled on the fly), an assembly file
// (*.s), or a built-in benchmark (-benchmark NAME).
//
// Usage:
//
//	facsim [-fac] [-rr] [-falign] [-block 32] [-functional] input.c
//	facsim -fac -falign -benchmark qsortst
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/minic"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/workload"
)

func main() {
	var (
		facOn      = flag.Bool("fac", false, "enable fast address calculation")
		rr         = flag.Bool("rr", false, "speculate register+register accesses")
		falign     = flag.Bool("falign", false, "compile with software support (alignment optimizations)")
		block      = flag.Int("block", 32, "data cache block size (16 or 32)")
		functional = flag.Bool("functional", false, "functional run only (no timing)")
		maxInsts   = flag.Uint64("max-insts", 2_000_000_000, "instruction budget")
		bench      = flag.String("benchmark", "", "run a built-in benchmark")
		showOut    = flag.Bool("show-output", true, "echo program output")
		traceN     = flag.Int("trace", 0, "print the first N executed instructions with predictor annotations")
	)
	flag.Parse()

	p, err := buildInput(*bench, flag.Args(), *falign)
	if err != nil {
		fatal(err)
	}

	if *traceN > 0 {
		if err := printTrace(p, *traceN, *block); err != nil {
			fatal(err)
		}
		return
	}

	if *functional {
		e, err := core.RunFunctional(p, *maxInsts)
		if err != nil {
			fatal(err)
		}
		if *showOut {
			fmt.Print(e.Out.String())
		}
		fmt.Printf("\ninstructions  %d\nexit code     %d\n", e.InstCount, e.ExitCode)
		return
	}

	cfg := pipeline.DefaultConfig()
	cfg.FAC = *facOn
	cfg.SpeculateRegReg = *rr
	cfg.DCache.BlockSize = *block
	res, err := core.Run(p, cfg, *maxInsts)
	if err != nil {
		fatal(err)
	}
	if *showOut {
		fmt.Print(res.Output)
	}
	st := res.Stats
	fmt.Printf(`
instructions      %d
cycles            %d
IPC               %.3f
loads / stores    %d / %d
branch mispred    %.1f%% (%d of %d)
I-cache miss      %.2f%%
D-cache miss      %.2f%%
store-buf stalls  %d
mem footprint     %d KB
`, st.Insts, st.Cycles, st.IPC(), st.Loads, st.Stores,
		pct(st.BranchMispredicts, st.BranchLookups), st.BranchMispredicts, st.BranchLookups,
		100*st.ICache.MissRatio(), 100*st.DCache.MissRatio(),
		st.StoreBufferFullStalls, res.MemFootprint>>10)
	if *facOn {
		fmt.Printf(`fast address calculation:
  loads speculated   %d (%.1f%% failed)
  stores speculated  %d (%.1f%% failed)
  bandwidth overhead %.1f%% of references
`, st.LoadsSpeculated, 100*st.LoadFailRate(),
			st.StoresSpeculated, 100*st.StoreFailRate(),
			100*st.BandwidthOverhead())
	}
}

// printTrace disassembles the first n executed instructions, annotating
// memory accesses with their effective address and the fast-address-
// calculation outcome.
func printTrace(p *prog.Program, n, block int) error {
	blockBits := uint(5)
	if block == 16 {
		blockBits = 4
	}
	geom := fac.Config{BlockBits: blockBits, SetBits: 14}
	e := emu.New(p)
	e.MaxInsts = uint64(n) + 1
	for i := 0; i < n && !e.Halted; i++ {
		tr, err := e.Step()
		if err != nil {
			return err
		}
		line := fmt.Sprintf("%8d  %#08x  %-30s", i, tr.PC, tr.Inst.String())
		if tr.Inst.Op.IsMem() {
			res := geom.Predict(tr.Base, tr.Offset, tr.IsRegOffset)
			verdict := "fac:ok"
			if !res.OK {
				verdict = "fac:" + res.Failure.String()
			}
			line += fmt.Sprintf("  ea=%#08x  %s", tr.EffAddr, verdict)
		} else if tr.Inst.Op.IsControl() && tr.NextPC != tr.PC+4 {
			line += fmt.Sprintf("  -> %#08x", tr.NextPC)
		}
		fmt.Println(line)
	}
	return nil
}

func buildInput(bench string, args []string, falign bool) (*prog.Program, error) {
	link := prog.DefaultConfig()
	opts := minic.BaseOptions()
	if falign {
		opts = minic.FACOptions()
		link.AlignGP = true
	}
	if bench != "" {
		w, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		tc := workload.BaseToolchain()
		if falign {
			tc = workload.FACToolchain()
		}
		return workload.Build(w, tc)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("need exactly one input file (or -benchmark NAME)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".s") {
		obj, err := asm.Assemble(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Link(obj, link)
	}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		return nil, err
	}
	return core.Build(asmText, link)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facsim:", err)
	os.Exit(1)
}
