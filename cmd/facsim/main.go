// Command facsim runs a program on the timing simulator and reports the
// paper's statistics: cycles, IPC, cache behaviour, the per-cause stall
// breakdown, and — when fast address calculation is enabled — prediction
// and bandwidth outcomes.
//
// The input is either a MiniC file (compiled on the fly), an assembly file
// (*.s), or a built-in benchmark (-benchmark NAME).
//
// Usage:
//
//	facsim [-fac] [-rr] [-falign] [-block 32] [-functional] input.c
//	facsim -fac -falign -benchmark qsortst
//	facsim -fac -benchmark compress -json run.json   # RunRecord export
//	facsim -fac -trace 40 -benchmark qsortst         # annotated issue trace
//
// -trace consumes the simulator's observability event stream
// (internal/obs): each line is one issued instruction; memory operations
// are annotated with their effective address and, when the simulated
// machine speculated, the verification verdict of that access.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/predict"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		facOn      = flag.Bool("fac", false, "enable fast address calculation")
		predName   = flag.String("predictor", "", "address-prediction machine (fac, pcax, stride, selective); -fac is shorthand for -predictor fac")
		rr         = flag.Bool("rr", false, "speculate register+register accesses")
		falign     = flag.Bool("falign", false, "compile with software support (alignment optimizations)")
		block      = flag.Int("block", 32, "data cache block size (16 or 32)")
		functional = flag.Bool("functional", false, "functional run only (no timing)")
		maxInsts   = flag.Uint64("max-insts", 2_000_000_000, "instruction budget")
		bench      = flag.String("benchmark", "", "run a built-in benchmark")
		showOut    = flag.Bool("show-output", true, "echo program output")
		traceN     = flag.Int("trace", 0, "print the first N issued instructions with predictor annotations")
		hist       = flag.Bool("hist", false, "print the load-latency histogram")
		jsonOut    = flag.String("json", "", "write the run's RunRecord report to this file")
	)
	flag.Parse()

	p, err := buildInput(*bench, flag.Args(), *falign)
	if err != nil {
		fatal(err)
	}

	cfg := pipeline.DefaultConfig()
	cfg.FAC = *facOn
	cfg.Predictor = *predName
	cfg.SpeculateRegReg = *rr
	cfg.DCache.BlockSize = *block
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	if *traceN > 0 {
		if err := printTrace(p, cfg, *traceN); err != nil {
			fatal(err)
		}
		return
	}

	if *functional {
		e, err := core.RunFunctional(p, *maxInsts)
		if err != nil {
			fatal(err)
		}
		if *showOut {
			fmt.Print(e.Out.String())
		}
		fmt.Printf("\ninstructions  %d\nexit code     %d\n", e.InstCount, e.ExitCode)
		return
	}

	res, err := core.Run(p, cfg, *maxInsts)
	if err != nil {
		fatal(err)
	}
	if *showOut {
		fmt.Print(res.Output)
	}
	st := res.Stats
	fmt.Printf(`
instructions      %d
cycles            %d
IPC               %.3f
loads / stores    %d / %d
branch mispred    %.1f%% (%d of %d)
I-cache miss      %.2f%%
D-cache miss      %.2f%%
store-buf stalls  %d
mem footprint     %d KB
`, st.Insts, st.Cycles, st.IPC(), st.Loads, st.Stores,
		pct(st.BranchMispredicts, st.BranchLookups), st.BranchMispredicts, st.BranchLookups,
		100*st.ICache.MissRatio(), 100*st.DCache.MissRatio(),
		st.StoreBufferFullStalls, res.MemFootprint>>10)

	fmt.Printf("stall cycles      %d (of %d issue cycles active)\n",
		st.StallTotal(), st.IssueActiveCycles+st.StallTotal())
	for c := obs.StallCause(0); c < obs.NumStallCauses; c++ {
		if n := st.StallCycles[c]; n > 0 {
			fmt.Printf("  %-14s  %d (%.1f%%)\n", c, n, pct(n, st.StallTotal()))
		}
	}
	if *hist {
		fmt.Printf("load latency (issue to use, cycles):\n%s", stats.FormatHist(st.LoadLatency, "cyc"))
	}
	if name := cfg.PredictorName(); name != "" {
		fmt.Printf(`address prediction (%s):
  loads speculated   %d (%.1f%% failed)
  stores speculated  %d (%.1f%% failed)
  bandwidth overhead %.1f%% of references
`, name, st.LoadsSpeculated, 100*st.LoadFailRate(),
			st.StoresSpeculated, 100*st.StoreFailRate(),
			100*st.BandwidthOverhead())
		if n := st.LoadsNoPredict + st.StoresNoPredict; n > 0 {
			fmt.Printf("  declined           %d (%d loads, %d stores)\n",
				n, st.LoadsNoPredict, st.StoresNoPredict)
		}
	}

	if *jsonOut != "" {
		name := *bench
		if name == "" && flag.NArg() == 1 {
			name = flag.Arg(0)
		}
		tc := "base"
		if *falign {
			tc = "fac"
		}
		rep := obs.NewReport("cmd/facsim", "")
		rep.Add(st.Record(name, "", tc, machineName(cfg)))
		data, err := rep.Encode()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("run record written to %s\n", *jsonOut)
	}
}

// machineName summarizes the CLI-configured machine for the RunRecord.
func machineName(cfg pipeline.Config) string {
	name := "base"
	if p := cfg.PredictorName(); p != "" {
		name = p
	}
	name += fmt.Sprintf("%d", cfg.DCache.BlockSize)
	if cfg.SpeculateRegReg {
		name += "+rr"
	}
	return name
}

// traceSink renders the first N issued instructions from the event
// stream. In-order issue delivers instructions in program order, so the
// Nth issue event corresponds to the Nth trace the source produced; a
// KindFACPredict event always immediately precedes the issue event of
// the access it belongs to.
type traceSink struct {
	traces   []emu.Trace
	idx      int
	havePred bool
	pred     obs.Event
	// predName and signals label speculation verdicts with the active
	// machine's own name and failure-signal vocabulary.
	predName string
	signals  []string
}

// failName renders a failure mask with the machine's signal names (for
// the fac machine this matches fac.Failure.String exactly).
func (t *traceSink) failName(f fac.Failure) string {
	s := ""
	for i, name := range t.signals {
		if f&(fac.Failure(1)<<i) != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	if s == "" {
		s = f.String()
	}
	return s
}

func (t *traceSink) Event(e obs.Event) {
	switch e.Kind {
	case obs.KindFACPredict:
		t.pred, t.havePred = e, true
	case obs.KindIssue:
		if t.idx >= len(t.traces) {
			return
		}
		tr := t.traces[t.idx]
		line := fmt.Sprintf("%8d  %#08x  %-30s", t.idx, tr.PC, tr.Inst.String())
		if tr.Inst.Op.IsMem() {
			line += fmt.Sprintf("  ea=%#08x", tr.EffAddr)
			if t.havePred && t.pred.PC == e.PC {
				verdict := t.predName + ":ok"
				if t.pred.Flags&obs.FlagNoPredict != 0 {
					verdict = t.predName + ":nopredict"
				} else if t.pred.Fail != 0 {
					verdict = t.predName + ":" + t.failName(t.pred.Fail)
				}
				line += "  " + verdict
			}
		} else if tr.Inst.Op.IsControl() && tr.NextPC != tr.PC+isa.InstBytes {
			line += fmt.Sprintf("  -> %#08x", tr.NextPC)
		}
		fmt.Println(line)
		t.idx++
		t.havePred = false
	}
}

// limitedSource feeds at most n dynamic instructions to the pipeline,
// recording each trace for the sink to render.
type limitedSource struct {
	e    *emu.Emulator
	n    int
	sink *traceSink
}

func (s *limitedSource) Next() (emu.Trace, bool, error) {
	if s.n <= 0 || s.e.Halted {
		return emu.Trace{}, false, nil
	}
	tr, err := s.e.Step()
	if err != nil {
		return emu.Trace{}, false, err
	}
	s.n--
	s.sink.traces = append(s.sink.traces, tr)
	return tr, true, nil
}

// printTrace simulates the first n instructions on the configured
// machine, printing each issue with its observability annotations.
func printTrace(p *prog.Program, cfg pipeline.Config, n int) error {
	name := cfg.PredictorName()
	sink := &traceSink{predName: name, signals: predict.SignalNamesFor(name)}
	if name == "selective" && cfg.StaticTable == nil {
		cfg.StaticTable = predict.BuildStaticTable(p, cfg.FACGeometry())
	}
	src := &limitedSource{e: emu.New(p), n: n, sink: sink}
	_, err := pipeline.RunObserved(cfg, src, sink)
	return err
}

func buildInput(bench string, args []string, falign bool) (*prog.Program, error) {
	link := prog.DefaultConfig()
	opts := minic.BaseOptions()
	if falign {
		opts = minic.FACOptions()
		link.AlignGP = true
	}
	if bench != "" {
		w, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		tc := workload.BaseToolchain()
		if falign {
			tc = workload.FACToolchain()
		}
		return workload.Build(w, tc)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("need exactly one input file (or -benchmark NAME)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(args[0], ".s") {
		obj, err := asm.Assemble(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Link(obj, link)
	}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		return nil, err
	}
	return core.Build(asmText, link)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facsim:", err)
	os.Exit(1)
}
