package experiments

import (
	"repro/internal/stats"
	"repro/internal/workload"
)

// AGIRow compares pipeline organizations on one benchmark (paper Section 6,
// after Golden & Mudge 1994): the traditional 5-stage LUI pipeline, the
// AGI organization (dedicated address-generation stage), and the paper's
// answer — LUI with fast address calculation.
type AGIRow struct {
	Name  string
	Class workload.Class
	// Speedups over the LUI baseline (values < 1 are slowdowns).
	AGI   float64
	FAC   float64 // hardware-only FAC on the LUI pipeline
	FACSW float64 // FAC plus software support
}

// AGIResult is the full comparison.
type AGIResult struct {
	Rows   []AGIRow
	IntAvg [3]float64
	FPAvg  [3]float64
}

// CompareAGI measures the two pipeline organizations against fast address
// calculation.
func (s *Suite) CompareAGI() (*AGIResult, error) {
	pairs := [][2]string{
		{"base", string(MBase32)}, {"base", string(MAGI)},
		{"base", string(MFAC32)}, {"fac", string(MFAC32)},
	}
	if err := s.Prefetch(pairs); err != nil {
		return nil, err
	}
	res := &AGIResult{}
	var ints, fps []AGIRow
	for _, w := range workload.All() {
		base, err := s.Timing(w, "base", MBase32)
		if err != nil {
			return nil, err
		}
		agi, err := s.Timing(w, "base", MAGI)
		if err != nil {
			return nil, err
		}
		hw, err := s.Timing(w, "base", MFAC32)
		if err != nil {
			return nil, err
		}
		hwsw, err := s.Timing(w, "fac", MFAC32)
		if err != nil {
			return nil, err
		}
		row := AGIRow{
			Name: w.Name, Class: w.Class,
			AGI:   float64(base.Cycles) / float64(agi.Cycles),
			FAC:   float64(base.Cycles) / float64(hw.Cycles),
			FACSW: float64(base.Cycles) / float64(hwsw.Cycles),
		}
		res.Rows = append(res.Rows, row)
		if w.Class == workload.Int {
			ints = append(ints, row)
		} else {
			fps = append(fps, row)
		}
	}
	avg := func(rows []AGIRow, weights func(AGIRow) float64) [3]float64 {
		var a, f, fs, ws []float64
		for _, r := range rows {
			a = append(a, r.AGI)
			f = append(f, r.FAC)
			fs = append(fs, r.FACSW)
			ws = append(ws, weights(r))
		}
		return [3]float64{
			stats.WeightedMean(a, ws), stats.WeightedMean(f, ws), stats.WeightedMean(fs, ws),
		}
	}
	weight := func(r AGIRow) float64 { return 1 } // unweighted: cycles unavailable per row here
	res.IntAvg = avg(ints, weight)
	res.FPAvg = avg(fps, weight)
	return res, nil
}

// Table renders the comparison as text.
func (r *AGIResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Pipeline organizations: AGI (Jouppi) vs. fast address calculation, speedup over the LUI baseline",
		Headers: []string{"benchmark", "class", "AGI", "FAC (H/W)", "FAC (H/W+S/W)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Class, stats.F3(row.AGI), stats.F3(row.FAC), stats.F3(row.FACSW))
	}
	t.AddRow("Int-Avg", "int", stats.F3(r.IntAvg[0]), stats.F3(r.IntAvg[1]), stats.F3(r.IntAvg[2]))
	t.AddRow("FP-Avg", "fp", stats.F3(r.FPAvg[0]), stats.F3(r.FPAvg[1]), stats.F3(r.FPAvg[2]))
	return t
}
