package experiments

import (
	"repro/internal/emu"
	"repro/internal/ltb"
	"repro/internal/stats"
	"repro/internal/workload"
)

// LTBRow compares fast address calculation against the load target buffer
// of Golden & Mudge (paper Section 6) on one benchmark: the fraction of
// loads whose effective address each mechanism predicts correctly.
type LTBRow struct {
	Name  string
	Class workload.Class
	// Success rates over all loads.
	FACHW     float64 // fast address calculation, hardware only
	FACSW     float64 // with Section 4 software support
	LTBLast   float64 // 1K-entry LTB, last-address policy
	LTBStride float64 // 1K-entry LTB, stride policy
}

// LTBResult is the full comparison.
type LTBResult struct {
	Rows []LTBRow
}

// CompareLTB measures the Related Work claim that predicting from the
// operands (FAC) beats predicting from the load's PC (LTB).
func (s *Suite) CompareLTB() (*LTBResult, error) {
	if err := s.PrefetchFunctional(); err != nil {
		return nil, err
	}
	res := &LTBResult{}
	for _, w := range workload.All() {
		base, err := s.Functional(w, "base")
		if err != nil {
			return nil, err
		}
		opt, err := s.Functional(w, "fac")
		if err != nil {
			return nil, err
		}
		row := LTBRow{
			Name: w.Name, Class: w.Class,
			// Geometry index 1 is the 32-byte-block predictor.
			FACHW: 1 - base.Profile.LoadFailRate(1),
			FACSW: 1 - opt.Profile.LoadFailRate(1),
		}

		// Replay the baseline binary through the two LTB variants.
		p, err := s.Program(w, "base")
		if err != nil {
			return nil, err
		}
		last := ltb.New(ltb.Config{Entries: 1024})
		stride := ltb.New(ltb.Config{Entries: 1024, Stride: true})
		e := emu.New(p)
		e.MaxInsts = s.MaxInsts
		for !e.Halted {
			tr, err := e.Step()
			if err != nil {
				return nil, err
			}
			if tr.Inst.Op.IsLoad() {
				last.Access(tr.PC, tr.EffAddr)
				stride.Access(tr.PC, tr.EffAddr)
			}
		}
		row.LTBLast = last.Accuracy()
		row.LTBStride = stride.Accuracy()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the comparison as text.
func (r *LTBResult) Table() *stats.Table {
	t := &stats.Table{
		Title: "FAC vs. load target buffer (Golden & Mudge): correct load-address predictions, % of loads",
		Headers: []string{"benchmark", "class",
			"FAC (H/W)", "FAC (H/W+S/W)", "LTB last-addr", "LTB stride"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Class,
			stats.Pct(row.FACHW), stats.Pct(row.FACSW),
			stats.Pct(row.LTBLast), stats.Pct(row.LTBStride))
	}
	return t
}
