package experiments

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/depslog"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
)

// runPass runs a fixed two-run grid through a fresh Suite wired to the
// given cache directory and deps log, and returns the counts plus the
// encoded report.
func runPass(t *testing.T, cacheDir, depsPath string) (RunCounts, []byte, pipeline.Stats) {
	t.Helper()
	c, err := simsvc.OpenDiskCache(cacheDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := depslog.Open(depsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s := NewSuite()
	s.SetCache(c)
	s.SetDeps(l)
	w := testWorkload(t, "queens")
	st, err := s.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Timing(w, "fac", MFAC32); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Report("test").Encode()
	if err != nil {
		t.Fatal(err)
	}
	return s.Counts(), rep, st
}

// TestSuiteIncrementalDeps: with a deps log attached, an unchanged
// re-run of the grid re-simulates nothing — every run is proven clean by
// its recorded input hashes and served from the cache — while an evicted
// cache entry is honestly re-executed despite a clean verdict.
func TestSuiteIncrementalDeps(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	depsPath := filepath.Join(dir, "deps.jsonl")

	// Pass 1: cold — everything simulates, nothing is clean yet.
	c1, rep1, st1 := runPass(t, cacheDir, depsPath)
	if c1.Simulated != 2 || c1.CacheHits != 0 || c1.DepsClean != 0 {
		t.Fatalf("cold pass counts = %+v, want 2 simulated", c1)
	}

	// Pass 2: unchanged inputs — zero simulations, all runs deps-clean.
	// This is the acceptance line cmd/experiments prints as
	// "simulated=0 ... deps-clean=N".
	c2, rep2, st2 := runPass(t, cacheDir, depsPath)
	if c2.Simulated != 0 || c2.CacheHits != 2 || c2.DepsClean != 2 {
		t.Fatalf("unchanged re-run counts = %+v, want 0 simulated / 2 clean", c2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("rehydrated stats differ:\n%+v\nvs\n%+v", st1, st2)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("incremental re-run changed report bytes:\n%s\nvs\n%s", rep1, rep2)
	}

	// The log survives with build and run nodes for future audits.
	l, err := depslog.Open(depsPath)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() < 3 { // 2 run nodes + at least 1 build node
		t.Fatalf("deps log holds %d nodes, want run and build chains", l.Len())
	}
	l.Close()

	// Pass 3: evict the cache behind the log's back. The nodes are still
	// clean, but clean-without-a-cached-result must re-simulate, not
	// fabricate — the verdict never substitutes for the bytes.
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			os.Remove(filepath.Join(cacheDir, e.Name()))
		}
	}
	c3, rep3, _ := runPass(t, cacheDir, depsPath)
	if c3.Simulated != 2 || c3.DepsClean != 0 {
		t.Fatalf("evicted-cache pass counts = %+v, want 2 re-simulated", c3)
	}
	if !bytes.Equal(rep1, rep3) {
		t.Fatal("re-simulation after eviction changed report bytes")
	}
}

// TestSuiteRemoteTiming: a suite routed at a live daemon produces the
// same stats and report bytes as local simulation, and the accounting
// shows the run was served remotely.
func TestSuiteRemoteTiming(t *testing.T) {
	runner := &simsvc.Runner{Resolve: func(m string) (pipeline.Config, error) {
		return MachineConfig(Machine(m))
	}}
	srv, err := simsvc.NewServer(simsvc.ServerConfig{Workers: 2}, runner)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	w := testWorkload(t, "queens")

	local := NewSuite()
	stLocal, err := local.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	repLocal, err := local.Report("test").Encode()
	if err != nil {
		t.Fatal(err)
	}

	rem := NewSuite()
	rem.SetRemote(&simsvc.Client{Base: hs.URL})
	stRemote, err := rem.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	repRemote, err := rem.Report("test").Encode()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(stLocal, stRemote) {
		t.Fatalf("remote stats differ:\n%+v\nvs\n%+v", stLocal, stRemote)
	}
	if !bytes.Equal(repLocal, repRemote) {
		t.Fatalf("remote report differs:\n%s\nvs\n%s", repLocal, repRemote)
	}
	if c := rem.Counts(); c.Remote != 1 || c.Simulated != 0 {
		t.Fatalf("remote suite counts = %+v, want 1 remote / 0 simulated", c)
	}
}
