// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the substitute benchmark suite: Figure 2 (load
// latency potential), Table 1 (reference behaviour), Figure 3 (offset
// distributions), Table 3 (baseline statistics and prediction failure
// rates), Table 4 (software support), Figure 6 (speedups), Table 6 (cache
// bandwidth overhead), plus the ablations DESIGN.md calls out (tag adder,
// store-buffer depth, MSHR count, block size).
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/depslog"
	"repro/internal/fac"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/prog"
	"repro/internal/simsvc"
	"repro/internal/workload"
)

// Geometries used throughout: the paper's 16KB direct-mapped cache with 16-
// and 32-byte blocks.
var (
	Geo16 = fac.Config{BlockBits: 4, SetBits: 14}
	Geo32 = fac.Config{BlockBits: 5, SetBits: 14}
)

// Machine names every simulator configuration used by the experiments.
type Machine string

const (
	MBase32     Machine = "base32"      // Table 5 baseline, 32B blocks
	MBase16     Machine = "base16"      // baseline with 16B data blocks
	MOneCycle   Machine = "1cyc"        // 1-cycle loads (Figure 2)
	MPerfect    Machine = "perfect"     // perfect data cache (Figure 2)
	MOnePerfect Machine = "1cyc+perf"   // both (Figure 2)
	MFAC16      Machine = "fac16"       // FAC, 16B blocks, no R+R speculation
	MFAC32      Machine = "fac32"       // FAC, 32B blocks, no R+R speculation
	MFAC16RR    Machine = "fac16+rr"    // FAC, 16B blocks, R+R speculation
	MFAC32RR    Machine = "fac32+rr"    // FAC, 32B blocks, R+R speculation
	MFAC32Tag   Machine = "fac32+tag"   // ablation: tag adder
	MFAC32SB4   Machine = "fac32+sb4"   // ablation: 4-entry store buffer
	MFAC32SB64  Machine = "fac32+sb64"  // ablation: 64-entry store buffer
	MFAC32MSHR1 Machine = "fac32+mshr1" // ablation: single outstanding miss
	MAGI        Machine = "agi"         // related work: AGI pipeline organization

	// Predictor-zoo machines (internal/predict), all at 32-byte blocks.
	MPCAX      Machine = "pcax"      // PC-indexed last-address table
	MStride    Machine = "stride"    // PC-indexed two-delta stride table
	MSelective Machine = "selective" // FAC gated by static proven-failing verdicts
)

// MachineConfig resolves a machine name to its simulator configuration.
func MachineConfig(m Machine) (pipeline.Config, error) {
	cfg := pipeline.DefaultConfig()
	switch m {
	case MBase32:
	case MBase16:
		cfg.DCache.BlockSize = 16
	case MOneCycle:
		cfg.LoadLatency = 1
	case MPerfect:
		cfg.PerfectDCache = true
	case MOnePerfect:
		cfg.LoadLatency = 1
		cfg.PerfectDCache = true
	case MFAC16:
		cfg.FAC = true
		cfg.DCache.BlockSize = 16
	case MFAC32:
		cfg.FAC = true
	case MFAC16RR:
		cfg.FAC = true
		cfg.DCache.BlockSize = 16
		cfg.SpeculateRegReg = true
	case MFAC32RR:
		cfg.FAC = true
		cfg.SpeculateRegReg = true
	case MFAC32Tag:
		cfg.FAC = true
		cfg.FACGeom = fac.Config{BlockBits: 5, SetBits: 14, TagAdder: true}
	case MFAC32SB4:
		cfg.FAC = true
		cfg.StoreBufferEntries = 4
	case MFAC32SB64:
		cfg.FAC = true
		cfg.StoreBufferEntries = 64
	case MFAC32MSHR1:
		cfg.FAC = true
		cfg.DCache.MSHRs = 1
	case MAGI:
		cfg.AGI = true
		cfg.MispredictPenalty++ // branches resolve one stage later
	case MPCAX:
		cfg.Predictor = "pcax"
	case MStride:
		cfg.Predictor = "stride"
	case MSelective:
		cfg.Predictor = "selective"
	default:
		return cfg, fmt.Errorf("experiments: unknown machine %q", m)
	}
	return cfg, nil
}

// FuncResult caches one functional (profiling) run.
type FuncResult struct {
	Profile *profile.Profile
	Insts   uint64
	MemUse  uint64
	Output  string
}

// Suite memoizes program builds, functional profiles, and timing runs
// across experiments. Every timing run also yields a canonical
// obs.RunRecord, so any sequence of experiments can be exported as one
// machine-readable report (cmd/experiments -json).
type Suite struct {
	MaxInsts uint64

	// flight collapses concurrent identical work (builds, profiles, timing
	// runs) onto one leader. The memo maps alone cannot do this: they are
	// consulted under mu but filled only after the work completes, so two
	// workers racing on the same key both used to run it.
	flight simsvc.Flight

	mu       sync.Mutex
	programs map[string]*prog.Program
	funcs    map[string]*FuncResult
	timings  map[string]pipeline.Stats
	records  map[string]obs.RunRecord
	disk     *simsvc.DiskCache
	deps     *depslog.Log
	remote   *simsvc.Client
	counts   RunCounts
}

// RunCounts is the suite's execution accounting for one process: where
// each timing run's result actually came from. DepsClean counts runs the
// deps log proved unchanged (and the cache then served) — an unchanged
// grid re-run reports Simulated == 0 with DepsClean == everything.
type RunCounts struct {
	// Simulated counts fresh local simulations.
	Simulated int `json:"simulated"`
	// Remote counts runs served by a remote daemon or fleet coordinator.
	Remote int `json:"remote"`
	// CacheHits counts runs rehydrated from the persistent disk cache.
	CacheHits int `json:"cache_hits"`
	// DepsClean counts cache hits the deps log had already proven clean.
	DepsClean int `json:"deps_clean"`
}

// NewSuite creates an experiment suite.
func NewSuite() *Suite {
	return &Suite{
		MaxInsts: simsvc.DefaultMaxInsts,
		programs: make(map[string]*prog.Program),
		funcs:    make(map[string]*FuncResult),
		timings:  make(map[string]pipeline.Stats),
		records:  make(map[string]obs.RunRecord),
	}
}

// SetCache attaches a persistent result cache: timing runs whose
// content-addressed key (workload, toolchain, machine config, simulator
// version) is present are rehydrated from disk instead of simulated, and
// fresh runs are written back. The same directory format is shared with
// the facd daemon.
func (s *Suite) SetCache(c *simsvc.DiskCache) {
	s.mu.Lock()
	s.disk = c
	s.mu.Unlock()
}

// SetDeps attaches a dependency log: every build and timing run records
// its input hashes, and a run whose recorded inputs are unchanged is
// counted clean instead of dirty when the cache serves it. The log is
// what turns "the cache happened to hit" into "nothing needed to run":
// cmd/experiments -deps reports the clean/dirty split after each pass.
func (s *Suite) SetDeps(l *depslog.Log) {
	s.mu.Lock()
	s.deps = l
	s.mu.Unlock()
}

// SetRemote routes named-machine timing runs to a simulation daemon (or
// fleet coordinator) instead of simulating locally. Determinism makes
// the substitution invisible: the daemon returns the exact RunRecord a
// local run would produce, so reports are byte-identical either way.
// Ad-hoc sweep configurations outside the named machine table still run
// locally — a remote daemon only resolves machine names.
func (s *Suite) SetRemote(c *simsvc.Client) {
	s.mu.Lock()
	s.remote = c
	s.mu.Unlock()
}

// Counts snapshots the suite's execution accounting.
func (s *Suite) Counts() RunCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// CacheStats reports the attached persistent cache's statistics, if any.
func (s *Suite) CacheStats() (simsvc.DiskCacheStats, bool) {
	s.mu.Lock()
	c := s.disk
	s.mu.Unlock()
	if c == nil {
		return simsvc.DiskCacheStats{}, false
	}
	return c.Stats(), true
}

func toolchain(name string) workload.Toolchain {
	if name == "fac" {
		return workload.FACToolchain()
	}
	return workload.BaseToolchain()
}

// Program builds (and caches) a workload under a toolchain ("base"/"fac").
// Concurrent callers for the same key share one build.
func (s *Suite) Program(w workload.Workload, tc string) (*prog.Program, error) {
	key := w.Name + "|" + tc
	s.mu.Lock()
	if p, ok := s.programs[key]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()
	v, _, err := s.flight.Do("prog|"+key, func() (any, error) {
		s.mu.Lock()
		if p, ok := s.programs[key]; ok {
			s.mu.Unlock()
			return p, nil
		}
		s.mu.Unlock()
		p, err := workload.Build(w, toolchain(tc))
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.programs[key] = p
		deps := s.deps
		s.mu.Unlock()
		if deps != nil {
			// Build nodes complete the source → binary → run chain in the
			// log. The build is a pure function of its inputs, so the
			// output id is content-derived too.
			in := map[string]string{"source": shaHex(w.Source), "toolchain": tc}
			_ = deps.Record("build|"+key, in, shaHex(w.Source+"|"+tc))
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*prog.Program), nil
}

// Functional profiles a workload (measuring both block geometries) and
// validates its output. Concurrent callers for the same key share one run.
func (s *Suite) Functional(w workload.Workload, tc string) (*FuncResult, error) {
	key := w.Name + "|" + tc
	s.mu.Lock()
	if r, ok := s.funcs[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	v, _, err := s.flight.Do("func|"+key, func() (any, error) {
		s.mu.Lock()
		if r, ok := s.funcs[key]; ok {
			s.mu.Unlock()
			return r, nil
		}
		s.mu.Unlock()
		p, err := s.Program(w, tc)
		if err != nil {
			return nil, err
		}
		prof, e, err := profile.Run(p, s.MaxInsts, Geo16, Geo32)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, tc, err)
		}
		if e.Out.String() != w.Expected {
			return nil, fmt.Errorf("%s/%s: output %q != expected %q", w.Name, tc, e.Out.String(), w.Expected)
		}
		r := &FuncResult{Profile: prof, Insts: e.InstCount, MemUse: e.Mem.Footprint(), Output: e.Out.String()}
		s.mu.Lock()
		s.funcs[key] = r
		s.mu.Unlock()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*FuncResult), nil
}

// Timing runs a workload on a machine (with caching and output validation).
func (s *Suite) Timing(w workload.Workload, tc string, m Machine) (pipeline.Stats, error) {
	cfg, err := MachineConfig(m)
	if err != nil {
		return pipeline.Stats{}, err
	}
	return s.timing(nil, w, tc, m, cfg, true)
}

// timing is the single path behind Timing and timingWithConfig: memoized,
// deduplicated across concurrent callers, persisted through the optional
// disk cache, and cancellable (ctx reaches the pipeline's cycle loop; a
// nil ctx disables the checks). record controls whether the run joins the
// suite's exportable report — named machines do, ad-hoc sweep
// configurations do not, matching the pre-existing report contents.
func (s *Suite) timing(ctx context.Context, w workload.Workload, tc string, m Machine, cfg pipeline.Config, record bool) (pipeline.Stats, error) {
	key := w.Name + "|" + tc + "|" + string(m)
	s.mu.Lock()
	if st, ok := s.timings[key]; ok {
		s.mu.Unlock()
		return st, nil
	}
	disk := s.disk
	deps := s.deps
	remote := s.remote
	s.mu.Unlock()

	v, shared, err := s.flight.Do("timing|"+key, func() (any, error) {
		s.mu.Lock()
		if st, ok := s.timings[key]; ok {
			s.mu.Unlock()
			return st, nil
		}
		s.mu.Unlock()

		var diskKey string
		if disk != nil || deps != nil {
			if k, err := simsvc.CacheKey(w, tc, string(m), cfg, s.MaxInsts); err == nil {
				diskKey = k
			}
		}
		node := "run|" + key
		var inputs map[string]string
		clean := false
		if deps != nil && diskKey != "" {
			inputs = runInputs(w, tc, m, cfg, s.MaxInsts)
			// Clean means: this node last ran with exactly these input
			// hashes and produced exactly this cache key. The result still
			// has to come from the cache — a clean node whose entry was
			// evicted is re-executed (and the accounting shows it).
			if out, ok := deps.Clean(node, inputs); ok && out == diskKey {
				clean = true
			}
		}
		finish := func(st pipeline.Stats, rec obs.RunRecord, bump func(*RunCounts)) {
			s.memoize(key, st, rec, record)
			s.mu.Lock()
			bump(&s.counts)
			s.mu.Unlock()
			if deps != nil && diskKey != "" {
				// Best effort: a lost deps entry only costs a "dirty" verdict
				// (and a cache probe) next run.
				_ = deps.Record(node, inputs, diskKey)
			}
		}

		// Persistent cache: a prior process (this tool or the facd daemon)
		// may have already simulated this exact configuration.
		if disk != nil && diskKey != "" {
			if rec, ok := disk.Get(diskKey); ok {
				st := pipeline.StatsFromRecord(rec)
				finish(st, rec, func(c *RunCounts) {
					c.CacheHits++
					if clean {
						c.DepsClean++
					}
				})
				return st, nil
			}
		}

		// Remote execution: named machines resolve on the daemon; ad-hoc
		// sweep configurations (record=false) only exist locally.
		if remote != nil && record {
			rctx := ctx
			if rctx == nil {
				rctx = context.Background()
			}
			rec, _, err := remote.RunSync(rctx, simsvc.JobSpec{
				Workload: w.Name, Toolchain: tc, Machine: string(m), MaxInsts: s.MaxInsts,
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s/%s: remote: %w", w.Name, tc, m, err)
			}
			st := pipeline.StatsFromRecord(rec)
			if disk != nil && diskKey != "" {
				disk.Put(diskKey, rec) // share the fetch with future local passes
			}
			finish(st, rec, func(c *RunCounts) { c.Remote++ })
			return st, nil
		}

		p, err := s.Program(w, tc)
		if err != nil {
			return nil, err
		}
		res, err := core.RunCtx(ctx, p, cfg, s.MaxInsts, nil)
		if err != nil {
			return nil, fmt.Errorf("%s/%s/%s: %w", w.Name, tc, m, err)
		}
		if res.Output != w.Expected {
			return nil, fmt.Errorf("%s/%s/%s: output %q != expected %q", w.Name, tc, m, res.Output, w.Expected)
		}
		rec := res.Stats.Record(w.Name, w.Class.String(), tc, string(m))
		if disk != nil && diskKey != "" {
			disk.Put(diskKey, rec) // best effort; a write failure only costs a future re-run
		}
		finish(res.Stats, rec, func(c *RunCounts) { c.Simulated++ })
		return res.Stats, nil
	})
	if err != nil {
		// A follower that inherited the leader's cancellation while its own
		// context is still live can safely retry; here we just surface it.
		if shared && ctx != nil && ctx.Err() == nil && errors.Is(err, context.Canceled) {
			return pipeline.Stats{}, fmt.Errorf("%s/%s/%s: deduplicated onto a canceled identical run: %w", w.Name, tc, m, err)
		}
		return pipeline.Stats{}, err
	}
	return v.(pipeline.Stats), nil
}

// runInputs hashes every input a timing run consumes, for the deps log.
// The set mirrors simsvc's cacheKeyDoc: if any hash here changes, the
// run's cache key changes too, so clean verdicts and cache hits can
// never disagree about what "unchanged" means.
func runInputs(w workload.Workload, tc string, m Machine, cfg pipeline.Config, maxInsts uint64) map[string]string {
	cfgJSON, _ := json.Marshal(cfg)
	return map[string]string{
		"source":    shaHex(w.Source),
		"expected":  shaHex(w.Expected),
		"toolchain": tc,
		"machine":   string(m),
		"config":    shaHex(string(cfgJSON)),
		"max_insts": strconv.FormatUint(maxInsts, 10),
		"simulator": simsvc.Version,
		"schema":    obs.RunRecordSchema,
	}
}

func shaHex(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// memoize records a finished timing run. The disk-sourced RunRecord is
// stored verbatim so a cache hit and a fresh simulation export the same
// bytes.
func (s *Suite) memoize(key string, st pipeline.Stats, rec obs.RunRecord, record bool) {
	s.mu.Lock()
	s.timings[key] = st
	if record {
		s.records[key] = rec
	}
	s.mu.Unlock()
}

// Report collects every timing run performed so far into a sorted,
// deterministically encodable report. Identical experiment sequences
// produce byte-identical Report.Encode output regardless of worker
// count or execution order.
func (s *Suite) Report(tool string) *obs.Report {
	rep := obs.NewReport(tool, runtime.Version())
	s.mu.Lock()
	for _, r := range s.records {
		rep.Add(r)
	}
	s.mu.Unlock()
	rep.Sort()
	return rep
}

// job is one unit of parallel work. The pool's context is canceled when
// any job fails; jobs that can stop early (timing runs) thread it into
// the simulator's cycle loop.
type job func(ctx context.Context) error

// runParallel executes jobs with a bounded worker pool. On the first
// failure it cancels the pool context — in-flight simulations abort at
// the next cycle-loop check and queued jobs are skipped — and returns
// the error of the earliest-submitted genuinely failed job, so the
// reported error does not depend on worker count or scheduling.
func runParallel(jobs []job) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	type task struct {
		idx int
		fn  job
	}
	ch := make(chan task)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if ctx.Err() != nil {
					errs[t.idx] = ctx.Err() // skipped: pool already canceled
					continue
				}
				if err := t.fn(ctx); err != nil {
					errs[t.idx] = err
					cancel()
				}
			}
		}()
	}
	for i, j := range jobs {
		ch <- task{i, j}
	}
	close(ch)
	wg.Wait()

	// Deterministic selection: the earliest submitted error that is not
	// collateral damage of the pool's own cancellation. cancel() is only
	// called on a genuine failure, so at least one such error exists
	// whenever any error does.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err // fallback, in case every error is cancellation
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

// Prefetch warms the timing cache for a set of (toolchain, machine) pairs
// across all workloads, in parallel.
func (s *Suite) Prefetch(pairs [][2]string) error {
	var jobs []job
	for _, w := range workload.All() {
		for _, pr := range pairs {
			w, tc, m := w, pr[0], Machine(pr[1])
			jobs = append(jobs, func(ctx context.Context) error {
				cfg, err := MachineConfig(m)
				if err != nil {
					return err
				}
				_, err = s.timing(ctx, w, tc, m, cfg, true)
				return err
			})
		}
	}
	return runParallel(jobs)
}

// PrefetchFunctional warms the profile cache for both toolchains.
func (s *Suite) PrefetchFunctional() error {
	var jobs []job
	for _, w := range workload.All() {
		for _, tc := range []string{"base", "fac"} {
			w, tc := w, tc
			jobs = append(jobs, func(context.Context) error {
				_, err := s.Functional(w, tc)
				return err
			})
		}
	}
	return runParallel(jobs)
}
