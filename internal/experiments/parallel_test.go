package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/simsvc"
)

// TestRunParallelDeterministicError: when several jobs fail, runParallel
// reports the earliest-submitted genuine failure, not whichever worker
// lost the race. Job 0 fails only after job 1 already has — a temporal
// "first error" policy would return job 1's.
func TestRunParallelDeterministicError(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)

	errA := errors.New("job 0 failed")
	errB := errors.New("job 1 failed")
	started := make(chan struct{})
	jobs := []job{
		func(ctx context.Context) error {
			close(started)
			<-ctx.Done() // wait for job 1's failure to cancel the pool
			return errA
		},
		func(ctx context.Context) error {
			<-started // job 0 is definitely running, not skippable
			return errB
		},
	}
	if err := runParallel(jobs); !errors.Is(err, errA) {
		t.Fatalf("got %v, want %v", err, errA)
	}
}

// TestRunParallelCancelsOutstanding: after the first failure, queued jobs
// are skipped rather than run. With one worker this is exact: only the
// failing job executes.
func TestRunParallelCancelsOutstanding(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	boom := errors.New("boom")
	var executed atomic.Int64
	jobs := []job{
		func(ctx context.Context) error {
			executed.Add(1)
			return boom
		},
	}
	for i := 0; i < 16; i++ {
		jobs = append(jobs, func(ctx context.Context) error {
			executed.Add(1)
			return nil
		})
	}
	if err := runParallel(jobs); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if n := executed.Load(); n != 1 {
		t.Fatalf("%d jobs executed after the failure, want 1", n)
	}
}

// TestRunParallelAllSucceed: the happy path still runs everything.
func TestRunParallelAllSucceed(t *testing.T) {
	var executed atomic.Int64
	var jobs []job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, func(ctx context.Context) error {
			executed.Add(1)
			return nil
		})
	}
	if err := runParallel(jobs); err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 8 {
		t.Fatalf("%d jobs executed, want 8", n)
	}
}

// TestSuiteDiskCache: a second Suite over the same cache directory
// rehydrates the timing run from disk — identical Stats, byte-identical
// report — without re-simulating.
func TestSuiteDiskCache(t *testing.T) {
	dir := t.TempDir()
	w := testWorkload(t, "queens")

	c1, err := simsvc.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSuite()
	s1.SetCache(c1)
	st1, err := s1.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Entries != 1 || st.Hits != 0 {
		t.Fatalf("after fresh run: %+v", st)
	}
	rep1, err := s1.Report("test").Encode()
	if err != nil {
		t.Fatal(err)
	}

	c2, err := simsvc.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSuite()
	s2.SetCache(c2)
	st2, err := s2.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Hits != 1 {
		t.Fatalf("second suite did not hit the disk cache: %+v", st)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("rehydrated stats differ:\n%+v\nvs\n%+v", st1, st2)
	}
	rep2, err := s2.Report("test").Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1, rep2) {
		t.Fatalf("cache-served report differs:\n%s\nvs\n%s", rep1, rep2)
	}

	hits, ok := s2.CacheStats()
	if !ok || hits.Hits != 1 {
		t.Fatalf("CacheStats = %+v, %v", hits, ok)
	}
}
