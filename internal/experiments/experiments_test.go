package experiments

import (
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/workload"
)

func TestMachineConfigsValid(t *testing.T) {
	machines := []Machine{
		MBase32, MBase16, MOneCycle, MPerfect, MOnePerfect,
		MFAC16, MFAC32, MFAC16RR, MFAC32RR,
		MFAC32Tag, MFAC32SB4, MFAC32SB64, MFAC32MSHR1,
	}
	for _, m := range machines {
		cfg, err := MachineConfig(m)
		if err != nil {
			t.Errorf("MachineConfig(%s): %v", m, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %s invalid: %v", m, err)
		}
	}
	if _, err := MachineConfig("nope"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestMachineConfigKnobs(t *testing.T) {
	c, _ := MachineConfig(MFAC16)
	if !c.FAC || c.DCache.BlockSize != 16 || c.SpeculateRegReg {
		t.Errorf("MFAC16 = %+v", c)
	}
	c, _ = MachineConfig(MFAC32RR)
	if !c.FAC || !c.SpeculateRegReg {
		t.Errorf("MFAC32RR = %+v", c)
	}
	c, _ = MachineConfig(MOneCycle)
	if c.LoadLatency != 1 || c.FAC {
		t.Errorf("MOneCycle = %+v", c)
	}
	c, _ = MachineConfig(MFAC32Tag)
	if !c.FACGeom.TagAdder {
		t.Errorf("MFAC32Tag = %+v", c)
	}
}

// suiteForTest shares one Suite across the heavier tests in this package.
var shared = NewSuite()

func testWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTimingMemoization(t *testing.T) {
	w := testWorkload(t, "queens")
	a, err := shared.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := shared.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoized run differs")
	}
	if a.Cycles == 0 || a.Insts == 0 {
		t.Errorf("degenerate stats %+v", a)
	}
}

// TestHeadlineResult verifies the paper's core claim on two benchmarks:
// fast address calculation speeds programs up, and software support
// increases the gain (or at least the prediction accuracy).
func TestHeadlineResult(t *testing.T) {
	for _, name := range []string{"queens", "qsortst"} {
		w := testWorkload(t, name)
		base, err := shared.Timing(w, "base", MBase32)
		if err != nil {
			t.Fatal(err)
		}
		hw, err := shared.Timing(w, "base", MFAC32)
		if err != nil {
			t.Fatal(err)
		}
		hwsw, err := shared.Timing(w, "fac", MFAC32)
		if err != nil {
			t.Fatal(err)
		}
		if hw.Cycles >= base.Cycles {
			t.Errorf("%s: hardware-only FAC did not speed up (%d vs %d cycles)", name, hw.Cycles, base.Cycles)
		}
		if hwsw.Cycles >= base.Cycles {
			t.Errorf("%s: FAC+software did not speed up (%d vs %d)", name, hwsw.Cycles, base.Cycles)
		}
		if hwsw.LoadFailRate() > hw.LoadFailRate() {
			t.Errorf("%s: software support increased load failure rate (%.3f vs %.3f)",
				name, hwsw.LoadFailRate(), hw.LoadFailRate())
		}
	}
}

// TestSoftwareSupportCutsFailures checks the Table 4 effect functionally
// across the whole suite: with software support and no register+register
// accesses counted, prediction failures collapse.
func TestSoftwareSupportCutsFailures(t *testing.T) {
	for _, w := range workload.All() {
		base, err := shared.Functional(w, "base")
		if err != nil {
			t.Fatal(err)
		}
		opt, err := shared.Functional(w, "fac")
		if err != nil {
			t.Fatal(err)
		}
		// Geometry 1 is the 32B-block predictor.
		if opt.Profile.LoadFailRate(1) > base.Profile.LoadFailRate(1)+0.01 {
			t.Errorf("%s: software support raised load failures (%.1f%% -> %.1f%%)",
				w.Name, 100*base.Profile.LoadFailRate(1), 100*opt.Profile.LoadFailRate(1))
		}
		if nr := opt.Profile.LoadFailRateNoRR(1); nr > 0.15 {
			t.Errorf("%s: no-R+R failure rate with software support = %.1f%%", w.Name, 100*nr)
		}
	}
}

// TestFigure2Shape verifies the Figure 2 orderings on one benchmark:
// 1-cycle loads and a perfect cache each beat the baseline, and their
// combination beats both.
func TestFigure2Shape(t *testing.T) {
	w := testWorkload(t, "compress")
	get := func(m Machine) float64 {
		st, err := shared.Timing(w, "base", m)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	base, one, perf, both := get(MBase32), get(MOneCycle), get(MPerfect), get(MOnePerfect)
	if one <= base || perf < base {
		t.Errorf("IPC ordering broken: base=%.3f 1cyc=%.3f perfect=%.3f", base, one, perf)
	}
	if both < one || both < perf {
		t.Errorf("combined config not best: %.3f vs %.3f/%.3f", both, one, perf)
	}
}

func TestTable1Sane(t *testing.T) {
	r, err := shared.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 19 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.LoadPct <= 0 || row.LoadPct > 0.5 {
			t.Errorf("%s: load fraction %.3f implausible", row.Name, row.LoadPct)
		}
		sum := row.GlobalPct + row.StackPct + row.GeneralPct
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: breakdown sums to %.4f", row.Name, sum)
		}
	}
	txt := r.Table().String()
	if !strings.Contains(txt, "compress") || !strings.Contains(txt, "%general") {
		t.Error("rendered table incomplete")
	}
}

func TestFigure3Sane(t *testing.T) {
	r, err := shared.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != len(Figure3Workloads)*int(profile.NumRefTypes) {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, sr := range r.Series {
		last := 0.0
		for _, v := range sr.Cumulative {
			if v < last-1e-9 {
				t.Errorf("%s/%v: cumulative distribution decreases", sr.Benchmark, sr.RefType)
				break
			}
			last = v
		}
		if sr.Cumulative[16]+sr.Negative > 1.0001 {
			t.Errorf("%s/%v: mass exceeds 1", sr.Benchmark, sr.RefType)
		}
	}
	if !strings.Contains(r.Table().String(), "hashp") {
		t.Error("rendered figure incomplete")
	}
}

// TestZeroOffsetShareDrivesPrediction: workloads dominated by zero-offset
// general loads (strength-reduced pointer walks) predict well even without
// software support — the paper's Alvinn/Elvis observation.
func TestZeroOffsetShareDrivesPrediction(t *testing.T) {
	w := testWorkload(t, "mcarlo")
	fr, err := shared.Functional(w, "base")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Profile.LoadFailRate(1) > 0.05 {
		t.Errorf("mcarlo baseline failure rate %.1f%%, expected near zero",
			100*fr.Profile.LoadFailRate(1))
	}
}

// TestFACNeverDegradesSameBinary checks the paper's Section 5.5 claim:
// with sufficient cache bandwidth, enabling fast address calculation never
// slows a program down relative to the same binary on the baseline machine,
// regardless of how often prediction fails.
func TestFACNeverDegradesSameBinary(t *testing.T) {
	for _, name := range []string{"route", "compress", "stencil", "hashp"} {
		w := testWorkload(t, name)
		for _, tc := range []string{"base", "fac"} {
			base, err := shared.Timing(w, tc, MBase32)
			if err != nil {
				t.Fatal(err)
			}
			withFAC, err := shared.Timing(w, tc, MFAC32)
			if err != nil {
				t.Fatal(err)
			}
			if float64(withFAC.Cycles) > 1.005*float64(base.Cycles) {
				t.Errorf("%s/%s: FAC degraded the same binary: %d vs %d cycles",
					name, tc, withFAC.Cycles, base.Cycles)
			}
		}
	}
}

// TestAGIComparisonShape: AGI roughly breaks even while FAC wins — the
// paper's Related Work position.
func TestAGIComparisonShape(t *testing.T) {
	w := testWorkload(t, "queens")
	base, err := shared.Timing(w, "base", MBase32)
	if err != nil {
		t.Fatal(err)
	}
	agi, err := shared.Timing(w, "base", MAGI)
	if err != nil {
		t.Fatal(err)
	}
	fac, err := shared.Timing(w, "base", MFAC32)
	if err != nil {
		t.Fatal(err)
	}
	agiSpeedup := float64(base.Cycles) / float64(agi.Cycles)
	facSpeedup := float64(base.Cycles) / float64(fac.Cycles)
	if agiSpeedup < 0.85 || agiSpeedup > 1.25 {
		t.Errorf("AGI speedup %.3f outside the break-even band", agiSpeedup)
	}
	if facSpeedup <= agiSpeedup-0.2 {
		t.Errorf("FAC (%.3f) unexpectedly far below AGI (%.3f)", facSpeedup, agiSpeedup)
	}
}

// TestLTBComparisonRuns exercises the related-work experiment end to end on
// its structure (full-suite accuracy numbers are asserted loosely).
func TestLTBComparisonRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := shared.CompareLTB()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 19 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		for _, v := range []float64{row.FACHW, row.FACSW, row.LTBLast, row.LTBStride} {
			if v < 0 || v > 1 {
				t.Errorf("%s: accuracy %v out of range", row.Name, v)
			}
		}
		if row.FACSW+1e-9 < row.FACHW {
			t.Errorf("%s: software support lowered FAC accuracy (%.3f -> %.3f)",
				row.Name, row.FACHW, row.FACSW)
		}
	}
	if !strings.Contains(r.Table().String(), "LTB stride") {
		t.Error("rendered table incomplete")
	}
}

// TestCacheSweepShape: FAC speedups stay positive at every cache size, and
// baseline miss ratios fall monotonically as the cache grows.
func TestCacheSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	r, err := shared.CacheSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 19 || len(r.Sizes) != len(SweepSizes) {
		t.Fatalf("shape: %d rows, %d sizes", len(r.Rows), len(r.Sizes))
	}
	for _, row := range r.Rows {
		for i, sp := range row.Speedups {
			if sp < 0.95 {
				t.Errorf("%s @%dk: FAC speedup %.3f below floor", row.Name, r.Sizes[i]>>10, sp)
			}
		}
		for i := 1; i < len(row.DMiss); i++ {
			if row.DMiss[i] > row.DMiss[i-1]+0.005 {
				t.Errorf("%s: miss ratio rose with cache size (%.3f -> %.3f)",
					row.Name, row.DMiss[i-1], row.DMiss[i])
			}
		}
	}
	if !strings.Contains(r.Table().String(), "64k spd") {
		t.Error("rendered sweep incomplete")
	}
}
