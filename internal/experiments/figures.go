package experiments

import (
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure2Row holds one benchmark's IPC under the four memory systems of the
// paper's Figure 2.
type Figure2Row struct {
	Name     string
	Class    workload.Class
	Baseline float64 // 2-cycle loads, real cache
	OneCycle float64 // 1-cycle loads, real cache
	Perfect  float64 // 2-cycle loads, perfect cache
	OnePerf  float64 // 1-cycle loads, perfect cache
	Weight   float64 // baseline cycles (for the weighted averages)
}

// Figure2Result is the full figure.
type Figure2Result struct {
	Rows   []Figure2Row
	IntAvg [4]float64
	FPAvg  [4]float64
}

// Figure2 measures the performance potential of faster loads (paper Fig 2).
func (s *Suite) Figure2() (*Figure2Result, error) {
	machines := [][2]string{
		{"base", string(MBase32)}, {"base", string(MOneCycle)},
		{"base", string(MPerfect)}, {"base", string(MOnePerfect)},
	}
	if err := s.Prefetch(machines); err != nil {
		return nil, err
	}
	res := &Figure2Result{}
	var ints, fps []Figure2Row
	for _, w := range workload.All() {
		var ipc [4]float64
		var weight float64
		for i, m := range []Machine{MBase32, MOneCycle, MPerfect, MOnePerfect} {
			st, err := s.Timing(w, "base", m)
			if err != nil {
				return nil, err
			}
			ipc[i] = st.IPC()
			if m == MBase32 {
				weight = float64(st.Cycles)
			}
		}
		row := Figure2Row{
			Name: w.Name, Class: w.Class,
			Baseline: ipc[0], OneCycle: ipc[1], Perfect: ipc[2], OnePerf: ipc[3],
			Weight: weight,
		}
		res.Rows = append(res.Rows, row)
		if w.Class == workload.Int {
			ints = append(ints, row)
		} else {
			fps = append(fps, row)
		}
	}
	avg := func(rows []Figure2Row) [4]float64 {
		var xs [4][]float64
		var ws []float64
		for _, r := range rows {
			xs[0] = append(xs[0], r.Baseline)
			xs[1] = append(xs[1], r.OneCycle)
			xs[2] = append(xs[2], r.Perfect)
			xs[3] = append(xs[3], r.OnePerf)
			ws = append(ws, r.Weight)
		}
		var out [4]float64
		for i := range xs {
			out[i] = stats.WeightedMean(xs[i], ws)
		}
		return out
	}
	res.IntAvg = avg(ints)
	res.FPAvg = avg(fps)
	return res, nil
}

// Table renders Figure 2 as text.
func (r *Figure2Result) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 2: Impact of Load Latency on IPC",
		Headers: []string{"benchmark", "class", "Baseline", "1-Cycle Loads", "Perfect Cache", "1-Cycle+Perfect"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Class, stats.F3(row.Baseline), stats.F3(row.OneCycle),
			stats.F3(row.Perfect), stats.F3(row.OnePerf))
	}
	t.AddRow("Int-Avg", "int", stats.F3(r.IntAvg[0]), stats.F3(r.IntAvg[1]), stats.F3(r.IntAvg[2]), stats.F3(r.IntAvg[3]))
	t.AddRow("FP-Avg", "fp", stats.F3(r.FPAvg[0]), stats.F3(r.FPAvg[1]), stats.F3(r.FPAvg[2]), stats.F3(r.FPAvg[3]))
	return t
}

// Figure3Workloads are the representative programs plotted (the paper used
// Gcc, Sc, Doduc, and Spice; these are their analogues in the suite).
var Figure3Workloads = []string{"hashp", "qsortst", "nbody", "sparse"}

// Figure3Series is one cumulative offset distribution.
type Figure3Series struct {
	Benchmark string
	RefType   profile.RefType
	// Cumulative[k] = fraction of that class's loads with a non-negative
	// offset of at most k bits (k = 0..16); More covers >16 bits, Negative
	// the negative offsets.
	Cumulative [17]float64
	Negative   float64
	Share      float64 // class share of all loads
}

// Figure3Result is the full figure.
type Figure3Result struct {
	Series []Figure3Series
}

// Figure3 measures load offset size distributions per addressing class.
func (s *Suite) Figure3() (*Figure3Result, error) {
	res := &Figure3Result{}
	for _, name := range Figure3Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		fr, err := s.Functional(w, "base")
		if err != nil {
			return nil, err
		}
		for rt := profile.Global; rt < profile.NumRefTypes; rt++ {
			dist := fr.Profile.CumulativeOffsetDist(rt)
			sr := Figure3Series{Benchmark: name, RefType: rt, Share: fr.Profile.LoadTypeShare(rt)}
			copy(sr.Cumulative[:], dist[:17])
			total := fr.Profile.LoadsByType[rt]
			if total > 0 {
				sr.Negative = float64(fr.Profile.LoadNegOffsets[rt]) / float64(total)
			}
			res.Series = append(res.Series, sr)
		}
	}
	return res, nil
}

// Table renders Figure 3 as text (cumulative percent at selected bit sizes).
func (r *Figure3Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Figure 3: Load Offset Cumulative Distributions (% of class loads)",
		Headers: []string{"benchmark", "class", "share%", "neg%",
			"<=0b", "<=2b", "<=4b", "<=6b", "<=8b", "<=10b", "<=12b", "<=14b", "<=16b"},
	}
	for _, sr := range r.Series {
		t.AddRow(sr.Benchmark, sr.RefType, stats.Pct(sr.Share), stats.Pct(sr.Negative),
			stats.Pct(sr.Cumulative[0]), stats.Pct(sr.Cumulative[2]), stats.Pct(sr.Cumulative[4]),
			stats.Pct(sr.Cumulative[6]), stats.Pct(sr.Cumulative[8]), stats.Pct(sr.Cumulative[10]),
			stats.Pct(sr.Cumulative[12]), stats.Pct(sr.Cumulative[14]), stats.Pct(sr.Cumulative[16]))
	}
	return t
}

// Figure6Row is one benchmark's speedups.
type Figure6Row struct {
	Name  string
	Class workload.Class
	// Speedups over the same-block-size baseline machine running the
	// baseline-toolchain binary.
	HW16   float64 // hardware only, 16B blocks
	HWSW16 float64 // hardware + software, 16B blocks
	HW32   float64
	HWSW32 float64
	// With register+register speculation (32B blocks).
	HW32RR   float64
	HWSW32RR float64
	Weight   float64
}

// Figure6Result is the full figure.
type Figure6Result struct {
	Rows   []Figure6Row
	IntAvg [6]float64
	FPAvg  [6]float64
}

func (s *Suite) speedup(w workload.Workload, tc string, m Machine, baseM Machine) (float64, error) {
	base, err := s.Timing(w, "base", baseM)
	if err != nil {
		return 0, err
	}
	run, err := s.Timing(w, tc, m)
	if err != nil {
		return 0, err
	}
	return float64(base.Cycles) / float64(run.Cycles), nil
}

// StandardGrid returns the (toolchain, machine) pairs of the paper's
// central speedup figure — the grid every regeneration needs. It is the
// shared definition behind Figure6's prefetch, facd -warm (which
// pre-simulates and pins exactly these runs), and the fleet soak.
func StandardGrid() [][2]string {
	return [][2]string{
		{"base", string(MBase32)}, {"base", string(MBase16)},
		{"base", string(MFAC16)}, {"base", string(MFAC32)},
		{"fac", string(MFAC16)}, {"fac", string(MFAC32)},
		{"base", string(MFAC32RR)}, {"fac", string(MFAC32RR)},
	}
}

// Figure6 measures program speedups with and without software support, for
// 16- and 32-byte blocks, with and without register+register speculation.
func (s *Suite) Figure6() (*Figure6Result, error) {
	if err := s.Prefetch(StandardGrid()); err != nil {
		return nil, err
	}
	res := &Figure6Result{}
	var ints, fps []Figure6Row
	for _, w := range workload.All() {
		row := Figure6Row{Name: w.Name, Class: w.Class}
		var err error
		if row.HW16, err = s.speedup(w, "base", MFAC16, MBase16); err != nil {
			return nil, err
		}
		if row.HWSW16, err = s.speedup(w, "fac", MFAC16, MBase16); err != nil {
			return nil, err
		}
		if row.HW32, err = s.speedup(w, "base", MFAC32, MBase32); err != nil {
			return nil, err
		}
		if row.HWSW32, err = s.speedup(w, "fac", MFAC32, MBase32); err != nil {
			return nil, err
		}
		if row.HW32RR, err = s.speedup(w, "base", MFAC32RR, MBase32); err != nil {
			return nil, err
		}
		if row.HWSW32RR, err = s.speedup(w, "fac", MFAC32RR, MBase32); err != nil {
			return nil, err
		}
		base, err := s.Timing(w, "base", MBase32)
		if err != nil {
			return nil, err
		}
		row.Weight = float64(base.Cycles)
		res.Rows = append(res.Rows, row)
		if w.Class == workload.Int {
			ints = append(ints, row)
		} else {
			fps = append(fps, row)
		}
	}
	avg := func(rows []Figure6Row) [6]float64 {
		var xs [6][]float64
		var ws []float64
		for _, r := range rows {
			xs[0] = append(xs[0], r.HW16)
			xs[1] = append(xs[1], r.HWSW16)
			xs[2] = append(xs[2], r.HW32)
			xs[3] = append(xs[3], r.HWSW32)
			xs[4] = append(xs[4], r.HW32RR)
			xs[5] = append(xs[5], r.HWSW32RR)
			ws = append(ws, r.Weight)
		}
		var out [6]float64
		for i := range xs {
			out[i] = stats.WeightedMean(xs[i], ws)
		}
		return out
	}
	res.IntAvg = avg(ints)
	res.FPAvg = avg(fps)
	return res, nil
}

// Table renders Figure 6 as text.
func (r *Figure6Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Figure 6: Speedups over the baseline model",
		Headers: []string{"benchmark", "class",
			"H/W,16B", "H/W+S/W,16B", "H/W,32B", "H/W+S/W,32B", "H/W,32B+RR", "H/W+S/W,32B+RR"},
	}
	add := func(name, class string, v [6]float64) {
		t.AddRow(name, class, stats.F3(v[0]), stats.F3(v[1]), stats.F3(v[2]),
			stats.F3(v[3]), stats.F3(v[4]), stats.F3(v[5]))
	}
	for _, row := range r.Rows {
		add(row.Name, row.Class.String(),
			[6]float64{row.HW16, row.HWSW16, row.HW32, row.HWSW32, row.HW32RR, row.HWSW32RR})
	}
	add("Int-Avg", "int", r.IntAvg)
	add("FP-Avg", "fp", r.FPAvg)
	return t
}
