package experiments

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SweepSizes are the data-cache capacities measured by the cache-size
// sensitivity sweep.
var SweepSizes = []int{8 << 10, 16 << 10, 32 << 10, 64 << 10}

// SweepRow holds one benchmark's FAC speedup (hardware+software over the
// matching baseline) at each cache size.
type SweepRow struct {
	Name     string
	Class    workload.Class
	Speedups []float64 // parallel to SweepSizes
	DMiss    []float64 // baseline D-cache miss ratios, parallel to SweepSizes
}

// SweepResult is the full sweep.
type SweepResult struct {
	Sizes []int
	Rows  []SweepRow
}

// sweepConfig builds a machine with the given D-cache size (I-cache held at
// the Table 5 default).
func sweepConfig(size int, facOn bool) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.DCache = cache.Config{Size: size, BlockSize: 32, Assoc: 1, MissLatency: 16, MSHRs: 8}
	cfg.FAC = facOn
	return cfg
}

// sweepMachine names a sweep configuration for the memoization cache.
func sweepMachine(size int, facOn bool) Machine {
	if facOn {
		return Machine(fmt.Sprintf("sweep%dk+fac", size>>10))
	}
	return Machine(fmt.Sprintf("sweep%dk", size>>10))
}

// timingWithConfig is Timing for ad-hoc configurations outside the named
// machine table. These runs are memoized and disk-cached like named runs
// but stay out of the exportable report.
func (s *Suite) timingWithConfig(ctx context.Context, w workload.Workload, tc string, m Machine, cfg pipeline.Config) (pipeline.Stats, error) {
	return s.timing(ctx, w, tc, m, cfg, false)
}

// CacheSweep measures FAC's benefit as the data cache grows: the address
// calculation cycle becomes a larger share of load latency as misses
// vanish, so FAC's relative gain should hold or grow with cache size while
// the miss-bound programs converge toward the cache-friendly ones.
func (s *Suite) CacheSweep() (*SweepResult, error) {
	var jobs []job
	for _, w := range workload.All() {
		for _, size := range SweepSizes {
			for _, facOn := range []bool{false, true} {
				w, size, facOn := w, size, facOn
				tc := "base"
				if facOn {
					tc = "fac"
				}
				jobs = append(jobs, func(ctx context.Context) error {
					_, err := s.timingWithConfig(ctx, w, tc, sweepMachine(size, facOn), sweepConfig(size, facOn))
					return err
				})
			}
		}
	}
	if err := runParallel(jobs); err != nil {
		return nil, err
	}

	res := &SweepResult{Sizes: SweepSizes}
	for _, w := range workload.All() {
		row := SweepRow{Name: w.Name, Class: w.Class}
		for _, size := range SweepSizes {
			base, err := s.timingWithConfig(nil, w, "base", sweepMachine(size, false), sweepConfig(size, false))
			if err != nil {
				return nil, err
			}
			facS, err := s.timingWithConfig(nil, w, "fac", sweepMachine(size, true), sweepConfig(size, true))
			if err != nil {
				return nil, err
			}
			row.Speedups = append(row.Speedups, float64(base.Cycles)/float64(facS.Cycles))
			row.DMiss = append(row.DMiss, base.DCache.MissRatio())
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the sweep as text.
func (r *SweepResult) Table() *stats.Table {
	headers := []string{"benchmark", "class"}
	for _, size := range r.Sizes {
		headers = append(headers, fmt.Sprintf("%dk spd", size>>10), fmt.Sprintf("%dk miss", size>>10))
	}
	t := &stats.Table{
		Title:   "Cache-size sweep: FAC (H/W+S/W) speedup and baseline D-miss ratio",
		Headers: headers,
	}
	for _, row := range r.Rows {
		cells := []interface{}{row.Name, row.Class}
		for i := range r.Sizes {
			cells = append(cells, stats.F3(row.Speedups[i]), stats.F3(row.DMiss[i]))
		}
		t.AddRow(cells...)
	}
	return t
}
