package experiments

import (
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1Row is one benchmark's reference behaviour (paper Table 1).
type Table1Row struct {
	Name       string
	Class      workload.Class
	Insts      uint64
	Refs       uint64
	LoadPct    float64 // loads as a fraction of instructions
	StorePct   float64
	GlobalPct  float64 // breakdown of loads by reference type
	StackPct   float64
	GeneralPct float64
}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 profiles the dynamic reference behaviour of the suite.
func (s *Suite) Table1() (*Table1Result, error) {
	if err := s.PrefetchFunctional(); err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for _, w := range workload.All() {
		fr, err := s.Functional(w, "base")
		if err != nil {
			return nil, err
		}
		p := fr.Profile
		res.Rows = append(res.Rows, Table1Row{
			Name: w.Name, Class: w.Class,
			Insts:      p.Insts,
			Refs:       p.Loads + p.Stores,
			LoadPct:    safeDiv(p.Loads, p.Insts),
			StorePct:   safeDiv(p.Stores, p.Insts),
			GlobalPct:  p.LoadTypeShare(profile.Global),
			StackPct:   p.LoadTypeShare(profile.Stack),
			GeneralPct: p.LoadTypeShare(profile.General),
		})
	}
	return res, nil
}

func safeDiv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table renders Table 1 as text.
func (r *Table1Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Table 1: Program Reference Behavior",
		Headers: []string{"benchmark", "class", "insts(M)", "refs(M)",
			"%loads", "%stores", "%global", "%stack", "%general"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Class, stats.Mil(row.Insts), stats.Mil(row.Refs),
			stats.Pct(row.LoadPct), stats.Pct(row.StorePct),
			stats.Pct(row.GlobalPct), stats.Pct(row.StackPct), stats.Pct(row.GeneralPct))
	}
	return t
}

// Table3Row is one benchmark's baseline statistics and hardware-only
// prediction failure rates (paper Table 3).
type Table3Row struct {
	Name   string
	Class  workload.Class
	Insts  uint64
	Cycles uint64
	Loads  uint64
	Stores uint64
	IMiss  float64
	DMiss  float64
	MemUse uint64
	// Prediction failure rates without software support.
	LoadFail16  float64
	StoreFail16 float64
	LoadFail32  float64
	StoreFail32 float64
}

// Table3Result is the full table.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 measures baseline program statistics and the prediction failure
// rates of the bare hardware mechanism.
func (s *Suite) Table3() (*Table3Result, error) {
	if err := s.Prefetch([][2]string{{"base", string(MBase32)}}); err != nil {
		return nil, err
	}
	if err := s.PrefetchFunctional(); err != nil {
		return nil, err
	}
	res := &Table3Result{}
	for _, w := range workload.All() {
		fr, err := s.Functional(w, "base")
		if err != nil {
			return nil, err
		}
		tm, err := s.Timing(w, "base", MBase32)
		if err != nil {
			return nil, err
		}
		p := fr.Profile
		res.Rows = append(res.Rows, Table3Row{
			Name: w.Name, Class: w.Class,
			Insts: p.Insts, Cycles: tm.Cycles,
			Loads: p.Loads, Stores: p.Stores,
			IMiss: tm.ICache.MissRatio(), DMiss: tm.DCache.MissRatio(),
			MemUse:     fr.MemUse,
			LoadFail16: p.LoadFailRate(0), StoreFail16: p.StoreFailRate(0),
			LoadFail32: p.LoadFailRate(1), StoreFail32: p.StoreFailRate(1),
		})
	}
	return res, nil
}

// Table renders Table 3 as text.
func (r *Table3Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Table 3: Program statistics without software support",
		Headers: []string{"benchmark", "insts(M)", "cycles(M)", "loads(M)", "stores(M)",
			"I-miss", "D-miss", "mem", "ldfail%16", "stfail%16", "ldfail%32", "stfail%32"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, stats.Mil(row.Insts), stats.Mil(row.Cycles),
			stats.Mil(row.Loads), stats.Mil(row.Stores),
			stats.F3(row.IMiss), stats.F3(row.DMiss), stats.KB(row.MemUse),
			stats.Pct(row.LoadFail16), stats.Pct(row.StoreFail16),
			stats.Pct(row.LoadFail32), stats.Pct(row.StoreFail32))
	}
	return t
}

// Table4Row is one benchmark's deltas under software support plus the
// remaining prediction failure rates (paper Table 4; 32-byte blocks).
type Table4Row struct {
	Name  string
	Class workload.Class
	// Relative changes of the software-support binary vs the baseline one.
	InstsChg  float64
	CyclesChg float64 // both measured on the baseline (no-FAC) machine
	LoadsChg  float64
	StoresChg float64
	IMissChg  float64 // absolute change in miss ratio
	DMissChg  float64
	DTLBChg   float64 // absolute change in data TLB miss ratio
	MemChg    float64
	// Failure rates with software support, 32-byte blocks.
	LoadFailAll   float64
	LoadFailNoRR  float64
	StoreFailAll  float64
	StoreFailNoRR float64
}

// Table4Result is the full table.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 measures the impact of the compiler/linker software support.
func (s *Suite) Table4() (*Table4Result, error) {
	if err := s.Prefetch([][2]string{{"base", string(MBase32)}, {"fac", string(MBase32)}}); err != nil {
		return nil, err
	}
	if err := s.PrefetchFunctional(); err != nil {
		return nil, err
	}
	res := &Table4Result{}
	for _, w := range workload.All() {
		base, err := s.Functional(w, "base")
		if err != nil {
			return nil, err
		}
		opt, err := s.Functional(w, "fac")
		if err != nil {
			return nil, err
		}
		baseT, err := s.Timing(w, "base", MBase32)
		if err != nil {
			return nil, err
		}
		optT, err := s.Timing(w, "fac", MBase32)
		if err != nil {
			return nil, err
		}
		p := opt.Profile
		res.Rows = append(res.Rows, Table4Row{
			Name: w.Name, Class: w.Class,
			InstsChg:  rel(opt.Insts, base.Insts),
			CyclesChg: rel(optT.Cycles, baseT.Cycles),
			LoadsChg:  rel(p.Loads, base.Profile.Loads),
			StoresChg: rel(p.Stores, base.Profile.Stores),
			IMissChg:  optT.ICache.MissRatio() - baseT.ICache.MissRatio(),
			DMissChg:  optT.DCache.MissRatio() - baseT.DCache.MissRatio(),
			DTLBChg:   p.DTLBMissRatio() - base.Profile.DTLBMissRatio(),
			MemChg:    rel(opt.MemUse, base.MemUse),
			// Geometry index 1 is the 32-byte-block predictor.
			LoadFailAll:   p.LoadFailRate(1),
			LoadFailNoRR:  p.LoadFailRateNoRR(1),
			StoreFailAll:  p.StoreFailRate(1),
			StoreFailNoRR: p.StoreFailRateNoRR(1),
		})
	}
	return res, nil
}

func rel(after, before uint64) float64 {
	if before == 0 {
		return 0
	}
	return float64(after)/float64(before) - 1
}

// Table renders Table 4 as text.
func (r *Table4Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Table 4: Program statistics with software support (32-byte blocks)",
		Headers: []string{"benchmark", "insts%", "cycles%", "loads%", "stores%",
			"dI-miss", "dD-miss", "dTLB", "mem%", "ldfail(all)", "ldfail(noRR)", "stfail(all)", "stfail(noRR)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			stats.PctSigned(row.InstsChg), stats.PctSigned(row.CyclesChg),
			stats.PctSigned(row.LoadsChg), stats.PctSigned(row.StoresChg),
			stats.F3(row.IMissChg), stats.F3(row.DMissChg), stats.F3(row.DTLBChg), stats.PctSigned(row.MemChg),
			stats.Pct(row.LoadFailAll), stats.Pct(row.LoadFailNoRR),
			stats.Pct(row.StoreFailAll), stats.Pct(row.StoreFailNoRR))
	}
	return t
}

// Table6Row is one benchmark's cache bandwidth overhead (paper Table 6):
// failed speculative accesses as a percentage of total references.
type Table6Row struct {
	Name  string
	Class workload.Class
	// {hardware-only, +software} x {with R+R speculation, without}.
	HWRR   float64
	SWRR   float64
	HWNoRR float64
	SWNoRR float64
}

// Table6Result is the full table.
type Table6Result struct {
	Rows []Table6Row
}

// Table6 measures memory bandwidth overhead due to misspeculated accesses.
func (s *Suite) Table6() (*Table6Result, error) {
	pairs := [][2]string{
		{"base", string(MFAC32RR)}, {"fac", string(MFAC32RR)},
		{"base", string(MFAC32)}, {"fac", string(MFAC32)},
	}
	if err := s.Prefetch(pairs); err != nil {
		return nil, err
	}
	res := &Table6Result{}
	for _, w := range workload.All() {
		row := Table6Row{Name: w.Name, Class: w.Class}
		get := func(tc string, m Machine) (float64, error) {
			st, err := s.Timing(w, tc, m)
			if err != nil {
				return 0, err
			}
			return st.BandwidthOverhead(), nil
		}
		var err error
		if row.HWRR, err = get("base", MFAC32RR); err != nil {
			return nil, err
		}
		if row.SWRR, err = get("fac", MFAC32RR); err != nil {
			return nil, err
		}
		if row.HWNoRR, err = get("base", MFAC32); err != nil {
			return nil, err
		}
		if row.SWNoRR, err = get("fac", MFAC32); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders Table 6 as text.
func (r *Table6Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Table 6: Memory bandwidth overhead (failed speculative accesses, % of refs)",
		Headers: []string{"benchmark", "class",
			"HW-only,R+R", "+S/W,R+R", "HW-only,noR+R", "+S/W,noR+R"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Class,
			stats.Pct(row.HWRR), stats.Pct(row.SWRR),
			stats.Pct(row.HWNoRR), stats.Pct(row.SWNoRR))
	}
	return t
}
