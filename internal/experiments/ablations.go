package experiments

import (
	"repro/internal/fac"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationRow is one benchmark's ablation measurements.
type AblationRow struct {
	Name  string
	Class workload.Class

	// Tag adder: hardware-only load failure rates at 32B blocks.
	LoadFailOR  float64 // plain carry-free OR in the tag field
	LoadFailTag float64 // full adder in the tag field
	TagSpeedup  float64 // cycles(no tag adder)/cycles(tag adder)

	// Store buffer depth: cycles relative to the 16-entry default.
	SB4Rel  float64
	SB64Rel float64

	// Outstanding misses: cycles with 1 MSHR relative to 8.
	MSHR1Rel float64

	// Block-size sweep: hardware-only load failure rates.
	LoadFail16 float64
	LoadFail32 float64
	LoadFail64 float64
}

// AblationResult is the full ablation study.
type AblationResult struct {
	Rows []AblationRow
}

// Ablations measures the design-choice sensitivities DESIGN.md calls out:
// the optional tag adder (paper Section 3.1), store-buffer depth, the
// number of outstanding misses, and the predictor's block-offset width.
func (s *Suite) Ablations() (*AblationResult, error) {
	pairs := [][2]string{
		{"base", string(MFAC32)}, {"base", string(MFAC32Tag)},
		{"fac", string(MFAC32)}, {"fac", string(MFAC32SB4)}, {"fac", string(MFAC32SB64)},
		{"fac", string(MFAC32MSHR1)},
	}
	if err := s.Prefetch(pairs); err != nil {
		return nil, err
	}

	geoTag := fac.Config{BlockBits: 5, SetBits: 14, TagAdder: true}
	geo64 := fac.Config{BlockBits: 6, SetBits: 14}

	res := &AblationResult{}
	for _, w := range workload.All() {
		row := AblationRow{Name: w.Name, Class: w.Class}

		p, err := s.Program(w, "base")
		if err != nil {
			return nil, err
		}
		prof, _, err := profile.Run(p, s.MaxInsts, Geo16, Geo32, geoTag, geo64)
		if err != nil {
			return nil, err
		}
		row.LoadFail16 = prof.LoadFailRate(0)
		row.LoadFail32 = prof.LoadFailRate(1)
		row.LoadFailOR = prof.LoadFailRate(1)
		row.LoadFailTag = prof.LoadFailRate(2)
		row.LoadFail64 = prof.LoadFailRate(3)

		noTag, err := s.Timing(w, "base", MFAC32)
		if err != nil {
			return nil, err
		}
		withTag, err := s.Timing(w, "base", MFAC32Tag)
		if err != nil {
			return nil, err
		}
		row.TagSpeedup = float64(noTag.Cycles) / float64(withTag.Cycles)

		sb16, err := s.Timing(w, "fac", MFAC32)
		if err != nil {
			return nil, err
		}
		sb4, err := s.Timing(w, "fac", MFAC32SB4)
		if err != nil {
			return nil, err
		}
		sb64, err := s.Timing(w, "fac", MFAC32SB64)
		if err != nil {
			return nil, err
		}
		row.SB4Rel = float64(sb4.Cycles) / float64(sb16.Cycles)
		row.SB64Rel = float64(sb64.Cycles) / float64(sb16.Cycles)

		mshr1, err := s.Timing(w, "fac", MFAC32MSHR1)
		if err != nil {
			return nil, err
		}
		row.MSHR1Rel = float64(mshr1.Cycles) / float64(sb16.Cycles)

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the ablation study as text.
func (r *AblationResult) Table() *stats.Table {
	t := &stats.Table{
		Title: "Ablations: tag adder, store buffer depth, MSHRs, block size",
		Headers: []string{"benchmark",
			"ldfail%OR", "ldfail%tag", "tag-speedup",
			"sb4 rel", "sb64 rel", "mshr1 rel",
			"ldfail%16B", "ldfail%32B", "ldfail%64B"},
	}
	var tagSp, sb4, sb64, mshr []float64
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			stats.Pct(row.LoadFailOR), stats.Pct(row.LoadFailTag), stats.F3(row.TagSpeedup),
			stats.F3(row.SB4Rel), stats.F3(row.SB64Rel), stats.F3(row.MSHR1Rel),
			stats.Pct(row.LoadFail16), stats.Pct(row.LoadFail32), stats.Pct(row.LoadFail64))
		tagSp = append(tagSp, row.TagSpeedup)
		sb4 = append(sb4, row.SB4Rel)
		sb64 = append(sb64, row.SB64Rel)
		mshr = append(mshr, row.MSHR1Rel)
	}
	t.AddRow("GeoMean", "", "", stats.F3(stats.GeoMean(tagSp)),
		stats.F3(stats.GeoMean(sb4)), stats.F3(stats.GeoMean(sb64)),
		stats.F3(stats.GeoMean(mshr)), "", "")
	return t
}
