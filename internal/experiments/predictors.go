package experiments

import (
	"repro/internal/stats"
	"repro/internal/workload"
)

// PredictorMachines lists the cross-predictor grid's machines in display
// order: the paper's operand-based fast address calculation against the
// history-based machines of the predictor zoo (internal/predict) and the
// statically gated selective variant, all at 32-byte blocks.
func PredictorMachines() []Machine {
	return []Machine{MFAC32, MPCAX, MStride, MSelective}
}

// PredictorCell is one (benchmark, machine) measurement of the grid.
type PredictorCell struct {
	// Speedup over the baseline machine running the same binary.
	Speedup float64
	// Coverage is the fraction of memory references the machine chose to
	// speculate on (operand-based machines always speculate on eligible
	// accesses; history machines decline cold or conflicted table entries,
	// and selective declines proven-failing sites).
	Coverage float64
	// FailRate is the mispredicted fraction of the speculated accesses.
	FailRate float64
}

// PredictorRow is one benchmark's row of the cross-predictor grid.
type PredictorRow struct {
	Name   string
	Class  workload.Class
	Cells  []PredictorCell // index-aligned with PredictorMachines
	Weight float64         // baseline cycles, the speedup-average weight
}

// PredictorsResult is the full cross-predictor comparison.
type PredictorsResult struct {
	Rows []PredictorRow
	// Class averages, index-aligned with PredictorMachines: speedups are
	// weighted by baseline cycles (as in Figure 6); coverage and failure
	// rates are computed over the class's summed access counts.
	IntAvg []PredictorCell
	FPAvg  []PredictorCell
}

// ComparePredictors runs the whole benchmark suite under every machine of
// the predictor grid and the baseline, all on the software-supported (fac
// toolchain) binary so the machines compete on identical reference
// streams. This is the Table-5-style cross-predictor comparison.
func (s *Suite) ComparePredictors() (*PredictorsResult, error) {
	machines := PredictorMachines()
	pairs := [][2]string{{"fac", string(MBase32)}}
	for _, m := range machines {
		pairs = append(pairs, [2]string{"fac", string(m)})
	}
	if err := s.Prefetch(pairs); err != nil {
		return nil, err
	}

	// Per-class accumulators for the averages.
	type acc struct {
		speedups, weights []float64
		refs, spec, fails uint64
	}
	accs := map[workload.Class][]acc{
		workload.Int: make([]acc, len(machines)),
		workload.FP:  make([]acc, len(machines)),
	}

	res := &PredictorsResult{}
	for _, w := range workload.All() {
		base, err := s.Timing(w, "fac", MBase32)
		if err != nil {
			return nil, err
		}
		row := PredictorRow{Name: w.Name, Class: w.Class, Weight: float64(base.Cycles)}
		for i, m := range machines {
			st, err := s.Timing(w, "fac", m)
			if err != nil {
				return nil, err
			}
			refs := st.Loads + st.Stores
			spec := st.LoadsSpeculated + st.StoresSpeculated
			fails := st.LoadSpecFailed + st.StoreSpecFailed
			row.Cells = append(row.Cells, PredictorCell{
				Speedup:  float64(base.Cycles) / float64(st.Cycles),
				Coverage: safeDiv(spec, refs),
				FailRate: safeDiv(fails, spec),
			})
			a := &accs[w.Class][i]
			a.speedups = append(a.speedups, row.Cells[i].Speedup)
			a.weights = append(a.weights, row.Weight)
			a.refs += refs
			a.spec += spec
			a.fails += fails
		}
		res.Rows = append(res.Rows, row)
	}
	avg := func(class workload.Class) []PredictorCell {
		cells := make([]PredictorCell, len(machines))
		for i := range machines {
			a := &accs[class][i]
			cells[i] = PredictorCell{
				Speedup:  stats.WeightedMean(a.speedups, a.weights),
				Coverage: safeDiv(a.spec, a.refs),
				FailRate: safeDiv(a.fails, a.spec),
			}
		}
		return cells
	}
	res.IntAvg = avg(workload.Int)
	res.FPAvg = avg(workload.FP)
	return res, nil
}

// Table renders the cross-predictor grid as text.
func (r *PredictorsResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Predictor zoo: speedup over baseline, speculation coverage, and misprediction rate (fac binary, 32B blocks)",
		Headers: []string{"benchmark", "class"},
	}
	for _, m := range PredictorMachines() {
		t.Headers = append(t.Headers, string(m)+" spd", string(m)+" cov", string(m)+" fail")
	}
	add := func(name, class string, cells []PredictorCell) {
		row := []interface{}{name, class}
		for _, c := range cells {
			row = append(row, stats.F3(c.Speedup), stats.Pct(c.Coverage), stats.Pct(c.FailRate))
		}
		t.AddRow(row...)
	}
	for _, row := range r.Rows {
		add(row.Name, row.Class.String(), row.Cells)
	}
	add("Int-Avg", "int", r.IntAvg)
	add("FP-Avg", "fp", r.FPAvg)
	return t
}
