package experiments

import (
	"bytes"
	"context"
	"runtime"
	"testing"
)

// reportFor runs the given (workload, toolchain, machine) triples on a
// fresh Suite — in parallel through the same worker pool the experiment
// driver uses — and returns the encoded report.
func reportFor(t *testing.T, names []string, pairs [][2]string) []byte {
	t.Helper()
	s := NewSuite()
	var jobs []job
	for _, name := range names {
		w := testWorkload(t, name)
		for _, pr := range pairs {
			w, tc, m := w, pr[0], Machine(pr[1])
			jobs = append(jobs, func(context.Context) error {
				_, err := s.Timing(w, tc, m)
				return err
			})
		}
	}
	if err := runParallel(jobs); err != nil {
		t.Fatal(err)
	}
	data, err := s.Report("test").Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReportDeterminism: the exported RunRecord report is byte-identical
// across repeated runs and across different worker-pool widths — record
// order, histogram encoding, and every statistic must be reproducible.
func TestReportDeterminism(t *testing.T) {
	names := []string{"queens", "match"}
	pairs := [][2]string{{"base", string(MBase32)}, {"fac", string(MFAC32RR)}}

	first := reportFor(t, names, pairs)
	if !bytes.Contains(first, []byte(`"schema": "fac/run-record/v1"`)) {
		t.Fatalf("report missing record schema:\n%s", first)
	}

	again := reportFor(t, names, pairs)
	if !bytes.Equal(first, again) {
		t.Fatalf("repeated run differs:\n%s\nvs\n%s", first, again)
	}

	// Vary the worker count: runParallel sizes its pool from GOMAXPROCS,
	// so pin it to 1 and to 4 and require identical bytes.
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		got := reportFor(t, names, pairs)
		runtime.GOMAXPROCS(old)
		if !bytes.Equal(first, got) {
			t.Fatalf("GOMAXPROCS=%d run differs from baseline", procs)
		}
	}
}

// TestReportCoversTimingRuns: every memoized timing run appears in the
// report exactly once, keyed benchmark|toolchain|machine.
func TestReportCoversTimingRuns(t *testing.T) {
	s := NewSuite()
	w := testWorkload(t, "queens")
	if _, err := s.Timing(w, "base", MBase32); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Timing(w, "base", MBase32); err != nil { // memoized: no duplicate
		t.Fatal(err)
	}
	if _, err := s.Timing(w, "fac", MFAC32); err != nil {
		t.Fatal(err)
	}
	rep := s.Report("test")
	if len(rep.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(rep.Records))
	}
	if rep.Records[0].Key() != "queens|base|"+string(MBase32) {
		t.Fatalf("unexpected first record key %q", rep.Records[0].Key())
	}
	for _, r := range rep.Records {
		if r.Cycles == 0 || r.IPC == 0 {
			t.Fatalf("degenerate record %+v", r)
		}
		if r.StallCyclesTotal != r.Stalls.Total() {
			t.Fatalf("stall breakdown does not sum: %+v", r)
		}
	}
}
