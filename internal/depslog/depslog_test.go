package depslog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func in(kv ...string) map[string]string {
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// TestDepsLogRoundtrip: recorded nodes are clean on the same inputs —
// in the same process and after reopening — and dirty on any change.
func TestDepsLogRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deps.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Clean("run|a", in("src", "s1")); ok {
		t.Fatal("empty log reported a clean node")
	}
	if err := l.Record("run|a", in("src", "s1", "cfg", "c1"), "out1"); err != nil {
		t.Fatal(err)
	}
	if out, ok := l.Clean("run|a", in("src", "s1", "cfg", "c1")); !ok || out != "out1" {
		t.Fatalf("Clean = %q, %v", out, ok)
	}
	for _, dirty := range []map[string]string{
		in("src", "s2", "cfg", "c1"),           // changed hash
		in("src", "s1"),                        // missing input
		in("src", "s1", "cfg", "c1", "x", "y"), // extra input
	} {
		if _, ok := l.Clean("run|a", dirty); ok {
			t.Fatalf("inputs %v reported clean", dirty)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if out, ok := l2.Clean("run|a", in("src", "s1", "cfg", "c1")); !ok || out != "out1" {
		t.Fatal("reopened log lost the entry")
	}
}

// TestDepsLogLaterEntriesWin: re-recording a node supersedes the old
// entry; identical re-records do not grow the file.
func TestDepsLogLaterEntriesWin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deps.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Record("n", in("i", "v1"), "o1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Record("n", in("i", "v2"), "o2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Clean("n", in("i", "v1")); ok {
		t.Fatal("superseded entry still clean")
	}
	if out, ok := l.Clean("n", in("i", "v2")); !ok || out != "o2" {
		t.Fatal("latest entry not in force")
	}

	size := func() int64 {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	before := size()
	for i := 0; i < 5; i++ {
		if err := l.Record("n", in("i", "v2"), "o2"); err != nil {
			t.Fatal(err)
		}
	}
	if size() != before {
		t.Fatal("identical re-records grew the log")
	}
}

// TestDepsLogTornTailAndSchema: a torn final line (crash mid-append) is
// skipped; a wrong-schema log is discarded wholesale.
func TestDepsLogTornTailAndSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deps.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Record("n", in("i", "v"), "o"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"node":"torn","inputs":{"i`)
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l2.Clean("n", in("i", "v")); !ok {
		t.Fatal("torn tail took the healthy prefix with it")
	}
	if l2.Len() != 1 {
		t.Fatalf("live nodes = %d, want 1", l2.Len())
	}
	l2.Close()

	// Wrong schema: start over.
	if err := os.WriteFile(path, []byte(`{"schema":"fac/deps/v0"}`+"\n"+`{"node":"n","inputs":{},"output":"o"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Len() != 0 {
		t.Fatal("wrong-schema log not discarded")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), `{"schema":"`+Schema+`"}`) {
		t.Fatalf("discarded log not re-headed: %q", data)
	}
}

// TestDepsLogCompaction: once superseded lines outnumber live ones,
// Close rewrites the file to just the header plus live entries, in
// sorted node order.
func TestDepsLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deps.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		// Rewrites of the same two nodes: 12 lines, 2 live.
		v := string(rune('0' + i))
		l.Record("b-node", in("i", v), "o"+v)
		l.Record("a-node", in("i", v), "o"+v)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("compacted log has %d lines, want 3 (header + 2 nodes):\n%s", len(lines), data)
	}
	if !strings.Contains(lines[1], `"a-node"`) || !strings.Contains(lines[2], `"b-node"`) {
		t.Fatalf("compacted log not in sorted node order:\n%s", data)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if out, ok := l2.Clean("a-node", in("i", "5")); !ok || out != "o5" {
		t.Fatal("compaction lost the latest entry")
	}
}
