// Package depslog is a ninja-style dependency log for incremental
// experiment re-runs: an append-only JSONL file recording, for each
// build/run node, the content hashes of its inputs and of its output.
// A node whose recorded input hashes match the current inputs is clean
// and need not be re-executed; anything else is dirty. Appends are
// cheap and crash-safe (a torn final line is ignored on reopen), later
// entries win, and the log compacts itself on Close once superseded
// lines outnumber live ones — the same recompaction discipline as
// ninja's .ninja_deps.
//
// The log deliberately stores only hashes, never results: results live
// in the content-addressed DiskCache keyed by the same hashes. The log
// answers "what would re-run and why" (and proves an unchanged grid
// re-simulates nothing); the cache answers "what is the result".
package depslog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Schema versions the on-disk line format. A log whose header carries a
// different schema is discarded wholesale — the log is a rebuild
// accelerator, not a source of truth, so starting over is always safe.
const Schema = "fac/deps/v1"

// Entry records one node's last known execution: the content hashes of
// every input it consumed and the hash naming its output (for run nodes,
// the simulation's content-addressed cache key).
type Entry struct {
	Node   string            `json:"node"`
	Inputs map[string]string `json:"inputs"`
	Output string            `json:"output"`
}

// header is the log's first line.
type header struct {
	Schema string `json:"schema"`
}

// Log is an open deps log. Safe for concurrent use.
type Log struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries map[string]Entry
	live    int // lines in the file still current
	stale   int // superseded or unparseable lines, drives compaction
}

// Open reads (creating if absent) the deps log at path. Unparseable
// lines — a torn tail from a crash mid-append — are skipped and counted
// stale; a schema mismatch discards the whole log.
func Open(path string) (*Log, error) {
	l := &Log{path: path, entries: make(map[string]Entry)}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh log; created on first Record.
	case err != nil:
		return nil, fmt.Errorf("depslog: open: %w", err)
	default:
		l.load(data)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("depslog: open: %w", err)
	}
	l.f = f
	if l.live == 0 && len(l.entries) == 0 {
		// New or discarded log: (re)write the header. Truncate first so a
		// schema-mismatched body cannot linger beneath fresh appends.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("depslog: reset: %w", err)
		}
		if err := l.appendLocked(header{Schema: Schema}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// load replays the file's lines into the memo, later entries winning.
func (l *Log) load(data []byte) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h header
			if json.Unmarshal(line, &h) != nil || h.Schema != Schema {
				l.entries = make(map[string]Entry)
				l.live = 0
				l.stale = 0
				return // discard: wrong or missing schema header
			}
			continue
		}
		var e Entry
		if json.Unmarshal(line, &e) != nil || e.Node == "" {
			l.stale++ // torn tail or corruption; skip
			continue
		}
		if _, dup := l.entries[e.Node]; dup {
			l.stale++
		} else {
			l.live++
		}
		l.entries[e.Node] = e
	}
}

// appendLocked marshals v and appends it as one line.
func (l *Log) appendLocked(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("depslog: encode: %w", err)
	}
	b = append(b, '\n')
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("depslog: append: %w", err)
	}
	return nil
}

// Clean reports whether node was last executed with exactly these
// inputs; when it was, the recorded output hash is returned and the
// caller may skip re-execution.
func (l *Log) Clean(node string, inputs map[string]string) (output string, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, found := l.entries[node]
	if !found || len(e.Inputs) != len(inputs) {
		return "", false
	}
	for k, v := range inputs {
		if e.Inputs[k] != v {
			return "", false
		}
	}
	return e.Output, true
}

// Record appends node's execution to the log, superseding any earlier
// entry for the same node. Identical re-records are dropped without a
// write, so steady-state clean re-runs never grow the file.
func (l *Log) Record(node string, inputs map[string]string, output string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{Node: node, Inputs: inputs, Output: output}
	if prev, ok := l.entries[node]; ok {
		if sameEntry(prev, e) {
			return nil
		}
		l.stale++
	} else {
		l.live++
	}
	l.entries[node] = e
	return l.appendLocked(e)
}

func sameEntry(a, b Entry) bool {
	if a.Node != b.Node || a.Output != b.Output || len(a.Inputs) != len(b.Inputs) {
		return false
	}
	for k, v := range a.Inputs {
		if b.Inputs[k] != v {
			return false
		}
	}
	return true
}

// Len returns the number of live nodes.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Close flushes and closes the log, compacting it first when superseded
// lines outnumber live ones (atomic tmp+rename; nodes written in sorted
// order so a compacted log is deterministic).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	defer func() { l.f = nil }()
	if l.stale <= l.live {
		return l.f.Close()
	}
	// Compact.
	if err := l.f.Close(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), "deps-*")
	if err != nil {
		return fmt.Errorf("depslog: compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	writeLine := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}
	err = writeLine(header{Schema: Schema})
	nodes := make([]string, 0, len(l.entries))
	for n := range l.entries {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if err != nil {
			break
		}
		err = writeLine(l.entries[n])
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("depslog: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("depslog: compact: %w", err)
	}
	return nil
}
