package bpred

import "testing"

func TestColdPredictNotTaken(t *testing.T) {
	b := New(1024)
	taken, target := b.Predict(0x400000)
	if taken || target != 0x400004 {
		t.Errorf("cold predict = %v, %#x", taken, target)
	}
}

func TestTrainTaken(t *testing.T) {
	b := New(1024)
	pc, tgt := uint32(0x400010), uint32(0x400100)
	if mis := b.Update(pc, true, tgt); !mis {
		t.Error("first taken branch should mispredict")
	}
	// Inserted with counter 2: predicts taken immediately.
	if taken, target := b.Predict(pc); !taken || target != tgt {
		t.Errorf("after one taken update: %v, %#x", taken, target)
	}
	if mis := b.Update(pc, true, tgt); mis {
		t.Error("second taken branch should predict correctly")
	}
}

func TestHysteresis(t *testing.T) {
	b := New(1024)
	pc, tgt := uint32(0x400010), uint32(0x400100)
	b.Update(pc, true, tgt)
	b.Update(pc, true, tgt) // counter now 3
	// One not-taken: counter 2, still predicts taken.
	b.Update(pc, false, 0)
	if taken, _ := b.Predict(pc); !taken {
		t.Error("single not-taken flipped a saturated counter")
	}
	// Second not-taken: counter 1, predicts not-taken.
	b.Update(pc, false, 0)
	if taken, _ := b.Predict(pc); taken {
		t.Error("two not-takens did not flip prediction")
	}
	// Counter floors at zero.
	b.Update(pc, false, 0)
	b.Update(pc, false, 0)
	if taken, _ := b.Predict(pc); taken {
		t.Error("floored counter predicts taken")
	}
}

func TestTargetChange(t *testing.T) {
	b := New(1024)
	pc := uint32(0x400010)
	b.Update(pc, true, 0x400100)
	b.Update(pc, true, 0x400100)
	// Same direction, new target (e.g. jr): misprediction, target retrained.
	if mis := b.Update(pc, true, 0x400200); !mis {
		t.Error("target change not counted as mispredict")
	}
	if _, target := b.Predict(pc); target != 0x400200 {
		t.Errorf("target not retrained: %#x", target)
	}
}

func TestAliasing(t *testing.T) {
	b := New(16)
	pcA := uint32(0x400000)
	pcB := pcA + 16*4 // same index, different tag
	b.Update(pcA, true, 0x400100)
	// B misses (tag mismatch) -> predicted not-taken.
	if taken, _ := b.Predict(pcB); taken {
		t.Error("aliased entry predicted taken for wrong tag")
	}
	// Training B replaces A.
	b.Update(pcB, true, 0x400300)
	if taken, _ := b.Predict(pcA); taken {
		t.Error("A survived B's replacement with matching tag")
	}
}

func TestAccuracyCounters(t *testing.T) {
	b := New(64)
	pc, tgt := uint32(0x400010), uint32(0x400080)
	for i := 0; i < 10; i++ {
		b.Update(pc, true, tgt)
	}
	lookups, mis := b.Counts()
	if lookups != 10 || mis != 1 {
		t.Errorf("counts = %d, %d", lookups, mis)
	}
	if acc := b.Accuracy(); acc != 0.9 {
		t.Errorf("accuracy = %v", acc)
	}
	if New(64).Accuracy() != 1 {
		t.Error("empty accuracy not 1")
	}
}

func TestBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(3) did not panic")
		}
	}()
	New(3)
}
