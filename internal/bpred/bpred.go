// Package bpred implements the branch prediction hardware of the baseline
// machine: a direct-mapped branch target buffer with 2-bit saturating
// counters (paper Table 5). All control transfers are predicted through the
// BTB; a misprediction costs a fixed redirect penalty charged by the
// pipeline model.
package bpred

import "fmt"

type entry struct {
	valid   bool
	tag     uint32
	target  uint32
	counter uint8 // 2-bit saturating; >= 2 predicts taken
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	entries []entry
	idxBits uint

	lookups     uint64
	mispredicts uint64
}

// New creates a BTB with the given number of entries (a power of two).
func New(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("bpred: entry count %d not a power of two", entries))
	}
	b := &BTB{entries: make([]entry, entries)}
	for 1<<b.idxBits < entries {
		b.idxBits++
	}
	return b
}

func (b *BTB) index(pc uint32) (uint32, uint32) {
	word := pc >> 2
	return word & uint32(len(b.entries)-1), word >> b.idxBits
}

// Predict returns the predicted direction and target for the control
// instruction at pc. A BTB miss predicts not-taken (fall through).
func (b *BTB) Predict(pc uint32) (taken bool, target uint32) {
	idx, tag := b.index(pc)
	e := &b.entries[idx]
	if e.valid && e.tag == tag && e.counter >= 2 {
		return true, e.target
	}
	return false, pc + 4
}

// Update trains the BTB with the architectural outcome of the control
// instruction at pc and reports whether the earlier prediction was wrong.
func (b *BTB) Update(pc uint32, taken bool, target uint32) (mispredicted bool) {
	b.lookups++
	predTaken, predTarget := b.Predict(pc)
	mispredicted = predTaken != taken || (taken && predTarget != target)
	if mispredicted {
		b.mispredicts++
	}

	idx, tag := b.index(pc)
	e := &b.entries[idx]
	if taken {
		if !e.valid || e.tag != tag {
			*e = entry{valid: true, tag: tag, target: target, counter: 2}
		} else {
			e.target = target
			if e.counter < 3 {
				e.counter++
			}
		}
	} else if e.valid && e.tag == tag {
		if e.counter > 0 {
			e.counter--
		}
	}
	return mispredicted
}

// Accuracy returns the fraction of correctly predicted control transfers.
func (b *BTB) Accuracy() float64 {
	if b.lookups == 0 {
		return 1
	}
	return 1 - float64(b.mispredicts)/float64(b.lookups)
}

// Counts returns (lookups, mispredicts).
func (b *BTB) Counts() (uint64, uint64) { return b.lookups, b.mispredicts }
