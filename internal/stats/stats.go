// Package stats provides the small table-formatting and aggregation
// helpers shared by the experiment harness: fixed-width text tables in the
// style of the paper's tables, and the run-time-weighted means the paper
// uses for its INT/FP averages.
package stats

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

// PctSigned formats a signed relative change as a percentage.
func PctSigned(f float64) string { return fmt.Sprintf("%+.1f", 100*f) }

// F2 formats with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F3 formats with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// Mil formats a count in millions with two decimals.
func Mil(n uint64) string { return fmt.Sprintf("%.2f", float64(n)/1e6) }

// KB formats a byte count in binary kilobytes.
func KB(n uint64) string { return fmt.Sprintf("%dk", n>>10) }

// WeightedMean returns sum(w_i * x_i) / sum(w_i): the paper's
// run-time-weighted average (weights are baseline cycle counts).
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) || len(xs) == 0 {
		return 0
	}
	var num, den float64
	for i := range xs {
		num += xs[i] * ws[i]
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// FormatHist renders an obs.Hist as an indented text histogram: one line
// per non-empty bucket with its share of samples and a proportional bar.
// Used by facsim's load-latency report.
func FormatHist(h obs.Hist, unit string) string {
	if h.Count == 0 {
		return "  (no samples)\n"
	}
	var b strings.Builder
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("%d", i)
		if i == len(h.Buckets)-1 && h.Max > uint64(i) {
			label = fmt.Sprintf(">=%d", i)
		}
		frac := float64(n) / float64(h.Count)
		bar := strings.Repeat("#", int(frac*40+0.5))
		fmt.Fprintf(&b, "  %6s %-6s %12d  %5.1f%%  %s\n", label, unit, n, 100*frac, bar)
	}
	fmt.Fprintf(&b, "  mean %.2f %s, max %d\n", h.Mean(), unit, h.Max)
	return b.String()
}

// GeoMean returns the geometric mean (used by ablation summaries).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
