package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("alpha", 12)
	tb.AddRow("b", 3.5)
	out := tb.String()
	if !strings.Contains(out, "T\n=") {
		t.Error("missing title underline")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, underline, header, separator, 2 rows -> 6? title+ul+hdr+sep+2 = 6
		if len(lines) != 6 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12") {
		t.Error("row content missing")
	}
	// Columns align: header "name" padded to width of "alpha".
	if !strings.Contains(out, "name   value") {
		t.Errorf("alignment wrong:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.1234) != "12.3" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
	if PctSigned(0.05) != "+5.0" || PctSigned(-0.05) != "-5.0" {
		t.Error("PctSigned wrong")
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2 = %q", F2(1.005))
	}
	if F3(1.2345) != "1.234" && F3(1.2345) != "1.235" {
		t.Errorf("F3 = %q", F3(1.2345))
	}
	if Mil(1_500_000) != "1.50" {
		t.Errorf("Mil = %q", Mil(1_500_000))
	}
	if KB(65536) != "64k" {
		t.Errorf("KB = %q", KB(65536))
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if got != 2 {
		t.Errorf("equal weights: %v", got)
	}
	got = WeightedMean([]float64{1, 3}, []float64{3, 1})
	if got != 1.5 {
		t.Errorf("skewed weights: %v", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Error("empty mean not 0")
	}
	if WeightedMean([]float64{1}, []float64{0}) != 0 {
		t.Error("zero weight mean not 0")
	}
	if WeightedMean([]float64{1, 2}, []float64{1}) != 0 {
		t.Error("mismatched lengths not 0")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean not 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("non-positive geomean not 0")
	}
}
