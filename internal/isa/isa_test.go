package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{Zero, "$zero"}, {GP, "$gp"}, {SP, "$sp"}, {FP, "$fp"}, {RA, "$ra"},
		{V0, "$v0"}, {A3, "$a3"}, {T7, "$t7"}, {S0, "$s0"}, {T9, "$t9"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegByName(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		name := Reg(i).String()[1:]
		r, ok := RegByName(name)
		if !ok || r != Reg(i) {
			t.Errorf("RegByName(%q) = %v, %v; want %v, true", name, r, ok, Reg(i))
		}
	}
	if r, ok := RegByName("r17"); !ok || r != S1 {
		t.Errorf("RegByName(r17) = %v, %v", r, ok)
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded")
	}
	if _, ok := RegByName("r32"); ok {
		t.Error("RegByName(r32) succeeded")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(1); op < NumOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", op.String(), got, ok, op)
		}
	}
}

func TestOpClassification(t *testing.T) {
	if !LW.IsLoad() || LW.IsStore() || !LW.IsMem() {
		t.Error("LW classification wrong")
	}
	if !SW.IsStore() || SW.IsLoad() {
		t.Error("SW classification wrong")
	}
	if !BEQ.IsBranch() || !BEQ.IsControl() || BEQ.IsJump() {
		t.Error("BEQ classification wrong")
	}
	if !JAL.IsJump() || !JAL.IsControl() {
		t.Error("JAL classification wrong")
	}
	if ADD.IsMem() || ADD.IsControl() {
		t.Error("ADD classification wrong")
	}
	if LW.MemSize() != 4 || LH.MemSize() != 2 || LB.MemSize() != 1 || LFD.MemSize() != 8 {
		t.Error("MemSize wrong")
	}
	if LW.Mode() != AMConst || LWX.Mode() != AMReg || LWPI.Mode() != AMPost {
		t.Error("Mode wrong")
	}
	if !LFD.FPDest() || !SFD.FPSrc() || LW.FPDest() {
		t.Error("FP flags wrong")
	}
	if FADD.Class() != ClassFPAdd || FMUL.Class() != ClassFPMul || FDIV.Class() != ClassFPDiv {
		t.Error("FP class wrong")
	}
	if MUL.Class() != ClassIntMul || DIV.Class() != ClassIntDiv || REM.Class() != ClassIntDiv {
		t.Error("int mul/div class wrong")
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		in   Inst
		uses []uint8
		defs []uint8
	}{
		{Inst{Op: ADD, Rd: T0, Rs: T1, Rt: T2}, []uint8{UInt(T1), UInt(T2)}, []uint8{UInt(T0)}},
		{Inst{Op: ADDI, Rd: T0, Rs: Zero, Imm: 5}, nil, []uint8{UInt(T0)}},
		{Inst{Op: LW, Rd: T0, Rs: SP, Imm: 8}, []uint8{UInt(SP)}, []uint8{UInt(T0)}},
		{Inst{Op: SW, Rt: T0, Rs: SP, Imm: 8}, []uint8{UInt(SP), UInt(T0)}, nil},
		{Inst{Op: SWX, Rd: T0, Rs: T1, Rt: T2}, []uint8{UInt(T1), UInt(T2), UInt(T0)}, nil},
		{Inst{Op: LWPI, Rd: T0, Rs: T1, Imm: 4}, []uint8{UInt(T1)}, []uint8{UInt(T0), UInt(T1)}},
		{Inst{Op: JAL, Imm: 0x400100}, nil, []uint8{UInt(RA)}},
		{Inst{Op: JR, Rs: RA}, []uint8{UInt(RA)}, nil},
		{Inst{Op: FADD, Rd: 2, Rs: 4, Rt: 6}, []uint8{UFP(4), UFP(6)}, []uint8{UFP(2)}},
		{Inst{Op: FCLT, Rs: 2, Rt: 4}, []uint8{UFP(2), UFP(4)}, []uint8{UFCC}},
		{Inst{Op: BC1T, Imm: 16}, []uint8{UFCC}, nil},
		{Inst{Op: SFD, Rt: 4, Rs: SP, Imm: 16}, []uint8{UInt(SP), UFP(4)}, nil},
		{Inst{Op: MTC1, Rd: 2, Rs: T0}, []uint8{UInt(T0)}, []uint8{UFP(2)}},
		{Inst{Op: MFC1, Rd: T0, Rs: 2}, []uint8{UFP(2)}, []uint8{UInt(T0)}},
	}
	for _, c := range cases {
		uses := c.in.Uses(nil)
		defs := c.in.Defs(nil)
		if !equalU8(uses, c.uses) {
			t.Errorf("%v Uses = %v, want %v", c.in, uses, c.uses)
		}
		if !equalU8(defs, c.defs) {
			t.Errorf("%v Defs = %v, want %v", c.in, defs, c.defs)
		}
	}
}

func TestZeroRegNeverDefined(t *testing.T) {
	in := Inst{Op: ADD, Rd: Zero, Rs: T0, Rt: T1}
	if defs := in.Defs(nil); len(defs) != 0 {
		t.Errorf("ADD $zero Defs = %v, want empty", defs)
	}
}

func equalU8(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	const pc = 0x00400100
	cases := []Inst{
		{Op: ADD, Rd: T0, Rs: T1, Rt: T2},
		{Op: NOR, Rd: S7, Rs: T9, Rt: A0},
		{Op: ADDI, Rd: SP, Rs: SP, Imm: -64},
		{Op: ANDI, Rd: T0, Rs: T1, Imm: 0xFF0F},
		{Op: ORI, Rd: T0, Rs: Zero, Imm: 0xFFFF},
		{Op: LUI, Rd: GP, Imm: 0x1001},
		{Op: SLL, Rd: T0, Rs: T1, Imm: 31},
		{Op: SRA, Rd: T0, Rs: T1, Imm: 1},
		{Op: LW, Rd: T3, Rs: GP, Imm: 32764},
		{Op: LW, Rd: T3, Rs: SP, Imm: -32768},
		{Op: SW, Rt: T3, Rs: SP, Imm: 124},
		{Op: SB, Rt: V0, Rs: T0, Imm: -1},
		{Op: LFD, Rd: 4, Rs: SP, Imm: 16},
		{Op: SFD, Rt: 6, Rs: GP, Imm: 8},
		{Op: LWX, Rd: T0, Rs: T1, Rt: T2},
		{Op: SWX, Rd: T0, Rs: T1, Rt: T2},
		{Op: LFDX, Rd: 8, Rs: T1, Rt: T2},
		{Op: SFDX, Rd: 8, Rs: T1, Rt: T2},
		{Op: LWPI, Rd: T0, Rs: T1, Imm: 4},
		{Op: SWPI, Rt: T0, Rs: T1, Imm: -8},
		{Op: LFDPI, Rd: 2, Rs: T1, Imm: 8},
		{Op: SFDPI, Rt: 2, Rs: T1, Imm: 8},
		{Op: BEQ, Rs: T0, Rt: T1, Imm: -4},
		{Op: BNE, Rs: T0, Rt: Zero, Imm: 4096},
		{Op: BLEZ, Rs: T0, Imm: 8},
		{Op: BGEZ, Rs: T0, Imm: -131072},
		{Op: BC1T, Imm: 64},
		{Op: BC1F, Imm: -64},
		{Op: J, Imm: 0x00400000},
		{Op: JAL, Imm: 0x0FFFFFFC},
		{Op: JR, Rs: RA},
		{Op: JALR, Rd: RA, Rs: T9},
		{Op: SYSCALL},
		{Op: FADD, Rd: 0, Rs: 2, Rt: 4},
		{Op: FDIV, Rd: 30, Rs: 28, Rt: 26},
		{Op: FNEG, Rd: 2, Rs: 4},
		{Op: FCLT, Rs: 2, Rt: 4},
		{Op: MTC1, Rd: 2, Rs: T0},
		{Op: MFC1, Rd: T0, Rs: 2},
		{Op: CVTDW, Rd: 2, Rs: 2},
	}
	for _, in := range cases {
		word, err := Encode(in, pc)
		if err != nil {
			t.Errorf("Encode(%v) failed: %v", in, err)
			continue
		}
		out, err := Decode(word, pc)
		if err != nil {
			t.Errorf("Decode(Encode(%v)) failed: %v", in, err)
			continue
		}
		if out != in {
			t.Errorf("round trip: got %+v, want %+v (word %#08x)", out, in, word)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	const pc = 0x00400000
	bad := []Inst{
		{Op: ADDI, Rd: T0, Rs: T1, Imm: 40000},
		{Op: ADDI, Rd: T0, Rs: T1, Imm: -40000},
		{Op: ANDI, Rd: T0, Rs: T1, Imm: -1},
		{Op: ANDI, Rd: T0, Rs: T1, Imm: 0x10000},
		{Op: SLL, Rd: T0, Rs: T1, Imm: 32},
		{Op: BEQ, Rs: T0, Rt: T1, Imm: 3},       // unaligned
		{Op: BEQ, Rs: T0, Rt: T1, Imm: 1 << 20}, // too far
		{Op: J, Imm: 0x00400001},                // unaligned
		{Op: J, Imm: 0x50000000},                // wrong region
		{Op: BAD},
	}
	for _, in := range bad {
		if _, err := Encode(in, pc); err == nil {
			t.Errorf("Encode(%+v) unexpectedly succeeded", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(63<<26, 0x400000); err == nil {
		t.Error("Decode of bad major opcode succeeded")
	}
	if _, err := Decode(62, 0x400000); err == nil {
		t.Error("Decode of bad funct succeeded")
	}
}

// randInst builds a random but encodable instruction.
func randInst(r *rand.Rand, pc uint32) Inst {
	ops := []Op{
		ADD, SUB, MUL, DIV, AND, OR, XOR, NOR, SLT, SLTU, SLLV, SRLV, SRAV,
		ADDI, ANDI, ORI, XORI, SLTI, SLTIU, SLL, SRL, SRA, LUI,
		BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, J, JAL, JR, JALR, SYSCALL,
		LB, LBU, LH, LHU, LW, SB, SH, SW, LFD, SFD,
		LBX, LBUX, LHX, LHUX, LWX, SBX, SHX, SWX, LFDX, SFDX,
		LWPI, SWPI, LFDPI, SFDPI,
		FADD, FSUB, FMUL, FDIV, FNEG, FABS, FMOV, FCLT, FCLE, FCEQ,
		BC1T, BC1F, MTC1, MFC1, CVTDW, CVTWD,
	}
	op := ops[r.Intn(len(ops))]
	in := Inst{Op: op}
	reg := func() Reg { return Reg(r.Intn(32)) }
	switch {
	case op == J || op == JAL:
		in.Imm = int32(pc&0xF0000000 | uint32(r.Intn(1<<24))<<2)
	case op == SLL || op == SRL || op == SRA:
		in.Rd, in.Rs, in.Imm = reg(), reg(), int32(r.Intn(32))
	case op == LUI:
		in.Rd, in.Imm = reg(), int32(r.Intn(1<<16))
	case op == ANDI || op == ORI || op == XORI:
		in.Rd, in.Rs, in.Imm = reg(), reg(), int32(r.Intn(1<<16))
	case op == ADDI || op == SLTI || op == SLTIU:
		in.Rd, in.Rs, in.Imm = reg(), reg(), int32(int16(r.Uint32()))
	case op.IsBranch():
		in.Imm = int32(int16(r.Uint32())) << 2
		if op == BEQ || op == BNE {
			in.Rs, in.Rt = reg(), reg()
		} else if op != BC1T && op != BC1F {
			in.Rs = reg()
		}
	case op == JR:
		in.Rs = reg()
	case op == JALR:
		in.Rd, in.Rs = reg(), reg()
	case op == SYSCALL:
	case op.IsMem():
		in.Rs = reg()
		switch op.Mode() {
		case AMReg:
			in.Rd, in.Rt = reg(), reg()
		default:
			if op.IsStore() {
				in.Rt = reg()
			} else {
				in.Rd = reg()
			}
			in.Imm = int32(int16(r.Uint32()))
		}
	case op == FCLT || op == FCLE || op == FCEQ:
		in.Rs, in.Rt = reg(), reg()
	case op == FNEG || op == FABS || op == FMOV || op == CVTDW || op == CVTWD || op == MTC1 || op == MFC1:
		in.Rd, in.Rs = reg(), reg()
	default: // three-register forms
		in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
	}
	return in
}

// Property: every encodable instruction round-trips through Encode/Decode.
func TestEncodeDecodeProperty(t *testing.T) {
	const pc = 0x00400000
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randInst(r, pc)
		word, err := Encode(in, pc)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(word, pc)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v", word, err)
		}
		if out != in {
			t.Fatalf("round trip %+v -> %#08x -> %+v", in, word, out)
		}
	}
}

// Property: decoding any word either fails or yields an instruction that
// re-encodes to an equivalent decoding (decode is a normal form).
func TestDecodeTotalProperty(t *testing.T) {
	const pc = 0x00400000
	f := func(word uint32) bool {
		in, err := Decode(word, pc)
		if err != nil {
			return true
		}
		w2, err := Encode(in, pc)
		if err != nil {
			return false
		}
		in2, err := Decode(w2, pc)
		return err == nil && in2 == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: T0, Rs: T1, Rt: T2}, "add $t0, $t1, $t2"},
		{Inst{Op: ADDI, Rd: SP, Rs: SP, Imm: -64}, "addi $sp, $sp, -64"},
		{Inst{Op: LW, Rd: T0, Rs: SP, Imm: 8}, "lw $t0, 8($sp)"},
		{Inst{Op: SW, Rt: T0, Rs: GP, Imm: 2436}, "sw $t0, 2436($gp)"},
		{Inst{Op: LWX, Rd: T0, Rs: T1, Rt: T2}, "lwx $t0, ($t1+$t2)"},
		{Inst{Op: SWX, Rd: T0, Rs: T1, Rt: T2}, "swx $t0, ($t1+$t2)"},
		{Inst{Op: LWPI, Rd: T0, Rs: T1, Imm: 4}, "lwpi $t0, ($t1)+4"},
		{Inst{Op: LFD, Rd: 4, Rs: SP, Imm: 16}, "lfd $f4, 16($sp)"},
		{Inst{Op: SFD, Rt: 6, Rs: SP, Imm: 24}, "sfd $f6, 24($sp)"},
		{Inst{Op: BEQ, Rs: T0, Rt: T1, Imm: -8}, "beq $t0, $t1, -8"},
		{Inst{Op: J, Imm: 0x400000}, "j 0x400000"},
		{Inst{Op: JR, Rs: RA}, "jr $ra"},
		{Inst{Op: SYSCALL}, "syscall"},
		{Inst{Op: LUI, Rd: GP, Imm: 0x1001}, "lui $gp, 0x1001"},
		{Inst{Op: FADD, Rd: 0, Rs: 2, Rt: 4}, "fadd $f0, $f2, $f4"},
		{Inst{Op: FCLT, Rs: 2, Rt: 4}, "fclt $f2, $f4"},
		{Inst{Op: FMOV, Rd: 2, Rs: 4}, "fmov $f2, $f4"},
		{Inst{Op: MTC1, Rd: 2, Rs: T0}, "mtc1 $f2, $t0"},
		{Inst{Op: MFC1, Rd: T0, Rs: 2}, "mfc1 $t0, $f2"},
		{Inst{Op: BC1T, Imm: 16}, "bc1t 16"},
		{Inst{Op: SLL, Rd: T0, Rs: T1, Imm: 2}, "sll $t0, $t1, 2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
