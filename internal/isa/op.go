package isa

// Op identifies an operation. Memory operations come in up to three
// addressing-mode variants, matching the extended MIPS target of the paper:
// register+constant (signed 16-bit immediate), register+register (the "X"
// suffix), and post-increment (the "PI" suffix: the access uses the base
// register value directly and the base is incremented by the immediate
// afterwards; post-decrement is a PI with a negative immediate).
type Op uint8

const (
	BAD Op = iota

	// Integer ALU, register-register.
	ADD
	SUB
	MUL
	DIV
	DIVU
	REM
	REMU
	AND
	OR
	XOR
	NOR
	SLT
	SLTU
	SLLV
	SRLV
	SRAV

	// Integer ALU, immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLTIU
	SLL
	SRL
	SRA
	LUI

	// Control.
	BEQ
	BNE
	BLEZ
	BGTZ
	BLTZ
	BGEZ
	J
	JAL
	JR
	JALR
	SYSCALL

	// Integer loads, register+constant addressing.
	LB
	LBU
	LH
	LHU
	LW
	// Integer stores, register+constant addressing.
	SB
	SH
	SW
	// FP (double) loads/stores, register+constant addressing.
	LFD
	SFD

	// Register+register addressing variants.
	LBX
	LBUX
	LHX
	LHUX
	LWX
	SBX
	SHX
	SWX
	LFDX
	SFDX

	// Post-increment variants (access at base, then base += imm).
	LWPI
	SWPI
	LFDPI
	SFDPI

	// Floating point (64-bit double precision).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FMOV
	FCLT // FP condition flag := fs < ft
	FCLE // FP condition flag := fs <= ft
	FCEQ // FP condition flag := fs == ft
	BC1T // branch if FP condition flag set
	BC1F // branch if FP condition flag clear
	MTC1 // move integer register bits into low word of FP register
	MFC1 // move low word of FP register bits into integer register
	CVTDW
	CVTWD

	NumOps // sentinel
)

// OpClass groups operations for functional-unit assignment and for the
// timing model (paper Table 5).
type OpClass uint8

const (
	ClassIntALU OpClass = iota
	ClassIntMul
	ClassIntDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassFPAdd // FP add/sub/compare/convert/move
	ClassFPMul
	ClassFPDiv
	ClassSyscall
)

type opInfo struct {
	name    string
	class   OpClass
	mode    AddrMode // meaningful for loads/stores only
	memSize uint8    // access width in bytes (0 for non-memory)
	fpDest  bool     // destination register is an FP register
	fpSrc   bool     // source value registers are FP registers
}

// AddrMode is the addressing mode of a memory operation.
type AddrMode uint8

const (
	AMNone  AddrMode = iota
	AMConst          // effective address = base + signExtend(imm16)
	AMReg            // effective address = base + index register
	AMPost           // effective address = base; base += imm16 afterwards
)

var opTable = [NumOps]opInfo{
	BAD: {name: "bad", class: ClassIntALU},

	ADD:  {name: "add", class: ClassIntALU},
	SUB:  {name: "sub", class: ClassIntALU},
	MUL:  {name: "mul", class: ClassIntMul},
	DIV:  {name: "div", class: ClassIntDiv},
	DIVU: {name: "divu", class: ClassIntDiv},
	REM:  {name: "rem", class: ClassIntDiv},
	REMU: {name: "remu", class: ClassIntDiv},
	AND:  {name: "and", class: ClassIntALU},
	OR:   {name: "or", class: ClassIntALU},
	XOR:  {name: "xor", class: ClassIntALU},
	NOR:  {name: "nor", class: ClassIntALU},
	SLT:  {name: "slt", class: ClassIntALU},
	SLTU: {name: "sltu", class: ClassIntALU},
	SLLV: {name: "sllv", class: ClassIntALU},
	SRLV: {name: "srlv", class: ClassIntALU},
	SRAV: {name: "srav", class: ClassIntALU},

	ADDI:  {name: "addi", class: ClassIntALU},
	ANDI:  {name: "andi", class: ClassIntALU},
	ORI:   {name: "ori", class: ClassIntALU},
	XORI:  {name: "xori", class: ClassIntALU},
	SLTI:  {name: "slti", class: ClassIntALU},
	SLTIU: {name: "sltiu", class: ClassIntALU},
	SLL:   {name: "sll", class: ClassIntALU},
	SRL:   {name: "srl", class: ClassIntALU},
	SRA:   {name: "sra", class: ClassIntALU},
	LUI:   {name: "lui", class: ClassIntALU},

	BEQ:     {name: "beq", class: ClassBranch},
	BNE:     {name: "bne", class: ClassBranch},
	BLEZ:    {name: "blez", class: ClassBranch},
	BGTZ:    {name: "bgtz", class: ClassBranch},
	BLTZ:    {name: "bltz", class: ClassBranch},
	BGEZ:    {name: "bgez", class: ClassBranch},
	J:       {name: "j", class: ClassJump},
	JAL:     {name: "jal", class: ClassJump},
	JR:      {name: "jr", class: ClassJump},
	JALR:    {name: "jalr", class: ClassJump},
	SYSCALL: {name: "syscall", class: ClassSyscall},

	LB:  {name: "lb", class: ClassLoad, mode: AMConst, memSize: 1},
	LBU: {name: "lbu", class: ClassLoad, mode: AMConst, memSize: 1},
	LH:  {name: "lh", class: ClassLoad, mode: AMConst, memSize: 2},
	LHU: {name: "lhu", class: ClassLoad, mode: AMConst, memSize: 2},
	LW:  {name: "lw", class: ClassLoad, mode: AMConst, memSize: 4},
	SB:  {name: "sb", class: ClassStore, mode: AMConst, memSize: 1},
	SH:  {name: "sh", class: ClassStore, mode: AMConst, memSize: 2},
	SW:  {name: "sw", class: ClassStore, mode: AMConst, memSize: 4},
	LFD: {name: "lfd", class: ClassLoad, mode: AMConst, memSize: 8, fpDest: true},
	SFD: {name: "sfd", class: ClassStore, mode: AMConst, memSize: 8, fpSrc: true},

	LBX:  {name: "lbx", class: ClassLoad, mode: AMReg, memSize: 1},
	LBUX: {name: "lbux", class: ClassLoad, mode: AMReg, memSize: 1},
	LHX:  {name: "lhx", class: ClassLoad, mode: AMReg, memSize: 2},
	LHUX: {name: "lhux", class: ClassLoad, mode: AMReg, memSize: 2},
	LWX:  {name: "lwx", class: ClassLoad, mode: AMReg, memSize: 4},
	SBX:  {name: "sbx", class: ClassStore, mode: AMReg, memSize: 1},
	SHX:  {name: "shx", class: ClassStore, mode: AMReg, memSize: 2},
	SWX:  {name: "swx", class: ClassStore, mode: AMReg, memSize: 4},
	LFDX: {name: "lfdx", class: ClassLoad, mode: AMReg, memSize: 8, fpDest: true},
	SFDX: {name: "sfdx", class: ClassStore, mode: AMReg, memSize: 8, fpSrc: true},

	LWPI:  {name: "lwpi", class: ClassLoad, mode: AMPost, memSize: 4},
	SWPI:  {name: "swpi", class: ClassStore, mode: AMPost, memSize: 4},
	LFDPI: {name: "lfdpi", class: ClassLoad, mode: AMPost, memSize: 8, fpDest: true},
	SFDPI: {name: "sfdpi", class: ClassStore, mode: AMPost, memSize: 8, fpSrc: true},

	FADD:  {name: "fadd", class: ClassFPAdd, fpDest: true, fpSrc: true},
	FSUB:  {name: "fsub", class: ClassFPAdd, fpDest: true, fpSrc: true},
	FMUL:  {name: "fmul", class: ClassFPMul, fpDest: true, fpSrc: true},
	FDIV:  {name: "fdiv", class: ClassFPDiv, fpDest: true, fpSrc: true},
	FNEG:  {name: "fneg", class: ClassFPAdd, fpDest: true, fpSrc: true},
	FABS:  {name: "fabs", class: ClassFPAdd, fpDest: true, fpSrc: true},
	FMOV:  {name: "fmov", class: ClassFPAdd, fpDest: true, fpSrc: true},
	FCLT:  {name: "fclt", class: ClassFPAdd, fpSrc: true},
	FCLE:  {name: "fcle", class: ClassFPAdd, fpSrc: true},
	FCEQ:  {name: "fceq", class: ClassFPAdd, fpSrc: true},
	BC1T:  {name: "bc1t", class: ClassBranch},
	BC1F:  {name: "bc1f", class: ClassBranch},
	MTC1:  {name: "mtc1", class: ClassFPAdd, fpDest: true},
	MFC1:  {name: "mfc1", class: ClassFPAdd, fpSrc: true},
	CVTDW: {name: "cvtdw", class: ClassFPAdd, fpDest: true, fpSrc: true},
	CVTWD: {name: "cvtwd", class: ClassFPAdd, fpDest: true, fpSrc: true},
}

// String returns the assembly mnemonic.
func (o Op) String() string {
	if o < NumOps {
		return opTable[o].name
	}
	return "op?"
}

// Class reports the functional-unit class of the operation.
func (o Op) Class() OpClass { return opTable[o].class }

// Mode reports the addressing mode of a memory operation (AMNone otherwise).
func (o Op) Mode() AddrMode { return opTable[o].mode }

// MemSize reports the access width in bytes of a memory operation, or 0.
func (o Op) MemSize() int { return int(opTable[o].memSize) }

// IsLoad reports whether the operation reads data memory.
func (o Op) IsLoad() bool { return opTable[o].class == ClassLoad }

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool { return opTable[o].class == ClassStore }

// IsMem reports whether the operation accesses data memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsBranch reports whether the operation is a conditional branch.
func (o Op) IsBranch() bool { return opTable[o].class == ClassBranch }

// IsJump reports whether the operation is an unconditional control transfer.
func (o Op) IsJump() bool { return opTable[o].class == ClassJump }

// IsControl reports whether the operation can redirect the PC.
func (o Op) IsControl() bool { return o.IsBranch() || o.IsJump() }

// FPDest reports whether the destination register number names an FP register.
func (o Op) FPDest() bool { return opTable[o].fpDest }

// FPSrc reports whether the value source register numbers name FP registers.
func (o Op) FPSrc() bool { return opTable[o].fpSrc }

// OpByName maps an assembly mnemonic to its Op.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); op < NumOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()
