package isa

import "testing"

// TestPredecodeMatchesInst checks, for every opcode and a spread of register
// assignments, that the flattened Pre form reproduces exactly what the
// Inst methods report: the Uses/Defs register lists (same contents, same
// order), the class, the predicates, the addressing-mode flags, the memory
// access size, and the base register. The hot loops in internal/pipeline
// and internal/emu consume only the Pre form, so this equivalence is what
// keeps pre-decoding invisible to simulated timing.
func TestPredecodeMatchesInst(t *testing.T) {
	regCases := []struct {
		rd, rs, rt Reg
		imm        int32
	}{
		{1, 2, 3, 16},
		{4, 0, 0, -8},   // zero register sources are dropped from Uses
		{0, 5, 6, 0},    // zero register dest is dropped from Defs
		{31, 29, 1, 4},  // link/stack registers
		{7, 7, 7, 1024}, // all fields alias
	}
	for op := Op(1); op < NumOps; op++ {
		for _, rc := range regCases {
			in := Inst{Op: op, Rd: rc.rd, Rs: rc.rs, Rt: rc.rt, Imm: rc.imm}
			pre := Predecode(in)

			var buf [4]uint8
			wantUses := in.Uses(buf[:0])
			if got := pre.Uses[:pre.NUses]; !preEqualU8(got, wantUses) {
				t.Errorf("%v %+v: Pre uses %v, Inst.Uses %v", op, rc, got, wantUses)
			}
			wantDefs := in.Defs(buf[:0])
			if got := pre.Defs[:pre.NDefs]; !preEqualU8(got, wantDefs) {
				t.Errorf("%v %+v: Pre defs %v, Inst.Defs %v", op, rc, got, wantDefs)
			}

			if pre.Class != op.Class() {
				t.Errorf("%v: Pre class %v, Op class %v", op, pre.Class, op.Class())
			}
			if pre.IsControl() != op.IsControl() {
				t.Errorf("%v: Pre control %v, Op control %v", op, pre.IsControl(), op.IsControl())
			}
			if pre.IsMem() != op.IsMem() {
				t.Errorf("%v: Pre mem %v, Op mem %v", op, pre.IsMem(), op.IsMem())
			}
			if pre.IsLoad() != op.IsLoad() {
				t.Errorf("%v: Pre load %v, Op load %v", op, pre.IsLoad(), op.IsLoad())
			}
			if got, want := pre.Flags&PreStore != 0, op.IsStore(); got != want {
				t.Errorf("%v: Pre store %v, Op store %v", op, got, want)
			}
			if got, want := pre.Flags&PrePostInc != 0, op.Mode() == AMPost; got != want {
				t.Errorf("%v: Pre post-inc %v, Op mode %v", op, got, op.Mode())
			}
			if got, want := pre.Flags&PreRegOffset != 0, op.Mode() == AMReg; got != want {
				t.Errorf("%v: Pre reg-offset %v, Op mode %v", op, got, op.Mode())
			}
			if int(pre.MemSize) != op.MemSize() {
				t.Errorf("%v: Pre memSize %d, Op memSize %d", op, pre.MemSize, op.MemSize())
			}
			if op.IsMem() {
				if pre.BaseU != UInt(in.BaseReg()) {
					t.Errorf("%v %+v: Pre baseU %d, Inst base %v", op, rc, pre.BaseU, in.BaseReg())
				}
			} else if pre.BaseU != 0 {
				t.Errorf("%v: non-mem op has baseU %d", op, pre.BaseU)
			}
		}
	}
}

// TestPredecodeAllIndexes checks that PredecodeAll preserves one-to-one
// positional correspondence with the instruction slice.
func TestPredecodeAllIndexes(t *testing.T) {
	insts := []Inst{
		{Op: ADD, Rd: 1, Rs: 2, Rt: 3},
		{Op: LW, Rd: 4, Rs: 29, Imm: 8},
		{Op: SW, Rt: 4, Rs: 29, Imm: 12},
	}
	pre := PredecodeAll(insts)
	if len(pre) != len(insts) {
		t.Fatalf("PredecodeAll returned %d entries for %d insts", len(pre), len(insts))
	}
	for i := range insts {
		if want := Predecode(insts[i]); pre[i] != want {
			t.Errorf("entry %d: %+v, want %+v", i, pre[i], want)
		}
	}
}

func preEqualU8(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
