// Package isa defines the extended MIPS-I-like instruction set used by the
// fast-address-calculation study: a 32-bit RISC ISA with register+constant,
// register+register, and post-increment/decrement addressing modes and no
// architected delay slots, exactly as described in Section 5.1 of Austin,
// Pnevmatikatos & Sohi (ISCA 1995).
//
// The package provides the instruction representation shared by the
// assembler, emulator, and timing simulator, together with a dense 32-bit
// binary encoding and a disassembler.
package isa

import "fmt"

// Reg names one of the 32 integer registers or, in FP instruction fields,
// one of the 32 floating-point registers.
type Reg uint8

// Integer register conventions (MIPS o32-style). The fast address
// calculation hardware and the reference-behavior profiler classify
// accesses by base register: GP-based accesses are "global pointer"
// references, SP/FP-based accesses are "stack pointer" references, and
// everything else is a "general pointer" reference (paper Section 2).
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary
	V0   Reg = 2 // function result / syscall code
	V1   Reg = 3 // function result
	A0   Reg = 4 // argument 0
	A1   Reg = 5 // argument 1
	A2   Reg = 6 // argument 2
	A3   Reg = 7 // argument 3
	T0   Reg = 8 // caller-saved temporaries
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26 // reserved
	K1   Reg = 27 // reserved
	GP   Reg = 28 // global pointer
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

// NumRegs is the size of each architectural register file.
const NumRegs = 32

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional assembly name of the integer register,
// e.g. "$sp" for register 29.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// FPName returns the assembly name used when the register number denotes a
// floating-point register, e.g. "$f4".
func (r Reg) FPName() string { return fmt.Sprintf("$f%d", uint8(r)) }

// RegByName maps an assembly register name (without the leading '$') to its
// number. Both conventional names ("sp") and numeric names ("r29", "29")
// are accepted.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "r%d", &n); err == nil && n >= 0 && n < NumRegs {
		return Reg(n), true
	}
	if _, err := fmt.Sscanf(name, "%d", &n); err == nil && n >= 0 && n < NumRegs {
		return Reg(n), true
	}
	return 0, false
}
