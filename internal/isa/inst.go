package isa

import "fmt"

// Field usage conventions by instruction form:
//
//	ALU r-type:   Rd = dest, Rs/Rt = sources
//	ALU i-type:   Rd = dest, Rs = source, Imm = immediate (shift amount for
//	              SLL/SRL/SRA)
//	BEQ/BNE:      Rs/Rt compared, Imm = signed byte displacement from the
//	              address of the next instruction
//	BLEZ etc:     Rs tested, Imm = displacement
//	BC1T/BC1F:    Imm = displacement (reads the FP condition flag)
//	J/JAL:        Imm = absolute byte target address
//	JR:           Rs = target;  JALR: Rd = link register, Rs = target
//	load const:   Rd = dest, Rs = base, Imm = signed offset
//	store const:  Rt = data, Rs = base, Imm = signed offset
//	load reg+reg: Rd = dest, Rs = base, Rt = index
//	store reg+reg: Rd = data, Rs = base, Rt = index
//	post-inc:     as const form with effective address = base; after the
//	              access the base register receives base+Imm
//	FP r-type:    Rd = dest, Rs/Rt = sources (FP register file)
//	MTC1:         Rd = FP dest, Rs = integer source
//	MFC1:         Rd = integer dest, Rs = FP source
//
// Every instruction occupies 4 bytes of text.
const InstBytes = 4

// Inst is a decoded instruction.
type Inst struct {
	Op     Op
	Rd     Reg
	Rs, Rt Reg
	Imm    int32
}

// Unified architectural register identifiers, used by the dependence
// tracking in the timing simulator. Integer registers occupy 0..31, FP
// registers 32..63, and the FP condition flag is UFCC.
const (
	UFPBase  = 32
	UFCC     = 64
	NumURegs = 65
)

// UInt returns the unified id of an integer register.
func UInt(r Reg) uint8 { return uint8(r) }

// UFP returns the unified id of an FP register.
func UFP(r Reg) uint8 { return uint8(r) + UFPBase }

// Uses appends the unified ids of all registers the instruction reads and
// returns the extended slice. Register 0 (hardwired zero) is never reported.
func (in Inst) Uses(buf []uint8) []uint8 {
	addInt := func(r Reg) {
		if r != Zero {
			buf = append(buf, UInt(r))
		}
	}
	addFP := func(r Reg) { buf = append(buf, UFP(r)) }

	switch in.Op {
	case ADD, SUB, MUL, DIV, DIVU, REM, REMU, AND, OR, XOR, NOR, SLT, SLTU, SLLV, SRLV, SRAV:
		addInt(in.Rs)
		addInt(in.Rt)
	case ADDI, ANDI, ORI, XORI, SLTI, SLTIU, SLL, SRL, SRA:
		addInt(in.Rs)
	case LUI, J, JAL, SYSCALL:
		// SYSCALL conventionally reads V0/A0..A2 and F12; model the common ones.
		if in.Op == SYSCALL {
			addInt(V0)
			addInt(A0)
		}
	case BEQ, BNE:
		addInt(in.Rs)
		addInt(in.Rt)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		addInt(in.Rs)
	case JR, JALR:
		addInt(in.Rs)
	case LB, LBU, LH, LHU, LW:
		addInt(in.Rs)
	case LFD:
		addInt(in.Rs)
	case SB, SH, SW:
		addInt(in.Rs)
		addInt(in.Rt)
	case SFD:
		addInt(in.Rs)
		addFP(in.Rt)
	case LBX, LBUX, LHX, LHUX, LWX, LFDX:
		addInt(in.Rs)
		addInt(in.Rt)
	case SBX, SHX, SWX:
		addInt(in.Rs)
		addInt(in.Rt)
		addInt(in.Rd)
	case SFDX:
		addInt(in.Rs)
		addInt(in.Rt)
		addFP(in.Rd)
	case LWPI, LFDPI:
		addInt(in.Rs)
	case SWPI:
		addInt(in.Rs)
		addInt(in.Rt)
	case SFDPI:
		addInt(in.Rs)
		addFP(in.Rt)
	case FADD, FSUB, FMUL, FDIV:
		addFP(in.Rs)
		addFP(in.Rt)
	case FNEG, FABS, FMOV, CVTDW, CVTWD:
		addFP(in.Rs)
	case FCLT, FCLE, FCEQ:
		addFP(in.Rs)
		addFP(in.Rt)
	case BC1T, BC1F:
		buf = append(buf, UFCC)
	case MTC1:
		addInt(in.Rs)
	case MFC1:
		addFP(in.Rs)
	}
	return buf
}

// Defs appends the unified ids of all registers the instruction writes and
// returns the extended slice. Writes to register 0 are suppressed.
func (in Inst) Defs(buf []uint8) []uint8 {
	addInt := func(r Reg) {
		if r != Zero {
			buf = append(buf, UInt(r))
		}
	}
	switch in.Op {
	case ADD, SUB, MUL, DIV, DIVU, REM, REMU, AND, OR, XOR, NOR, SLT, SLTU,
		SLLV, SRLV, SRAV, ADDI, ANDI, ORI, XORI, SLTI, SLTIU, SLL, SRL, SRA, LUI:
		addInt(in.Rd)
	case JAL:
		addInt(RA)
	case JALR:
		addInt(in.Rd)
	case LB, LBU, LH, LHU, LW, LBX, LBUX, LHX, LHUX, LWX:
		addInt(in.Rd)
	case LFD, LFDX:
		buf = append(buf, UFP(in.Rd))
	case LWPI:
		addInt(in.Rd)
		addInt(in.Rs)
	case LFDPI:
		buf = append(buf, UFP(in.Rd))
		addInt(in.Rs)
	case SWPI, SFDPI:
		addInt(in.Rs)
	case FADD, FSUB, FMUL, FDIV, FNEG, FABS, FMOV, CVTDW, CVTWD, MTC1:
		buf = append(buf, UFP(in.Rd))
	case MFC1:
		addInt(in.Rd)
	case FCLT, FCLE, FCEQ:
		buf = append(buf, UFCC)
	case SYSCALL:
		addInt(V0) // result of sbrk etc.
	}
	return buf
}

// ControlTarget returns the statically-known target address of a direct
// control transfer located at pc: conditional branches (Imm is the signed
// byte displacement from the next instruction) and J/JAL (Imm is the
// absolute byte target). ok is false for indirect transfers (JR, JALR) and
// for non-control instructions.
func (in Inst) ControlTarget(pc uint32) (target uint32, ok bool) {
	switch {
	case in.Op.IsBranch():
		return pc + InstBytes + uint32(in.Imm), true
	case in.Op == J || in.Op == JAL:
		return uint32(in.Imm), true
	}
	return 0, false
}

// BaseReg returns the base register of a memory instruction.
func (in Inst) BaseReg() Reg { return in.Rs }

// IndexReg returns the index register of a register+register memory
// instruction.
func (in Inst) IndexReg() Reg { return in.Rt }

// StoreDataReg returns the register supplying the value of a store.
func (in Inst) StoreDataReg() Reg {
	switch in.Op.Mode() {
	case AMReg:
		return in.Rd
	default:
		return in.Rt
	}
}

// String disassembles the instruction using conventional syntax.
func (in Inst) String() string {
	op := in.Op
	info := opTable[op]
	switch {
	case op == SYSCALL:
		return "syscall"
	case op == LUI:
		return fmt.Sprintf("lui %s, %#x", in.Rd, uint16(in.Imm))
	case op == SLL || op == SRL || op == SRA:
		return fmt.Sprintf("%s %s, %s, %d", info.name, in.Rd, in.Rs, in.Imm)
	case op == J || op == JAL:
		return fmt.Sprintf("%s %#x", info.name, uint32(in.Imm))
	case op == JR:
		return fmt.Sprintf("jr %s", in.Rs)
	case op == JALR:
		return fmt.Sprintf("jalr %s, %s", in.Rd, in.Rs)
	case op == BEQ || op == BNE:
		return fmt.Sprintf("%s %s, %s, %d", info.name, in.Rs, in.Rt, in.Imm)
	case op == BLEZ || op == BGTZ || op == BLTZ || op == BGEZ:
		return fmt.Sprintf("%s %s, %d", info.name, in.Rs, in.Imm)
	case op == BC1T || op == BC1F:
		return fmt.Sprintf("%s %d", info.name, in.Imm)
	case op == MTC1:
		return fmt.Sprintf("mtc1 %s, %s", in.Rd.FPName(), in.Rs)
	case op == MFC1:
		return fmt.Sprintf("mfc1 %s, %s", in.Rd, in.Rs.FPName())
	case op.IsMem():
		return in.memString()
	case info.fpDest && info.fpSrc:
		switch op {
		case FNEG, FABS, FMOV, CVTDW, CVTWD:
			return fmt.Sprintf("%s %s, %s", info.name, in.Rd.FPName(), in.Rs.FPName())
		}
		return fmt.Sprintf("%s %s, %s, %s", info.name, in.Rd.FPName(), in.Rs.FPName(), in.Rt.FPName())
	case op == FCLT || op == FCLE || op == FCEQ:
		return fmt.Sprintf("%s %s, %s", info.name, in.Rs.FPName(), in.Rt.FPName())
	case op == ADDI || op == ANDI || op == ORI || op == XORI || op == SLTI || op == SLTIU:
		return fmt.Sprintf("%s %s, %s, %d", info.name, in.Rd, in.Rs, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", info.name, in.Rd, in.Rs, in.Rt)
	}
}

func (in Inst) memString() string {
	op := in.Op
	info := opTable[op]
	dataName := func(r Reg) string {
		if info.fpDest || info.fpSrc {
			return r.FPName()
		}
		return r.String()
	}
	switch op.Mode() {
	case AMReg:
		data := in.Rd
		if op.IsStore() {
			return fmt.Sprintf("%s %s, (%s+%s)", info.name, dataName(data), in.Rs, in.Rt)
		}
		return fmt.Sprintf("%s %s, (%s+%s)", info.name, dataName(in.Rd), in.Rs, in.Rt)
	case AMPost:
		data := in.Rd
		if op.IsStore() {
			data = in.Rt
		}
		return fmt.Sprintf("%s %s, (%s)+%d", info.name, dataName(data), in.Rs, in.Imm)
	default:
		data := in.Rd
		if op.IsStore() {
			data = in.Rt
		}
		return fmt.Sprintf("%s %s, %d(%s)", info.name, dataName(data), in.Imm, in.Rs)
	}
}
