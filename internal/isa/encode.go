package isa

import "fmt"

// Binary encoding. Instructions are 32 bits:
//
//	R-form (major opcode 0):
//	    [31:26]=0 [25:21]=rs [20:16]=rt [15:11]=rd [10:6]=sa [5:0]=funct
//	I-form: [31:26]=op [25:21]=rs [20:16]=rd/rt [15:0]=imm16 (signed except
//	    the logical immediates and LUI, which are zero-extended)
//	J-form: [31:26]=op [25:0]=target (byte address >> 2, within the 256MB
//	    region of the following instruction)
//
// Branch displacements are encoded in words relative to the address of the
// next instruction, as in MIPS, but there are no architected delay slots.
const (
	opcR = 0 // major opcode of all R-form instructions

	opcJ    = 1
	opcJAL  = 2
	opcBEQ  = 3
	opcBNE  = 4
	opcBLEZ = 5
	opcBGTZ = 6
	opcBLTZ = 7
	opcBGEZ = 8

	opcADDI  = 9
	opcANDI  = 10
	opcORI   = 11
	opcXORI  = 12
	opcSLTI  = 13
	opcSLTIU = 14
	opcLUI   = 15

	opcLB  = 16
	opcLBU = 17
	opcLH  = 18
	opcLHU = 19
	opcLW  = 20
	opcSB  = 21
	opcSH  = 22
	opcSW  = 23
	opcLFD = 24
	opcSFD = 25

	opcLWPI  = 26
	opcSWPI  = 27
	opcLFDPI = 28
	opcSFDPI = 29

	opcBC1T = 30
	opcBC1F = 31
)

// funct codes for R-form instructions.
const (
	fnADD = iota
	fnSUB
	fnMUL
	fnDIV
	fnDIVU
	fnREM
	fnREMU
	fnAND
	fnOR
	fnXOR
	fnNOR
	fnSLT
	fnSLTU
	fnSLLV
	fnSRLV
	fnSRAV
	fnSLL
	fnSRL
	fnSRA
	fnJR
	fnJALR
	fnSYSCALL
	fnLBX
	fnLBUX
	fnLHX
	fnLHUX
	fnLWX
	fnSBX
	fnSHX
	fnSWX
	fnLFDX
	fnSFDX
	fnFADD
	fnFSUB
	fnFMUL
	fnFDIV
	fnFNEG
	fnFABS
	fnFMOV
	fnFCLT
	fnFCLE
	fnFCEQ
	fnMTC1
	fnMFC1
	fnCVTDW
	fnCVTWD
)

var iOpcOf = map[Op]uint32{
	J: opcJ, JAL: opcJAL,
	BEQ: opcBEQ, BNE: opcBNE, BLEZ: opcBLEZ, BGTZ: opcBGTZ, BLTZ: opcBLTZ, BGEZ: opcBGEZ,
	ADDI: opcADDI, ANDI: opcANDI, ORI: opcORI, XORI: opcXORI,
	SLTI: opcSLTI, SLTIU: opcSLTIU, LUI: opcLUI,
	LB: opcLB, LBU: opcLBU, LH: opcLH, LHU: opcLHU, LW: opcLW,
	SB: opcSB, SH: opcSH, SW: opcSW, LFD: opcLFD, SFD: opcSFD,
	LWPI: opcLWPI, SWPI: opcSWPI, LFDPI: opcLFDPI, SFDPI: opcSFDPI,
	BC1T: opcBC1T, BC1F: opcBC1F,
}

var iOpOf = func() map[uint32]Op {
	m := make(map[uint32]Op, len(iOpcOf))
	for op, c := range iOpcOf {
		m[c] = op
	}
	return m
}()

var functOf = map[Op]uint32{
	ADD: fnADD, SUB: fnSUB, MUL: fnMUL, DIV: fnDIV, DIVU: fnDIVU,
	REM: fnREM, REMU: fnREMU, AND: fnAND, OR: fnOR, XOR: fnXOR, NOR: fnNOR,
	SLT: fnSLT, SLTU: fnSLTU, SLLV: fnSLLV, SRLV: fnSRLV, SRAV: fnSRAV,
	SLL: fnSLL, SRL: fnSRL, SRA: fnSRA,
	JR: fnJR, JALR: fnJALR, SYSCALL: fnSYSCALL,
	LBX: fnLBX, LBUX: fnLBUX, LHX: fnLHX, LHUX: fnLHUX, LWX: fnLWX,
	SBX: fnSBX, SHX: fnSHX, SWX: fnSWX, LFDX: fnLFDX, SFDX: fnSFDX,
	FADD: fnFADD, FSUB: fnFSUB, FMUL: fnFMUL, FDIV: fnFDIV,
	FNEG: fnFNEG, FABS: fnFABS, FMOV: fnFMOV,
	FCLT: fnFCLT, FCLE: fnFCLE, FCEQ: fnFCEQ,
	MTC1: fnMTC1, MFC1: fnMFC1, CVTDW: fnCVTDW, CVTWD: fnCVTWD,
}

var opOfFunct = func() map[uint32]Op {
	m := make(map[uint32]Op, len(functOf))
	for op, f := range functOf {
		m[f] = op
	}
	return m
}()

// Encode packs the instruction into its 32-bit binary form. pc is the
// address of the instruction, needed to encode PC-relative branch
// displacements and region-relative jump targets.
func Encode(in Inst, pc uint32) (uint32, error) {
	rfield := func(r Reg) uint32 { return uint32(r) & 31 }
	switch in.Op {
	case J, JAL:
		target := uint32(in.Imm)
		if target&3 != 0 {
			return 0, fmt.Errorf("isa: jump target %#x not word aligned", target)
		}
		next := pc + InstBytes
		if target&0xF0000000 != next&0xF0000000 {
			return 0, fmt.Errorf("isa: jump target %#x outside region of pc %#x", target, pc)
		}
		return iOpcOf[in.Op]<<26 | (target>>2)&0x03FFFFFF, nil
	}
	if funct, ok := functOf[in.Op]; ok {
		sa := uint32(0)
		switch in.Op {
		case SLL, SRL, SRA:
			if in.Imm < 0 || in.Imm > 31 {
				return 0, fmt.Errorf("isa: shift amount %d out of range", in.Imm)
			}
			sa = uint32(in.Imm)
		}
		return rfield(in.Rs)<<21 | rfield(in.Rt)<<16 | rfield(in.Rd)<<11 | sa<<6 | funct, nil
	}
	opc, ok := iOpcOf[in.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
	}
	// Bits [20:16] hold the second register operand: Rt for the two-register
	// branches and for const/post-form stores (the data register), Rd for
	// everything else.
	second := in.Rd
	if in.Op == BEQ || in.Op == BNE || (in.Op.IsStore() && in.Op.Mode() != AMReg) {
		second = in.Rt
	}
	imm := in.Imm
	var imm16 uint32
	switch {
	case in.Op.IsBranch():
		disp := imm
		if disp&3 != 0 {
			return 0, fmt.Errorf("isa: branch displacement %d not word aligned", disp)
		}
		w := disp >> 2
		if w < -32768 || w > 32767 {
			return 0, fmt.Errorf("isa: branch displacement %d out of range", disp)
		}
		imm16 = uint32(w) & 0xFFFF
	case in.Op == ANDI || in.Op == ORI || in.Op == XORI || in.Op == LUI:
		if imm < 0 || imm > 0xFFFF {
			return 0, fmt.Errorf("isa: unsigned immediate %d out of range for %v", imm, in.Op)
		}
		imm16 = uint32(imm)
	default:
		if imm < -32768 || imm > 32767 {
			return 0, fmt.Errorf("isa: immediate %d out of range for %v", imm, in.Op)
		}
		imm16 = uint32(imm) & 0xFFFF
	}
	return opc<<26 | rfield(in.Rs)<<21 | rfield(second)<<16 | imm16, nil
}

// Decode unpacks a 32-bit binary instruction. pc is the address of the
// instruction, used to materialize absolute branch and jump targets in Imm.
func Decode(word, pc uint32) (Inst, error) {
	opc := word >> 26
	if opc == opcR {
		funct := word & 63
		op, ok := opOfFunct[funct]
		if !ok {
			return Inst{}, fmt.Errorf("isa: bad funct %d in word %#08x", funct, word)
		}
		in := Inst{
			Op: op,
			Rs: Reg(word >> 21 & 31),
			Rt: Reg(word >> 16 & 31),
			Rd: Reg(word >> 11 & 31),
		}
		switch op {
		case SLL, SRL, SRA:
			in.Imm = int32(word >> 6 & 31)
		}
		return in, nil
	}
	if opc == opcJ || opc == opcJAL {
		target := (pc+InstBytes)&0xF0000000 | (word&0x03FFFFFF)<<2
		op := J
		if opc == opcJAL {
			op = JAL
		}
		return Inst{Op: op, Imm: int32(target)}, nil
	}
	op, ok := iOpOf[opc]
	if !ok {
		return Inst{}, fmt.Errorf("isa: bad opcode %d in word %#08x", opc, word)
	}
	in := Inst{Op: op, Rs: Reg(word >> 21 & 31)}
	secondReg := Reg(word >> 16 & 31)
	if op == BEQ || op == BNE || (op.IsStore() && op.Mode() != AMReg) {
		in.Rt = secondReg
	} else {
		in.Rd = secondReg
	}
	imm16 := word & 0xFFFF
	switch {
	case op.IsBranch():
		in.Imm = int32(int16(imm16)) << 2
	case op == ANDI || op == ORI || op == XORI || op == LUI:
		in.Imm = int32(imm16)
	default:
		in.Imm = int32(int16(imm16))
	}
	return in, nil
}
