package isa

// Pre is the pre-decoded form of one instruction: every property the
// timing simulator and emulator consult per dynamic instance, flattened
// into a small value so the per-fetch cost is field reads instead of
// opTable lookups and Uses/Defs switch dispatch. A program's text is
// pre-decoded once (prog.Program.Predecoded); the hot loops never call
// Inst.Uses, Inst.Defs, or the Op predicate methods.
//
// The register lists reproduce Inst.Uses / Inst.Defs exactly, in the
// same order (TestPredecodeMatchesInst enforces this for every op).
type Pre struct {
	Uses  [3]uint8 // unified ids of source registers (first NUses valid)
	Defs  [2]uint8 // unified ids of destination registers (first NDefs valid)
	NUses uint8
	NDefs uint8
	Class OpClass
	Flags PreFlags
	// BaseU is the unified id of the base register of a memory operation
	// (the post-increment writeback target); 0 otherwise.
	BaseU uint8
	// MemSize is the access width in bytes of a memory operation; 0 otherwise.
	MemSize uint8
}

// PreFlags are the pre-computed instruction predicates.
type PreFlags uint8

const (
	PreControl   PreFlags = 1 << iota // can redirect the PC
	PreMem                            // accesses data memory
	PreLoad                           // reads data memory
	PreStore                          // writes data memory
	PrePostInc                        // post-increment addressing (AMPost)
	PreRegOffset                      // register+register addressing (AMReg)
)

// IsControl reports whether the instruction can redirect the PC.
func (p *Pre) IsControl() bool { return p.Flags&PreControl != 0 }

// IsMem reports whether the instruction accesses data memory.
func (p *Pre) IsMem() bool { return p.Flags&PreMem != 0 }

// IsLoad reports whether the instruction reads data memory.
func (p *Pre) IsLoad() bool { return p.Flags&PreLoad != 0 }

// Predecode flattens one decoded instruction.
func Predecode(in Inst) Pre {
	var p Pre
	var buf [4]uint8
	uses := in.Uses(buf[:0])
	p.NUses = uint8(copy(p.Uses[:], uses))
	defs := in.Defs(buf[:0])
	p.NDefs = uint8(copy(p.Defs[:], defs))
	op := in.Op
	p.Class = op.Class()
	p.MemSize = uint8(op.MemSize())
	if op.IsControl() {
		p.Flags |= PreControl
	}
	if op.IsMem() {
		p.Flags |= PreMem
		p.BaseU = UInt(in.BaseReg())
	}
	if op.IsLoad() {
		p.Flags |= PreLoad
	}
	if op.IsStore() {
		p.Flags |= PreStore
	}
	switch op.Mode() {
	case AMPost:
		p.Flags |= PrePostInc
	case AMReg:
		p.Flags |= PreRegOffset
	}
	return p
}

// PredecodeAll pre-decodes a text segment.
func PredecodeAll(insts []Inst) []Pre {
	pre := make([]Pre, len(insts))
	for i, in := range insts {
		pre[i] = Predecode(in)
	}
	return pre
}
