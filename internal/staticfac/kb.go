// Package staticfac is a whole-program static analysis that classifies
// every load/store site of a linked program by fast-address-calculation
// predictability (paper Section 3 failure conditions, Section 4 software
// support). It tracks a known-bits lattice per integer register — low-bit
// patterns proven by lui/addi/shifts/andi, the exact global pointer
// exported by the linker, and stack-pointer alignment facts established by
// MiniC frame layout — propagates it through a CFG recovered from the
// disassembly, and renders a three-way verdict per site:
//
//   - ProvenPredictable: no execution reaching the site can raise any of
//     the four verification-failure signals; the dynamic predictor never
//     replays this access.
//   - ProvenFailing: every execution reaching the site raises at least one
//     failure signal; the access replays on every speculation.
//   - Unknown: the analysis cannot decide.
//
// The verdicts are sound with respect to internal/fac.Config.Predict and
// the emulator's operand semantics; internal/difftest cross-checks them
// against dynamic per-site counters on every fuzzed program. See
// docs/ANALYSIS.md for the lattice, the failure-case proofs, and the ABI
// assumptions (AssumptionsNote).
package staticfac

import (
	"fmt"
	"strings"
)

// KB is a known-bits abstract value for a 32-bit register: bit i is proven
// zero when Zeros has bit i set, proven one when Ones has it set, and
// unknown otherwise. Zeros&Ones == 0 for every well-formed value. A concrete
// value v is represented by the abstraction iff v&Zeros == 0 && v&Ones == Ones.
type KB struct {
	Zeros uint32
	Ones  uint32
}

// Exact abstracts a single concrete value.
func Exact(v uint32) KB { return KB{Zeros: ^v, Ones: v} }

// Unknown is the lattice top: nothing known.
var Unknown = KB{}

// Known returns the mask of bits with a proven value.
func (k KB) Known() uint32 { return k.Zeros | k.Ones }

// IsExact reports whether every bit is known.
func (k KB) IsExact() bool { return k.Known() == ^uint32(0) }

// Contains reports whether the concrete value v is represented by k.
func (k KB) Contains(v uint32) bool { return v&k.Zeros == 0 && v&k.Ones == k.Ones }

// Join returns the least upper bound: only facts proven on both sides
// survive (the merge at control-flow joins).
func (k KB) Join(o KB) KB { return KB{Zeros: k.Zeros & o.Zeros, Ones: k.Ones & o.Ones} }

// MaxIn returns the largest value the masked field can take.
func (k KB) MaxIn(mask uint32) uint32 { return ^k.Zeros & mask }

// MinIn returns the smallest value the masked field can take.
func (k KB) MinIn(mask uint32) uint32 { return k.Ones & mask }

// Not returns the abstraction of the bitwise complement.
func (k KB) Not() KB { return KB{Zeros: k.Ones, Ones: k.Zeros} }

// And returns the abstraction of the bitwise AND: a result bit is zero if
// either side is proven zero, one only if both are proven one.
func (k KB) And(o KB) KB { return KB{Zeros: k.Zeros | o.Zeros, Ones: k.Ones & o.Ones} }

// Or returns the abstraction of the bitwise OR.
func (k KB) Or(o KB) KB { return KB{Zeros: k.Zeros & o.Zeros, Ones: k.Ones | o.Ones} }

// Xor returns the abstraction of the bitwise XOR: a result bit is known
// only when both input bits are known.
func (k KB) Xor(o KB) KB {
	known := k.Known() & o.Known()
	v := k.Ones ^ o.Ones
	return KB{Zeros: ^v & known, Ones: v & known}
}

// Nor returns the abstraction of NOR.
func (k KB) Nor(o KB) KB { return k.Or(o).Not() }

// Shl returns the abstraction of a left shift by a known amount; the
// shifted-in low bits are proven zero.
func (k KB) Shl(n uint) KB {
	n &= 31
	return KB{Zeros: k.Zeros<<n | (1<<n - 1), Ones: k.Ones << n}
}

// Shr returns the abstraction of a logical right shift by a known amount;
// the shifted-in high bits are proven zero.
func (k KB) Shr(n uint) KB {
	n &= 31
	z := k.Zeros >> n
	if n > 0 {
		z |= ^(^uint32(0) >> n)
	}
	return KB{Zeros: z, Ones: k.Ones >> n}
}

// Sar returns the abstraction of an arithmetic right shift by a known
// amount; the shifted-in bits copy the sign bit when it is known.
func (k KB) Sar(n uint) KB {
	n &= 31
	top := uint32(0)
	if n > 0 {
		top = ^(^uint32(0) >> n)
	}
	out := KB{Zeros: k.Zeros >> n, Ones: k.Ones >> n}
	switch {
	case k.Zeros&0x80000000 != 0:
		out.Zeros |= top
	case k.Ones&0x80000000 != 0:
		out.Ones |= top
	}
	return out
}

// Add returns a sound abstraction of 32-bit addition. Where all three of
// (both operand bits, the incoming carry) are determined, the result bit is
// known. The carry at each position is bounded by evaluating the concrete
// sums of the minimal (all unknowns 0) and maximal (all unknowns 1)
// consistent operand values: the carry function is monotone in the operand
// bits, so a carry that is 0 even in the maximal sum is proven 0, and one
// that is 1 even in the minimal sum is proven 1.
func (k KB) Add(o KB) KB {
	maxA, maxB := ^k.Zeros, ^o.Zeros
	minA, minB := k.Ones, o.Ones
	sumMax := maxA + maxB
	sumMin := minA + minB
	carryMax := sumMax ^ maxA ^ maxB // carry-in per bit of the maximal sum
	carryMin := sumMin ^ minA ^ minB // carry-in per bit of the minimal sum
	known := k.Known() & o.Known() & (^carryMax | carryMin)
	return KB{Zeros: ^sumMin & known, Ones: sumMin & known}
}

// Sub returns a sound abstraction of 32-bit subtraction (a + ^b + 1).
func (k KB) Sub(o KB) KB { return k.Add(o.Not()).Add(Exact(1)) }

// Bool01 abstracts a comparison result: 0 or 1, so bits 1..31 are zero.
func Bool01() KB { return KB{Zeros: ^uint32(1)} }

// LowKnown returns the value of the low n bits if all are known.
func (k KB) LowKnown(n uint) (uint32, bool) {
	mask := uint32(1)<<n - 1
	if k.Known()&mask == mask {
		return k.Ones & mask, true
	}
	return 0, false
}

// String renders the value nibble-wise: a hex digit where all four bits are
// known, '?' otherwise, prefixed with '=' when the value is exact.
func (k KB) String() string {
	if k.IsExact() {
		return fmt.Sprintf("=0x%08x", k.Ones)
	}
	var b strings.Builder
	b.WriteString("0x")
	for i := 7; i >= 0; i-- {
		shift := uint(i * 4)
		if k.Known()>>shift&0xF == 0xF {
			fmt.Fprintf(&b, "%x", k.Ones>>shift&0xF)
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}
