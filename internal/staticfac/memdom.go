package staticfac

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// memdom.go — the abstract memory domain: a global-scalar domain over
// data-section cells plus the machinery behind flow-sensitive stack
// slots (transfer.go holds the per-state slot representation).
//
// # Global-scalar cells
//
// A cell is a word-aligned 4-byte location in the statically allocated
// data region [dataLo, dataHi). Its fact is flow-insensitive: the join
// of the cell's initial image value with the abstract value of every
// store that may write it anywhere in the program — so a global that is
// written once before a loop ("n = 9") bounds every load of it, which
// is exactly the memory-resident-loop-limit case the register domains
// cannot touch.
//
// Store effects are collected from the *reached* store sites of the
// converged dataflow, and the whole analysis iterates store-collection
// against dataflow to a combined fixpoint (see Analyze). Restricting to
// reached stores is load-bearing: every linked binary carries the dead
// runtime prelude, whose $sp-relative stores have a fully unknown base
// under the flow-insensitive invariant and would poison every cell in
// every program. The restriction is sound because static reachability
// is itself one of the analysis' checked claims — difftest asserts
// "every executed site is statically reachable" on every run, so a
// store the dataflow misses is a reported soundness bug, not a silent
// hole.
//
// A store with an exact word-aligned address contributes a join; any
// other store that may overlap a cell (per the known-bits × interval
// address abstraction) poisons it — the fact degrades to top and the
// poisoning store's pc is kept for -explain blame chains.
//
// # The heap
//
// Heap addresses come only from sbrk, which the transfer models as
// [HeapBase, 2^32) (emu.SysSbrk returns the old break and grows
// upward). That keeps heap traffic disjoint from global cells — below
// HeapBase — without any heap modeling; AssumptionsNote's no-heap-wrap
// clause covers the emulator's unchecked break arithmetic.

// MemVal is one tracked memory value in both domains.
type MemVal struct {
	K  KB
	IV Interval
}

func topMemVal() MemVal { return MemVal{K: Unknown, IV: IvTop} }

// IsTop reports whether the value carries no information.
func (v MemVal) IsTop() bool { return v.K == Unknown && v.IV.IsTop() }

// String renders the value as its known-bits pattern plus interval.
func (v MemVal) String() string { return v.K.String() + " " + v.IV.String() }

// storeEffect is the abstract write of one reached store site: the
// address and stored value in both domains. Effects are keyed by pc and
// joined monotonically across outer rounds, so the combined fixpoint
// terminates (KB joins only clear bits; intervals widen after
// memWidenRounds).
type storeEffect struct {
	PC     uint32
	Size   uint32
	AddrK  KB
	AddrIV Interval
	ValK   KB
	ValIV  Interval
	// StackOnly marks a store provably confined to the stack region
	// (AssumptionsNote 5): it can never touch a global cell, even when
	// its widened address range is otherwise useless. See
	// analyzer.collectEffects.
	StackOnly bool
}

// exactWord reports whether the effect is precisely a 4-byte write of
// the word-aligned cell at addr.
func (e storeEffect) exactWord(addr uint32) bool {
	return e.Size == 4 && e.AddrK.IsExact() && e.AddrK.Ones == addr
}

// mayTouch reports whether the effect can write any byte of
// [addr, addr+width). Both address domains must admit a starting
// address in [addr-Size+1, addr+width-1]; with Size ≤ 8 that is at
// most 11 candidates.
func (e storeEffect) mayTouch(addr, width uint32) bool {
	for a := addr - e.Size + 1; a != addr+width; a++ {
		if e.AddrK.Contains(a) && e.AddrIV.Contains(a) {
			return true
		}
	}
	return false
}

func (e storeEffect) join(o storeEffect) storeEffect {
	e.AddrK = e.AddrK.Join(o.AddrK)
	e.AddrIV = e.AddrIV.Join(o.AddrIV)
	e.ValK = e.ValK.Join(o.ValK)
	e.ValIV = e.ValIV.Join(o.ValIV)
	e.StackOnly = e.StackOnly && o.StackOnly
	return e
}

// cellFact is the resolved fact for one global cell under the current
// effect set, with provenance for blame chains.
type cellFact struct {
	val      MemVal
	poisoned bool
	blamePC  uint32   // the poisoning store, when poisoned
	stores   []uint32 // contributing store pcs (capped), for -explain
}

const (
	// memWidenRounds is the outer round after which committed effect
	// intervals widen instead of growing step by step.
	memWidenRounds = 4
	// maxMemRounds caps the outer dataflow↔effects fixpoint; past it the
	// memory domain degrades to top (degrade) rather than loop.
	maxMemRounds = 12
	// maxBlameStores caps per-cell provenance.
	maxBlameStores = 4
)

// memEnv is the analyzer's memory environment: the program's data
// layout, the committed store-effect set, the escape set, and the
// per-round cell cache. One memEnv lives for the whole Analyze call;
// commitEffects advances it between outer rounds.
type memEnv struct {
	p              *prog.Program
	dataLo, dataHi uint32 // global cells live in [dataLo, dataHi)
	stackLo        uint32 // exact addresses ≥ stackLo are stack slots
	ts             []uint32

	effects map[uint32]storeEffect
	order   []uint32 // effect pcs, ascending, for deterministic queries
	cells   map[uint32]cellFact

	esc          escapeSet
	escChanged   bool
	trackEscapes bool

	round    int
	degraded bool
}

func newMemEnv(p *prog.Program, ts []uint32) *memEnv {
	return &memEnv{
		p:       p,
		dataLo:  p.DataBase,
		dataHi:  p.HeapBase,
		stackLo: p.HeapBase,
		ts:      ts,
		effects: make(map[uint32]storeEffect),
		cells:   make(map[uint32]cellFact),
	}
}

// globalCellAddr reports whether an exact address names a trackable
// global cell for an access of the given size.
func (m *memEnv) globalCellAddr(addr, size uint32) bool {
	return size == 4 && addr&3 == 0 && addr >= m.dataLo && addr < m.dataHi
}

// stackSlotAddr reports whether an exact address names a trackable
// stack slot for an access of the given size.
func (m *memEnv) stackSlotAddr(addr, size uint32) bool {
	return size == 4 && addr&3 == 0 && addr >= m.stackLo
}

// cell resolves the fact for the word-aligned global cell at addr under
// the committed effects, memoized per round.
func (m *memEnv) cell(addr uint32) cellFact {
	if m.degraded {
		return cellFact{val: topMemVal(), poisoned: true}
	}
	if f, ok := m.cells[addr]; ok {
		return f
	}
	init := m.p.InitialWord(addr)
	f := cellFact{val: MemVal{K: Exact(init), IV: IvExact(init)}}
	for _, pc := range m.order {
		e := m.effects[pc]
		if e.StackOnly {
			continue
		}
		if e.exactWord(addr) {
			f.val.K = f.val.K.Join(e.ValK)
			f.val.IV = f.val.IV.Join(e.ValIV)
			if len(f.stores) < maxBlameStores {
				f.stores = append(f.stores, pc)
			}
		} else if e.mayTouch(addr, 4) {
			f = cellFact{val: topMemVal(), poisoned: true, blamePC: pc}
			break
		}
	}
	m.cells[addr] = f
	return f
}

// effAddrOf computes the abstract effective address of a memory
// instruction in the pre-state, per addressing mode (post-increment
// presents the raw base).
func effAddrOf(st *State, in isa.Inst) (KB, Interval) {
	base, baseIV := st.R[in.BaseReg()], st.IV[in.BaseReg()]
	switch in.Op.Mode() {
	case isa.AMReg:
		k := base.Add(st.R[in.IndexReg()])
		return k, baseIV.Add(st.IV[in.IndexReg()]).ReduceKB(k)
	case isa.AMPost:
		return base, baseIV
	default:
		k := base.Add(Exact(uint32(in.Imm)))
		return k, baseIV.Add(IvExact(uint32(in.Imm))).ReduceKB(k)
	}
}

// loadFact resolves the abstract value a load may observe: a global
// cell fact for an exact data-section address, a live stack-slot fact
// for an exact stack address. The bool reports whether the location is
// tracked at all (a poisoned cell is not).
func (m *memEnv) loadFact(st *State, in isa.Inst, addrK KB) (MemVal, bool) {
	if !addrK.IsExact() {
		return topMemVal(), false
	}
	addr := addrK.Ones
	size := uint32(in.Op.MemSize())
	switch {
	case m.globalCellAddr(addr, size):
		f := m.cell(addr)
		if f.poisoned {
			return topMemVal(), false
		}
		return f.val, true
	case m.stackSlotAddr(addr, size):
		if s, ok := st.slot(addr); ok {
			return MemVal{K: s.K, IV: s.IV}, true
		}
	}
	return topMemVal(), false
}

// storeUpdate applies a store's effect on the flow-sensitive state:
// escape detection on the data register, then a strong update of the
// named slot for an exact stack word, or a may-overlap kill of every
// slot the address abstraction admits. Global cells are handled
// flow-insensitively by the effect set, not here.
func (m *memEnv) storeUpdate(st *State, in isa.Inst, pc uint32, addrK KB, addrIV Interval) {
	size := uint32(in.Op.MemSize())
	if !in.Op.FPSrc() {
		m.noteReg(st, in.StoreDataReg(), pc)
	}
	if addrK.IsExact() {
		addr := addrK.Ones
		if m.stackSlotAddr(addr, size) && !in.Op.FPSrc() {
			d := in.StoreDataReg()
			st.setSlot(addr, st.R[d], st.IV[d], pc)
			return
		}
		if uint64(addr)+uint64(size) <= uint64(m.stackLo) {
			// An exact write entirely below the stack region cannot
			// touch any slot.
			return
		}
	}
	e := storeEffect{Size: size, AddrK: addrK, AddrIV: addrIV}
	st.killSlots(func(s Slot) bool { return e.mayTouch(s.Addr, 4) })
}

// commitEffects merges one round's collected effects into the
// environment (monotone join per store pc, widening after
// memWidenRounds), resets the cell cache, and reports whether anything
// changed — the outer fixpoint's termination test.
func (m *memEnv) commitEffects(collected map[uint32]storeEffect) bool {
	changed := false
	for pc, e := range collected {
		old, ok := m.effects[pc]
		if !ok {
			m.effects[pc] = e
			changed = true
			continue
		}
		merged := old.join(e)
		if m.round >= memWidenRounds {
			merged.AddrIV = old.AddrIV.WidenTo(merged.AddrIV, m.ts)
			merged.ValIV = old.ValIV.WidenTo(merged.ValIV, m.ts)
		}
		if merged != old {
			m.effects[pc] = merged
			changed = true
		}
	}
	if changed {
		m.order = m.order[:0]
		//lint:sorted
		for pc := range m.effects {
			m.order = append(m.order, pc)
		}
		sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
	}
	m.cells = make(map[uint32]cellFact)
	m.round++
	return changed
}

// degrade abandons memory precision after maxMemRounds: every cell is
// poisoned and the whole stack escapes, which is a trivially stable
// (and sound) environment for one final dataflow pass.
func (m *memEnv) degrade() {
	m.degraded = true
	m.esc.escapeAll(0)
	m.cells = make(map[uint32]cellFact)
}
