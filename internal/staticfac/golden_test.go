package staticfac_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/prog"
	"repro/internal/staticfac"
)

var update = flag.Bool("update", false, "rewrite golden files")

func buildMicro(t *testing.T, name string, falign bool) *prog.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name+".c"))
	if err != nil {
		t.Fatal(err)
	}
	opts := minic.BaseOptions()
	link := prog.DefaultConfig()
	if falign {
		opts = minic.FACOptions()
		link.AlignGP = true
	}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Build(asmText, link)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGoldenVerdicts pins the full fac/static/v1 report for the two
// Section 4 microbenchmarks under both toolchains against golden files
// (refresh with go test ./internal/staticfac -run Golden -update).
func TestGoldenVerdicts(t *testing.T) {
	geom := fac.Config{BlockBits: 5, SetBits: 10}
	for _, micro := range []string{"gp_micro", "stack_micro"} {
		for _, toolchain := range []string{"base", "falign"} {
			name := micro + "_" + toolchain
			t.Run(name, func(t *testing.T) {
				p := buildMicro(t, micro, toolchain == "falign")
				a := staticfac.Analyze(p, geom)
				rep := staticfac.NewReport(a)
				rep.Add(micro, toolchain, a)
				got, err := rep.Encode()
				if err != nil {
					t.Fatal(err)
				}
				golden := filepath.Join("testdata", name+".json")
				if *update {
					if err := os.WriteFile(golden, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("%v (run with -update to regenerate)", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("report differs from %s (run with -update to regenerate)\ngot %d bytes, want %d bytes",
						golden, len(got), len(want))
				}
			})
		}
	}
}

// TestAlignmentFlipsVerdicts asserts the Section 4 claims directly, so the
// golden files cannot silently encode a regression:
//
//   - gp_micro/base has global-pointer sites proven to fail (the unaligned
//     global region), all of which -falign makes proven_predictable;
//   - stack_micro/base has unknown stack sites in the recursive function
//     (only frame alignment survives recursion), all of which -falign makes
//     proven_predictable -- the unknown -> proven_predictable flip.
func TestAlignmentFlipsVerdicts(t *testing.T) {
	geom := fac.Config{BlockBits: 5, SetBits: 10}

	t.Run("gp", func(t *testing.T) {
		base := staticfac.Analyze(buildMicro(t, "gp_micro", false), geom)
		failing := 0
		for i := range base.Sites {
			s := &base.Sites[i]
			if s.Inst.BaseReg() == isa.GP && s.Verdict == staticfac.VerdictFailing {
				failing++
			}
		}
		if failing == 0 {
			t.Fatal("base toolchain: no proven_failing global-pointer site")
		}
		fa := staticfac.Analyze(buildMicro(t, "gp_micro", true), geom)
		for i := range fa.Sites {
			s := &fa.Sites[i]
			if s.Inst.BaseReg() == isa.GP && s.Verdict != staticfac.VerdictPredictable {
				t.Fatalf("falign: gp site %#x (%v) is %v, want proven_predictable",
					s.PC, s.Inst, s.Verdict)
			}
		}
	})

	t.Run("stack", func(t *testing.T) {
		base := staticfac.Analyze(buildMicro(t, "stack_micro", false), geom)
		unknown := 0
		for i := range base.Sites {
			s := &base.Sites[i]
			if s.Func == "sum" && s.Reached && s.Verdict == staticfac.VerdictUnknown {
				unknown++
			}
		}
		if unknown == 0 {
			t.Fatal("base toolchain: no unknown stack site in the recursive function")
		}
		fa := staticfac.Analyze(buildMicro(t, "stack_micro", true), geom)
		for i := range fa.Sites {
			s := &fa.Sites[i]
			if s.Func == "sum" && s.Reached && s.Verdict != staticfac.VerdictPredictable {
				t.Fatalf("falign: stack site %#x (%v) is %v, want proven_predictable",
					s.PC, s.Inst, s.Verdict)
			}
		}
	})
}
