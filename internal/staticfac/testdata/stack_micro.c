/* Section 4 "Stack Pointer Accesses" microbenchmark.
 *
 * The recursive call keeps the analysis from tracking an exact stack
 * pointer, so only the frame alignment survives.  Baseline frames are
 * 8-byte multiples: locals at offsets past the first 8 bytes may carry
 * into the block-offset field (unknown).  With -falign (AlignStack)
 * frames are 64-byte multiples and every local in the first 64 bytes is
 * proven_predictable -- the unknown -> proven_predictable flip.
 */
int sum(int n) {
  int a[8];
  a[0] = n;
  a[5] = n + 2;
  if (n <= 0) {
    return a[5];
  }
  return a[0] + sum(n - 1);
}

int main() { return sum(3); }
