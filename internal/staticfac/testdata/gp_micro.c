/* Section 4 "Global Pointer Accesses" microbenchmark.
 *
 * The string literal lands in .data, so with the stock linker layout the
 * global-pointer region starts at the 8-byte-aligned end of .data
 * (gp = 0x10000008): scalar offsets 24 and 28 carry out of a 32-byte
 * block-offset field on every access (proven_failing) while their
 * neighbors verify on every access (proven_predictable).  With -falign
 * (AlignGP) the region moves to a power-of-two boundary and every
 * global-pointer access is proven_predictable.
 */
int g0;
int g1;
int g2;
int g3;
int g4;
int g5;
int g6;
int g7;

int main() {
  char *p;
  p = "hello";
  g0 = p[0];
  g1 = g0 + 1;
  g2 = g1 + 1;
  g3 = g2 + 1;
  g4 = g3 + 1;
  g5 = g4 + 1;
  g6 = g5 + 1;
  g7 = g6 + 1;
  return g7;
}
