package staticfac

import (
	"fmt"
	"math"
	"math/bits"
)

// Interval is an unsigned value-range abstract value for a 32-bit register:
// the set of concrete values v with Lo() <= v <= Hi(). It complements the
// known-bits domain (KB): KB proves bit patterns (alignment, masked fields)
// while Interval proves magnitude bounds (loop-guard limits on array
// indices), and the two refine each other — Step clamps every interval to
// the KB-consistent range, and site classification folds an interval's
// common-prefix bits back into KB (see KB.Refine).
//
// The upper bound is stored complemented so the zero value is the full
// range [0, 0xFFFFFFFF] (top), mirroring KB whose zero value is Unknown:
// a forgotten initialization degrades precision instead of soundness.
type Interval struct {
	lo    uint32
	notHi uint32
}

// IvRange returns the interval [lo, hi]; it panics if lo > hi (an empty
// interval is never a value — Meet reports emptiness out of band).
func IvRange(lo, hi uint32) Interval {
	if lo > hi {
		panic(fmt.Sprintf("staticfac: empty interval [%#x, %#x]", lo, hi))
	}
	return Interval{lo: lo, notHi: ^hi}
}

// IvExact abstracts a single concrete value.
func IvExact(v uint32) Interval { return Interval{lo: v, notHi: ^v} }

// IvTop is the full range (also the zero value).
var IvTop = Interval{}

// Lo returns the inclusive lower bound.
func (i Interval) Lo() uint32 { return i.lo }

// Hi returns the inclusive upper bound.
func (i Interval) Hi() uint32 { return ^i.notHi }

// IsTop reports whether the interval is the full range.
func (i Interval) IsTop() bool { return i == IvTop }

// IsExact reports whether the interval holds a single value.
func (i Interval) IsExact() bool { return i.lo == ^i.notHi }

// Contains reports whether the concrete value v is in the interval.
func (i Interval) Contains(v uint32) bool { return v >= i.Lo() && v <= i.Hi() }

// Join returns the convex hull (the merge at control-flow joins).
func (i Interval) Join(o Interval) Interval {
	return IvRange(min(i.Lo(), o.Lo()), max(i.Hi(), o.Hi()))
}

// Meet intersects two intervals; ok is false when the intersection is
// empty (the domains contradict, or a branch edge is infeasible).
func (i Interval) Meet(o Interval) (Interval, bool) {
	lo, hi := max(i.Lo(), o.Lo()), min(i.Hi(), o.Hi())
	if lo > hi {
		return IvTop, false
	}
	return IvRange(lo, hi), true
}

// Widen accelerates convergence of an ascending chain: any bound of next
// that moved past the corresponding bound of i jumps outward to the sign
// boundary first and the extreme second. The intermediate threshold
// matters: a counter widened to [0, MaxInt32] still has a definite sign,
// so the signed loop-guard narrowing below the loop head (refineEdges +
// MeetSigned) can recover a tight bound, whereas a full-range interval
// straddles the sign boundary and signed facts select two pieces whose
// hull is the full range again.
func (i Interval) Widen(next Interval) Interval { return i.WidenTo(next, nil) }

// WidenTo is Widen with thresholds: a moved bound first snaps to the
// nearest enclosing threshold (ts must be ascending, all below 2^31 —
// see collectThresholds) before escalating to the sign boundary and the
// extreme. Callers pass next already joined with i (next covers i, as at
// every fixpoint update site), so covering next covers both. Snapping to the program's own comparison constants lets a
// loop-guard fixpoint stabilize at the real loop bound instead of
// overshooting it: the ascending chain of a counter tested against n
// settles at [0, n] in a handful of rounds, and the guard edge then
// narrows it to [0, n-1] for the loop body.
func (i Interval) WidenTo(next Interval, ts []uint32) Interval {
	lo, hi := next.Lo(), next.Hi()
	if lo < i.Lo() {
		switch {
		case lo >= 1<<31:
			lo = 1 << 31
		default:
			lo = thresholdBelow(ts, lo)
		}
	}
	if hi > i.Hi() {
		switch {
		case hi < 1<<31:
			hi = thresholdAbove(ts, hi)
		default:
			hi = math.MaxUint32
		}
	}
	return IvRange(lo, hi)
}

// thresholdAbove returns the smallest threshold >= v, or MaxInt32 (the
// sign boundary keeps signed guard narrowing effective; see Widen).
func thresholdAbove(ts []uint32, v uint32) uint32 {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ts) {
		return ts[lo]
	}
	return math.MaxInt32
}

// thresholdBelow returns the largest threshold <= v, or 0.
func thresholdBelow(ts []uint32, v uint32) uint32 {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		return ts[lo-1]
	}
	return 0
}

// Add returns a sound abstraction of 32-bit wrapping addition: exact
// interval arithmetic when the result set stays contiguous modulo 2^32
// (neither or both endpoint sums wrap), top when it straddles the wrap.
func (i Interval) Add(o Interval) Interval {
	lo := uint64(i.Lo()) + uint64(o.Lo())
	hi := uint64(i.Hi()) + uint64(o.Hi())
	const m = uint64(1) << 32
	switch {
	case hi < m:
		return IvRange(uint32(lo), uint32(hi))
	case lo >= m:
		return IvRange(uint32(lo-m), uint32(hi-m))
	}
	return IvTop
}

// Sub returns a sound abstraction of 32-bit wrapping subtraction.
func (i Interval) Sub(o Interval) Interval {
	lo := int64(i.Lo()) - int64(o.Hi())
	hi := int64(i.Hi()) - int64(o.Lo())
	const m = int64(1) << 32
	switch {
	case lo >= 0:
		return IvRange(uint32(lo), uint32(hi))
	case hi < 0:
		return IvRange(uint32(lo+m), uint32(hi+m))
	}
	return IvTop
}

// Shl abstracts a left shift by a known amount (top once the upper bound
// would wrap).
func (i Interval) Shl(n uint) Interval {
	n &= 31
	if hi := uint64(i.Hi()) << n; hi <= math.MaxUint32 {
		return IvRange(i.Lo()<<n, uint32(hi))
	}
	return IvTop
}

// Shr abstracts a logical right shift by a known amount (monotone, always
// exact on the bounds).
func (i Interval) Shr(n uint) Interval {
	n &= 31
	return IvRange(i.Lo()>>n, i.Hi()>>n)
}

// Sar abstracts an arithmetic right shift by a known amount. The shift is
// monotone on each signed half of the unsigned number line, so the bounds
// map directly unless the interval straddles the sign boundary.
func (i Interval) Sar(n uint) Interval {
	n &= 31
	sar := func(v uint32) uint32 { return uint32(int32(v) >> n) }
	if lo, hi := i.Lo(), i.Hi(); lo >= 1<<31 || hi < 1<<31 {
		return IvRange(sar(lo), sar(hi))
	}
	return IvTop
}

// AndUpper bounds a bitwise AND: the result never exceeds either operand,
// so [0, min(Hi, o.Hi)] always contains it. (Exact bit tracking is KB's
// job; this keeps magnitude facts through masking idioms like `andi`.)
func (i Interval) AndUpper(o Interval) Interval {
	return IvRange(0, min(i.Hi(), o.Hi()))
}

// ReduceKB clamps the interval to the range consistent with a known-bits
// value (every value represented by k lies in [k.Ones, ^k.Zeros]). An
// empty intersection means the two domains contradict — possible only on
// dataflow-unreachable paths — and resolves in KB's favour.
func (i Interval) ReduceKB(k KB) Interval {
	if m, ok := i.Meet(k.Range()); ok {
		return m
	}
	return k.Range()
}

// signedRange returns a signed bound [a, b] covering every member of the
// interval under int32 interpretation. Within either signed half the
// unsigned order matches the signed order; an interval straddling the sign
// boundary covers values on both sides and degrades to the full range.
func (i Interval) signedRange() (int64, int64) {
	lo, hi := i.Lo(), i.Hi()
	if lo < 1<<31 && hi >= 1<<31 {
		return math.MinInt32, math.MaxInt32
	}
	return int64(int32(lo)), int64(int32(hi))
}

// MeetSigned narrows the interval to members whose int32 interpretation
// lies in [a, b]. When nothing survives the interval is returned
// unchanged — callers that want to exploit the emptiness use
// MeetSignedOK.
func (i Interval) MeetSigned(a, b int64) Interval {
	m, ok := i.MeetSignedOK(a, b)
	if !ok {
		return i
	}
	return m
}

// MeetSignedOK narrows the interval to members whose int32 interpretation
// lies in [a, b] and reports whether any member survives. The signed
// range maps to at most two unsigned pieces (non-negative values, then
// negative values high in the unsigned line); the result is the hull of
// the non-empty piecewise meets. ok == false means the meet is empty —
// the branch edge demanding it is infeasible.
func (i Interval) MeetSignedOK(a, b int64) (Interval, bool) {
	if a > b {
		return i, false
	}
	a, b = max(a, math.MinInt32), min(b, math.MaxInt32)
	var pieces []Interval
	if b >= 0 { // non-negative piece [max(a,0), b]
		pieces = append(pieces, IvRange(uint32(max(a, 0)), uint32(b)))
	}
	if a < 0 { // negative piece [2^32+a, 2^32+min(b,-1)]
		const m = int64(1) << 32
		pieces = append(pieces, IvRange(uint32(m+a), uint32(m+min(b, -1))))
	}
	out, any := IvTop, false
	for _, p := range pieces {
		if met, ok := i.Meet(p); ok {
			if any {
				out = out.Join(met)
			} else {
				out, any = met, true
			}
		}
	}
	if !any {
		return i, false
	}
	return out, true
}

// String renders the interval as =value, [lo, hi], or T for top.
func (i Interval) String() string {
	switch {
	case i.IsTop():
		return "T"
	case i.IsExact():
		return fmt.Sprintf("=%#x", i.Lo())
	}
	return fmt.Sprintf("[%#x, %#x]", i.Lo(), i.Hi())
}

// Range returns the interval of values consistent with a known-bits value:
// the minimum sets only the proven-one bits, the maximum additionally sets
// every unknown bit.
func (k KB) Range() Interval { return IvRange(k.Ones, ^k.Zeros) }

// Refine folds an interval's common-prefix bits into a known-bits value:
// every member of [lo, hi] agrees with lo on the bits above the highest
// bit where lo and hi differ. This is how magnitude bounds become bit
// facts at classification time — an index proven to lie in [0, n] has all
// bits above n's leading bit proven zero, which rules out carry conflicts
// with a base register's high fields. A contradictory merge (possible only
// on dataflow-unreachable paths) leaves k unchanged.
func (k KB) Refine(iv Interval) KB {
	lo, hi := iv.Lo(), iv.Hi()
	diff := lo ^ hi
	mask := ^uint32(0)
	if diff != 0 {
		mask = ^(^uint32(0) >> bits.LeadingZeros32(diff))
	}
	out := KB{Zeros: k.Zeros | mask&^lo, Ones: k.Ones | mask&lo}
	if out.Zeros&out.Ones != 0 {
		return k
	}
	return out
}
