package staticfac

import (
	"math"

	"repro/internal/isa"
)

// Branch narrowing: a conditional branch proves a fact about the tested
// registers on each outgoing edge, and the interval domain can represent
// many of those facts (sign tests directly; equality tests by meeting;
// magnitude tests through the slt/sltu comparison that feeds them). This
// is what bounds loop induction variables — the assembler expands every
// blt/ble/bgt/bge pseudo-branch into an slt + beq/bne $zero pair, so a
// loop guard like `i < n` becomes a comparison result tested against
// zero, and the array walk below the guard sees an index interval capped
// at the loop limit.
//
// Narrowed bounds also propagate backward through affine def chains
// inside the block (addi results and register moves): a guard that tests
// i+k bounds the temporary holding i+k, and the back-propagation carries
// the bound onto i itself, which is the register the loop body actually
// indexes with.

// refineEdges computes the taken and fallthrough states of a block ending
// in a conditional branch, and per edge whether it is feasible at all: an
// empty meet means the abstract state proves the branch cannot go that
// way, so the dataflow never propagates the edge. Pruning is what breaks
// the bootstrap circularity of the memory domain — a loop guarded by
// `i < n` with n initially 0 in the data image must not execute its body
// in the first memory round, or the body's unbounded stores would poison
// the very cell that bounds i. The pruning leans on narrowing being
// exact; the difftest reachability clause ("every executed site is
// statically reachable") attacks it dynamically on every run.
func (az *analyzer) refineEdges(b *block, st State) (taken, fall State, takenOK, fallOK bool) {
	taken, fall = st, st
	var deadTaken, deadFall bool
	nrT := edgeNarrower{az: az, b: b, dead: &deadTaken}
	nrF := edgeNarrower{az: az, b: b, dead: &deadFall}
	in := az.p.Insts[b.last]
	switch in.Op {
	case isa.BGEZ:
		nrT.meetSigned(&taken, in.Rs, 0, math.MaxInt32)
		nrF.meetSigned(&fall, in.Rs, math.MinInt32, -1)
	case isa.BLTZ:
		nrT.meetSigned(&taken, in.Rs, math.MinInt32, -1)
		nrF.meetSigned(&fall, in.Rs, 0, math.MaxInt32)
	case isa.BGTZ:
		nrT.meetSigned(&taken, in.Rs, 1, math.MaxInt32)
		nrF.meetSigned(&fall, in.Rs, math.MinInt32, 0)
	case isa.BLEZ:
		nrT.meetSigned(&taken, in.Rs, math.MinInt32, 0)
		nrF.meetSigned(&fall, in.Rs, 1, math.MaxInt32)
	case isa.BEQ, isa.BNE:
		eq, ne := &taken, &fall
		nrEq, nrNe := nrT, nrF
		if in.Op == isa.BNE {
			eq, ne = &fall, &taken
			nrEq, nrNe = nrF, nrT
		}
		nrEq.narrowEqual(eq, in.Rs, in.Rt)
		nrNe.narrowNotEqual(ne, in.Rs, in.Rt)
		var cond isa.Reg
		switch {
		case in.Rt == isa.Zero && in.Rs != isa.Zero:
			cond = in.Rs
		case in.Rs == isa.Zero && in.Rt != isa.Zero:
			cond = in.Rt
		default:
			return taken, fall, !deadTaken, !deadFall
		}
		if cmp, ok := az.comparisonAt(b, cond); ok {
			// slt-family results are exactly 0 or 1: the comparison holds
			// on the cond != 0 edge and its negation holds on cond == 0.
			nrNe.narrowCompare(ne, cmp, true)
			nrEq.narrowCompare(eq, cmp, false)
		}
	}
	return taken, fall, !deadTaken, !deadFall
}

// edgeNarrower applies branch facts to a state, with access to the block
// so refined bounds can chase def chains backward. An empty meet sets
// dead: the edge the facts came from is infeasible.
type edgeNarrower struct {
	az   *analyzer
	b    *block
	dead *bool
}

// backpropDepth caps the affine def chains backprop follows; minic's
// compare-then-move chains are two or three deep.
const backpropDepth = 8

// meetIv narrows r to the meet of its interval with iv and back-propagates.
func (n edgeNarrower) meetIv(st *State, r isa.Reg, iv Interval, depth int) {
	if r == isa.Zero {
		return
	}
	m, ok := st.IV[r].Meet(iv)
	if !ok {
		*n.dead = true
		return
	}
	st.IV[r] = m
	n.backprop(st, r, m, depth)
}

// meetSigned narrows r to the members of its interval whose int32 reading
// lies in [a, b], then back-propagates the result.
func (n edgeNarrower) meetSigned(st *State, r isa.Reg, a, b int64) {
	if r == isa.Zero {
		return
	}
	m, ok := st.IV[r].MeetSignedOK(a, b)
	if !ok {
		*n.dead = true
		return
	}
	st.IV[r] = m
	n.backprop(st, r, m, 0)
}

// backprop pushes a just-established bound on r backward through r's
// in-block definition when it is an affine step (addi or a register
// move) whose source register survives unmodified to the branch: r's
// value at the branch is then exactly src+delta, so src lies in
// bound-delta. The chase repeats through the chain (compare temporaries,
// copy propagation) up to backpropDepth.
func (n edgeNarrower) backprop(st *State, r isa.Reg, bound Interval, depth int) {
	if depth >= backpropDepth {
		return
	}
	src, delta, ok := n.affineDef(r)
	if !ok {
		return
	}
	n.meetIv(st, src, bound.Sub(IvExact(delta)), depth+1)
}

// affineDef locates the last in-block definition of r before the branch
// and, when it is `addi r, src, imm` or a register move (`add r, src,
// $zero` / `add r, $zero, src`) with src distinct from r and unmodified
// through the rest of the block, returns the (src, delta) such that
// r = src + delta still holds at the branch.
func (n edgeNarrower) affineDef(r isa.Reg) (src isa.Reg, delta uint32, ok bool) {
	var defs []uint8
	definesReg := func(in isa.Inst, rr isa.Reg) bool {
		defs = in.Defs(defs[:0])
		for _, d := range defs {
			if d < isa.NumRegs && isa.Reg(d) == rr {
				return true
			}
		}
		return false
	}
	for i := n.b.last - 1; i >= n.b.first; i-- {
		in := n.az.p.Insts[i]
		if !definesReg(in, r) {
			continue
		}
		switch {
		case in.Op == isa.ADDI && in.Rd == r && in.Rs != isa.Zero:
			src, delta = in.Rs, uint32(in.Imm)
		case in.Op == isa.ADD && in.Rd == r && in.Rt == isa.Zero && in.Rs != isa.Zero:
			src, delta = in.Rs, 0
		case in.Op == isa.ADD && in.Rd == r && in.Rs == isa.Zero && in.Rt != isa.Zero:
			src, delta = in.Rt, 0
		default:
			return 0, 0, false
		}
		if src == r {
			// Self-increment: the source value is gone at the branch.
			return 0, 0, false
		}
		for j := i + 1; j < n.b.last; j++ {
			if definesReg(n.az.p.Insts[j], src) {
				return 0, 0, false
			}
		}
		return src, delta, true
	}
	return 0, 0, false
}

// narrowEqual records that two registers hold the same value: each meets
// the other's interval.
func (n edgeNarrower) narrowEqual(st *State, rs, rt isa.Reg) {
	m, ok := st.IV[rs].Meet(st.IV[rt])
	if !ok {
		*n.dead = true
		return
	}
	n.meetIv(st, rs, m, 0)
	n.meetIv(st, rt, m, 0)
}

// narrowNotEqual trims an exactly-known operand off the other operand's
// interval when it sits on a bound (the only inequality an interval can
// express).
func (n edgeNarrower) narrowNotEqual(st *State, rs, rt isa.Reg) {
	trim := func(r isa.Reg, v uint32) {
		if r == isa.Zero {
			return
		}
		iv := st.IV[r]
		switch {
		case iv.IsExact():
			if iv.Lo() == v {
				// Both sides exactly equal: the != edge is infeasible.
				*n.dead = true
			}
		case iv.Lo() == v:
			n.meetIv(st, r, IvRange(v+1, iv.Hi()), 0)
		case iv.Hi() == v:
			n.meetIv(st, r, IvRange(iv.Lo(), v-1), 0)
		}
	}
	if st.IV[rt].IsExact() {
		trim(rs, st.IV[rt].Lo())
	}
	if st.IV[rs].IsExact() {
		trim(rt, st.IV[rs].Lo())
	}
}

// comparison is an slt-family instruction whose 0/1 result feeds a branch:
// x < y, signed or unsigned, with y a register or an immediate.
type comparison struct {
	op     isa.Op // SLT, SLTU, SLTI, or SLTIU
	x      isa.Reg
	yReg   isa.Reg
	yImm   uint32
	yIsImm bool
}

// comparisonAt finds the in-block definition of the branch's tested
// register and returns the comparison it encodes, provided the compared
// operands survive unmodified to the branch (so their abstract values at
// the branch are the values the comparison saw).
func (az *analyzer) comparisonAt(b *block, cond isa.Reg) (comparison, bool) {
	var defs []uint8
	definesReg := func(in isa.Inst, r isa.Reg) bool {
		defs = in.Defs(defs[:0])
		for _, d := range defs {
			if d < isa.NumRegs && isa.Reg(d) == r {
				return true
			}
		}
		return false
	}
	for i := b.last - 1; i >= b.first; i-- {
		in := az.p.Insts[i]
		if !definesReg(in, cond) {
			continue
		}
		var cmp comparison
		switch in.Op {
		case isa.SLT, isa.SLTU:
			cmp = comparison{op: in.Op, x: in.Rs, yReg: in.Rt}
		case isa.SLTI, isa.SLTIU:
			cmp = comparison{op: in.Op, x: in.Rs, yImm: uint32(in.Imm), yIsImm: true}
		default:
			return comparison{}, false
		}
		if cmp.x == cond || (!cmp.yIsImm && cmp.yReg == cond) {
			return comparison{}, false
		}
		for j := i + 1; j < b.last; j++ {
			if definesReg(az.p.Insts[j], cmp.x) || (!cmp.yIsImm && definesReg(az.p.Insts[j], cmp.yReg)) {
				return comparison{}, false
			}
		}
		return cmp, true
	}
	return comparison{}, false
}

// narrowCompare applies the comparison (when holds) or its negation (when
// not) to the state's intervals for both operands, back-propagating each
// refined bound through its def chain.
func (n edgeNarrower) narrowCompare(st *State, c comparison, holds bool) {
	xIv := st.IV[c.x]
	yIv := IvExact(c.yImm)
	if !c.yIsImm {
		yIv = st.IV[c.yReg]
	}
	yReg := isa.Zero
	if !c.yIsImm {
		yReg = c.yReg
	}
	if c.op == isa.SLT || c.op == isa.SLTI {
		ax, _ := xIv.signedRange()
		_, by := yIv.signedRange()
		if holds { // x < y (signed)
			n.meetSigned(st, c.x, math.MinInt32, by-1)
			n.meetSigned(st, yReg, ax+1, math.MaxInt32)
		} else { // x >= y
			ay, _ := yIv.signedRange()
			_, bx := xIv.signedRange()
			n.meetSigned(st, c.x, ay, math.MaxInt32)
			n.meetSigned(st, yReg, math.MinInt32, bx)
		}
		return
	}
	// SLTU / SLTIU: unsigned, directly on the interval bounds.
	meetU := func(r isa.Reg, lo, hi uint64) {
		if lo > hi || lo > math.MaxUint32 {
			if r != isa.Zero {
				*n.dead = true
			}
			return
		}
		n.meetIv(st, r, IvRange(uint32(lo), uint32(min(hi, math.MaxUint32))), 0)
	}
	if holds { // x < y (unsigned)
		if yIv.Hi() > 0 {
			meetU(c.x, 0, uint64(yIv.Hi())-1)
		} else {
			// y is exactly 0: nothing is unsigned-less than it.
			*n.dead = true
		}
		meetU(yReg, uint64(xIv.Lo())+1, math.MaxUint32)
	} else { // x >= y
		meetU(c.x, uint64(yIv.Lo()), math.MaxUint32)
		meetU(yReg, 0, uint64(xIv.Hi()))
	}
}
