package staticfac

import (
	"sort"

	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/prog"
)

// AssumptionsNote documents the linkage facts the interprocedural analysis
// relies on. They hold for everything the MiniC toolchain emits and for
// ABI-clean hand assembly; internal/difftest cross-validates the resulting
// verdicts dynamically on every fuzzed program.
const AssumptionsNote = `the analysis assumes the toolchain's linkage conventions:
(1) callees preserve $sp across jal/jalr (caller-sp survives to the return point);
(2) indirect jumps target function symbols (jalr) or post-call return points (jr);
(3) direct jumps and branches may target anything, and are followed exactly.`

// Site is the analysis result for one static memory-access instruction.
type Site struct {
	PC   uint32
	Inst isa.Inst
	Func string
	// Store marks store sites (predictable stores matter only to machines
	// that speculate stores, but the verdict is a circuit property).
	Store bool
	Mode  isa.AddrMode
	// Base and Offset are the abstract operand values flowing into the
	// predictor at this site (the offset of an AMConst/AMPost site is exact
	// by construction).
	Base, Offset KB
	// CanFail is the union of failure signals some execution may raise;
	// MustFail reports that every execution raises at least one of them.
	CanFail  fac.Failure
	MustFail bool
	Verdict  Verdict
	// Reached is false when the dataflow never reached the site (dead code
	// or code reachable only outside the linkage assumptions); such sites
	// are classified from the flow-insensitive register invariant alone.
	Reached bool
}

// Analysis holds per-site verdicts for one program under one predictor
// geometry.
type Analysis struct {
	Geom  fac.Config
	Sites []Site // sorted by PC
	byPC  map[uint32]int
}

// SiteAt returns the site at pc, or nil if pc is not a memory instruction.
func (a *Analysis) SiteAt(pc uint32) *Site {
	if i, ok := a.byPC[pc]; ok {
		return &a.Sites[i]
	}
	return nil
}

// Summary is the per-program verdict tally.
type Summary struct {
	Sites, Loads, Stores int
	ByVerdict            [3]int // indexed by Verdict
}

// Classified returns the fraction of sites with a non-Unknown verdict.
func (s Summary) Classified() float64 {
	if s.Sites == 0 {
		return 0
	}
	return float64(s.Sites-s.ByVerdict[VerdictUnknown]) / float64(s.Sites)
}

// Summary tallies the analysis verdicts.
func (a *Analysis) Summary() Summary {
	var s Summary
	for i := range a.Sites {
		st := &a.Sites[i]
		s.Sites++
		if st.Store {
			s.Stores++
		} else {
			s.Loads++
		}
		s.ByVerdict[st.Verdict]++
	}
	return s
}

// Analyze runs the whole-program dataflow and classifies every memory
// access site of p under geometry g.
func Analyze(p *prog.Program, g fac.Config) *Analysis {
	az := newAnalyzer(p)
	siteStates := az.run()

	a := &Analysis{Geom: g, byPC: make(map[uint32]int)}
	for i, in := range p.Insts {
		if !in.Op.IsMem() {
			continue
		}
		pc := az.pcOf(i)
		st, reached := siteStates[i]
		if !reached {
			st = az.inv // sound at every program point
		}
		site := Site{
			PC:      pc,
			Inst:    in,
			Func:    p.FuncName(pc),
			Store:   in.Op.IsStore(),
			Mode:    in.Op.Mode(),
			Base:    st[in.BaseReg()],
			Reached: reached,
		}
		isReg := false
		switch site.Mode {
		case isa.AMConst:
			site.Offset = Exact(uint32(in.Imm))
		case isa.AMReg:
			site.Offset = st[in.IndexReg()]
			isReg = true
		case isa.AMPost:
			site.Offset = Exact(0)
		}
		site.CanFail, site.MustFail = Classify(g, site.Base, site.Offset, isReg)
		site.Verdict = verdictOf(site.CanFail, site.MustFail)
		a.byPC[pc] = len(a.Sites)
		a.Sites = append(a.Sites, site)
	}
	return a
}

// block is one basic block: the inclusive instruction-index range plus the
// control edges leaving it.
type block struct {
	first, last int
	succs       []int // direct edges (branch target, jump target, fallthrough)
	callFall    int   // block entered on return from a jal/jalr, -1 if none
	callTarget  uint32
	hasTarget   bool // callTarget valid (jal); jalr targets are indirect
	isCall      bool
	spEscapes   bool // jr to a non-$ra register: a computed tail call
}

type analyzer struct {
	p       *prog.Program
	inv     State // flow-insensitive register invariant, sound everywhere
	blocks  []block
	blockAt map[uint32]int
	entries []uint32 // candidate indirect-call targets: non-local text symbols + the entry point
}

func (az *analyzer) pcOf(i int) uint32 { return az.p.TextBase + uint32(i)*isa.InstBytes }

func newAnalyzer(p *prog.Program) *analyzer {
	az := &analyzer{p: p, blockAt: make(map[uint32]int)}
	az.inv = invariant(p)

	seen := map[uint32]bool{p.Entry: true}
	az.entries = append(az.entries, p.Entry)
	for _, s := range p.TextSyms() {
		if !seen[s.Addr] {
			seen[s.Addr] = true
			az.entries = append(az.entries, s.Addr)
		}
	}
	sort.Slice(az.entries, func(i, j int) bool { return az.entries[i] < az.entries[j] })

	n := len(p.Insts)
	if n == 0 {
		return az
	}
	leader := make([]bool, n)
	leader[0] = true
	idxOf := func(pc uint32) (int, bool) {
		if pc < p.TextBase || pc >= p.TextEnd() || pc&3 != 0 {
			return 0, false
		}
		return int((pc - p.TextBase) / isa.InstBytes), true
	}
	for _, e := range az.entries {
		if i, ok := idxOf(e); ok {
			leader[i] = true
		}
	}
	for i, in := range p.Insts {
		if !in.Op.IsControl() {
			continue
		}
		if i+1 < n {
			leader[i+1] = true
		}
		if t, ok := in.ControlTarget(az.pcOf(i)); ok {
			if j, ok2 := idxOf(t); ok2 {
				leader[j] = true
			}
		}
	}

	for i := 0; i < n; i++ {
		if !leader[i] {
			continue
		}
		last := i
		for last+1 < n && !leader[last+1] {
			last++
		}
		az.blockAt[az.pcOf(i)] = len(az.blocks)
		az.blocks = append(az.blocks, block{first: i, last: last, callFall: -1})
	}

	for bi := range az.blocks {
		b := &az.blocks[bi]
		in := p.Insts[b.last]
		next := -1
		if b.last+1 < n {
			next = az.blockAt[az.pcOf(b.last+1)]
		}
		target := -1
		if t, ok := in.ControlTarget(az.pcOf(b.last)); ok {
			if j, ok2 := idxOf(t); ok2 {
				target = az.blockAt[az.pcOf(j)]
			}
			if in.Op == isa.JAL {
				b.callTarget, b.hasTarget = t, true
			}
		}
		switch {
		case in.Op == isa.JAL:
			b.isCall = true
			b.callFall = next
		case in.Op == isa.JALR:
			b.isCall = true
			b.callFall = next
		case in.Op == isa.JR:
			if in.Rs != isa.RA {
				b.spEscapes = true
			}
		case in.Op == isa.J:
			if target >= 0 {
				b.succs = append(b.succs, target)
			}
		case in.Op.IsBranch():
			if target >= 0 {
				b.succs = append(b.succs, target)
			}
			if next >= 0 {
				b.succs = append(b.succs, next)
			}
		default:
			if next >= 0 {
				b.succs = append(b.succs, next)
			}
		}
	}
	return az
}

// invariant computes the flow-insensitive register invariant: the least
// state that contains the architectural startup values ($gp, $sp, zeroed
// registers; $ra holds the emulator's halt address, tracked as Unknown so
// the analysis does not depend on it) and is closed under every
// instruction's transfer function. It is sound at every reachable point.
func invariant(p *prog.Program) State {
	var inv State
	for r := range inv {
		inv[r] = Exact(0)
	}
	inv[isa.GP] = Exact(p.GP)
	inv[isa.SP] = Exact(p.SP)
	inv[isa.RA] = Unknown
	var defs []uint8
	for changed := true; changed; {
		changed = false
		for i, in := range p.Insts {
			tmp := inv
			Step(&tmp, in, p.TextBase+uint32(i)*isa.InstBytes)
			defs = in.Defs(defs[:0])
			for _, d := range defs {
				if d >= isa.NumRegs {
					continue // FP registers and the condition flag
				}
				j := inv[d].Join(tmp[d])
				if j != inv[d] {
					inv[d] = j
					changed = true
				}
			}
		}
	}
	return inv
}

// flowOut is the result of one whole-program dataflow pass under a fixed
// per-function entry-sp hypothesis.
type flowOut struct {
	sites     map[int]State // state before each reached memory instruction
	espNext   map[uint32]KB // sp observed at direct calls, per target
	espAll    KB            // sp observed at indirect calls / computed tail jumps
	espAllSet bool
}

// run iterates the per-function entry-sp map to a fixpoint, then performs a
// final recording pass. espMap[f] abstracts $sp on entry to function f over
// all calls the program can perform; keeping it per-function (rather than
// one global join) preserves exact stack pointers through non-recursive
// call chains, which is what proves constant-offset stack accesses.
func (az *analyzer) run() map[int]State {
	esp := map[uint32]KB{az.p.Entry: Exact(az.p.SP)}
	for iter := 0; ; iter++ {
		out := az.flow(esp, false)
		next := map[uint32]KB{az.p.Entry: Exact(az.p.SP)}
		joinInto := func(pc uint32, kb KB) {
			if _, ok := az.blockAt[pc]; !ok {
				return
			}
			if cur, ok := next[pc]; ok {
				next[pc] = cur.Join(kb)
			} else {
				next[pc] = kb
			}
		}
		for t, kb := range out.espNext {
			joinInto(t, kb)
		}
		if out.espAllSet {
			for _, e := range az.entries {
				joinInto(e, out.espAll)
			}
		}
		if espEqual(esp, next) {
			break
		}
		esp = next
		if iter >= 100 {
			// Safety valve: the chain is monotone and finite so this should
			// never trigger, but degrade soundly rather than loop.
			for k := range esp {
				esp[k] = Unknown
			}
			for _, e := range az.entries {
				esp[e] = Unknown
			}
			break
		}
	}
	return az.flow(esp, true).sites
}

func espEqual(a, b map[uint32]KB) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// entryState is the abstract state on entry to a function: the global
// invariant with $sp narrowed to the entry hypothesis.
func (az *analyzer) entryState(sp KB) State {
	st := az.inv
	st[isa.SP] = sp
	return st
}

// returnState is the abstract state at a post-call return point: callers
// may assume nothing about scratch registers (the invariant), and the ABI
// guarantees $sp survived the call.
func (az *analyzer) returnState(sp KB) State {
	st := az.inv
	st[isa.SP] = sp
	return st
}

// flow runs the block-level dataflow to a fixpoint under the entry-sp
// hypothesis, then sweeps the final states to collect call-site sp values
// and (when record is set) the state before every memory instruction.
func (az *analyzer) flow(esp map[uint32]KB, record bool) flowOut {
	out := flowOut{espNext: make(map[uint32]KB)}
	if record {
		out.sites = make(map[int]State)
	}
	nb := len(az.blocks)
	if nb == 0 {
		return out
	}
	in := make([]State, nb)
	have := make([]bool, nb)
	queued := make([]bool, nb)
	var queue []int
	push := func(b int) {
		if !queued[b] {
			queued[b] = true
			queue = append(queue, b)
		}
	}
	propagate := func(b int, st State) {
		if !have[b] {
			in[b], have[b] = st, true
			push(b)
			return
		}
		j := JoinState(in[b], st)
		if j != in[b] {
			in[b] = j
			push(b)
		}
	}

	// Inject entry states for every hypothesized callee, in address order
	// for determinism.
	entryPCs := make([]uint32, 0, len(esp))
	for pc := range esp {
		if _, ok := az.blockAt[pc]; ok {
			entryPCs = append(entryPCs, pc)
		}
	}
	sort.Slice(entryPCs, func(i, j int) bool { return entryPCs[i] < entryPCs[j] })
	for _, pc := range entryPCs {
		propagate(az.blockAt[pc], az.entryState(esp[pc]))
	}

	// step walks one block from its in-state, invoking visit before each
	// instruction, and returns the out-state.
	step := func(bi int, visit func(i int, st *State)) State {
		b := &az.blocks[bi]
		st := in[bi]
		for i := b.first; i <= b.last; i++ {
			if visit != nil {
				visit(i, &st)
			}
			Step(&st, az.p.Insts[i], az.pcOf(i))
		}
		return st
	}

	for len(queue) > 0 {
		bi := queue[0]
		queue = queue[1:]
		queued[bi] = false
		st := step(bi, nil)
		b := &az.blocks[bi]
		for _, s := range b.succs {
			propagate(s, st)
		}
		if b.isCall && b.callFall >= 0 {
			propagate(b.callFall, az.returnState(st[isa.SP]))
		}
	}

	// Final sweep over the converged states: record site states and the sp
	// values observed at call sites (the next entry-sp hypothesis).
	joinEsp := func(t uint32, kb KB) {
		if cur, ok := out.espNext[t]; ok {
			out.espNext[t] = cur.Join(kb)
		} else {
			out.espNext[t] = kb
		}
	}
	for bi := range az.blocks {
		if !have[bi] {
			continue
		}
		b := &az.blocks[bi]
		st := step(bi, func(i int, s *State) {
			if record && az.p.Insts[i].Op.IsMem() {
				out.sites[i] = *s
			}
		})
		switch {
		case b.isCall && b.hasTarget:
			joinEsp(b.callTarget, st[isa.SP])
		case b.isCall || b.spEscapes:
			if out.espAllSet {
				out.espAll = out.espAll.Join(st[isa.SP])
			} else {
				out.espAll, out.espAllSet = st[isa.SP], true
			}
		}
	}
	return out
}
