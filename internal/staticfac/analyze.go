package staticfac

import (
	"sort"

	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/prog"
)

// AssumptionsNote documents the linkage facts the interprocedural analysis
// relies on. They hold for everything the MiniC toolchain emits and for
// ABI-clean hand assembly; internal/difftest cross-validates the resulting
// verdicts dynamically on every fuzzed program.
const AssumptionsNote = `the analysis assumes the toolchain's linkage conventions:
(1) callees preserve $sp across jal/jalr (caller-sp survives to the return point);
(2) callees preserve $s0-$s7 (the compiler saves and restores every s-register
    it allocates, and the runtime never touches them), so loop variables held
    in s-registers keep their abstract values across calls in the loop body;
(3) indirect jumps target function symbols (jalr) or post-call return points (jr);
(4) direct jumps and branches may target anything, and are followed exactly;
(5) the data/heap and stack regions stay disjoint: the program break only grows
    upward from HeapBase (sbrk never wraps) and stays below the live stack, and
    $sp stays within the stack region;
(6) stack pointers are never forged: code reaches a stack slot only through that
    frame's own $sp, or upward from an address it was handed (taking &x exposes
    x and everything above it in the frame, never below — the C object model).`

// Site is the analysis result for one static memory-access instruction.
type Site struct {
	PC   uint32
	Inst isa.Inst
	Func string
	// Store marks store sites (predictable stores matter only to machines
	// that speculate stores, but the verdict is a circuit property).
	Store bool
	Mode  isa.AddrMode
	// Base and Offset are the abstract operand values flowing into the
	// predictor at this site (the offset of an AMConst/AMPost site is exact
	// by construction).
	Base, Offset KB
	// CanFail is the union of failure signals some execution may raise;
	// MustFail reports that every execution raises at least one of them.
	CanFail  fac.Failure
	MustFail bool
	Verdict  Verdict
	// Reached is false when the dataflow never reached the site (dead code
	// or code reachable only outside the linkage assumptions); such sites
	// are classified from the flow-insensitive register invariant alone.
	Reached bool
	// IvRefined reports that the interval domain proved operand bits the
	// known-bits domain alone could not (KB.Refine tightened Base or
	// Offset). The verdict may still be unknown — on the stock layout many
	// bounded strided walks genuinely fail on some iterations and not
	// others — but the tightened CanFail mask is visible in -sites output.
	IvRefined bool
	// CellKind/CellAddr/Val are the memory domain's claim about the site:
	// when CellKind is not CellNone the access provably targets the named
	// tracked cell and every value it transfers (loaded for loads, stored
	// for stores) lies inside Val — a claim the difftest value-soundness
	// oracle checks against the dynamically observed values.
	CellKind CellKind
	CellAddr uint32
	Val      MemVal
}

// CellKind classifies the tracked memory cell behind a site's value claim.
type CellKind uint8

const (
	CellNone CellKind = iota
	CellGlobal
	CellStack
)

// Exported cell-kind names; reports must use these, not literals.
const (
	CellKindGlobalName = "global"
	CellKindStackName  = "stack"
)

func (k CellKind) String() string {
	switch k {
	case CellGlobal:
		return CellKindGlobalName
	case CellStack:
		return CellKindStackName
	default:
		return ""
	}
}

// Analysis holds per-site verdicts for one program under one predictor
// geometry.
type Analysis struct {
	Geom  fac.Config
	Sites []Site // sorted by PC
	byPC  map[uint32]int
	// az is retained for -explain blame chains (see explain.go); the
	// pre-state recording it needs is rebuilt lazily on first use.
	az        *analyzer
	preStates map[int]State
}

// SiteAt returns the site at pc, or nil if pc is not a memory instruction.
func (a *Analysis) SiteAt(pc uint32) *Site {
	if i, ok := a.byPC[pc]; ok {
		return &a.Sites[i]
	}
	return nil
}

// Summary is the per-program verdict tally.
type Summary struct {
	Sites, Loads, Stores int
	ByVerdict            [3]int // indexed by Verdict
	// IvRefined counts sites whose operand facts the interval domain
	// tightened beyond plain known-bits (see Site.IvRefined).
	IvRefined int
}

// Classified returns the fraction of sites with a non-Unknown verdict.
func (s Summary) Classified() float64 {
	if s.Sites == 0 {
		return 0
	}
	return float64(s.Sites-s.ByVerdict[VerdictUnknown]) / float64(s.Sites)
}

// Summary tallies the analysis verdicts.
func (a *Analysis) Summary() Summary {
	var s Summary
	for i := range a.Sites {
		st := &a.Sites[i]
		s.Sites++
		if st.Store {
			s.Stores++
		} else {
			s.Loads++
		}
		s.ByVerdict[st.Verdict]++
		if st.IvRefined {
			s.IvRefined++
		}
	}
	return s
}

// Analyze runs the whole-program dataflow and classifies every memory
// access site of p under geometry g.
func Analyze(p *prog.Program, g fac.Config) *Analysis {
	az := newAnalyzer(p)
	siteStates := az.converge()

	a := &Analysis{Geom: g, byPC: make(map[uint32]int), az: az}
	for i, in := range p.Insts {
		if !in.Op.IsMem() {
			continue
		}
		pc := az.pcOf(i)
		st, reached := siteStates[i]
		if !reached {
			st = az.inv // sound at every program point
		}
		// The interval domain folds into known bits here: a register whose
		// range a loop guard bounded contributes its common-prefix bits
		// (KB.Refine), which is what lets strided array walks classify.
		site := Site{
			PC:      pc,
			Inst:    in,
			Func:    p.FuncName(pc),
			Store:   in.Op.IsStore(),
			Mode:    in.Op.Mode(),
			Base:    st.R[in.BaseReg()].Refine(st.IV[in.BaseReg()]),
			Reached: reached,
		}
		site.IvRefined = site.Base != st.R[in.BaseReg()]
		isReg := false
		switch site.Mode {
		case isa.AMConst:
			site.Offset = Exact(uint32(in.Imm))
		case isa.AMReg:
			site.Offset = st.R[in.IndexReg()].Refine(st.IV[in.IndexReg()])
			site.IvRefined = site.IvRefined || site.Offset != st.R[in.IndexReg()]
			isReg = true
		case isa.AMPost:
			site.Offset = Exact(0)
		}
		site.CanFail, site.MustFail = Classify(g, site.Base, site.Offset, isReg)
		site.Verdict = verdictOf(site.CanFail, site.MustFail)
		if reached {
			// The memory domain's value claim is only made for reached
			// sites: an unreached site's state is the invariant, whose
			// address may be exact while the flow never proved anything
			// about the cell there.
			site.CellKind, site.CellAddr, site.Val = az.siteValue(&st, in)
		}
		a.byPC[pc] = len(a.Sites)
		a.Sites = append(a.Sites, site)
	}
	return a
}

// converge runs the combined register × memory fixpoint: a full dataflow
// under the current memory environment, then commit the global-store
// effects and escapes that dataflow produced, until neither changes.
// Iteration starts from the under-approximate bottom (no effects, no
// escapes) and every commit is a monotone join, so the limit is a sound
// over-approximation of every execution (Kleene iteration); past
// maxMemRounds the environment degrades to top and one final pass runs
// under that trivially stable hypothesis.
func (az *analyzer) converge() map[int]State {
	for {
		az.env.escChanged = false
		az.inv = az.invariant()
		siteStates := az.run()
		effChanged := az.env.commitEffects(az.collectEffects(siteStates))
		if !effChanged && !az.env.escChanged {
			return siteStates
		}
		if az.env.round > maxMemRounds {
			az.env.degrade()
			az.inv = az.invariant()
			return az.run()
		}
	}
}

// collectEffects derives the global-store effect set from the recorded
// pre-states of the reached store sites. Unreached stores are excluded —
// see the soundness discussion in memdom.go.
//
// A store whose address is provably confined to the stack region — its
// base is $sp itself (AssumptionsNote 5), its address is exactly a stack
// address, or its value range starts in the stack region — is marked
// StackOnly so it cannot poison global cells: recursive frames spill
// through an inexact $sp whose widened range would otherwise cover the
// whole address space.
func (az *analyzer) collectEffects(sites map[int]State) map[uint32]storeEffect {
	out := make(map[uint32]storeEffect)
	for i, st := range sites {
		in := az.p.Insts[i]
		if !in.Op.IsStore() {
			continue
		}
		addrK, addrIV := effAddrOf(&st, in)
		e := storeEffect{
			PC: az.pcOf(i), Size: uint32(in.Op.MemSize()),
			AddrK: addrK, AddrIV: addrIV,
			ValK: Unknown, ValIV: IvTop,
		}
		if !in.Op.FPSrc() {
			d := in.StoreDataReg()
			e.ValK, e.ValIV = st.R[d], st.IV[d]
		}
		e.StackOnly = in.BaseReg() == isa.SP ||
			(addrK.IsExact() && addrK.Ones >= az.env.stackLo) ||
			addrIV.Lo() >= az.env.stackLo
		out[e.PC] = e
	}
	return out
}

// siteValue resolves the memory domain's value claim for a reached site,
// if the access provably targets a tracked cell with a non-trivial fact.
func (az *analyzer) siteValue(st *State, in isa.Inst) (CellKind, uint32, MemVal) {
	if in.Op.FPDest() || in.Op.FPSrc() {
		return CellNone, 0, MemVal{}
	}
	addrK, _ := effAddrOf(st, in)
	if !addrK.IsExact() {
		return CellNone, 0, MemVal{}
	}
	addr := addrK.Ones
	size := uint32(in.Op.MemSize())
	switch {
	case az.env.globalCellAddr(addr, size):
		f := az.env.cell(addr)
		if f.poisoned || f.val.IsTop() {
			return CellNone, 0, MemVal{}
		}
		return CellGlobal, addr, f.val
	case az.env.stackSlotAddr(addr, size):
		if in.Op.IsStore() {
			d := in.StoreDataReg()
			v := MemVal{K: st.R[d], IV: st.IV[d].ReduceKB(st.R[d])}
			if v.IsTop() {
				return CellNone, 0, MemVal{}
			}
			return CellStack, addr, v
		}
		if s, ok := st.slot(addr); ok {
			v := MemVal{K: s.K, IV: s.IV}
			if !v.IsTop() {
				return CellStack, addr, v
			}
		}
	}
	return CellNone, 0, MemVal{}
}

// block is one basic block: the inclusive instruction-index range plus the
// control edges leaving it.
type block struct {
	first, last int
	succs       []int // unconditional edges (jump target, fallthrough)
	// Conditional-branch edges are kept apart from succs so the dataflow
	// can narrow the tested registers per edge (see refineEdges).
	brTaken, brFall int
	callFall        int // block entered on return from a jal/jalr, -1 if none
	callTarget      uint32
	hasTarget       bool // callTarget valid (jal); jalr targets are indirect
	isCall          bool
	spEscapes       bool // jr to a non-$ra register: a computed tail call
}

type analyzer struct {
	p       *prog.Program
	inv     State    // flow-insensitive register invariant, sound everywhere
	ts      []uint32 // interval widening thresholds: the program's comparison constants
	env     *memEnv  // the memory domain: global cells, escapes, stack layout
	blocks  []block
	blockAt map[uint32]int
	entries []uint32 // candidate indirect-call targets: non-local text symbols + the entry point
	// espFinal is the converged entry-facts hypothesis, kept so explain.go
	// can replay the final dataflow; recordAll widens flow's recording
	// from memory sites to every instruction for that replay.
	espFinal  map[uint32]entryFacts
	recordAll bool
}

func (az *analyzer) pcOf(i int) uint32 { return az.p.TextBase + uint32(i)*isa.InstBytes }

func newAnalyzer(p *prog.Program) *analyzer {
	az := &analyzer{p: p, blockAt: make(map[uint32]int)}
	az.ts = collectThresholds(p)
	az.env = newMemEnv(p, az.ts)
	az.inv = az.invariant()

	seen := map[uint32]bool{p.Entry: true}
	az.entries = append(az.entries, p.Entry)
	for _, s := range p.TextSyms() {
		if !seen[s.Addr] {
			seen[s.Addr] = true
			az.entries = append(az.entries, s.Addr)
		}
	}
	sort.Slice(az.entries, func(i, j int) bool { return az.entries[i] < az.entries[j] })

	n := len(p.Insts)
	if n == 0 {
		return az
	}
	leader := make([]bool, n)
	leader[0] = true
	idxOf := func(pc uint32) (int, bool) {
		if pc < p.TextBase || pc >= p.TextEnd() || pc&3 != 0 {
			return 0, false
		}
		return int((pc - p.TextBase) / isa.InstBytes), true
	}
	for _, e := range az.entries {
		if i, ok := idxOf(e); ok {
			leader[i] = true
		}
	}
	for i, in := range p.Insts {
		if !in.Op.IsControl() {
			continue
		}
		if i+1 < n {
			leader[i+1] = true
		}
		if t, ok := in.ControlTarget(az.pcOf(i)); ok {
			if j, ok2 := idxOf(t); ok2 {
				leader[j] = true
			}
		}
	}

	for i := 0; i < n; i++ {
		if !leader[i] {
			continue
		}
		last := i
		for last+1 < n && !leader[last+1] {
			last++
		}
		az.blockAt[az.pcOf(i)] = len(az.blocks)
		az.blocks = append(az.blocks, block{first: i, last: last, callFall: -1, brTaken: -1, brFall: -1})
	}

	for bi := range az.blocks {
		b := &az.blocks[bi]
		in := p.Insts[b.last]
		next := -1
		if b.last+1 < n {
			next = az.blockAt[az.pcOf(b.last+1)]
		}
		target := -1
		if t, ok := in.ControlTarget(az.pcOf(b.last)); ok {
			if j, ok2 := idxOf(t); ok2 {
				target = az.blockAt[az.pcOf(j)]
			}
			if in.Op == isa.JAL {
				b.callTarget, b.hasTarget = t, true
			}
		}
		switch {
		case in.Op == isa.JAL:
			b.isCall = true
			b.callFall = next
		case in.Op == isa.JALR:
			b.isCall = true
			b.callFall = next
		case in.Op == isa.JR:
			if in.Rs != isa.RA {
				b.spEscapes = true
			}
		case in.Op == isa.J:
			if target >= 0 {
				b.succs = append(b.succs, target)
			}
		case in.Op.IsBranch():
			b.brTaken, b.brFall = target, next
		default:
			if next >= 0 {
				b.succs = append(b.succs, next)
			}
		}
	}
	return az
}

// invariant computes the flow-insensitive register invariant: the least
// state that contains the architectural startup values ($gp, $sp, zeroed
// registers; $ra holds the emulator's halt address, tracked as Unknown so
// the analysis does not depend on it) and is closed under every
// instruction's transfer function. It is sound at every reachable point.
// Loads resolve against the memory environment's cells (escape tracking
// is suppressed — the invariant also walks dead code, which cannot leak
// anything); only the register halves of the stepped states feed back,
// so the invariant itself carries no slots and no taint.
func (az *analyzer) invariant() State {
	p, ts := az.p, az.ts
	saved := az.env.trackEscapes
	az.env.trackEscapes = false
	defer func() { az.env.trackEscapes = saved }()

	var inv State
	for r := range inv.R {
		inv.SetReg(isa.Reg(r), Exact(0))
	}
	inv.SetReg(isa.GP, Exact(p.GP))
	inv.SetReg(isa.SP, Exact(p.SP))
	inv.SetReg(isa.RA, Unknown)
	var defs []uint8
	for round := 0; ; round++ {
		changed := false
		for i, in := range p.Insts {
			tmp := inv
			step(&tmp, in, p.TextBase+uint32(i)*isa.InstBytes, az.env)
			defs = in.Defs(defs[:0])
			for _, d := range defs {
				if d >= isa.NumRegs {
					continue // FP registers and the condition flag
				}
				jk := inv.R[d].Join(tmp.R[d])
				ji := inv.IV[d].Join(tmp.IV[d])
				if round >= ivWidenRounds {
					// The KB half converges on its own (joins only clear
					// bits); the interval half needs widening to terminate.
					ji = inv.IV[d].WidenTo(ji, ts)
				}
				if jk != inv.R[d] || ji != inv.IV[d] {
					inv.R[d], inv.IV[d] = jk, ji
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return inv
}

// ivWidenRounds bounds how many ascending interval joins the fixpoint
// loops tolerate before widening moved bounds to their extremes. Small
// loop bodies converge well under the threshold; the widened precision is
// recovered below loop guards by branch narrowing.
const ivWidenRounds = 16

// collectThresholds gathers the positive constants the program compares
// against — slti/sltiu immediates and constants materialized by
// addi rd, $zero, imm (the assembler's li, which feeds register-register
// slt guards) — as interval widening thresholds, each with its
// predecessor so both the inclusive and exclusive forms of a bound have a
// landing spot. Snapping a widened bound to one of these is what lets a
// loop-counter fixpoint settle at the guard's limit (see WidenTo).
func collectThresholds(p *prog.Program) []uint32 {
	seen := make(map[uint32]bool)
	add := func(imm int32) {
		// Only positive int32 constants: the sign boundary and zero are
		// WidenTo's built-in fallbacks.
		if v := uint32(imm); imm > 0 && v < 1<<31 {
			seen[v] = true
			seen[v-1] = true
		}
	}
	for _, in := range p.Insts {
		switch in.Op {
		case isa.SLTI, isa.SLTIU:
			add(in.Imm)
		case isa.ADDI:
			if in.Rs == isa.Zero {
				add(in.Imm)
			}
		}
	}
	ts := make([]uint32, 0, len(seen))
	//lint:sorted
	for v := range seen {
		ts = append(ts, v)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// entryFacts abstracts the machine state a function can be entered with,
// joined over every call the program performs: the stack pointer and the
// four argument registers, each in both domains. Carrying arguments
// through the interprocedural fixpoint is what classifies argument-indexed
// array walks (a recursive place(k) whose k every call site bounds) and
// library routines called with exact global pointers.
type entryFacts struct {
	sp  KB
	a   [4]KB // $a0-$a3
	aIV [4]Interval
}

func (f entryFacts) join(o entryFacts) entryFacts {
	f.sp = f.sp.Join(o.sp)
	for i := range f.a {
		f.a[i] = f.a[i].Join(o.a[i])
		f.aIV[i] = f.aIV[i].Join(o.aIV[i])
	}
	return f
}

// widen accelerates the entry-facts iteration the same way WidenState
// accelerates block joins: only the interval halves need it.
func (f entryFacts) widen(next entryFacts, ts []uint32) entryFacts {
	for i := range next.aIV {
		next.aIV[i] = f.aIV[i].WidenTo(next.aIV[i], ts)
	}
	return next
}

// factsAt reads the entry facts a call site transfers to its callee.
func factsAt(st State) entryFacts {
	var f entryFacts
	f.sp = st.R[isa.SP]
	for i := range f.a {
		r := isa.A0 + isa.Reg(i)
		f.a[i] = st.R[r]
		f.aIV[i] = st.IV[r]
	}
	return f
}

// startFacts is the architectural startup state: every register zero
// except $sp (the program's initial stack pointer).
func startFacts(p *prog.Program) entryFacts {
	var f entryFacts
	f.sp = Exact(p.SP)
	for i := range f.a {
		f.a[i] = Exact(0)
		f.aIV[i] = IvExact(0)
	}
	return f
}

// unknownFacts is the degenerate hypothesis: nothing known at entry.
func unknownFacts() entryFacts {
	var f entryFacts
	f.sp = Unknown
	for i := range f.a {
		f.a[i] = Unknown
		f.aIV[i] = IvTop
	}
	return f
}

// flowOut is the result of one whole-program dataflow pass under a fixed
// per-function entry hypothesis.
type flowOut struct {
	sites     map[int]State         // state before each reached memory instruction
	espNext   map[uint32]entryFacts // entry facts observed at direct calls, per target
	espAll    entryFacts            // entry facts at indirect calls / computed tail jumps
	espAllSet bool
}

// run iterates the per-function entry-facts map to a fixpoint, then
// performs a final recording pass. espMap[f] abstracts $sp and $a0-$a3 on
// entry to function f over all calls the program can perform; keeping it
// per-function (rather than one global join) preserves exact stack
// pointers through non-recursive call chains, which is what proves
// constant-offset stack accesses.
func (az *analyzer) run() map[int]State {
	az.env.trackEscapes = true
	esp := map[uint32]entryFacts{az.p.Entry: startFacts(az.p)}
	for iter := 0; ; iter++ {
		out := az.flow(esp, false)
		next := map[uint32]entryFacts{az.p.Entry: startFacts(az.p)}
		joinInto := func(pc uint32, f entryFacts) {
			if _, ok := az.blockAt[pc]; !ok {
				return
			}
			if cur, ok := next[pc]; ok {
				next[pc] = cur.join(f)
			} else {
				next[pc] = f
			}
		}
		for t, f := range out.espNext {
			joinInto(t, f)
		}
		if out.espAllSet {
			for _, e := range az.entries {
				joinInto(e, out.espAll)
			}
		}
		if iter >= ivWidenRounds {
			// Recursive argument chains (place(k+1)) ascend in the interval
			// half; widen them against the previous hypothesis.
			for pc, f := range next {
				if cur, ok := esp[pc]; ok {
					next[pc] = cur.widen(f, az.ts)
				}
			}
		}
		if espEqual(esp, next) {
			break
		}
		esp = next
		if iter >= 100 {
			// Safety valve: the chain is monotone and finite so this should
			// never trigger, but degrade soundly rather than loop.
			for k := range esp {
				esp[k] = unknownFacts()
			}
			for _, e := range az.entries {
				esp[e] = unknownFacts()
			}
			break
		}
	}
	az.espFinal = esp
	return az.flow(esp, true).sites
}

func espEqual(a, b map[uint32]entryFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// entryState is the abstract state on entry to a function: the global
// invariant with $sp and the argument registers narrowed to the entry
// hypothesis.
func (az *analyzer) entryState(f entryFacts) State {
	st := az.inv
	st.SetReg(isa.SP, f.sp)
	if !f.sp.IsExact() {
		// A degraded (recursive) entry $sp is an inexact stack-derived
		// pointer: taint it so copies that leak are caught. Inexact
		// stackish argument registers need no taint here — the call that
		// passed them already escalated to escape-all at the call site.
		st.Deriv |= 1 << uint(isa.SP)
	}
	for i := range f.a {
		r := isa.A0 + isa.Reg(i)
		st.R[r] = f.a[i]
		st.IV[r] = f.aIV[i].ReduceKB(f.a[i])
	}
	return st
}

// returnState is the abstract state at a post-call return point: callers
// may assume nothing about scratch registers (the invariant), and the ABI
// guarantees $sp and the callee-saved $s0-$s7 survived the call — every
// callee restores them to their at-call values, so the caller's abstract
// values flow through (AssumptionsNote 1 and 2; the difftest static
// oracle cross-validates the resulting verdicts dynamically).
func (az *analyzer) returnState(caller State) State {
	st := az.inv
	st.R[isa.SP], st.IV[isa.SP] = caller.R[isa.SP], caller.IV[isa.SP]
	st.Deriv = caller.Deriv & (1 << uint(isa.SP))
	for r := isa.S0; r <= isa.S7; r++ {
		st.R[r], st.IV[r] = caller.R[r], caller.IV[r]
		st.Deriv |= caller.Deriv & (1 << uint(r))
	}
	// Call-clobber rule for stack slots: the callee's frame lives strictly
	// below the caller's $sp, so with an exact caller $sp every slot at or
	// above it survives the call — unless its address escaped, in which
	// case the callee may have written it through a pointer.
	if spk := caller.R[isa.SP]; spk.IsExact() {
		sp := spk.Ones
		for i := 0; i < int(caller.NSlot); i++ {
			s := caller.Slots[i]
			if s.Addr >= sp && !az.env.esc.covers(s.Addr) {
				st.Slots[st.NSlot] = s
				st.NSlot++
			}
		}
	}
	return st
}

// flow runs the block-level dataflow to a fixpoint under the entry
// hypothesis, then sweeps the final states to collect call-site entry
// facts and (when record is set) the state before every memory
// instruction.
func (az *analyzer) flow(esp map[uint32]entryFacts, record bool) flowOut {
	out := flowOut{espNext: make(map[uint32]entryFacts)}
	if record {
		out.sites = make(map[int]State)
	}
	nb := len(az.blocks)
	if nb == 0 {
		return out
	}
	in := make([]State, nb)
	have := make([]bool, nb)
	queued := make([]bool, nb)
	joins := make([]int, nb)
	var queue []int
	push := func(b int) {
		if !queued[b] {
			queued[b] = true
			queue = append(queue, b)
		}
	}
	propagate := func(b int, st State) {
		if !have[b] {
			in[b], have[b] = st, true
			push(b)
			return
		}
		j := JoinState(in[b], st)
		if joins[b] >= ivWidenRounds {
			j = WidenState(in[b], j, az.ts)
		}
		if j != in[b] {
			joins[b]++
			in[b] = j
			push(b)
		}
	}

	// Inject entry states for every hypothesized callee, in address order
	// for determinism.
	entryPCs := make([]uint32, 0, len(esp))
	//lint:sorted
	for pc := range esp {
		if _, ok := az.blockAt[pc]; ok {
			entryPCs = append(entryPCs, pc)
		}
	}
	sort.Slice(entryPCs, func(i, j int) bool { return entryPCs[i] < entryPCs[j] })
	for _, pc := range entryPCs {
		propagate(az.blockAt[pc], az.entryState(esp[pc]))
	}

	// step walks one block from its in-state, invoking visit before each
	// instruction, and returns the out-state.
	stepBlock := func(bi int, visit func(i int, st *State)) State {
		b := &az.blocks[bi]
		st := in[bi]
		for i := b.first; i <= b.last; i++ {
			if visit != nil {
				visit(i, &st)
			}
			step(&st, az.p.Insts[i], az.pcOf(i), az.env)
		}
		return st
	}

	for len(queue) > 0 {
		bi := queue[0]
		queue = queue[1:]
		queued[bi] = false
		st := stepBlock(bi, nil)
		b := &az.blocks[bi]
		if b.brTaken >= 0 || b.brFall >= 0 {
			taken, fall, takenOK, fallOK := az.refineEdges(b, st)
			if b.brTaken >= 0 && takenOK {
				propagate(b.brTaken, taken)
			}
			if b.brFall >= 0 && fallOK {
				propagate(b.brFall, fall)
			}
		}
		for _, s := range b.succs {
			propagate(s, st)
		}
		if b.isCall && b.callFall >= 0 {
			propagate(b.callFall, az.returnState(st))
		}
	}

	// Final sweep over the converged states: record site states and the
	// entry facts observed at call sites (the next entry hypothesis).
	joinEsp := func(t uint32, f entryFacts) {
		if cur, ok := out.espNext[t]; ok {
			out.espNext[t] = cur.join(f)
		} else {
			out.espNext[t] = f
		}
	}
	for bi := range az.blocks {
		if !have[bi] {
			continue
		}
		b := &az.blocks[bi]
		st := stepBlock(bi, func(i int, s *State) {
			if record && (az.recordAll || az.p.Insts[i].Op.IsMem()) {
				out.sites[i] = *s
			}
		})
		switch {
		case b.isCall && b.hasTarget:
			joinEsp(b.callTarget, factsAt(st))
		case b.isCall || b.spEscapes:
			if out.espAllSet {
				out.espAll = out.espAll.join(factsAt(st))
			} else {
				out.espAll, out.espAllSet = factsAt(st), true
			}
		}
	}
	return out
}
