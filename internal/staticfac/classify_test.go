package staticfac

import (
	"math/rand"
	"testing"

	"repro/internal/fac"
)

// TestClassifySoundness is the randomized cross-check between the abstract
// classifier and the concrete predictor: for random abstract operand pairs,
// every concrete execution consistent with them must agree with the verdict.
//
//   - each concrete failure signal must appear in CanFail,
//   - MustFail means every concrete pair fails,
//   - CanFail == 0 (proven predictable) means no concrete pair fails.
func TestClassifySoundness(t *testing.T) {
	geoms := []fac.Config{
		{BlockBits: 5, SetBits: 10},
		{BlockBits: 4, SetBits: 10},
		{BlockBits: 5, SetBits: 10, TagAdder: true},
		{BlockBits: 5, SetBits: 14},
	}
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 4000; iter++ {
		g := geoms[iter%len(geoms)]
		base := randKB(rng, 5)
		var ofs KB
		isReg := iter%2 == 1
		if isReg {
			ofs = randKB(rng, 5)
		} else {
			// Constant offsets are always exact in real programs: the
			// classifier's NegConst math assumes a concrete immediate.
			ofs = Exact(uint32(int32(int16(rng.Uint32()))))
		}
		can, must := Classify(g, base, ofs, isReg)
		verdict := verdictOf(can, must)

		anyFail, allFail := false, true
		for _, b := range enumerate(t, base) {
			for _, o := range enumerate(t, ofs) {
				res := g.Predict(b, o, isReg)
				if res.OK {
					allFail = false
					continue
				}
				anyFail = true
				if res.Failure&^can != 0 {
					t.Fatalf("geom %+v base=%v ofs=%v isReg=%v: concrete (%#x,%#x) fails with %v not in CanFail %v",
						g, base, ofs, isReg, b, o, res.Failure, can)
				}
			}
		}
		if must && !allFail {
			t.Fatalf("geom %+v base=%v ofs=%v isReg=%v: MustFail but some concrete pair verifies",
				g, base, ofs, isReg)
		}
		if verdict == VerdictPredictable && anyFail {
			t.Fatalf("geom %+v base=%v ofs=%v isReg=%v: proven_predictable but a concrete pair fails",
				g, base, ofs, isReg)
		}
	}
}

// TestClassifyKnownCases pins the paper's four failure modes on hand-built
// operands with geometry BlockBits=5, SetBits=10 (1KB direct-mapped, 32B
// blocks): the cases docs/ANALYSIS.md walks through.
func TestClassifyKnownCases(t *testing.T) {
	g := fac.Config{BlockBits: 5, SetBits: 10}
	cases := []struct {
		name    string
		base    KB
		ofs     KB
		isReg   bool
		verdict Verdict
		can     fac.Failure
	}{
		// 32-aligned base, small positive constant: low sum cannot carry and
		// no index/tag bits collide.
		{"aligned-small", KB{Zeros: 0x1F}, Exact(8), false, VerdictPredictable, 0},
		// Base ends in 28 (mod 32), offset 8: low sum is 36 on every run.
		{"certain-overflow", KB{Zeros: ^uint32(0x1C), Ones: 0x1C}, Exact(8), false, VerdictFailing, fac.FailOverflow},
		// Base bit 5 set with offset 32: carry-free OR differs from add in
		// the index field on every run.
		{"certain-gencarry", KB{Zeros: ^uint32(0x20), Ones: 0x20}, Exact(32), false, VerdictFailing, fac.FailGenCarry},
		// Large negative constant (beyond one block below): rejected outright.
		{"large-neg-const", Exact(0x1000), Exact(^uint32(63)), false, VerdictFailing, fac.FailLargeNegConst | fac.FailOverflow},
		// Register offset with the sign bit proven set: negative index reg.
		{"neg-index-reg", Exact(0x1000), KB{Zeros: ^uint32(0x80000000), Ones: 0x80000000}, true, VerdictFailing, fac.FailNegIndexReg},
		// Unknown base, exact offset: can fail, cannot prove it always does.
		{"unknown-base", Unknown, Exact(8), false, VerdictUnknown, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			can, must := Classify(g, tc.base, tc.ofs, tc.isReg)
			v := verdictOf(can, must)
			if v != tc.verdict {
				t.Fatalf("verdict %v (can=%v must=%v), want %v", v, can, must, tc.verdict)
			}
			if tc.can != 0 && can&tc.can == 0 {
				t.Fatalf("CanFail %v missing expected signal %v", can, tc.can)
			}
		})
	}
}

// TestClassifyTagAdder checks that the optional tag-field adder removes
// tag-carry failures but not index-carry failures.
func TestClassifyTagAdder(t *testing.T) {
	base := KB{Zeros: ^uint32(0x400), Ones: 0x400} // bit 10 set: tag field for SetBits=10
	ofs := Exact(uint32(0x400))
	plain := fac.Config{BlockBits: 5, SetBits: 10}
	adder := fac.Config{BlockBits: 5, SetBits: 10, TagAdder: true}

	can, must := Classify(plain, base, ofs, false)
	if v := verdictOf(can, must); v != VerdictFailing {
		t.Fatalf("plain geometry: verdict %v, want proven_failing", v)
	}
	can, must = Classify(adder, base, ofs, false)
	if v := verdictOf(can, must); v != VerdictPredictable {
		t.Fatalf("tag-adder geometry: verdict %v (can=%v), want proven_predictable", v, can)
	}
	_ = must
}
