package staticfac

import "repro/internal/fac"

// Classify bounds the behaviour of fac.Config.Predict over every pair of
// concrete operand values consistent with the abstract base and offset.
//
// can is the union of failure signals some consistent execution may raise
// (can == 0 proves the site always predicts). must reports that every
// consistent execution raises at least one signal (the site replays on
// every speculation). Both directions are sound even when base and offset
// are correlated (e.g. lwx r,(a+a)): "can" only over-approximates the
// reachable pairs, and the "must" tests use per-operand lower bounds that
// hold for any consistent pair.
func Classify(g fac.Config, base, ofs KB, isRegOffset bool) (can fac.Failure, must bool) {
	if isRegOffset {
		switch {
		case ofs.Ones&0x80000000 != 0:
			// Sign bit proven set: the conservative path always fails.
			return fac.FailNegIndexReg, true
		case ofs.Zeros&0x80000000 != 0:
			return classifyNonneg(g, base, ofs)
		default:
			// Sign unknown: non-negative executions behave like the
			// carry-free path with the sign pinned to 0; negative executions
			// always raise FailNegIndexReg. The site fails on every
			// execution only if the non-negative side must fail too.
			nn := ofs
			nn.Zeros |= 0x80000000
			can, must = classifyNonneg(g, base, nn)
			return can | fac.FailNegIndexReg, must
		}
	}
	// Constant (or post-increment zero) offset: exact by construction.
	v := ofs.Ones
	if int32(v) < 0 {
		return classifyNegConst(g, base, v)
	}
	return classifyNonneg(g, base, ofs)
}

// classifyNonneg bounds the non-negative-offset path of Predict: a full add
// in the block-offset field and carry-free OR in the index (and, without
// the tag adder, tag) fields.
func classifyNonneg(g fac.Config, base, ofs KB) (can fac.Failure, must bool) {
	bm := uint32(1)<<g.BlockBits - 1
	sm := uint32(1)<<g.SetBits - 1

	// FailOverflow: the low-field sum carries out. The extremal sums bound
	// every consistent execution's sum.
	maxLow := base.MaxIn(bm) + ofs.MaxIn(bm)
	minLow := base.MinIn(bm) + ofs.MinIn(bm)
	if maxLow > bm {
		can |= fac.FailOverflow
		if minLow > bm {
			must = true
		}
	}

	// FailGenCarry: base&ofs generates a carry inside the OR'd fields.
	conflictMask := sm &^ bm
	if !g.TagAdder {
		conflictMask |= ^sm
	}
	if ^base.Zeros & ^ofs.Zeros & conflictMask != 0 {
		can |= fac.FailGenCarry
		if base.Ones&ofs.Ones&conflictMask != 0 {
			must = true
		}
	}
	return can, must
}

// classifyNegConst bounds the negative-constant-offset path: the predicted
// address stays in the base's block, so the offset must be small enough in
// magnitude (FailLargeNegConst) and the low-field add must carry — i.e.
// not borrow out of the block (FailOverflow).
func classifyNegConst(g fac.Config, base KB, v uint32) (can fac.Failure, must bool) {
	bm := uint32(1)<<g.BlockBits - 1
	if v>>g.BlockBits != 1<<(32-g.BlockBits)-1 {
		can |= fac.FailLargeNegConst
		must = true
	}
	lowOfs := v & bm
	minLow := base.MinIn(bm) + lowOfs
	maxLow := base.MaxIn(bm) + lowOfs
	if minLow <= bm {
		can |= fac.FailOverflow
		if maxLow <= bm {
			must = true
		}
	}
	return can, must
}

// Verdict is the three-way classification of a memory-access site.
type Verdict uint8

const (
	// VerdictUnknown: the analysis cannot bound the site's behaviour.
	VerdictUnknown Verdict = iota
	// VerdictPredictable: no reachable execution raises a failure signal.
	VerdictPredictable
	// VerdictFailing: every execution raises at least one failure signal.
	VerdictFailing
)

// Canonical verdict names: the fac/static/v1 report schema and every
// human-readable table print these exact strings, so they are exported
// constants — scripts/lint rejects raw duplicates of them.
const (
	VerdictNamePredictable = "proven_predictable"
	VerdictNameFailing     = "proven_failing"
	VerdictNameUnknown     = "unknown"
)

func (v Verdict) String() string {
	switch v {
	case VerdictPredictable:
		return VerdictNamePredictable
	case VerdictFailing:
		return VerdictNameFailing
	}
	return VerdictNameUnknown
}

func verdictOf(can fac.Failure, must bool) Verdict {
	switch {
	case must:
		return VerdictFailing
	case can == 0:
		return VerdictPredictable
	}
	return VerdictUnknown
}
