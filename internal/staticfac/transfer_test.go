package staticfac

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// TestStepPerOpcode is the table-driven transfer-function audit: one case
// per ALU/shift/immediate opcode that refines or destroys alignment facts,
// each checked against the emulator's concrete semantics for that opcode.
func TestStepPerOpcode(t *testing.T) {
	aligned := KB{Zeros: 0x3F} // 64-aligned, upper bits unknown
	cases := []struct {
		name string
		in   isa.Inst
		pre  func(st *State)
		want func(t *testing.T, st *State)
	}{
		{"lui-exact", isa.Inst{Op: isa.LUI, Rd: isa.T0, Imm: 0x1234}, nil,
			func(t *testing.T, st *State) { expectExact(t, st.R[isa.T0], 0x12340000) }},
		{"addi-exact", isa.Inst{Op: isa.ADDI, Rd: isa.T1, Rs: isa.T0, Imm: -8},
			func(st *State) { st.SetReg(isa.T0, Exact(0x1000)) },
			func(t *testing.T, st *State) { expectExact(t, st.R[isa.T1], 0xFF8) }},
		{"addi-keeps-alignment", isa.Inst{Op: isa.ADDI, Rd: isa.T1, Rs: isa.T0, Imm: 24},
			func(st *State) { st.SetReg(isa.T0, aligned) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T1], 6, 24) }},
		{"add-aligned-plus-unknown", isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1},
			func(st *State) { st.SetReg(isa.T0, aligned); st.SetReg(isa.T1, Unknown) },
			func(t *testing.T, st *State) { expectUnknown(t, st.R[isa.T2]) }},
		{"add-aligned-pair", isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1},
			func(st *State) { st.SetReg(isa.T0, aligned); st.SetReg(isa.T1, KB{Zeros: 0x7}) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T2], 3, 0) }},
		{"sub-exact", isa.Inst{Op: isa.SUB, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1},
			func(st *State) { st.SetReg(isa.T0, Exact(0x40)); st.SetReg(isa.T1, Exact(0x18)) },
			func(t *testing.T, st *State) { expectExact(t, st.R[isa.T2], 0x28) }},
		{"andi-refines", isa.Inst{Op: isa.ANDI, Rd: isa.T1, Rs: isa.T0, Imm: 0xFFC0},
			func(st *State) { st.SetReg(isa.T0, Unknown) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T1], 6, 0) }}, // low 6 and top 16 proven zero
		{"and-alignment-mask", isa.Inst{Op: isa.AND, Rd: isa.SP, Rs: isa.SP, Rt: isa.T9},
			func(st *State) { st.SetReg(isa.SP, Unknown); st.SetReg(isa.T9, Exact(^uint32(63))) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.SP], 6, 0) }}, // the explicit-align prologue
		{"ori-sets", isa.Inst{Op: isa.ORI, Rd: isa.T1, Rs: isa.T0, Imm: 0x21},
			func(st *State) { st.SetReg(isa.T0, aligned) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T1], 6, 0x21) }},
		{"xori-flips-known", isa.Inst{Op: isa.XORI, Rd: isa.T1, Rs: isa.T0, Imm: 0x3},
			func(st *State) { st.SetReg(isa.T0, Exact(0x41)) },
			func(t *testing.T, st *State) { expectExact(t, st.R[isa.T1], 0x42) }},
		{"sll-shifts-in-zeros", isa.Inst{Op: isa.SLL, Rd: isa.T1, Rs: isa.T0, Imm: 3},
			func(st *State) { st.SetReg(isa.T0, Unknown) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T1], 3, 0) }},
		{"srl-destroys-alignment", isa.Inst{Op: isa.SRL, Rd: isa.T1, Rs: isa.T0, Imm: 2},
			func(st *State) { st.SetReg(isa.T0, aligned) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T1], 4, 0) }}, // 64-aligned >> 2 is 16-aligned
		{"sra-sign-unknown", isa.Inst{Op: isa.SRA, Rd: isa.T1, Rs: isa.T0, Imm: 4},
			func(st *State) { st.SetReg(isa.T0, KB{Zeros: 0xFF}) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T1], 4, 0) }},
		{"sllv-known-amount", isa.Inst{Op: isa.SLLV, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1},
			func(st *State) { st.SetReg(isa.T0, Unknown); st.SetReg(isa.T1, Exact(2)) },
			func(t *testing.T, st *State) { expectLow(t, st.R[isa.T2], 2, 0) }},
		{"sllv-unknown-amount", isa.Inst{Op: isa.SLLV, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1},
			func(st *State) { st.SetReg(isa.T0, Exact(64)); st.SetReg(isa.T1, Unknown) },
			func(t *testing.T, st *State) { expectUnknown(t, st.R[isa.T2]) }},
		{"slt-bool", isa.Inst{Op: isa.SLT, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1}, nil,
			func(t *testing.T, st *State) {
				if st.R[isa.T2].Zeros != ^uint32(1) {
					t.Fatalf("slt result %v, want bits 1..31 zero", st.R[isa.T2])
				}
				if iv := st.IV[isa.T2]; iv.Lo() != 0 || iv.Hi() != 1 {
					t.Fatalf("slt interval %v, want [0, 1]", iv)
				}
			}},
		{"mul-clobbers", isa.Inst{Op: isa.MUL, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1},
			func(st *State) { st.SetReg(isa.T2, Exact(4)) },
			func(t *testing.T, st *State) { expectUnknown(t, st.R[isa.T2]) }},
		{"lw-clobbers-dest", isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.SP, Imm: 0},
			func(st *State) { st.SetReg(isa.T0, Exact(4)) },
			func(t *testing.T, st *State) { expectUnknown(t, st.R[isa.T0]) }},
		{"lwpi-advances-base", isa.Inst{Op: isa.LWPI, Rd: isa.T0, Rs: isa.T1, Imm: 4},
			func(st *State) { st.SetReg(isa.T1, Exact(0x10000000)) },
			func(t *testing.T, st *State) { expectExact(t, st.R[isa.T1], 0x10000004) }},
		{"syscall-clobbers-v0", isa.Inst{Op: isa.SYSCALL},
			func(st *State) { st.SetReg(isa.V0, Exact(9)) },
			func(t *testing.T, st *State) { expectUnknown(t, st.R[isa.V0]) }},
		{"jal-links", isa.Inst{Op: isa.JAL, Imm: 0x400100}, nil,
			func(t *testing.T, st *State) { expectExact(t, st.R[isa.RA], 0x400204) }},
		{"zero-stays-zero", isa.Inst{Op: isa.ADDI, Rd: isa.Zero, Rs: isa.T0, Imm: 5},
			func(st *State) { st.SetReg(isa.T0, Exact(1)) },
			func(t *testing.T, st *State) { expectExact(t, st.R[isa.Zero], 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var st State
			for r := range st.R {
				st.SetReg(isa.Reg(r), Unknown)
			}
			st.SetReg(isa.Zero, Exact(0))
			if tc.pre != nil {
				tc.pre(&st)
			}
			Step(&st, tc.in, 0x400200)
			tc.want(t, &st)
		})
	}
}

func expectExact(t *testing.T, k KB, v uint32) {
	t.Helper()
	if !k.IsExact() || k.Ones != v {
		t.Fatalf("got %v, want exact %#x", k, v)
	}
}

func expectLow(t *testing.T, k KB, n uint, v uint32) {
	t.Helper()
	if got, ok := k.LowKnown(n); !ok || got != v {
		t.Fatalf("got %v, want low %d bits known = %#x", k, n, v)
	}
}

func expectUnknown(t *testing.T, k KB) {
	t.Helper()
	if k != Unknown {
		t.Fatalf("got %v, want unknown", k)
	}
}

// aluConcrete mirrors the emulator's ALU semantics (internal/emu exec) for
// the opcodes Step models precisely; the pairing below keeps the abstract
// transfer honest on random exact inputs.
func aluConcrete(op isa.Op, a, b uint32, imm int32) (uint32, bool) {
	switch op {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.NOR:
		return ^(a | b), true
	case isa.SLT:
		if int32(a) < int32(b) {
			return 1, true
		}
		return 0, true
	case isa.SLTU:
		if a < b {
			return 1, true
		}
		return 0, true
	case isa.SLLV:
		return a << (b & 31), true
	case isa.SRLV:
		return a >> (b & 31), true
	case isa.SRAV:
		return uint32(int32(a) >> (b & 31)), true
	case isa.ADDI:
		return a + uint32(imm), true
	case isa.ANDI:
		return a & uint32(imm), true
	case isa.ORI:
		return a | uint32(imm), true
	case isa.XORI:
		return a ^ uint32(imm), true
	case isa.SLTI:
		if int32(a) < imm {
			return 1, true
		}
		return 0, true
	case isa.SLTIU:
		if a < uint32(imm) {
			return 1, true
		}
		return 0, true
	case isa.SLL:
		return a << (uint(imm) & 31), true
	case isa.SRL:
		return a >> (uint(imm) & 31), true
	case isa.SRA:
		return uint32(int32(a) >> (uint(imm) & 31)), true
	case isa.LUI:
		return uint32(imm) << 16, true
	}
	return 0, false
}

// TestStepMatchesConcrete drives random ALU instructions through the
// abstract transfer function from exact operand states: both the
// known-bits and the interval abstraction of the result must contain the
// concrete result of the same instruction.
func TestStepMatchesConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.NOR, isa.SLT, isa.SLTU,
		isa.SLLV, isa.SRLV, isa.SRAV, isa.ADDI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SLTI, isa.SLTIU, isa.SLL, isa.SRL, isa.SRA, isa.LUI,
	}
	for i := 0; i < 5000; i++ {
		op := ops[rng.Intn(len(ops))]
		in := isa.Inst{Op: op, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1, Imm: int32(int16(rng.Uint32()))}
		switch op {
		case isa.SLL, isa.SRL, isa.SRA:
			in.Imm = int32(rng.Intn(32))
		case isa.LUI:
			in.Imm = int32(uint16(rng.Uint32()))
		}
		a, b := rng.Uint32(), rng.Uint32()
		want, ok := aluConcrete(op, a, b, in.Imm)
		if !ok {
			t.Fatalf("no concrete model for %v", op)
		}

		var st State
		st.SetReg(isa.T0, Exact(a))
		st.SetReg(isa.T1, Exact(b))
		Step(&st, in, 0x400000)
		if !st.R[isa.T2].Contains(want) {
			t.Fatalf("%v a=%#x b=%#x: abstract %v does not contain concrete %#x",
				in, a, b, st.R[isa.T2], want)
		}
		if !st.IV[isa.T2].Contains(want) {
			t.Fatalf("%v a=%#x b=%#x: interval %v does not contain concrete %#x",
				in, a, b, st.IV[isa.T2], want)
		}
	}
}
