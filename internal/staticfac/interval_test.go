package staticfac

import (
	"math"
	"math/rand"
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	if !IvTop.IsTop() || IvTop.Lo() != 0 || IvTop.Hi() != math.MaxUint32 {
		t.Fatalf("zero value must be top, got %v", IvTop)
	}
	var zero Interval
	if zero != IvTop {
		t.Fatalf("zero-value Interval is not top: %v", zero)
	}
	e := IvExact(0x40)
	if !e.IsExact() || e.Lo() != 0x40 || e.Hi() != 0x40 || !e.Contains(0x40) || e.Contains(0x41) {
		t.Fatalf("IvExact broken: %v", e)
	}
	r := IvRange(3, 9)
	if r.IsExact() || !r.Contains(3) || !r.Contains(9) || r.Contains(2) || r.Contains(10) {
		t.Fatalf("IvRange broken: %v", r)
	}
}

func TestIntervalJoinMeet(t *testing.T) {
	a, b := IvRange(0, 10), IvRange(5, 20)
	if j := a.Join(b); j.Lo() != 0 || j.Hi() != 20 {
		t.Fatalf("Join = %v", j)
	}
	if m, ok := a.Meet(b); !ok || m.Lo() != 5 || m.Hi() != 10 {
		t.Fatalf("Meet = %v ok=%v", m, ok)
	}
	if _, ok := IvRange(0, 4).Meet(IvRange(5, 9)); ok {
		t.Fatal("disjoint Meet reported non-empty")
	}
}

func TestIntervalAddSub(t *testing.T) {
	a, b := IvRange(10, 20), IvRange(1, 2)
	if s := a.Add(b); s.Lo() != 11 || s.Hi() != 22 {
		t.Fatalf("Add = %v", s)
	}
	if s := a.Sub(b); s.Lo() != 8 || s.Hi() != 19 {
		t.Fatalf("Sub = %v", s)
	}
	// Both endpoint sums wrap: result is contiguous mod 2^32 and stays exact.
	w := IvExact(math.MaxUint32).Add(IvRange(2, 3))
	if w.Lo() != 1 || w.Hi() != 2 {
		t.Fatalf("wrapping Add = %v", w)
	}
	// Straddles the wrap: must degrade to top, never to a wrong range.
	if s := IvRange(math.MaxUint32-1, math.MaxUint32).Add(IvRange(0, 5)); !s.IsTop() {
		t.Fatalf("straddling Add = %v, want top", s)
	}
	if s := IvRange(0, 5).Sub(IvExact(3)); !s.IsTop() {
		t.Fatalf("straddling Sub = %v, want top", s)
	}
}

func TestIntervalShifts(t *testing.T) {
	if s := IvRange(1, 5).Shl(3); s.Lo() != 8 || s.Hi() != 40 {
		t.Fatalf("Shl = %v", s)
	}
	if s := IvRange(0, 1<<30).Shl(2); !s.IsTop() {
		t.Fatalf("overflowing Shl = %v, want top", s)
	}
	if s := IvRange(8, 40).Shr(3); s.Lo() != 1 || s.Hi() != 5 {
		t.Fatalf("Shr = %v", s)
	}
	if s := IvExact(0xFFFF_FFF0).Sar(4); !s.IsExact() || s.Lo() != 0xFFFF_FFFF {
		t.Fatalf("negative Sar = %v", s)
	}
	// Sign-straddling Sar is not monotone on the unsigned line.
	if s := IvRange(1<<31-1, 1<<31).Sar(1); !s.IsTop() {
		t.Fatalf("straddling Sar = %v, want top", s)
	}
}

func TestIntervalWidenThresholds(t *testing.T) {
	ts := []uint32{15, 16, 63, 64, 511, 512}
	// A bound creeping past 16 snaps to the next program threshold, 63.
	w := IvRange(0, 16).WidenTo(IvRange(0, 17), ts)
	if w.Lo() != 0 || w.Hi() != 63 {
		t.Fatalf("threshold widen = %v, want [0, 63]", w)
	}
	// Past the last threshold: the sign boundary, keeping signed narrowing
	// effective, then the extreme.
	w = IvRange(0, 512).WidenTo(IvRange(0, 513), ts)
	if w.Hi() != math.MaxInt32 {
		t.Fatalf("post-threshold widen hi = %#x, want MaxInt32", w.Hi())
	}
	w = IvRange(0, math.MaxInt32).WidenTo(IvRange(0, math.MaxInt32+1), ts)
	if w.Hi() != math.MaxUint32 {
		t.Fatalf("final widen hi = %#x, want MaxUint32", w.Hi())
	}
	// A lower bound moving down snaps to the largest threshold below it.
	w = IvRange(64, 100).WidenTo(IvRange(20, 100), ts)
	if w.Lo() != 16 {
		t.Fatalf("lower threshold widen lo = %d, want 16", w.Lo())
	}
	// Stable bounds never move.
	w = IvRange(3, 40).WidenTo(IvRange(3, 40), ts)
	if w.Lo() != 3 || w.Hi() != 40 {
		t.Fatalf("stable widen = %v", w)
	}
}

func TestIntervalWidenCovers(t *testing.T) {
	// Widening must always cover its inputs (soundness of the accelerated
	// fixpoint); WidenTo's contract has next pre-joined with prev, as at
	// every fixpoint update site.
	rng := rand.New(rand.NewSource(11))
	ts := []uint32{7, 64, 1000, 65535}
	for n := 0; n < 2000; n++ {
		a := rng.Uint32()
		b := a + rng.Uint32()%(math.MaxUint32-a+1)
		c := rng.Uint32()
		d := c + rng.Uint32()%(math.MaxUint32-c+1)
		prev := IvRange(a, b)
		next := prev.Join(IvRange(c, d))
		w := prev.WidenTo(next, ts)
		if w.Lo() > next.Lo() || w.Hi() < next.Hi() {
			t.Fatalf("WidenTo(%v, %v) = %v does not cover next", prev, next, w)
		}
		if w.Lo() > prev.Lo() || w.Hi() < prev.Hi() {
			t.Fatalf("WidenTo(%v, %v) = %v does not cover prev", prev, next, w)
		}
	}
}

func TestIntervalMeetSigned(t *testing.T) {
	// Non-negative constraint on a full range keeps the non-negative half.
	m := IvTop.MeetSigned(0, math.MaxInt32)
	if m.Lo() != 0 || m.Hi() != math.MaxInt32 {
		t.Fatalf("MeetSigned(T, >=0) = %v", m)
	}
	// Negative constraint selects the high unsigned piece.
	m = IvTop.MeetSigned(math.MinInt32, -1)
	if m.Lo() != 1<<31 || m.Hi() != math.MaxUint32 {
		t.Fatalf("MeetSigned(T, <0) = %v", m)
	}
	// A bounded counter meets a loop-guard upper bound.
	m = IvRange(0, 1000).MeetSigned(0, 63)
	if m.Lo() != 0 || m.Hi() != 63 {
		t.Fatalf("guard meet = %v", m)
	}
	// An empty meet (infeasible edge) leaves the interval unchanged.
	m = IvRange(100, 200).MeetSigned(0, 50)
	if m != IvRange(100, 200) {
		t.Fatalf("empty MeetSigned changed interval: %v", m)
	}
	// Exhaustive small-domain check against concrete int32 semantics.
	for lo := -4; lo <= 4; lo++ {
		for hi := lo; hi <= 4; hi++ {
			if lo < 0 && hi >= 0 {
				continue // not representable as one unsigned interval
			}
			iv := IvRange(uint32(int32(lo)), uint32(int32(hi)))
			m := iv.MeetSigned(-2, 2)
			for v := lo; v <= hi; v++ {
				in := v >= -2 && v <= 2
				if in && !m.Contains(uint32(int32(v))) {
					t.Fatalf("MeetSigned([%d,%d], [-2,2]) = %v dropped %d", lo, hi, m, v)
				}
			}
		}
	}
}

func TestIntervalReduceRefine(t *testing.T) {
	// KB proves 8-alignment; the interval caps the magnitude. Reduction
	// clamps the interval to the KB-consistent range.
	k := KB{Zeros: 0x7} // low 3 bits zero
	iv := IvRange(3, 100).ReduceKB(k)
	if iv.Lo() != 3 || iv.Hi() != 100 {
		t.Fatalf("ReduceKB = %v", iv)
	}
	if got := IvTop.ReduceKB(Exact(0x40)); !got.IsExact() || got.Lo() != 0x40 {
		t.Fatalf("ReduceKB(exact) = %v", got)
	}
	// Refine folds the common prefix of the bounds into known bits: every
	// member of [0, 63] has bits 6..31 proven zero.
	out := KB{}.Refine(IvRange(0, 63))
	if out.Zeros != ^uint32(63) || out.Ones != 0 {
		t.Fatalf("Refine([0,63]) = zeros %#x ones %#x", out.Zeros, out.Ones)
	}
	// An exact interval refines to a fully known value.
	out = KB{}.Refine(IvExact(0x1234))
	if !out.IsExact() || out.Ones != 0x1234 {
		t.Fatalf("Refine(exact) = zeros %#x ones %#x", out.Zeros, out.Ones)
	}
	// A contradictory merge (unreachable-path artifact) must not corrupt KB.
	k = Exact(0xFF)
	if got := k.Refine(IvExact(0x100)); got != k {
		t.Fatalf("contradictory Refine changed KB: %v", got)
	}
}

func TestIntervalOpsSoundRandom(t *testing.T) {
	// Property test: for random intervals and random members, every
	// abstract operation's result contains the concrete result.
	rng := rand.New(rand.NewSource(23))
	mk := func() (Interval, uint32) {
		lo := rng.Uint32()
		hi := lo + rng.Uint32()%(math.MaxUint32-lo+1)
		v := lo + rng.Uint32()%(hi-lo+1)
		return IvRange(lo, hi), v
	}
	for n := 0; n < 20000; n++ {
		a, x := mk()
		b, y := mk()
		sh := uint(rng.Intn(32))
		if got := a.Add(b); !got.Contains(x + y) {
			t.Fatalf("%v.Add(%v) = %v misses %#x+%#x", a, b, got, x, y)
		}
		if got := a.Sub(b); !got.Contains(x - y) {
			t.Fatalf("%v.Sub(%v) = %v misses %#x-%#x", a, b, got, x, y)
		}
		if got := a.Shl(sh); !got.Contains(x << sh) {
			t.Fatalf("%v.Shl(%d) = %v misses %#x", a, sh, got, x)
		}
		if got := a.Shr(sh); !got.Contains(x >> sh) {
			t.Fatalf("%v.Shr(%d) = %v misses %#x", a, sh, got, x)
		}
		if got := a.Sar(sh); !got.Contains(uint32(int32(x) >> sh)) {
			t.Fatalf("%v.Sar(%d) = %v misses %#x", a, sh, got, x)
		}
		if got := a.AndUpper(b); !got.Contains(x & y) {
			t.Fatalf("%v.AndUpper(%v) = %v misses %#x&%#x", a, b, got, x, y)
		}
		if got := a.Join(b); !got.Contains(x) || !got.Contains(y) {
			t.Fatalf("%v.Join(%v) = %v misses a member", a, b, got)
		}
		if m, ok := a.Meet(b); ok && a.Contains(y) && b.Contains(y) && !m.Contains(y) {
			t.Fatalf("%v.Meet(%v) = %v misses common member %#x", a, b, m, y)
		}
	}
}
