package staticfac

import (
	"math/rand"
	"testing"
)

// enumerate returns every concrete value consistent with k, provided the
// number of unknown bits is small enough to enumerate.
func enumerate(t *testing.T, k KB) []uint32 {
	t.Helper()
	unknown := ^k.Known()
	var positions []uint
	for b := uint(0); b < 32; b++ {
		if unknown>>b&1 == 1 {
			positions = append(positions, b)
		}
	}
	if len(positions) > 16 {
		t.Fatalf("too many unknown bits to enumerate: %d", len(positions))
	}
	out := make([]uint32, 0, 1<<len(positions))
	for m := 0; m < 1<<len(positions); m++ {
		v := k.Ones
		for i, b := range positions {
			if m>>i&1 == 1 {
				v |= 1 << b
			}
		}
		out = append(out, v)
	}
	return out
}

// randKB builds a random well-formed KB with at most maxUnknown unknown bits.
func randKB(rng *rand.Rand, maxUnknown int) KB {
	v := rng.Uint32()
	k := Exact(v)
	n := rng.Intn(maxUnknown + 1)
	for i := 0; i < n; i++ {
		b := uint(rng.Intn(32))
		k.Zeros &^= 1 << b
		k.Ones &^= 1 << b
	}
	return k
}

// checkSound verifies that got soundly abstracts the image of f over every
// pair of concrete values consistent with a and b.
func checkSound(t *testing.T, name string, a, b KB, got KB, f func(x, y uint32) uint32) {
	t.Helper()
	if got.Zeros&got.Ones != 0 {
		t.Fatalf("%s: malformed result %v (Zeros&Ones != 0)", name, got)
	}
	for _, x := range enumerate(t, a) {
		for _, y := range enumerate(t, b) {
			v := f(x, y)
			if !got.Contains(v) {
				t.Fatalf("%s: concrete %#x op %#x = %#x not contained in %v (a=%v b=%v)",
					name, x, y, v, got, a, b)
			}
		}
	}
}

func TestKBAddSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randKB(rng, 6), randKB(rng, 6)
		checkSound(t, "add", a, b, a.Add(b), func(x, y uint32) uint32 { return x + y })
		checkSound(t, "sub", a, b, a.Sub(b), func(x, y uint32) uint32 { return x - y })
	}
}

func TestKBAddExact(t *testing.T) {
	// Exact inputs must produce exact sums: the whole gp-relative site class
	// depends on this.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		x, y := rng.Uint32(), rng.Uint32()
		got := Exact(x).Add(Exact(y))
		if !got.IsExact() || got.Ones != x+y {
			t.Fatalf("Exact(%#x)+Exact(%#x) = %v, want exact %#x", x, y, got, x+y)
		}
	}
}

func TestKBAddAlignment(t *testing.T) {
	// An aligned base plus a small exact offset keeps the low bits exact:
	// sp-relative addressing with a 64-aligned frame.
	base := KB{Zeros: 0x3F} // 64-aligned, high bits unknown
	got := base.Add(Exact(20))
	if v, ok := got.LowKnown(6); !ok || v != 20 {
		t.Fatalf("aligned+20: low 6 bits = %v, want known 20", got)
	}
	// Offset larger than the alignment leaves the carry bit unknown but
	// must keep the bits below the alignment known.
	got = base.Add(Exact(68)) // 64 + 4
	if v, ok := got.LowKnown(6); !ok || v != 4 {
		t.Fatalf("aligned+68: low 6 bits = %v, want known 4", got)
	}
}

func TestKBLogicSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a, b := randKB(rng, 6), randKB(rng, 6)
		checkSound(t, "and", a, b, a.And(b), func(x, y uint32) uint32 { return x & y })
		checkSound(t, "or", a, b, a.Or(b), func(x, y uint32) uint32 { return x | y })
		checkSound(t, "xor", a, b, a.Xor(b), func(x, y uint32) uint32 { return x ^ y })
		checkSound(t, "nor", a, b, a.Nor(b), func(x, y uint32) uint32 { return ^(x | y) })
	}
}

func TestKBShiftSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		a := randKB(rng, 8)
		n := uint(rng.Intn(32))
		checkSound(t, "shl", a, Exact(uint32(n)), a.Shl(n), func(x, _ uint32) uint32 { return x << n })
		checkSound(t, "shr", a, Exact(uint32(n)), a.Shr(n), func(x, _ uint32) uint32 { return x >> n })
		checkSound(t, "sar", a, Exact(uint32(n)), a.Sar(n), func(x, _ uint32) uint32 { return uint32(int32(x) >> n) })
	}
}

func TestKBJoin(t *testing.T) {
	a, b := Exact(0x1008), Exact(0x1010)
	j := a.Join(b)
	if !j.Contains(0x1008) || !j.Contains(0x1010) {
		t.Fatalf("join %v does not contain both inputs", j)
	}
	if v, ok := j.LowKnown(3); !ok || v != 0 {
		t.Fatalf("join of two 8-aligned values lost low-bit alignment: %v", j)
	}
	if j.Known()&0xFFFFF000 != 0xFFFFF000 {
		t.Fatalf("join lost agreeing high bits: %v", j)
	}
}

func TestKBString(t *testing.T) {
	if got := Exact(0x10000010).String(); got != "=0x10000010" {
		t.Fatalf("Exact string = %q", got)
	}
	if got := (KB{Zeros: 0xF}).String(); got != "0x???????0" {
		t.Fatalf("aligned string = %q", got)
	}
	if got := Unknown.String(); got != "0x????????" {
		t.Fatalf("unknown string = %q", got)
	}
}
