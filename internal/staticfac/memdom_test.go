package staticfac_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/fac"
	"repro/internal/prog"
	"repro/internal/staticfac"
)

func buildAsm(t *testing.T, src string) *prog.Program {
	t.Helper()
	o, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Link(o, prog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func analyzeAsm(t *testing.T, src string) *staticfac.Analysis {
	t.Helper()
	return staticfac.Analyze(buildAsm(t, src), fac.Config{BlockBits: 5, SetBits: 10})
}

func findSite(t *testing.T, a *staticfac.Analysis, pred func(s *staticfac.Site) bool) *staticfac.Site {
	t.Helper()
	var found *staticfac.Site
	for i := range a.Sites {
		if s := &a.Sites[i]; pred(s) {
			if found != nil {
				t.Fatalf("site predicate matches both %#x and %#x", found.PC, s.PC)
			}
			found = s
		}
	}
	if found == nil {
		t.Fatal("no site matches predicate")
	}
	return found
}

// TestRecursiveFramesDoNotPoison pins the StackOnly rule: a recursive
// function's $sp-relative spills have a widened, useless address range,
// but being $sp-based they provably stay in the stack region and must not
// poison global cells. The global n re-loaded after the recursion keeps
// its cell claim, and no load inside the recursion claims a slot (the
// recursive frame's $sp is inexact, so its slots are untracked — honest,
// not unsound).
func TestRecursiveFramesDoNotPoison(t *testing.T) {
	a := analyzeAsm(t, `
.data
	.balign 32
n:	.word 0
.text
main:
	addi $sp, $sp, -16
	sw $ra, 12($sp)
	li $t0, 8
	la $t1, n
	sw $t0, 0($t1)
	li $a0, 3
	jal rec
	la $t5, n
	lw $t6, 0($t5)
	lw $ra, 12($sp)
	addi $sp, $sp, 16
	li $v0, 10
	li $a0, 0
	syscall
rec:
	addi $sp, $sp, -16
	sw $ra, 12($sp)
	sw $a0, 8($sp)
	blez $a0, done
	addi $a0, $a0, -1
	jal rec
done:
	lw $ra, 12($sp)
	lw $a0, 8($sp)
	addi $sp, $sp, 16
	jr $ra
`)
	nLoad := findSite(t, a, func(s *staticfac.Site) bool {
		return !s.Store && s.CellKind == staticfac.CellGlobal
	})
	if nLoad.Val.IV.Lo() != 0 || nLoad.Val.IV.Hi() != 8 {
		t.Errorf("global n claim %v after recursion, want [0, 8]; recursive spills poisoned the cell", nLoad.Val)
	}
	for i := range a.Sites {
		if s := &a.Sites[i]; s.Func == "rec" && !s.Store && s.CellKind == staticfac.CellStack {
			t.Errorf("load %#x inside the recursion claims slot %#x = %v; recursive frames are not trackable",
				s.PC, s.CellAddr, s.Val)
		}
	}
}

// TestEscapeCoversUpward pins the escape set's C-object-model granularity:
// handing out &x exposes x and everything above it in the frame, never
// below. Of three spilled slots, the one below the escaped address keeps
// its claim across the call; the escaped slot and the one above it lose
// theirs.
func TestEscapeCoversUpward(t *testing.T) {
	// The .data word keeps HeapBase above DataBase: in a data-less image
	// the two coincide, $gp's exact value lands in the "stackish" region
	// and the call conservatively escapes it, covering every slot.
	a := analyzeAsm(t, `
.data
pad:	.word 0
.text
main:
	addi $sp, $sp, -32
	sw $ra, 28($sp)
	li $t0, 5
	sw $t0, 8($sp)
	li $t1, 6
	sw $t1, 16($sp)
	li $t2, 7
	sw $t2, 20($sp)
	addi $a0, $sp, 16
	jal poke
	lw $t3, 8($sp)
	lw $t4, 16($sp)
	lw $t5, 20($sp)
	lw $ra, 28($sp)
	addi $sp, $sp, 32
	li $v0, 10
	li $a0, 0
	syscall
poke:
	lw $t6, 0($a0)
	addi $t6, $t6, 1
	sw $t6, 0($a0)
	jr $ra
`)
	low := findSite(t, a, func(s *staticfac.Site) bool {
		return !s.Store && s.Func == "main" && s.Inst.Imm == 8
	})
	if low.CellKind != staticfac.CellStack || !low.Val.K.IsExact() || low.Val.K.Ones != 5 {
		t.Errorf("slot below the escaped address: kind=%v val=%v, want exact stack claim =5", low.CellKind, low.Val)
	}
	for _, imm := range []int32{16, 20} {
		s := findSite(t, a, func(s *staticfac.Site) bool {
			return !s.Store && s.Func == "main" && s.Inst.Imm == imm
		})
		if s.CellKind == staticfac.CellStack {
			t.Errorf("slot %d($sp) claims %v across the call, but &(16($sp)) escaped and covers it upward", imm, s.Val)
		}
	}
}

// TestSavedPointerStoreStrongUpdates pins stores through a callee-saved
// pointer register: $s0 holds an exact slot address across a call (the
// call conservatively escapes the slot, dropping the old fact), and the
// exact store through $s0 afterwards strong-updates the slot, so the
// re-load through $sp claims the new value — not the stale pre-call one.
func TestSavedPointerStoreStrongUpdates(t *testing.T) {
	a := analyzeAsm(t, `
main:
	addi $sp, $sp, -16
	sw $ra, 12($sp)
	li $t0, 5
	sw $t0, 8($sp)
	addi $s0, $sp, 8
	jal nothing
	li $t1, 7
	sw $t1, 0($s0)
	lw $t2, 8($sp)
	lw $ra, 12($sp)
	addi $sp, $sp, 16
	li $v0, 10
	li $a0, 0
	syscall
nothing:
	jr $ra
`)
	reload := findSite(t, a, func(s *staticfac.Site) bool {
		return !s.Store && s.Func == "main" && s.Inst.Imm == 8
	})
	if reload.CellKind != staticfac.CellStack || !reload.Val.K.IsExact() || reload.Val.K.Ones != 7 {
		t.Errorf("reload after the pointer store: kind=%v val=%v, want exact stack claim =7 (the strong update)",
			reload.CellKind, reload.Val)
	}
	if reload.Val.K.IsExact() && reload.Val.K.Ones == 5 {
		t.Error("reload claims the stale pre-call value 5")
	}
}
