package staticfac

import (
	"encoding/json"
	"fmt"
)

// ReportSchema identifies the faclint JSON export format, bumped on
// incompatible changes (internal/obs conventions).
const ReportSchema = "fac/static/v1"

// Report is the deterministic machine-readable export of one or more
// program analyses: programs appear in the order added, sites sorted by PC,
// and Encode produces byte-identical output for identical inputs.
type Report struct {
	Schema   string          `json:"schema"`
	Geometry GeometryRecord  `json:"geometry"`
	Programs []ProgramRecord `json:"programs"`
}

// GeometryRecord describes the predictor geometry analyzed against.
type GeometryRecord struct {
	BlockBits uint `json:"block_bits"`
	SetBits   uint `json:"set_bits"`
	TagAdder  bool `json:"tag_adder,omitempty"`
}

// ProgramRecord is one program's verdicts.
type ProgramRecord struct {
	Name      string        `json:"name"`
	Toolchain string        `json:"toolchain"`
	Summary   SummaryRecord `json:"summary"`
	Sites     []SiteRecord  `json:"sites"`
}

// SummaryRecord tallies verdicts for one program.
type SummaryRecord struct {
	Sites             int     `json:"sites"`
	Loads             int     `json:"loads"`
	Stores            int     `json:"stores"`
	ProvenPredictable int     `json:"proven_predictable"`
	ProvenFailing     int     `json:"proven_failing"`
	Unknown           int     `json:"unknown"`
	ClassifiedPct     float64 `json:"classified_pct"`
}

// SiteRecord is one memory-access site's verdict.
type SiteRecord struct {
	PC      string `json:"pc"`
	Inst    string `json:"inst"`
	Func    string `json:"func"`
	Store   bool   `json:"store,omitempty"`
	Verdict string `json:"verdict"`
	CanFail string `json:"can_fail,omitempty"`
	Base    string `json:"base"`
	Offset  string `json:"offset"`
	Dead    bool   `json:"dead,omitempty"` // not reached by the dataflow

	// Memory-domain claim: when the access provably targets one tracked
	// cell, its kind ("global" or "stack"), word address, and the abstract
	// value the access observes or writes. Checked dynamically by the
	// difftest value-soundness oracle.
	CellKind string `json:"cell_kind,omitempty"`
	Cell     string `json:"cell,omitempty"`
	Val      string `json:"val,omitempty"`
}

// NewReport creates an empty report for one geometry.
func NewReport(a *Analysis) *Report {
	return &Report{
		Schema: ReportSchema,
		Geometry: GeometryRecord{
			BlockBits: a.Geom.BlockBits,
			SetBits:   a.Geom.SetBits,
			TagAdder:  a.Geom.TagAdder,
		},
	}
}

// Add appends one analyzed program to the report.
func (r *Report) Add(name, toolchain string, a *Analysis) {
	s := a.Summary()
	pr := ProgramRecord{
		Name:      name,
		Toolchain: toolchain,
		Summary: SummaryRecord{
			Sites:             s.Sites,
			Loads:             s.Loads,
			Stores:            s.Stores,
			ProvenPredictable: s.ByVerdict[VerdictPredictable],
			ProvenFailing:     s.ByVerdict[VerdictFailing],
			Unknown:           s.ByVerdict[VerdictUnknown],
			ClassifiedPct:     100 * s.Classified(),
		},
		Sites: make([]SiteRecord, 0, len(a.Sites)),
	}
	for i := range a.Sites {
		st := &a.Sites[i]
		rec := SiteRecord{
			PC:      fmt.Sprintf("%#08x", st.PC),
			Inst:    st.Inst.String(),
			Func:    st.Func,
			Store:   st.Store,
			Verdict: st.Verdict.String(),
			Base:    st.Base.String(),
			Offset:  st.Offset.String(),
			Dead:    !st.Reached,
		}
		if st.CanFail != 0 {
			rec.CanFail = st.CanFail.String()
		}
		if st.CellKind != CellNone {
			rec.CellKind = st.CellKind.String()
			rec.Cell = fmt.Sprintf("%#08x", st.CellAddr)
			rec.Val = st.Val.String()
		}
		pr.Sites = append(pr.Sites, rec)
	}
	r.Programs = append(r.Programs, pr)
}

// Encode renders the report as deterministic indented JSON with a trailing
// newline.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
