package staticfac

import "repro/internal/isa"

// MaxSlots bounds the tracked stack slots per flow-sensitive state.
// When a state is full, new facts are dropped (sound: a missing slot is
// simply untracked).
const MaxSlots = 16

// Slot is one tracked stack cell: a word-aligned concrete address whose
// content the flow-sensitive pass has proven. Addr == 0 marks an empty
// entry; Def is the pc of the defining store (0 when a join merged
// differing definitions), kept for -explain blame chains.
type Slot struct {
	Addr uint32
	Def  uint32
	K    KB
	IV   Interval
}

// State abstracts the integer register file as a reduced product of two
// domains per register: known bits (R) and an unsigned value range (IV).
// FP registers and the FP condition flag never feed address computation
// and are not tracked. Every write goes through both domains and clamps
// the interval to the KB-consistent range, so the product never drifts
// apart; the reverse reduction (intervals sharpening KB) happens once per
// site at classification time (KB.Refine).
//
// Beside the registers, a State carries up to MaxSlots stack-slot facts
// (Slots[:NSlot], sorted by address, zero-valued tail — the canonical
// form keeps State comparable with ==, which the fixpoints rely on) and
// Deriv, a taint bitmask marking registers that may hold an *inexact*
// stack-derived pointer. Exact stack pointers need no taint (their value
// is visible to the escape scan); tainted ones force escape-all when
// they leak. Values loaded from memory are never tainted: any stack
// pointer that reached memory already escaped at its store.
type State struct {
	R     [isa.NumRegs]KB
	IV    [isa.NumRegs]Interval
	Slots [MaxSlots]Slot
	NSlot uint8
	Deriv uint32
}

// SetReg writes one register in both domains, deriving the interval from
// the known bits. Use it wherever only a KB fact is available (entry
// hypotheses, tests).
func (st *State) SetReg(r isa.Reg, k KB) {
	st.R[r] = k
	st.IV[r] = k.Range()
}

// slot returns the tracked fact for the word-aligned stack address, if any.
func (st *State) slot(addr uint32) (Slot, bool) {
	for i := 0; i < int(st.NSlot); i++ {
		if st.Slots[i].Addr == addr {
			return st.Slots[i], true
		}
		if st.Slots[i].Addr > addr {
			break
		}
	}
	return Slot{}, false
}

// setSlot strong-updates (or inserts) the fact for a word-aligned stack
// address. A full state drops the new fact instead of evicting — losing
// a fact is always sound, and the deterministic policy keeps fixpoints
// stable.
func (st *State) setSlot(addr uint32, k KB, iv Interval, def uint32) {
	n := int(st.NSlot)
	i := 0
	for i < n && st.Slots[i].Addr < addr {
		i++
	}
	if i < n && st.Slots[i].Addr == addr {
		st.Slots[i] = Slot{Addr: addr, Def: def, K: k, IV: iv.ReduceKB(k)}
		return
	}
	if n == MaxSlots {
		return
	}
	copy(st.Slots[i+1:n+1], st.Slots[i:n])
	st.Slots[i] = Slot{Addr: addr, Def: def, K: k, IV: iv.ReduceKB(k)}
	st.NSlot++
}

// killSlots removes every slot matching drop, keeping the canonical form.
func (st *State) killSlots(drop func(Slot) bool) {
	n := int(st.NSlot)
	w := 0
	for i := 0; i < n; i++ {
		if !drop(st.Slots[i]) {
			st.Slots[w] = st.Slots[i]
			w++
		}
	}
	for i := w; i < n; i++ {
		st.Slots[i] = Slot{}
	}
	st.NSlot = uint8(w)
}

// dropAllSlots forgets every slot fact.
func (st *State) dropAllSlots() {
	for i := 0; i < int(st.NSlot); i++ {
		st.Slots[i] = Slot{}
	}
	st.NSlot = 0
}

// JoinState merges two register states pointwise in both domains. Slot
// facts survive only where both sides track the same address (joined
// pointwise); the taint mask unions.
func JoinState(a, b State) State {
	var out State
	for i := range out.R {
		out.R[i] = a.R[i].Join(b.R[i])
		out.IV[i] = a.IV[i].Join(b.IV[i])
	}
	i, j := 0, 0
	for i < int(a.NSlot) && j < int(b.NSlot) {
		sa, sb := a.Slots[i], b.Slots[j]
		switch {
		case sa.Addr < sb.Addr:
			i++
		case sa.Addr > sb.Addr:
			j++
		default:
			def := sa.Def
			if sb.Def != def {
				def = 0
			}
			k := sa.K.Join(sb.K)
			out.Slots[out.NSlot] = Slot{Addr: sa.Addr, Def: def, K: k, IV: sa.IV.Join(sb.IV).ReduceKB(k)}
			out.NSlot++
			i++
			j++
		}
	}
	out.Deriv = a.Deriv | b.Deriv
	return out
}

// WidenState accelerates an ascending join chain: the KB half converges on
// its own (each join only clears bits), so only the intervals — register
// and slot — widen, snapping to the program's comparison constants (ts,
// ascending).
func WidenState(prev, next State, ts []uint32) State {
	for i := range next.IV {
		next.IV[i] = prev.IV[i].WidenTo(next.IV[i], ts)
	}
	for i := 0; i < int(next.NSlot); i++ {
		if p, ok := prev.slot(next.Slots[i].Addr); ok {
			next.Slots[i].IV = p.IV.WidenTo(next.Slots[i].IV, ts)
		}
	}
	return next
}

// Step applies the abstract transfer function of one instruction to the
// register state, with no memory environment: loads return Unknown, any
// store or call forgets every slot fact, and taint only propagates
// (it cannot be seeded, since recognizing a stack address needs the
// program layout). The analyzer's transfer — step with the analysis'
// memEnv — is what resolves loads against tracked cells and keeps slots
// across calls.
func Step(st *State, in isa.Inst, pc uint32) {
	step(st, in, pc, nil)
}

// step mirrors the functional emulator's integer semantics exactly
// (internal/emu): immediates are the sign-extended int32 stored by the
// decoder, logical immediates use the same uint32(Imm) conversion, and
// shift amounts are masked to 5 bits. Operations whose results the
// lattice cannot track (multiplies, divides, unresolvable loads, FP
// moves) clobber their destination to Unknown. Control transfers only
// write their link register; the CFG layer handles the PC. Interval
// arithmetic runs beside the known-bits transfer where it can beat the
// KB-derived range (add/sub chains, shifts, masked upper bounds);
// everywhere else the destination interval falls back to the range the
// KB result implies.
func step(st *State, in isa.Inst, pc uint32, env *memEnv) {
	// Taint sources are read before the switch mutates the state.
	var ubuf [4]uint8
	srcStackish := false
	for _, u := range in.Uses(ubuf[:0]) {
		if u < isa.NumRegs && stackish(st, isa.Reg(u), env) {
			srcStackish = true
			break
		}
	}

	set := func(r isa.Reg, v KB, iv Interval) {
		if r != isa.Zero {
			st.R[r] = v
			st.IV[r] = iv.ReduceKB(v)
		}
	}
	imm := uint32(in.Imm) // sign-extended for ADDI, raw low 16 reinterpreted for logicals
	switch in.Op {
	case isa.ADD:
		set(in.Rd, st.R[in.Rs].Add(st.R[in.Rt]), st.IV[in.Rs].Add(st.IV[in.Rt]))
	case isa.SUB:
		set(in.Rd, st.R[in.Rs].Sub(st.R[in.Rt]), st.IV[in.Rs].Sub(st.IV[in.Rt]))
	case isa.MUL, isa.DIV, isa.DIVU, isa.REM, isa.REMU:
		set(in.Rd, Unknown, IvTop)
	case isa.AND:
		set(in.Rd, st.R[in.Rs].And(st.R[in.Rt]), st.IV[in.Rs].AndUpper(st.IV[in.Rt]))
	case isa.OR:
		set(in.Rd, st.R[in.Rs].Or(st.R[in.Rt]), IvTop)
	case isa.XOR:
		set(in.Rd, st.R[in.Rs].Xor(st.R[in.Rt]), IvTop)
	case isa.NOR:
		set(in.Rd, st.R[in.Rs].Nor(st.R[in.Rt]), IvTop)
	case isa.SLT, isa.SLTU, isa.SLTI, isa.SLTIU:
		set(in.Rd, Bool01(), IvTop)
	case isa.SLLV:
		if n, ok := st.R[in.Rt].LowKnown(5); ok {
			set(in.Rd, st.R[in.Rs].Shl(uint(n)), st.IV[in.Rs].Shl(uint(n)))
		} else {
			set(in.Rd, Unknown, IvTop)
		}
	case isa.SRLV:
		if n, ok := st.R[in.Rt].LowKnown(5); ok {
			set(in.Rd, st.R[in.Rs].Shr(uint(n)), st.IV[in.Rs].Shr(uint(n)))
		} else {
			set(in.Rd, Unknown, IvTop)
		}
	case isa.SRAV:
		if n, ok := st.R[in.Rt].LowKnown(5); ok {
			set(in.Rd, st.R[in.Rs].Sar(uint(n)), st.IV[in.Rs].Sar(uint(n)))
		} else {
			set(in.Rd, Unknown, IvTop)
		}
	case isa.ADDI:
		set(in.Rd, st.R[in.Rs].Add(Exact(imm)), st.IV[in.Rs].Add(IvExact(imm)))
	case isa.ANDI:
		set(in.Rd, st.R[in.Rs].And(Exact(imm)), st.IV[in.Rs].AndUpper(IvExact(imm)))
	case isa.ORI:
		set(in.Rd, st.R[in.Rs].Or(Exact(imm)), IvTop)
	case isa.XORI:
		set(in.Rd, st.R[in.Rs].Xor(Exact(imm)), IvTop)
	case isa.SLL:
		set(in.Rd, st.R[in.Rs].Shl(uint(in.Imm&31)), st.IV[in.Rs].Shl(uint(in.Imm&31)))
	case isa.SRL:
		set(in.Rd, st.R[in.Rs].Shr(uint(in.Imm&31)), st.IV[in.Rs].Shr(uint(in.Imm&31)))
	case isa.SRA:
		set(in.Rd, st.R[in.Rs].Sar(uint(in.Imm&31)), st.IV[in.Rs].Sar(uint(in.Imm&31)))
	case isa.LUI:
		set(in.Rd, Exact(imm<<16), IvTop)
	case isa.JAL:
		if env != nil {
			env.callScan(st, pc)
		} else {
			st.dropAllSlots()
		}
		set(isa.RA, Exact(pc+isa.InstBytes), IvTop)
	case isa.JALR:
		if env != nil {
			env.callScan(st, pc)
		} else {
			st.dropAllSlots()
		}
		set(in.Rd, Exact(pc+isa.InstBytes), IvTop)
	case isa.JR:
		// jr $ra is a return; any other target is a computed jump the
		// CFG fans out, which leaks registers like a call does.
		if in.Rs != isa.RA {
			if env != nil {
				env.callScan(st, pc)
			} else {
				st.dropAllSlots()
			}
		}
	case isa.SYSCALL:
		// The emulator's syscalls never write data memory, so slots
		// survive. Only sbrk writes $v0: its result is the old program
		// break, somewhere in the heap region (AssumptionsNote: the
		// break never wraps). Any other exact code leaves $v0 as the
		// code itself; an unknown code gets the conservative join.
		switch {
		case env != nil && st.R[isa.V0].IsExact() && st.R[isa.V0].Ones == sysSbrk:
			set(isa.V0, Unknown, IvRange(env.stackLo, ^uint32(0)))
		case env != nil && st.R[isa.V0].IsExact():
			// exit/print: $v0 unchanged.
		default:
			set(isa.V0, Unknown, IvTop)
		}
	case isa.MFC1:
		set(in.Rd, Unknown, IvTop)
	default:
		if in.Op.IsMem() {
			addrK, addrIV := effAddrOf(st, in)
			if in.Op.IsLoad() {
				if !in.Op.FPDest() {
					k, iv := Unknown, IvTop
					if env != nil {
						if f, ok := env.loadFact(st, in, addrK); ok {
							k, iv = f.K, f.IV
						}
					}
					set(in.Rd, k, iv)
				}
			} else {
				if env != nil {
					env.storeUpdate(st, in, pc, addrK, addrIV)
				} else {
					st.dropAllSlots()
				}
			}
			if in.Op.Mode() == isa.AMPost {
				set(in.Rs, st.R[in.Rs].Add(Exact(imm)), st.IV[in.Rs].Add(IvExact(imm)))
			}
		}
	}
	st.SetReg(isa.Zero, Exact(0))
	retaint(st, in, srcStackish, env)
}

// sysSbrk mirrors emu.SysSbrk; staticfac models the syscall boundary
// itself rather than importing the emulator.
const sysSbrk = 9

// stackish reports whether register r may hold a stack-derived pointer:
// either it carries the Deriv taint, or (with a memory environment to
// name the stack region) it holds an exact stack address.
func stackish(st *State, r isa.Reg, env *memEnv) bool {
	if st.Deriv&(1<<uint(r)) != 0 {
		return true
	}
	return env != nil && st.R[r].IsExact() && st.R[r].Ones >= env.stackLo
}

// retaint recomputes the Deriv taint of every register the instruction
// defined. A result is tainted iff some source was stack-derived and the
// result is neither exact (escape scans see exact values directly) nor
// provably below the stack region. Results that come from memory, the FP
// file, or a syscall are never tainted — a stack pointer reaching any of
// those already escaped on the way in.
func retaint(st *State, in isa.Inst, srcStackish bool, env *memEnv) {
	var dbuf [2]uint8
	defs := in.Defs(dbuf[:0])
	if len(defs) == 0 {
		return
	}
	fromOutside := in.Op.IsLoad() || in.Op == isa.MFC1 || in.Op == isa.SYSCALL ||
		in.Op == isa.LUI || in.Op == isa.JAL || in.Op == isa.JALR
	for _, d := range defs {
		if d >= isa.NumRegs {
			continue
		}
		r := isa.Reg(d)
		bit := uint32(1) << uint(r)
		// A post-increment base update is an arithmetic def even though
		// the op is a load: only the destination register came from
		// memory.
		outside := fromOutside && !(in.Op.Mode() == isa.AMPost && r == in.Rs)
		if outside || !srcStackish || st.R[r].IsExact() || belowStack(st, r, env) {
			st.Deriv &^= bit
		} else {
			st.Deriv |= bit
		}
	}
}

// belowStack reports whether r's value range provably ends below the
// stack region (so it cannot be a usable stack pointer).
func belowStack(st *State, r isa.Reg, env *memEnv) bool {
	return env != nil && st.IV[r].Hi() < env.stackLo
}
