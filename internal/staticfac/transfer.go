package staticfac

import "repro/internal/isa"

// State abstracts the integer register file as a reduced product of two
// domains per register: known bits (R) and an unsigned value range (IV).
// FP registers and the FP condition flag never feed address computation
// and are not tracked. Every write goes through both domains and clamps
// the interval to the KB-consistent range, so the product never drifts
// apart; the reverse reduction (intervals sharpening KB) happens once per
// site at classification time (KB.Refine).
type State struct {
	R  [isa.NumRegs]KB
	IV [isa.NumRegs]Interval
}

// SetReg writes one register in both domains, deriving the interval from
// the known bits. Use it wherever only a KB fact is available (entry
// hypotheses, tests).
func (st *State) SetReg(r isa.Reg, k KB) {
	st.R[r] = k
	st.IV[r] = k.Range()
}

// JoinState merges two register states pointwise in both domains.
func JoinState(a, b State) State {
	var out State
	for i := range out.R {
		out.R[i] = a.R[i].Join(b.R[i])
		out.IV[i] = a.IV[i].Join(b.IV[i])
	}
	return out
}

// WidenState accelerates an ascending join chain: the KB half converges on
// its own (each join only clears bits), so only the intervals widen,
// snapping to the program's comparison constants (ts, ascending).
func WidenState(prev, next State, ts []uint32) State {
	for i := range next.IV {
		next.IV[i] = prev.IV[i].WidenTo(next.IV[i], ts)
	}
	return next
}

// Step applies the abstract transfer function of one instruction to the
// register state. It mirrors the functional emulator's integer semantics
// exactly (internal/emu): immediates are the sign-extended int32 stored by
// the decoder, logical immediates use the same uint32(Imm) conversion, and
// shift amounts are masked to 5 bits. Operations whose results the lattice
// cannot track (multiplies, divides, loads, FP moves, syscall results)
// clobber their destination to Unknown. Control transfers only write their
// link register; the CFG layer handles the PC. Interval arithmetic runs
// beside the known-bits transfer where it can beat the KB-derived range
// (add/sub chains, shifts, masked upper bounds); everywhere else the
// destination interval falls back to the range the KB result implies.
func Step(st *State, in isa.Inst, pc uint32) {
	set := func(r isa.Reg, v KB, iv Interval) {
		if r != isa.Zero {
			st.R[r] = v
			st.IV[r] = iv.ReduceKB(v)
		}
	}
	imm := uint32(in.Imm) // sign-extended for ADDI, raw low 16 reinterpreted for logicals
	switch in.Op {
	case isa.ADD:
		set(in.Rd, st.R[in.Rs].Add(st.R[in.Rt]), st.IV[in.Rs].Add(st.IV[in.Rt]))
	case isa.SUB:
		set(in.Rd, st.R[in.Rs].Sub(st.R[in.Rt]), st.IV[in.Rs].Sub(st.IV[in.Rt]))
	case isa.MUL, isa.DIV, isa.DIVU, isa.REM, isa.REMU:
		set(in.Rd, Unknown, IvTop)
	case isa.AND:
		set(in.Rd, st.R[in.Rs].And(st.R[in.Rt]), st.IV[in.Rs].AndUpper(st.IV[in.Rt]))
	case isa.OR:
		set(in.Rd, st.R[in.Rs].Or(st.R[in.Rt]), IvTop)
	case isa.XOR:
		set(in.Rd, st.R[in.Rs].Xor(st.R[in.Rt]), IvTop)
	case isa.NOR:
		set(in.Rd, st.R[in.Rs].Nor(st.R[in.Rt]), IvTop)
	case isa.SLT, isa.SLTU, isa.SLTI, isa.SLTIU:
		set(in.Rd, Bool01(), IvTop)
	case isa.SLLV:
		if n, ok := st.R[in.Rt].LowKnown(5); ok {
			set(in.Rd, st.R[in.Rs].Shl(uint(n)), st.IV[in.Rs].Shl(uint(n)))
		} else {
			set(in.Rd, Unknown, IvTop)
		}
	case isa.SRLV:
		if n, ok := st.R[in.Rt].LowKnown(5); ok {
			set(in.Rd, st.R[in.Rs].Shr(uint(n)), st.IV[in.Rs].Shr(uint(n)))
		} else {
			set(in.Rd, Unknown, IvTop)
		}
	case isa.SRAV:
		if n, ok := st.R[in.Rt].LowKnown(5); ok {
			set(in.Rd, st.R[in.Rs].Sar(uint(n)), st.IV[in.Rs].Sar(uint(n)))
		} else {
			set(in.Rd, Unknown, IvTop)
		}
	case isa.ADDI:
		set(in.Rd, st.R[in.Rs].Add(Exact(imm)), st.IV[in.Rs].Add(IvExact(imm)))
	case isa.ANDI:
		set(in.Rd, st.R[in.Rs].And(Exact(imm)), st.IV[in.Rs].AndUpper(IvExact(imm)))
	case isa.ORI:
		set(in.Rd, st.R[in.Rs].Or(Exact(imm)), IvTop)
	case isa.XORI:
		set(in.Rd, st.R[in.Rs].Xor(Exact(imm)), IvTop)
	case isa.SLL:
		set(in.Rd, st.R[in.Rs].Shl(uint(in.Imm&31)), st.IV[in.Rs].Shl(uint(in.Imm&31)))
	case isa.SRL:
		set(in.Rd, st.R[in.Rs].Shr(uint(in.Imm&31)), st.IV[in.Rs].Shr(uint(in.Imm&31)))
	case isa.SRA:
		set(in.Rd, st.R[in.Rs].Sar(uint(in.Imm&31)), st.IV[in.Rs].Sar(uint(in.Imm&31)))
	case isa.LUI:
		set(in.Rd, Exact(imm<<16), IvTop)
	case isa.JAL:
		set(isa.RA, Exact(pc+isa.InstBytes), IvTop)
	case isa.JALR:
		set(in.Rd, Exact(pc+isa.InstBytes), IvTop)
	case isa.SYSCALL:
		set(isa.V0, Unknown, IvTop) // sbrk result; exit never returns
	case isa.MFC1:
		set(in.Rd, Unknown, IvTop)
	default:
		if in.Op.IsMem() {
			if in.Op.IsLoad() && !in.Op.FPDest() {
				set(in.Rd, Unknown, IvTop)
			}
			if in.Op.Mode() == isa.AMPost {
				set(in.Rs, st.R[in.Rs].Add(Exact(imm)), st.IV[in.Rs].Add(IvExact(imm)))
			}
		}
	}
	st.SetReg(isa.Zero, Exact(0))
}
