package staticfac

import "repro/internal/isa"

// State abstracts the integer register file: one known-bits value per
// architectural register. FP registers and the FP condition flag never feed
// address computation and are not tracked.
type State [isa.NumRegs]KB

// JoinState merges two register states pointwise.
func JoinState(a, b State) State {
	var out State
	for i := range out {
		out[i] = a[i].Join(b[i])
	}
	return out
}

// Step applies the abstract transfer function of one instruction to the
// register state. It mirrors the functional emulator's integer semantics
// exactly (internal/emu): immediates are the sign-extended int32 stored by
// the decoder, logical immediates use the same uint32(Imm) conversion, and
// shift amounts are masked to 5 bits. Operations whose results the lattice
// cannot track (multiplies, divides, loads, FP moves, syscall results)
// clobber their destination to Unknown. Control transfers only write their
// link register; the CFG layer handles the PC.
func Step(st *State, in isa.Inst, pc uint32) {
	set := func(r isa.Reg, v KB) {
		if r != isa.Zero {
			st[r] = v
		}
	}
	imm := uint32(in.Imm) // sign-extended for ADDI, raw low 16 reinterpreted for logicals
	switch in.Op {
	case isa.ADD:
		set(in.Rd, st[in.Rs].Add(st[in.Rt]))
	case isa.SUB:
		set(in.Rd, st[in.Rs].Sub(st[in.Rt]))
	case isa.MUL, isa.DIV, isa.DIVU, isa.REM, isa.REMU:
		set(in.Rd, Unknown)
	case isa.AND:
		set(in.Rd, st[in.Rs].And(st[in.Rt]))
	case isa.OR:
		set(in.Rd, st[in.Rs].Or(st[in.Rt]))
	case isa.XOR:
		set(in.Rd, st[in.Rs].Xor(st[in.Rt]))
	case isa.NOR:
		set(in.Rd, st[in.Rs].Nor(st[in.Rt]))
	case isa.SLT, isa.SLTU, isa.SLTI, isa.SLTIU:
		set(in.Rd, Bool01())
	case isa.SLLV:
		if n, ok := st[in.Rt].LowKnown(5); ok {
			set(in.Rd, st[in.Rs].Shl(uint(n)))
		} else {
			set(in.Rd, Unknown)
		}
	case isa.SRLV:
		if n, ok := st[in.Rt].LowKnown(5); ok {
			set(in.Rd, st[in.Rs].Shr(uint(n)))
		} else {
			set(in.Rd, Unknown)
		}
	case isa.SRAV:
		if n, ok := st[in.Rt].LowKnown(5); ok {
			set(in.Rd, st[in.Rs].Sar(uint(n)))
		} else {
			set(in.Rd, Unknown)
		}
	case isa.ADDI:
		set(in.Rd, st[in.Rs].Add(Exact(imm)))
	case isa.ANDI:
		set(in.Rd, st[in.Rs].And(Exact(imm)))
	case isa.ORI:
		set(in.Rd, st[in.Rs].Or(Exact(imm)))
	case isa.XORI:
		set(in.Rd, st[in.Rs].Xor(Exact(imm)))
	case isa.SLL:
		set(in.Rd, st[in.Rs].Shl(uint(in.Imm&31)))
	case isa.SRL:
		set(in.Rd, st[in.Rs].Shr(uint(in.Imm&31)))
	case isa.SRA:
		set(in.Rd, st[in.Rs].Sar(uint(in.Imm&31)))
	case isa.LUI:
		set(in.Rd, Exact(imm<<16))
	case isa.JAL:
		set(isa.RA, Exact(pc+isa.InstBytes))
	case isa.JALR:
		set(in.Rd, Exact(pc+isa.InstBytes))
	case isa.SYSCALL:
		set(isa.V0, Unknown) // sbrk result; exit never returns
	case isa.MFC1:
		set(in.Rd, Unknown)
	default:
		if in.Op.IsMem() {
			if in.Op.IsLoad() && !in.Op.FPDest() {
				set(in.Rd, Unknown)
			}
			if in.Op.Mode() == isa.AMPost {
				set(in.Rs, st[in.Rs].Add(Exact(imm)))
			}
		}
	}
	st[isa.Zero] = Exact(0)
}
