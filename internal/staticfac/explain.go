package staticfac

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// explain.go — blame chains: given a site, walk the converged dataflow
// backward through reaching definitions and report *why* each operand is
// imprecise, down to a root cause the analysis can name (a poisoned
// global cell with its poisoning store, an escaped stack slot with the
// address-taking instruction, an untracked syscall or multiply result, a
// function-entry join). The walk replays the final fixpoint with
// recording widened to every instruction, so it sees exactly the states
// the verdicts were computed from; output is deterministic (index-order
// scans, address-sorted symbol choice) so it can be golden-tested.

// explainDepth caps the def-chain recursion; minic's operand chains are
// short and a deeper chain than this reads as noise anyway.
const explainDepth = 16

// Explain renders the blame chain for the memory-access site at pc. The
// bool is false when pc is not a memory instruction of the program.
func (a *Analysis) Explain(pc uint32) (string, bool) {
	site := a.SiteAt(pc)
	if site == nil {
		return "", false
	}
	a.ensureReplay()
	var b strings.Builder
	fmt.Fprintf(&b, "%#08x %s  [%s]  verdict=%s\n", site.PC, site.Inst.String(), site.Func, site.Verdict)
	if site.CanFail != 0 {
		fmt.Fprintf(&b, "  can-fail: %s\n", site.CanFail.String())
	}
	fmt.Fprintf(&b, "  base   %s = %s\n", regName(site.Inst.BaseReg()), site.Base)
	if site.Mode == isa.AMReg {
		fmt.Fprintf(&b, "  offset %s = %s\n", regName(site.Inst.IndexReg()), site.Offset)
	} else {
		fmt.Fprintf(&b, "  offset %s\n", site.Offset)
	}
	if site.CellKind != CellNone {
		fmt.Fprintf(&b, "  cell   %s %#08x%s = %s\n", site.CellKind, site.CellAddr,
			a.az.dataSymSuffix(site.CellAddr), site.Val)
	}
	switch {
	case !site.Reached:
		b.WriteString("  site is dead: the dataflow never reaches it; the verdict uses the\n" +
			"  flow-insensitive invariant alone\n")
	case site.Verdict != VerdictUnknown:
		fmt.Fprintf(&b, "  classified: the operand facts above decide the predictor outcome\n")
	default:
		ex := &explainer{a: a, b: &b, seen: make(map[int64]bool)}
		idx := int((pc - a.az.p.TextBase) / isa.InstBytes)
		if !site.Base.IsExact() {
			ex.explainReg(idx, site.Inst.BaseReg(), 1)
		}
		if site.Mode == isa.AMReg && !site.Offset.IsExact() {
			ex.explainReg(idx, site.Inst.IndexReg(), 1)
		}
	}
	return b.String(), true
}

// FirstUnknown returns the pc of the first (lowest-address) reached site
// with an unknown verdict, for `faclint -explain-first`.
func (a *Analysis) FirstUnknown() (uint32, bool) {
	for i := range a.Sites {
		if s := &a.Sites[i]; s.Verdict == VerdictUnknown && s.Reached {
			return s.PC, true
		}
	}
	return 0, false
}

// ensureReplay rebuilds the final dataflow pass with recording widened
// from memory sites to every instruction, memoized on the Analysis.
func (a *Analysis) ensureReplay() {
	if a.preStates != nil || a.az == nil || len(a.az.blocks) == 0 {
		return
	}
	az := a.az
	az.recordAll = true
	a.preStates = az.flow(az.espFinal, true).sites
	az.recordAll = false
}

type explainer struct {
	a    *Analysis
	b    *strings.Builder
	seen map[int64]bool
}

// explainReg locates the reaching definition of r before instruction
// useIdx and prints one blame line for it, recursing into the definition's
// own imprecise sources. The reaching definition is approximated
// syntactically but deterministically: the nearest reached definition of r
// above the use inside the same function, else the nearest below (a
// loop-carried def), else the function-entry hypothesis.
func (ex *explainer) explainReg(useIdx int, r isa.Reg, depth int) {
	if r == isa.Zero || depth > explainDepth {
		return
	}
	key := int64(useIdx)<<8 | int64(r)
	if ex.seen[key] {
		fmt.Fprintf(ex.b, "%s%s feeds back into the chain above: the imprecision is loop-carried\n",
			strings.Repeat("  ", depth), regName(r))
		return
	}
	ex.seen[key] = true
	az := ex.a.az
	pad := strings.Repeat("  ", depth)

	cands, hasAbove := ex.findDefs(useIdx, r)
	fn := az.p.FuncName(az.pcOf(useIdx))
	// With no definition above the use, the function-entry hypothesis is a
	// reaching definition too (alongside any loop-carried def below); name
	// it when it is itself imprecise — for $sp in a recursive function this
	// is the true root cause.
	if !hasAbove {
		if f, ok := az.espFinal[funcEntryPC(az, useIdx)]; ok && (r == isa.SP || (r >= isa.A0 && r <= isa.A0+3)) {
			k, iv := f.sp, IvTop
			if r != isa.SP {
				k, iv = f.a[r-isa.A0], f.aIV[r-isa.A0]
			}
			if !k.IsExact() || len(cands) == 0 {
				fmt.Fprintf(ex.b, "%s%s carries the entry hypothesis of %s (joined over every call): %s %s\n",
					pad, regName(r), fn, k, iv)
				if len(cands) == 0 {
					return
				}
			}
		}
	}
	if len(cands) == 0 {
		fmt.Fprintf(ex.b, "%s%s has no definition inside %s: it carries the flow-insensitive invariant\n",
			pad, regName(r), fn)
		return
	}

	// Explain the candidate definitions whose result is itself imprecise;
	// when every textual definition produces an exact value, the
	// imprecision can only enter where control flow joins them.
	any := false
	for _, defIdx := range cands {
		if ex.defImprecise(defIdx, r) {
			any = true
			ex.explainDef(defIdx, r, depth)
		}
	}
	if !any {
		fmt.Fprintf(ex.b, "%s%s is exact at each definition (e.g. %#08x %s); the imprecision enters where control flow joins them\n",
			pad, regName(r), az.pcOf(cands[0]), az.p.Insts[cands[0]].String())
	}
}

// defImprecise reports whether the definition of r at defIdx yields an
// inexact known-bits value under its recorded pre-state.
func (ex *explainer) defImprecise(defIdx int, r isa.Reg) bool {
	az := ex.a.az
	saved := az.env.trackEscapes
	az.env.trackEscapes = false
	defer func() { az.env.trackEscapes = saved }()
	post := ex.a.preStates[defIdx]
	step(&post, az.p.Insts[defIdx], az.pcOf(defIdx), az.env)
	return !post.R[r].IsExact()
}

// explainDef prints one blame line for the definition at defIdx and
// recurses into its own imprecise sources.
func (ex *explainer) explainDef(defIdx int, r isa.Reg, depth int) {
	az := ex.a.az
	pad := strings.Repeat("  ", depth)
	in := az.p.Insts[defIdx]
	st := ex.a.preStates[defIdx]
	fmt.Fprintf(ex.b, "%s%s defined at %#08x %s", pad, regName(r), az.pcOf(defIdx), in.String())
	switch {
	case in.Op.IsLoad():
		ex.explainLoad(defIdx, in, &st, depth)
	case in.Op == isa.SYSCALL:
		fmt.Fprintf(ex.b, ": syscall results are untracked\n")
	case in.Op == isa.JAL || in.Op == isa.JALR:
		fmt.Fprintf(ex.b, ": clobbered by the call (only $sp and $s0-$s7 survive)\n")
	default:
		ex.b.WriteByte('\n')
		srcs := ex.impreciseUses(in, &st)
		if len(srcs) == 0 {
			fmt.Fprintf(ex.b, "%s  the imprecision is intrinsic to %s under its exact inputs\n", pad, in.Op)
			return
		}
		for _, s := range srcs {
			ex.explainReg(defIdx, s, depth+1)
		}
	}
}

// explainLoad names the memory-domain reason a load's result is imprecise.
func (ex *explainer) explainLoad(defIdx int, in isa.Inst, st *State, depth int) {
	az := ex.a.az
	addrK, _ := effAddrOf(st, in)
	if !addrK.IsExact() {
		fmt.Fprintf(ex.b, ": load address is imprecise (%s)\n", addrK)
		ex.explainReg(defIdx, in.BaseReg(), depth+1)
		if in.Op.Mode() == isa.AMReg {
			ex.explainReg(defIdx, in.IndexReg(), depth+1)
		}
		return
	}
	addr := addrK.Ones
	size := uint32(in.Op.MemSize())
	switch {
	case az.env.globalCellAddr(addr, size):
		f := az.env.cell(addr)
		sym := az.dataSymSuffix(addr)
		switch {
		case f.poisoned:
			blame := "an unreachable image-only fact"
			if f.blamePC != 0 {
				bin, _ := az.p.InstAt(f.blamePC)
				blame = fmt.Sprintf("the store at %#08x %s (address not provably disjoint)", f.blamePC, bin.String())
			}
			fmt.Fprintf(ex.b, ": global cell %#08x%s is poisoned by %s\n", addr, sym, blame)
		case len(f.stores) > 0:
			pcs := make([]string, len(f.stores))
			for i, pc := range f.stores {
				pcs[i] = fmt.Sprintf("%#08x", pc)
			}
			fmt.Fprintf(ex.b, ": global cell %#08x%s = %s, joined from the data image and stores at %s\n",
				addr, sym, f.val, strings.Join(pcs, ", "))
		default:
			fmt.Fprintf(ex.b, ": global cell %#08x%s = %s from the data image alone\n", addr, sym, f.val)
		}
	case az.env.stackSlotAddr(addr, size):
		if s, ok := st.slot(addr); ok {
			fmt.Fprintf(ex.b, ": tracked stack slot %#08x = %s, written at %#08x\n",
				addr, MemVal{K: s.K, IV: s.IV}, s.Def)
			if i := az.instIdx(s.Def); i >= 0 {
				din := az.p.Insts[i]
				if din.Op.IsStore() && !din.Op.FPSrc() {
					ex.explainReg(i, din.StoreDataReg(), depth+1)
				}
			}
			return
		}
		if pc, ok := az.env.esc.blame(addr); ok {
			fmt.Fprintf(ex.b, ": stack slot %#08x is untracked — its address escaped at %#08x, so callees may write it\n",
				addr, pc)
			return
		}
		fmt.Fprintf(ex.b, ": stack slot %#08x is untracked (clobbered by a call, a may-alias store, or a control-flow join)\n", addr)
	default:
		fmt.Fprintf(ex.b, ": address %#08x is outside the tracked data and stack regions\n", addr)
	}
}

// impreciseUses returns the integer source registers of in whose
// known-bits value in st is inexact, in register order.
func (ex *explainer) impreciseUses(in isa.Inst, st *State) []isa.Reg {
	var buf []uint8
	buf = in.Uses(buf)
	var out []isa.Reg
	for _, u := range buf {
		if u >= isa.NumRegs {
			continue
		}
		r := isa.Reg(u)
		if r == isa.Zero || st.R[r].IsExact() {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// findDefs returns the nearest reached definition of r above useIdx
// inside the same function and the nearest below it (a loop-carried def
// observed through the back edge), in that order — the reaching set a
// use inside a loop actually joins, approximated syntactically but
// deterministically. hasAbove reports whether a backward definition was
// found; without one the function-entry state also reaches the use.
func (ex *explainer) findDefs(useIdx int, r isa.Reg) (_ []int, hasAbove bool) {
	az := ex.a.az
	fn := az.p.FuncName(az.pcOf(useIdx))
	var defs []uint8
	definesR := func(i int) bool {
		defs = az.p.Insts[i].Defs(defs[:0])
		for _, d := range defs {
			if d < isa.NumRegs && isa.Reg(d) == r {
				return true
			}
		}
		return false
	}
	reached := func(i int) bool { _, ok := ex.a.preStates[i]; return ok }
	var out []int
	for i := useIdx - 1; i >= 0 && az.p.FuncName(az.pcOf(i)) == fn; i-- {
		if reached(i) && definesR(i) {
			out = append(out, i)
			hasAbove = true
			break
		}
	}
	for i := useIdx + 1; i < len(az.p.Insts) && az.p.FuncName(az.pcOf(i)) == fn; i++ {
		if reached(i) && definesR(i) {
			out = append(out, i)
			break
		}
	}
	return out, hasAbove
}

// funcEntryPC returns the address of the function symbol covering idx.
func funcEntryPC(az *analyzer, idx int) uint32 {
	pc := az.pcOf(idx)
	fn := az.p.FuncName(pc)
	best := az.p.TextBase
	for _, s := range az.p.TextSyms() {
		if s.Name == fn && s.Addr <= pc && s.Addr >= best {
			best = s.Addr
		}
	}
	return best
}

// instIdx maps a text address to its instruction index, -1 when outside.
func (az *analyzer) instIdx(pc uint32) int {
	if pc < az.p.TextBase || pc >= az.p.TextEnd() || pc&3 != 0 {
		return -1
	}
	return int((pc - az.p.TextBase) / isa.InstBytes)
}

// dataSymSuffix renders " (sym+off)" for the nearest data symbol at or
// below addr, or "" when none covers it.
func (az *analyzer) dataSymSuffix(addr uint32) string {
	best, bestAddr, found := "", uint32(0), false
	for _, n := range az.p.SymbolNames() {
		a := az.p.Symbols[n]
		if len(n) > 0 && n[0] == '.' {
			continue
		}
		if a >= az.env.dataLo && a < az.env.dataHi && a <= addr && (!found || a > bestAddr) {
			best, bestAddr, found = n, a, true
		}
	}
	if !found {
		return ""
	}
	if off := addr - bestAddr; off != 0 {
		return fmt.Sprintf(" (%s+%d)", best, off)
	}
	return fmt.Sprintf(" (%s)", best)
}

func regName(r isa.Reg) string { return r.String() }
