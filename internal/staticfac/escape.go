package staticfac

import "repro/internal/isa"

// Address-taken escape analysis for the stack-slot domain.
//
// A stack slot's fact is only trustworthy while every write to it is a
// store the analysis sees with an exact address. The moment a slot's
// address leaks to a register-computed pointer — passed to a callee in a
// register, or stored into memory — writes can reach it from code the
// flow-sensitive pass does not attribute to that address, so the fact
// must be dropped at every call boundary from then on.
//
// Escapes are detected at two kinds of program points, on reached code
// only:
//
//   - calls and computed jumps (jal/jalr, jr to a non-return target):
//     every integer register except $sp and $zero is scanned. $sp itself
//     is exempt because the callee deriving its own frame from it is the
//     ABI; the call-clobber rule in returnState already confines callees
//     to addresses below the caller's $sp.
//   - stores: the data register is scanned (a pointer written to memory
//     can be reloaded anywhere).
//
// A register leaks a stack address if it holds an exact value inside the
// stack region, or if it carries the Deriv taint — an inexact value
// derived from a stack pointer (see State.Deriv). A tainted leak could
// be any slot, so it degrades to escape-all.
//
// The escape set is monotone across the whole analysis (all rounds of
// the outer memory fixpoint): once an address is out, it stays out.
// An escaped address v grants the callee access to every slot at or
// above v — passing &a[0] exposes the whole array, and anything the
// callee can reach upward from it. Accesses *below* an escaped address
// are out of contract (AssumptionsNote: pointers only reach their own
// object and upward within the frame), mirroring what C allows.
type escapeSet struct {
	addrs map[uint32]uint32 // word-aligned escaped addr -> pc of the first taking instruction
	min   uint32            // smallest escaped addr (meaningful when len(addrs) > 0)
	all   bool              // a tainted (inexact stack-derived) value leaked
	allPC uint32            // pc of the leak that set all
}

// maxEscapes bounds the tracked address set; beyond it the analysis
// degrades to escape-all rather than growing without bound.
const maxEscapes = 1024

// escape records addr as escaped at pc; reports whether the set grew.
func (s *escapeSet) escape(addr, pc uint32) bool {
	if s.all {
		return false
	}
	if s.addrs == nil {
		s.addrs = make(map[uint32]uint32)
	}
	if _, ok := s.addrs[addr]; ok {
		return false
	}
	if len(s.addrs) >= maxEscapes {
		return s.escapeAll(pc)
	}
	s.addrs[addr] = pc
	if len(s.addrs) == 1 || addr < s.min {
		s.min = addr
	}
	return true
}

// escapeAll degrades the whole stack to escaped; reports whether that is new.
func (s *escapeSet) escapeAll(pc uint32) bool {
	if s.all {
		return false
	}
	s.all = true
	s.allPC = pc
	return true
}

// covers reports whether a slot at addr may be written through escaped
// pointers (and must therefore be dropped across calls).
func (s *escapeSet) covers(addr uint32) bool {
	return s.all || (len(s.addrs) > 0 && addr >= s.min)
}

// blame returns the pc of the instruction responsible for addr being
// escaped, for -explain chains.
func (s *escapeSet) blame(addr uint32) (uint32, bool) {
	if pc, ok := s.addrs[addr]; ok {
		return pc, true
	}
	if s.all {
		return s.allPC, true
	}
	// Covered by a lower escaped address: report the lowest one at or
	// below addr deterministically.
	bestAddr, bestPC, found := uint32(0), uint32(0), false
	for a, pc := range s.addrs {
		if a <= addr && (!found || a < bestAddr) {
			bestAddr, bestPC, found = a, pc, true
		}
	}
	return bestPC, found
}

// noteReg records any stack-address leak through register r at pc.
func (m *memEnv) noteReg(st *State, r isa.Reg, pc uint32) {
	if !m.trackEscapes {
		return
	}
	if st.Deriv&(1<<uint(r)) != 0 {
		if m.esc.escapeAll(pc) {
			m.escChanged = true
		}
		return
	}
	if k := st.R[r]; k.IsExact() && k.Ones >= m.stackLo {
		if m.esc.escape(k.Ones&^3, pc) {
			m.escChanged = true
		}
	}
}

// callScan applies noteReg to every register a callee could receive.
func (m *memEnv) callScan(st *State, pc uint32) {
	if !m.trackEscapes {
		return
	}
	for r := 1; r < isa.NumRegs; r++ {
		if r == int(isa.SP) {
			continue
		}
		m.noteReg(st, isa.Reg(r), pc)
	}
}
