package predict

import (
	"math/rand"
	"testing"

	"repro/internal/fac"
	"repro/internal/staticfac"
)

func testGeom(t *testing.T) fac.Config {
	t.Helper()
	g := fac.Config{BlockBits: 5, SetBits: 14}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFACMachineBitExact: the wrapped FAC machine is the algebra of
// internal/fac, prediction for prediction — same address, same failure
// signals, always speculating — over a random operand sweep. This is the
// property the whole refactor rests on.
func TestFACMachineBitExact(t *testing.T) {
	g := testGeom(t)
	m, err := New("fac", Options{Geom: g})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		base, ofs := rng.Uint32(), rng.Uint32()
		if i%3 == 0 {
			ofs = uint32(int32(int16(ofs))) // sign-extended 16-bit constant shape
		}
		isReg := i%2 == 0
		want := g.Predict(base, ofs, isReg)
		got := m.Predict(uint32(0x400000+4*i), base, ofs, isReg)
		if !got.Spec || !got.Algebraic {
			t.Fatalf("fac machine must always speculate algebraically, got %+v", got)
		}
		if got.Addr != want.Predicted || got.Fail != want.Failure {
			t.Fatalf("predict(%#x,%#x,%v): got (%#x,%v) want (%#x,%v)",
				base, ofs, isReg, got.Addr, got.Fail, want.Predicted, want.Failure)
		}
		if (got.Fail == 0) != want.OK {
			t.Fatalf("Fail==0 must coincide with fac OK")
		}
	}
}

// TestPCAXLastAddress: cold entries decline, trained entries predict the
// last observed address, and a PC whose address changes every visit is
// always wrong — the alternating-base pattern the difftest seeds encode.
func TestPCAXLastAddress(t *testing.T) {
	m, err := New("pcax", Options{Entries: 64, TagBits: FullTags})
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400100)
	if r := m.Predict(pc, 0, 0, false); r.Spec {
		t.Fatalf("cold entry predicted: %+v", r)
	}
	m.Train(pc, 0x1000)
	r := m.Predict(pc, 0, 0, false)
	if !r.Spec || r.Addr != 0x1000 || r.Algebraic {
		t.Fatalf("after training want non-algebraic guess of 0x1000, got %+v", r)
	}
	if r.Fail != fac.Failure(1)<<0 {
		t.Fatalf("pcax must charge slot 0, got %v", r.Fail)
	}
	// Same PC, different address each visit: the guess is always stale.
	wrong := 0
	addr := uint32(0x2000)
	for i := 0; i < 16; i++ {
		r := m.Predict(pc, 0, 0, false)
		if r.Spec && r.Addr != addr {
			wrong++
		}
		m.Train(pc, addr)
		addr += 0x40
	}
	if wrong != 16 {
		t.Fatalf("alternating addresses should defeat pcax every visit, wrong=%d", wrong)
	}
}

// TestPCAXTagConflict: two PCs mapping to the same entry with different
// tags evict each other, so each predicts at most its own history.
func TestPCAXTagConflict(t *testing.T) {
	m, err := New("pcax", Options{Entries: 4, TagBits: FullTags})
	if err != nil {
		t.Fatal(err)
	}
	a, b := uint32(0x400000), uint32(0x400000+4*4) // same index, different tag
	m.Train(a, 0x1000)
	if r := m.Predict(b, 0, 0, false); r.Spec {
		t.Fatalf("tag conflict must decline, got %+v", r)
	}
	m.Train(b, 0x2000)
	if r := m.Predict(a, 0, 0, false); r.Spec {
		t.Fatalf("evicted entry must decline, got %+v", r)
	}
	if r := m.Predict(b, 0, 0, false); !r.Spec || r.Addr != 0x2000 {
		t.Fatalf("resident entry must predict its own history, got %+v", r)
	}
}

// TestStrideWalk: a constant-stride walk trains to confident stride
// predictions charged to the stridebreak slot; breaking the stride is
// wrong exactly once per break.
func TestStrideWalk(t *testing.T) {
	m, err := New("stride", Options{Entries: 64})
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400200)
	addr := uint32(0x10000000)
	for i := 0; i < 4; i++ { // warm: alloc + two stride confirms
		m.Train(pc, addr)
		addr += 8
	}
	for i := 0; i < 8; i++ {
		r := m.Predict(pc, 0, 0, false)
		if !r.Spec || r.Addr != addr {
			t.Fatalf("step %d: want confident stride guess %#x, got %+v", i, addr, r)
		}
		if r.Fail != fac.Failure(1)<<1 {
			t.Fatalf("stride-path guesses charge slot 1 (stridebreak), got %v", r.Fail)
		}
		m.Train(pc, addr)
		addr += 8
	}
	// Pointer-chase shape: addresses with no usable stride are mostly wrong.
	rng := rand.New(rand.NewSource(2))
	chasePC := uint32(0x400300)
	right, total := 0, 0
	for i := 0; i < 64; i++ {
		next := rng.Uint32() &^ 3
		if r := m.Predict(chasePC, 0, 0, false); r.Spec {
			total++
			if r.Addr == next {
				right++
			}
		}
		m.Train(chasePC, next)
	}
	if total == 0 || right > total/4 {
		t.Fatalf("random chase should defeat stride prediction: %d/%d correct", right, total)
	}
}

// TestSelectiveGating: proven-failing sites never speculate; all other
// verdicts predict exactly as the wrapped FAC machine.
func TestSelectiveGating(t *testing.T) {
	g := testGeom(t)
	base := uint32(0x400000)
	st := &StaticTable{
		textBase: base,
		verdicts: []staticfac.Verdict{
			staticfac.VerdictPredictable,
			staticfac.VerdictFailing,
			staticfac.VerdictUnknown,
		},
	}
	m, err := New("selective", Options{Geom: g, Static: st})
	if err != nil {
		t.Fatal(err)
	}
	if !m.OperandBased() || m.Name() != "selective" {
		t.Fatalf("selective identity wrong")
	}
	operands := func(pc uint32) Result { return m.Predict(pc, 0x7fff1234, 0x10, false) }
	if r := operands(base + 4); r.Spec {
		t.Fatalf("proven-failing site speculated: %+v", r)
	}
	want := g.Predict(0x7fff1234, 0x10, false)
	for _, pc := range []uint32{base, base + 8, base + 12, base - 4} {
		r := operands(pc) // beyond-table PCs behave as unknown
		if !r.Spec || !r.Algebraic || r.Addr != want.Predicted || r.Fail != want.Failure {
			t.Fatalf("pc %#x: want plain FAC behaviour, got %+v", pc, r)
		}
	}
	if _, err := New("selective", Options{Geom: g}); err == nil {
		t.Fatal("selective without a static table must fail construction")
	}
}

// TestRegistry: every registered name constructs (selective given a
// table), reports itself, and stays within the fixed signal-slot budget;
// SignalNamesFor matches the constructed machine.
func TestRegistry(t *testing.T) {
	g := testGeom(t)
	st := &StaticTable{textBase: 0x400000, verdicts: make([]staticfac.Verdict, 4)}
	for _, name := range Names() {
		m, err := New(name, Options{Geom: g, Static: st})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("machine %q reports name %q", name, m.Name())
		}
		sig := m.SignalNames()
		if len(sig) == 0 || len(sig) > fac.NumFailureSignals {
			t.Fatalf("machine %q has %d signals, want 1..%d", name, len(sig), fac.NumFailureSignals)
		}
		reg := SignalNamesFor(name)
		if len(reg) != len(sig) {
			t.Fatalf("SignalNamesFor(%q) disagrees with machine", name)
		}
		for i := range sig {
			if sig[i] != reg[i] {
				t.Fatalf("SignalNamesFor(%q)[%d] = %q, machine says %q", name, i, reg[i], sig[i])
			}
		}
	}
	if _, err := New("bogus", Options{}); err == nil {
		t.Fatal("unknown machine must error")
	}
	if SignalNamesFor("bogus") != nil {
		t.Fatal("unknown machine must have nil signal names")
	}
}
