//lint:hotpath Predict and Train run once per issued memory access.

package predict

import (
	"repro/internal/fac"
	"repro/internal/ltb"
)

// Table machines predict from the access's PC history rather than its
// operands, so they cover addressing modes FAC cannot (a pointer loaded
// from memory one instruction earlier) and fail on ones FAC handles
// algebraically (a cold PC, a re-based pointer). Both delegate storage to
// internal/ltb's direct-mapped tagged table; they differ only in the
// prediction policy and the signal charged on a wrong address.

// pcaxMachine is PC-indexed last-address prediction (Murthy & Sohi's
// PCAX): predict that the access at this PC touches the same address it
// touched last time. A cold or tag-conflicting entry declines to predict.
type pcaxMachine struct {
	tbl *ltb.Predictor
}

func newPCAX(o Options) *pcaxMachine {
	return &pcaxMachine{tbl: ltb.New(ltb.Config{Entries: o.entries(), TagBits: o.tagBits()})}
}

// pcaxSignals: slot 0 is charged whenever verification finds the
// last-address guess wrong.
var pcaxSignals = []string{"wrongaddr"}

func (m *pcaxMachine) Name() string          { return "pcax" }
func (m *pcaxMachine) SignalNames() []string { return pcaxSignals }
func (m *pcaxMachine) OperandBased() bool    { return false }

func (m *pcaxMachine) Predict(pc, base, ofs uint32, isRegOffset bool) Result {
	addr, _, ok := m.tbl.Lookup(pc)
	if !ok {
		return Result{}
	}
	return Result{Addr: addr, Spec: true, Fail: fac.Failure(1) << 0}
}

func (m *pcaxMachine) Train(pc, actual uint32) { m.tbl.Update(pc, actual) }

// strideMachine generalizes internal/ltb's stride policy: last address
// plus a 2-bit-confidence-guarded stride. The signal charged on a wrong
// address records which path produced the guess, so the failure breakdown
// separates "the stride broke" from "the cold last-address guess missed".
type strideMachine struct {
	tbl *ltb.Predictor
}

func newStride(o Options) *strideMachine {
	return &strideMachine{tbl: ltb.New(ltb.Config{Entries: o.entries(), Stride: true, TagBits: o.tagBits()})}
}

var strideSignals = []string{"lastaddr", "stridebreak"}

func (m *strideMachine) Name() string          { return "stride" }
func (m *strideMachine) SignalNames() []string { return strideSignals }
func (m *strideMachine) OperandBased() bool    { return false }

func (m *strideMachine) Predict(pc, base, ofs uint32, isRegOffset bool) Result {
	addr, usedStride, ok := m.tbl.Lookup(pc)
	if !ok {
		return Result{}
	}
	sig := fac.Failure(1) << 0 // lastaddr path
	if usedStride {
		sig = fac.Failure(1) << 1 // stridebreak path
	}
	return Result{Addr: addr, Spec: true, Fail: sig}
}

func (m *strideMachine) Train(pc, actual uint32) { m.tbl.Update(pc, actual) }
