// Package predict is the address-predictor zoo: pluggable machines that
// guess a memory access's effective address at issue, before the address
// adder has run, so the data cache can be probed a cycle early. The
// paper's carry-free fast address calculation (internal/fac) is one point
// in this design space; the related work contributes PC-indexed
// last-address prediction (Murthy & Sohi's PCAX) and stride prediction
// (Golden & Mudge's load target buffer, internal/ltb), and the paper's
// software/hardware hybrid becomes the `selective` machine, which consults
// internal/staticfac verdicts to speculate only where static analysis
// cannot prove failure.
//
// The pipeline calls Predict at issue with the PC and the operand values
// (base register + offset), resolves the prediction against the
// architectural effective address, and calls Train exactly once per issued
// access at EX. Per-signal failure accounting plugs into the same
// fixed-width counters obs.FACRecord uses for the FAC machine; each
// machine names its signals (SignalNames) and slot i corresponds to
// failure bit 1<<i, exactly as internal/fac numbers its four signals.
//
// docs/PREDICTORS.md describes the taxonomy and how to add a machine.
package predict

import (
	"fmt"

	"repro/internal/fac"
)

// Result is one prediction, made at issue time.
type Result struct {
	// Addr is the predicted effective address (meaningful when Spec).
	Addr uint32
	// Spec reports that the machine made a prediction at all. When false
	// the access proceeds down the ordinary non-speculative path and is
	// counted as a no-predict, not a failure — the machine declined (cold
	// table entry, tag conflict, site proven failing) rather than guessed
	// wrong.
	Spec bool
	// Fail carries per-signal failure accounting, slot-compatible with
	// internal/fac: for algebraic machines it is the exact signal set (the
	// prediction is correct iff Fail == 0); for table machines it is the
	// signal set to charge if verification finds Addr wrong.
	Fail fac.Failure
	// Algebraic distinguishes the two verification styles above: true
	// means Fail is exact at predict time (fac, selective), false means
	// the pipeline must compare Addr against the architectural effective
	// address (pcax, stride).
	Algebraic bool
}

// Predictor is one address-prediction machine. Implementations live on the
// simulator's hot path: Predict must be pure (a stalled access retries the
// same cycle-by-cycle schedule and re-calls it), must not allocate, and
// Train is called exactly once per issued memory access.
type Predictor interface {
	// Name returns the machine's registry name ("fac", "pcax", ...).
	Name() string
	// SignalNames names the failure-accounting slots this machine charges;
	// slot i corresponds to failure bit 1<<i. At most fac.NumFailureSignals
	// slots (the fixed counter width shared with obs.FACRecord).
	SignalNames() []string
	// OperandBased reports that predictions derive from the access's
	// operands (base register + offset) rather than its PC history. The
	// pipeline applies the operand-availability gates — SpeculateRegReg —
	// only to operand-based machines; a PC-indexed table needs no operands
	// and predicts regardless of addressing mode.
	OperandBased() bool
	// Predict guesses the effective address for the access at pc with the
	// given base-register value and offset. Pure: no table state changes.
	Predict(pc, base, ofs uint32, isRegOffset bool) Result
	// Train observes the architectural effective address at EX. Called
	// exactly once per issued memory access while the machine is active,
	// whether or not the access speculated.
	Train(pc, actual uint32)
}

// Options configures machine construction. Zero values select defaults.
type Options struct {
	// Geom is the cache/adder geometry (fac and selective machines).
	Geom fac.Config
	// Entries sizes the prediction table (pcax, stride); default 1024.
	Entries int
	// TagBits truncates table tags (pcax, stride); default 8, matching a
	// cheap partial-tag hardware budget. Set to FullTags for full tags.
	TagBits int
	// Static supplies baked-in staticfac verdicts (selective machine).
	Static *StaticTable
}

// FullTags requests untruncated table tags (Options.TagBits).
const FullTags = -1

// DefaultEntries and DefaultTagBits are the table-machine defaults.
const (
	DefaultEntries = 1024
	DefaultTagBits = 8
)

func (o Options) entries() int {
	if o.Entries <= 0 {
		return DefaultEntries
	}
	return o.Entries
}

func (o Options) tagBits() uint {
	switch {
	case o.TagBits == FullTags:
		return 0 // ltb convention: 0 = full tag
	case o.TagBits <= 0:
		return DefaultTagBits
	default:
		return uint(o.TagBits)
	}
}

// Names lists the registered machines in presentation order.
func Names() []string {
	return []string{"fac", "pcax", "stride", "selective"}
}

// SignalNamesFor returns the named machine's failure-accounting slot names
// without constructing it (nil for an unknown name). Serialization uses
// this to invert name-keyed failure maps back into slot-indexed counters.
func SignalNamesFor(name string) []string {
	switch name {
	case "fac", "selective":
		return fac.FailureSignalNames[:]
	case "pcax":
		return pcaxSignals
	case "stride":
		return strideSignals
	}
	return nil
}

// New constructs the named machine. The selective machine additionally
// requires Options.Static (built per linked program via BuildStaticTable);
// constructing it without one is an error so a missing bake step cannot
// silently degrade into plain FAC.
func New(name string, o Options) (Predictor, error) {
	switch name {
	case "fac":
		if err := o.Geom.Validate(); err != nil {
			return nil, err
		}
		return &facMachine{geom: o.Geom}, nil
	case "pcax":
		return newPCAX(o), nil
	case "stride":
		return newStride(o), nil
	case "selective":
		if err := o.Geom.Validate(); err != nil {
			return nil, err
		}
		if o.Static == nil {
			return nil, fmt.Errorf("predict: selective machine needs a static verdict table (predict.BuildStaticTable)")
		}
		return &selectiveMachine{geom: o.Geom, static: o.Static}, nil
	}
	return nil, fmt.Errorf("predict: unknown machine %q (have %v)", name, Names())
}
