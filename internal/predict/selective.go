//lint:hotpath VerdictAt and Predict run once per issued memory access.

package predict

import (
	"repro/internal/fac"
	"repro/internal/prog"
	"repro/internal/staticfac"
)

// StaticTable is the per-program bake the selective machine consults: one
// staticfac verdict per text word, dense-indexed by PC so the hot-path
// lookup is a shift and a bounds check rather than a map probe. It models
// the paper's software side of the hybrid — the compiler (here: the
// linker-time analysis) marks each site, and the hardware reads the mark
// out of the instruction stream for free.
type StaticTable struct {
	textBase uint32
	verdicts []staticfac.Verdict
}

// BuildStaticTable runs the static FAC-predictability analysis over the
// linked program under geometry g and bakes the verdicts into a dense
// table. Non-memory instructions hold VerdictUnknown (the selective
// machine never consults them).
func BuildStaticTable(p *prog.Program, g fac.Config) *StaticTable {
	an := staticfac.Analyze(p, g)
	t := &StaticTable{
		textBase: p.TextBase,
		verdicts: make([]staticfac.Verdict, len(p.Insts)),
	}
	for i := range an.Sites {
		s := &an.Sites[i]
		if w := (s.PC - p.TextBase) / 4; int(w) < len(t.verdicts) {
			t.verdicts[w] = s.Verdict
		}
	}
	return t
}

// VerdictAt returns the baked verdict for the instruction at pc
// (VerdictUnknown for PCs outside the text segment).
func (t *StaticTable) VerdictAt(pc uint32) staticfac.Verdict {
	w := (pc - t.textBase) / 4
	if pc < t.textBase || int(w) >= len(t.verdicts) {
		return staticfac.VerdictUnknown
	}
	return t.verdicts[w]
}

// selectiveMachine is the software/hardware hybrid the paper gestures at:
// carry-free FAC hardware, gated per-site by static analysis. Sites proven
// failing never speculate (their replay cost is avoided entirely, charged
// as a no-predict); every other site speculates exactly as plain FAC —
// proven-predictable sites can never raise a failure signal (that is what
// the proof says), so they contribute no replay accounting, and unknown
// sites keep FAC's ordinary verify-and-replay behaviour.
type selectiveMachine struct {
	geom   fac.Config
	static *StaticTable
}

func (m *selectiveMachine) Name() string          { return "selective" }
func (m *selectiveMachine) SignalNames() []string { return fac.FailureSignalNames[:] }
func (m *selectiveMachine) OperandBased() bool    { return true }

func (m *selectiveMachine) Predict(pc, base, ofs uint32, isRegOffset bool) Result {
	if m.static.VerdictAt(pc) == staticfac.VerdictFailing {
		return Result{}
	}
	r := m.geom.Predict(base, ofs, isRegOffset)
	return Result{Addr: r.Predicted, Spec: true, Fail: r.Failure, Algebraic: true}
}

func (m *selectiveMachine) Train(pc, actual uint32) {}
