//lint:hotpath Predict runs once per issued memory access.

package predict

import "repro/internal/fac"

// facMachine wraps internal/fac's carry-free adder as a Predictor. It is
// bit-exact with the pre-zoo pipeline: Predict defers entirely to
// fac.Config.Predict, every access speculates (Spec is always true), and
// the failure signals are the algebraic four the paper defines.
type facMachine struct {
	geom fac.Config
}

func (m *facMachine) Name() string          { return "fac" }
func (m *facMachine) SignalNames() []string { return fac.FailureSignalNames[:] }
func (m *facMachine) OperandBased() bool    { return true }

func (m *facMachine) Predict(pc, base, ofs uint32, isRegOffset bool) Result {
	r := m.geom.Predict(base, ofs, isRegOffset)
	return Result{Addr: r.Predicted, Spec: true, Fail: r.Failure, Algebraic: true}
}

func (m *facMachine) Train(pc, actual uint32) {}
