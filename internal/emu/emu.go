// Package emu implements the user-level functional emulator for the
// extended MIPS-like ISA. It executes linked programs, services the small
// syscall set used by the runtime library, and produces per-instruction
// trace records carrying everything the timing simulator and the
// fast-address-calculation predictor need: the dynamic instruction, its
// effective address, and the raw base/offset operand values of every memory
// access.
package emu

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Syscall codes (in $v0 at the syscall instruction).
const (
	SysPrintInt    = 1
	SysPrintDouble = 3
	SysPrintString = 4
	SysSbrk        = 9
	SysExit        = 10
	SysPrintChar   = 11
)

// Trace describes one executed instruction.
type Trace struct {
	PC     uint32
	Inst   isa.Inst
	NextPC uint32
	// Pre points at the pre-decoded form of Inst when the producer holds a
	// pre-decode table (the emulator shares the program's). Consumers fall
	// back to isa.Predecode when nil, so hand-built traces stay valid.
	Pre *isa.Pre
	// Memory access operands (valid when Inst.Op.IsMem()):
	EffAddr     uint32 // the architectural effective address
	Base        uint32 // base register value at execute time
	Offset      uint32 // offset value (sign-extended constant or index register)
	IsRegOffset bool   // offset came from the register file
	// MemVal is the register-visible transferred value of an integer
	// access (the loaded value as written to the destination, or the
	// stored register value); HasMemVal gates it. FP and 64-bit accesses
	// leave it unset. The static value-soundness oracle compares these
	// against staticfac's per-site cell claims.
	MemVal    uint32
	HasMemVal bool
	// Branch outcome (valid when Inst.Op.IsBranch()):
	Taken bool
}

// Emulator holds the architectural state of a running program.
type Emulator struct {
	Prog *prog.Program
	Mem  *mem.Memory
	pre  []isa.Pre // the program's pre-decode table, indexed like Prog.Insts

	R   [isa.NumRegs]uint32
	F   [isa.NumRegs]float64
	FCC bool
	PC  uint32
	Brk uint32

	Out       bytes.Buffer
	Halted    bool
	ExitCode  int32
	InstCount uint64

	// MaxInsts aborts execution with an error when exceeded (0 = no limit).
	MaxInsts uint64
}

// New creates an emulator with a fresh memory image and the architectural
// startup state (PC at the entry point, GP and SP initialized — the work a
// real crt0/kernel would do).
func New(p *prog.Program) *Emulator {
	e := &Emulator{
		Prog: p,
		Mem:  p.NewMemory(),
		pre:  p.Predecoded(),
		PC:   p.Entry,
		Brk:  p.HeapBase,
	}
	e.R[isa.GP] = p.GP
	e.R[isa.SP] = p.SP
	e.R[isa.RA] = haltAddr
	return e
}

// haltAddr is the return address planted in $ra at startup: a jr to it
// terminates the program (mirrors returning from main into exit()).
const haltAddr = 0xFFFF0000

func signExt16(v int32) uint32 { return uint32(v) }

// Step executes one instruction. It returns the trace record and an error
// for architectural faults (unaligned access, bad PC, division by zero).
// Stepping a halted emulator returns ErrHalted.
func (e *Emulator) Step() (Trace, error) {
	var tr Trace
	err := e.StepInto(&tr)
	return tr, err
}

// StepInto is Step writing the trace record in place — the allocation-free
// form the batched trace source uses (the destination is a reused buffer
// slot, so every field is overwritten).
func (e *Emulator) StepInto(tr *Trace) error {
	if e.Halted {
		return ErrHalted
	}
	if e.MaxInsts != 0 && e.InstCount >= e.MaxInsts {
		return fmt.Errorf("emu: instruction budget %d exceeded at pc %#x", e.MaxInsts, e.PC)
	}
	in, ok := e.Prog.InstAt(e.PC)
	if !ok {
		return fmt.Errorf("emu: bad pc %#x", e.PC)
	}
	// InstAt validated the PC, so the text index is in range.
	*tr = Trace{PC: e.PC, Inst: in, NextPC: e.PC + isa.InstBytes,
		Pre: &e.pre[(e.PC-e.Prog.TextBase)/isa.InstBytes]}
	if err := e.exec(in, tr); err != nil {
		return fmt.Errorf("emu: pc %#x (%v in %s): %w", tr.PC, in, e.Prog.FuncName(tr.PC), err)
	}
	e.R[isa.Zero] = 0
	e.InstCount++
	e.PC = tr.NextPC
	if e.PC == haltAddr && !e.Halted {
		e.Halted = true
		e.ExitCode = int32(e.R[isa.V0])
	}
	return nil
}

// ErrHalted is returned by Step once the program has exited.
var ErrHalted = fmt.Errorf("emu: program halted")

// Run executes until the program exits or faults.
func (e *Emulator) Run() error {
	for !e.Halted {
		if _, err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (e *Emulator) exec(in isa.Inst, tr *Trace) error {
	r := &e.R
	sv := func(x uint32) int32 { return int32(x) }
	switch in.Op {
	case isa.ADD:
		r[in.Rd] = r[in.Rs] + r[in.Rt]
	case isa.SUB:
		r[in.Rd] = r[in.Rs] - r[in.Rt]
	case isa.MUL:
		r[in.Rd] = uint32(sv(r[in.Rs]) * sv(r[in.Rt]))
	case isa.DIV:
		if r[in.Rt] == 0 {
			return fmt.Errorf("integer division by zero")
		}
		r[in.Rd] = uint32(sv(r[in.Rs]) / sv(r[in.Rt]))
	case isa.DIVU:
		if r[in.Rt] == 0 {
			return fmt.Errorf("integer division by zero")
		}
		r[in.Rd] = r[in.Rs] / r[in.Rt]
	case isa.REM:
		if r[in.Rt] == 0 {
			return fmt.Errorf("integer division by zero")
		}
		r[in.Rd] = uint32(sv(r[in.Rs]) % sv(r[in.Rt]))
	case isa.REMU:
		if r[in.Rt] == 0 {
			return fmt.Errorf("integer division by zero")
		}
		r[in.Rd] = r[in.Rs] % r[in.Rt]
	case isa.AND:
		r[in.Rd] = r[in.Rs] & r[in.Rt]
	case isa.OR:
		r[in.Rd] = r[in.Rs] | r[in.Rt]
	case isa.XOR:
		r[in.Rd] = r[in.Rs] ^ r[in.Rt]
	case isa.NOR:
		r[in.Rd] = ^(r[in.Rs] | r[in.Rt])
	case isa.SLT:
		r[in.Rd] = b2u(sv(r[in.Rs]) < sv(r[in.Rt]))
	case isa.SLTU:
		r[in.Rd] = b2u(r[in.Rs] < r[in.Rt])
	case isa.SLLV:
		r[in.Rd] = r[in.Rs] << (r[in.Rt] & 31)
	case isa.SRLV:
		r[in.Rd] = r[in.Rs] >> (r[in.Rt] & 31)
	case isa.SRAV:
		r[in.Rd] = uint32(sv(r[in.Rs]) >> (r[in.Rt] & 31))

	case isa.ADDI:
		r[in.Rd] = r[in.Rs] + signExt16(in.Imm)
	case isa.ANDI:
		r[in.Rd] = r[in.Rs] & uint32(in.Imm)
	case isa.ORI:
		r[in.Rd] = r[in.Rs] | uint32(in.Imm)
	case isa.XORI:
		r[in.Rd] = r[in.Rs] ^ uint32(in.Imm)
	case isa.SLTI:
		r[in.Rd] = b2u(sv(r[in.Rs]) < in.Imm)
	case isa.SLTIU:
		r[in.Rd] = b2u(r[in.Rs] < uint32(in.Imm))
	case isa.SLL:
		r[in.Rd] = r[in.Rs] << uint32(in.Imm&31)
	case isa.SRL:
		r[in.Rd] = r[in.Rs] >> uint32(in.Imm&31)
	case isa.SRA:
		r[in.Rd] = uint32(sv(r[in.Rs]) >> uint32(in.Imm&31))
	case isa.LUI:
		r[in.Rd] = uint32(in.Imm) << 16

	case isa.BEQ:
		e.branch(tr, r[in.Rs] == r[in.Rt], in.Imm)
	case isa.BNE:
		e.branch(tr, r[in.Rs] != r[in.Rt], in.Imm)
	case isa.BLEZ:
		e.branch(tr, sv(r[in.Rs]) <= 0, in.Imm)
	case isa.BGTZ:
		e.branch(tr, sv(r[in.Rs]) > 0, in.Imm)
	case isa.BLTZ:
		e.branch(tr, sv(r[in.Rs]) < 0, in.Imm)
	case isa.BGEZ:
		e.branch(tr, sv(r[in.Rs]) >= 0, in.Imm)
	case isa.BC1T:
		e.branch(tr, e.FCC, in.Imm)
	case isa.BC1F:
		e.branch(tr, !e.FCC, in.Imm)
	case isa.J:
		tr.NextPC = uint32(in.Imm)
	case isa.JAL:
		r[isa.RA] = tr.PC + isa.InstBytes
		tr.NextPC = uint32(in.Imm)
	case isa.JR:
		tr.NextPC = r[in.Rs]
	case isa.JALR:
		link := tr.PC + isa.InstBytes
		tr.NextPC = r[in.Rs]
		r[in.Rd] = link
	case isa.SYSCALL:
		return e.syscall(tr)

	case isa.FADD:
		e.F[in.Rd] = e.F[in.Rs] + e.F[in.Rt]
	case isa.FSUB:
		e.F[in.Rd] = e.F[in.Rs] - e.F[in.Rt]
	case isa.FMUL:
		e.F[in.Rd] = e.F[in.Rs] * e.F[in.Rt]
	case isa.FDIV:
		e.F[in.Rd] = e.F[in.Rs] / e.F[in.Rt]
	case isa.FNEG:
		e.F[in.Rd] = -e.F[in.Rs]
	case isa.FABS:
		e.F[in.Rd] = math.Abs(e.F[in.Rs])
	case isa.FMOV:
		e.F[in.Rd] = e.F[in.Rs]
	case isa.FCLT:
		e.FCC = e.F[in.Rs] < e.F[in.Rt]
	case isa.FCLE:
		e.FCC = e.F[in.Rs] <= e.F[in.Rt]
	case isa.FCEQ:
		e.FCC = e.F[in.Rs] == e.F[in.Rt]
	case isa.MTC1:
		e.F[in.Rd] = math.Float64frombits(uint64(r[in.Rs]))
	case isa.MFC1:
		r[in.Rd] = uint32(math.Float64bits(e.F[in.Rs]))
	case isa.CVTDW:
		e.F[in.Rd] = float64(int32(uint32(math.Float64bits(e.F[in.Rs]))))
	case isa.CVTWD:
		e.F[in.Rd] = math.Float64frombits(uint64(uint32(int32(e.F[in.Rs]))))

	default:
		if tr.Pre.IsMem() {
			return e.memOp(in, tr)
		}
		return fmt.Errorf("unimplemented op %v", in.Op)
	}
	return nil
}

func (e *Emulator) branch(tr *Trace, taken bool, disp int32) {
	tr.Taken = taken
	if taken {
		tr.NextPC = tr.PC + isa.InstBytes + uint32(disp)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// memOp executes a load or store, recording the operand values the
// fast-address-calculation predictor sees.
func (e *Emulator) memOp(in isa.Inst, tr *Trace) error {
	pre := tr.Pre
	base := e.R[in.BaseReg()]
	var ofs uint32
	switch {
	case pre.Flags&isa.PreRegOffset != 0:
		ofs = e.R[in.IndexReg()]
		tr.IsRegOffset = true
	case pre.Flags&isa.PrePostInc != 0:
		ofs = 0 // the access uses the base directly; increment is post
	default:
		ofs = signExt16(in.Imm)
	}
	addr := base + ofs
	tr.EffAddr, tr.Base, tr.Offset = addr, base, ofs

	size := int(pre.MemSize)
	if addr&uint32(size-1) != 0 {
		return fmt.Errorf("unaligned %d-byte access at %#x", size, addr)
	}
	if pre.IsLoad() {
		switch in.Op {
		case isa.LB, isa.LBX:
			e.R[in.Rd] = uint32(int32(int8(e.Mem.Read8(addr))))
		case isa.LBU, isa.LBUX:
			e.R[in.Rd] = uint32(e.Mem.Read8(addr))
		case isa.LH, isa.LHX:
			e.R[in.Rd] = uint32(int32(int16(e.Mem.Read16(addr))))
		case isa.LHU, isa.LHUX:
			e.R[in.Rd] = uint32(e.Mem.Read16(addr))
		case isa.LW, isa.LWX, isa.LWPI:
			e.R[in.Rd] = e.Mem.Read32(addr)
		case isa.LFD, isa.LFDX, isa.LFDPI:
			e.F[in.Rd] = math.Float64frombits(e.Mem.Read64(addr))
		}
		if !in.Op.FPDest() {
			tr.MemVal, tr.HasMemVal = e.R[in.Rd], true
		}
	} else {
		data := in.StoreDataReg()
		switch in.Op {
		case isa.SB, isa.SBX:
			e.Mem.Write8(addr, byte(e.R[data]))
		case isa.SH, isa.SHX:
			e.Mem.Write16(addr, uint16(e.R[data]))
		case isa.SW, isa.SWX, isa.SWPI:
			e.Mem.Write32(addr, e.R[data])
		case isa.SFD, isa.SFDX, isa.SFDPI:
			e.Mem.Write64(addr, math.Float64bits(e.F[data]))
		}
		if !in.Op.FPSrc() {
			tr.MemVal, tr.HasMemVal = e.R[data], true
		}
	}
	if pre.Flags&isa.PrePostInc != 0 {
		e.R[in.Rs] = base + signExt16(in.Imm)
	}
	return nil
}

func (e *Emulator) syscall(tr *Trace) error {
	switch e.R[isa.V0] {
	case SysPrintInt:
		fmt.Fprintf(&e.Out, "%d", int32(e.R[isa.A0]))
	case SysPrintDouble:
		fmt.Fprintf(&e.Out, "%g", e.F[12])
	case SysPrintString:
		e.Out.WriteString(e.Mem.ReadCString(e.R[isa.A0], 1<<20))
	case SysPrintChar:
		e.Out.WriteByte(byte(e.R[isa.A0]))
	case SysSbrk:
		old := e.Brk
		e.Brk += e.R[isa.A0]
		e.R[isa.V0] = old
	case SysExit:
		e.Halted = true
		e.ExitCode = int32(e.R[isa.A0])
	default:
		return fmt.Errorf("unknown syscall %d", e.R[isa.V0])
	}
	return nil
}
