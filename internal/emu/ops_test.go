package emu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// harness builds a one-instruction program image around the instruction
// under test and executes it with chosen register state.
func execOne(t *testing.T, in isa.Inst, setup func(e *Emulator)) *Emulator {
	t.Helper()
	obj := &prog.Object{
		Text:    []isa.Inst{in, {Op: isa.JR, Rs: isa.RA}},
		Symbols: map[string]prog.Symbol{"main": {Name: "main", Section: prog.SecText}},
	}
	p, err := prog.Link(obj, prog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := New(p)
	e.MaxInsts = 10
	if setup != nil {
		setup(e)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("exec %v: %v", in, err)
	}
	return e
}

// TestALUSemanticsAgainstGo checks every register-register ALU operation
// against Go's own int32/uint32 semantics on random operands.
func TestALUSemanticsAgainstGo(t *testing.T) {
	type opSpec struct {
		op isa.Op
		f  func(a, b uint32) uint32
	}
	sv := func(x uint32) int32 { return int32(x) }
	specs := []opSpec{
		{isa.ADD, func(a, b uint32) uint32 { return a + b }},
		{isa.SUB, func(a, b uint32) uint32 { return a - b }},
		{isa.MUL, func(a, b uint32) uint32 { return uint32(sv(a) * sv(b)) }},
		{isa.AND, func(a, b uint32) uint32 { return a & b }},
		{isa.OR, func(a, b uint32) uint32 { return a | b }},
		{isa.XOR, func(a, b uint32) uint32 { return a ^ b }},
		{isa.NOR, func(a, b uint32) uint32 { return ^(a | b) }},
		{isa.SLT, func(a, b uint32) uint32 {
			if sv(a) < sv(b) {
				return 1
			}
			return 0
		}},
		{isa.SLTU, func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		}},
		{isa.SLLV, func(a, b uint32) uint32 { return a << (b & 31) }},
		{isa.SRLV, func(a, b uint32) uint32 { return a >> (b & 31) }},
		{isa.SRAV, func(a, b uint32) uint32 { return uint32(sv(a) >> (b & 31)) }},
		{isa.DIV, func(a, b uint32) uint32 { return uint32(sv(a) / sv(b)) }},
		{isa.DIVU, func(a, b uint32) uint32 { return a / b }},
		{isa.REM, func(a, b uint32) uint32 { return uint32(sv(a) % sv(b)) }},
		{isa.REMU, func(a, b uint32) uint32 { return a % b }},
	}
	r := rand.New(rand.NewSource(21))
	for _, spec := range specs {
		for trial := 0; trial < 64; trial++ {
			a, b := r.Uint32(), r.Uint32()
			switch spec.op {
			case isa.DIV, isa.DIVU, isa.REM, isa.REMU:
				if b == 0 {
					b = 1
				}
				if a == 0x80000000 && b == 0xFFFFFFFF {
					a = 1 // Go panics on INT_MIN / -1; skip the trap case
				}
			}
			e := execOne(t, isa.Inst{Op: spec.op, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
				func(e *Emulator) { e.R[isa.T1], e.R[isa.T2] = a, b })
			if got, want := e.R[isa.T0], spec.f(a, b); got != want {
				t.Fatalf("%v(%#x, %#x) = %#x, want %#x", spec.op, a, b, got, want)
			}
		}
	}
}

// TestImmediateSemantics covers the immediate forms, including the
// zero-extended logical immediates and sign-extended arithmetic ones.
func TestImmediateSemantics(t *testing.T) {
	cases := []struct {
		in    isa.Inst
		rsVal uint32
		want  uint32
	}{
		{isa.Inst{Op: isa.ADDI, Rd: isa.T0, Rs: isa.T1, Imm: -5}, 3, 0xFFFFFFFE},
		{isa.Inst{Op: isa.ANDI, Rd: isa.T0, Rs: isa.T1, Imm: 0xFF00}, 0x1234ABCD, 0xAB00},
		{isa.Inst{Op: isa.ORI, Rd: isa.T0, Rs: isa.T1, Imm: 0x00FF}, 0xFF000000, 0xFF0000FF},
		{isa.Inst{Op: isa.XORI, Rd: isa.T0, Rs: isa.T1, Imm: 0xFFFF}, 0x0000FFFF, 0},
		{isa.Inst{Op: isa.SLTI, Rd: isa.T0, Rs: isa.T1, Imm: 0}, 0xFFFFFFFF, 1},  // -1 < 0
		{isa.Inst{Op: isa.SLTIU, Rd: isa.T0, Rs: isa.T1, Imm: 1}, 0xFFFFFFFF, 0}, // max uint
		{isa.Inst{Op: isa.SLL, Rd: isa.T0, Rs: isa.T1, Imm: 4}, 0x0F0F, 0xF0F0},
		{isa.Inst{Op: isa.SRL, Rd: isa.T0, Rs: isa.T1, Imm: 4}, 0x80000000, 0x08000000},
		{isa.Inst{Op: isa.SRA, Rd: isa.T0, Rs: isa.T1, Imm: 4}, 0x80000000, 0xF8000000},
		{isa.Inst{Op: isa.LUI, Rd: isa.T0, Imm: 0x1234}, 0, 0x12340000},
	}
	for _, c := range cases {
		e := execOne(t, c.in, func(e *Emulator) { e.R[isa.T1] = c.rsVal })
		if got := e.R[isa.T0]; got != c.want {
			t.Errorf("%v with rs=%#x: got %#x, want %#x", c.in, c.rsVal, got, c.want)
		}
	}
}

// TestFPSemantics covers the FP ops bit-for-bit against Go float64.
func TestFPSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	type fspec struct {
		op isa.Op
		f  func(a, b float64) float64
	}
	specs := []fspec{
		{isa.FADD, func(a, b float64) float64 { return a + b }},
		{isa.FSUB, func(a, b float64) float64 { return a - b }},
		{isa.FMUL, func(a, b float64) float64 { return a * b }},
		{isa.FDIV, func(a, b float64) float64 { return a / b }},
	}
	for _, spec := range specs {
		for trial := 0; trial < 32; trial++ {
			a := (r.Float64() - 0.5) * 1e6
			b := (r.Float64()-0.5)*1e6 + 1
			e := execOne(t, isa.Inst{Op: spec.op, Rd: 2, Rs: 4, Rt: 6},
				func(e *Emulator) { e.F[4], e.F[6] = a, b })
			if got, want := e.F[2], spec.f(a, b); got != want {
				t.Fatalf("%v(%v, %v) = %v, want %v", spec.op, a, b, got, want)
			}
		}
	}
	e := execOne(t, isa.Inst{Op: isa.FABS, Rd: 2, Rs: 4}, func(e *Emulator) { e.F[4] = -3.5 })
	if e.F[2] != 3.5 {
		t.Error("fabs wrong")
	}
	e = execOne(t, isa.Inst{Op: isa.FNEG, Rd: 2, Rs: 4}, func(e *Emulator) { e.F[4] = 3.5 })
	if e.F[2] != -3.5 {
		t.Error("fneg wrong")
	}
	// Conversions round-trip through register bit patterns.
	e = execOne(t, isa.Inst{Op: isa.MTC1, Rd: 2, Rs: isa.T0}, func(e *Emulator) { e.R[isa.T0] = 0xCAFE })
	if math.Float64bits(e.F[2]) != 0xCAFE {
		t.Error("mtc1 bits wrong")
	}
}

// TestFPCompareFlag covers the condition-flag comparisons.
func TestFPCompareFlag(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b float64
		want bool
	}{
		{isa.FCLT, 1, 2, true},
		{isa.FCLT, 2, 1, false},
		{isa.FCLT, 1, 1, false},
		{isa.FCLE, 1, 1, true},
		{isa.FCEQ, 1, 1, true},
		{isa.FCEQ, 1, 2, false},
		{isa.FCLT, math.NaN(), 1, false},
		{isa.FCEQ, math.NaN(), math.NaN(), false},
	}
	for _, c := range cases {
		e := execOne(t, isa.Inst{Op: c.op, Rs: 2, Rt: 4},
			func(e *Emulator) { e.F[2], e.F[4] = c.a, c.b })
		if e.FCC != c.want {
			t.Errorf("%v(%v, %v) flag = %v, want %v", c.op, c.a, c.b, e.FCC, c.want)
		}
	}
}

// TestSubWordMemorySemantics covers byte/half loads with sign extension
// through real memory.
func TestSubWordMemorySemantics(t *testing.T) {
	type mcase struct {
		op     isa.Op
		stored uint32
		want   uint32
	}
	cases := []mcase{
		{isa.LB, 0x80, 0xFFFFFF80},
		{isa.LBU, 0x80, 0x80},
		{isa.LH, 0x8000, 0xFFFF8000},
		{isa.LHU, 0x8000, 0x8000},
		{isa.LW, 0xDEADBEEF, 0xDEADBEEF},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op, Rd: isa.T0, Rs: isa.T1}
		e := execOne(t, in, func(e *Emulator) {
			e.R[isa.T1] = 0x10000000
			e.Mem.Write32(0x10000000, c.stored)
		})
		if got := e.R[isa.T0]; got != c.want {
			t.Errorf("%v of %#x = %#x, want %#x", c.op, c.stored, got, c.want)
		}
	}
}
