package emu

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// harness builds a one-instruction program image around the instruction
// under test and executes it with chosen register state.
func execOne(t *testing.T, in isa.Inst, setup func(e *Emulator)) *Emulator {
	t.Helper()
	obj := &prog.Object{
		Text:    []isa.Inst{in, {Op: isa.JR, Rs: isa.RA}},
		Symbols: map[string]prog.Symbol{"main": {Name: "main", Section: prog.SecText}},
	}
	p, err := prog.Link(obj, prog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := New(p)
	e.MaxInsts = 10
	if setup != nil {
		setup(e)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("exec %v: %v", in, err)
	}
	return e
}

// TestALUSemanticsAgainstGo checks every register-register ALU operation
// against Go's own int32/uint32 semantics on random operands.
func TestALUSemanticsAgainstGo(t *testing.T) {
	type opSpec struct {
		op isa.Op
		f  func(a, b uint32) uint32
	}
	sv := func(x uint32) int32 { return int32(x) }
	specs := []opSpec{
		{isa.ADD, func(a, b uint32) uint32 { return a + b }},
		{isa.SUB, func(a, b uint32) uint32 { return a - b }},
		{isa.MUL, func(a, b uint32) uint32 { return uint32(sv(a) * sv(b)) }},
		{isa.AND, func(a, b uint32) uint32 { return a & b }},
		{isa.OR, func(a, b uint32) uint32 { return a | b }},
		{isa.XOR, func(a, b uint32) uint32 { return a ^ b }},
		{isa.NOR, func(a, b uint32) uint32 { return ^(a | b) }},
		{isa.SLT, func(a, b uint32) uint32 {
			if sv(a) < sv(b) {
				return 1
			}
			return 0
		}},
		{isa.SLTU, func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		}},
		{isa.SLLV, func(a, b uint32) uint32 { return a << (b & 31) }},
		{isa.SRLV, func(a, b uint32) uint32 { return a >> (b & 31) }},
		{isa.SRAV, func(a, b uint32) uint32 { return uint32(sv(a) >> (b & 31)) }},
		{isa.DIV, func(a, b uint32) uint32 { return uint32(sv(a) / sv(b)) }},
		{isa.DIVU, func(a, b uint32) uint32 { return a / b }},
		{isa.REM, func(a, b uint32) uint32 { return uint32(sv(a) % sv(b)) }},
		{isa.REMU, func(a, b uint32) uint32 { return a % b }},
	}
	r := rand.New(rand.NewSource(21))
	for _, spec := range specs {
		for trial := 0; trial < 64; trial++ {
			a, b := r.Uint32(), r.Uint32()
			switch spec.op {
			case isa.DIV, isa.DIVU, isa.REM, isa.REMU:
				if b == 0 {
					b = 1
				}
				if a == 0x80000000 && b == 0xFFFFFFFF {
					a = 1 // Go panics on INT_MIN / -1; skip the trap case
				}
			}
			e := execOne(t, isa.Inst{Op: spec.op, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
				func(e *Emulator) { e.R[isa.T1], e.R[isa.T2] = a, b })
			if got, want := e.R[isa.T0], spec.f(a, b); got != want {
				t.Fatalf("%v(%#x, %#x) = %#x, want %#x", spec.op, a, b, got, want)
			}
		}
	}
}

// TestImmediateSemantics covers the immediate forms, including the
// zero-extended logical immediates and sign-extended arithmetic ones.
func TestImmediateSemantics(t *testing.T) {
	cases := []struct {
		in    isa.Inst
		rsVal uint32
		want  uint32
	}{
		{isa.Inst{Op: isa.ADDI, Rd: isa.T0, Rs: isa.T1, Imm: -5}, 3, 0xFFFFFFFE},
		{isa.Inst{Op: isa.ANDI, Rd: isa.T0, Rs: isa.T1, Imm: 0xFF00}, 0x1234ABCD, 0xAB00},
		{isa.Inst{Op: isa.ORI, Rd: isa.T0, Rs: isa.T1, Imm: 0x00FF}, 0xFF000000, 0xFF0000FF},
		{isa.Inst{Op: isa.XORI, Rd: isa.T0, Rs: isa.T1, Imm: 0xFFFF}, 0x0000FFFF, 0},
		{isa.Inst{Op: isa.SLTI, Rd: isa.T0, Rs: isa.T1, Imm: 0}, 0xFFFFFFFF, 1},  // -1 < 0
		{isa.Inst{Op: isa.SLTIU, Rd: isa.T0, Rs: isa.T1, Imm: 1}, 0xFFFFFFFF, 0}, // max uint
		{isa.Inst{Op: isa.SLL, Rd: isa.T0, Rs: isa.T1, Imm: 4}, 0x0F0F, 0xF0F0},
		{isa.Inst{Op: isa.SRL, Rd: isa.T0, Rs: isa.T1, Imm: 4}, 0x80000000, 0x08000000},
		{isa.Inst{Op: isa.SRA, Rd: isa.T0, Rs: isa.T1, Imm: 4}, 0x80000000, 0xF8000000},
		{isa.Inst{Op: isa.LUI, Rd: isa.T0, Imm: 0x1234}, 0, 0x12340000},
	}
	for _, c := range cases {
		e := execOne(t, c.in, func(e *Emulator) { e.R[isa.T1] = c.rsVal })
		if got := e.R[isa.T0]; got != c.want {
			t.Errorf("%v with rs=%#x: got %#x, want %#x", c.in, c.rsVal, got, c.want)
		}
	}
}

// TestFPSemantics covers the FP ops bit-for-bit against Go float64.
func TestFPSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	type fspec struct {
		op isa.Op
		f  func(a, b float64) float64
	}
	specs := []fspec{
		{isa.FADD, func(a, b float64) float64 { return a + b }},
		{isa.FSUB, func(a, b float64) float64 { return a - b }},
		{isa.FMUL, func(a, b float64) float64 { return a * b }},
		{isa.FDIV, func(a, b float64) float64 { return a / b }},
	}
	for _, spec := range specs {
		for trial := 0; trial < 32; trial++ {
			a := (r.Float64() - 0.5) * 1e6
			b := (r.Float64()-0.5)*1e6 + 1
			e := execOne(t, isa.Inst{Op: spec.op, Rd: 2, Rs: 4, Rt: 6},
				func(e *Emulator) { e.F[4], e.F[6] = a, b })
			if got, want := e.F[2], spec.f(a, b); got != want {
				t.Fatalf("%v(%v, %v) = %v, want %v", spec.op, a, b, got, want)
			}
		}
	}
	e := execOne(t, isa.Inst{Op: isa.FABS, Rd: 2, Rs: 4}, func(e *Emulator) { e.F[4] = -3.5 })
	if e.F[2] != 3.5 {
		t.Error("fabs wrong")
	}
	e = execOne(t, isa.Inst{Op: isa.FNEG, Rd: 2, Rs: 4}, func(e *Emulator) { e.F[4] = 3.5 })
	if e.F[2] != -3.5 {
		t.Error("fneg wrong")
	}
	// Conversions round-trip through register bit patterns.
	e = execOne(t, isa.Inst{Op: isa.MTC1, Rd: 2, Rs: isa.T0}, func(e *Emulator) { e.R[isa.T0] = 0xCAFE })
	if math.Float64bits(e.F[2]) != 0xCAFE {
		t.Error("mtc1 bits wrong")
	}
}

// TestFPCompareFlag covers the condition-flag comparisons.
func TestFPCompareFlag(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b float64
		want bool
	}{
		{isa.FCLT, 1, 2, true},
		{isa.FCLT, 2, 1, false},
		{isa.FCLT, 1, 1, false},
		{isa.FCLE, 1, 1, true},
		{isa.FCEQ, 1, 1, true},
		{isa.FCEQ, 1, 2, false},
		{isa.FCLT, math.NaN(), 1, false},
		{isa.FCEQ, math.NaN(), math.NaN(), false},
	}
	for _, c := range cases {
		e := execOne(t, isa.Inst{Op: c.op, Rs: 2, Rt: 4},
			func(e *Emulator) { e.F[2], e.F[4] = c.a, c.b })
		if e.FCC != c.want {
			t.Errorf("%v(%v, %v) flag = %v, want %v", c.op, c.a, c.b, e.FCC, c.want)
		}
	}
}

// TestSubWordMemorySemantics covers byte/half loads with sign extension
// through real memory.
func TestSubWordMemorySemantics(t *testing.T) {
	type mcase struct {
		op     isa.Op
		stored uint32
		want   uint32
	}
	cases := []mcase{
		{isa.LB, 0x80, 0xFFFFFF80},
		{isa.LBU, 0x80, 0x80},
		{isa.LH, 0x8000, 0xFFFF8000},
		{isa.LHU, 0x8000, 0x8000},
		{isa.LW, 0xDEADBEEF, 0xDEADBEEF},
	}
	for _, c := range cases {
		in := isa.Inst{Op: c.op, Rd: isa.T0, Rs: isa.T1}
		e := execOne(t, in, func(e *Emulator) {
			e.R[isa.T1] = 0x10000000
			e.Mem.Write32(0x10000000, c.stored)
		})
		if got := e.R[isa.T0]; got != c.want {
			t.Errorf("%v of %#x = %#x, want %#x", c.op, c.stored, got, c.want)
		}
	}
}

// TestImmediateWidthAudit pins the immediate-width contract between the
// emulator and the binary encoding: the logical immediates (ANDI/ORI/XORI,
// and LUI) consume the 16-bit field zero-extended, while ADDI/SLTI/SLTIU
// sign-extend it, and SLTIU compares the sign-extended immediate as
// unsigned (the MIPS convention). Each case round-trips through
// isa.Encode/isa.Decode so the reference semantics are checked against the
// architectural bit-level form, not just the in-memory Inst convention.
func TestImmediateWidthAudit(t *testing.T) {
	sext := func(u16 uint32) uint32 { return uint32(int32(int16(u16))) }
	b := func(c bool) uint32 {
		if c {
			return 1
		}
		return 0
	}
	specs := []struct {
		op       isa.Op
		unsigned bool // encoding accepts [0, 0xFFFF]; others [-32768, 32767]
		f        func(rs, u16 uint32) uint32
	}{
		{isa.ADDI, false, func(rs, u16 uint32) uint32 { return rs + sext(u16) }},
		{isa.ANDI, true, func(rs, u16 uint32) uint32 { return rs & u16 }},
		{isa.ORI, true, func(rs, u16 uint32) uint32 { return rs | u16 }},
		{isa.XORI, true, func(rs, u16 uint32) uint32 { return rs ^ u16 }},
		{isa.LUI, true, func(_, u16 uint32) uint32 { return u16 << 16 }},
		{isa.SLTI, false, func(rs, u16 uint32) uint32 { return b(int32(rs) < int32(sext(u16))) }},
		{isa.SLTIU, false, func(rs, u16 uint32) uint32 { return b(rs < sext(u16)) }},
	}
	imm16s := []uint32{0x0000, 0x0001, 0x7FFF, 0x8000, 0x8001, 0xFFFE, 0xFFFF}
	rsVals := []uint32{0, 1, 0x7FFF, 0x8000, 0xFFFF, 0x10000, 0x7FFFFFFF, 0x80000000, 0xFFFF8000, 0xFFFFFFFF}
	for _, sp := range specs {
		for _, u16 := range imm16s {
			// Reconstruct the canonical Imm value Decode would produce.
			imm := int32(sext(u16))
			if sp.unsigned {
				imm = int32(u16)
			}
			in := isa.Inst{Op: sp.op, Rd: isa.T2, Rs: isa.T0, Imm: imm}
			word, err := isa.Encode(in, 0x00400000)
			if err != nil {
				t.Fatalf("%v imm16=%#x: encode: %v", sp.op, u16, err)
			}
			if word&0xFFFF != u16 {
				t.Fatalf("%v imm16=%#x: encoded field %#x", sp.op, u16, word&0xFFFF)
			}
			dec, err := isa.Decode(word, 0x00400000)
			if err != nil {
				t.Fatalf("%v imm16=%#x: decode: %v", sp.op, u16, err)
			}
			if dec != in {
				t.Fatalf("%v imm16=%#x: decode %v != %v", sp.op, u16, dec, in)
			}
			for _, rs := range rsVals {
				e := execOne(t, in, func(e *Emulator) { e.R[isa.T0] = rs })
				if got, want := e.R[isa.T2], sp.f(rs, u16); got != want {
					t.Errorf("%v rs=%#x imm16=%#x: got %#x, want %#x", sp.op, rs, u16, got, want)
				}
			}
		}
	}
}

// TestShiftAmountMasking pins the shift-amount rule: register shift
// counts use only their low five bits, and immediate counts outside
// [0, 31] are rejected by the encoder — the binary form cannot express
// them, so the emulator's own &31 masking is purely defensive.
func TestShiftAmountMasking(t *testing.T) {
	type sh struct {
		immOp, regOp isa.Op
		f            func(v uint32, n uint) uint32
	}
	shifts := []sh{
		{isa.SLL, isa.SLLV, func(v uint32, n uint) uint32 { return v << n }},
		{isa.SRL, isa.SRLV, func(v uint32, n uint) uint32 { return v >> n }},
		{isa.SRA, isa.SRAV, func(v uint32, n uint) uint32 { return uint32(int32(v) >> n) }},
	}
	vals := []uint32{0x80000001, 0xDEADBEEF, 1, 0xFFFFFFFF}
	counts := []uint32{0, 1, 31, 32, 33, 63, 0xFFE1} // masked: 0,1,31,0,1,31,1
	for _, s := range shifts {
		for _, v := range vals {
			for _, n := range counts {
				want := s.f(v, uint(n&31))
				in := isa.Inst{Op: s.immOp, Rd: isa.T2, Rs: isa.T0, Imm: int32(n)}
				word, err := isa.Encode(in, 0x00400000)
				if n > 31 {
					// Oversized immediate counts must not be encodable.
					if err == nil {
						t.Errorf("%v n=%d: encoded as %#x, want rejection", s.immOp, n, word)
					}
				} else {
					// In-range form survives an encode/decode round trip.
					if err != nil {
						t.Fatalf("%v n=%d: encode: %v", s.immOp, n, err)
					}
					if dec, err := isa.Decode(word, 0x00400000); err != nil || dec != in {
						t.Fatalf("%v n=%d: decode %v, %v", s.immOp, n, dec, err)
					}
					e := execOne(t, in, func(e *Emulator) { e.R[isa.T0] = v })
					if got := e.R[isa.T2]; got != want {
						t.Errorf("%v v=%#x n=%d: got %#x, want %#x", s.immOp, v, n, got, want)
					}
				}
				// Register form: count in a register, including bits above 5.
				rin := isa.Inst{Op: s.regOp, Rd: isa.T2, Rs: isa.T0, Rt: isa.T1}
				e := execOne(t, rin, func(e *Emulator) { e.R[isa.T0], e.R[isa.T1] = v, n })
				if got := e.R[isa.T2]; got != want {
					t.Errorf("%v v=%#x n=%d: got %#x, want %#x", s.regOp, v, n, got, want)
				}
			}
		}
	}
}
