package emu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

func run(t *testing.T, src string) *Emulator {
	t.Helper()
	e := load(t, src)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

func load(t *testing.T, src string) *Emulator {
	t.Helper()
	o, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	p, err := prog.Link(o, prog.DefaultConfig())
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	e := New(p)
	e.MaxInsts = 10_000_000
	return e
}

func TestArithmetic(t *testing.T) {
	e := run(t, `
main:
	li  $t0, 6
	li  $t1, 7
	mul $a0, $t0, $t1
	li  $v0, 1
	syscall
	jr  $ra
`)
	if got := e.Out.String(); got != "42" {
		t.Errorf("output = %q, want 42", got)
	}
	if e.ExitCode != 42 { // v0 still holds 1? no: exit via jr $ra, code = $v0
		// After syscall 1, $v0 unchanged (1). Return through $ra halts with $v0.
		if e.ExitCode != 1 {
			t.Errorf("exit code = %d", e.ExitCode)
		}
	}
}

func TestSignedOps(t *testing.T) {
	e := run(t, `
main:
	li  $t0, -15
	li  $t1, 4
	div $t2, $t0, $t1     # -3
	rem $t3, $t0, $t1     # -3
	add $a0, $t2, $t3     # -6
	li  $v0, 1
	syscall
	li  $a0, 10
	li  $v0, 11
	syscall
	li  $t0, -8
	sra $a0, $t0, 2       # -2
	li  $v0, 1
	syscall
	li  $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "-6\n-2" {
		t.Errorf("output = %q", got)
	}
}

func TestLoadsStores(t *testing.T) {
	e := run(t, `
	.data
arr:	.word 10, 20, 30, 40
b:	.byte 0xFF
h:	.half 0x8000
	.text
main:
	la   $t0, arr
	lw   $a0, 4($t0)        # 20
	li   $v0, 1
	syscall
	lb   $a0, b             # -1 sign extended
	li   $v0, 1
	syscall
	lbu  $a0, b             # 255
	li   $v0, 1
	syscall
	lh   $a0, h             # -32768
	li   $v0, 1
	syscall
	lhu  $a0, h             # 32768
	li   $v0, 1
	syscall
	# store then reload
	li   $t1, 99
	sw   $t1, 12($t0)
	lw   $a0, 12($t0)
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "20-1255-327683276899" {
		t.Errorf("output = %q", got)
	}
}

func TestAddressingModesExec(t *testing.T) {
	e := run(t, `
	.data
arr:	.word 5, 6, 7, 8
	.text
main:
	la   $t0, arr
	li   $t1, 8
	lw   $a0, ($t0+$t1)     # arr[2] = 7
	li   $v0, 1
	syscall
	# post-increment walk
	lw   $a0, ($t0)+4       # 5, t0 -> arr+4
	li   $v0, 1
	syscall
	lw   $a0, ($t0)+4       # 6
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "756" {
		t.Errorf("output = %q", got)
	}
}

func TestBranchesLoops(t *testing.T) {
	// sum 1..10 = 55
	e := run(t, `
main:
	li   $t0, 0     # sum
	li   $t1, 1     # i
loop:
	add  $t0, $t0, $t1
	addi $t1, $t1, 1
	ble  $t1, $t2, loop   # t2 = 0, never
	li   $t2, 10
	ble  $t1, $t2, loop
	move $a0, $t0
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "55" {
		t.Errorf("output = %q", got)
	}
}

func TestFunctionCalls(t *testing.T) {
	// Recursive factorial via stack.
	e := run(t, `
main:
	li   $a0, 6
	jal  fact
	move $a0, $v0
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
fact:
	addi $sp, $sp, -16
	sw   $ra, 12($sp)
	sw   $a0, 8($sp)
	li   $t0, 2
	blt  $a0, $t0, base
	addi $a0, $a0, -1
	jal  fact
	lw   $a0, 8($sp)
	mul  $v0, $v0, $a0
	j    done
base:
	li   $v0, 1
done:
	lw   $ra, 12($sp)
	addi $sp, $sp, 16
	jr   $ra
`)
	if got := e.Out.String(); got != "720" {
		t.Errorf("output = %q, want 720", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	e := run(t, `
	.data
pi:	.double 3.25
two:	.double 2.0
	.text
main:
	lfd  $f2, pi
	lfd  $f4, two
	fmul $f12, $f2, $f4
	li   $v0, 3
	syscall            # 6.5
	li   $a0, 32
	li   $v0, 11
	syscall
	fclt $f2, $f4      # 3.25 < 2.0 = false
	bc1t wrong
	fclt $f4, $f2
	bc1f wrong
	li   $t0, 7
	mtc1 $f6, $t0
	cvtdw $f6, $f6
	fadd $f12, $f6, $f6
	li   $v0, 3
	syscall            # 14
	li   $v0, 10
	syscall
wrong:
	li   $a0, 120      # 'x'
	li   $v0, 11
	syscall
	li   $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "6.5 14" {
		t.Errorf("output = %q", got)
	}
}

func TestCvtWD(t *testing.T) {
	e := run(t, `
	.data
v:	.double 42.9
	.text
main:
	lfd   $f2, v
	cvtwd $f2, $f2
	mfc1  $a0, $f2
	li    $v0, 1
	syscall
	li    $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "42" {
		t.Errorf("output = %q", got)
	}
}

func TestSbrkAndStrings(t *testing.T) {
	e := run(t, `
	.data
msg:	.asciiz "hi "
	.text
main:
	la  $a0, msg
	li  $v0, 4
	syscall
	li  $a0, 64
	li  $v0, 9
	syscall             # sbrk(64)
	move $t0, $v0
	li  $t1, 104        # 'h'
	sb  $t1, 0($t0)
	li  $t1, 112        # 'p'
	sb  $t1, 1($t0)
	sb  $zero, 2($t0)
	move $a0, $t0
	li  $v0, 4
	syscall
	li  $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "hi hp" {
		t.Errorf("output = %q", got)
	}
	if e.Brk == e.Prog.HeapBase {
		t.Error("sbrk did not move the break")
	}
}

func TestTraceRecords(t *testing.T) {
	e := load(t, `
main:
	li   $t0, 0x1000
	li   $t1, 0x20
	lw   $t2, 8($t0)
	lw   $t3, ($t0+$t1)
	beq  $zero, $zero, skip
	add  $t4, $t4, $t4
skip:
	jr   $ra
`)
	var traces []Trace
	for !e.Halted {
		tr, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	if len(traces) != 6 {
		t.Fatalf("executed %d insts, want 6 (branch skips the add)", len(traces))
	}
	lw1 := traces[2]
	if lw1.EffAddr != 0x1008 || lw1.Base != 0x1000 || lw1.Offset != 8 || lw1.IsRegOffset {
		t.Errorf("lw const trace = %+v", lw1)
	}
	lw2 := traces[3]
	if lw2.EffAddr != 0x1020 || lw2.Base != 0x1000 || lw2.Offset != 0x20 || !lw2.IsRegOffset {
		t.Errorf("lw reg trace = %+v", lw2)
	}
	br := traces[4]
	if !br.Taken || br.NextPC != br.PC+8 {
		t.Errorf("branch trace = %+v", br)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	e := run(t, `
main:
	addi $zero, $zero, 5
	move $a0, $zero
	li   $v0, 1
	syscall
	li   $v0, 10
	syscall
`)
	if got := e.Out.String(); got != "0" {
		t.Errorf("output = %q", got)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main:\n\tli $t0, 0x1001\n\tlw $t1, 0($t0)\n\tjr $ra\n", "unaligned"},
		{"main:\n\tli $t0, 5\n\tdiv $t1, $t0, $zero\n\tjr $ra\n", "division by zero"},
		{"main:\n\tli $t0, 0x2000\n\tjr $t0\n", "bad pc"},
	}
	for _, c := range cases {
		e := load(t, c.src)
		err := e.Run()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Run(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestInstBudget(t *testing.T) {
	e := load(t, "main:\n\tj main\n")
	e.MaxInsts = 100
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("expected budget error, got %v", err)
	}
}

func TestPostIncWritesBase(t *testing.T) {
	e := load(t, `
main:
	li  $t0, 0x1000
	sw  $t0, ($t0)+8
	jr  $ra
`)
	for !e.Halted {
		if _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.R[isa.T0] != 0x1008 {
		t.Errorf("post-inc base = %#x, want 0x1008", e.R[isa.T0])
	}
	if e.Mem.Read32(0x1000) != 0x1000 {
		t.Error("post-inc stored at wrong address")
	}
}
