// Package prog defines the relocatable object produced by the assembler and
// the linked program image consumed by the emulator and the timing
// simulator. The linker implements the global-pointer placement policies of
// the paper: by default the global region lands wherever the data segment
// ends (an unaligned global pointer, as with stock GNU GLD); with AlignGP
// the region is relocated to a power-of-two boundary larger than the largest
// offset applied to it and all global-pointer offsets are positive
// (Section 4, "Global Pointer Accesses").
package prog

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// SectionKind identifies one of the program sections.
type SectionKind uint8

const (
	SecText  SectionKind = iota
	SecSData             // global region addressed via $gp
	SecData              // other initialized data
	SecBSS               // uninitialized data
	NumSections
)

func (s SectionKind) String() string {
	switch s {
	case SecText:
		return ".text"
	case SecSData:
		return ".sdata"
	case SecData:
		return ".data"
	case SecBSS:
		return ".bss"
	}
	return ".sec?"
}

// RelocKind identifies how a symbol address patches an instruction or datum.
type RelocKind uint8

const (
	RelHi16   RelocKind = iota // upper 16 bits of (sym+addend) into imm
	RelLo16                    // lower 16 bits of (sym+addend) into imm
	RelGPRel                   // (sym+addend) - GP into signed imm16
	RelJump                    // absolute (sym+addend) into a J/JAL target
	RelWord32                  // absolute (sym+addend) into a data word
)

// Reloc is a pending symbol reference.
type Reloc struct {
	Kind   RelocKind
	Sym    string
	Addend int32
	// For instruction relocs, InstIndex is the index into Object.Text.
	// For RelWord32, Section/Off locate the data word.
	InstIndex int
	Section   SectionKind
	Off       uint32
}

// Symbol is a named location in a section.
type Symbol struct {
	Name    string
	Section SectionKind
	Off     uint32 // offset within section
	Size    uint32
}

// Object is the output of the assembler: section images plus relocations.
type Object struct {
	Text    []isa.Inst
	SData   []byte
	Data    []byte
	BSSSize uint32
	Symbols map[string]Symbol
	Relocs  []Reloc
	// SrcLines maps text instruction index to a source line number, for
	// diagnostics (optional).
	SrcLines []int
}

// Config controls program layout.
type Config struct {
	TextBase uint32 // default 0x00400000
	DataBase uint32 // default 0x10000000
	StackTop uint32 // default 0x7FFFF000; initial SP
	// AlignGP applies the paper's software support for global pointer
	// accesses: the global region starts on a power-of-two boundary no
	// smaller than the region size, and GP points at its base so every
	// global-pointer offset is positive.
	AlignGP bool
}

// DefaultConfig returns the standard layout.
func DefaultConfig() Config {
	return Config{TextBase: 0x00400000, DataBase: 0x10000000, StackTop: 0x7FFFF000}
}

// Program is a fully linked executable image.
type Program struct {
	Insts    []isa.Inst // decoded text, indexed by (pc-TextBase)/4
	Words    []uint32   // encoded text (the image is validated encodable)
	TextBase uint32
	DataBase uint32 // start of the statically allocated data region
	Entry    uint32 // address of the entry symbol
	GP       uint32 // initial global pointer
	SP       uint32 // initial stack pointer
	HeapBase uint32 // initial program break
	Symbols  map[string]uint32

	dataSegs []dataSeg
	pre      []isa.Pre // pre-decoded Insts, computed once at link time
}

// Predecoded returns the pre-decoded text, indexed like Insts. Programs
// built by Link carry the table from link time (shared safely across
// concurrent simulations); hand-constructed Program values get a fresh
// table per call.
func (p *Program) Predecoded() []isa.Pre {
	if p.pre != nil {
		return p.pre
	}
	return isa.PredecodeAll(p.Insts)
}

type dataSeg struct {
	base  uint32
	bytes []byte
}

// Link assigns final addresses to an object and resolves relocations.
func Link(o *Object, cfg Config) (*Program, error) {
	if cfg.TextBase == 0 {
		cfg.TextBase = 0x00400000
	}
	if cfg.DataBase == 0 {
		cfg.DataBase = 0x10000000
	}
	if cfg.StackTop == 0 {
		cfg.StackTop = 0x7FFFF000
	}

	// Section layout runs in 64-bit arithmetic: section sizes are
	// caller-controlled 32-bit values, and 32-bit address math here
	// silently wraps — a 4GB BSS once left the heap base on top of the
	// globals. The final addresses are checked against the stack region
	// before narrowing.
	base64 := make([]uint64, NumSections)
	base64[SecText] = uint64(cfg.TextBase)

	align := func(v uint64, a uint64) uint64 {
		if a == 0 {
			a = 1
		}
		return (v + a - 1) &^ (a - 1)
	}
	pow2Ceil := func(v uint64) uint64 {
		p := uint64(1)
		for p < v {
			p <<= 1
		}
		return p
	}

	textEnd := uint64(cfg.TextBase) + uint64(len(o.Text))*isa.InstBytes
	if textEnd > uint64(cfg.DataBase) {
		return nil, fmt.Errorf("prog: text end %#x overruns data base %#x", textEnd, cfg.DataBase)
	}

	var gp64 uint64
	if cfg.AlignGP {
		// Global region first, on a power-of-two boundary at least as large
		// as the region itself, so carry-free addition succeeds for every
		// (positive) global-pointer offset.
		boundary := pow2Ceil(uint64(len(o.SData)))
		if boundary < 16 {
			boundary = 16
		}
		base64[SecSData] = align(uint64(cfg.DataBase), boundary)
		gp64 = base64[SecSData]
		base64[SecData] = align(base64[SecSData]+uint64(len(o.SData)), 16)
		base64[SecBSS] = align(base64[SecData]+uint64(len(o.Data)), 16)
	} else {
		// Stock layout: data first, the global region wherever it lands.
		// The resulting GP value depends on the data segment size and is
		// not usefully aligned, as with an unmodified linker.
		base64[SecData] = uint64(cfg.DataBase)
		base64[SecSData] = align(base64[SecData]+uint64(len(o.Data)), 8)
		gp64 = base64[SecSData]
		base64[SecBSS] = align(base64[SecSData]+uint64(len(o.SData)), 16)
	}
	heap64 := align(base64[SecBSS]+uint64(o.BSSSize), 1<<mem.PageBits)
	if heap64 > uint64(cfg.StackTop) {
		return nil, fmt.Errorf("prog: data segment end %#x overruns the stack region (stack top %#x)",
			heap64, cfg.StackTop)
	}
	secBase := make([]uint32, NumSections)
	for i := range secBase {
		secBase[i] = uint32(base64[i])
	}
	gp, heap := uint32(gp64), uint32(heap64)

	symAddr := func(name string) (uint32, bool) {
		s, ok := o.Symbols[name]
		if !ok {
			return 0, false
		}
		return secBase[s.Section] + s.Off, true
	}

	// Copy section images so relocation patching does not mutate the object.
	sdata := append([]byte(nil), o.SData...)
	data := append([]byte(nil), o.Data...)
	insts := append([]isa.Inst(nil), o.Text...)

	patchData := func(sec SectionKind, off uint32, v uint32) error {
		var img []byte
		switch sec {
		case SecSData:
			img = sdata
		case SecData:
			img = data
		default:
			return fmt.Errorf("prog: word reloc in section %v", sec)
		}
		if int(off)+4 > len(img) {
			return fmt.Errorf("prog: word reloc offset %d out of range", off)
		}
		img[off] = byte(v)
		img[off+1] = byte(v >> 8)
		img[off+2] = byte(v >> 16)
		img[off+3] = byte(v >> 24)
		return nil
	}

	for _, r := range o.Relocs {
		addr, ok := symAddr(r.Sym)
		if !ok {
			return nil, fmt.Errorf("prog: undefined symbol %q", r.Sym)
		}
		v := addr + uint32(r.Addend)
		switch r.Kind {
		case RelWord32:
			if err := patchData(r.Section, r.Off, v); err != nil {
				return nil, err
			}
		case RelHi16:
			// Pair with a signed Lo16: round up when the low half is
			// negative as a signed 16-bit quantity.
			hi := (v + 0x8000) >> 16
			insts[r.InstIndex].Imm = int32(hi)
		case RelLo16:
			insts[r.InstIndex].Imm = int32(int16(v & 0xFFFF))
		case RelGPRel:
			d := int64(v) - int64(gp)
			if d < -32768 || d > 32767 {
				return nil, fmt.Errorf("prog: symbol %q out of gp range (offset %d)", r.Sym, d)
			}
			if cfg.AlignGP && d < 0 {
				return nil, fmt.Errorf("prog: internal error: negative gp offset %d for %q with AlignGP", d, r.Sym)
			}
			insts[r.InstIndex].Imm = int32(d)
		case RelJump:
			insts[r.InstIndex].Imm = int32(v)
		default:
			return nil, fmt.Errorf("prog: unknown reloc kind %d", r.Kind)
		}
	}

	// Validate that every instruction is encodable at its final address.
	words := make([]uint32, len(insts))
	for i, in := range insts {
		pc := cfg.TextBase + uint32(i*isa.InstBytes)
		w, err := isa.Encode(in, pc)
		if err != nil {
			line := -1
			if i < len(o.SrcLines) {
				line = o.SrcLines[i]
			}
			return nil, fmt.Errorf("prog: inst %d (line %d) %v: %v", i, line, in, err)
		}
		words[i] = w
	}

	entry, ok := symAddr("_start")
	if !ok {
		if entry, ok = symAddr("main"); !ok {
			return nil, fmt.Errorf("prog: no _start or main symbol")
		}
	}

	symbols := make(map[string]uint32, len(o.Symbols))
	for name := range o.Symbols {
		a, _ := symAddr(name)
		symbols[name] = a
	}

	p := &Program{
		Insts:    insts,
		Words:    words,
		TextBase: cfg.TextBase,
		DataBase: cfg.DataBase,
		Entry:    entry,
		GP:       gp,
		SP:       cfg.StackTop,
		HeapBase: heap,
		Symbols:  symbols,
		pre:      isa.PredecodeAll(insts),
	}
	if len(sdata) > 0 {
		p.dataSegs = append(p.dataSegs, dataSeg{secBase[SecSData], sdata})
	}
	if len(data) > 0 {
		p.dataSegs = append(p.dataSegs, dataSeg{secBase[SecData], data})
	}
	return p, nil
}

// NewMemory materializes a fresh memory image holding the program's
// initialized data (text is not stored in data memory; instruction fetch is
// modeled separately).
func (p *Program) NewMemory() *mem.Memory {
	m := mem.New()
	for _, s := range p.dataSegs {
		m.WriteBytes(s.base, s.bytes)
	}
	return m
}

// InitialWord returns the little-endian word at addr in the program's
// initial data image. Addresses outside the initialized segments (BSS,
// inter-section padding, the heap) read as zero, matching the fresh
// memory image NewMemory materializes.
func (p *Program) InitialWord(addr uint32) uint32 {
	var v uint32
	for b := uint32(0); b < 4; b++ {
		a := addr + b
		for _, s := range p.dataSegs {
			if a >= s.base && uint64(a) < uint64(s.base)+uint64(len(s.bytes)) {
				v |= uint32(s.bytes[a-s.base]) << (8 * b)
				break
			}
		}
	}
	return v
}

// InstAt returns the decoded instruction at pc, or false if pc is outside
// the text segment.
func (p *Program) InstAt(pc uint32) (isa.Inst, bool) {
	if pc < p.TextBase || pc&3 != 0 {
		return isa.Inst{}, false
	}
	i := (pc - p.TextBase) / isa.InstBytes
	if int(i) >= len(p.Insts) {
		return isa.Inst{}, false
	}
	return p.Insts[i], true
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint32 {
	return p.TextBase + uint32(len(p.Insts)*isa.InstBytes)
}

// SymbolNames returns the defined symbol names in sorted order.
func (p *Program) SymbolNames() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols { //lint:sorted

		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TextSym is one entry of the program's function table.
type TextSym struct {
	Name string
	Addr uint32
}

// TextSyms returns the non-local symbols inside the text segment (local
// labels start with '.'), sorted by address then name — the function table
// static analyses partition the text with. Every address a call can target
// under the toolchain's linkage conventions appears here.
func (p *Program) TextSyms() []TextSym {
	var out []TextSym
	for n, a := range p.Symbols { //lint:sorted
		if len(n) > 0 && n[0] == '.' {
			continue
		}
		if a >= p.TextBase && a < p.TextEnd() {
			out = append(out, TextSym{Name: n, Addr: a})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FuncName returns the name of the function symbol covering pc, for
// diagnostics. It returns the nearest non-local text symbol (local labels
// start with '.') at or below pc.
func (p *Program) FuncName(pc uint32) string {
	best, bestAddr := "?", uint32(0)
	for n, a := range p.Symbols {
		if len(n) > 0 && n[0] == '.' {
			continue
		}
		if a <= pc && a >= bestAddr && a >= p.TextBase && a < p.TextEnd() {
			best, bestAddr = n, a
		}
	}
	return best
}
