package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// object builds a minimal hand-assembled object for linker tests.
func object() *Object {
	return &Object{
		Text: []isa.Inst{
			{Op: isa.LW, Rd: isa.T0, Rs: isa.GP}, // patched via gprel
			{Op: isa.LUI, Rd: isa.AT},            // patched via hi16
			{Op: isa.LW, Rd: isa.T1, Rs: isa.AT}, // patched via lo16
			{Op: isa.JAL},                        // patched via jump
			{Op: isa.JR, Rs: isa.RA},
			{Op: isa.JR, Rs: isa.RA}, // "helper"
		},
		SData:   []byte{1, 0, 0, 0, 2, 0, 0, 0},
		Data:    make([]byte, 64),
		BSSSize: 128,
		Symbols: map[string]Symbol{
			"main":   {Name: "main", Section: SecText, Off: 0},
			"helper": {Name: "helper", Section: SecText, Off: 20},
			"small":  {Name: "small", Section: SecSData, Off: 4},
			"big":    {Name: "big", Section: SecData, Off: 8},
			"buf":    {Name: "buf", Section: SecBSS, Off: 0, Size: 128},
		},
		Relocs: []Reloc{
			{Kind: RelGPRel, Sym: "small", InstIndex: 0},
			{Kind: RelHi16, Sym: "big", InstIndex: 1},
			{Kind: RelLo16, Sym: "big", InstIndex: 2},
			{Kind: RelJump, Sym: "helper", InstIndex: 3},
			{Kind: RelWord32, Sym: "helper", Section: SecData, Off: 0},
		},
	}
}

func TestLinkResolvesRelocs(t *testing.T) {
	p, err := Link(object(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry = %#x", p.Entry)
	}
	// gprel: small is at gp+4 in the stock layout (gp = sdata base).
	if p.Insts[0].Imm != int32(p.Symbols["small"]-p.GP) {
		t.Errorf("gprel imm = %d", p.Insts[0].Imm)
	}
	// hi/lo pair reconstructs the address.
	addr := uint32(p.Insts[1].Imm)<<16 + uint32(p.Insts[2].Imm)
	if addr != p.Symbols["big"] {
		t.Errorf("hi/lo = %#x, want %#x", addr, p.Symbols["big"])
	}
	if uint32(p.Insts[3].Imm) != p.Symbols["helper"] {
		t.Errorf("jump target = %#x", uint32(p.Insts[3].Imm))
	}
	m := p.NewMemory()
	if got := m.Read32(p.Symbols["big"] - 8); got != p.Symbols["helper"] {
		t.Errorf("word reloc = %#x", got)
	}
	// Data image contents survive.
	if m.Read32(p.Symbols["small"]) != 2 {
		t.Error("sdata image wrong")
	}
}

func TestLinkAlignGPPositiveOffsets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AlignGP = true
	p, err := Link(object(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.GP%16 != 0 {
		t.Errorf("gp = %#x not aligned", p.GP)
	}
	if p.Insts[0].Imm < 0 {
		t.Errorf("gp offset negative with AlignGP: %d", p.Insts[0].Imm)
	}
}

func TestLinkErrors(t *testing.T) {
	o := object()
	o.Relocs = append(o.Relocs, Reloc{Kind: RelGPRel, Sym: "missing", InstIndex: 0})
	if _, err := Link(o, DefaultConfig()); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined symbol error missing: %v", err)
	}

	o = object()
	delete(o.Symbols, "main")
	if _, err := Link(o, DefaultConfig()); err == nil || !strings.Contains(err.Error(), "_start or main") {
		t.Errorf("missing entry error: %v", err)
	}

	o = object()
	o.Relocs[4].Off = 9999
	if _, err := Link(o, DefaultConfig()); err == nil {
		t.Error("out-of-range word reloc accepted")
	}

	// Unencodable instruction (immediate overflow) rejected with line info.
	o = object()
	o.Text = append(o.Text, isa.Inst{Op: isa.ADDI, Rd: isa.T0, Imm: 1 << 20})
	o.SrcLines = []int{1, 2, 3, 4, 5, 6, 7}
	if _, err := Link(o, DefaultConfig()); err == nil {
		t.Error("unencodable instruction accepted")
	}
}

func TestProgramQueries(t *testing.T) {
	p, err := Link(object(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, ok := p.InstAt(p.TextBase)
	if !ok || in.Op != isa.LW {
		t.Error("InstAt(base) wrong")
	}
	if _, ok := p.InstAt(p.TextBase - 4); ok {
		t.Error("InstAt before text succeeded")
	}
	if _, ok := p.InstAt(p.TextEnd()); ok {
		t.Error("InstAt past text succeeded")
	}
	if _, ok := p.InstAt(p.TextBase + 2); ok {
		t.Error("InstAt unaligned succeeded")
	}
	if p.TextEnd() != p.TextBase+6*4 {
		t.Errorf("TextEnd = %#x", p.TextEnd())
	}
	if got := p.FuncName(p.Symbols["helper"] + 4); got != "helper" {
		t.Errorf("FuncName = %q", got)
	}
	names := p.SymbolNames()
	if len(names) != 5 || names[0] > names[1] {
		t.Errorf("SymbolNames = %v", names)
	}
	if p.HeapBase%4096 != 0 || p.HeapBase < p.Symbols["buf"]+128 {
		t.Errorf("heap base %#x", p.HeapBase)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p, err := Link(object(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.TextBase != 0x00400000 || p.SP != 0x7FFFF000 {
		t.Errorf("defaults not applied: %#x %#x", p.TextBase, p.SP)
	}
}

// TestLinkRejectsOverflowingLayout pins the 32-bit layout-wraparound fix:
// segment addresses are now computed in 64-bit arithmetic and validated
// against the stack region. Before the fix a 4GB BSS wrapped the heap
// base back onto the globals, and a 3GB one parked it above the stack
// top; both linked "successfully".
func TestLinkRejectsOverflowingLayout(t *testing.T) {
	mk := func() *Object {
		return &Object{
			Text:    []isa.Inst{{Op: isa.JR, Rs: isa.RA}},
			Symbols: map[string]Symbol{"main": {Name: "main", Section: SecText, Off: 0}},
		}
	}

	wrap := mk()
	wrap.BSSSize = 0xFFFFFFFF // heap base wraps past 2^32
	if _, err := Link(wrap, Config{}); err == nil {
		t.Error("linked an object whose BSS wraps the address space")
	}

	overrun := mk()
	overrun.BSSSize = 3 << 30 // heap base lands above the stack top
	if _, err := Link(overrun, Config{}); err == nil {
		t.Error("linked an object whose data segment overruns the stack")
	}

	textOverrun := mk()
	textOverrun.Text = make([]isa.Inst, 1025)
	for i := range textOverrun.Text {
		textOverrun.Text[i] = isa.Inst{Op: isa.JR, Rs: isa.RA}
	}
	cfg := Config{TextBase: 0x00400000, DataBase: 0x00401000, StackTop: 0x7FFFF000}
	if _, err := Link(textOverrun, cfg); err == nil {
		t.Error("linked text that overruns the data base")
	}
	textOverrun.Text = textOverrun.Text[:1024] // exactly fills the gap
	if _, err := Link(textOverrun, cfg); err != nil {
		t.Errorf("rejected text that exactly fits below the data base: %v", err)
	}

	// A large-but-sane BSS still links, heap page-aligned above it.
	ok := mk()
	ok.BSSSize = 1 << 20
	p, err := Link(ok, Config{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if p.HeapBase < 0x10000000+1<<20 || p.HeapBase > 0x10000000+1<<20+4096 {
		t.Errorf("heap base %#x not just past the 1MB BSS", p.HeapBase)
	}
}
