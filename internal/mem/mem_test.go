package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if m.Read8(0x1000) != 0 {
		t.Error("fresh memory not zero")
	}
	m.Write8(0x1000, 0xAB)
	if m.Read8(0x1000) != 0xAB {
		t.Error("write/read byte failed on zero value")
	}
}

func TestWidths(t *testing.T) {
	m := New()
	m.Write32(0x100, 0xDEADBEEF)
	if got := m.Read32(0x100); got != 0xDEADBEEF {
		t.Errorf("Read32 = %#x", got)
	}
	// Little-endian byte order.
	if m.Read8(0x100) != 0xEF || m.Read8(0x103) != 0xDE {
		t.Error("not little endian")
	}
	m.Write16(0x200, 0x1234)
	if m.Read16(0x200) != 0x1234 {
		t.Error("Read16 failed")
	}
	m.Write64(0x300, 0x0123456789ABCDEF)
	if m.Read64(0x300) != 0x0123456789ABCDEF {
		t.Error("Read64 failed")
	}
	if m.Read32(0x300) != 0x89ABCDEF {
		t.Error("Read64 low half wrong")
	}
}

func TestCrossPageAccesses(t *testing.T) {
	m := New()
	// Straddle the page boundary at 0x1000.
	for _, addr := range []uint32{0xFFD, 0xFFE, 0xFFF} {
		m.Write32(addr, 0xCAFEBABE)
		if got := m.Read32(addr); got != 0xCAFEBABE {
			t.Errorf("cross-page Read32(%#x) = %#x", addr, got)
		}
	}
	m.Write64(0xFFC, 0x1122334455667788)
	if got := m.Read64(0xFFC); got != 0x1122334455667788 {
		t.Errorf("cross-page Read64 = %#x", got)
	}
	m.Write16(0xFFF, 0xBEEF)
	if got := m.Read16(0xFFF); got != 0xBEEF {
		t.Errorf("cross-page Read16 = %#x", got)
	}
}

func TestBulk(t *testing.T) {
	m := New()
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.WriteBytes(0xFF0, data) // crosses several pages
	if got := m.ReadBytes(0xFF0, len(data)); !bytes.Equal(got, data) {
		t.Error("bulk round trip failed")
	}
	// Reading unmapped memory returns zeros.
	if got := m.ReadBytes(0x9000000, 16); !bytes.Equal(got, make([]byte, 16)) {
		t.Error("unmapped read not zero")
	}
}

func TestCString(t *testing.T) {
	m := New()
	m.WriteBytes(0x2000, []byte("hello\x00world"))
	if got := m.ReadCString(0x2000, 64); got != "hello" {
		t.Errorf("ReadCString = %q", got)
	}
	if got := m.ReadCString(0x2000, 3); got != "hel" {
		t.Errorf("ReadCString with max = %q", got)
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.Footprint() != 0 {
		t.Error("fresh footprint nonzero")
	}
	m.Write8(0, 1)
	m.Write8(1<<PageBits, 1)
	m.Write8(1<<PageBits+5, 1) // same page
	if m.PagesTouched() != 2 {
		t.Errorf("PagesTouched = %d, want 2", m.PagesTouched())
	}
	if m.Footprint() != 2<<PageBits {
		t.Errorf("Footprint = %d", m.Footprint())
	}
	// Reads of unmapped addresses do not allocate.
	_ = m.Read32(0x5000000)
	if m.PagesTouched() != 2 {
		t.Error("read allocated a page")
	}
}

// Property: a 32-bit write followed by a read at the same address returns
// the written value, at any address including page straddles.
func TestWriteReadProperty(t *testing.T) {
	m := New()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: byte-wise assembly agrees with word reads (little endian).
func TestEndiannessProperty(t *testing.T) {
	m := New()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		got := uint32(m.Read8(addr)) |
			uint32(m.Read8(addr+1))<<8 |
			uint32(m.Read8(addr+2))<<16 |
			uint32(m.Read8(addr+3))<<24
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
