// Package mem provides the sparse, paged 32-bit byte-addressable memory used
// by the functional emulator and the timing simulator. All multi-byte
// accesses are little-endian. Pages are allocated lazily on first touch,
// which also gives a cheap total-footprint metric (the "Mem Usage" column of
// the paper's Tables 3 and 4).
package mem

import "encoding/binary"

// PageBits is the log2 of the page size used for the sparse backing store.
const PageBits = 12

const (
	pageSize = 1 << PageBits
	pageMask = pageSize - 1
)

// Memory is a sparse 32-bit address space. The zero value is ready to use.
type Memory struct {
	pages map[uint32]*[pageSize]byte
	// One-entry lookup cache: accesses cluster heavily within a page
	// (stack frames, array walks), so remembering the last page touched
	// turns most map lookups into a compare. lastPage==nil means invalid.
	lastPN   uint32
	lastPage *[pageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	pn := addr >> PageBits
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	if m.pages == nil {
		m.pages = make(map[uint32]*[pageSize]byte)
	}
	p := m.pages[pn]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPage = pn, p
	return p
}

// peek returns the page if present, without allocating.
func (m *Memory) peek(addr uint32) *[pageSize]byte {
	pn := addr >> PageBits
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	if m.pages == nil {
		return nil
	}
	p := m.pages[pn]
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// Footprint returns the number of bytes of memory touched so far, rounded up
// to whole pages.
func (m *Memory) Footprint() uint64 {
	return uint64(len(m.pages)) * pageSize
}

// PagesTouched returns the number of distinct pages allocated.
func (m *Memory) PagesTouched() int { return len(m.pages) }

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint32) byte {
	if p := m.peek(addr); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// Write8 stores b at addr.
func (m *Memory) Write8(addr uint32, b byte) {
	m.page(addr)[addr&pageMask] = b
}

// Read16 returns the little-endian 16-bit value at addr.
func (m *Memory) Read16(addr uint32) uint16 {
	if addr&pageMask <= pageSize-2 {
		if p := m.peek(addr); p != nil {
			return binary.LittleEndian.Uint16(p[addr&pageMask:])
		}
		return 0
	}
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores v little-endian at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	if addr&pageMask <= pageSize-2 {
		binary.LittleEndian.PutUint16(m.page(addr)[addr&pageMask:], v)
		return
	}
	m.Write8(addr, byte(v))
	m.Write8(addr+1, byte(v>>8))
}

// Read32 returns the little-endian 32-bit value at addr.
func (m *Memory) Read32(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		if p := m.peek(addr); p != nil {
			return binary.LittleEndian.Uint32(p[addr&pageMask:])
		}
		return 0
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 stores v little-endian at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr)[addr&pageMask:], v)
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// Read64 returns the little-endian 64-bit value at addr.
func (m *Memory) Read64(addr uint32) uint64 {
	if addr&pageMask <= pageSize-8 {
		if p := m.peek(addr); p != nil {
			return binary.LittleEndian.Uint64(p[addr&pageMask:])
		}
		return 0
	}
	return uint64(m.Read32(addr)) | uint64(m.Read32(addr+4))<<32
}

// Write64 stores v little-endian at addr.
func (m *Memory) Write64(addr uint32, v uint64) {
	if addr&pageMask <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr)[addr&pageMask:], v)
		return
	}
	m.Write32(addr, uint32(v))
	m.Write32(addr+4, uint32(v>>32))
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		off := (addr + uint32(i)) & pageMask
		chunk := pageSize - int(off)
		if chunk > n-i {
			chunk = n - i
		}
		if p := m.peek(addr + uint32(i)); p != nil {
			copy(out[i:i+chunk], p[off:])
		}
		i += chunk
	}
	return out
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i := 0; i < len(b); {
		off := (addr + uint32(i)) & pageMask
		chunk := pageSize - int(off)
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(m.page(addr + uint32(i))[off:], b[i:i+chunk])
		i += chunk
	}
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes.
func (m *Memory) ReadCString(addr uint32, max int) string {
	var buf []byte
	for i := 0; i < max; i++ {
		b := m.Read8(addr + uint32(i))
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf)
}
