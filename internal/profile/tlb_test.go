package profile

import (
	"testing"

	"repro/internal/isa"
)

func TestTLBHitsAndMisses(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	if tlb.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !tlb.Access(0x1FFC) { // same 4KB page
		t.Error("same-page access missed")
	}
	if tlb.Access(0x2000) { // next page
		t.Error("new page hit")
	}
	acc, miss := tlb.Counts()
	if acc != 3 || miss != 2 {
		t.Errorf("counts = %d/%d", acc, miss)
	}
	if tlb.MissRatio() != 2.0/3 {
		t.Errorf("miss ratio = %v", tlb.MissRatio())
	}
}

func TestTLBCapacity(t *testing.T) {
	cfg := TLBConfig{Entries: 4, PageBits: 12}
	tlb := NewTLB(cfg)
	// Touch 4 pages, then re-touch: all hits (capacity holds them).
	for p := uint32(0); p < 4; p++ {
		tlb.Access(p << 12)
	}
	for p := uint32(0); p < 4; p++ {
		if !tlb.Access(p << 12) {
			t.Errorf("page %d evicted within capacity", p)
		}
	}
	// A working set far beyond capacity must keep missing.
	misses := 0
	for i := 0; i < 1000; i++ {
		if !tlb.Access(uint32(i%100) << 12) {
			misses++
		}
	}
	if misses < 500 {
		t.Errorf("only %d misses on a 100-page working set in a 4-entry TLB", misses)
	}
}

func TestTLBDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		tlb := NewTLB(DefaultTLBConfig())
		for i := 0; i < 5000; i++ {
			tlb.Access(uint32(i*7%200) << 12)
		}
		return tlb.Counts()
	}
	a1, m1 := run()
	a2, m2 := run()
	if a1 != a2 || m1 != m2 {
		t.Error("TLB replacement not deterministic")
	}
}

func TestTLBEmptyRatio(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	if tlb.MissRatio() != 0 {
		t.Error("empty TLB miss ratio not 0")
	}
}

func TestProfilerTracksTLB(t *testing.T) {
	p := New()
	p.Note(mkTrace(isa.LW, isa.GP, 0x10000000, 0, false))
	p.Note(mkTrace(isa.LW, isa.GP, 0x10000004, 0, false)) // same page
	p.Note(mkTrace(isa.LW, isa.GP, 0x20000000, 0, false)) // new page
	if p.P.TLBAccesses != 3 || p.P.TLBMisses != 2 {
		t.Errorf("profiler TLB counts = %d/%d", p.P.TLBAccesses, p.P.TLBMisses)
	}
	if p.P.DTLBMissRatio() != 2.0/3 {
		t.Errorf("DTLBMissRatio = %v", p.P.DTLBMissRatio())
	}
}
