package profile

// TLB models the paper's data TLB experiment (Section 5.4): a 64-entry,
// fully-associative, randomly-replaced translation buffer with 4KB pages,
// used to check that the software alignment support does not hurt virtual
// memory behaviour.

// TLBConfig sizes the TLB.
type TLBConfig struct {
	Entries  int
	PageBits uint
}

// DefaultTLBConfig matches the paper: 64 entries, 4KB pages.
func DefaultTLBConfig() TLBConfig { return TLBConfig{Entries: 64, PageBits: 12} }

// TLB is the translation buffer model.
type TLB struct {
	cfg    TLBConfig
	pages  []uint32
	valid  []bool
	index  map[uint32]int
	rng    uint32 // deterministic LCG for random replacement
	access uint64
	misses uint64
}

// NewTLB creates a TLB.
func NewTLB(cfg TLBConfig) *TLB {
	return &TLB{
		cfg:   cfg,
		pages: make([]uint32, cfg.Entries),
		valid: make([]bool, cfg.Entries),
		index: make(map[uint32]int, cfg.Entries),
		rng:   0x2545F491,
	}
}

// Access translates one data address, updating miss statistics.
func (t *TLB) Access(addr uint32) (hit bool) {
	t.access++
	page := addr >> t.cfg.PageBits
	if _, ok := t.index[page]; ok {
		return true
	}
	t.misses++
	// Fill an invalid entry if one exists; otherwise replace at random
	// (xorshift for determinism).
	slot := -1
	for i, v := range t.valid {
		if !v {
			slot = i
			break
		}
	}
	if slot < 0 {
		t.rng ^= t.rng << 13
		t.rng ^= t.rng >> 17
		t.rng ^= t.rng << 5
		slot = int(t.rng % uint32(t.cfg.Entries))
	}
	if t.valid[slot] {
		delete(t.index, t.pages[slot])
	}
	t.pages[slot] = page
	t.valid[slot] = true
	t.index[page] = slot
	return false
}

// MissRatio returns misses/accesses.
func (t *TLB) MissRatio() float64 {
	if t.access == 0 {
		return 0
	}
	return float64(t.misses) / float64(t.access)
}

// Counts returns (accesses, misses).
func (t *TLB) Counts() (uint64, uint64) { return t.access, t.misses }
