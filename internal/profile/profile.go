// Package profile implements the reference-behavior analyses of the paper's
// Section 2 and the prediction-accuracy measurements of Section 5.3/5.4:
// dynamic load/store counts, the breakdown of loads by addressing class
// (global pointer / stack pointer / general pointer), cumulative offset-size
// distributions, and fast-address-calculation failure rates for any set of
// predictor geometries.
package profile

import (
	"math/bits"

	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/prog"
)

// RefType classifies a memory reference by its base register, as in the
// paper: the global pointer, the stack/frame pointer, or anything else.
type RefType uint8

const (
	Global RefType = iota
	Stack
	General
	NumRefTypes
)

func (r RefType) String() string {
	switch r {
	case Global:
		return "global"
	case Stack:
		return "stack"
	}
	return "general"
}

// Classify maps a base register to its reference type.
func Classify(base isa.Reg) RefType {
	switch base {
	case isa.GP:
		return Global
	case isa.SP, isa.FP:
		return Stack
	}
	return General
}

// OffsetBuckets is the number of offset-size buckets: bucket 0 holds zero
// offsets, bucket k (1..32) offsets of k bits; negatives are counted apart.
const OffsetBuckets = 33

// GeomStats holds prediction outcomes for one predictor geometry.
type GeomStats struct {
	Geom fac.Config
	// All accesses.
	LoadFails  uint64
	StoreFails uint64
	// Excluding register+register mode (the paper's "No R+R" columns).
	LoadFailsNoRR  uint64
	StoreFailsNoRR uint64
}

// Profile accumulates reference behaviour over a program's execution.
type Profile struct {
	Insts  uint64
	Loads  uint64
	Stores uint64

	LoadsByType  [NumRefTypes]uint64
	StoresByType [NumRefTypes]uint64

	// Offset-size histograms for loads, per reference type.
	LoadOffsetBits [NumRefTypes][OffsetBuckets]uint64
	LoadNegOffsets [NumRefTypes]uint64

	// Register+register-mode reference counts.
	LoadsRR  uint64
	StoresRR uint64

	// Data TLB behaviour (paper Section 5.4: 64-entry fully-associative,
	// 4KB pages, random replacement).
	TLBAccesses uint64
	TLBMisses   uint64

	Geoms []GeomStats
}

// DTLBMissRatio returns the data TLB miss ratio.
func (p *Profile) DTLBMissRatio() float64 {
	return frac(p.TLBMisses, p.TLBAccesses)
}

// Profiler consumes an instruction trace.
type Profiler struct {
	P   Profile
	tlb *TLB
}

// New creates a profiler measuring the given predictor geometries.
func New(geoms ...fac.Config) *Profiler {
	p := &Profiler{tlb: NewTLB(DefaultTLBConfig())}
	for _, g := range geoms {
		p.P.Geoms = append(p.P.Geoms, GeomStats{Geom: g})
	}
	return p
}

// offsetBucket classifies a non-negative offset by bit length.
func offsetBucket(v uint32) int {
	if v == 0 {
		return 0
	}
	return bits.Len32(v)
}

// Note records one executed instruction.
func (p *Profiler) Note(tr emu.Trace) {
	p.P.Insts++
	op := tr.Inst.Op
	if !op.IsMem() {
		return
	}
	rt := Classify(tr.Inst.BaseReg())
	isRR := op.Mode() == isa.AMReg

	p.tlb.Access(tr.EffAddr)
	p.P.TLBAccesses, p.P.TLBMisses = p.tlb.Counts()

	if op.IsLoad() {
		p.P.Loads++
		p.P.LoadsByType[rt]++
		if isRR {
			p.P.LoadsRR++
		}
		if tr.Offset&0x80000000 != 0 {
			p.P.LoadNegOffsets[rt]++
		} else {
			p.P.LoadOffsetBits[rt][offsetBucket(tr.Offset)]++
		}
	} else {
		p.P.Stores++
		p.P.StoresByType[rt]++
		if isRR {
			p.P.StoresRR++
		}
	}

	for i := range p.P.Geoms {
		g := &p.P.Geoms[i]
		res := g.Geom.Predict(tr.Base, tr.Offset, tr.IsRegOffset)
		if res.OK {
			continue
		}
		if op.IsLoad() {
			g.LoadFails++
			if !isRR {
				g.LoadFailsNoRR++
			}
		} else {
			g.StoreFails++
			if !isRR {
				g.StoreFailsNoRR++
			}
		}
	}
}

// LoadFailRate returns the fraction of loads mispredicted under geometry i.
func (p *Profile) LoadFailRate(i int) float64 {
	return frac(p.Geoms[i].LoadFails, p.Loads)
}

// StoreFailRate returns the fraction of stores mispredicted under geometry i.
func (p *Profile) StoreFailRate(i int) float64 {
	return frac(p.Geoms[i].StoreFails, p.Stores)
}

// LoadFailRateNoRR excludes register+register-mode loads entirely.
func (p *Profile) LoadFailRateNoRR(i int) float64 {
	return frac(p.Geoms[i].LoadFailsNoRR, p.Loads-p.LoadsRR)
}

// StoreFailRateNoRR excludes register+register-mode stores entirely.
func (p *Profile) StoreFailRateNoRR(i int) float64 {
	return frac(p.Geoms[i].StoreFailsNoRR, p.Stores-p.StoresRR)
}

// LoadTypeShare returns the fraction of loads with the given reference type.
func (p *Profile) LoadTypeShare(rt RefType) float64 {
	return frac(p.LoadsByType[rt], p.Loads)
}

// CumulativeOffsetDist returns, for one reference type, the cumulative
// fraction of (non-negative) loads whose offset fits in <= k bits, for
// k = 0..32 — the paper's Figure 3 series.
func (p *Profile) CumulativeOffsetDist(rt RefType) [OffsetBuckets]float64 {
	var out [OffsetBuckets]float64
	total := p.LoadsByType[rt]
	if total == 0 {
		return out
	}
	var cum uint64
	for k := 0; k < OffsetBuckets; k++ {
		cum += p.LoadOffsetBits[rt][k]
		out[k] = float64(cum) / float64(total)
	}
	return out
}

func frac(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Run profiles a full program execution functionally.
func Run(p *prog.Program, maxInsts uint64, geoms ...fac.Config) (*Profile, *emu.Emulator, error) {
	e := emu.New(p)
	e.MaxInsts = maxInsts
	pr := New(geoms...)
	for !e.Halted {
		tr, err := e.Step()
		if err != nil {
			return &pr.P, e, err
		}
		pr.Note(tr)
	}
	return &pr.P, e, nil
}
