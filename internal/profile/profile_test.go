package profile

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/prog"
)

func TestClassify(t *testing.T) {
	if Classify(isa.GP) != Global || Classify(isa.SP) != Stack ||
		Classify(isa.FP) != Stack || Classify(isa.T0) != General {
		t.Error("classification wrong")
	}
	if Global.String() != "global" || Stack.String() != "stack" || General.String() != "general" {
		t.Error("strings wrong")
	}
}

func TestOffsetBucket(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 32767: 15}
	for v, want := range cases {
		if got := offsetBucket(v); got != want {
			t.Errorf("offsetBucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func mkTrace(op isa.Op, base isa.Reg, baseVal, ofs uint32, isReg bool) emu.Trace {
	return emu.Trace{
		Inst:        isa.Inst{Op: op, Rs: base},
		Base:        baseVal,
		Offset:      ofs,
		EffAddr:     baseVal + ofs,
		IsRegOffset: isReg,
	}
}

func TestNoteAccounting(t *testing.T) {
	geo := fac.Config{BlockBits: 5, SetBits: 14}
	p := New(geo)
	// gp load, zero offset: predicts.
	p.Note(mkTrace(isa.LW, isa.GP, 0x10000000, 0, false))
	// sp load, offset 0x66 from misaligned base: predicts (Fig 5c).
	p.Note(mkTrace(isa.LW, isa.SP, 0x7fff5b84, 0x66, false))
	// sp load, offset 364: fails (Fig 5d with 32B blocks? offset 364 still
	// conflicts: base bit pattern collides in the index field).
	p.Note(mkTrace(isa.LW, isa.SP, 0x7fff5b84, 364, false))
	// general reg+reg store, negative index: fails.
	p.Note(mkTrace(isa.SWX, isa.T0, 0x1000, 0xFFFFFFF0, true))
	// general store via pointer: predicts.
	p.Note(mkTrace(isa.SW, isa.T1, 0x2000, 0, false))
	// non-memory instruction.
	p.Note(emu.Trace{Inst: isa.Inst{Op: isa.ADD}})

	pr := &p.P
	if pr.Insts != 6 || pr.Loads != 3 || pr.Stores != 2 {
		t.Fatalf("counts: %+v", pr)
	}
	if pr.LoadsByType[Global] != 1 || pr.LoadsByType[Stack] != 2 || pr.LoadsByType[General] != 0 {
		t.Errorf("load types: %v", pr.LoadsByType)
	}
	if pr.StoresByType[General] != 2 {
		t.Errorf("store types: %v", pr.StoresByType)
	}
	if pr.StoresRR != 1 || pr.LoadsRR != 0 {
		t.Errorf("RR counts: %d %d", pr.StoresRR, pr.LoadsRR)
	}
	g := pr.Geoms[0]
	if g.LoadFails != 1 || g.StoreFails != 1 {
		t.Errorf("fails: %+v", g)
	}
	if g.StoreFailsNoRR != 0 {
		t.Errorf("NoRR store fails: %d", g.StoreFailsNoRR)
	}
	if got := pr.LoadFailRate(0); got != 1.0/3 {
		t.Errorf("LoadFailRate = %v", got)
	}
	if got := pr.StoreFailRateNoRR(0); got != 0 {
		t.Errorf("StoreFailRateNoRR = %v", got)
	}
	if got := pr.LoadTypeShare(Stack); got != 2.0/3 {
		t.Errorf("LoadTypeShare = %v", got)
	}
}

func TestCumulativeOffsetDist(t *testing.T) {
	p := New()
	// 2 zero offsets, 1 offset of 3 bits, 1 negative.
	p.Note(mkTrace(isa.LW, isa.T0, 0x1000, 0, false))
	p.Note(mkTrace(isa.LW, isa.T0, 0x1000, 0, false))
	p.Note(mkTrace(isa.LW, isa.T0, 0x1000, 4, false))
	p.Note(mkTrace(isa.LW, isa.T0, 0x1000, 0xFFFFFFFC, false))
	d := p.P.CumulativeOffsetDist(General)
	if d[0] != 0.5 {
		t.Errorf("cum[0] = %v, want 0.5", d[0])
	}
	if d[2] != 0.5 || d[3] != 0.75 {
		t.Errorf("cum[2..3] = %v %v", d[2], d[3])
	}
	if d[32] != 0.75 { // negatives never enter the cumulative curve
		t.Errorf("cum[32] = %v", d[32])
	}
	if p.P.LoadNegOffsets[General] != 1 {
		t.Errorf("neg offsets = %d", p.P.LoadNegOffsets[General])
	}
}

func TestRunOnProgram(t *testing.T) {
	src := `
	.sdata
g:	.word 5
	.text
main:
	lw  $t0, g          # global-pointer load
	lw  $t1, 8($sp)     # stack load
	la  $t2, g
	lw  $t3, 0($t2)     # general load, zero offset
	sw  $t3, 4($sp)
	jr  $ra
`
	o, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prog.Link(o, prog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof, e, err := Run(p, 1000, fac.Config{BlockBits: 5, SetBits: 14})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Halted {
		t.Error("program did not halt")
	}
	if prof.Loads != 3 || prof.Stores != 1 {
		t.Errorf("loads=%d stores=%d", prof.Loads, prof.Stores)
	}
	if prof.LoadsByType[Global] != 1 || prof.LoadsByType[Stack] != 1 || prof.LoadsByType[General] != 1 {
		t.Errorf("types: %v", prof.LoadsByType)
	}
}

func TestZeroDenominators(t *testing.T) {
	p := New(fac.Config{BlockBits: 5, SetBits: 14})
	if p.P.LoadFailRate(0) != 0 || p.P.StoreFailRate(0) != 0 ||
		p.P.LoadFailRateNoRR(0) != 0 || p.P.LoadTypeShare(Global) != 0 {
		t.Error("zero-denominator rates not zero")
	}
	d := p.P.CumulativeOffsetDist(Stack)
	if d[32] != 0 {
		t.Error("empty distribution not zero")
	}
}
