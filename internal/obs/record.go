// RunRecord is the canonical machine-readable result of one timing run,
// and Report the artifact format cmd/experiments -json and the
// BENCH_*.json benchmark files share. The encoding is deterministic:
// fixed field order, sorted records, trimmed histograms — two runs of the
// same (benchmark, toolchain, machine) produce byte-identical JSON.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/fac"
)

// Schema identifiers, bumped on incompatible changes.
const (
	RunRecordSchema = "fac/run-record/v1"
	ReportSchema    = "fac/report/v1"
)

// MarshalJSON emits the histogram with trailing zero buckets trimmed.
func (h Hist) MarshalJSON() ([]byte, error) {
	n := len(h.Buckets)
	for n > 0 && h.Buckets[n-1] == 0 {
		n--
	}
	return json.Marshal(struct {
		Buckets []uint64 `json:"buckets"`
		Count   uint64   `json:"count"`
		Sum     uint64   `json:"sum"`
		Max     uint64   `json:"max"`
	}{h.Buckets[:n], h.Count, h.Sum, h.Max})
}

// UnmarshalJSON accepts the trimmed form.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var raw struct {
		Buckets []uint64 `json:"buckets"`
		Count   uint64   `json:"count"`
		Sum     uint64   `json:"sum"`
		Max     uint64   `json:"max"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*h = Hist{Count: raw.Count, Sum: raw.Sum, Max: raw.Max}
	if len(raw.Buckets) > HistBuckets {
		return fmt.Errorf("obs: histogram has %d buckets, max %d", len(raw.Buckets), HistBuckets)
	}
	copy(h.Buckets[:], raw.Buckets)
	return nil
}

// StallBreakdown is the per-cause stall-cycle accounting. The fields sum
// to the total number of stall cycles (cycles in which no instruction
// issued while the simulation was active).
type StallBreakdown struct {
	Frontend    uint64 `json:"frontend"`
	Operand     uint64 `json:"operand"`
	Unit        uint64 `json:"unit"`
	MemPort     uint64 `json:"mem_port"`
	StoreBuffer uint64 `json:"store_buffer"`
	Drain       uint64 `json:"drain"`
}

// FromCounts converts the pipeline's per-cause counter array.
func (b *StallBreakdown) FromCounts(c [NumStallCauses]uint64) {
	b.Frontend = c[StallFrontend]
	b.Operand = c[StallOperand]
	b.Unit = c[StallUnit]
	b.MemPort = c[StallMemPort]
	b.StoreBuffer = c[StallStoreBuffer]
	b.Drain = c[StallDrain]
}

// ToCounts inverts FromCounts, rebuilding the pipeline's per-cause
// counter array (used when rehydrating Stats from a cached RunRecord).
func (b StallBreakdown) ToCounts(c *[NumStallCauses]uint64) {
	c[StallFrontend] = b.Frontend
	c[StallOperand] = b.Operand
	c[StallUnit] = b.Unit
	c[StallMemPort] = b.MemPort
	c[StallStoreBuffer] = b.StoreBuffer
	c[StallDrain] = b.Drain
}

// Total sums the categories.
func (b StallBreakdown) Total() uint64 {
	return b.Frontend + b.Operand + b.Unit + b.MemPort + b.StoreBuffer + b.Drain
}

// FailureBreakdown counts raised verification-failure signals by kind.
// A single misprediction can raise several signals, so the fields may
// sum to more than the misprediction count.
type FailureBreakdown struct {
	Overflow      uint64 `json:"overflow"`
	GenCarry      uint64 `json:"gencarry"`
	LargeNegConst uint64 `json:"largenegconst"`
	NegIndexReg   uint64 `json:"negindexreg"`
}

// FromCounts converts a per-signal counter array (indexed as
// fac.FailureSignals).
func (b *FailureBreakdown) FromCounts(c [fac.NumFailureSignals]uint64) {
	b.Overflow = c[0]
	b.GenCarry = c[1]
	b.LargeNegConst = c[2]
	b.NegIndexReg = c[3]
}

// ToCounts inverts FromCounts.
func (b FailureBreakdown) ToCounts(c *[fac.NumFailureSignals]uint64) {
	c[0] = b.Overflow
	c[1] = b.GenCarry
	c[2] = b.LargeNegConst
	c[3] = b.NegIndexReg
}

// FACRecord is the predictor section of a RunRecord, present only when
// the run speculated.
type FACRecord struct {
	LoadsSpeculated  uint64           `json:"loads_speculated"`
	LoadFails        uint64           `json:"load_fails"`
	StoresSpeculated uint64           `json:"stores_speculated"`
	StoreFails       uint64           `json:"store_fails"`
	ExtraAccesses    uint64           `json:"extra_accesses"`
	LoadFailKinds    FailureBreakdown `json:"load_fail_kinds"`
	StoreFailKinds   FailureBreakdown `json:"store_fail_kinds"`

	// Predictor-zoo extension (internal/predict): absent for the paper's
	// FAC machine, whose records keep the original encoding above. For
	// other machines Predictor names the machine, the NoPredict counters
	// record eligible accesses the machine declined, and the fail-cause
	// maps replace the FAC-specific breakdown structs, keyed by the
	// machine's own signal names (map keys marshal sorted, so records
	// remain byte-deterministic).
	Predictor       string            `json:"predictor,omitempty"`
	LoadsNoPredict  uint64            `json:"loads_nopredict,omitempty"`
	StoresNoPredict uint64            `json:"stores_nopredict,omitempty"`
	LoadFailCauses  map[string]uint64 `json:"load_fail_causes,omitempty"`
	StoreFailCauses map[string]uint64 `json:"store_fail_causes,omitempty"`
}

// CacheRecord is one cache's section of a RunRecord.
type CacheRecord struct {
	Accesses    uint64 `json:"accesses"`
	Misses      uint64 `json:"misses"`
	DelayedHits uint64 `json:"delayed_hits"`
	Evictions   uint64 `json:"evictions"`
	Writebacks  uint64 `json:"writebacks"`
	MSHROcc     Hist   `json:"mshr_occupancy"`
}

// RunRecord is one (benchmark, toolchain, machine) timing result.
type RunRecord struct {
	Schema    string `json:"schema"`
	Benchmark string `json:"benchmark"`
	Class     string `json:"class,omitempty"`
	Toolchain string `json:"toolchain"`
	Machine   string `json:"machine"`

	Cycles uint64  `json:"cycles"`
	Insts  uint64  `json:"instructions"`
	IPC    float64 `json:"ipc"`
	Loads  uint64  `json:"loads"`
	Stores uint64  `json:"stores"`

	IssueActiveCycles uint64         `json:"issue_active_cycles"`
	StallCyclesTotal  uint64         `json:"stall_cycles_total"`
	Stalls            StallBreakdown `json:"stall_cycles"`

	BranchLookups     uint64 `json:"branch_lookups"`
	BranchMispredicts uint64 `json:"branch_mispredicts"`
	StoreBufFull      uint64 `json:"store_buffer_full_stalls"`

	LoadLatency Hist `json:"load_latency"`

	FAC    *FACRecord   `json:"fac,omitempty"`
	ICache *CacheRecord `json:"icache,omitempty"`
	DCache *CacheRecord `json:"dcache,omitempty"`
}

// Key orders records deterministically within a report.
func (r RunRecord) Key() string {
	return r.Benchmark + "|" + r.Toolchain + "|" + r.Machine
}

// Report is a set of run records plus optional harness-level metrics
// (throughput numbers in BENCH_*.json files).
type Report struct {
	Schema  string             `json:"schema"`
	Tool    string             `json:"tool,omitempty"`    // producing command
	Go      string             `json:"go,omitempty"`      // toolchain version
	Metrics map[string]float64 `json:"metrics,omitempty"` // keys sorted by encoding/json
	Records []RunRecord        `json:"records"`
}

// NewReport builds an empty report with the current schema.
func NewReport(tool, goVersion string) *Report {
	return &Report{Schema: ReportSchema, Tool: tool, Go: goVersion}
}

// Add appends a record.
func (r *Report) Add(rec RunRecord) { r.Records = append(r.Records, rec) }

// Sort orders records by (benchmark, toolchain, machine).
func (r *Report) Sort() {
	sort.Slice(r.Records, func(i, j int) bool { return r.Records[i].Key() < r.Records[j].Key() })
}

// Encode renders the report as indented JSON with a trailing newline,
// records sorted. The output is byte-deterministic for identical runs.
func (r *Report) Encode() ([]byte, error) {
	if r.Records == nil {
		r.Records = []RunRecord{}
	}
	r.Sort()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReport parses a report produced by Encode.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("obs: unknown report schema %q (want %q)", r.Schema, ReportSchema)
	}
	return &r, nil
}

// DiffLine is one regression-relevant difference between two reports.
type DiffLine struct {
	Key   string // benchmark|toolchain|machine
	Field string // "cycles", "ipc", ...
	Old   float64
	New   float64
	Delta float64 // (new-old)/old
}

func (d DiffLine) String() string {
	return fmt.Sprintf("%-40s %-12s %14.3f -> %14.3f  (%+.2f%%)", d.Key, d.Field, d.Old, d.New, 100*d.Delta)
}

// Diff compares two reports record-by-record and returns the cycle/IPC/
// stall-total changes whose relative magnitude exceeds tolerance, plus a
// line for every record present in only one report. This is the
// mechanical form of "diff two BENCH_*.json files to detect a
// regression" described in docs/OBSERVABILITY.md.
func Diff(old, new *Report, tolerance float64) []DiffLine {
	idx := make(map[string]RunRecord, len(old.Records))
	for _, r := range old.Records {
		idx[r.Key()] = r
	}
	var out []DiffLine
	seen := make(map[string]bool, len(new.Records))
	for _, n := range new.Records {
		seen[n.Key()] = true
		o, ok := idx[n.Key()]
		if !ok {
			out = append(out, DiffLine{Key: n.Key(), Field: "added"})
			continue
		}
		cmp := func(field string, ov, nv float64) {
			if ov == 0 && nv == 0 {
				return
			}
			var delta float64
			if ov != 0 {
				delta = (nv - ov) / ov
			} else {
				delta = 1
			}
			if delta >= tolerance || delta <= -tolerance {
				out = append(out, DiffLine{Key: n.Key(), Field: field, Old: ov, New: nv, Delta: delta})
			}
		}
		cmp("cycles", float64(o.Cycles), float64(n.Cycles))
		cmp("ipc", o.IPC, n.IPC)
		cmp("stall_total", float64(o.StallCyclesTotal), float64(n.StallCyclesTotal))
	}
	for _, o := range old.Records {
		if !seen[o.Key()] {
			out = append(out, DiffLine{Key: o.Key(), Field: "removed"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Field < out[j].Field
	})
	return out
}
