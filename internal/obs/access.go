package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AccessEventSchema versions the service access-log line format. Bump it
// when a field changes meaning, so log consumers can detect drift.
const AccessEventSchema = "fac/access/v1"

// Access event kinds. Unlike the simulator's Event stream, access events
// describe the *service* around the simulator — who asked for what, what
// was admitted or refused, and how long admitted work waited and ran.
const (
	// AccessRequest: one HTTP request completed, with its final status.
	AccessRequest = "request"
	// AccessAdmit: a batch submission was accepted; Jobs counts its jobs.
	AccessAdmit = "admit"
	// AccessReject: a request was refused (auth, quota, overload, bad
	// input); Reason carries the human-readable cause.
	AccessReject = "reject"
	// AccessComplete: one job reached a terminal state, with queue-wait
	// and run-latency timings.
	AccessComplete = "complete"
)

// AccessEvent is one structured service access-log record. Zero-valued
// fields are omitted from the JSON encoding, so each event kind only
// carries the fields that apply to it. Unlike RunRecord exports, access
// events are operational telemetry: they carry wall-clock time and are
// not part of the deterministic report surface.
type AccessEvent struct {
	Time   time.Time `json:"time"`
	Event  string    `json:"event"`
	Client string    `json:"client,omitempty"`
	Method string    `json:"method,omitempty"`
	Path   string    `json:"path,omitempty"`
	Status int       `json:"status,omitempty"`
	Reason string    `json:"reason,omitempty"`
	Batch  string    `json:"batch,omitempty"`
	Job    string    `json:"job,omitempty"`
	Jobs   int       `json:"jobs,omitempty"`
	State  string    `json:"state,omitempty"`
	// CacheHit marks a completion served from the persistent result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// QueueWaitMS is submission-to-start latency for batch jobs.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// RunMS is start-to-terminal latency (simulation or cache lookup).
	RunMS float64 `json:"run_ms,omitempty"`
}

// AccessSink receives service access events. Implementations must be
// safe for concurrent use: the service emits from request handlers and
// worker goroutines alike.
type AccessSink interface {
	Access(e AccessEvent)
}

// AccessLog writes access events as JSON Lines to an io.Writer, one
// object per line, serialized by an internal mutex. Encoding errors are
// dropped: the access log is telemetry and must never fail a request.
type AccessLog struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewAccessLog returns an AccessLog writing to w.
func NewAccessLog(w io.Writer) *AccessLog {
	return &AccessLog{enc: json.NewEncoder(w)}
}

// Access implements AccessSink.
func (l *AccessLog) Access(e AccessEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(e)
}

// AccessCollector retains every event in memory; tests and the facload
// soak verifier use it (or parse an AccessLog file into one).
type AccessCollector struct {
	mu     sync.Mutex
	events []AccessEvent
}

// Access implements AccessSink.
func (c *AccessCollector) Access(e AccessEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

// Events snapshots the collected events in arrival order.
func (c *AccessCollector) Events() []AccessEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AccessEvent, len(c.events))
	copy(out, c.events)
	return out
}

// ByEvent counts collected events per kind.
func (c *AccessCollector) ByEvent(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Event == kind {
			n++
		}
	}
	return n
}
