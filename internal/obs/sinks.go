package obs

import (
	"sort"

	"repro/internal/fac"
)

// SiteStats accumulates fast-address-calculation outcomes for one static
// instruction site (PC).
type SiteStats struct {
	PC         uint32
	Speculated uint64 // speculative cache accesses issued from this site
	Fails      uint64 // of which mispredicted
	// NoPredict counts eligible accesses the prediction machine declined
	// (FlagNoPredict events); they are not speculations and never fail.
	NoPredict uint64
	FailMask  fac.Failure // union of failure signals seen
	Store     bool        // site is a store
	// Observed-value aggregates over FlagHasVal events (integer accesses):
	// the OR and AND of every transferred value plus the unsigned min and
	// max. Together they summarize the dynamic value set tightly enough to
	// refute a wrong static cell claim in both the known-bits and interval
	// domains (difftest's value-soundness oracle).
	ValCount uint64
	ValOr    uint32
	ValAnd   uint32
	ValMin   uint32
	ValMax   uint32
}

// FailRate returns the fraction of speculated accesses that mispredicted.
func (s SiteStats) FailRate() float64 {
	if s.Speculated == 0 {
		return 0
	}
	return float64(s.Fails) / float64(s.Speculated)
}

// SiteCollector aggregates KindFACPredict events per instruction site —
// the paper's Section 5.4 misprediction-attribution analysis. Attach it
// to a timing run with FAC enabled; cmd/facprof is built on it.
type SiteCollector struct {
	Sites map[uint32]*SiteStats
}

// NewSiteCollector creates an empty collector.
func NewSiteCollector() *SiteCollector {
	return &SiteCollector{Sites: make(map[uint32]*SiteStats)}
}

// Event implements Sink.
func (c *SiteCollector) Event(e Event) {
	if e.Kind != KindFACPredict {
		return
	}
	s := c.Sites[e.PC]
	if s == nil {
		s = &SiteStats{PC: e.PC, Store: e.Flags&FlagStore != 0}
		c.Sites[e.PC] = s
	}
	if e.Flags&FlagHasVal != 0 {
		v := uint32(e.Val)
		if s.ValCount == 0 {
			s.ValOr, s.ValAnd, s.ValMin, s.ValMax = v, v, v, v
		} else {
			s.ValOr |= v
			s.ValAnd &= v
			s.ValMin = min(s.ValMin, v)
			s.ValMax = max(s.ValMax, v)
		}
		s.ValCount++
	}
	if e.Flags&FlagNoPredict != 0 {
		s.NoPredict++
		return
	}
	s.Speculated++
	if e.Fail != 0 {
		s.Fails++
		s.FailMask |= e.Fail
	}
}

// TopFailing returns up to n sites with at least one misprediction,
// ordered by failure count descending with PC as the deterministic
// tiebreak.
func (c *SiteCollector) TopFailing(n int) []*SiteStats {
	var list []*SiteStats
	//lint:sorted
	for _, s := range c.Sites {
		if s.Fails > 0 {
			list = append(list, s)
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Fails != list[j].Fails {
			return list[i].Fails > list[j].Fails
		}
		return list[i].PC < list[j].PC
	})
	if len(list) > n {
		list = list[:n]
	}
	return list
}

// All returns every observed site ordered by PC — the deterministic
// iteration order used when cross-checking dynamic counters against
// static verdicts (internal/difftest, cmd/facprof -static).
func (c *SiteCollector) All() []*SiteStats {
	list := make([]*SiteStats, 0, len(c.Sites))
	//lint:sorted
	for _, s := range c.Sites {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].PC < list[j].PC })
	return list
}

// Counter is a trivial sink counting events by kind; used by tests and
// quick sanity checks.
type Counter struct {
	ByKind [NumKinds]uint64
}

// Event implements Sink.
func (c *Counter) Event(e Event) { c.ByKind[e.Kind]++ }

// Total returns the total event count.
func (c *Counter) Total() uint64 {
	var t uint64
	for _, n := range c.ByKind {
		t += n
	}
	return t
}

// Tee fans one event stream out to several sinks.
type Tee []Sink

// Event implements Sink.
func (t Tee) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}
