// Package obs is the observability layer of the timing simulator: a
// pluggable event stream emitted by the pipeline and the caches, the
// histogram and stall-cause accounting types aggregated into pipeline
// statistics, and the canonical machine-readable RunRecord export every
// experiment and benchmark artifact is built from.
//
// The event stream costs nothing when disabled: all emission sites are
// guarded by a nil check on the sink, and an Event is a small value type
// that never escapes when no sink is attached. Consumers implement Sink
// and attach it via pipeline.RunObserved / core.RunWithSink; the
// simulator calls Event synchronously, in simulation order, so a sink
// observes a deterministic sequence for a deterministic run.
package obs

import "repro/internal/fac"

// Kind discriminates pipeline and cache events.
type Kind uint8

const (
	// KindFetch: a fetch group left the I-fetch stage. PC is the group's
	// first instruction, Val the number of instructions fetched, Cycle the
	// fetch cycle.
	KindFetch Kind = iota
	// KindIssue: one instruction issued. PC identifies the instruction,
	// Addr is the effective address for memory operations (0 otherwise),
	// Val the cycle its result becomes available.
	KindIssue
	// KindFACPredict: a load or store accessed the cache speculatively
	// under address prediction (fast address calculation or any
	// internal/predict machine). Addr is the predicted address, Fail the
	// resolved failure signals (0 = prediction held), FlagStore
	// distinguishes stores. With FlagNoPredict the machine declined to
	// predict and no speculative access was made (Addr 0, Fail 0).
	KindFACPredict
	// KindReplay: a mispredicted speculative access replayed in MEM with
	// the architectural address (Addr). Cycle is the replay cycle.
	KindReplay
	// KindCacheAccess: a cache serviced an access. Addr is the target,
	// Val the cycle the data is ready; flags carry write/hit/delayed-hit/
	// MSHR-full. A delayed hit is an MSHR merge: the access hit a block
	// still being filled by an outstanding miss.
	KindCacheAccess
	// KindStoreRetire: the store buffer retired its oldest entry to the
	// cache. Addr is the store address, Val the retire cycle.
	KindStoreRetire
	// KindStall: a cycle in which no instruction issued. Cause carries
	// the attributed stall category.
	KindStall

	NumKinds
)

var kindNames = [NumKinds]string{
	"fetch", "issue", "fac_predict", "replay", "cache_access", "store_retire", "stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Flags qualify an event.
type Flags uint8

const (
	FlagStore      Flags = 1 << iota // the access is a store / write
	FlagHit                          // cache access hit a resident block
	FlagDelayedHit                   // cache access merged into an in-flight fill
	FlagMSHRFull                     // cache access bounced off a full MSHR file
	// FlagNoPredict marks a KindFACPredict event for an eligible access
	// the active prediction machine declined to predict (cold table entry,
	// tag conflict, statically proven-failing site): the access proceeded
	// non-speculatively. Addr is 0 and Fail empty — no cache access was
	// made with a guessed address.
	FlagNoPredict
	// FlagHasVal marks a KindFACPredict event whose Val field carries the
	// architectural register-visible value the access transferred (loads:
	// the value written to the destination; stores: the stored register).
	// Set for integer accesses only; the difftest value-soundness oracle
	// aggregates these against the static analysis' per-site cell claims.
	FlagHasVal
)

// StallCause attributes a no-issue cycle to the hazard blocking the head
// of the issue queue. Exactly one cause is charged per stalled cycle, so
// the per-cause counters sum to the total number of stall cycles.
type StallCause uint8

const (
	// StallFrontend: the issue queue is empty or its head has not cleared
	// decode — the frontend (I-cache miss, BTB redirect, fetch latency)
	// is not delivering.
	StallFrontend StallCause = iota
	// StallOperand: the head instruction waits on a source register
	// (load-use or long-latency dependence).
	StallOperand
	// StallUnit: a non-memory functional unit is busy (ALU bank full,
	// multiplier/divider issue interval).
	StallUnit
	// StallMemPort: the data-cache port or AGU limit blocks a memory
	// operation this cycle.
	StallMemPort
	// StallStoreBuffer: the store buffer is full; the store at the head
	// waits for the oldest entry to retire.
	StallStoreBuffer
	// StallDrain: the program has finished issuing; remaining cycles
	// drain the store buffer.
	StallDrain

	NumStallCauses
)

var stallNames = [NumStallCauses]string{
	"frontend", "operand", "unit", "mem_port", "store_buffer", "drain",
}

func (c StallCause) String() string {
	if int(c) < len(stallNames) {
		return stallNames[c]
	}
	return "unknown"
}

// Event is one observation. Fields beyond Kind and Cycle are
// kind-specific; see the Kind constants.
type Event struct {
	Kind  Kind
	Flags Flags
	Cause StallCause  // KindStall only
	Fail  fac.Failure // KindFACPredict only
	Cycle uint64
	PC    uint32
	Addr  uint32
	Val   uint64
}

// Sink receives the event stream. Implementations must not retain the
// Event past the call. Calls arrive synchronously from the simulation
// loop; an expensive sink slows the simulation but cannot perturb it.
type Sink interface {
	Event(e Event)
}

// HistBuckets is the number of linear histogram buckets; the last bucket
// absorbs all larger samples.
const HistBuckets = 32

// Hist is a fixed-size linear histogram of small non-negative integer
// samples (latencies in cycles, MSHR occupancies). Bucket i counts
// samples of value i; the final bucket counts samples >= HistBuckets-1.
type Hist struct {
	Buckets [HistBuckets]uint64 `json:"buckets"`
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Max     uint64              `json:"max"`
}

// Add records one sample.
func (h *Hist) Add(v uint64) {
	i := v
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the average sample value.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
