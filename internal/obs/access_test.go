package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAccessLogJSONLines: events encode one JSON object per line, with
// kind-specific fields present and zero-valued fields omitted.
func TestAccessLogJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	l.Access(AccessEvent{Time: time.Unix(1, 0).UTC(), Event: AccessRequest,
		Client: "alice", Method: "POST", Path: "/v1/batches", Status: 202})
	l.Access(AccessEvent{Time: time.Unix(2, 0).UTC(), Event: AccessComplete,
		Client: "alice", Job: "j1", Batch: "b1", State: "done",
		CacheHit: true, QueueWaitMS: 12.5, RunMS: 80})

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	req := lines[0]
	if req["event"] != "request" || req["client"] != "alice" || req["status"] != float64(202) {
		t.Fatalf("request line %+v", req)
	}
	if _, present := req["cache_hit"]; present {
		t.Fatalf("zero-valued cache_hit not omitted: %+v", req)
	}
	done := lines[1]
	if done["event"] != "complete" || done["job"] != "j1" || done["cache_hit"] != true {
		t.Fatalf("complete line %+v", done)
	}
	if done["queue_wait_ms"] != 12.5 || done["run_ms"] != float64(80) {
		t.Fatalf("latency fields %+v", done)
	}
}

// TestAccessLogConcurrent: concurrent emitters never interleave bytes
// mid-line.
func TestAccessLogConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				l.Access(AccessEvent{Event: AccessAdmit, Client: strings.Repeat("x", 64), Jobs: k})
			}
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("invalid JSON line: %q", sc.Text())
		}
		n++
	}
	if n != 8*50 {
		t.Fatalf("%d lines, want %d", n, 8*50)
	}
}

// TestAccessCollector: collection and per-kind counting.
func TestAccessCollector(t *testing.T) {
	var c AccessCollector
	c.Access(AccessEvent{Event: AccessAdmit, Jobs: 3})
	c.Access(AccessEvent{Event: AccessReject, Reason: "quota"})
	c.Access(AccessEvent{Event: AccessReject, Reason: "auth"})
	if c.ByEvent(AccessReject) != 2 || c.ByEvent(AccessAdmit) != 1 || c.ByEvent(AccessComplete) != 0 {
		t.Fatalf("counts wrong: %+v", c.Events())
	}
	ev := c.Events()
	if len(ev) != 3 || ev[1].Reason != "quota" {
		t.Fatalf("events %+v", ev)
	}
}
