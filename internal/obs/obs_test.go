package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/fac"
)

func TestHistAddMeanMax(t *testing.T) {
	var h Hist
	for _, v := range []uint64{1, 1, 2, 5, 100} {
		h.Add(v)
	}
	if h.Count != 5 || h.Sum != 109 || h.Max != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count, h.Sum, h.Max)
	}
	if h.Buckets[1] != 2 || h.Buckets[2] != 1 || h.Buckets[5] != 1 {
		t.Fatalf("unexpected buckets %v", h.Buckets)
	}
	// 100 overflows into the last bucket.
	if h.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d", h.Buckets[HistBuckets-1])
	}
	if got, want := h.Mean(), 109.0/5; got != want {
		t.Fatalf("mean %v, want %v", got, want)
	}
}

func TestHistJSONRoundTripTrimsTrailingZeros(t *testing.T) {
	var h Hist
	h.Add(1)
	h.Add(3)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets beyond index 3 are zero and must be trimmed.
	if want := `"buckets":[0,1,0,1]`; !bytes.Contains(data, []byte(want)) {
		t.Fatalf("marshal = %s, want to contain %s", data, want)
	}
	var back Hist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip: got %+v want %+v", back, h)
	}
}

func TestStallBreakdownTotal(t *testing.T) {
	var counts [NumStallCauses]uint64
	for i := range counts {
		counts[i] = uint64(i + 1)
	}
	var b StallBreakdown
	b.FromCounts(counts)
	var want uint64
	for _, c := range counts {
		want += c
	}
	if b.Total() != want {
		t.Fatalf("Total = %d, want %d", b.Total(), want)
	}
	if b.Frontend != 1 || b.Drain != uint64(NumStallCauses) {
		t.Fatalf("field mapping wrong: %+v", b)
	}
}

func TestFailureBreakdownFromCountInto(t *testing.T) {
	var counts [fac.NumFailureSignals]uint64
	(fac.FailOverflow | fac.FailGenCarry).CountInto(&counts)
	fac.FailGenCarry.CountInto(&counts)
	var b FailureBreakdown
	b.FromCounts(counts)
	if b.Overflow != 1 || b.GenCarry != 2 || b.LargeNegConst != 0 || b.NegIndexReg != 0 {
		t.Fatalf("breakdown %+v", b)
	}
}

func TestSiteCollectorTopFailing(t *testing.T) {
	c := NewSiteCollector()
	emit := func(pc uint32, fail fac.Failure, n int) {
		for i := 0; i < n; i++ {
			c.Event(Event{Kind: KindFACPredict, PC: pc, Fail: fail})
		}
	}
	emit(0x100, 0, 10)               // never fails
	emit(0x200, fac.FailGenCarry, 3) // 3 fails
	emit(0x300, fac.FailOverflow, 3) // 3 fails (tie, higher pc)
	emit(0x400, fac.FailNegIndexReg, 5)
	c.Event(Event{Kind: KindIssue, PC: 0x500}) // ignored

	top := c.TopFailing(10)
	if len(top) != 3 {
		t.Fatalf("got %d failing sites, want 3", len(top))
	}
	if top[0].PC != 0x400 || top[1].PC != 0x200 || top[2].PC != 0x300 {
		t.Fatalf("order: %#x %#x %#x", top[0].PC, top[1].PC, top[2].PC)
	}
	if top[1].FailRate() != 1.0 {
		t.Fatalf("fail rate %v", top[1].FailRate())
	}
	if got := c.TopFailing(1); len(got) != 1 || got[0].PC != 0x400 {
		t.Fatalf("TopFailing(1) = %+v", got)
	}
}

func TestCounterAndTee(t *testing.T) {
	var a, b Counter
	tee := Tee{&a, &b}
	tee.Event(Event{Kind: KindIssue})
	tee.Event(Event{Kind: KindStall})
	tee.Event(Event{Kind: KindIssue})
	if a.ByKind[KindIssue] != 2 || b.ByKind[KindStall] != 1 || a.Total() != 3 {
		t.Fatalf("counter state: %+v %+v", a, b)
	}
}

func sampleRecord(bench, tc, machine string, cycles uint64) RunRecord {
	r := RunRecord{
		Schema: RunRecordSchema, Benchmark: bench, Toolchain: tc, Machine: machine,
		Cycles: cycles, Insts: cycles * 2, IPC: 2.0,
	}
	r.Stalls = StallBreakdown{Frontend: 5, Operand: 10}
	r.StallCyclesTotal = r.Stalls.Total()
	return r
}

func TestReportEncodeDeterministicAndSorted(t *testing.T) {
	mk := func(order []int) []byte {
		rep := NewReport("test", "go0")
		recs := []RunRecord{
			sampleRecord("b", "base", "fac32", 100),
			sampleRecord("a", "fac", "base32", 200),
			sampleRecord("a", "base", "base32", 300),
		}
		for _, i := range order {
			rep.Add(recs[i])
		}
		data, err := rep.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	x := mk([]int{0, 1, 2})
	y := mk([]int{2, 0, 1})
	if !bytes.Equal(x, y) {
		t.Fatalf("encoding depends on insertion order:\n%s\nvs\n%s", x, y)
	}
	rep, err := DecodeReport(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 3 || rep.Records[0].Key() != "a|base|base32" {
		t.Fatalf("decoded records out of order: %+v", rep.Records)
	}
	if _, err := DecodeReport([]byte(`{"schema":"bogus","records":[]}`)); err == nil {
		t.Fatal("expected schema error")
	}
}

func TestDiffDetectsChangesAndMembership(t *testing.T) {
	oldRep := NewReport("t", "")
	newRep := NewReport("t", "")
	oldRep.Add(sampleRecord("same", "base", "m", 1000))
	newRep.Add(sampleRecord("same", "base", "m", 1000))
	oldRep.Add(sampleRecord("slow", "base", "m", 1000))
	newRep.Add(sampleRecord("slow", "base", "m", 1100)) // +10% cycles
	oldRep.Add(sampleRecord("gone", "base", "m", 10))
	newRep.Add(sampleRecord("new", "base", "m", 10))

	lines := Diff(oldRep, newRep, 0.01)
	keys := map[string]string{}
	for _, l := range lines {
		keys[l.Key+"/"+l.Field] = l.Field
	}
	if _, ok := keys["slow|base|m/cycles"]; !ok {
		t.Fatalf("missing cycles regression in %v", lines)
	}
	if _, ok := keys["new|base|m/added"]; !ok {
		t.Fatalf("missing added record in %v", lines)
	}
	if _, ok := keys["gone|base|m/removed"]; !ok {
		t.Fatalf("missing removed record in %v", lines)
	}
	for k := range keys {
		if k == "same|base|m/cycles" {
			t.Fatalf("unchanged record reported: %v", lines)
		}
	}
	if n := len(Diff(oldRep, oldRep, 0.01)); n != 0 {
		t.Fatalf("self-diff produced %d lines", n)
	}
}
