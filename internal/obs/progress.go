package obs

import "time"

// ProgressEventSchema versions the batch progress-stream line format
// served by the service's SSE endpoint (GET /v1/batches/{id}/events).
// Bump it when a field changes meaning, so stream consumers can detect
// drift. The schema is announced once, in the stream's opening "hello"
// event, rather than repeated on every line.
const ProgressEventSchema = "fac/progress/v1"

// Progress event kinds. "queued", "running", "done", "failed", and
// "cancelled" are per-job state transitions (mirroring the job states in
// the batch API); "batch" is the stream's terminal summary, emitted
// exactly once when the last job of the batch reaches a terminal state.
const (
	ProgressQueued    = "queued"
	ProgressRunning   = "running"
	ProgressDone      = "done"
	ProgressFailed    = "failed"
	ProgressCancelled = "cancelled"
	ProgressBatch     = "batch"
)

// ProgressCounts is the batch's per-state job census. Every progress
// event carries the counts as of the transition it describes, so a
// consumer can render a progress bar statelessly from any single event.
// Queued+Running+Done+Failed+Cancelled == Total always holds.
type ProgressCounts struct {
	Total     int `json:"total"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Terminal reports whether every job of the batch has reached a terminal
// state.
func (c ProgressCounts) Terminal() bool { return c.Queued == 0 && c.Running == 0 }

// ProgressEvent is one entry in a batch's progress stream. Like
// AccessEvent — and unlike RunRecord — progress events are operational
// telemetry: they carry wall-clock time and are not part of the
// deterministic report surface. Seq numbers events densely from 0 within
// one batch, so a consumer that reconnects can detect gaps (the service
// replays the full log on subscribe, so gaps should never be observed).
type ProgressEvent struct {
	Seq    int       `json:"seq"`
	Time   time.Time `json:"time"`
	Event  string    `json:"event"`
	Batch  string    `json:"batch"`
	Job    string    `json:"job,omitempty"`
	Client string    `json:"client,omitempty"`
	// Worker names the fleet worker that served the job, when the serving
	// runner dispatched it to one (empty for locally simulated jobs).
	Worker string `json:"worker,omitempty"`
	// CacheHit marks a completion served from the persistent result cache.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// QueueWaitMS and RunMS mirror the job view's service latencies and
	// are set on terminal job events.
	QueueWaitMS float64        `json:"queue_wait_ms,omitempty"`
	RunMS       float64        `json:"run_ms,omitempty"`
	Counts      ProgressCounts `json:"counts"`
}
