// Package ltb implements the load target buffer of Golden & Mudge (1993),
// the alternative address-prediction mechanism the paper compares against
// in its Related Work section: a PC-indexed table that predicts a load's
// effective address from its own history, rather than from its operands.
// The paper argues fast address calculation is both cheaper and more
// accurate; the experiments package measures that claim (see
// experiments.CompareLTB).
//
// Two prediction policies are provided: last-address (predict the address
// the load produced last time) and stride (last address plus a confirmed
// stride, which captures array walks).
package ltb

import "fmt"

// Config sizes the buffer.
type Config struct {
	Entries int // direct-mapped entry count (power of two)
	// Stride enables stride prediction: a 2-bit confidence counter guards
	// last+stride; without it the entry predicts the last address.
	Stride bool
	// TagBits truncates the stored tag to its low TagBits bits, modeling a
	// partial-tag table (a hardware-cost knob: fewer tag bits means false
	// sharing between loads that alias). 0 keeps the full tag.
	TagBits uint
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("ltb: entry count %d not a positive power of two", c.Entries)
	}
	if c.TagBits > 30 {
		return fmt.Errorf("ltb: tag bits %d exceed the 30 usable PC-word bits", c.TagBits)
	}
	return nil
}

type entry struct {
	valid      bool
	tag        uint32
	lastAddr   uint32
	stride     uint32
	confidence uint8 // 2-bit: >=2 uses the stride
}

// Predictor is a direct-mapped load target buffer.
type Predictor struct {
	cfg     Config
	entries []entry
	idxBits uint

	lookups uint64
	hits    uint64 // predictions made (entry present)
	correct uint64
}

// New builds a predictor; it panics on invalid geometry.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{cfg: cfg, entries: make([]entry, cfg.Entries)}
	for 1<<p.idxBits < cfg.Entries {
		p.idxBits++
	}
	return p
}

func (p *Predictor) index(pc uint32) (uint32, uint32) {
	word := pc >> 2
	tag := word >> p.idxBits
	if p.cfg.TagBits > 0 {
		tag &= 1<<p.cfg.TagBits - 1
	}
	return word & uint32(p.cfg.Entries-1), tag
}

// Predict returns the predicted effective address for the load at pc.
// ok is false on a cold or conflicting entry (no prediction; the access
// proceeds non-speculatively).
func (p *Predictor) Predict(pc uint32) (addr uint32, ok bool) {
	addr, _, ok = p.Lookup(pc)
	return addr, ok
}

// Lookup is Predict plus the path taken: usedStride reports whether the
// prediction came from the confirmed-stride path (last+stride) rather than
// the last-address path. Pure — table state is unchanged.
func (p *Predictor) Lookup(pc uint32) (addr uint32, usedStride, ok bool) {
	idx, tag := p.index(pc)
	e := &p.entries[idx]
	if !e.valid || e.tag != tag {
		return 0, false, false
	}
	if p.cfg.Stride && e.confidence >= 2 {
		return e.lastAddr + e.stride, true, true
	}
	return e.lastAddr, false, true
}

// Access performs a full predict-then-update step for the load at pc with
// architectural address actual, and reports whether a prediction was made
// and whether it was correct.
func (p *Predictor) Access(pc, actual uint32) (predicted, correct bool) {
	p.lookups++
	pred, ok := p.Predict(pc)
	if ok {
		p.hits++
		if pred == actual {
			p.correct++
			correct = true
		}
	}
	p.Update(pc, actual)
	return ok, correct
}

// Update trains the entry for pc with the architectural address. Exposed so
// callers that separate predict (issue stage) from train (EX stage) — the
// internal/predict machines — can drive the table directly; Access composes
// the two for trace-replay counting.
func (p *Predictor) Update(pc, actual uint32) {
	idx, tag := p.index(pc)
	e := &p.entries[idx]
	if !e.valid || e.tag != tag {
		*e = entry{valid: true, tag: tag, lastAddr: actual}
		return
	}
	newStride := actual - e.lastAddr
	if p.cfg.Stride {
		if newStride == e.stride {
			if e.confidence < 3 {
				e.confidence++
			}
		} else {
			if e.confidence > 0 {
				e.confidence--
			}
			if e.confidence == 0 {
				e.stride = newStride
			}
		}
	}
	e.lastAddr = actual
}

// Stats returns (lookups, predictions made, correct predictions).
func (p *Predictor) Stats() (lookups, predicted, correct uint64) {
	return p.lookups, p.hits, p.correct
}

// Accuracy returns correct predictions as a fraction of all lookups (cold
// misses count as failures, as they deny the latency benefit).
func (p *Predictor) Accuracy() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.lookups)
}

// Coverage returns the fraction of lookups for which a prediction existed.
func (p *Predictor) Coverage() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.lookups)
}
