package ltb

import (
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := (Config{Entries: 1024}).Validate(); err != nil {
		t.Error(err)
	}
	for _, n := range []int{0, -4, 3, 1000} {
		if err := (Config{Entries: n}).Validate(); err == nil {
			t.Errorf("Entries=%d accepted", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(Config{Entries: 3})
}

func TestColdMiss(t *testing.T) {
	p := New(Config{Entries: 64})
	if _, ok := p.Predict(0x400000); ok {
		t.Error("cold entry predicted")
	}
	predicted, correct := p.Access(0x400000, 0x1000)
	if predicted || correct {
		t.Error("cold access counted as prediction")
	}
}

func TestLastAddressPolicy(t *testing.T) {
	p := New(Config{Entries: 64})
	pc := uint32(0x400010)
	p.Access(pc, 0x2000)
	// Same address repeats: last-address predicts it.
	if predicted, correct := p.Access(pc, 0x2000); !predicted || !correct {
		t.Error("repeated address not predicted")
	}
	// Strided walk: last-address is always one step behind.
	p2 := New(Config{Entries: 64})
	wrong := 0
	for i := 0; i < 10; i++ {
		if predicted, correct := p2.Access(pc, uint32(0x3000+i*4)); predicted && !correct {
			wrong++
		}
	}
	if wrong != 9 {
		t.Errorf("last-address mispredicted %d of 9 strided accesses", wrong)
	}
}

func TestStridePolicy(t *testing.T) {
	p := New(Config{Entries: 64, Stride: true})
	pc := uint32(0x400010)
	hits := 0
	for i := 0; i < 20; i++ {
		if _, correct := p.Access(pc, uint32(0x3000+i*8)); correct {
			hits++
		}
	}
	// After the stride is confirmed (a few accesses), every prediction hits.
	if hits < 15 {
		t.Errorf("stride predictor hit only %d of 20 strided accesses", hits)
	}
	// Random addresses defeat it.
	p2 := New(Config{Entries: 64, Stride: true})
	r := rand.New(rand.NewSource(9))
	hits = 0
	for i := 0; i < 200; i++ {
		if _, correct := p2.Access(pc, r.Uint32()&^3); correct {
			hits++
		}
	}
	if hits > 10 {
		t.Errorf("stride predictor hit %d of 200 random accesses", hits)
	}
}

func TestAliasing(t *testing.T) {
	p := New(Config{Entries: 16})
	pcA := uint32(0x400000)
	pcB := pcA + 16*4 // same index, different tag
	p.Access(pcA, 0x1000)
	if _, ok := p.Predict(pcB); ok {
		t.Error("aliased entry predicted for wrong tag")
	}
	p.Access(pcB, 0x2000) // replaces A
	if _, ok := p.Predict(pcA); ok {
		t.Error("A survived replacement")
	}
}

func TestStats(t *testing.T) {
	p := New(Config{Entries: 64})
	pc := uint32(0x400020)
	p.Access(pc, 0x1000) // cold
	p.Access(pc, 0x1000) // hit, correct
	p.Access(pc, 0x2000) // hit, wrong
	lookups, predicted, correct := p.Stats()
	if lookups != 3 || predicted != 2 || correct != 1 {
		t.Errorf("stats = %d/%d/%d", lookups, predicted, correct)
	}
	if p.Accuracy() != 1.0/3 || p.Coverage() != 2.0/3 {
		t.Errorf("accuracy %v coverage %v", p.Accuracy(), p.Coverage())
	}
	var empty Predictor
	if empty.Accuracy() != 0 || empty.Coverage() != 0 {
		t.Error("empty predictor rates not zero")
	}
}

// Property: the stride predictor eventually locks onto any constant stride.
func TestStrideLockProperty(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		p := New(Config{Entries: 64, Stride: true})
		pc := uint32(0x400000 + r.Intn(64)*4)
		stride := uint32(r.Intn(64) * 4)
		base := r.Uint32() &^ 3
		// Warm up, then the tail must predict perfectly.
		for i := 0; i < 5; i++ {
			p.Access(pc, base+uint32(i)*stride)
		}
		for i := 5; i < 15; i++ {
			if _, correct := p.Access(pc, base+uint32(i)*stride); !correct {
				t.Fatalf("trial %d: stride %d not locked at access %d", trial, stride, i)
			}
		}
	}
}
