// Package pipeline implements the cycle-level timing model of the paper's
// baseline machine (Table 5): a 4-way in-order-issue superscalar with
// out-of-order completion, a 5-stage pipe (IF ID EX MEM WB), a BTB branch
// predictor, banked functional units, a non-blocking data cache with a
// non-merging store buffer — extended with fast address calculation
// (Section 5.5): loads and stores may access the data cache speculatively in
// EX using the predicted effective address, replaying in MEM on a
// misprediction.
//
// The model is trace-driven: a functional emulator supplies the dynamic
// instruction stream (with operand values for the predictor), and this
// package accounts time.
package pipeline

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/fac"
	"repro/internal/obs"
	"repro/internal/predict"
)

// Latency describes one operation class: Result is the number of cycles
// until a dependent may issue; Interval is the unit's issue interval
// (cycles until the unit accepts another operation).
type Latency struct {
	Result   int
	Interval int
}

// Config describes the machine. DefaultConfig matches the paper's Table 5.
type Config struct {
	FetchWidth int // contiguous instructions fetched per cycle
	IssueWidth int // in-order issue width

	IntALUs     int // pipelined single-cycle ALUs
	LoadStore   int // load/store (AGU) units
	FPAdders    int // pipelined FP add/compare/convert units
	IntALULat   Latency
	IntMulLat   Latency
	IntDivLat   Latency
	FPAddLat    Latency
	FPMulLat    Latency
	FPDivLat    Latency
	LoadLatency int // cycles from issue to use for a cache-hit load (2 = addr calc + access)

	BTBEntries        int
	MispredictPenalty int

	ICache cache.Config
	DCache cache.Config
	// PerfectICache / PerfectDCache force every access to hit.
	PerfectICache bool
	PerfectDCache bool

	// Cache bandwidth: each cycle the data cache services up to
	// DCacheReadsPerCycle loads or one store (Table 5), speculative or
	// otherwise.
	DCacheReadsPerCycle int

	StoreBufferEntries int

	// Fast address calculation.
	FAC             bool       // deprecated alias for Predictor: "fac" (kept so existing configs stay byte-identical)
	FACGeom         fac.Config // predictor geometry (derived from DCache if zero)
	SpeculateRegReg bool       // speculate register+register-mode accesses (operand-based machines)
	SpeculateStores bool       // speculate stores (enter buffer in EX)

	// Predictor selects an address-prediction machine from internal/predict
	// ("fac", "pcax", "stride", "selective"); empty disables speculation
	// unless the deprecated FAC alias above is set. PredictorEntries and
	// PredictorTagBits size the table machines (zero selects the package
	// defaults; PredictorTagBits may be predict.FullTags). The new fields
	// are omitempty so configs predating the zoo marshal — and therefore
	// cache-key and deps-log hash — exactly as before.
	Predictor        string `json:",omitempty"`
	PredictorEntries int    `json:",omitempty"`
	PredictorTagBits int    `json:",omitempty"`
	// StaticTable supplies the selective machine's baked per-site verdicts
	// (predict.BuildStaticTable over the linked program). Excluded from
	// serialization: the verdicts are a pure function of the program and
	// geometry, both of which already key the result cache.
	StaticTable *predict.StaticTable `json:"-"`

	// NoFastForward disables stall fast-forwarding (the cycle loop then
	// visits every stall cycle individually). Timing, statistics, and the
	// event stream are identical either way — the flag exists so the
	// equivalence can be regression-tested (TestFastForwardExact) and so
	// anomalies can be bisected to the fast path.
	NoFastForward bool

	// AGI selects the alternative pipeline organization of Jouppi (1989)
	// discussed in the paper's Related Work: a dedicated address-generation
	// stage with ALU execution pushed to the cache-access stage. It removes
	// the load-use hazard (a load's consumer executes a stage later) but
	// introduces an address-use hazard (an ALU result feeding a base
	// register costs a bubble) and lengthens the branch resolution path;
	// callers should also raise MispredictPenalty by one (MachineConfig's
	// "agi" machine does). Mutually exclusive with FAC.
	AGI bool
}

// DefaultConfig returns the paper's baseline machine. Values flagged as
// OCR-ambiguous in the source text are documented in DESIGN.md.
func DefaultConfig() Config {
	return Config{
		FetchWidth: 4,
		IssueWidth: 4,

		IntALUs:     4,
		LoadStore:   2,
		FPAdders:    2,
		IntALULat:   Latency{1, 1},
		IntMulLat:   Latency{3, 1},
		IntDivLat:   Latency{20, 19},
		FPAddLat:    Latency{2, 1},
		FPMulLat:    Latency{4, 1},
		FPDivLat:    Latency{12, 12},
		LoadLatency: 2,

		BTBEntries:        1024,
		MispredictPenalty: 2,

		ICache: cache.Config{Size: 16 << 10, BlockSize: 32, Assoc: 1, MissLatency: 16},
		DCache: cache.Config{Size: 16 << 10, BlockSize: 32, Assoc: 1, MissLatency: 16, MSHRs: 8},

		DCacheReadsPerCycle: 2,
		StoreBufferEntries:  16,

		SpeculateStores: true,
	}
}

// PredictorName resolves the configured address-prediction machine:
// Predictor when set, "fac" under the deprecated FAC alias, "" when the
// machine does not speculate.
func (c Config) PredictorName() string {
	if c.Predictor != "" {
		return c.Predictor
	}
	if c.FAC {
		return "fac"
	}
	return ""
}

// FACGeometry returns the predictor geometry the simulator will use:
// FACGeom when set, otherwise the geometry derived from the data cache
// (block-offset bits from the block size, set bits from the
// direct-mapped span). Exported so differential checkers can re-run the
// predictor the simulator ran.
func (c Config) FACGeometry() fac.Config {
	g := c.FACGeom
	if g.BlockBits == 0 && g.SetBits == 0 {
		g.BlockBits = log2(uint(c.DCache.BlockSize))
		g.SetBits = log2(uint(c.DCache.Size / c.DCache.Assoc))
	}
	return g
}

func log2(v uint) uint {
	n := uint(0)
	for 1<<n < v {
		n++
	}
	return n
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 {
		return fmt.Errorf("pipeline: non-positive widths")
	}
	if c.IntALUs <= 0 || c.LoadStore <= 0 || c.FPAdders <= 0 {
		return fmt.Errorf("pipeline: non-positive unit counts")
	}
	if c.LoadLatency < 1 || c.LoadLatency > 2 {
		return fmt.Errorf("pipeline: LoadLatency must be 1 or 2")
	}
	if !c.PerfectICache {
		if err := c.ICache.Validate(); err != nil {
			return err
		}
	}
	if !c.PerfectDCache {
		if err := c.DCache.Validate(); err != nil {
			return err
		}
	}
	if c.DCacheReadsPerCycle <= 0 {
		return fmt.Errorf("pipeline: DCacheReadsPerCycle must be positive")
	}
	if c.StoreBufferEntries <= 0 {
		return fmt.Errorf("pipeline: StoreBufferEntries must be positive")
	}
	if c.FAC && c.Predictor != "" && c.Predictor != "fac" {
		return fmt.Errorf("pipeline: deprecated FAC alias conflicts with Predictor %q", c.Predictor)
	}
	if name := c.PredictorName(); name != "" {
		known := false
		for _, n := range predict.Names() {
			if n == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("pipeline: unknown predictor %q (have %v)", name, predict.Names())
		}
		if name == "fac" || name == "selective" {
			if err := c.FACGeometry().Validate(); err != nil {
				return err
			}
		}
		if c.AGI {
			return fmt.Errorf("pipeline: address prediction and AGI are mutually exclusive")
		}
	}
	return nil
}

// Stats is the result of a timing run.
type Stats struct {
	Cycles uint64
	Insts  uint64
	Loads  uint64
	Stores uint64

	// Address-prediction outcome counts (FAC or any internal/predict
	// machine; the Predictor field below names which).
	LoadsSpeculated  uint64
	StoresSpeculated uint64
	LoadSpecFailed   uint64
	StoreSpecFailed  uint64
	// LoadsNoPredict / StoresNoPredict count eligible accesses for which
	// the machine declined to predict (cold table entry, tag conflict,
	// site statically proven failing); they proceed non-speculatively and
	// are neither speculated nor failed. Always zero for the FAC machine,
	// which predicts every eligible access.
	LoadsNoPredict  uint64
	StoresNoPredict uint64
	// ExtraAccesses is the number of data-cache accesses wasted on
	// mispredicted speculative attempts (Table 6's bandwidth overhead).
	ExtraAccesses uint64

	BranchLookups     uint64
	BranchMispredicts uint64

	StoreBufferFullStalls uint64

	// Stall accounting: StallCycles[c] counts simulated cycles in which
	// no instruction issued, attributed to the cause blocking the head of
	// the issue queue; IssueActiveCycles counts cycles with at least one
	// issue. Together they partition every cycle of the issue loop.
	StallCycles       [obs.NumStallCauses]uint64
	IssueActiveCycles uint64

	// LoadLatency is the issue-to-use latency distribution of every load.
	LoadLatency obs.Hist

	// Per-signal misprediction breakdown (indexed as fac.FailureSignals);
	// one misprediction may raise several signals.
	LoadFailKinds  [fac.NumFailureSignals]uint64
	StoreFailKinds [fac.NumFailureSignals]uint64

	// FACEnabled records whether the run speculated (an address-prediction
	// machine was active); Predictor names it ("fac" for the paper's
	// machine, including runs configured through the deprecated alias).
	FACEnabled bool
	Predictor  string

	ICache cache.Stats
	DCache cache.Stats
}

// StallTotal returns the total number of no-issue cycles; by
// construction it equals the sum of the per-cause counters.
func (s Stats) StallTotal() uint64 {
	var t uint64
	for _, n := range s.StallCycles {
		t += n
	}
	return t
}

// Record converts the statistics of one run into the canonical
// machine-readable RunRecord (see docs/OBSERVABILITY.md for the schema).
func (s Stats) Record(benchmark, class, toolchain, machine string) obs.RunRecord {
	r := obs.RunRecord{
		Schema:    obs.RunRecordSchema,
		Benchmark: benchmark,
		Class:     class,
		Toolchain: toolchain,
		Machine:   machine,

		Cycles: s.Cycles,
		Insts:  s.Insts,
		IPC:    s.IPC(),
		Loads:  s.Loads,
		Stores: s.Stores,

		IssueActiveCycles: s.IssueActiveCycles,
		StallCyclesTotal:  s.StallTotal(),

		BranchLookups:     s.BranchLookups,
		BranchMispredicts: s.BranchMispredicts,
		StoreBufFull:      s.StoreBufferFullStalls,

		LoadLatency: s.LoadLatency,
	}
	r.Stalls.FromCounts(s.StallCycles)
	if s.FACEnabled {
		f := &obs.FACRecord{
			LoadsSpeculated:  s.LoadsSpeculated,
			LoadFails:        s.LoadSpecFailed,
			StoresSpeculated: s.StoresSpeculated,
			StoreFails:       s.StoreSpecFailed,
			ExtraAccesses:    s.ExtraAccesses,
		}
		if s.Predictor == "" || s.Predictor == "fac" {
			// The paper's machine keeps its original encoding — the four
			// named failure-breakdown fields and nothing else — so records
			// produced before the predictor zoo stay byte-identical.
			f.LoadFailKinds.FromCounts(s.LoadFailKinds)
			f.StoreFailKinds.FromCounts(s.StoreFailKinds)
		} else {
			names := predict.SignalNamesFor(s.Predictor)
			f.Predictor = s.Predictor
			f.LoadsNoPredict = s.LoadsNoPredict
			f.StoresNoPredict = s.StoresNoPredict
			f.LoadFailCauses = failCauses(names, s.LoadFailKinds)
			f.StoreFailCauses = failCauses(names, s.StoreFailKinds)
		}
		r.FAC = f
	}
	cacheRec := func(cs cache.Stats) *obs.CacheRecord {
		if cs.Accesses == 0 {
			return nil // perfect (modelled-absent) cache
		}
		return &obs.CacheRecord{
			Accesses:    cs.Accesses,
			Misses:      cs.Misses,
			DelayedHits: cs.DelayedHits,
			Evictions:   cs.Evictions,
			Writebacks:  cs.Writebacks,
			MSHROcc:     cs.MSHROcc,
		}
	}
	r.ICache = cacheRec(s.ICache)
	r.DCache = cacheRec(s.DCache)
	return r
}

// StatsFromRecord inverts Stats.Record, rebuilding the timing statistics
// of a run from its canonical RunRecord. The persistent result cache
// (internal/simsvc) stores RunRecords on disk; this is how a cache hit
// rehydrates into the Stats the experiment tables consume. The round trip
// is exact: StatsFromRecord(s.Record(b, c, t, m)).Record(b, c, t, m)
// equals s.Record(b, c, t, m) field for field.
func StatsFromRecord(r obs.RunRecord) Stats {
	s := Stats{
		Cycles: r.Cycles,
		Insts:  r.Insts,
		Loads:  r.Loads,
		Stores: r.Stores,

		BranchLookups:     r.BranchLookups,
		BranchMispredicts: r.BranchMispredicts,

		StoreBufferFullStalls: r.StoreBufFull,

		IssueActiveCycles: r.IssueActiveCycles,
		LoadLatency:       r.LoadLatency,
	}
	r.Stalls.ToCounts(&s.StallCycles)
	if r.FAC != nil {
		s.FACEnabled = true
		s.LoadsSpeculated = r.FAC.LoadsSpeculated
		s.LoadSpecFailed = r.FAC.LoadFails
		s.StoresSpeculated = r.FAC.StoresSpeculated
		s.StoreSpecFailed = r.FAC.StoreFails
		s.ExtraAccesses = r.FAC.ExtraAccesses
		if r.FAC.Predictor == "" || r.FAC.Predictor == "fac" {
			s.Predictor = "fac"
			r.FAC.LoadFailKinds.ToCounts(&s.LoadFailKinds)
			r.FAC.StoreFailKinds.ToCounts(&s.StoreFailKinds)
		} else {
			s.Predictor = r.FAC.Predictor
			s.LoadsNoPredict = r.FAC.LoadsNoPredict
			s.StoresNoPredict = r.FAC.StoresNoPredict
			names := predict.SignalNamesFor(r.FAC.Predictor)
			for i, n := range names {
				s.LoadFailKinds[i] = r.FAC.LoadFailCauses[n]
				s.StoreFailKinds[i] = r.FAC.StoreFailCauses[n]
			}
		}
	}
	fromCacheRec := func(cr *obs.CacheRecord) cache.Stats {
		if cr == nil {
			return cache.Stats{}
		}
		return cache.Stats{
			Accesses:    cr.Accesses,
			Misses:      cr.Misses,
			DelayedHits: cr.DelayedHits,
			Evictions:   cr.Evictions,
			Writebacks:  cr.Writebacks,
			MSHROcc:     cr.MSHROcc,
		}
	}
	s.ICache = fromCacheRec(r.ICache)
	s.DCache = fromCacheRec(r.DCache)
	return s
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// LoadFailRate returns the fraction of speculated loads that mispredicted.
func (s Stats) LoadFailRate() float64 { return ratio(s.LoadSpecFailed, s.LoadsSpeculated) }

// StoreFailRate returns the fraction of speculated stores that mispredicted.
func (s Stats) StoreFailRate() float64 { return ratio(s.StoreSpecFailed, s.StoresSpeculated) }

// BandwidthOverhead returns extra cache accesses as a fraction of total
// memory references (the paper's Table 6 metric).
func (s Stats) BandwidthOverhead() float64 { return ratio(s.ExtraAccesses, s.Loads+s.Stores) }

// failCauses renders a slot-indexed failure-count array as a name-keyed
// map for serialization (nil when every slot is zero, so the field is
// omitted; JSON object keys marshal sorted, keeping records deterministic).
func failCauses(names []string, counts [fac.NumFailureSignals]uint64) map[string]uint64 {
	var m map[string]uint64
	for i, n := range names {
		if counts[i] != 0 {
			if m == nil {
				m = make(map[string]uint64, len(names))
			}
			m[n] = counts[i]
		}
	}
	return m
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
