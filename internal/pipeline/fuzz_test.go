package pipeline_test

// The random-trace generator that used to live here produced streams the
// speculative paths never saw: branches were always not-taken, and no
// post-increment or register+register accesses were ever emitted, so the
// reg+reg speculation path and the base-update timing went untested. The
// generator now lives in internal/difftest (RandomTrace), which covers
// taken branches, post-increment, reg+reg (including negative index
// registers), and FP memory traffic, and is shared with the differential
// fuzzing harness.

import (
	"math/rand"
	"testing"

	"repro/internal/difftest"
	"repro/internal/emu"
	"repro/internal/pipeline"
)

// fastConfig is a machine with perfect caches and perfect fetch, isolating
// the issue timing under test (external-test mirror of sim_test.go's
// fastCfg).
func fastConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.PerfectICache = true
	cfg.PerfectDCache = true
	return cfg
}

// TestRandomTraceInvariants drives many random instruction streams through
// several machine configurations and checks global invariants of the
// timing model.
func TestRandomTraceInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	configs := []func() pipeline.Config{
		fastConfig,
		func() pipeline.Config { c := fastConfig(); c.FAC = true; return c },
		func() pipeline.Config { c := fastConfig(); c.FAC = true; c.SpeculateRegReg = true; return c },
		pipeline.DefaultConfig,
		func() pipeline.Config { c := pipeline.DefaultConfig(); c.FAC = true; return c },
		func() pipeline.Config { c := fastConfig(); c.AGI = true; return c },
		func() pipeline.Config { c := fastConfig(); c.LoadLatency = 1; return c },
	}
	for trial := 0; trial < 40; trial++ {
		n := 50 + r.Intn(500)
		trs := difftest.RandomTrace(r, n)
		for ci, mk := range configs {
			cfg := mk()
			st, err := pipeline.Run(cfg, difftest.NewSliceSource(trs))
			if err != nil {
				t.Fatalf("trial %d config %d: %v", trial, ci, err)
			}
			if st.Insts != uint64(n) {
				t.Fatalf("trial %d config %d: executed %d of %d", trial, ci, st.Insts, n)
			}
			// The machine cannot beat its issue width.
			if st.Cycles < uint64((n+cfg.IssueWidth-1)/cfg.IssueWidth) {
				t.Fatalf("trial %d config %d: %d cycles for %d insts exceeds issue width",
					trial, ci, st.Cycles, n)
			}
			// Speculation accounting is internally consistent.
			if st.LoadSpecFailed > st.LoadsSpeculated || st.StoresSpeculated > st.Stores ||
				st.LoadsSpeculated > st.Loads || st.StoreSpecFailed > st.StoresSpeculated {
				t.Fatalf("trial %d config %d: inconsistent speculation stats %+v", trial, ci, st)
			}
			if st.ExtraAccesses != st.LoadSpecFailed+st.StoreSpecFailed {
				t.Fatalf("trial %d config %d: extra accesses %d != failed speculations %d+%d",
					trial, ci, st.ExtraAccesses, st.LoadSpecFailed, st.StoreSpecFailed)
			}
			if !cfg.FAC && (st.LoadsSpeculated != 0 || st.StoresSpeculated != 0) {
				t.Fatalf("trial %d config %d: speculation without FAC", trial, ci)
			}
		}
	}
}

// TestRandomTraceOracle runs the shared generator's streams through the
// full difftest event-stream checker from inside the pipeline package's
// test suite, so a timing-model regression fails here even when the
// difftest package itself is not under test.
func TestRandomTraceOracle(t *testing.T) {
	for seed := int64(40); seed < 44; seed++ {
		trs := difftest.RandomTrace(rand.New(rand.NewSource(seed)), 2000)
		if err := difftest.RunTrace(trs, difftest.Machines()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFACNeverCatastrophic: on adversarial random traces (predictions fail
// often and memory operations are dense), FAC costs at most a bounded
// amount of extra bandwidth contention. The paper acknowledges this
// failure mode ("the processor may end up stalling more often on the
// store buffer, possibly resulting in overall worse performance",
// Section 3.1); on the real workload suite FAC never degrades more than
// ~3% (see the experiments package tests).
func TestFACNeverCatastrophic(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		trs := difftest.RandomTrace(r, 400)
		base := mustRunExt(t, fastConfig(), trs)
		cfg := fastConfig()
		cfg.FAC = true
		facStats := mustRunExt(t, cfg, trs)
		if float64(facStats.Cycles) > 1.20*float64(base.Cycles)+4 {
			t.Fatalf("trial %d: FAC %d cycles vs baseline %d (degradation beyond bound)",
				trial, facStats.Cycles, base.Cycles)
		}
	}
}

func mustRunExt(t *testing.T, cfg pipeline.Config, trs []emu.Trace) pipeline.Stats {
	t.Helper()
	st, err := pipeline.Run(cfg, difftest.NewSliceSource(trs))
	if err != nil {
		t.Fatal(err)
	}
	return st
}
