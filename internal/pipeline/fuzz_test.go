package pipeline

import (
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// randTraceProgram builds a random but well-formed straight-line dynamic
// trace (contiguous PCs; occasional taken branches redirecting to the next
// trace element's PC).
func randTraceProgram(r *rand.Rand, n int) []emu.Trace {
	trs := make([]emu.Trace, 0, n)
	pc := uint32(0x400000)
	reg := func() isa.Reg { return isa.Reg(8 + r.Intn(8)) } // t0..t7
	for len(trs) < n {
		var in isa.Inst
		tr := emu.Trace{PC: pc}
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			in = isa.Inst{Op: isa.ADD, Rd: reg(), Rs: reg(), Rt: reg()}
		case 4:
			in = isa.Inst{Op: isa.MUL, Rd: reg(), Rs: reg(), Rt: reg()}
		case 5:
			in = isa.Inst{Op: isa.FADD, Rd: isa.Reg(r.Intn(32)), Rs: isa.Reg(r.Intn(32)), Rt: isa.Reg(r.Intn(32))}
		case 6, 7:
			in = isa.Inst{Op: isa.LW, Rd: reg(), Rs: reg(), Imm: int32(r.Intn(256) * 4)}
			base := r.Uint32() &^ 3
			tr.Base, tr.Offset = base, uint32(in.Imm)
			tr.EffAddr = base + uint32(in.Imm)
		case 8:
			in = isa.Inst{Op: isa.SW, Rt: reg(), Rs: reg(), Imm: int32(r.Intn(64) * 4)}
			base := r.Uint32() &^ 3
			tr.Base, tr.Offset = base, uint32(in.Imm)
			tr.EffAddr = base + uint32(in.Imm)
		case 9:
			// A branch; taken half the time (target = next PC anyway, so
			// the stream stays consistent by branching to pc+4... use a
			// short forward hop of 0 to keep contiguity: not-taken).
			in = isa.Inst{Op: isa.BNE, Rs: reg(), Rt: reg(), Imm: 8}
			tr.Taken = false
		}
		tr.Inst = in
		tr.NextPC = pc + 4
		trs = append(trs, tr)
		pc += 4
	}
	return trs
}

// TestRandomTraceInvariants drives many random instruction streams through
// several machine configurations and checks global invariants of the
// timing model.
func TestRandomTraceInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	configs := []func() Config{
		fastCfg,
		func() Config { c := fastCfg(); c.FAC = true; return c },
		func() Config { c := fastCfg(); c.FAC = true; c.SpeculateRegReg = true; return c },
		func() Config { c := DefaultConfig(); return c },
		func() Config { c := DefaultConfig(); c.FAC = true; return c },
		func() Config { c := fastCfg(); c.AGI = true; return c },
		func() Config { c := fastCfg(); c.LoadLatency = 1; return c },
	}
	for trial := 0; trial < 40; trial++ {
		n := 50 + r.Intn(500)
		trs := randTraceProgram(r, n)
		for ci, mk := range configs {
			cfg := mk()
			st, err := Run(cfg, &sliceSource{trs: append([]emu.Trace(nil), trs...)})
			if err != nil {
				t.Fatalf("trial %d config %d: %v", trial, ci, err)
			}
			if st.Insts != uint64(n) {
				t.Fatalf("trial %d config %d: executed %d of %d", trial, ci, st.Insts, n)
			}
			// The machine cannot beat its issue width.
			if st.Cycles < uint64((n+cfg.IssueWidth-1)/cfg.IssueWidth) {
				t.Fatalf("trial %d config %d: %d cycles for %d insts exceeds issue width",
					trial, ci, st.Cycles, n)
			}
			// Speculation accounting is internally consistent.
			if st.LoadSpecFailed > st.LoadsSpeculated || st.StoresSpeculated > st.Stores ||
				st.LoadsSpeculated > st.Loads || st.StoreSpecFailed > st.StoresSpeculated {
				t.Fatalf("trial %d config %d: inconsistent speculation stats %+v", trial, ci, st)
			}
			if st.ExtraAccesses != st.LoadSpecFailed+st.StoreSpecFailed {
				t.Fatalf("trial %d config %d: extra accesses %d != failed speculations %d+%d",
					trial, ci, st.ExtraAccesses, st.LoadSpecFailed, st.StoreSpecFailed)
			}
			if !cfg.FAC && (st.LoadsSpeculated != 0 || st.StoresSpeculated != 0) {
				t.Fatalf("trial %d config %d: speculation without FAC", trial, ci)
			}
		}
	}
}

// TestFACNeverCatastrophic: on adversarial random traces (~50% of
// predictions fail and memory operations are dense), FAC costs at most a
// bounded amount of extra bandwidth contention. The paper acknowledges
// this failure mode ("the processor may end up stalling more often on the
// store buffer, possibly resulting in overall worse performance",
// Section 3.1); on the real workload suite FAC never degrades more than
// ~3% (see the experiments package tests).
func TestFACNeverCatastrophic(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		trs := randTraceProgram(r, 400)
		base, err := Run(fastCfg(), &sliceSource{trs: append([]emu.Trace(nil), trs...)})
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastCfg()
		cfg.FAC = true
		facStats, err := Run(cfg, &sliceSource{trs: append([]emu.Trace(nil), trs...)})
		if err != nil {
			t.Fatal(err)
		}
		if float64(facStats.Cycles) > 1.20*float64(base.Cycles)+4 {
			t.Fatalf("trial %d: FAC %d cycles vs baseline %d (degradation beyond bound)",
				trial, facStats.Cycles, base.Cycles)
		}
	}
}
