package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/obs"
)

// countSink counts events by kind and stall cycles by cause.
type countSink struct {
	obs.Counter
	stalls [obs.NumStallCauses]uint64
}

func (c *countSink) Event(e obs.Event) {
	c.Counter.Event(e)
	if e.Kind == obs.KindStall {
		c.stalls[e.Cause]++
	}
}

// obsTraces is a mixed workload: ALU ops, a load-use dependency, a
// mispredicting load (index-field carry), and a store.
func obsTraces() []emu.Trace {
	trs := seq(
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		isa.Inst{Op: isa.LW, Rd: isa.T3, Rs: isa.T0, Imm: 4},      // predicts OK
		isa.Inst{Op: isa.SUB, Rd: isa.T4, Rs: isa.T5, Rt: isa.T3}, // load-use
		isa.Inst{Op: isa.LW, Rd: isa.T6, Rs: isa.T0, Imm: 0x30},   // index carry: mispredict
		isa.Inst{Op: isa.SW, Rd: isa.T6, Rs: isa.T0, Imm: 8},
	)
	setMem(&trs[1], 0x1000, 4, false)
	// 0x1030 + 0x30: block-offset bits (5) of base are 0x10, offset 0x30
	// -> 0x10+0x30 = 0x40 carries out of the 5-bit block offset field.
	setMem(&trs[3], 0x1030, 0x30, false)
	setMem(&trs[4], 0x1000, 8, false)
	return trs
}

// TestObservationDoesNotPerturbTiming: attaching a sink must leave every
// statistic identical to an unobserved run.
func TestObservationDoesNotPerturbTiming(t *testing.T) {
	for _, fac := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.FAC = fac
		plain, err := Run(cfg, &sliceSource{trs: obsTraces()})
		if err != nil {
			t.Fatal(err)
		}
		sink := &countSink{}
		observed, err := RunObserved(cfg, &sliceSource{trs: obsTraces()}, sink)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, observed) {
			t.Fatalf("fac=%v: observed run differs:\n%+v\nvs\n%+v", fac, plain, observed)
		}
		if sink.Total() == 0 {
			t.Fatalf("fac=%v: sink received no events", fac)
		}
	}
}

// TestEventStreamMatchesStats: event counts must agree with the
// aggregate statistics of the same run.
func TestEventStreamMatchesStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FAC = true
	sink := &countSink{}
	st, err := RunObserved(cfg, &sliceSource{trs: obsTraces()}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.ByKind[obs.KindIssue]; got != st.Insts {
		t.Errorf("issue events %d != insts %d", got, st.Insts)
	}
	if got := sink.ByKind[obs.KindFACPredict]; got != st.LoadsSpeculated+st.StoresSpeculated {
		t.Errorf("predict events %d != speculated %d", got, st.LoadsSpeculated+st.StoresSpeculated)
	}
	if got := sink.ByKind[obs.KindReplay]; got != st.LoadSpecFailed+st.StoreSpecFailed {
		t.Errorf("replay events %d != failures %d", got, st.LoadSpecFailed+st.StoreSpecFailed)
	}
	if got := sink.ByKind[obs.KindStall]; got != st.StallTotal() {
		t.Errorf("stall events %d != stall cycles %d", got, st.StallTotal())
	}
	if sink.stalls != st.StallCycles {
		t.Errorf("per-cause stall events %v != counters %v", sink.stalls, st.StallCycles)
	}
	if st.LoadSpecFailed == 0 {
		t.Error("trace was built to mispredict at least one load")
	}
	if got := sink.ByKind[obs.KindCacheAccess]; got == 0 {
		t.Error("no cache events emitted")
	}
	if got := sink.ByKind[obs.KindStoreRetire]; got != st.Stores {
		t.Errorf("store retire events %d != stores %d", got, st.Stores)
	}
}

// TestStallAccounting: the per-cause counters partition the no-issue
// cycles, and known hazards land in the right category.
func TestStallAccounting(t *testing.T) {
	// Load-use dependence on a perfect-cache machine: the only stalls
	// besides frontend fill are operand stalls.
	trs := seq(
		isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 0},
		isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.T0, Rt: isa.T0},
	)
	setMem(&trs[0], 0x1000, 0, false)
	st := mustRun(t, fastCfg(), trs)
	if st.StallCycles[obs.StallOperand] == 0 {
		t.Errorf("expected an operand stall from the load-use hazard: %v", st.StallCycles)
	}
	if st.StallCycles[obs.StallStoreBuffer] != 0 || st.StallCycles[obs.StallUnit] != 0 {
		t.Errorf("unexpected stall causes: %v", st.StallCycles)
	}

	// The partition: active + stalled cycles cover the issue loop.
	if st.IssueActiveCycles == 0 {
		t.Error("no active issue cycles recorded")
	}
	var sum uint64
	for _, n := range st.StallCycles {
		sum += n
	}
	if sum != st.StallTotal() {
		t.Errorf("StallTotal %d != sum %d", st.StallTotal(), sum)
	}
}

// TestStoreBufferStallCause: a full store buffer is charged to the
// store-buffer category.
func TestStoreBufferStallCause(t *testing.T) {
	cfg := fastCfg()
	cfg.StoreBufferEntries = 1
	var insts []isa.Inst
	for i := 0; i < 8; i++ {
		insts = append(insts, isa.Inst{Op: isa.SW, Rd: isa.T0, Rs: isa.T1, Imm: int32(i * 4)})
	}
	trs := seq(insts...)
	for i := range trs {
		setMem(&trs[i], 0x1000, uint32(i*4), false)
	}
	st := mustRun(t, cfg, trs)
	if st.StoreBufferFullStalls == 0 {
		t.Fatal("expected store-buffer-full stalls")
	}
	if st.StallCycles[obs.StallStoreBuffer] == 0 {
		t.Errorf("full store buffer not attributed: %v", st.StallCycles)
	}
}

// TestLoadLatencyHistogram: every load contributes one sample, and a
// cache miss shows up as a long-latency sample.
func TestLoadLatencyHistogram(t *testing.T) {
	cfg := DefaultConfig()
	trs := seq(
		isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: isa.T2, Rs: isa.T1, Imm: 4},
	)
	setMem(&trs[0], 0x1000, 0, false)
	setMem(&trs[1], 0x1000, 4, false)
	st := mustRun(t, cfg, trs)
	if st.LoadLatency.Count != st.Loads {
		t.Fatalf("latency samples %d != loads %d", st.LoadLatency.Count, st.Loads)
	}
	// First load misses the cold cache (16-cycle fill); the second hits
	// the in-flight fill. Max latency must reflect the miss.
	if st.LoadLatency.Max < uint64(cfg.DCache.MissLatency) {
		t.Fatalf("max load latency %d < miss latency %d", st.LoadLatency.Max, cfg.DCache.MissLatency)
	}
}

// TestFailureKindCounters: mispredictions decompose by signal, and the
// record export carries the breakdown.
func TestFailureKindCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FAC = true
	st, err := Run(cfg, &sliceSource{trs: obsTraces()})
	if err != nil {
		t.Fatal(err)
	}
	var loadKinds uint64
	for _, n := range st.LoadFailKinds {
		loadKinds += n
	}
	if loadKinds < st.LoadSpecFailed {
		t.Fatalf("fail-kind counts %d < failed loads %d", loadKinds, st.LoadSpecFailed)
	}

	r := st.Record("bench", "int", "base", "fac32")
	if r.Schema == "" || r.FAC == nil {
		t.Fatalf("record missing FAC section: %+v", r)
	}
	if r.StallCyclesTotal != r.Stalls.Total() {
		t.Fatalf("record stall total %d != breakdown sum %d", r.StallCyclesTotal, r.Stalls.Total())
	}
	if r.FAC.LoadFailKinds.GenCarry == 0 && r.FAC.LoadFailKinds.Overflow == 0 {
		t.Fatalf("expected a decomposed load failure: %+v", r.FAC)
	}
	if r.DCache == nil || r.ICache == nil {
		t.Fatal("cache sections missing from record")
	}

	// A non-FAC machine must not emit a FAC section.
	st2, err := Run(DefaultConfig(), &sliceSource{trs: obsTraces()})
	if err != nil {
		t.Fatal(err)
	}
	if r2 := st2.Record("bench", "int", "base", "base32"); r2.FAC != nil {
		t.Fatal("non-FAC record has FAC section")
	}
}
