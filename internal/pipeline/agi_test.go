package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

func agiCfg() Config {
	cfg := fastCfg()
	cfg.AGI = true
	cfg.MispredictPenalty = 3
	return cfg
}

// TestAGIRemovesLoadUseHazard: the Figure 1 sequence has no stall on an
// AGI pipeline — the consumer ALU executes in the same stage as cache
// access, one stage later.
func TestAGIRemovesLoadUseHazard(t *testing.T) {
	build := func() []isa.Inst {
		return []isa.Inst{
			{Op: isa.ADD, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
			{Op: isa.LW, Rd: isa.T3, Rs: isa.T0, Imm: 4},
			{Op: isa.SUB, Rd: isa.T4, Rs: isa.T5, Rt: isa.T3},
		}
	}
	mkTr := func() []emu.Trace {
		trs := seq(build()...)
		setMem(&trs[1], 0x1000, 4, false)
		return trs
	}
	lui := mustRun(t, fastCfg(), mkTr())
	agi := mustRun(t, agiCfg(), mkTr())
	// On this snippet AGI saves the load-use stall but pays the address-use
	// hazard (add feeds the load's base) plus one extra completion stage:
	// net one cycle worse. The win shows on chains without address uses.
	if agi.Cycles != lui.Cycles+1 {
		t.Errorf("AGI on Figure-1 snippet: %d cycles vs LUI %d, want exactly +1", agi.Cycles, lui.Cycles)
	}

	// A longer chain of load-use pairs shows the saving: each pair costs
	// one stall on LUI and none on AGI.
	var insts []isa.Inst
	for i := 0; i < 8; i++ {
		insts = append(insts,
			isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 0},
			isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.T0, Rt: isa.Zero})
	}
	trs := seq(insts...)
	for i := 0; i < len(trs); i += 2 {
		setMem(&trs[i], 0x1000, 0, false)
	}
	luiN := mustRun(t, fastCfg(), trs)

	trs = seq(insts...)
	for i := 0; i < len(trs); i += 2 {
		setMem(&trs[i], 0x1000, 0, false)
	}
	agiN, err := Run(agiCfg(), &sliceSource{trs: trs})
	if err != nil {
		t.Fatal(err)
	}
	if agiN.Cycles >= luiN.Cycles {
		t.Errorf("AGI did not hide load-use latency: %d vs %d cycles", agiN.Cycles, luiN.Cycles)
	}
}

// TestAGIAddressUseHazard: an ALU result feeding a load's base register
// costs a bubble on AGI that LUI does not pay.
func TestAGIAddressUseHazard(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 8; i++ {
		insts = append(insts,
			isa.Inst{Op: isa.ADD, Rd: isa.T1, Rs: isa.T1, Rt: isa.Zero},
			isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 0})
	}
	mk := func() []emu.Trace {
		trs := seq(insts...)
		for i := 1; i < len(trs); i += 2 {
			setMem(&trs[i], 0x1000, 0, false)
		}
		return trs
	}
	lui := mustRun(t, fastCfg(), mk())
	agi := mustRun(t, agiCfg(), mk())
	if agi.Cycles <= lui.Cycles {
		t.Errorf("AGI did not pay the address-use hazard: %d vs %d cycles", agi.Cycles, lui.Cycles)
	}
}

func TestAGIAndFACExclusive(t *testing.T) {
	cfg := fastCfg()
	cfg.AGI = true
	cfg.FAC = true
	if err := cfg.Validate(); err == nil {
		t.Error("FAC+AGI config validated")
	}
}
