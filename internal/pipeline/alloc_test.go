package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/obs"
)

// loopSource replays a small hand-built loop body (ALU, load, store,
// taken branch) for a fixed number of iterations. It allocates nothing
// per call, so any allocation measured during a run is the simulator's.
type loopSource struct {
	iters int
	body  [4]emu.Trace
	i     int
}

func newLoopSource(iters int) *loopSource {
	const base = 0x1000
	s := &loopSource{iters: iters}
	s.body = [4]emu.Trace{
		{PC: base, Inst: isa.Inst{Op: isa.ADDI, Rd: 1, Rs: 1, Imm: 1}, NextPC: base + 4},
		{PC: base + 4, Inst: isa.Inst{Op: isa.LW, Rd: 2, Rs: 3, Imm: 0},
			NextPC: base + 8, EffAddr: 0x2000, Base: 0x2000},
		{PC: base + 8, Inst: isa.Inst{Op: isa.SW, Rt: 2, Rs: 3, Imm: 4},
			NextPC: base + 12, EffAddr: 0x2004, Base: 0x2000, Offset: 4},
		{PC: base + 12, Inst: isa.Inst{Op: isa.BNE, Rs: 1, Rt: 0, Imm: -16},
			NextPC: base, Taken: true},
	}
	return s
}

func (s *loopSource) Next() (emu.Trace, bool, error) {
	if s.i >= 4*s.iters {
		return emu.Trace{}, false, nil
	}
	tr := s.body[s.i&3]
	s.i++
	return tr, true, nil
}

// TestSteadyStateZeroAllocs gates the hot loop at zero allocations per
// cycle in the detached-sink configuration: a run 16x longer must
// allocate exactly as much as a short one (all allocations are setup —
// the issue-queue and store-buffer rings, the trace batch, the caches,
// the BTB). A regression that reintroduces per-cycle or per-instruction
// heap traffic (queue growth, event boxing, trace copies) fails here.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FAC = true // cover the predictor path too

	run := func(iters int) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Run(cfg, newLoopSource(iters)); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := run(500)
	long := run(8000)
	if long > short {
		t.Errorf("hot loop allocates: %.1f allocs for 500 iterations, %.1f for 8000 (want equal)",
			short, long)
	}
}

// BenchmarkDetachedSink / BenchmarkAttachedSink quantify the cost of the
// observability layer on the same synthetic stream: the detached (nil
// sink) run is the zero-cost baseline documented in
// docs/OBSERVABILITY.md; the attached run pays one callback per event.
// Compare with:
//
//	go test ./internal/pipeline/ -run xxx -bench 'Sink' -benchmem
func BenchmarkDetachedSink(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig()
	cfg.FAC = true
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, newLoopSource(2000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttachedSink(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig()
	cfg.FAC = true
	var c obs.Counter
	for i := 0; i < b.N; i++ {
		if _, err := RunObserved(cfg, newLoopSource(2000), &c); err != nil {
			b.Fatal(err)
		}
	}
}
