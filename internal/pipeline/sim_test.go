package pipeline

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

type sliceSource struct {
	trs []emu.Trace
	i   int
}

func (s *sliceSource) Next() (emu.Trace, bool, error) {
	if s.i >= len(s.trs) {
		return emu.Trace{}, false, nil
	}
	tr := s.trs[s.i]
	s.i++
	return tr, true, nil
}

// seq builds a contiguous straight-line trace starting at pc 0x400000.
func seq(insts ...isa.Inst) []emu.Trace {
	trs := make([]emu.Trace, len(insts))
	pc := uint32(0x400000)
	for i, in := range insts {
		trs[i] = emu.Trace{PC: pc, Inst: in, NextPC: pc + 4}
		pc += 4
	}
	return trs
}

// setMem fills in the memory-operand fields of a trace element.
func setMem(tr *emu.Trace, base, ofs uint32, isReg bool) {
	tr.Base, tr.Offset, tr.EffAddr, tr.IsRegOffset = base, ofs, base+ofs, isReg
}

// fastCfg is a machine with perfect caches and perfect fetch, isolating the
// issue timing under test.
func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.PerfectICache = true
	cfg.PerfectDCache = true
	return cfg
}

func mustRun(t *testing.T, cfg Config, trs []emu.Trace) Stats {
	t.Helper()
	st, err := Run(cfg, &sliceSource{trs: trs})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Insts != uint64(len(trs)) {
		t.Fatalf("executed %d insts, want %d", st.Insts, len(trs))
	}
	return st
}

// TestFigure1LoadUseStall reproduces the paper's Figure 1: add, dependent
// load, dependent sub. With 2-cycle loads the sub stalls one cycle.
func TestFigure1LoadUseStall(t *testing.T) {
	mk := func() []emu.Trace {
		trs := seq(
			isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2}, // add rx,ry,rz
			isa.Inst{Op: isa.LW, Rd: isa.T3, Rs: isa.T0, Imm: 4},      // load rw,4(rx)
			isa.Inst{Op: isa.SUB, Rd: isa.T4, Rs: isa.T5, Rt: isa.T3}, // sub ra,rb,rw
		)
		setMem(&trs[1], 0x1000, 4, false)
		return trs
	}

	base := mustRun(t, fastCfg(), mk())

	cfgFAC := fastCfg()
	cfgFAC.FAC = true
	// PerfectDCache drops the cache model but the predictor still runs.
	withFAC := mustRun(t, cfgFAC, mk())

	if base.Cycles != withFAC.Cycles+1 {
		t.Errorf("cycles base=%d fac=%d, want FAC to save exactly the one load-use stall",
			base.Cycles, withFAC.Cycles)
	}
	if withFAC.LoadsSpeculated != 1 || withFAC.LoadSpecFailed != 0 {
		t.Errorf("FAC stats = %+v", withFAC)
	}
}

// TestDependentChainTiming checks scoreboard latencies for ALU chains.
func TestDependentChainTiming(t *testing.T) {
	// 5 dependent adds: issue 1/cycle; first issues at cycle 2 (fetch 0).
	trs := seq(
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T0, Rt: isa.T0},
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T0, Rt: isa.T0},
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T0, Rt: isa.T0},
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T0, Rt: isa.T0},
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T0, Rt: isa.T0},
	)
	st := mustRun(t, fastCfg(), trs)
	// Fetch group 0 at cycle 0 (4 insts), issue at 2,3,4,5; 5th fetched at
	// 1, issues at 6; completes at 7.
	if st.Cycles != 7 {
		t.Errorf("cycles = %d, want 7", st.Cycles)
	}
}

// TestSuperscalarIssue verifies up to 4 independent ALU ops issue together.
func TestSuperscalarIssue(t *testing.T) {
	trs := seq(
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.Zero, Rt: isa.Zero},
		isa.Inst{Op: isa.ADD, Rd: isa.T1, Rs: isa.Zero, Rt: isa.Zero},
		isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.Zero, Rt: isa.Zero},
		isa.Inst{Op: isa.ADD, Rd: isa.T3, Rs: isa.Zero, Rt: isa.Zero},
	)
	st := mustRun(t, fastCfg(), trs)
	// All four issue at cycle 2, complete at 3.
	if st.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", st.Cycles)
	}
}

// TestMulDivStructuralHazard: the single mult/div unit serializes divides.
func TestMulDivStructuralHazard(t *testing.T) {
	trs := seq(
		isa.Inst{Op: isa.DIV, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		isa.Inst{Op: isa.DIV, Rd: isa.T3, Rs: isa.T4, Rt: isa.T5},
	)
	st := mustRun(t, fastCfg(), trs)
	// div1 at 2 (result 22, unit busy until 21); div2 at 21, result 41.
	if st.Cycles != 41 {
		t.Errorf("cycles = %d, want 41", st.Cycles)
	}
	// Independent muls are pipelined (interval 1).
	trs = seq(
		isa.Inst{Op: isa.MUL, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		isa.Inst{Op: isa.MUL, Rd: isa.T3, Rs: isa.T4, Rt: isa.T5},
	)
	st = mustRun(t, fastCfg(), trs)
	// mul1 at 2 -> 5; mul2 at 3 -> 6.
	if st.Cycles != 6 {
		t.Errorf("mul cycles = %d, want 6", st.Cycles)
	}
}

// TestLoadPortLimit: at most two loads access the cache per cycle.
func TestLoadPortLimit(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 4; i++ {
		insts = append(insts, isa.Inst{Op: isa.LW, Rd: isa.Reg(8 + i), Rs: isa.GP, Imm: int32(i * 4)})
	}
	trs := seq(insts...)
	for i := range trs {
		setMem(&trs[i], 0x10000000, uint32(i*4), false)
	}
	st := mustRun(t, fastCfg(), trs)
	// Issue limited to 2 loads/cycle: cycle 2 (2 loads, access at 3) then
	// cycle 3 (access at 4): results at 5. Total 5 cycles.
	if st.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", st.Cycles)
	}
}

// TestStoreLoadBandwidthExclusion: a store's cache cycle excludes loads.
func TestStoreLoadBandwidthExclusion(t *testing.T) {
	trs := seq(
		isa.Inst{Op: isa.SW, Rt: isa.T0, Rs: isa.GP, Imm: 0},
		isa.Inst{Op: isa.LW, Rd: isa.T1, Rs: isa.GP, Imm: 8},
	)
	setMem(&trs[0], 0x10000000, 0, false)
	setMem(&trs[1], 0x10000000, 8, false)
	st := mustRun(t, fastCfg(), trs)
	// Store issues at 2 (probe at 3); the load cannot use cycle 3, issues
	// at 3 with access at 4, result at 5.
	if st.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", st.Cycles)
	}
}

// TestFACMispredictReplay: a failed prediction costs the baseline latency
// and is counted as bandwidth overhead.
func TestFACMispredictReplay(t *testing.T) {
	mk := func() []emu.Trace {
		trs := seq(
			isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 364},
			isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.T0, Rt: isa.T0},
		)
		setMem(&trs[0], 0x7fff5b84, 364, false) // paper Figure 5(d): mispredicts
		return trs
	}
	cfg := fastCfg()
	cfg.FAC = true
	st := mustRun(t, cfg, mk())
	if st.LoadSpecFailed != 1 || st.ExtraAccesses != 1 {
		t.Errorf("stats = %+v, want 1 failed speculation", st)
	}
	base := mustRun(t, fastCfg(), mk())
	if st.Cycles != base.Cycles {
		t.Errorf("mispredicted FAC (%d cycles) should match baseline (%d)", st.Cycles, base.Cycles)
	}
}

// TestPostMispredictRule: the access in the cycle after a mispredict does
// not speculate unless it is a load following a misspeculated load.
func TestPostMispredictRule(t *testing.T) {
	mk := func(second isa.Op) []emu.Trace {
		in1 := isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 364}
		var in2 isa.Inst
		if second == isa.LW {
			in2 = isa.Inst{Op: isa.LW, Rd: isa.T2, Rs: isa.T3, Imm: 0}
		} else {
			in2 = isa.Inst{Op: isa.SW, Rt: isa.T2, Rs: isa.T3, Imm: 0}
		}
		// Force the second access to a different cycle via a dependence.
		in3 := isa.Inst{Op: isa.ADD, Rd: isa.T4, Rs: isa.T0, Rt: isa.T0}
		trs := seq(in1, in3, in2)
		setMem(&trs[0], 0x7fff5b84, 364, false) // mispredicts
		setMem(&trs[2], 0x1000, 0, false)       // would predict fine
		return trs
	}
	cfg := fastCfg()
	cfg.FAC = true

	// The load mispredicts at its issue cycle n. The dependent add issues
	// at n+2 (replay latency), and the second access at n+2 as well — past
	// the blocked cycle, so it speculates.
	st, err := Run(cfg, &sliceSource{trs: mk(isa.LW)})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadsSpeculated != 2 {
		t.Errorf("loads speculated = %d, want 2", st.LoadsSpeculated)
	}

	// Now make the second access issue in the very next cycle: independent.
	mkAdjacent := func(second isa.Op) []emu.Trace {
		in1 := isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 364}
		var in2 isa.Inst
		if second == isa.LW {
			in2 = isa.Inst{Op: isa.LW, Rd: isa.T2, Rs: isa.T3, Imm: 0}
		} else {
			in2 = isa.Inst{Op: isa.SW, Rt: isa.T2, Rs: isa.T3, Imm: 0}
		}
		trs := seq(in1, in2)
		setMem(&trs[0], 0x7fff5b84, 364, false)
		setMem(&trs[1], 0x1000, 0, false)
		return trs
	}
	// Both memory ops issue in the same cycle (2 LS units): same-cycle
	// accesses both speculate (verification is end-of-cycle).
	st, err = Run(cfg, &sliceSource{trs: mkAdjacent(isa.LW)})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadsSpeculated != 2 {
		t.Errorf("same-cycle loads speculated = %d, want 2", st.LoadsSpeculated)
	}
}

// TestStoreBufferFullStalls: more stores than buffer entries cause stalls.
func TestStoreBufferFullStalls(t *testing.T) {
	cfg := fastCfg()
	cfg.StoreBufferEntries = 2
	var insts []isa.Inst
	for i := 0; i < 12; i++ {
		insts = append(insts, isa.Inst{Op: isa.SW, Rt: isa.T0, Rs: isa.GP, Imm: int32(4 * i)})
	}
	trs := seq(insts...)
	for i := range trs {
		setMem(&trs[i], 0x10000000, uint32(4*i), false)
	}
	st := mustRun(t, cfg, trs)
	if st.StoreBufferFullStalls == 0 {
		t.Error("expected store-buffer-full stalls")
	}
	if st.Stores != 12 {
		t.Errorf("stores = %d", st.Stores)
	}
}

// TestBranchMispredictPenalty compares a well-predicted loop against one
// whose every branch mispredicts.
func TestBranchMispredictPenalty(t *testing.T) {
	// A tight loop: the backward branch is taken every iteration, so after
	// warmup the BTB predicts it.
	var trs []emu.Trace
	loopPC := uint32(0x400000)
	for i := 0; i < 50; i++ {
		trs = append(trs,
			emu.Trace{PC: loopPC, Inst: isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T0, Rt: isa.T1}, NextPC: loopPC + 4},
			emu.Trace{PC: loopPC + 4, Inst: isa.Inst{Op: isa.BNE, Rs: isa.T0, Rt: isa.T2, Imm: -8}, NextPC: loopPC, Taken: true},
		)
	}
	st := mustRun(t, fastCfg(), trs)
	if st.BranchMispredicts > 2 {
		t.Errorf("loop branch mispredicted %d times", st.BranchMispredicts)
	}

	// Alternating taken/not-taken branch at the same PC defeats the 2-bit
	// counter at least half the time.
	trs = nil
	for i := 0; i < 50; i++ {
		taken := i%2 == 0
		next := loopPC + 8
		if taken {
			next = loopPC + 16
		}
		trs = append(trs, emu.Trace{PC: loopPC + 4, Inst: isa.Inst{Op: isa.BNE, Rs: isa.T0, Rt: isa.T2, Imm: 8}, NextPC: next, Taken: taken})
		trs = append(trs, emu.Trace{PC: next, Inst: isa.Inst{Op: isa.ADD, Rd: isa.T0}, NextPC: loopPC + 4})
		trs = append(trs, emu.Trace{PC: loopPC + 4 - 4, Inst: isa.Inst{Op: isa.ADD, Rd: isa.T0}, NextPC: loopPC + 4})
		// keep PCs consistent: rebuild simple alternating pattern below
		trs = trs[:len(trs)-2]
		trs = append(trs, emu.Trace{PC: next, Inst: isa.Inst{Op: isa.J, Imm: int32(loopPC + 4)}, NextPC: loopPC + 4})
	}
	st2, err := Run(fastCfg(), &sliceSource{trs: trs})
	if err != nil {
		t.Fatal(err)
	}
	if st2.BranchMispredicts < 25 {
		t.Errorf("alternating branch mispredicted only %d/100", st2.BranchMispredicts)
	}
}

// TestICacheMissDelaysFetch: cold I-cache costs the miss latency.
func TestICacheMissDelaysFetch(t *testing.T) {
	cfg := fastCfg()
	cfg.PerfectICache = false
	trs := seq(isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.Zero, Rt: isa.Zero})
	st := mustRun(t, cfg, trs)
	// Fetch ready at 16 (cold miss), issue at 18, complete 19.
	if st.Cycles != 19 {
		t.Errorf("cycles = %d, want 19", st.Cycles)
	}
	if st.ICache.Misses != 1 {
		t.Errorf("icache misses = %d", st.ICache.Misses)
	}
}

// TestDCacheMissLatency: a cold load miss delays its dependents.
func TestDCacheMissLatency(t *testing.T) {
	cfg := fastCfg()
	cfg.PerfectDCache = false
	mk := func() []emu.Trace {
		trs := seq(
			isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 0},
			isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.T0, Rt: isa.T0},
		)
		setMem(&trs[0], 0x10000000, 0, false)
		return trs
	}
	st := mustRun(t, cfg, mk())
	// load issues at 2, access at 3 misses -> data at 19, add at 20 -> 21.
	if st.Cycles != 21 {
		t.Errorf("cycles = %d, want 21", st.Cycles)
	}
	if st.DCache.Misses != 1 {
		t.Errorf("dcache misses = %d", st.DCache.Misses)
	}
}

// TestNonBlockingMisses: independent work proceeds under a load miss.
func TestNonBlockingMisses(t *testing.T) {
	cfg := fastCfg()
	cfg.PerfectDCache = false
	trs := seq(
		isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 0},
		isa.Inst{Op: isa.ADD, Rd: isa.T2, Rs: isa.T3, Rt: isa.T4}, // independent
		isa.Inst{Op: isa.ADD, Rd: isa.T5, Rs: isa.T2, Rt: isa.T2},
	)
	setMem(&trs[0], 0x10000000, 0, false)
	st := mustRun(t, cfg, trs)
	// The adds complete long before the miss returns: total = miss-bound.
	// load at 2, access 3, data 19 -> cycles 19 (+1 completion) = 19.
	if st.Cycles > 21 {
		t.Errorf("cycles = %d; independent work appears blocked by the miss", st.Cycles)
	}
}

// TestOneCycleLoadMode: LoadLatency=1 (the Figure 2 "1-cycle loads" series)
// beats the 2-cycle baseline on a load-use chain.
func TestOneCycleLoadMode(t *testing.T) {
	mk := func() []emu.Trace {
		var insts []isa.Inst
		for i := 0; i < 8; i++ {
			insts = append(insts,
				isa.Inst{Op: isa.LW, Rd: isa.T0, Rs: isa.T1, Imm: 0},
				isa.Inst{Op: isa.ADD, Rd: isa.T1, Rs: isa.T0, Rt: isa.Zero})
		}
		trs := seq(insts...)
		for i := 0; i < len(trs); i += 2 {
			setMem(&trs[i], 0x1000, 0, false)
		}
		return trs
	}
	base := mustRun(t, fastCfg(), mk())
	cfg1 := fastCfg()
	cfg1.LoadLatency = 1
	one := mustRun(t, cfg1, mk())
	if one.Cycles+7 > base.Cycles {
		t.Errorf("1-cycle loads saved too little: base=%d one=%d", base.Cycles, one.Cycles)
	}
}

// TestRegRegSpeculationSwitch: register+register accesses only speculate
// when enabled.
func TestRegRegSpeculationSwitch(t *testing.T) {
	mk := func() []emu.Trace {
		trs := seq(isa.Inst{Op: isa.LWX, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2})
		setMem(&trs[0], 0x1000, 0x20, true)
		return trs
	}
	cfg := fastCfg()
	cfg.FAC = true
	st := mustRun(t, cfg, mk())
	if st.LoadsSpeculated != 0 {
		t.Error("reg+reg speculated despite SpeculateRegReg=false")
	}
	cfg.SpeculateRegReg = true
	st = mustRun(t, cfg, mk())
	if st.LoadsSpeculated != 1 || st.LoadSpecFailed != 0 {
		t.Errorf("reg+reg speculation stats = %+v", st)
	}
}

// TestFACStoreMispredictKeepsCorrectAddress: the buffered entry retires to
// the architectural address.
func TestFACStoreMispredictKeepsCorrectAddress(t *testing.T) {
	cfg := fastCfg()
	cfg.PerfectDCache = false
	cfg.FAC = true
	trs := seq(isa.Inst{Op: isa.SW, Rt: isa.T0, Rs: isa.T1, Imm: 364})
	setMem(&trs[0], 0x7fff5b84, 364, false) // mispredicts
	st := mustRun(t, cfg, trs)
	if st.StoreSpecFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The retired store must have accessed the architectural block.
	if st.DCache.Accesses != 1 || st.DCache.Misses != 1 {
		t.Errorf("dcache stats = %+v", st.DCache)
	}
}

// TestValidateRejectsBadConfigs exercises config validation.
func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IntALUs = 0 },
		func(c *Config) { c.LoadLatency = 3 },
		func(c *Config) { c.DCacheReadsPerCycle = 0 },
		func(c *Config) { c.StoreBufferEntries = 0 },
		func(c *Config) { c.ICache.BlockSize = 33 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{
		Cycles: 100, Insts: 250,
		Loads: 80, Stores: 20,
		LoadsSpeculated: 80, LoadSpecFailed: 20,
		StoresSpeculated: 20, StoreSpecFailed: 5,
		ExtraAccesses: 25,
	}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.LoadFailRate() != 0.25 {
		t.Errorf("LoadFailRate = %v", s.LoadFailRate())
	}
	if s.StoreFailRate() != 0.25 {
		t.Errorf("StoreFailRate = %v", s.StoreFailRate())
	}
	if s.BandwidthOverhead() != 0.25 {
		t.Errorf("BandwidthOverhead = %v", s.BandwidthOverhead())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.LoadFailRate() != 0 || zero.BandwidthOverhead() != 0 {
		t.Error("zero stats not zero")
	}
}
