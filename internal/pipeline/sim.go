package pipeline

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Source supplies the dynamic instruction stream in program order. Next
// returns false when the program has finished.
type Source interface {
	Next() (emu.Trace, bool, error)
}

// ringBits sizes the per-cycle cache-port reservation ring. Reservations
// only ever target the current or next cycle, so a small ring suffices.
const ringBits = 6

type sim struct {
	cfg  Config
	geom fac.Config
	src  Source
	ctx  context.Context // nil = cancellation disabled

	icache *cache.Cache
	dcache *cache.Cache
	btb    *bpred.BTB

	stats Stats
	sink  obs.Sink // nil = observability disabled (no event allocations)

	// Fetch.
	nextFetchCycle uint64
	lookahead      emu.Trace
	haveLookahead  bool
	srcDone        bool

	// Issue queue (fetched, not yet issued), in program order.
	pending []qent

	// Scoreboard: cycle at which each unified register can be sourced.
	regReady [isa.NumURegs]uint64

	// Non-pipelined unit reservation.
	intMDFree uint64
	fpMDFree  uint64

	// Per-cycle cache port reservations.
	readsAt [1 << ringBits]uint8
	storeAt [1 << ringBits]bool

	// Store buffer (FIFO of entry-ready cycles).
	storeBuf []storeEnt

	// FAC replay rule: accesses in the cycle after a mispredict may not
	// speculate, except a load directly after a misspeculated load.
	lastMispredCycle   uint64
	lastMispredWasLoad bool
	haveMispred        bool

	lastEvent uint64 // completion time of the latest activity seen
}

type qent struct {
	tr       emu.Trace
	earliest uint64 // fetchCycle + 2 (IF, ID, then EX)
}

type storeEnt struct {
	addr    uint32
	entered uint64
}

// Run simulates the instruction stream and returns timing statistics.
func Run(cfg Config, src Source) (Stats, error) {
	return RunObserved(cfg, src, nil)
}

// RunObserved simulates the instruction stream with an event sink
// attached (nil disables the stream at zero cost). The sink receives
// every pipeline and cache event in simulation order.
func RunObserved(cfg Config, src Source, sink obs.Sink) (Stats, error) {
	return RunCtx(nil, cfg, src, sink)
}

// ctxCheckMask spaces out cancellation checks: the context is polled
// every 4096 simulated cycles, so an abort costs at most a few
// microseconds of extra simulation while the steady-state loop pays one
// nil comparison per cycle.
const ctxCheckMask = 1<<12 - 1

// RunCtx is RunObserved with cancellation: when ctx is non-nil, its
// cancellation or deadline aborts the cycle loop promptly (checked every
// few thousand cycles) and the run returns an error wrapping ctx.Err().
// A nil ctx disables the checks entirely; timing is identical either way.
func RunCtx(ctx context.Context, cfg Config, src Source, sink obs.Sink) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	s := &sim{cfg: cfg, src: src, ctx: ctx, btb: bpred.New(cfg.BTBEntries), sink: sink}
	s.stats.FACEnabled = cfg.FAC
	if cfg.FAC {
		s.geom = cfg.FACGeometry()
	}
	if !cfg.PerfectICache {
		s.icache = cache.New(cfg.ICache)
		s.icache.SetSink(sink)
	}
	if !cfg.PerfectDCache {
		s.dcache = cache.New(cfg.DCache)
		s.dcache.SetSink(sink)
	}
	if err := s.run(); err != nil {
		return Stats{}, err
	}
	if s.icache != nil {
		s.stats.ICache = s.icache.Stats()
	}
	if s.dcache != nil {
		s.stats.DCache = s.dcache.Stats()
	}
	return s.stats, nil
}

func (s *sim) run() error {
	var now uint64
	lastProgress := uint64(0)
	prevInsts, prevBuf := uint64(0), 0
	for {
		if s.srcDone && !s.haveLookahead && len(s.pending) == 0 && len(s.storeBuf) == 0 {
			break
		}
		if s.ctx != nil && now&ctxCheckMask == 0 {
			if err := s.ctx.Err(); err != nil {
				return fmt.Errorf("pipeline: run canceled at cycle %d: %w", now, err)
			}
		}
		// Clear the reservation slot two cycles ahead (reservations only
		// target now or now+1).
		s.readsAt[(now+2)&(1<<ringBits-1)] = 0
		s.storeAt[(now+2)&(1<<ringBits-1)] = false

		if err := s.fetch(now); err != nil {
			return err
		}
		issued, cause, err := s.issue(now)
		if err != nil {
			return err
		}
		if issued > 0 {
			s.stats.IssueActiveCycles++
		} else {
			s.stats.StallCycles[cause]++
			if s.sink != nil {
				s.sink.Event(obs.Event{Kind: obs.KindStall, Cause: cause, Cycle: now})
			}
		}
		s.retireStores(now)

		if s.stats.Insts != prevInsts || len(s.storeBuf) != prevBuf {
			prevInsts, prevBuf = s.stats.Insts, len(s.storeBuf)
			lastProgress = now
		}
		if now-lastProgress > 1_000_000 {
			return fmt.Errorf("pipeline: no progress for 1M cycles at cycle %d (%d pending, %d store buffer)",
				now, len(s.pending), len(s.storeBuf))
		}
		now++
	}
	s.stats.Cycles = s.lastEvent
	return nil
}

func (s *sim) note(cycle uint64) {
	if cycle > s.lastEvent {
		s.lastEvent = cycle
	}
}

// peekTrace exposes the next dynamic instruction without consuming it.
func (s *sim) peekTrace() (emu.Trace, bool, error) {
	if s.haveLookahead {
		return s.lookahead, true, nil
	}
	if s.srcDone {
		return emu.Trace{}, false, nil
	}
	tr, ok, err := s.src.Next()
	if err != nil {
		return emu.Trace{}, false, err
	}
	if !ok {
		s.srcDone = true
		return emu.Trace{}, false, nil
	}
	s.lookahead, s.haveLookahead = tr, true
	return tr, true, nil
}

func (s *sim) takeTrace() { s.haveLookahead = false }

// fetch models the IF stage: up to FetchWidth contiguous instructions per
// cycle through the I-cache, ending early at predicted- or actually-taken
// control transfers, charging the BTB misprediction penalty.
func (s *sim) fetch(now uint64) error {
	if now < s.nextFetchCycle {
		return nil
	}
	if len(s.pending)+s.cfg.FetchWidth > 2*s.cfg.FetchWidth+s.cfg.IssueWidth {
		return nil // issue queue full; fetch stalls
	}
	first, ok, err := s.peekTrace()
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}

	// I-cache access for the group's first block (and, if the group
	// crosses, its successor block, fetched the same cycle).
	groupReady := now
	if s.icache != nil {
		res := s.icache.Access(first.PC, false, now)
		if res.Ready > groupReady {
			groupReady = res.Ready
		}
	}
	blockMask := uint32(0)
	if s.icache != nil {
		blockMask = ^uint32(s.cfg.ICache.BlockSize - 1)
	}

	fetched := 0
	expectPC := first.PC
	redirected := false
	for fetched < s.cfg.FetchWidth {
		tr, ok, err := s.peekTrace()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if tr.PC != expectPC {
			break // discontiguous (should not happen: redirects end groups)
		}
		if s.icache != nil && tr.PC&blockMask != first.PC&blockMask {
			res := s.icache.Access(tr.PC, false, now)
			if res.Ready > groupReady {
				groupReady = res.Ready
			}
		}
		s.takeTrace()
		s.pending = append(s.pending, qent{tr: tr, earliest: groupReady + 2})
		fetched++
		expectPC = tr.PC + isa.InstBytes

		if tr.Inst.Op.IsControl() {
			taken := tr.NextPC != tr.PC+isa.InstBytes
			predTaken, _ := s.btb.Predict(tr.PC)
			mis := s.btb.Update(tr.PC, taken, tr.NextPC)
			s.stats.BranchLookups++
			if mis {
				s.stats.BranchMispredicts++
				s.nextFetchCycle = groupReady + 1 + uint64(s.cfg.MispredictPenalty)
				redirected = true
				break
			}
			if taken || predTaken {
				// Correctly predicted taken: fetch resumes at the target
				// next cycle.
				s.nextFetchCycle = groupReady + 1
				redirected = true
				break
			}
			// Correctly predicted not-taken: the group continues.
		}
	}
	if !redirected {
		s.nextFetchCycle = groupReady + 1
	}
	if s.sink != nil && fetched > 0 {
		s.sink.Event(obs.Event{Kind: obs.KindFetch, Cycle: now, PC: first.PC, Val: uint64(fetched)})
	}
	return nil
}

// Cache port helpers ("up to two loads or one store each cycle").

func (s *sim) slot(c uint64) int { return int(c & (1<<ringBits - 1)) }

func (s *sim) readFree(c uint64) bool {
	i := s.slot(c)
	return !s.storeAt[i] && int(s.readsAt[i]) < s.cfg.DCacheReadsPerCycle
}

func (s *sim) useRead(c uint64) { s.readsAt[s.slot(c)]++ }

func (s *sim) storeFree(c uint64) bool {
	i := s.slot(c)
	return !s.storeAt[i] && s.readsAt[i] == 0
}

func (s *sim) useStore(c uint64) { s.storeAt[s.slot(c)] = true }

// dcacheAccess performs a data-cache access at the given cycle, retrying
// past MSHR-full conditions, and returns the cycle the data is available.
func (s *sim) dcacheAccess(addr uint32, write bool, c uint64) uint64 {
	if s.dcache == nil {
		return c // perfect cache
	}
	for {
		res := s.dcache.Access(addr, write, c)
		if !res.MSHRFull {
			return res.Ready
		}
		c = res.Ready
	}
}

// issue models the in-order issue stage: up to IssueWidth operations leave
// the queue per cycle, blocking on operand readiness, functional units, and
// memory structural hazards. It returns the number of instructions issued
// and, for zero-issue cycles, the stall cause blocking the queue head.
func (s *sim) issue(now uint64) (int, obs.StallCause, error) {
	issued := 0
	memIssued := 0
	aluUsed := 0
	fpAddUsed := 0
	cause := obs.StallFrontend
	var usesBuf [4]uint8

	if len(s.pending) == 0 && s.srcDone && !s.haveLookahead {
		cause = obs.StallDrain // program done; store buffer still draining
	}
	for issued < s.cfg.IssueWidth && len(s.pending) > 0 {
		q := &s.pending[0]
		if q.earliest > now {
			cause = obs.StallFrontend // head not yet through IF/ID
			break
		}
		op := q.tr.Inst.Op

		// In the AGI organization ALU-class operations execute one stage
		// later than address generation: their operands are needed one
		// cycle later (hiding load-use latency) and their results arrive
		// one cycle later (the address-use hazard).
		needAt := now
		aluShift := uint64(0)
		if s.cfg.AGI {
			switch op.Class() {
			case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassSyscall:
				needAt = now + 1
				aluShift = 1
			}
		}

		// In-order issue: all source operands must be ready.
		ready := true
		for _, u := range q.tr.Inst.Uses(usesBuf[:0]) {
			if s.regReady[u] > needAt {
				ready = false
				break
			}
		}
		if !ready {
			cause = obs.StallOperand
			break
		}

		var resultReady uint64
		switch op.Class() {
		case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassSyscall:
			if aluUsed >= s.cfg.IntALUs {
				cause = obs.StallUnit
				goto stall
			}
			aluUsed++
			resultReady = now + uint64(s.cfg.IntALULat.Result) + aluShift
		case isa.ClassIntMul:
			if s.intMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.intMDFree = now + uint64(s.cfg.IntMulLat.Interval)
			resultReady = now + uint64(s.cfg.IntMulLat.Result)
		case isa.ClassIntDiv:
			if s.intMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.intMDFree = now + uint64(s.cfg.IntDivLat.Interval)
			resultReady = now + uint64(s.cfg.IntDivLat.Result)
		case isa.ClassFPAdd:
			if fpAddUsed >= s.cfg.FPAdders {
				cause = obs.StallUnit
				goto stall
			}
			fpAddUsed++
			resultReady = now + uint64(s.cfg.FPAddLat.Result)
		case isa.ClassFPMul:
			if s.fpMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.fpMDFree = now + uint64(s.cfg.FPMulLat.Interval)
			resultReady = now + uint64(s.cfg.FPMulLat.Result)
		case isa.ClassFPDiv:
			if s.fpMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.fpMDFree = now + uint64(s.cfg.FPDivLat.Interval)
			resultReady = now + uint64(s.cfg.FPDivLat.Result)
		case isa.ClassLoad:
			if memIssued >= s.cfg.LoadStore {
				cause = obs.StallMemPort
				goto stall
			}
			ok, rdy := s.scheduleLoad(q.tr, now)
			if !ok {
				cause = obs.StallMemPort
				goto stall
			}
			memIssued++
			resultReady = rdy
			s.stats.Loads++
			s.stats.LoadLatency.Add(rdy - now)
		case isa.ClassStore:
			if memIssued >= s.cfg.LoadStore {
				cause = obs.StallMemPort
				goto stall
			}
			if !s.scheduleStore(q.tr, now) {
				// Distinguish a full store buffer from a busy cache port.
				if len(s.storeBuf) >= s.cfg.StoreBufferEntries {
					cause = obs.StallStoreBuffer
				} else {
					cause = obs.StallMemPort
				}
				goto stall
			}
			memIssued++
			resultReady = now + 1 // post-increment base writeback
			s.stats.Stores++
		}

		// Update the scoreboard. Post-increment memory ops write their base
		// register from the AGU one cycle after issue regardless of the
		// access latency.
		for _, d := range q.tr.Inst.Defs(usesBuf[:0]) {
			rdy := resultReady
			if q.tr.Inst.Op.Mode() == isa.AMPost && d == isa.UInt(q.tr.Inst.Rs) {
				rdy = now + 1
			}
			s.regReady[d] = rdy
		}
		s.note(resultReady)
		s.stats.Insts++
		if s.sink != nil {
			var addr uint32
			if op.IsMem() {
				addr = q.tr.EffAddr
			}
			s.sink.Event(obs.Event{Kind: obs.KindIssue, Cycle: now, PC: q.tr.PC, Addr: addr, Val: resultReady})
		}
		s.pending = s.pending[1:]
		issued++
		continue

	stall:
		break
	}
	return issued, cause, nil
}

// facEligible reports whether the access may speculate under fast address
// calculation at this cycle.
func (s *sim) facEligible(tr emu.Trace, now uint64, isLoad bool) bool {
	if !s.cfg.FAC {
		return false
	}
	if tr.Inst.Op.Mode() == isa.AMReg && !s.cfg.SpeculateRegReg {
		return false
	}
	if !isLoad && !s.cfg.SpeculateStores {
		return false
	}
	// Accesses in the cycle after a mispredict stall to MEM — except a
	// load immediately after a misspeculated load (Section 5.5).
	if s.haveMispred && now == s.lastMispredCycle+1 {
		if !(isLoad && s.lastMispredWasLoad) {
			return false
		}
	}
	return true
}

func (s *sim) noteMispredict(now uint64, wasLoad bool) {
	s.lastMispredCycle = now
	s.lastMispredWasLoad = wasLoad
	s.haveMispred = true
}

// scheduleLoad books cache bandwidth and computes the cycle the loaded
// value becomes available. It returns ok=false when the load must stall
// this cycle for a structural hazard.
func (s *sim) scheduleLoad(tr emu.Trace, now uint64) (bool, uint64) {
	if s.facEligible(tr, now, true) {
		if !s.readFree(now) {
			return false, 0
		}
		pred := s.geom.Predict(tr.Base, tr.Offset, tr.IsRegOffset)
		s.stats.LoadsSpeculated++
		s.useRead(now)
		if s.sink != nil {
			s.sink.Event(obs.Event{Kind: obs.KindFACPredict, Fail: pred.Failure, Cycle: now, PC: tr.PC, Addr: pred.Predicted})
		}
		if pred.OK {
			ready := s.dcacheAccess(tr.EffAddr, false, now)
			return true, maxU64(ready+1, now+1)
		}
		// Misprediction: the EX-cycle access is wasted; the load replays in
		// MEM with the architectural address (replays bypass the port
		// limit but are counted).
		s.stats.LoadSpecFailed++
		s.stats.ExtraAccesses++
		pred.Failure.CountInto(&s.stats.LoadFailKinds)
		s.noteMispredict(now, true)
		s.useRead(now + 1)
		if s.sink != nil {
			s.sink.Event(obs.Event{Kind: obs.KindReplay, Cycle: now + 1, PC: tr.PC, Addr: tr.EffAddr})
		}
		ready := s.dcacheAccess(tr.EffAddr, false, now+1)
		return true, maxU64(ready+1, now+2)
	}

	accessCycle := now + uint64(s.cfg.LoadLatency-1)
	if !s.readFree(accessCycle) {
		return false, 0
	}
	s.useRead(accessCycle)
	ready := s.dcacheAccess(tr.EffAddr, false, accessCycle)
	return true, maxU64(ready+1, accessCycle+1)
}

// scheduleStore books the store's tag probe and a store-buffer entry.
func (s *sim) scheduleStore(tr emu.Trace, now uint64) bool {
	if len(s.storeBuf) >= s.cfg.StoreBufferEntries {
		// Full buffer stalls the pipeline while the oldest entry retires
		// (handled in retireStores via the forced path).
		s.stats.StoreBufferFullStalls++
		return false
	}
	if s.facEligible(tr, now, false) {
		if !s.storeFree(now) {
			return false
		}
		pred := s.geom.Predict(tr.Base, tr.Offset, tr.IsRegOffset)
		s.stats.StoresSpeculated++
		s.useStore(now)
		if s.sink != nil {
			s.sink.Event(obs.Event{Kind: obs.KindFACPredict, Flags: obs.FlagStore, Fail: pred.Failure, Cycle: now, PC: tr.PC, Addr: pred.Predicted})
		}
		if pred.OK {
			s.storeBuf = append(s.storeBuf, storeEnt{addr: tr.EffAddr, entered: now})
			return true
		}
		// Mispredicted store: re-probe next cycle with the architectural
		// address and fix up the buffered entry.
		s.stats.StoreSpecFailed++
		s.stats.ExtraAccesses++
		pred.Failure.CountInto(&s.stats.StoreFailKinds)
		s.noteMispredict(now, false)
		s.useStore(now + 1)
		if s.sink != nil {
			s.sink.Event(obs.Event{Kind: obs.KindReplay, Flags: obs.FlagStore, Cycle: now + 1, PC: tr.PC, Addr: tr.EffAddr})
		}
		s.storeBuf = append(s.storeBuf, storeEnt{addr: tr.EffAddr, entered: now + 1})
		return true
	}

	probeCycle := now + 1 // MEM stage
	if !s.storeFree(probeCycle) {
		return false
	}
	s.useStore(probeCycle)
	s.storeBuf = append(s.storeBuf, storeEnt{addr: tr.EffAddr, entered: probeCycle})
	return true
}

// retireStores drains the store buffer during cycles in which the data
// cache is otherwise unused, or forcibly when the buffer is full.
func (s *sim) retireStores(now uint64) {
	if len(s.storeBuf) == 0 {
		return
	}
	i := s.slot(now)
	idle := s.readsAt[i] == 0 && !s.storeAt[i]
	full := len(s.storeBuf) >= s.cfg.StoreBufferEntries
	if !idle && !full {
		return
	}
	e := s.storeBuf[0]
	if e.entered >= now {
		return // entries need a cycle in the buffer before retiring
	}
	s.storeBuf = s.storeBuf[1:]
	if s.sink != nil {
		s.sink.Event(obs.Event{Kind: obs.KindStoreRetire, Flags: obs.FlagStore, Cycle: now, Addr: e.addr, Val: uint64(len(s.storeBuf))})
	}
	ready := s.dcacheAccess(e.addr, true, now)
	s.note(ready)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
