//lint:hotpath
package pipeline

import (
	"context"
	"fmt"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/predict"
)

// Source supplies the dynamic instruction stream in program order. Next
// returns false when the program has finished.
type Source interface {
	Next() (emu.Trace, bool, error)
}

// BatchSource is an optional refinement of Source: NextBatch fills buf
// with as many traces as remain (up to len(buf)) and returns the count,
// 0 at end of stream. Sources that implement it (core's emulator
// adapter) are pulled in bulk, amortizing the per-instruction interface
// call; the producer may run up to one batch ahead of the timing model,
// which is safe because the stream is trace-driven and replayed as-is.
type BatchSource interface {
	NextBatch(buf []emu.Trace) (int, error)
}

// batchSize is the trace buffer length used with a BatchSource.
const batchSize = 256

// ringBits sizes the per-cycle cache-port reservation ring. Reservations
// only ever target the current or next cycle, so a small ring suffices.
const ringBits = 6

type sim struct {
	cfg     Config
	pred    predict.Predictor // nil = no address prediction
	opBased bool              // pred.OperandBased() (hoisted off the hot path)
	src     Source
	bsrc    BatchSource     // non-nil when src implements BatchSource
	ctx     context.Context // nil = cancellation disabled

	icache *cache.Cache
	dcache *cache.Cache
	btb    *bpred.BTB

	stats Stats
	sink  obs.Sink // nil = observability disabled (no event allocations)

	// Fetch: the trace buffer (batch[batchPos:batchLen] is unconsumed).
	nextFetchCycle uint64
	batch          []emu.Trace
	batchPos       int
	batchLen       int
	srcDone        bool

	// Issue queue (fetched, not yet issued), in program order. A fixed
	// ring: capacity is the fetch guard's bound (2*FetchWidth+IssueWidth),
	// so the steady state allocates nothing.
	pending  []qent
	pendHead int
	pendLen  int

	// Scoreboard: cycle at which each unified register can be sourced.
	regReady [isa.NumURegs]uint64

	// Non-pipelined unit reservation.
	intMDFree uint64
	fpMDFree  uint64

	// Per-cycle cache port reservations.
	readsAt [1 << ringBits]uint8
	storeAt [1 << ringBits]bool

	// Store buffer (FIFO of entry-ready cycles), a fixed ring of
	// StoreBufferEntries.
	storeBuf []storeEnt
	sbHead   int
	sbLen    int

	// FAC replay rule: accesses in the cycle after a mispredict may not
	// speculate, except a load directly after a misspeculated load.
	lastMispredCycle   uint64
	lastMispredWasLoad bool
	haveMispred        bool

	nextCtxCheck uint64 // next cycle at which to poll ctx for cancellation
	lastEvent    uint64 // completion time of the latest activity seen
}

// qent is one issue-queue entry: the pre-decoded instruction plus the few
// trace fields the issue stage consumes.
type qent struct {
	pc       uint32
	effAddr  uint32 // architectural effective address (memory ops)
	base     uint32 // base register value at execute time
	offset   uint32 // offset value (constant or index register)
	memVal   uint32 // transferred value of an integer access (hasVal)
	isRegOff bool   // offset came from the register file
	hasVal   bool   // memVal valid
	pre      isa.Pre
	earliest uint64 // fetchCycle + 2 (IF, ID, then EX)
}

type storeEnt struct {
	addr    uint32
	entered uint64
}

// Issue-queue ring operations.

func (s *sim) pendHeadEnt() *qent { return &s.pending[s.pendHead] }

// pendSlot claims the next free ring slot and returns it for in-place
// construction, avoiding a queue-entry copy per fetched instruction.
func (s *sim) pendSlot() *qent {
	i := s.pendHead + s.pendLen
	if i >= len(s.pending) {
		i -= len(s.pending)
	}
	s.pendLen++
	return &s.pending[i]
}

func (s *sim) pendPop() {
	s.pendHead++
	if s.pendHead == len(s.pending) {
		s.pendHead = 0
	}
	s.pendLen--
}

// Store-buffer ring operations.

func (s *sim) sbPush(e storeEnt) {
	i := s.sbHead + s.sbLen
	if i >= len(s.storeBuf) {
		i -= len(s.storeBuf)
	}
	s.storeBuf[i] = e
	s.sbLen++
}

func (s *sim) sbPop() storeEnt {
	e := s.storeBuf[s.sbHead]
	s.sbHead++
	if s.sbHead == len(s.storeBuf) {
		s.sbHead = 0
	}
	s.sbLen--
	return e
}

// Run simulates the instruction stream and returns timing statistics.
func Run(cfg Config, src Source) (Stats, error) {
	return RunObserved(cfg, src, nil)
}

// RunObserved simulates the instruction stream with an event sink
// attached (nil disables the stream at zero cost). The sink receives
// every pipeline and cache event in simulation order.
func RunObserved(cfg Config, src Source, sink obs.Sink) (Stats, error) {
	return RunCtx(nil, cfg, src, sink)
}

// ctxCheckInterval spaces out cancellation checks: the context is polled
// every 4096 simulated cycles (fast-forwarded cycles count), so an abort
// costs at most a few microseconds of extra simulation while the
// steady-state loop pays one nil comparison per cycle.
const ctxCheckInterval = 1 << 12

// RunCtx is RunObserved with cancellation: when ctx is non-nil, its
// cancellation or deadline aborts the cycle loop promptly (checked every
// few thousand cycles) and the run returns an error wrapping ctx.Err().
// A nil ctx disables the checks entirely; timing is identical either way.
func RunCtx(ctx context.Context, cfg Config, src Source, sink obs.Sink) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	s := &sim{cfg: cfg, src: src, ctx: ctx, btb: bpred.New(cfg.BTBEntries), sink: sink}
	s.pending = make([]qent, 2*cfg.FetchWidth+cfg.IssueWidth)
	s.storeBuf = make([]storeEnt, cfg.StoreBufferEntries)
	if bs, ok := src.(BatchSource); ok {
		s.bsrc = bs
		s.batch = make([]emu.Trace, batchSize)
	} else {
		s.batch = make([]emu.Trace, 1)
	}
	if name := cfg.PredictorName(); name != "" {
		static := cfg.StaticTable
		if name == "selective" && static == nil {
			// No verdicts supplied (a raw-trace replay with no program
			// behind it): every site is unknown, so selective degrades to
			// plain FAC. core.RunCtx bakes the real table from the program.
			static = &predict.StaticTable{}
		}
		p, err := predict.New(name, predict.Options{
			Geom:    cfg.FACGeometry(),
			Entries: cfg.PredictorEntries,
			TagBits: cfg.PredictorTagBits,
			Static:  static,
		})
		if err != nil {
			return Stats{}, fmt.Errorf("pipeline: %w", err)
		}
		s.pred = p
		s.opBased = p.OperandBased()
		s.stats.FACEnabled = true
		s.stats.Predictor = name
	}
	if !cfg.PerfectICache {
		s.icache = cache.New(cfg.ICache)
		s.icache.SetSink(sink)
	}
	if !cfg.PerfectDCache {
		s.dcache = cache.New(cfg.DCache)
		s.dcache.SetSink(sink)
	}
	if err := s.run(); err != nil {
		return Stats{}, err
	}
	if s.icache != nil {
		s.stats.ICache = s.icache.Stats()
	}
	if s.dcache != nil {
		s.stats.DCache = s.dcache.Stats()
	}
	return s.stats, nil
}

func (s *sim) run() error {
	var now uint64
	lastProgress := uint64(0)
	prevInsts, prevBuf := uint64(0), 0
	for {
		if s.srcDone && s.batchPos >= s.batchLen && s.pendLen == 0 && s.sbLen == 0 {
			break
		}
		if s.ctx != nil && now >= s.nextCtxCheck {
			s.nextCtxCheck = now + ctxCheckInterval
			if err := s.ctx.Err(); err != nil {
				return fmt.Errorf("pipeline: run canceled at cycle %d: %w", now, err)
			}
		}
		// Clear the reservation slot two cycles ahead (reservations only
		// target now or now+1).
		s.readsAt[(now+2)&(1<<ringBits-1)] = 0
		s.storeAt[(now+2)&(1<<ringBits-1)] = false

		if err := s.fetch(now); err != nil {
			return err
		}
		issued, cause, err := s.issue(now)
		if err != nil {
			return err
		}
		if issued > 0 {
			s.stats.IssueActiveCycles++
		} else {
			s.stats.StallCycles[cause]++
			if s.sink != nil {
				s.sink.Event(obs.Event{Kind: obs.KindStall, Cause: cause, Cycle: now})
			}
		}
		s.retireStores(now)

		if s.stats.Insts != prevInsts || s.sbLen != prevBuf {
			prevInsts, prevBuf = s.stats.Insts, s.sbLen
			lastProgress = now
		}
		if now-lastProgress > 1_000_000 {
			return fmt.Errorf("pipeline: no progress for 1M cycles at cycle %d (%d pending, %d store buffer)",
				now, s.pendLen, s.sbLen)
		}

		// Stall fast-forwarding: when this cycle issued nothing and the
		// pipeline is provably quiescent until a known future cycle (a
		// miss fill, a long-latency result, a fetch redirect landing),
		// jump straight there. Timing, statistics, and the event stream
		// are bit-identical to walking the cycles one by one; see
		// docs/PERFORMANCE.md for the invariant argument.
		if issued == 0 && s.sbLen == 0 && !s.cfg.NoFastForward {
			if wake := s.ffWake(now); wake > now+1 {
				skipped := wake - now - 1
				s.stats.StallCycles[cause] += skipped
				if s.sink != nil {
					for c := now + 1; c < wake; c++ {
						s.sink.Event(obs.Event{Kind: obs.KindStall, Cause: cause, Cycle: c})
					}
				}
				// Every live port reservation targets a cycle <= now+1 <
				// wake, so the whole ring is stale at the resume cycle.
				s.readsAt = [1 << ringBits]uint8{}
				s.storeAt = [1 << ringBits]bool{}
				now = wake - 1
			}
		}
		now++
	}
	s.stats.Cycles = s.lastEvent
	return nil
}

// ffWake returns the cycle to which the simulation can provably
// fast-forward from the zero-issue cycle now: every skipped cycle would
// issue nothing for the same recorded cause, mutate no simulator state,
// and (stall events aside) emit nothing. It returns 0 when no such
// window exists. The caller guarantees the store buffer is empty, so
// retireStores is a no-op throughout the window.
func (s *sim) ffWake(now uint64) uint64 {
	const inf = ^uint64(0)
	wake := inf
	// Fetch next acts at nextFetchCycle — unless it is blocked on a full
	// issue queue, in which case it cannot act before issue drains the
	// queue (covered by the head examination below).
	if !s.srcDone || s.batchPos < s.batchLen {
		if s.pendLen+s.cfg.FetchWidth <= 2*s.cfg.FetchWidth+s.cfg.IssueWidth {
			if s.nextFetchCycle <= now {
				return 0 // fetch is active; no quiescent window
			}
			wake = s.nextFetchCycle
		}
	}
	if s.pendLen > 0 {
		q := s.pendHeadEnt()
		if q.earliest > now {
			if q.earliest < wake {
				wake = q.earliest
			}
		} else {
			// Mirror the issue stage's head examination exactly.
			off := uint64(0)
			if s.cfg.AGI {
				switch q.pre.Class {
				case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassSyscall:
					off = 1
				}
			}
			opWake := uint64(0)
			for _, u := range q.pre.Uses[:q.pre.NUses] {
				if r := s.regReady[u]; r > now+off && r-off > opWake {
					opWake = r - off
				}
			}
			if opWake != 0 {
				if opWake < wake {
					wake = opWake
				}
			} else {
				// Operands are ready, so the head is blocked on a
				// non-pipelined unit's issue interval; any other hazard
				// (cache port, store buffer slot) can clear within a
				// cycle and is not fast-forwarded.
				var free uint64
				switch q.pre.Class {
				case isa.ClassIntMul, isa.ClassIntDiv:
					free = s.intMDFree
				case isa.ClassFPMul, isa.ClassFPDiv:
					free = s.fpMDFree
				default:
					return 0
				}
				if free <= now {
					return 0
				}
				if free < wake {
					wake = free
				}
			}
		}
	}
	if wake == inf || wake <= now+1 {
		return 0
	}
	return wake
}

func (s *sim) note(cycle uint64) {
	if cycle > s.lastEvent {
		s.lastEvent = cycle
	}
}

// peekTrace exposes the next dynamic instruction without consuming it.
// The returned pointer is valid until the next peekTrace call that
// refills the batch buffer; nil means the stream has ended.
func (s *sim) peekTrace() (*emu.Trace, error) {
	if s.batchPos < s.batchLen {
		return &s.batch[s.batchPos], nil
	}
	if s.srcDone {
		return nil, nil
	}
	if s.bsrc != nil {
		n, err := s.bsrc.NextBatch(s.batch)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			s.srcDone = true
			return nil, nil
		}
		s.batchPos, s.batchLen = 0, n
		return &s.batch[0], nil
	}
	tr, ok, err := s.src.Next()
	if err != nil {
		return nil, err
	}
	if !ok {
		s.srcDone = true
		return nil, nil
	}
	s.batch[0] = tr
	s.batchPos, s.batchLen = 0, 1
	return &s.batch[0], nil
}

func (s *sim) takeTrace() { s.batchPos++ }

// fetch models the IF stage: up to FetchWidth contiguous instructions per
// cycle through the I-cache, ending early at predicted- or actually-taken
// control transfers, charging the BTB misprediction penalty.
func (s *sim) fetch(now uint64) error {
	if now < s.nextFetchCycle {
		return nil
	}
	if s.pendLen+s.cfg.FetchWidth > 2*s.cfg.FetchWidth+s.cfg.IssueWidth {
		return nil // issue queue full; fetch stalls
	}
	first, err := s.peekTrace()
	if err != nil {
		return err
	}
	if first == nil {
		return nil
	}
	firstPC := first.PC

	// I-cache access for the group's first block (and, if the group
	// crosses, its successor block, fetched the same cycle).
	groupReady := now
	if s.icache != nil {
		res := s.icache.Access(firstPC, false, now)
		if res.Ready > groupReady {
			groupReady = res.Ready
		}
	}
	blockMask := uint32(0)
	if s.icache != nil {
		blockMask = ^uint32(s.cfg.ICache.BlockSize - 1)
	}

	fetched := 0
	expectPC := firstPC
	redirected := false
	for fetched < s.cfg.FetchWidth {
		tr, err := s.peekTrace()
		if err != nil {
			return err
		}
		if tr == nil {
			break
		}
		if tr.PC != expectPC {
			break // discontiguous (should not happen: redirects end groups)
		}
		if s.icache != nil && tr.PC&blockMask != firstPC&blockMask {
			res := s.icache.Access(tr.PC, false, now)
			if res.Ready > groupReady {
				groupReady = res.Ready
			}
		}
		s.takeTrace()
		q := s.pendSlot()
		q.pc = tr.PC
		q.effAddr = tr.EffAddr
		q.base = tr.Base
		q.offset = tr.Offset
		q.isRegOff = tr.IsRegOffset
		q.memVal, q.hasVal = tr.MemVal, tr.HasMemVal
		q.earliest = groupReady + 2
		if tr.Pre != nil {
			q.pre = *tr.Pre // the producer's pre-decode table (the common case)
		} else {
			q.pre = isa.Predecode(tr.Inst) // hand-built trace: decode locally
		}
		fetched++
		expectPC = tr.PC + isa.InstBytes

		if q.pre.IsControl() {
			taken := tr.NextPC != tr.PC+isa.InstBytes
			predTaken, _ := s.btb.Predict(tr.PC)
			mis := s.btb.Update(tr.PC, taken, tr.NextPC)
			s.stats.BranchLookups++
			if mis {
				s.stats.BranchMispredicts++
				s.nextFetchCycle = groupReady + 1 + uint64(s.cfg.MispredictPenalty)
				redirected = true
				break
			}
			if taken || predTaken {
				// Correctly predicted taken: fetch resumes at the target
				// next cycle.
				s.nextFetchCycle = groupReady + 1
				redirected = true
				break
			}
			// Correctly predicted not-taken: the group continues.
		}
	}
	if !redirected {
		s.nextFetchCycle = groupReady + 1
	}
	if s.sink != nil && fetched > 0 {
		s.sink.Event(obs.Event{Kind: obs.KindFetch, Cycle: now, PC: firstPC, Val: uint64(fetched)})
	}
	return nil
}

// Cache port helpers ("up to two loads or one store each cycle").

func (s *sim) slot(c uint64) int { return int(c & (1<<ringBits - 1)) }

func (s *sim) readFree(c uint64) bool {
	i := s.slot(c)
	return !s.storeAt[i] && int(s.readsAt[i]) < s.cfg.DCacheReadsPerCycle
}

func (s *sim) useRead(c uint64) { s.readsAt[s.slot(c)]++ }

func (s *sim) storeFree(c uint64) bool {
	i := s.slot(c)
	return !s.storeAt[i] && s.readsAt[i] == 0
}

func (s *sim) useStore(c uint64) { s.storeAt[s.slot(c)] = true }

// dcacheAccess performs a data-cache access at the given cycle, retrying
// past MSHR-full conditions, and returns the cycle the data is available.
func (s *sim) dcacheAccess(addr uint32, write bool, c uint64) uint64 {
	if s.dcache == nil {
		return c // perfect cache
	}
	for {
		res := s.dcache.Access(addr, write, c)
		if !res.MSHRFull {
			return res.Ready
		}
		c = res.Ready
	}
}

// issue models the in-order issue stage: up to IssueWidth operations leave
// the queue per cycle, blocking on operand readiness, functional units, and
// memory structural hazards. It returns the number of instructions issued
// and, for zero-issue cycles, the stall cause blocking the queue head.
func (s *sim) issue(now uint64) (int, obs.StallCause, error) {
	issued := 0
	memIssued := 0
	aluUsed := 0
	fpAddUsed := 0
	cause := obs.StallFrontend

	if s.pendLen == 0 && s.srcDone && s.batchPos >= s.batchLen {
		cause = obs.StallDrain // program done; store buffer still draining
	}
	for issued < s.cfg.IssueWidth && s.pendLen > 0 {
		q := s.pendHeadEnt()
		if q.earliest > now {
			cause = obs.StallFrontend // head not yet through IF/ID
			break
		}

		// In the AGI organization ALU-class operations execute one stage
		// later than address generation: their operands are needed one
		// cycle later (hiding load-use latency) and their results arrive
		// one cycle later (the address-use hazard).
		needAt := now
		aluShift := uint64(0)
		if s.cfg.AGI {
			switch q.pre.Class {
			case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassSyscall:
				needAt = now + 1
				aluShift = 1
			}
		}

		// In-order issue: all source operands must be ready.
		ready := true
		for _, u := range q.pre.Uses[:q.pre.NUses] {
			if s.regReady[u] > needAt {
				ready = false
				break
			}
		}
		if !ready {
			cause = obs.StallOperand
			break
		}

		var resultReady uint64
		switch q.pre.Class {
		case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassSyscall:
			if aluUsed >= s.cfg.IntALUs {
				cause = obs.StallUnit
				goto stall
			}
			aluUsed++
			resultReady = now + uint64(s.cfg.IntALULat.Result) + aluShift
		case isa.ClassIntMul:
			if s.intMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.intMDFree = now + uint64(s.cfg.IntMulLat.Interval)
			resultReady = now + uint64(s.cfg.IntMulLat.Result)
		case isa.ClassIntDiv:
			if s.intMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.intMDFree = now + uint64(s.cfg.IntDivLat.Interval)
			resultReady = now + uint64(s.cfg.IntDivLat.Result)
		case isa.ClassFPAdd:
			if fpAddUsed >= s.cfg.FPAdders {
				cause = obs.StallUnit
				goto stall
			}
			fpAddUsed++
			resultReady = now + uint64(s.cfg.FPAddLat.Result)
		case isa.ClassFPMul:
			if s.fpMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.fpMDFree = now + uint64(s.cfg.FPMulLat.Interval)
			resultReady = now + uint64(s.cfg.FPMulLat.Result)
		case isa.ClassFPDiv:
			if s.fpMDFree > now {
				cause = obs.StallUnit
				goto stall
			}
			s.fpMDFree = now + uint64(s.cfg.FPDivLat.Interval)
			resultReady = now + uint64(s.cfg.FPDivLat.Result)
		case isa.ClassLoad:
			if memIssued >= s.cfg.LoadStore {
				cause = obs.StallMemPort
				goto stall
			}
			ok, rdy := s.scheduleLoad(q, now)
			if !ok {
				cause = obs.StallMemPort
				goto stall
			}
			memIssued++
			resultReady = rdy
			s.stats.Loads++
			s.stats.LoadLatency.Add(rdy - now)
			if s.pred != nil {
				s.pred.Train(q.pc, q.effAddr)
			}
		case isa.ClassStore:
			if memIssued >= s.cfg.LoadStore {
				cause = obs.StallMemPort
				goto stall
			}
			if !s.scheduleStore(q, now) {
				// Distinguish a full store buffer from a busy cache port.
				if s.sbLen >= s.cfg.StoreBufferEntries {
					cause = obs.StallStoreBuffer
				} else {
					cause = obs.StallMemPort
				}
				goto stall
			}
			memIssued++
			resultReady = now + 1 // post-increment base writeback
			s.stats.Stores++
			if s.pred != nil {
				s.pred.Train(q.pc, q.effAddr)
			}
		}

		// Update the scoreboard. Post-increment memory ops write their base
		// register from the AGU one cycle after issue regardless of the
		// access latency.
		for _, d := range q.pre.Defs[:q.pre.NDefs] {
			rdy := resultReady
			if q.pre.Flags&isa.PrePostInc != 0 && d == q.pre.BaseU {
				rdy = now + 1
			}
			s.regReady[d] = rdy
		}
		s.note(resultReady)
		s.stats.Insts++
		if s.sink != nil {
			var addr uint32
			if q.pre.IsMem() {
				addr = q.effAddr
			}
			s.sink.Event(obs.Event{Kind: obs.KindIssue, Cycle: now, PC: q.pc, Addr: addr, Val: resultReady})
		}
		s.pendPop()
		issued++
		continue

	stall:
		break
	}
	return issued, cause, nil
}

// facEligible reports whether the access may consult the prediction
// machine at this cycle. The register-offset gate models operand
// availability in the prediction circuit, so it applies only to
// operand-based machines; a PC-indexed table predicts from the PC alone.
func (s *sim) facEligible(q *qent, now uint64, isLoad bool) bool {
	if s.pred == nil {
		return false
	}
	if s.opBased && q.pre.Flags&isa.PreRegOffset != 0 && !s.cfg.SpeculateRegReg {
		return false
	}
	if !isLoad && !s.cfg.SpeculateStores {
		return false
	}
	// Accesses in the cycle after a mispredict stall to MEM — except a
	// load immediately after a misspeculated load (Section 5.5).
	if s.haveMispred && now == s.lastMispredCycle+1 {
		if !(isLoad && s.lastMispredWasLoad) {
			return false
		}
	}
	return true
}

func (s *sim) noteMispredict(now uint64, wasLoad bool) {
	s.lastMispredCycle = now
	s.lastMispredWasLoad = wasLoad
	s.haveMispred = true
}

// scheduleLoad books cache bandwidth and computes the cycle the loaded
// value becomes available. It returns ok=false when the load must stall
// this cycle for a structural hazard.
func (s *sim) scheduleLoad(q *qent, now uint64) (bool, uint64) {
	noPred := false
	if s.facEligible(q, now, true) {
		// Predict is pure, so calling it before the port check is safe: a
		// stalled load re-predicts identically next cycle (in-order issue
		// keeps the stalled head blocking, so no training intervenes).
		r := s.pred.Predict(q.pc, q.base, q.offset, q.isRegOff)
		if r.Spec {
			if !s.readFree(now) {
				return false, 0
			}
			ok, fail := resolve(r, q.effAddr)
			s.stats.LoadsSpeculated++
			s.useRead(now)
			if s.sink != nil {
				s.sink.Event(obs.Event{Kind: obs.KindFACPredict, Flags: valFlags(q), Fail: fail, Cycle: now, PC: q.pc, Addr: r.Addr, Val: uint64(q.memVal)})
			}
			if ok {
				ready := s.dcacheAccess(q.effAddr, false, now)
				return true, maxU64(ready+1, now+1)
			}
			// Misprediction: the EX-cycle access is wasted; the load replays in
			// MEM with the architectural address (replays bypass the port
			// limit but are counted).
			s.stats.LoadSpecFailed++
			s.stats.ExtraAccesses++
			fail.CountInto(&s.stats.LoadFailKinds)
			s.noteMispredict(now, true)
			s.useRead(now + 1)
			if s.sink != nil {
				s.sink.Event(obs.Event{Kind: obs.KindReplay, Cycle: now + 1, PC: q.pc, Addr: q.effAddr})
			}
			ready := s.dcacheAccess(q.effAddr, false, now+1)
			return true, maxU64(ready+1, now+2)
		}
		// The machine declined to predict: the load proceeds down the
		// ordinary non-speculative path, counted once it schedules.
		noPred = true
	}

	accessCycle := now + uint64(s.cfg.LoadLatency-1)
	if !s.readFree(accessCycle) {
		return false, 0
	}
	if noPred {
		s.stats.LoadsNoPredict++
		if s.sink != nil {
			s.sink.Event(obs.Event{Kind: obs.KindFACPredict, Flags: obs.FlagNoPredict | valFlags(q), Cycle: now, PC: q.pc, Val: uint64(q.memVal)})
		}
	}
	s.useRead(accessCycle)
	ready := s.dcacheAccess(q.effAddr, false, accessCycle)
	return true, maxU64(ready+1, accessCycle+1)
}

// valFlags marks KindFACPredict events whose Val field carries the
// architectural transferred value (integer accesses; see emu.Trace).
func valFlags(q *qent) obs.Flags {
	if q.hasVal {
		return obs.FlagHasVal
	}
	return 0
}

// resolve turns a prediction into its verification outcome: algebraic
// machines carry exact failure signals (correct iff none), table machines
// are checked against the architectural effective address and charge
// their predict-time signal set only when wrong.
func resolve(r predict.Result, effAddr uint32) (bool, fac.Failure) {
	ok := r.Fail == 0
	if !r.Algebraic {
		ok = r.Addr == effAddr
	}
	if ok {
		return true, 0
	}
	return false, r.Fail
}

// scheduleStore books the store's tag probe and a store-buffer entry.
func (s *sim) scheduleStore(q *qent, now uint64) bool {
	if s.sbLen >= s.cfg.StoreBufferEntries {
		// Full buffer stalls the pipeline while the oldest entry retires
		// (handled in retireStores via the forced path).
		s.stats.StoreBufferFullStalls++
		return false
	}
	noPred := false
	if s.facEligible(q, now, false) {
		r := s.pred.Predict(q.pc, q.base, q.offset, q.isRegOff)
		if r.Spec {
			if !s.storeFree(now) {
				return false
			}
			ok, fail := resolve(r, q.effAddr)
			s.stats.StoresSpeculated++
			s.useStore(now)
			if s.sink != nil {
				s.sink.Event(obs.Event{Kind: obs.KindFACPredict, Flags: obs.FlagStore | valFlags(q), Fail: fail, Cycle: now, PC: q.pc, Addr: r.Addr, Val: uint64(q.memVal)})
			}
			if ok {
				s.sbPush(storeEnt{addr: q.effAddr, entered: now})
				return true
			}
			// Mispredicted store: re-probe next cycle with the architectural
			// address and fix up the buffered entry.
			s.stats.StoreSpecFailed++
			s.stats.ExtraAccesses++
			fail.CountInto(&s.stats.StoreFailKinds)
			s.noteMispredict(now, false)
			s.useStore(now + 1)
			if s.sink != nil {
				s.sink.Event(obs.Event{Kind: obs.KindReplay, Flags: obs.FlagStore, Cycle: now + 1, PC: q.pc, Addr: q.effAddr})
			}
			s.sbPush(storeEnt{addr: q.effAddr, entered: now + 1})
			return true
		}
		noPred = true
	}

	probeCycle := now + 1 // MEM stage
	if !s.storeFree(probeCycle) {
		return false
	}
	if noPred {
		s.stats.StoresNoPredict++
		if s.sink != nil {
			s.sink.Event(obs.Event{Kind: obs.KindFACPredict, Flags: obs.FlagStore | obs.FlagNoPredict | valFlags(q), Cycle: now, PC: q.pc, Val: uint64(q.memVal)})
		}
	}
	s.useStore(probeCycle)
	s.sbPush(storeEnt{addr: q.effAddr, entered: probeCycle})
	return true
}

// retireStores drains the store buffer during cycles in which the data
// cache is otherwise unused, or forcibly when the buffer is full.
func (s *sim) retireStores(now uint64) {
	if s.sbLen == 0 {
		return
	}
	i := s.slot(now)
	idle := s.readsAt[i] == 0 && !s.storeAt[i]
	full := s.sbLen >= s.cfg.StoreBufferEntries
	if !idle && !full {
		return
	}
	if s.storeBuf[s.sbHead].entered >= now {
		return // entries need a cycle in the buffer before retiring
	}
	e := s.sbPop()
	if s.sink != nil {
		s.sink.Event(obs.Event{Kind: obs.KindStoreRetire, Flags: obs.FlagStore, Cycle: now, Addr: e.addr, Val: uint64(s.sbLen)})
	}
	ready := s.dcacheAccess(e.addr, true, now)
	s.note(ready)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
