package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/obs"
)

// endlessSource yields an unbounded straight-line instruction stream, for
// exercising cancellation of a run that would otherwise never finish.
type endlessSource struct {
	pc uint32
}

func (s *endlessSource) Next() (emu.Trace, bool, error) {
	tr := emu.Trace{
		PC:     s.pc,
		Inst:   isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		NextPC: s.pc + isa.InstBytes,
	}
	s.pc += isa.InstBytes
	return tr, true, nil
}

// TestRunCtxNilMatchesRun: a background-style nil context changes nothing
// about the timing result.
func TestRunCtxNilMatchesRun(t *testing.T) {
	trs := seq(
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		isa.Inst{Op: isa.LW, Rd: isa.T3, Rs: isa.T0, Imm: 4},
		isa.Inst{Op: isa.SUB, Rd: isa.T4, Rs: isa.T5, Rt: isa.T3},
	)
	setMem(&trs[1], 0x1000, 4, false)
	base := mustRun(t, fastCfg(), trs)

	trs2 := seq(
		isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		isa.Inst{Op: isa.LW, Rd: isa.T3, Rs: isa.T0, Imm: 4},
		isa.Inst{Op: isa.SUB, Rd: isa.T4, Rs: isa.T5, Rt: isa.T3},
	)
	setMem(&trs2[1], 0x1000, 4, false)
	got, err := RunCtx(context.Background(), fastCfg(), &sliceSource{trs: trs2}, nil)
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if got.Cycles != base.Cycles || got.Insts != base.Insts {
		t.Fatalf("RunCtx timing differs: %d cycles/%d insts vs %d/%d",
			got.Cycles, got.Insts, base.Cycles, base.Insts)
	}
}

// TestRunCtxCancellation: a cancelled context aborts an endless run
// promptly with an error wrapping the context's error.
func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunCtx(ctx, fastCfg(), &endlessSource{pc: 0x400000}, nil)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", d)
	}
}

// TestRunCtxDeadline: a deadline aborts the loop and the error reports
// DeadlineExceeded, the shape the simulation service's per-job timeout
// relies on.
func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunCtx(ctx, fastCfg(), &endlessSource{pc: 0x400000}, nil)
	if err == nil {
		t.Fatal("deadline-exceeded run returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline abort took %v, want prompt", d)
	}
}

// TestStatsRecordRoundtrip: StatsFromRecord is an exact inverse of
// Stats.Record over a fully populated Stats, including FAC and cache
// sections — the invariant the persistent result cache depends on.
func TestStatsRecordRoundtrip(t *testing.T) {
	var s Stats
	s.Cycles, s.Insts, s.Loads, s.Stores = 1000, 900, 200, 100
	s.LoadsSpeculated, s.StoresSpeculated = 150, 80
	s.LoadSpecFailed, s.StoreSpecFailed = 12, 5
	s.ExtraAccesses = 17
	s.BranchLookups, s.BranchMispredicts = 60, 7
	s.StoreBufferFullStalls = 3
	s.IssueActiveCycles = 700
	for i := range s.StallCycles {
		s.StallCycles[i] = uint64(10 + i)
	}
	for i := 0; i < 40; i++ {
		s.LoadLatency.Add(uint64(i % 37))
	}
	for i := range s.LoadFailKinds {
		s.LoadFailKinds[i] = uint64(2 + i)
		s.StoreFailKinds[i] = uint64(5 + i)
	}
	s.FACEnabled = true
	s.Predictor = "fac" // the simulator's resolved name for FAC runs
	s.ICache.Accesses, s.ICache.Misses = 500, 20
	s.ICache.DelayedHits, s.ICache.Evictions, s.ICache.Writebacks = 4, 19, 6
	s.DCache.Accesses, s.DCache.Misses = 300, 30
	s.DCache.DelayedHits, s.DCache.Evictions, s.DCache.Writebacks = 8, 29, 11
	for i := 0; i < 10; i++ {
		s.DCache.MSHROcc.Add(uint64(i % 4))
	}

	rec := s.Record("bench", "int", "fac", "fac32")
	back := StatsFromRecord(rec)
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", back, s)
	}
	rec2 := back.Record("bench", "int", "fac", "fac32")
	if !reflect.DeepEqual(rec, rec2) {
		t.Fatalf("record re-encode mismatch:\n got %+v\nwant %+v", rec2, rec)
	}

	// A run without FAC or caches roundtrips to zero-valued sections.
	var plain Stats
	plain.Cycles, plain.Insts = 10, 5
	prec := plain.Record("b", "int", "base", "base32")
	if prec.FAC != nil || prec.ICache != nil || prec.DCache != nil {
		t.Fatalf("plain record grew sections: %+v", prec)
	}
	if got := StatsFromRecord(prec); !reflect.DeepEqual(plain, got) {
		t.Fatalf("plain roundtrip mismatch: %+v", got)
	}

	// Records that crossed the disk (JSON) roundtrip identically too —
	// obs.Hist trims trailing buckets in its encoding.
	if obs.RunRecordSchema == "" {
		t.Fatal("schema constant empty")
	}
}

// TestStatsRecordRoundtripPredictor: a run under a zoo machine (named
// failure causes instead of the legacy fixed-slot breakdown, no-predict
// counters) survives Record → StatsFromRecord → Record unchanged.
func TestStatsRecordRoundtripPredictor(t *testing.T) {
	var s Stats
	s.Cycles, s.Insts, s.Loads, s.Stores = 500, 400, 100, 50
	s.LoadsSpeculated, s.StoresSpeculated = 60, 20
	s.LoadSpecFailed, s.StoreSpecFailed = 30, 4
	s.LoadsNoPredict, s.StoresNoPredict = 12, 7
	s.ExtraAccesses = 34
	s.IssueActiveCycles = 300
	s.FACEnabled = true
	s.Predictor = "stride"
	s.LoadFailKinds[0] = 25 // lastaddr
	s.LoadFailKinds[1] = 5  // stridebreak
	s.StoreFailKinds[0] = 4
	for i := 0; i < 20; i++ {
		s.LoadLatency.Add(uint64(i % 5))
	}

	rec := s.Record("bench", "int", "stride", "stride")
	if rec.FAC == nil || rec.FAC.Predictor != "stride" {
		t.Fatalf("zoo record lacks predictor name: %+v", rec.FAC)
	}
	if rec.FAC.LoadFailCauses["lastaddr"] != 25 || rec.FAC.LoadFailCauses["stridebreak"] != 5 {
		t.Fatalf("named failure causes wrong: %+v", rec.FAC.LoadFailCauses)
	}
	if rec.FAC.LoadFailKinds != (obs.FailureBreakdown{}) || rec.FAC.StoreFailKinds != (obs.FailureBreakdown{}) {
		t.Fatalf("zoo record must not use the legacy fixed-slot breakdown: %+v", rec.FAC)
	}
	back := StatsFromRecord(rec)
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", back, s)
	}
	rec2 := back.Record("bench", "int", "stride", "stride")
	if !reflect.DeepEqual(rec, rec2) {
		t.Fatalf("record re-encode mismatch:\n got %+v\nwant %+v", rec2, rec)
	}
}
