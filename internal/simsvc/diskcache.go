package simsvc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// DiskCache is the persistent, content-addressed result cache: one JSON
// file per RunRecord under a directory, named by the run's cache key
// (see CacheKey). Writes are atomic (temp file + rename), loads are
// corruption-safe (an unreadable or schema-mismatched entry is deleted
// and treated as a miss), and the total size is LRU-bounded: every hit
// refreshes the entry's modification time and Put evicts the stalest
// entries once the directory exceeds MaxBytes.
//
// The same directory can be shared by cmd/facd and cmd/experiments
// -cache (even concurrently: the rename makes readers see only complete
// entries), so a table regenerated after a daemon batch — or vice versa —
// skips every already-simulated run.
type DiskCache struct {
	dir      string
	maxBytes int64

	mu        sync.Mutex
	pinned    map[string]bool // entry paths exempt from eviction
	hits      uint64
	misses    uint64
	evictions uint64
	corrupt   uint64
}

// DiskCacheStats is a point-in-time snapshot for /metrics.
type DiskCacheStats struct {
	Dir       string `json:"dir"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes,omitempty"`
	Pinned    int    `json:"pinned,omitempty"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Corrupt   uint64 `json:"corrupt"`
}

// HitRate returns hits/(hits+misses).
func (s DiskCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// OpenDiskCache opens (creating if needed) a cache directory. maxBytes
// bounds the total size of stored entries (0 = unbounded). Leftover
// temporary files from an interrupted writer are swept.
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("simsvc: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simsvc: open cache: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("simsvc: open cache: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &DiskCache{dir: dir, maxBytes: maxBytes}, nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// Pin exempts the given keys from LRU eviction: evictLocked never
// removes a pinned entry, however stale its mtime, so the standard-grid
// results a warmed daemon depends on cannot be churned out by unrelated
// traffic. Pinning is a property of this process's cache handle, not of
// the directory: a fresh DiskCache over the same directory starts with
// nothing pinned. Pinning a key does not require the entry to exist yet —
// the exemption applies once it is written.
func (c *DiskCache) Pin(keys ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range keys {
		p, err := c.path(key)
		if err != nil {
			return err
		}
		if c.pinned == nil {
			c.pinned = make(map[string]bool)
		}
		c.pinned[p] = true
	}
	return nil
}

// Unpin removes keys from the pinned set (unknown keys are ignored).
func (c *DiskCache) Unpin(keys ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range keys {
		if p, err := c.path(key); err == nil {
			delete(c.pinned, p)
		}
	}
}

// path maps a key to its entry file, rejecting anything that is not a
// plain lowercase-hex key (defense against path escapes from a corrupted
// caller).
func (c *DiskCache) path(key string) (string, error) {
	if len(key) < 16 || len(key) > 128 {
		return "", fmt.Errorf("simsvc: malformed cache key %q", key)
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return "", fmt.Errorf("simsvc: malformed cache key %q", key)
		}
	}
	return filepath.Join(c.dir, key+".json"), nil
}

// Get loads the record stored under key. A missing entry is a miss; a
// corrupt entry (unparseable JSON, wrong schema) is deleted and counted,
// then reported as a miss so the caller re-simulates and overwrites it.
func (c *DiskCache) Get(key string) (obs.RunRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.path(key)
	if err != nil {
		c.misses++
		return obs.RunRecord{}, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		c.misses++
		return obs.RunRecord{}, false
	}
	var rec obs.RunRecord
	if err := json.Unmarshal(data, &rec); err != nil || rec.Schema != obs.RunRecordSchema {
		c.corrupt++
		c.misses++
		os.Remove(p)
		return obs.RunRecord{}, false
	}
	now := time.Now()
	os.Chtimes(p, now, now) // refresh LRU recency; best effort
	c.hits++
	return rec, true
}

// Put stores rec under key atomically, then evicts least-recently-used
// entries while the cache exceeds its size bound.
func (c *DiskCache) Put(key string, rec obs.RunRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, err := c.path(key)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("simsvc: encode cache entry: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("simsvc: write cache entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("simsvc: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simsvc: write cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simsvc: write cache entry: %w", err)
	}
	c.evictLocked(p)
	return nil
}

// entryInfo is one stored entry during an eviction scan.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// evictLocked removes the least-recently-used entries until the cache
// fits its bound again. The just-written entry (keep) is never evicted,
// so a single oversized result cannot churn itself out of the cache, and
// pinned entries (see Pin) are exempt entirely. If everything remaining
// is pinned, the cache is allowed to exceed its bound.
//
// Recency is mtime order. On filesystems with coarse timestamp
// granularity, entries touched within the same tick compare equal, so
// ordering on mtime alone would leave the victim choice to ReadDir's
// directory order; the path tiebreak below pins a deterministic total
// order (regression-tested in TestDiskCacheEvictionTiebreak).
func (c *DiskCache) evictLocked(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	entries, total := c.scanLocked()
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if e.path == keep || c.pinned[e.path] {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			c.evictions++
		}
	}
}

// scanLocked lists the stored entries and their total size.
func (c *DiskCache) scanLocked() ([]entryInfo, int64) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, 0
	}
	var out []entryInfo
	var total int64
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, entryInfo{
			path:  filepath.Join(c.dir, de.Name()),
			size:  fi.Size(),
			mtime: fi.ModTime(),
		})
		total += fi.Size()
	}
	return out, total
}

// Stats snapshots the cache counters and current occupancy.
func (c *DiskCache) Stats() DiskCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries, total := c.scanLocked()
	return DiskCacheStats{
		Dir:       c.dir,
		Entries:   len(entries),
		Bytes:     total,
		MaxBytes:  c.maxBytes,
		Pinned:    len(c.pinned),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Corrupt:   c.corrupt,
	}
}
