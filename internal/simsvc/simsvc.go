// Package simsvc turns the timing simulator into infrastructure: a
// simulation-as-a-service layer with a bounded worker pool, a job queue
// with backpressure, per-job deadlines and cancellation plumbed through
// core.RunCtx into the pipeline's cycle loop, singleflight deduplication
// of identical in-flight jobs, and a content-addressed persistent result
// cache holding canonical obs.RunRecord reports. cmd/facd exposes it over
// HTTP/JSON; experiments.Suite shares the singleflight and the persistent
// cache so table and figure regeneration skips already-simulated runs.
//
// Determinism is the contract throughout: a job's result is the exact
// RunRecord an in-process core.Run of the same (workload, toolchain,
// machine) produces, whether it was computed by a worker, deduplicated
// onto a concurrent identical job, or served from the cache —
// Report.Encode output is byte-identical across all three paths.
package simsvc

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Version identifies the simulator for cache addressing: it is folded
// into every cache key, so bump it whenever a change alters simulated
// timing (the committed BENCH_pipeline.json moving is the signal) to
// invalidate stale persisted results.
const Version = "facd/1"

// DefaultMaxInsts is the default dynamic instruction bound, shared with
// experiments.Suite so daemon jobs and in-process experiment runs hit the
// same cache entries.
const DefaultMaxInsts = 2_000_000_000

// JobSpec names one simulation: a workload from the benchmark suite, a
// toolchain ("base" or "fac"), and a machine name resolved by the
// service's resolver (the experiments machine table in cmd/facd).
type JobSpec struct {
	Workload  string `json:"workload"`
	Toolchain string `json:"toolchain"`
	Machine   string `json:"machine"`
	// MaxInsts bounds the dynamic instruction count (0 = service default).
	MaxInsts uint64 `json:"max_insts,omitempty"`
}

func (j JobSpec) String() string {
	return j.Workload + "|" + j.Toolchain + "|" + j.Machine
}

// cacheKeyDoc is the canonical content hashed into a cache key. Every
// input that can change a run's RunRecord is present: the workload's
// source and pinned output, the toolchain, the fully resolved machine
// configuration (not just its name), the instruction bound, and the
// simulator and record-schema versions.
type cacheKeyDoc struct {
	Version   string          `json:"version"`
	Schema    string          `json:"schema"`
	Workload  string          `json:"workload"`
	SourceSHA string          `json:"source_sha256"`
	OutputSHA string          `json:"output_sha256"`
	Toolchain string          `json:"toolchain"`
	Machine   string          `json:"machine"`
	Config    pipeline.Config `json:"config"`
	MaxInsts  uint64          `json:"max_insts"`
}

// CacheKey derives the content-addressed persistent-cache key of one run.
// Identical inputs produce identical keys across processes and restarts;
// any change to the workload source, toolchain, machine configuration,
// instruction bound, or simulator version produces a fresh key.
func CacheKey(w workload.Workload, toolchain, machine string, cfg pipeline.Config, maxInsts uint64) (string, error) {
	shaHex := func(s string) string {
		h := sha256.Sum256([]byte(s))
		return hex.EncodeToString(h[:])
	}
	doc := cacheKeyDoc{
		Version:   Version,
		Schema:    obs.RunRecordSchema,
		Workload:  w.Name,
		SourceSHA: shaHex(w.Source),
		OutputSHA: shaHex(w.Expected),
		Toolchain: toolchain,
		Machine:   machine,
		Config:    cfg,
		MaxInsts:  maxInsts,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("simsvc: cache key: %w", err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// Runner executes jobs: resolve the spec, probe the persistent cache,
// build and simulate on a miss, and store the canonical RunRecord back.
// Identical concurrent jobs are deduplicated: only one simulates, the
// rest share its record.
type Runner struct {
	// Resolve maps a machine name to its simulator configuration; cmd/facd
	// wires experiments.MachineConfig here.
	Resolve func(machine string) (pipeline.Config, error)
	// MaxInsts is the default dynamic-instruction bound for jobs that do
	// not set one (0 = DefaultMaxInsts).
	MaxInsts uint64
	// Cache, when non-nil, persists results across jobs and processes.
	Cache *DiskCache

	flight Flight
	dedup  atomic.Uint64
}

// runOutcome is the flight-shared result of one executed job.
type runOutcome struct {
	rec      obs.RunRecord
	cacheHit bool
}

// Validate checks that a spec names a known workload, toolchain, and
// machine without running anything, so the service can reject a bad
// batch at submission time.
func (r *Runner) Validate(spec JobSpec) error {
	if _, err := workload.ByName(spec.Workload); err != nil {
		return err
	}
	if spec.Toolchain != "base" && spec.Toolchain != "fac" {
		return fmt.Errorf("simsvc: unknown toolchain %q (want base or fac)", spec.Toolchain)
	}
	if r.Resolve == nil {
		return fmt.Errorf("simsvc: runner has no machine resolver")
	}
	if _, err := r.Resolve(spec.Machine); err != nil {
		return err
	}
	return nil
}

// DedupCount reports how many jobs were served by joining an identical
// in-flight job instead of simulating.
func (r *Runner) DedupCount() uint64 { return r.dedup.Load() }

// CacheStats snapshots the persistent cache (ok=false when none is
// attached).
func (r *Runner) CacheStats() (DiskCacheStats, bool) {
	if r.Cache == nil {
		return DiskCacheStats{}, false
	}
	return r.Cache.Stats(), true
}

// Key derives the content-addressed cache key of a spec by resolving it
// the same way Run does. This is the fleet's shard key and the deps
// log's run-node hash: every consumer of "the identity of this run"
// goes through here, so sharding, dedup, caching, and incremental
// rebuilds all agree on what "the same run" means.
func (r *Runner) Key(spec JobSpec) (string, error) {
	w, err := workload.ByName(spec.Workload)
	if err != nil {
		return "", err
	}
	if r.Resolve == nil {
		return "", errors.New("simsvc: runner has no machine resolver")
	}
	cfg, err := r.Resolve(spec.Machine)
	if err != nil {
		return "", err
	}
	maxInsts := spec.MaxInsts
	if maxInsts == 0 {
		maxInsts = r.MaxInsts
	}
	if maxInsts == 0 {
		maxInsts = DefaultMaxInsts
	}
	return CacheKey(w, spec.Toolchain, spec.Machine, cfg, maxInsts)
}

// Warm pre-populates and pins the given specs in the persistent cache:
// each spec is simulated (or served from cache) via the normal Run path,
// then its key is pinned so LRU eviction under later cache pressure can
// never churn out the entries every rerun depends on. It returns how
// many runs were freshly simulated versus already cached.
func (r *Runner) Warm(ctx context.Context, specs []JobSpec) (simulated, hits int, err error) {
	if r.Cache == nil {
		return 0, 0, errors.New("simsvc: warm requires a persistent cache")
	}
	for _, spec := range specs {
		key, err := r.Key(spec)
		if err != nil {
			return simulated, hits, err
		}
		_, hit, err := r.Run(ctx, spec)
		if err != nil {
			return simulated, hits, fmt.Errorf("simsvc: warm %s: %w", spec, err)
		}
		if hit {
			hits++
		} else {
			simulated++
		}
		if err := r.Cache.Pin(key); err != nil {
			return simulated, hits, err
		}
	}
	return simulated, hits, nil
}

// Run executes one job. cacheHit reports that the record came from the
// persistent cache rather than a fresh simulation. ctx cancellation or
// deadline aborts the simulation's cycle loop promptly; the error then
// wraps ctx.Err().
func (r *Runner) Run(ctx context.Context, spec JobSpec) (rec obs.RunRecord, cacheHit bool, err error) {
	w, err := workload.ByName(spec.Workload)
	if err != nil {
		return obs.RunRecord{}, false, err
	}
	var tc workload.Toolchain
	switch spec.Toolchain {
	case "base":
		tc = workload.BaseToolchain()
	case "fac":
		tc = workload.FACToolchain()
	default:
		return obs.RunRecord{}, false, fmt.Errorf("simsvc: unknown toolchain %q (want base or fac)", spec.Toolchain)
	}
	if r.Resolve == nil {
		return obs.RunRecord{}, false, fmt.Errorf("simsvc: runner has no machine resolver")
	}
	cfg, err := r.Resolve(spec.Machine)
	if err != nil {
		return obs.RunRecord{}, false, err
	}
	maxInsts := spec.MaxInsts
	if maxInsts == 0 {
		maxInsts = r.MaxInsts
	}
	if maxInsts == 0 {
		maxInsts = DefaultMaxInsts
	}
	key, err := CacheKey(w, spec.Toolchain, spec.Machine, cfg, maxInsts)
	if err != nil {
		return obs.RunRecord{}, false, err
	}

	v, shared, err := r.flight.Do(key, func() (any, error) {
		if r.Cache != nil {
			if rec, ok := r.Cache.Get(key); ok {
				return runOutcome{rec: rec, cacheHit: true}, nil
			}
		}
		p, err := workload.Build(w, tc)
		if err != nil {
			return nil, err
		}
		res, err := core.RunCtx(ctx, p, cfg, maxInsts, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec, err)
		}
		if res.Output != w.Expected {
			return nil, fmt.Errorf("%s: output %q != expected %q", spec, res.Output, w.Expected)
		}
		rec := res.Stats.Record(w.Name, w.Class.String(), spec.Toolchain, spec.Machine)
		if r.Cache != nil {
			// A failed write only costs future hits; the run itself is good.
			_ = r.Cache.Put(key, rec)
		}
		return runOutcome{rec: rec}, nil
	})
	if shared {
		r.dedup.Add(1)
	}
	if err != nil {
		// A follower can inherit the leader's cancellation even though its
		// own context is fine; label that so callers know a retry would
		// simulate rather than fail again.
		if shared && ctx != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return obs.RunRecord{}, false, fmt.Errorf("simsvc: deduplicated onto a canceled identical job, retry: %w", err)
		}
		return obs.RunRecord{}, false, err
	}
	out := v.(runOutcome)
	return out.rec, out.cacheHit, nil
}
