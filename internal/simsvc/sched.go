package simsvc

import (
	"fmt"
	"sort"
	"sync"
)

// TenantConfig declares one authenticated client of the service: its
// identity, its bearer token, and its share of the machine.
type TenantConfig struct {
	// Name identifies the client in job views, metrics, and access logs.
	Name string
	// Token is the bearer token presented in the Authorization header.
	// Tokens must be unique across clients.
	Token string
	// Weight is the client's relative share of worker time under
	// contention (0 = 1). A weight-2 client is scheduled twice as often
	// as a weight-1 client while both have work queued.
	Weight int
	// MaxQueued caps the client's queued jobs (0 = server default).
	MaxQueued int
	// MaxInFlight caps the client's concurrently running jobs, batch
	// workers and synchronous runs combined (0 = server default).
	MaxInFlight int
}

// tenant is the scheduler-side state of one client. All fields are
// guarded by the Scheduler's (the server's) mutex.
type tenant struct {
	name        string
	token       string
	weight      int
	maxQueued   int
	maxInFlight int

	queue   []*jobEntry
	running int    // batch jobs in Run plus active synchronous runs
	pass    uint64 // stride-scheduling virtual time

	admitted  uint64 // jobs accepted into the queue
	rejected  uint64 // submissions refused (quota, overload, bad input)
	completed uint64 // batch jobs that reached a terminal state
	cacheHits uint64 // completions served from the persistent cache
}

// strideScale is the stride numerator: a tenant's pass advances by
// strideScale/weight per scheduled job, so higher weights advance slower
// and are picked more often.
const strideScale = 1 << 16

// maxWeight bounds configured weights so strides stay meaningful.
const maxWeight = strideScale

func (t *tenant) stride() uint64 { return strideScale / uint64(t.weight) }

// Scheduler replaces the service's former single global FIFO with
// per-tenant queues served in weighted-fair order (stride scheduling):
// among tenants that have queued work and a free in-flight slot, the one
// with the least virtual time runs next, and its virtual time advances
// inversely to its weight. Admission enforces a global queue bound plus
// per-tenant queued caps, so one tenant can neither starve others of
// worker time nor squat the whole queue.
//
// The Scheduler does not lock itself: every method requires the mutex
// passed to newScheduler (the server's own), which also backs the
// condition variable workers block on. Keeping one lock makes job-state
// transitions and queue membership a single atomic story.
type Scheduler struct {
	cond *sync.Cond

	byToken map[string]*tenant
	byName  map[string]*tenant
	order   []*tenant // name-sorted, for deterministic scans and metrics

	totalQueued int
	maxTotal    int
	draining    bool
	vtime       uint64 // pass of the most recently scheduled tenant
}

// newScheduler builds the tenant table. mu is the server mutex guarding
// every scheduler call. Configuration errors (duplicate names or tokens,
// absurd weights) are reported rather than silently normalized.
func newScheduler(mu *sync.Mutex, maxTotal int, clients []TenantConfig, defQueued, defInFlight int) (*Scheduler, error) {
	sc := &Scheduler{
		cond:     sync.NewCond(mu),
		byToken:  make(map[string]*tenant),
		byName:   make(map[string]*tenant),
		maxTotal: maxTotal,
	}
	if err := validateClients(clients); err != nil {
		return nil, err
	}
	for _, c := range clients {
		t := &tenant{
			name:        c.Name,
			token:       c.Token,
			weight:      max(c.Weight, 1),
			maxQueued:   c.MaxQueued,
			maxInFlight: c.MaxInFlight,
		}
		if t.maxQueued <= 0 {
			t.maxQueued = defQueued
		}
		if t.maxInFlight <= 0 {
			t.maxInFlight = defInFlight
		}
		sc.byName[t.name] = t
		sc.byToken[t.token] = t
		sc.order = append(sc.order, t)
	}
	sort.Slice(sc.order, func(i, j int) bool { return sc.order[i].name < sc.order[j].name })
	return sc, nil
}

// quotaError is an admission refusal carrying a Retry-After hint.
type quotaError struct {
	msg   string
	retry int // seconds
}

func (e *quotaError) Error() string { return e.msg }

// admitLocked checks whether tenant t may enqueue n more jobs. It
// reserves nothing; the caller pushes under the same critical section.
//
// Each rejection's Retry-After hint is derived from the queue depth of
// the constraint that rejected: a tenant over its own quota waits for its
// own backlog to drain, not the whole machine's. (It used to be computed
// from the global backlog for both constraints, so a tenant blocked only
// by its own small queue got a wildly pessimistic hint whenever another
// tenant's backlog was deep.)
func (sc *Scheduler) admitLocked(t *tenant, n int, workers int) error {
	if free := t.maxQueued - len(t.queue); n > free {
		return &quotaError{
			msg: fmt.Sprintf("client %q queue quota exceeded (%d queued, %d free, batch of %d)",
				t.name, len(t.queue), free, n),
			retry: retryEstimate(len(t.queue), min(workers, t.maxInFlight)),
		}
	}
	if free := sc.maxTotal - sc.totalQueued; n > free {
		return &quotaError{
			msg: fmt.Sprintf("job queue full (%d queued, %d free, batch of %d)",
				sc.totalQueued, free, n),
			retry: retryEstimate(sc.totalQueued, workers),
		}
	}
	return nil
}

// retryEstimate estimates seconds until queued jobs ahead of the caller
// drain, assuming roughly one job per second per drain slot. queued is
// the rejecting constraint's own backlog; slots is its drain parallelism
// (the worker pool for the global bound, the tenant's usable in-flight
// share for a per-tenant bound).
func retryEstimate(queued, slots int) int {
	if slots <= 0 {
		slots = 1
	}
	return queued/slots + 1
}

// pushLocked appends jobs to t's queue and wakes waiting workers. A
// tenant re-entering the runnable set joins at the current virtual time
// so idle periods bank no credit.
func (sc *Scheduler) pushLocked(t *tenant, jobs []*jobEntry) {
	if len(t.queue) == 0 && t.pass < sc.vtime {
		t.pass = sc.vtime
	}
	t.queue = append(t.queue, jobs...)
	sc.totalQueued += len(jobs)
	t.admitted += uint64(len(jobs))
	sc.cond.Broadcast()
}

// nextLocked blocks until a job is runnable and returns it with its
// tenant's in-flight count already incremented (pair with doneLocked),
// or returns nil when the scheduler is draining and the queues are
// empty. Jobs cancelled while queued are discarded here without
// consuming a scheduling slot.
func (sc *Scheduler) nextLocked() *jobEntry {
	for {
		var best *tenant
		for _, t := range sc.order {
			for len(t.queue) > 0 && t.queue[0].state != StateQueued {
				t.queue[0] = nil
				t.queue = t.queue[1:]
				sc.totalQueued--
			}
			if len(t.queue) == 0 || t.running >= t.maxInFlight {
				continue
			}
			if best == nil || t.pass < best.pass {
				best = t
			}
		}
		if best != nil {
			j := best.queue[0]
			best.queue[0] = nil
			best.queue = best.queue[1:]
			sc.totalQueued--
			best.running++
			if best.pass > sc.vtime {
				sc.vtime = best.pass
			}
			best.pass += best.stride()
			return j
		}
		if sc.draining && sc.totalQueued == 0 {
			return nil
		}
		sc.cond.Wait()
	}
}

// doneLocked releases tenant t's in-flight slot (batch job finished or
// synchronous run returned) and wakes workers that may now be eligible.
func (sc *Scheduler) doneLocked(t *tenant) {
	t.running--
	sc.cond.Broadcast()
}

// acquireSyncLocked claims an in-flight slot for a synchronous run, or
// refuses with a quota error when the tenant is at its cap.
func (sc *Scheduler) acquireSyncLocked(t *tenant) error {
	if t.running >= t.maxInFlight {
		return &quotaError{
			msg:   fmt.Sprintf("client %q at its in-flight cap (%d running)", t.name, t.running),
			retry: 1,
		}
	}
	t.running++
	return nil
}

// purgeLocked drops queued entries that are no longer in StateQueued
// (batch cancellation), freeing their queue slots immediately.
func (sc *Scheduler) purgeLocked() {
	for _, t := range sc.order {
		kept := t.queue[:0]
		for _, j := range t.queue {
			if j.state == StateQueued {
				kept = append(kept, j)
			} else {
				sc.totalQueued--
			}
		}
		for i := len(kept); i < len(t.queue); i++ {
			t.queue[i] = nil
		}
		t.queue = kept
	}
	sc.cond.Broadcast()
}

// drainLocked stops nextLocked from ever blocking again once the queues
// empty; workers already waiting are woken to observe the drain.
func (sc *Scheduler) drainLocked() {
	sc.draining = true
	sc.cond.Broadcast()
}

// validateClients checks a tenant-configuration set for the errors
// newScheduler reports: empty names or tokens, out-of-range weights,
// duplicate names or tokens. Shared by construction and live reload.
func validateClients(clients []TenantConfig) error {
	names := make(map[string]bool, len(clients))
	tokens := make(map[string]bool, len(clients))
	for _, c := range clients {
		if c.Name == "" {
			return fmt.Errorf("simsvc: client with empty name")
		}
		if c.Token == "" {
			return fmt.Errorf("simsvc: client %q has an empty token", c.Name)
		}
		if c.Weight < 0 || c.Weight > maxWeight {
			return fmt.Errorf("simsvc: client %q weight %d out of range [0,%d]", c.Name, c.Weight, maxWeight)
		}
		if names[c.Name] {
			return fmt.Errorf("simsvc: duplicate client name %q", c.Name)
		}
		if tokens[c.Token] {
			return fmt.Errorf("simsvc: duplicate client token (client %q)", c.Name)
		}
		names[c.Name] = true
		tokens[c.Token] = true
	}
	return nil
}

// reloadLocked atomically replaces the tenant table with a new client
// set, without disturbing scheduling state: surviving tenants (matched by
// name) keep their queues, in-flight counts, counters, and fairness pass
// — only their token, weight, and quota caps change — and new tenants
// join at the current virtual time, exactly as a freshly-submitting
// tenant would. Tenants absent from the new set are removed only if they
// are idle; a reload that would orphan a tenant with queued or in-flight
// work is rejected wholesale, leaving the old table in place.
func (sc *Scheduler) reloadLocked(clients []TenantConfig, defQueued, defInFlight int) error {
	if len(clients) == 0 {
		return fmt.Errorf("simsvc: reload with no clients would lock every caller out")
	}
	if err := validateClients(clients); err != nil {
		return err
	}
	keep := make(map[string]bool, len(clients))
	for _, c := range clients {
		keep[c.Name] = true
	}
	for _, t := range sc.order {
		if !keep[t.name] && (len(t.queue) > 0 || t.running > 0) {
			return fmt.Errorf("simsvc: reload would orphan client %q (%d queued, %d in flight)",
				t.name, len(t.queue), t.running)
		}
	}

	byName := make(map[string]*tenant, len(clients))
	byToken := make(map[string]*tenant, len(clients))
	order := make([]*tenant, 0, len(clients))
	for _, c := range clients {
		t, ok := sc.byName[c.Name]
		if !ok {
			t = &tenant{name: c.Name, pass: sc.vtime}
		}
		t.token = c.Token
		t.weight = max(c.Weight, 1)
		t.maxQueued = c.MaxQueued
		t.maxInFlight = c.MaxInFlight
		if t.maxQueued <= 0 {
			t.maxQueued = defQueued
		}
		if t.maxInFlight <= 0 {
			t.maxInFlight = defInFlight
		}
		byName[t.name] = t
		byToken[t.token] = t
		order = append(order, t)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].name < order[j].name })
	sc.byName = byName
	sc.byToken = byToken
	sc.order = order
	// Quota caps may have loosened: wake workers to re-evaluate eligibility.
	sc.cond.Broadcast()
	return nil
}

// tenantViewLocked renders one tenant's metrics snapshot.
func (t *tenant) viewLocked() map[string]any {
	return map[string]any{
		"weight":        t.weight,
		"max_queued":    t.maxQueued,
		"max_in_flight": t.maxInFlight,
		"queued":        len(t.queue),
		"running":       t.running,
		"admitted":      t.admitted,
		"rejected":      t.rejected,
		"completed":     t.completed,
		"cache_hits":    t.cacheHits,
	}
}
