package simsvc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func testKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

func testRec(bench string, cycles uint64) obs.RunRecord {
	return obs.RunRecord{
		Schema:    obs.RunRecordSchema,
		Benchmark: bench,
		Toolchain: "base",
		Machine:   "base32",
		Cycles:    cycles,
		Insts:     cycles / 2,
		IPC:       0.5,
	}
}

// TestDiskCacheRoundtrip: Put then Get returns the identical record,
// and a fresh DiskCache over the same directory still sees it
// (persistence across processes).
func TestDiskCacheRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	want := testRec("queens", 1234)
	if _, ok := c.Get(key); ok {
		t.Fatal("Get on empty cache hit")
	}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Benchmark != want.Benchmark || got.Cycles != want.Cycles {
		t.Fatalf("got %+v, want %+v", got, want)
	}

	c2, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); !ok {
		t.Fatal("reopened cache missed a persisted entry")
	}
	st := c2.Stats()
	if st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 entry 1 hit", st)
	}
}

// TestDiskCacheCorruptEntry: truncated or schema-mismatched entries are
// deleted and reported as misses, so the caller re-simulates and heals
// the cache.
func TestDiskCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if err := c.Put(key, testRec("match", 99)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key+".json")
	if err := os.WriteFile(p, []byte(`{"schema": "fac/run-rec`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not deleted")
	}
	st := c.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}

	// Wrong schema string is corruption too.
	bad := testRec("match", 99)
	bad.Schema = "fac/run-record/v0"
	if err := c.Put(key, bad); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("wrong-schema entry served as a hit")
	}

	// And the cache recovers: a fresh Put works again.
	if err := c.Put(key, testRec("match", 100)); err != nil {
		t.Fatal(err)
	}
	if rec, ok := c.Get(key); !ok || rec.Cycles != 100 {
		t.Fatalf("recovered Get = %+v, %v", rec, ok)
	}
}

// TestDiskCacheLRUEviction: exceeding the size bound evicts the
// least-recently-used entries; a Get refreshes recency.
func TestDiskCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// First, measure one entry's size so the bound holds exactly three.
	probe, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(testKey(0), testRec("a", 1)); err != nil {
		t.Fatal(err)
	}
	st := probe.Stats()
	entrySize := st.Bytes
	if entrySize == 0 {
		t.Fatal("zero entry size")
	}
	os.Remove(filepath.Join(dir, testKey(0)+".json"))

	c, err := OpenDiskCache(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(0), testKey(1), testKey(2)}
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		if err := c.Put(k, testRec("a", uint64(i+1))); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes so LRU order is unambiguous regardless of
		// filesystem timestamp granularity.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, k+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry: a hit must refresh its recency.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("expected hit")
	}
	// A fourth entry overflows the bound; keys[1] is now least recent.
	if err := c.Put(testKey(3), testRec("a", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[1]+".json")); !os.IsNotExist(err) {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []string{keys[0], keys[2], testKey(3)} {
		if _, err := os.Stat(filepath.Join(dir, k+".json")); err != nil {
			t.Fatalf("recently-used entry %s evicted: %v", k[:8], err)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

// TestDiskCachePinnedSurvivesEviction: eviction under pressure never
// removes a pinned entry, however stale — the standard-grid results a
// warmed daemon depends on cannot be churned out by unrelated traffic.
func TestDiskCachePinnedSurvivesEviction(t *testing.T) {
	dir := t.TempDir()
	probe, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(testKey(0), testRec("a", 1)); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.Stats().Bytes
	os.Remove(filepath.Join(dir, testKey(0)+".json"))

	c, err := OpenDiskCache(dir, 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	pinned := testKey(0)
	if err := c.Pin(pinned); err != nil {
		t.Fatal(err)
	}
	if err := c.Pin("../../etc/passwd"); err == nil {
		t.Fatal("hostile pin key accepted")
	}
	// The pinned entry is written first, then made the stalest on disk, so
	// pure LRU would evict it on every overflow below.
	if err := c.Put(pinned, testRec("pinned", 1)); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, pinned+".json"), old, old); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := c.Put(testKey(byte(i)), testRec("churn", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(pinned); !ok {
		t.Fatal("pinned entry evicted under pressure")
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Fatal("no eviction happened; the test exerted no pressure")
	}
	if st := c.Stats(); st.Pinned != 1 {
		t.Fatalf("stats report %d pinned entries, want 1", st.Pinned)
	}

	// Unpin re-exposes the entry to LRU pressure.
	c.Unpin(pinned)
	if err := c.Put(testKey(5), testRec("churn", 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, pinned+".json")); !os.IsNotExist(err) {
		t.Fatal("unpinned stale entry survived eviction")
	}
}

// TestDiskCacheEvictionTiebreak: entries with identical mtimes (coarse
// filesystem timestamp granularity collapses distinct write times) are
// evicted in deterministic path order, not ReadDir directory order.
func TestDiskCacheEvictionTiebreak(t *testing.T) {
	dir := t.TempDir()
	probe, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Put(testKey(0), testRec("a", 1)); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.Stats().Bytes
	os.Remove(filepath.Join(dir, testKey(0)+".json"))

	c, err := OpenDiskCache(dir, 4*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	// Four entries, all with the same mtime. testKey produces repeated
	// 'a'..'f' runs, so lexical order == key-byte order.
	keys := []string{testKey(3), testKey(1), testKey(2), testKey(0)}
	same := time.Now().Add(-time.Hour).Truncate(time.Second)
	for _, k := range keys {
		if err := c.Put(k, testRec("a", 1)); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(dir, k+".json"), same, same); err != nil {
			t.Fatal(err)
		}
	}
	// One more entry overflows the bound by one: with every candidate's
	// mtime equal, exactly the lexically smallest path must be evicted.
	if err := c.Put(testKey(4), testRec("a", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, testKey(0)+".json")); !os.IsNotExist(err) {
		t.Fatal("tiebreak did not evict the lexically smallest same-mtime entry")
	}
	for _, k := range []string{testKey(1), testKey(2), testKey(3), testKey(4)} {
		if _, err := os.Stat(filepath.Join(dir, k+".json")); err != nil {
			t.Fatalf("entry %s... evicted out of tiebreak order: %v", k[:8], err)
		}
	}
}

// TestDiskCacheRejectsHostileKeys: keys that are not plain hex cannot
// escape the cache directory.
func TestDiskCacheRejectsHostileKeys(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "short", "../../../../etc/passwd12345678", strings.Repeat("z", 64), strings.Repeat("A", 64)} {
		if err := c.Put(k, testRec("x", 1)); err == nil {
			t.Fatalf("Put accepted hostile key %q", k)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("Get accepted hostile key %q", k)
		}
	}
}

// TestDiskCacheSweepsTempFiles: leftover temp files from an interrupted
// writer are removed on open.
func TestDiskCacheSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "tmp-12345")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskCache(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived open")
	}
}
