package simsvc

import "sync"

// Flight deduplicates concurrent function calls by key: the first caller
// for a key (the leader) runs fn; callers that arrive while the leader is
// in flight block and share its result instead of repeating the work. It
// is a minimal in-process singleflight for the two places the repository
// was doing duplicate work — identical jobs racing in the service's
// worker pool, and experiment workers racing on the same program build or
// timing run in experiments.Suite.
//
// Keys are forgotten as soon as the leader finishes, so Flight is purely
// a concurrency deduplicator — memoization stays the caller's job (and a
// failed leader does not poison later attempts).
type Flight struct {
	mu sync.Mutex
	m  map[string]*flightCall

	// testHookFollower, when set, runs after a caller has been committed
	// as a follower but before it blocks on the leader. Tests use it to
	// sequence leader/follower interleavings deterministically.
	testHookFollower func(key string)
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do runs fn under key, returning its result. shared is true when this
// caller joined an in-flight leader instead of running fn itself. A
// follower observes the leader's result even if its own circumstances
// (e.g. its context) differ; callers that need per-caller cancellation
// of shared work should check their own context after Do returns.
func (f *Flight) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[string]*flightCall)
	}
	if c, ok := f.m[key]; ok {
		hook := f.testHookFollower
		f.mu.Unlock()
		if hook != nil {
			hook(key)
		}
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	// Forget the key and release followers even if fn panics, so a
	// panicking leader cannot strand waiters.
	defer func() {
		f.mu.Lock()
		delete(f.m, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}
