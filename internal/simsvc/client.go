package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Client is the HTTP client half of the service's transport: it speaks
// the facd API (docs/SERVICE.md) so other processes — the fleet
// coordinator's dispatcher, cmd/experiments -remote, cmd/facload, tests —
// can submit work without re-implementing the wire format. A Client is
// safe for concurrent use.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Token, when non-empty, is presented as a bearer token on every
	// request (required when the daemon was started with -clients).
	Token string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	// Synchronous runs can take minutes, so any custom client's Timeout
	// must accommodate the longest expected simulation; per-call bounds
	// belong in the request context instead.
	HTTPClient *http.Client
}

// RetryError is a 429 refusal carrying the server's Retry-After hint.
type RetryError struct {
	After time.Duration
	Msg   string
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("simsvc: over quota (retry after %v): %s", e.After, e.Msg)
}

// StatusError is a non-2xx response that is not a quota refusal.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("simsvc: server status %d: %s", e.Status, e.Msg)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one JSON request. A nil body sends no payload; out, when
// non-nil, receives the decoded 2xx response body. Error responses are
// mapped to RetryError (429) or StatusError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("simsvc: encode request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var payload struct {
			Error string `json:"error"`
		}
		msg := ""
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&payload); err == nil {
			msg = payload.Error
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			after := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
			return &RetryError{After: after, Msg: msg}
		}
		return &StatusError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// RunSync runs one spec synchronously (POST /v1/run), returning the
// canonical RunRecord and whether the daemon served it from its
// persistent cache. Cancelling ctx tears down the connection, which
// cancels the simulation on the daemon.
func (c *Client) RunSync(ctx context.Context, spec JobSpec) (obs.RunRecord, bool, error) {
	var resp struct {
		CacheHit bool          `json:"cache_hit"`
		Record   obs.RunRecord `json:"record"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/run", spec, &resp); err != nil {
		return obs.RunRecord{}, false, err
	}
	if resp.Record.Schema != obs.RunRecordSchema {
		return obs.RunRecord{}, false, fmt.Errorf("simsvc: daemon returned record schema %q (want %q)",
			resp.Record.Schema, obs.RunRecordSchema)
	}
	return resp.Record, resp.CacheHit, nil
}

// Submit posts a batch (POST /v1/batches) and returns the batch id and
// per-job ids.
func (c *Client) Submit(ctx context.Context, jobs []JobSpec) (batch string, jobIDs []string, err error) {
	var resp struct {
		Batch string   `json:"batch"`
		Jobs  []string `json:"jobs"`
	}
	req := struct {
		Jobs []JobSpec `json:"jobs"`
	}{jobs}
	if err := c.do(ctx, http.MethodPost, "/v1/batches", req, &resp); err != nil {
		return "", nil, err
	}
	return resp.Batch, resp.Jobs, nil
}

// BatchStatus is the poll view of one batch (GET /v1/batches/{id}).
type BatchStatus struct {
	Batch     string `json:"batch"`
	Total     int    `json:"total"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	Terminal  bool   `json:"terminal"`
}

// Batch polls one batch's status.
func (c *Client) Batch(ctx context.Context, id string) (BatchStatus, error) {
	var st BatchStatus
	err := c.do(ctx, http.MethodGet, "/v1/batches/"+id, nil, &st)
	return st, err
}

// WaitBatch polls until the batch is terminal (or ctx ends).
func (c *Client) WaitBatch(ctx context.Context, id string, poll time.Duration) (BatchStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Batch(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Report fetches a finished batch's canonical report bytes
// (GET /v1/batches/{id}/report) — the byte-identity surface of the
// determinism contract, so it is returned raw rather than decoded.
func (c *Client) Report(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/batches/"+id+"/report", nil)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Status: resp.StatusCode, Msg: string(data)}
	}
	return data, nil
}

// Healthz probes the daemon's health endpoint (no authentication).
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Status: resp.StatusCode, Msg: "unhealthy"}
	}
	return nil
}

// WorkerNote is an out-parameter a dispatching JobRunner (the fleet
// coordinator) fills with the identity of the worker that served a job,
// so the service can attribute the run in job views and progress events.
// The server plants one in the job context before calling Run; runners
// that execute locally simply never touch it.
type WorkerNote struct {
	mu     sync.Mutex
	worker string
}

// Set records the serving worker (last writer wins, matching the
// at-most-once completion of hedged dispatches: the winner writes last
// on the success path).
func (n *WorkerNote) Set(worker string) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.worker = worker
	n.mu.Unlock()
}

// Get returns the recorded worker ("" when none).
func (n *WorkerNote) Get() string {
	if n == nil {
		return ""
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.worker
}

type workerNoteKey struct{}

// WithWorkerNote returns a context carrying a fresh WorkerNote.
func WithWorkerNote(ctx context.Context) (context.Context, *WorkerNote) {
	n := &WorkerNote{}
	return context.WithValue(ctx, workerNoteKey{}, n), n
}

// NoteWorker records the serving worker on the context's WorkerNote, if
// one is present (no-op otherwise).
func NoteWorker(ctx context.Context, worker string) {
	if n, _ := ctx.Value(workerNoteKey{}).(*WorkerNote); n != nil {
		n.Set(worker)
	}
}
