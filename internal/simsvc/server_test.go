package simsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// stubRunner is a controllable JobRunner: jobs block until released (or
// until their context is done), so queue and drain states are reachable
// deterministically.
type stubRunner struct {
	block   chan struct{} // non-nil: Run waits for close(block) or ctx
	started chan string   // non-nil: receives each spec's workload as it starts
	runs    atomic.Int64
	sawCtx  atomic.Bool // a Run returned because its ctx ended
}

func (r *stubRunner) Validate(spec JobSpec) error {
	if spec.Workload == "" {
		return fmt.Errorf("empty workload")
	}
	if strings.HasPrefix(spec.Workload, "invalid") {
		return fmt.Errorf("unknown workload %q", spec.Workload)
	}
	return nil
}

func (r *stubRunner) Run(ctx context.Context, spec JobSpec) (obs.RunRecord, bool, error) {
	r.runs.Add(1)
	if r.started != nil {
		r.started <- spec.Workload
	}
	if strings.HasPrefix(spec.Workload, "fail") {
		return obs.RunRecord{}, false, fmt.Errorf("simulated failure for %s", spec.Workload)
	}
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			r.sawCtx.Store(true)
			return obs.RunRecord{}, false, fmt.Errorf("stub: %w", ctx.Err())
		}
	}
	return testRec(spec.Workload, 100), false, nil
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

type submitResponse struct {
	Batch string   `json:"batch"`
	Jobs  []string `json:"jobs"`
}

func getBatch(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/batches/" + id)
	if err != nil {
		t.Fatal(err)
	}
	return decode[map[string]any](t, resp)
}

func waitTerminal(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		b := getBatch(t, base, id)
		if b["terminal"] == true {
			return b
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("batch %s did not reach a terminal state", id)
	return nil
}

// newTestServer builds a started server + httptest frontend.
func newTestServer(t *testing.T, cfg ServerConfig, runner JobRunner) (*Server, string) {
	t.Helper()
	s, err := NewServer(cfg, runner)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs.URL
}

// TestServerBatchLifecycle: submit, poll to terminal, fetch per-job
// results and the batch report; failed jobs are reported as failed
// without sinking the batch.
func TestServerBatchLifecycle(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 2}, &stubRunner{})
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "alpha", Toolchain: "base", Machine: "base32"},
		{Workload: "fail-beta", Toolchain: "base", Machine: "base32"},
	}}))
	if sub.Batch == "" || len(sub.Jobs) != 2 {
		t.Fatalf("submit response %+v", sub)
	}
	b := waitTerminal(t, base, sub.Batch)
	if b["done"].(float64) != 1 || b["failed"].(float64) != 1 {
		t.Fatalf("batch counts %+v", b)
	}

	resp, err := http.Get(base + "/v1/jobs/" + sub.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	jv := decode[jobView](t, resp)
	if jv.State != StateDone || jv.Record == nil || jv.Record.Benchmark != "alpha" {
		t.Fatalf("job view %+v", jv)
	}

	// The report includes only successful records.
	rresp, err := http.Get(base + "/v1/batches/" + sub.Batch + "/report")
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	data.ReadFrom(rresp.Body)
	rresp.Body.Close()
	rep, err := obs.DecodeReport(data.Bytes())
	if err != nil {
		t.Fatalf("report: %v\n%s", err, data.Bytes())
	}
	if len(rep.Records) != 1 || rep.Records[0].Benchmark != "alpha" {
		t.Fatalf("report records %+v", rep.Records)
	}
}

// TestServerValidationRejects: a batch naming an unknown workload is
// rejected whole with 400 before anything is enqueued.
func TestServerValidationRejects(t *testing.T) {
	s, base := newTestServer(t, ServerConfig{Workers: 1}, &stubRunner{})
	resp := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "alpha", Toolchain: "base", Machine: "base32"},
		{Workload: "invalid-x", Toolchain: "base", Machine: "base32"},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d jobs enqueued from a rejected batch", n)
	}
}

// TestServerBackpressure: when the queue cannot take a batch, the server
// answers 429 with a Retry-After hint and enqueues nothing.
func TestServerBackpressure(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 16)}
	defer close(r.block)
	_, base := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 2}, r)

	// One job occupies the single worker; two more fill the queue.
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "w1", Toolchain: "base", Machine: "base32"},
	}}))
	<-r.started // the worker has dequeued w1 and is blocked inside Run
	resp := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "w2", Toolchain: "base", Machine: "base32"},
		{Workload: "w3", Toolchain: "base", Machine: "base32"},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fill status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	over := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "w4", Toolchain: "base", Machine: "base32"},
	}})
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	over.Body.Close()
	_ = sub
}

// TestServerCancelBatch: cancelling a batch stops queued jobs before
// they run and aborts the running one via its context.
func TestServerCancelBatch(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 16)}
	_, base := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 8}, r)

	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "run1", Toolchain: "base", Machine: "base32"},
		{Workload: "queued2", Toolchain: "base", Machine: "base32"},
		{Workload: "queued3", Toolchain: "base", Machine: "base32"},
	}}))
	<-r.started // run1 is inside Run, blocked; the rest are queued

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/batches/"+sub.Batch, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	b := waitTerminal(t, base, sub.Batch)
	if b["cancelled"].(float64) != 3 {
		t.Fatalf("batch after cancel: %+v", b)
	}
	if !r.sawCtx.Load() {
		t.Fatal("running job never observed its context cancellation")
	}
	if got := r.runs.Load(); got != 1 {
		t.Fatalf("%d jobs entered Run, want only the pre-cancel one", got)
	}
	close(r.block)
}

// TestServerJobTimeout: the per-job deadline cancels a stuck job and the
// job reports failed (deadline exceeded), promptly.
func TestServerJobTimeout(t *testing.T) {
	r := &stubRunner{block: make(chan struct{})}
	defer close(r.block)
	_, base := newTestServer(t, ServerConfig{Workers: 1, JobTimeout: 50 * time.Millisecond}, r)

	start := time.Now()
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "stuck", Toolchain: "base", Machine: "base32"},
	}}))
	b := waitTerminal(t, base, sub.Batch)
	if b["failed"].(float64) != 1 {
		t.Fatalf("batch %+v, want 1 failed", b)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline enforcement took %v", d)
	}
	resp, err := http.Get(base + "/v1/jobs/" + sub.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	jv := decode[jobView](t, resp)
	if !strings.Contains(jv.Error, "deadline") {
		t.Fatalf("job error %q does not mention the deadline", jv.Error)
	}
}

// TestServerDrain: Drain finishes queued work, flips healthz to 503,
// rejects new submissions with 503, and returns once idle.
func TestServerDrain(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 16)}
	s, base := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 8}, r)

	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "d1", Toolchain: "base", Machine: "base32"},
		{Workload: "d2", Toolchain: "base", Machine: "base32"},
	}}))
	<-r.started // d1 running, d2 queued

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Draining state must be visible before the pool empties.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rej := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "late", Toolchain: "base", Machine: "base32"},
	}})
	if rej.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", rej.StatusCode)
	}
	rej.Body.Close()

	close(r.block) // let d1 (and then the queued d2) finish
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	b := getBatch(t, base, sub.Batch)
	if b["done"].(float64) != 2 {
		t.Fatalf("after drain: %+v, want both jobs done", b)
	}
}

// TestServerSyncRunClientDisconnect: an aborted /v1/run request cancels
// the in-flight simulation through the request context.
func TestServerSyncRunClientDisconnect(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	defer close(r.block)
	_, base := newTestServer(t, ServerConfig{Workers: 1}, r)

	body, _ := json.Marshal(JobSpec{Workload: "sync", Toolchain: "base", Machine: "base32"})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", bytes.NewReader(body))
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	<-r.started // handler is inside Run
	cancel()    // client disconnects
	if err := <-errCh; err == nil {
		t.Fatal("cancelled request returned no error to the client")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !r.sawCtx.Load() {
		if time.Now().After(deadline) {
			t.Fatal("runner never observed the client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerMetrics: /metrics surfaces queue/worker state, job counters,
// and per-job stall/latency summaries.
func TestServerMetrics(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 2}, &stubRunner{})
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "m1", Toolchain: "base", Machine: "base32"},
		{Workload: "m2", Toolchain: "base", Machine: "base32"},
	}}))
	waitTerminal(t, base, sub.Batch)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[map[string]any](t, resp)
	jobs := m["jobs"].(map[string]any)
	if jobs["submitted"].(float64) != 2 || jobs["completed"].(float64) != 2 {
		t.Fatalf("metrics jobs %+v", jobs)
	}
	runs := m["runs"].([]any)
	if len(runs) != 2 {
		t.Fatalf("metrics runs %+v", runs)
	}
	first := runs[0].(map[string]any)
	for _, field := range []string{"job", "key", "cycles", "ipc", "stall_cycles", "load_latency_mean"} {
		if _, ok := first[field]; !ok {
			t.Fatalf("run summary missing %q: %+v", field, first)
		}
	}
	if m["workers"].(float64) != 2 {
		t.Fatalf("metrics workers %+v", m["workers"])
	}
}

// --- multi-tenant hardening tests (auth, quotas, robustness, access log) ---

// doReq issues a request with an optional bearer token.
func doReq(t *testing.T, method, url, token string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func oneJob(w string) submitRequest {
	return submitRequest{Jobs: []JobSpec{{Workload: w, Toolchain: "base", Machine: "base32"}}}
}

// TestServerAuth: with clients configured, requests without a valid
// bearer token get 401; /healthz and /metrics stay open.
func TestServerAuth(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{
		Workers: 1,
		Clients: []TenantConfig{{Name: "alice", Token: "tok-a"}},
	}, &stubRunner{})

	body := mustJSON(t, oneJob("w"))
	for name, resp := range map[string]*http.Response{
		"no token":      doReq(t, "POST", base+"/v1/batches", "", body),
		"unknown token": doReq(t, "POST", base+"/v1/batches", "nope", body),
		"GET no token":  doReq(t, "GET", base+"/v1/jobs/j1", "", nil),
	} {
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s: status %d, want 401", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// A malformed scheme is 401 too.
	req, _ := http.NewRequest("POST", base+"/v1/batches", bytes.NewReader(body))
	req.Header.Set("Authorization", "Basic dXNlcjpwYXNz")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("malformed scheme: status %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	ok := doReq(t, "POST", base+"/v1/batches", "tok-a", body)
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("valid token: status %d, want 202", ok.StatusCode)
	}
	ok.Body.Close()

	for _, path := range []string{"/healthz", "/metrics"} {
		resp := doReq(t, "GET", base+path, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s without token: status %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServerTenantQuota: one tenant exhausting its queued quota gets 429
// with Retry-After while another tenant still submits freely — per-client
// backpressure, not global.
func TestServerTenantQuota(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 16)}
	defer close(r.block)
	_, base := newTestServer(t, ServerConfig{
		Workers: 1, QueueDepth: 32,
		Clients: []TenantConfig{
			{Name: "greedy", Token: "tok-g", MaxQueued: 2, MaxInFlight: 1},
			{Name: "modest", Token: "tok-m", MaxQueued: 4},
		},
	}, r)

	// Occupy the single worker with greedy's first job, then fill greedy's
	// queue quota exactly.
	resp := doReq(t, "POST", base+"/v1/batches", "tok-g", mustJSON(t, oneJob("g-run")))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-r.started
	resp = doReq(t, "POST", base+"/v1/batches", "tok-g", mustJSON(t, submitRequest{Jobs: []JobSpec{
		{Workload: "g1", Toolchain: "base", Machine: "base32"},
		{Workload: "g2", Toolchain: "base", Machine: "base32"},
	}}))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quota-filling submit: %d", resp.StatusCode)
	}
	resp.Body.Close()

	over := doReq(t, "POST", base+"/v1/batches", "tok-g", mustJSON(t, oneJob("g3")))
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("tenant 429 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(over.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	over.Body.Close()
	if !strings.Contains(e.Error, `client "greedy"`) {
		t.Fatalf("429 body %q does not name the tenant", e.Error)
	}

	// The other tenant is unaffected by greedy's backpressure.
	ok := doReq(t, "POST", base+"/v1/batches", "tok-m", mustJSON(t, oneJob("m1")))
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("modest tenant blocked by greedy's quota: %d", ok.StatusCode)
	}
	ok.Body.Close()
}

// TestServerStrictJSON: submissions with unknown fields, trailing
// garbage, or malformed bodies fail loudly with 400 and a useful
// message, on both the batch and sync endpoints.
func TestServerStrictJSON(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 1}, &stubRunner{})
	cases := []struct {
		name    string
		body    string
		wantMsg string
	}{
		{"unknown top-level field", `{"jobz": []}`, "unknown field"},
		{"typoed job field", `{"jobs": [{"workload": "w", "tool_chain": "base", "machine": "base32"}]}`, "unknown field"},
		{"trailing garbage", `{"jobs": [{"workload": "w", "toolchain": "base", "machine": "base32"}]} {"x":1}`, "trailing data"},
		{"two values", `{"jobs": [{"workload": "w", "toolchain": "base", "machine": "base32"}]}[]`, "trailing data"},
		{"not json", `hello`, "bad request body"},
		{"empty body", ``, "bad request body"},
		{"wrong type", `{"jobs": "w"}`, "bad request body"},
	}
	for _, tc := range cases {
		resp := doReq(t, "POST", base+"/v1/batches", "", []byte(tc.body))
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, e.Error)
		}
		if !strings.Contains(e.Error, tc.wantMsg) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantMsg)
		}
	}
	// Sync endpoint: same strictness.
	for _, body := range []string{
		`{"workload": "w", "toolchain": "base", "machine": "base32", "max_inst": 5}`,
		`{"workload": "w", "toolchain": "base", "machine": "base32"} extra`,
	} {
		resp := doReq(t, "POST", base+"/v1/run", "", []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("sync body %q: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Nothing was admitted by any of the rejects.
	m := decode[map[string]any](t, func() *http.Response {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}())
	if n := m["jobs"].(map[string]any)["submitted"].(float64); n != 0 {
		t.Fatalf("%v jobs admitted from rejected bodies", n)
	}
}

// TestServerBodyLimit: a request body over MaxBodyBytes is refused with
// 413 before it can exhaust memory.
func TestServerBodyLimit(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 1, MaxBodyBytes: 1024}, &stubRunner{})
	huge := []byte(`{"jobs": [` + strings.Repeat(`{"workload": "w", "toolchain": "base", "machine": "base32"},`, 100))
	huge = append(huge[:len(huge)-1], []byte(`]}`)...)
	if len(huge) <= 1024 {
		t.Fatalf("test body too small (%d bytes)", len(huge))
	}
	resp := doReq(t, "POST", base+"/v1/batches", "", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(e.Error, "1024") {
		t.Fatalf("413 body %q does not state the limit", e.Error)
	}
	// A normal-sized submission still works.
	ok := doReq(t, "POST", base+"/v1/batches", "", mustJSON(t, oneJob("small")))
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("small body after big one: %d", ok.StatusCode)
	}
	ok.Body.Close()
}

// TestServerMalformedIDs: ids strconv would partially parse ("jxyz",
// "j007", "j-1", "") answer 404 instead of aliasing job j0, on every
// job/batch endpoint.
func TestServerMalformedIDs(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 1}, &stubRunner{})
	// A real job to prove malformed ids do not alias it.
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", oneJob("real")))
	waitTerminal(t, base, sub.Batch)

	bad := []string{"jxyz", "j", "j0", "j007", "j-1", "j+1", "j1x", "x1", "1"}
	for _, id := range bad {
		resp := doReq(t, "GET", base+"/v1/jobs/"+id, "", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("job id %q: status %d, want 404", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	for _, id := range []string{"bxyz", "b0", "b007", "j1"} {
		for _, probe := range []struct{ method, path string }{
			{"GET", "/v1/batches/" + id},
			{"GET", "/v1/batches/" + id + "/report"},
			{"DELETE", "/v1/batches/" + id},
		} {
			resp := doReq(t, probe.method, base+probe.path, "", nil)
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	// The well-formed ids still resolve.
	resp := doReq(t, "GET", base+"/v1/jobs/"+sub.Jobs[0], "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid job id: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerCancelTerminalBatch: cancelling a batch whose jobs already
// finished is a no-op — states stay terminal, nothing is re-cancelled.
func TestServerCancelTerminalBatch(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 1}, &stubRunner{})
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "done1", Toolchain: "base", Machine: "base32"},
		{Workload: "fail-x", Toolchain: "base", Machine: "base32"},
	}}))
	waitTerminal(t, base, sub.Batch)

	resp := doReq(t, "DELETE", base+"/v1/batches/"+sub.Batch, "", nil)
	st := decode[map[string]any](t, resp)
	if st["cancelling"].(float64) != 0 {
		t.Fatalf("terminal batch cancel reported %v in-progress cancellations", st["cancelling"])
	}
	b := getBatch(t, base, sub.Batch)
	if b["done"].(float64) != 1 || b["failed"].(float64) != 1 || b["cancelled"].(float64) != 0 {
		t.Fatalf("terminal states disturbed by cancel: %+v", b)
	}
	// And cancelling twice more stays harmless.
	for i := 0; i < 2; i++ {
		resp := doReq(t, "DELETE", base+"/v1/batches/"+sub.Batch, "", nil)
		resp.Body.Close()
	}
}

// TestServerDrainRacingSubmits: submissions racing a drain are either
// fully admitted (and then run to completion) or rejected with 503 —
// never half-admitted, never dropped. The accounting identity
// submitted == completed+failed+cancelled holds after the drain.
func TestServerDrainRacingSubmits(t *testing.T) {
	r := &stubRunner{}
	s, base := newTestServer(t, ServerConfig{Workers: 2, QueueDepth: 256}, r)

	const submitters = 4
	var accepted atomic.Int64
	var rejected atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				resp := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
					{Workload: fmt.Sprintf("w%d-%d", n, k), Toolchain: "base", Machine: "base32"},
					{Workload: fmt.Sprintf("x%d-%d", n, k), Toolchain: "base", Machine: "base32"},
				}})
				switch resp.StatusCode {
				case http.StatusAccepted:
					accepted.Add(2)
				case http.StatusServiceUnavailable:
					rejected.Add(2)
					resp.Body.Close()
					return // draining: stay stopped
				case http.StatusTooManyRequests:
					// backpressure; retry
				default:
					t.Errorf("submit status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the submitters build load
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Submitted != uint64(accepted.Load()) {
		t.Fatalf("server admitted %d jobs, clients saw %d accepted", st.Submitted, accepted.Load())
	}
	if got := st.Completed + st.Failed + st.Cancelled; got != st.Submitted {
		t.Fatalf("drain dropped jobs: submitted=%d terminal=%d (%+v)", st.Submitted, got, st)
	}
	if st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("graceful drain cancelled or failed jobs: %+v", st)
	}
	if accepted.Load() == 0 {
		t.Fatal("race window admitted nothing; test proved nothing")
	}
}

// TestServerWeightedFairnessUnderContention: two backlogged tenants on
// one worker are served interleaved according to their weights; neither
// starves.
func TestServerWeightedFairnessUnderContention(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 64)}
	_, base := newTestServer(t, ServerConfig{
		Workers: 1, QueueDepth: 64,
		Clients: []TenantConfig{
			{Name: "a", Token: "tok-a", MaxInFlight: 1},
			{Name: "b", Token: "tok-b", MaxInFlight: 1},
		},
	}, r)

	// First job occupies the worker so both backlogs build while blocked.
	resp := doReq(t, "POST", base+"/v1/batches", "tok-a", mustJSON(t, oneJob("a-0")))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-r.started
	var specs []JobSpec
	for i := 1; i <= 8; i++ {
		specs = append(specs, JobSpec{Workload: fmt.Sprintf("a-%d", i), Toolchain: "base", Machine: "base32"})
	}
	resp = doReq(t, "POST", base+"/v1/batches", "tok-a", mustJSON(t, submitRequest{Jobs: specs}))
	resp.Body.Close()
	specs = nil
	for i := 1; i <= 8; i++ {
		specs = append(specs, JobSpec{Workload: fmt.Sprintf("b-%d", i), Toolchain: "base", Machine: "base32"})
	}
	resp = doReq(t, "POST", base+"/v1/batches", "tok-b", mustJSON(t, submitRequest{Jobs: specs}))
	resp.Body.Close()

	close(r.block) // release the floodgates
	var order []string
	for i := 0; i < 16; i++ {
		select {
		case w := <-r.started:
			if w != "a-0" {
				order = append(order, w[:1])
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d jobs started", len(order))
		}
	}
	counts := map[string]int{}
	firstHalf := map[string]int{}
	for i, p := range order {
		counts[p]++
		if i < 8 {
			firstHalf[p]++
		}
	}
	// Equal weights: both tenants get service early, not a-then-b.
	if firstHalf["a"] < 3 || firstHalf["b"] < 3 {
		t.Fatalf("first 8 slots split %v; a tenant was starved (order %v)", firstHalf, order)
	}
}

// TestServerAccessEvents: the access log sees the full lifecycle —
// request, admit, complete with latencies — plus rejects for auth and
// quota refusals.
func TestServerAccessEvents(t *testing.T) {
	col := &obs.AccessCollector{}
	r := &stubRunner{}
	_, base := newTestServer(t, ServerConfig{
		Workers: 1, AccessLog: col,
		Clients: []TenantConfig{{Name: "alice", Token: "tok-a", MaxQueued: 4}},
	}, r)

	// 401 reject.
	resp := doReq(t, "POST", base+"/v1/batches", "", mustJSON(t, oneJob("w")))
	resp.Body.Close()
	// Admitted batch.
	resp = doReq(t, "POST", base+"/v1/batches", "tok-a", mustJSON(t, submitRequest{Jobs: []JobSpec{
		{Workload: "ok", Toolchain: "base", Machine: "base32"},
		{Workload: "fail-z", Toolchain: "base", Machine: "base32"},
	}}))
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Poll with the token.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp := doReq(t, "GET", base+"/v1/batches/"+sub.Batch, "tok-a", nil)
		b := decode[map[string]any](t, resp)
		if b["terminal"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Over-quota reject.
	resp = doReq(t, "POST", base+"/v1/batches", "tok-a", mustJSON(t, submitRequest{Jobs: []JobSpec{
		{Workload: "q1", Toolchain: "base", Machine: "base32"},
		{Workload: "q2", Toolchain: "base", Machine: "base32"},
		{Workload: "q3", Toolchain: "base", Machine: "base32"},
		{Workload: "q4", Toolchain: "base", Machine: "base32"},
		{Workload: "q5", Toolchain: "base", Machine: "base32"},
	}}))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota probe: %d", resp.StatusCode)
	}
	resp.Body.Close()

	events := col.Events()
	var rejects, admits, completes, requests int
	for _, e := range events {
		switch e.Event {
		case obs.AccessReject:
			rejects++
			if e.Status == http.StatusUnauthorized && e.Client != "" {
				t.Fatalf("auth reject attributed to a client: %+v", e)
			}
			if e.Status == http.StatusTooManyRequests && e.Client != "alice" {
				t.Fatalf("quota reject not attributed: %+v", e)
			}
			if e.Reason == "" {
				t.Fatalf("reject without reason: %+v", e)
			}
		case obs.AccessAdmit:
			admits++
			if e.Client != "alice" || e.Batch != sub.Batch || e.Jobs != 2 {
				t.Fatalf("admit event %+v", e)
			}
		case obs.AccessComplete:
			completes++
			if e.Client != "alice" || e.Job == "" || !terminal(e.State) {
				t.Fatalf("complete event %+v", e)
			}
			if e.State == StateDone && e.RunMS < 0 {
				t.Fatalf("negative run latency: %+v", e)
			}
		case obs.AccessRequest:
			requests++
			if e.Method == "" || e.Path == "" || e.Status == 0 {
				t.Fatalf("request event %+v", e)
			}
		}
	}
	if rejects != 2 || admits != 1 || completes != 2 {
		t.Fatalf("event counts rejects=%d admits=%d completes=%d (want 2/1/2): %+v", rejects, admits, completes, events)
	}
	if requests < 3 {
		t.Fatalf("only %d request events", requests)
	}
}

// TestServerPerClientMetrics: /metrics exposes per-tenant scheduling and
// quota state.
func TestServerPerClientMetrics(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{
		Workers: 1,
		Clients: []TenantConfig{
			{Name: "alice", Token: "tok-a", Weight: 2},
			{Name: "bob", Token: "tok-b"},
		},
	}, &stubRunner{})
	resp := doReq(t, "POST", base+"/v1/batches", "tok-a", mustJSON(t, oneJob("w1")))
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r2 := doReq(t, "GET", base+"/v1/batches/"+sub.Batch, "tok-a", nil)
		b := decode[map[string]any](t, r2)
		if b["terminal"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[map[string]any](t, mresp)
	clients, ok := m["clients"].(map[string]any)
	if !ok {
		t.Fatalf("metrics has no clients block: %+v", m)
	}
	alice := clients["alice"].(map[string]any)
	if alice["weight"].(float64) != 2 || alice["admitted"].(float64) != 1 || alice["completed"].(float64) != 1 {
		t.Fatalf("alice metrics %+v", alice)
	}
	bob := clients["bob"].(map[string]any)
	if bob["admitted"].(float64) != 0 {
		t.Fatalf("bob metrics %+v", bob)
	}
	if m["auth_required"] != true {
		t.Fatalf("auth_required %v", m["auth_required"])
	}
	// Job views carry the client and latency fields.
	jresp := doReq(t, "GET", base+"/v1/jobs/"+sub.Jobs[0], "tok-b", nil)
	jv := decode[jobView](t, jresp)
	if jv.Client != "alice" || jv.State != StateDone {
		t.Fatalf("job view %+v", jv)
	}
}

// sseEvent is one parsed server-sent event (name + data line).
type sseEvent struct {
	name string
	data string
}

// readSSE subscribes to a batch's progress stream and reads events until
// the server ends the stream (after the terminal batch event).
func readSSE(t *testing.T, base, batch string) []sseEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/batches/" + batch + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestServerProgressStream: the SSE endpoint announces the schema in a
// hello event, streams every per-job transition live with densely
// numbered Seq and coherent counts, and terminates the stream with the
// batch summary exactly when the last job lands.
func TestServerProgressStream(t *testing.T) {
	runner := &stubRunner{block: make(chan struct{})}
	_, base := newTestServer(t, ServerConfig{Workers: 1}, runner)
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "alpha", Toolchain: "base", Machine: "base32"},
		{Workload: "fail-beta", Toolchain: "base", Machine: "base32"},
	}}))

	// Subscribe while the first job is still blocked, then release both:
	// the subscriber sees queued history replayed and the rest live.
	done := make(chan []sseEvent)
	go func() { done <- readSSE(t, base, sub.Batch) }()
	time.Sleep(50 * time.Millisecond)
	close(runner.block)
	var events []sseEvent
	select {
	case events = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("progress stream did not terminate after the batch finished")
	}

	if len(events) == 0 || events[0].name != "hello" {
		t.Fatalf("stream did not open with hello: %+v", events)
	}
	if !strings.Contains(events[0].data, obs.ProgressEventSchema) {
		t.Fatalf("hello does not announce the schema: %s", events[0].data)
	}
	var progress []obs.ProgressEvent
	for _, e := range events[1:] {
		if e.name != "progress" {
			t.Fatalf("unexpected event %q", e.name)
		}
		var pe obs.ProgressEvent
		if err := json.Unmarshal([]byte(e.data), &pe); err != nil {
			t.Fatalf("bad progress payload %s: %v", e.data, err)
		}
		progress = append(progress, pe)
	}
	kinds := make(map[string]int)
	for i, pe := range progress {
		if pe.Seq != i {
			t.Fatalf("event %d has seq %d (want dense numbering)", i, pe.Seq)
		}
		if pe.Batch != sub.Batch {
			t.Fatalf("event %d batch %q", i, pe.Batch)
		}
		if got := pe.Counts.Queued + pe.Counts.Running + pe.Counts.Done + pe.Counts.Failed + pe.Counts.Cancelled; got != pe.Counts.Total {
			t.Fatalf("event %d counts do not sum to total: %+v", i, pe.Counts)
		}
		kinds[pe.Event]++
	}
	want := map[string]int{
		obs.ProgressQueued:  2,
		obs.ProgressRunning: 2,
		obs.ProgressDone:    1,
		obs.ProgressFailed:  1,
		obs.ProgressBatch:   1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Fatalf("saw %d %q events, want %d (all: %v)", kinds[k], k, n, kinds)
		}
	}
	last := progress[len(progress)-1]
	if last.Event != obs.ProgressBatch || !last.Counts.Terminal() || last.Counts.Done != 1 || last.Counts.Failed != 1 {
		t.Fatalf("stream did not end with the terminal batch summary: %+v", last)
	}
	for _, pe := range progress {
		if pe.Event == obs.ProgressFailed && !strings.Contains(pe.Error, "simulated failure") {
			t.Fatalf("failed event lost its error: %+v", pe)
		}
	}

	// A late subscriber replays the identical history and the stream ends
	// immediately — the log is append-only and complete after terminal.
	replay := readSSE(t, base, sub.Batch)
	if len(replay) != len(events) {
		t.Fatalf("late replay has %d events, live stream had %d", len(replay), len(events))
	}

	// Unknown and malformed batch ids 404.
	for _, id := range []string{"b999999", "nonsense"} {
		resp, err := http.Get(base + "/v1/batches/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("events for %q returned %d, want 404", id, resp.StatusCode)
		}
	}
}
