package simsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// stubRunner is a controllable JobRunner: jobs block until released (or
// until their context is done), so queue and drain states are reachable
// deterministically.
type stubRunner struct {
	block   chan struct{} // non-nil: Run waits for close(block) or ctx
	started chan string   // non-nil: receives each spec's workload as it starts
	runs    atomic.Int64
	sawCtx  atomic.Bool // a Run returned because its ctx ended
}

func (r *stubRunner) Validate(spec JobSpec) error {
	if spec.Workload == "" {
		return fmt.Errorf("empty workload")
	}
	if strings.HasPrefix(spec.Workload, "invalid") {
		return fmt.Errorf("unknown workload %q", spec.Workload)
	}
	return nil
}

func (r *stubRunner) Run(ctx context.Context, spec JobSpec) (obs.RunRecord, bool, error) {
	r.runs.Add(1)
	if r.started != nil {
		r.started <- spec.Workload
	}
	if strings.HasPrefix(spec.Workload, "fail") {
		return obs.RunRecord{}, false, fmt.Errorf("simulated failure for %s", spec.Workload)
	}
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			r.sawCtx.Store(true)
			return obs.RunRecord{}, false, fmt.Errorf("stub: %w", ctx.Err())
		}
	}
	return testRec(spec.Workload, 100), false, nil
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

type submitResponse struct {
	Batch string   `json:"batch"`
	Jobs  []string `json:"jobs"`
}

func getBatch(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/batches/" + id)
	if err != nil {
		t.Fatal(err)
	}
	return decode[map[string]any](t, resp)
}

func waitTerminal(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		b := getBatch(t, base, id)
		if b["terminal"] == true {
			return b
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("batch %s did not reach a terminal state", id)
	return nil
}

// newTestServer builds a started server + httptest frontend.
func newTestServer(t *testing.T, cfg ServerConfig, runner JobRunner) (*Server, string) {
	t.Helper()
	s := NewServer(cfg, runner)
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs.URL
}

// TestServerBatchLifecycle: submit, poll to terminal, fetch per-job
// results and the batch report; failed jobs are reported as failed
// without sinking the batch.
func TestServerBatchLifecycle(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 2}, &stubRunner{})
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "alpha", Toolchain: "base", Machine: "base32"},
		{Workload: "fail-beta", Toolchain: "base", Machine: "base32"},
	}}))
	if sub.Batch == "" || len(sub.Jobs) != 2 {
		t.Fatalf("submit response %+v", sub)
	}
	b := waitTerminal(t, base, sub.Batch)
	if b["done"].(float64) != 1 || b["failed"].(float64) != 1 {
		t.Fatalf("batch counts %+v", b)
	}

	resp, err := http.Get(base + "/v1/jobs/" + sub.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	jv := decode[jobView](t, resp)
	if jv.State != StateDone || jv.Record == nil || jv.Record.Benchmark != "alpha" {
		t.Fatalf("job view %+v", jv)
	}

	// The report includes only successful records.
	rresp, err := http.Get(base + "/v1/batches/" + sub.Batch + "/report")
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	data.ReadFrom(rresp.Body)
	rresp.Body.Close()
	rep, err := obs.DecodeReport(data.Bytes())
	if err != nil {
		t.Fatalf("report: %v\n%s", err, data.Bytes())
	}
	if len(rep.Records) != 1 || rep.Records[0].Benchmark != "alpha" {
		t.Fatalf("report records %+v", rep.Records)
	}
}

// TestServerValidationRejects: a batch naming an unknown workload is
// rejected whole with 400 before anything is enqueued.
func TestServerValidationRejects(t *testing.T) {
	s, base := newTestServer(t, ServerConfig{Workers: 1}, &stubRunner{})
	resp := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "alpha", Toolchain: "base", Machine: "base32"},
		{Workload: "invalid-x", Toolchain: "base", Machine: "base32"},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d jobs enqueued from a rejected batch", n)
	}
}

// TestServerBackpressure: when the queue cannot take a batch, the server
// answers 429 with a Retry-After hint and enqueues nothing.
func TestServerBackpressure(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 16)}
	defer close(r.block)
	_, base := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 2}, r)

	// One job occupies the single worker; two more fill the queue.
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "w1", Toolchain: "base", Machine: "base32"},
	}}))
	<-r.started // the worker has dequeued w1 and is blocked inside Run
	resp := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "w2", Toolchain: "base", Machine: "base32"},
		{Workload: "w3", Toolchain: "base", Machine: "base32"},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fill status %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()

	over := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "w4", Toolchain: "base", Machine: "base32"},
	}})
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	over.Body.Close()
	_ = sub
}

// TestServerCancelBatch: cancelling a batch stops queued jobs before
// they run and aborts the running one via its context.
func TestServerCancelBatch(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 16)}
	_, base := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 8}, r)

	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "run1", Toolchain: "base", Machine: "base32"},
		{Workload: "queued2", Toolchain: "base", Machine: "base32"},
		{Workload: "queued3", Toolchain: "base", Machine: "base32"},
	}}))
	<-r.started // run1 is inside Run, blocked; the rest are queued

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/batches/"+sub.Batch, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	b := waitTerminal(t, base, sub.Batch)
	if b["cancelled"].(float64) != 3 {
		t.Fatalf("batch after cancel: %+v", b)
	}
	if !r.sawCtx.Load() {
		t.Fatal("running job never observed its context cancellation")
	}
	if got := r.runs.Load(); got != 1 {
		t.Fatalf("%d jobs entered Run, want only the pre-cancel one", got)
	}
	close(r.block)
}

// TestServerJobTimeout: the per-job deadline cancels a stuck job and the
// job reports failed (deadline exceeded), promptly.
func TestServerJobTimeout(t *testing.T) {
	r := &stubRunner{block: make(chan struct{})}
	defer close(r.block)
	_, base := newTestServer(t, ServerConfig{Workers: 1, JobTimeout: 50 * time.Millisecond}, r)

	start := time.Now()
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "stuck", Toolchain: "base", Machine: "base32"},
	}}))
	b := waitTerminal(t, base, sub.Batch)
	if b["failed"].(float64) != 1 {
		t.Fatalf("batch %+v, want 1 failed", b)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline enforcement took %v", d)
	}
	resp, err := http.Get(base + "/v1/jobs/" + sub.Jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	jv := decode[jobView](t, resp)
	if !strings.Contains(jv.Error, "deadline") {
		t.Fatalf("job error %q does not mention the deadline", jv.Error)
	}
}

// TestServerDrain: Drain finishes queued work, flips healthz to 503,
// rejects new submissions with 503, and returns once idle.
func TestServerDrain(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 16)}
	s, base := newTestServer(t, ServerConfig{Workers: 1, QueueDepth: 8}, r)

	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "d1", Toolchain: "base", Machine: "base32"},
		{Workload: "d2", Toolchain: "base", Machine: "base32"},
	}}))
	<-r.started // d1 running, d2 queued

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Draining state must be visible before the pool empties.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rej := postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "late", Toolchain: "base", Machine: "base32"},
	}})
	if rej.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", rej.StatusCode)
	}
	rej.Body.Close()

	close(r.block) // let d1 (and then the queued d2) finish
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	b := getBatch(t, base, sub.Batch)
	if b["done"].(float64) != 2 {
		t.Fatalf("after drain: %+v, want both jobs done", b)
	}
}

// TestServerSyncRunClientDisconnect: an aborted /v1/run request cancels
// the in-flight simulation through the request context.
func TestServerSyncRunClientDisconnect(t *testing.T) {
	r := &stubRunner{block: make(chan struct{}), started: make(chan string, 1)}
	defer close(r.block)
	_, base := newTestServer(t, ServerConfig{Workers: 1}, r)

	body, _ := json.Marshal(JobSpec{Workload: "sync", Toolchain: "base", Machine: "base32"})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", bytes.NewReader(body))
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	<-r.started // handler is inside Run
	cancel()    // client disconnects
	if err := <-errCh; err == nil {
		t.Fatal("cancelled request returned no error to the client")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !r.sawCtx.Load() {
		if time.Now().After(deadline) {
			t.Fatal("runner never observed the client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerMetrics: /metrics surfaces queue/worker state, job counters,
// and per-job stall/latency summaries.
func TestServerMetrics(t *testing.T) {
	_, base := newTestServer(t, ServerConfig{Workers: 2}, &stubRunner{})
	sub := decode[submitResponse](t, postJSON(t, base+"/v1/batches", submitRequest{Jobs: []JobSpec{
		{Workload: "m1", Toolchain: "base", Machine: "base32"},
		{Workload: "m2", Toolchain: "base", Machine: "base32"},
	}}))
	waitTerminal(t, base, sub.Batch)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[map[string]any](t, resp)
	jobs := m["jobs"].(map[string]any)
	if jobs["submitted"].(float64) != 2 || jobs["completed"].(float64) != 2 {
		t.Fatalf("metrics jobs %+v", jobs)
	}
	runs := m["runs"].([]any)
	if len(runs) != 2 {
		t.Fatalf("metrics runs %+v", runs)
	}
	first := runs[0].(map[string]any)
	for _, field := range []string{"job", "key", "cycles", "ipc", "stall_cycles", "load_latency_mean"} {
		if _, ok := first[field]; !ok {
			t.Fatalf("run summary missing %q: %+v", field, first)
		}
	}
	if m["workers"].(float64) != 2 {
		t.Fatalf("metrics workers %+v", m["workers"])
	}
}
