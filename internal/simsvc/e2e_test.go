package simsvc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
	"repro/internal/workload"
)

// e2eMaxInsts keeps end-to-end simulations fast.
const e2eMaxInsts = 5_000_000

func resolveMachine(m string) (pipeline.Config, error) {
	return experiments.MachineConfig(experiments.Machine(m))
}

func newDaemon(t *testing.T, cache *simsvc.DiskCache, cfg simsvc.ServerConfig) (*simsvc.Server, *simsvc.Runner, string) {
	t.Helper()
	runner := &simsvc.Runner{Resolve: resolveMachine, MaxInsts: e2eMaxInsts, Cache: cache}
	s, err := simsvc.NewServer(cfg, runner)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, runner, hs.URL
}

func submitAndWait(t *testing.T, base string, jobs []simsvc.JobSpec) (batchID string, report []byte) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"jobs": jobs})
	resp, err := http.Post(base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Batch string   `json:"batch"`
		Jobs  []string `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(3 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("batch never finished")
		}
		br, err := http.Get(base + "/v1/batches/" + sub.Batch)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Terminal bool    `json:"terminal"`
			Failed   float64 `json:"failed"`
		}
		if err := json.NewDecoder(br.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		br.Body.Close()
		if st.Terminal {
			if st.Failed != 0 {
				t.Fatalf("batch finished with %v failed jobs", st.Failed)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	rr, err := http.Get(base + "/v1/batches/" + sub.Batch + "/report")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(rr.Body)
	rr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", rr.StatusCode, data)
	}
	return sub.Batch, data
}

// TestE2EDaemonMatchesInProcess: a daemon-served batch produces a report
// byte-identical to Report.Encode over in-process core.Run of the same
// jobs — the determinism contract of the whole service layer.
func TestE2EDaemonMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation in -short mode")
	}
	_, _, base := newDaemon(t, nil, simsvc.ServerConfig{Workers: 2})

	jobs := []simsvc.JobSpec{
		{Workload: "queens", Toolchain: "base", Machine: "base32"},
		{Workload: "queens", Toolchain: "fac", Machine: "fac32+rr"},
	}
	_, daemonReport := submitAndWait(t, base, jobs)

	// The same runs, in process, straight through the core facade.
	rep := obs.NewReport("facd", runtime.Version())
	for _, spec := range jobs {
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			t.Fatal(err)
		}
		tc := workload.BaseToolchain()
		if spec.Toolchain == "fac" {
			tc = workload.FACToolchain()
		}
		p, err := workload.Build(w, tc)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := resolveMachine(spec.Machine)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(p, cfg, e2eMaxInsts)
		if err != nil {
			t.Fatal(err)
		}
		rep.Add(res.Stats.Record(w.Name, w.Class.String(), spec.Toolchain, spec.Machine))
	}
	want, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(daemonReport, want) {
		t.Fatalf("daemon report differs from in-process run:\n--- daemon ---\n%s\n--- in-process ---\n%s",
			daemonReport, want)
	}
}

// TestE2ECacheServesResubmission: with a persistent cache attached,
// re-submitting an identical batch is served entirely from cache — zero
// new simulations — and produces the identical report. A second daemon
// over the same directory (a "restart") also serves from cache.
func TestE2ECacheServesResubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation in -short mode")
	}
	dir := t.TempDir()
	cache, err := simsvc.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, base := newDaemon(t, cache, simsvc.ServerConfig{Workers: 2})

	jobs := []simsvc.JobSpec{{Workload: "queens", Toolchain: "base", Machine: "base32"}}
	_, first := submitAndWait(t, base, jobs)
	st := cache.Stats()
	if st.Entries != 1 || st.Hits != 0 {
		t.Fatalf("after first batch: %+v", st)
	}

	_, second := submitAndWait(t, base, jobs)
	if !bytes.Equal(first, second) {
		t.Fatalf("cached report differs:\n%s\nvs\n%s", first, second)
	}
	st = cache.Stats()
	if st.Hits != 1 {
		t.Fatalf("resubmission did not hit the cache: %+v", st)
	}

	// The hit is visible in /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Jobs struct {
			CacheHits float64 `json:"cache_hits"`
		} `json:"jobs"`
		CacheHitRate float64 `json:"cache_hit_rate"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if m.Jobs.CacheHits != 1 {
		t.Fatalf("metrics cache_hits = %v, want 1", m.Jobs.CacheHits)
	}
	if m.CacheHitRate <= 0 {
		t.Fatalf("metrics cache_hit_rate = %v, want > 0", m.CacheHitRate)
	}

	// A fresh daemon over the same directory — simulating a restart —
	// serves the same bytes without simulating.
	cache2, err := simsvc.OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, base2 := newDaemon(t, cache2, simsvc.ServerConfig{Workers: 2})
	_, third := submitAndWait(t, base2, jobs)
	if !bytes.Equal(first, third) {
		t.Fatal("restarted daemon served different bytes")
	}
	if st2 := cache2.Stats(); st2.Hits != 1 {
		t.Fatalf("restarted daemon missed the persisted entry: %+v", st2)
	}
}

// TestE2EDeadlineStopsPipeline: a deadline far shorter than the
// simulation aborts the pipeline's cycle loop promptly with a
// deadline-exceeded failure.
func TestE2EDeadlineStopsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation in -short mode")
	}
	runner := &simsvc.Runner{Resolve: resolveMachine, MaxInsts: simsvc.DefaultMaxInsts}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := runner.Run(ctx, simsvc.JobSpec{Workload: "queens", Toolchain: "base", Machine: "base32"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("deadline-bounded run succeeded unexpectedly")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap DeadlineExceeded", err)
	}
	if elapsed > 15*time.Second {
		t.Fatalf("deadline abort took %v; pipeline loop not stopping promptly", elapsed)
	}
}

// TestRunnerValidate: bad specs are rejected without running.
func TestRunnerValidate(t *testing.T) {
	runner := &simsvc.Runner{Resolve: resolveMachine}
	good := simsvc.JobSpec{Workload: "queens", Toolchain: "base", Machine: "base32"}
	if err := runner.Validate(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []simsvc.JobSpec{
		{Workload: "nope", Toolchain: "base", Machine: "base32"},
		{Workload: "queens", Toolchain: "gcc", Machine: "base32"},
		{Workload: "queens", Toolchain: "base", Machine: "warp9"},
	} {
		if err := runner.Validate(bad); err == nil {
			t.Fatalf("bad spec %v accepted", bad)
		}
	}
}

// TestCacheKeySensitivity: the content-addressed key moves with every
// input that can change a result, and stays put otherwise.
func TestCacheKeySensitivity(t *testing.T) {
	w, err := workload.ByName("queens")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := resolveMachine("base32")
	if err != nil {
		t.Fatal(err)
	}
	base, err := simsvc.CacheKey(w, "base", "base32", cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	same, err := simsvc.CacheKey(w, "base", "base32", cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if base != same {
		t.Fatal("identical inputs produced different keys")
	}

	w2 := w
	w2.Source += "\n// touched"
	cfg2 := cfg
	cfg2.DCache.BlockSize = 16
	variants := []struct {
		name string
		key  func() (string, error)
	}{
		{"source", func() (string, error) { return simsvc.CacheKey(w2, "base", "base32", cfg, 1000) }},
		{"toolchain", func() (string, error) { return simsvc.CacheKey(w, "fac", "base32", cfg, 1000) }},
		{"machine name", func() (string, error) { return simsvc.CacheKey(w, "base", "base16", cfg, 1000) }},
		{"machine config", func() (string, error) { return simsvc.CacheKey(w, "base", "base32", cfg2, 1000) }},
		{"max insts", func() (string, error) { return simsvc.CacheKey(w, "base", "base32", cfg, 2000) }},
	}
	seen := map[string]string{base: "base"}
	for _, v := range variants {
		k, err := v.key()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %q collides with %q", v.name, prev)
		}
		seen[k] = v.name
	}
}

// TestE2EConcurrentIdenticalSubmits: many clients submitting the same
// job at once cost one simulation total — concurrent copies join the
// in-flight run (singleflight) and later copies hit the persistent
// cache — and every submitter gets byte-identical report bytes.
func TestE2EConcurrentIdenticalSubmits(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation in -short mode")
	}
	cache, err := simsvc.OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, runner, base := newDaemon(t, cache, simsvc.ServerConfig{Workers: 4, QueueDepth: 32})

	const copies = 6
	jobs := []simsvc.JobSpec{{Workload: "queens", Toolchain: "base", Machine: "base32"}}
	reports := make([][]byte, copies)
	var wg sync.WaitGroup
	for i := 0; i < copies; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, reports[i] = submitAndWait(t, base, jobs)
		}(i)
	}
	wg.Wait()

	for i := 1; i < copies; i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("submitter %d got different report bytes:\n%s\nvs\n%s", i, reports[0], reports[i])
		}
	}
	st := cache.Stats()
	if st.Entries != 1 {
		t.Fatalf("%d identical jobs created %d cache entries, want 1", copies, st.Entries)
	}
	// Exactly one copy simulated; the rest were deduplicated onto it or
	// served from the cache it filled.
	if got := runner.DedupCount() + st.Hits; got != copies-1 {
		t.Fatalf("dedup (%d) + cache hits (%d) = %d, want %d short-circuited copies",
			runner.DedupCount(), st.Hits, got, copies-1)
	}
}
