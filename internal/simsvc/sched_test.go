package simsvc

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestSched(t *testing.T, maxTotal int, clients []TenantConfig, defQueued, defInFlight int) (*Scheduler, *sync.Mutex) {
	t.Helper()
	var mu sync.Mutex
	sc, err := newScheduler(&mu, maxTotal, clients, defQueued, defInFlight)
	if err != nil {
		t.Fatal(err)
	}
	return sc, &mu
}

func queuedJobs(t *tenant, n int) []*jobEntry {
	jobs := make([]*jobEntry, n)
	for i := range jobs {
		jobs[i] = &jobEntry{state: StateQueued, tenant: t}
	}
	return jobs
}

// TestSchedulerConfig: duplicate names/tokens and out-of-range weights
// are construction errors, and defaults apply per tenant.
func TestSchedulerConfig(t *testing.T) {
	var mu sync.Mutex
	for _, bad := range [][]TenantConfig{
		{{Name: "", Token: "t"}},
		{{Name: "a", Token: ""}},
		{{Name: "a", Token: "t", Weight: -1}},
		{{Name: "a", Token: "t", Weight: maxWeight + 1}},
		{{Name: "a", Token: "t1"}, {Name: "a", Token: "t2"}},
		{{Name: "a", Token: "t"}, {Name: "b", Token: "t"}},
	} {
		if _, err := newScheduler(&mu, 8, bad, 4, 2); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	sc, err := newScheduler(&mu, 8, []TenantConfig{
		{Name: "a", Token: "ta"},
		{Name: "b", Token: "tb", Weight: 3, MaxQueued: 9, MaxInFlight: 5},
	}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sc.byName["a"], sc.byName["b"]
	if a.weight != 1 || a.maxQueued != 4 || a.maxInFlight != 2 {
		t.Fatalf("defaults not applied: %+v", a)
	}
	if b.weight != 3 || b.maxQueued != 9 || b.maxInFlight != 5 {
		t.Fatalf("explicit config lost: %+v", b)
	}
}

// TestSchedulerWeightedOrder: with both tenants backlogged, service
// opportunities split by weight (2:1), interleaved rather than bursty.
func TestSchedulerWeightedOrder(t *testing.T) {
	sc, mu := newTestSched(t, 100, []TenantConfig{
		{Name: "heavy", Token: "th", Weight: 2},
		{Name: "light", Token: "tl", Weight: 1},
	}, 100, 100)
	heavy, light := sc.byName["heavy"], sc.byName["light"]
	mu.Lock()
	sc.pushLocked(heavy, queuedJobs(heavy, 30))
	sc.pushLocked(light, queuedJobs(light, 30))

	counts := map[string]int{}
	var order []string
	for i := 0; i < 30; i++ {
		j := sc.nextLocked()
		counts[j.tenant.name]++
		order = append(order, j.tenant.name[:1])
		sc.doneLocked(j.tenant) // job finishes immediately
	}
	mu.Unlock()
	if counts["heavy"] != 20 || counts["light"] != 10 {
		t.Fatalf("30 scheduling slots split %v, want heavy=20 light=10", counts)
	}
	// Stride scheduling interleaves: the light tenant is never locked out
	// for longer than one full weight round.
	if s := strings.Join(order, ""); strings.Contains(s, "hhhhh") {
		t.Fatalf("bursty schedule %s", s)
	}
}

// TestSchedulerEqualWeightsRoundRobin: equal weights alternate service.
func TestSchedulerEqualWeightsRoundRobin(t *testing.T) {
	sc, mu := newTestSched(t, 100, []TenantConfig{
		{Name: "a", Token: "ta"},
		{Name: "b", Token: "tb"},
	}, 100, 100)
	a, b := sc.byName["a"], sc.byName["b"]
	mu.Lock()
	sc.pushLocked(a, queuedJobs(a, 10))
	sc.pushLocked(b, queuedJobs(b, 10))
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		j := sc.nextLocked()
		counts[j.tenant.name]++
		sc.doneLocked(j.tenant)
	}
	mu.Unlock()
	if counts["a"] != 10 || counts["b"] != 10 {
		t.Fatalf("equal weights split %v", counts)
	}
}

// TestSchedulerIdleBanksNoCredit: a tenant that sat idle while another
// was served does not get a catch-up burst when it finally submits.
func TestSchedulerIdleBanksNoCredit(t *testing.T) {
	sc, mu := newTestSched(t, 1000, []TenantConfig{
		{Name: "busy", Token: "tb"},
		{Name: "idle", Token: "ti"},
	}, 1000, 1000)
	busy, idle := sc.byName["busy"], sc.byName["idle"]
	mu.Lock()
	sc.pushLocked(busy, queuedJobs(busy, 40))
	for i := 0; i < 20; i++ {
		j := sc.nextLocked()
		sc.doneLocked(j.tenant)
	}
	// idle arrives late; fair from here on is 1:1, not 20 in a row.
	sc.pushLocked(idle, queuedJobs(idle, 20))
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		j := sc.nextLocked()
		counts[j.tenant.name]++
		sc.doneLocked(j.tenant)
	}
	mu.Unlock()
	if counts["idle"] > 11 || counts["idle"] < 9 {
		t.Fatalf("late arrival served %v of 20 slots, want ~10", counts)
	}
}

// TestSchedulerInFlightCap: a tenant at its in-flight cap is passed over
// even with the lowest virtual time, and becomes eligible again when a
// run finishes.
func TestSchedulerInFlightCap(t *testing.T) {
	sc, mu := newTestSched(t, 100, []TenantConfig{
		{Name: "capped", Token: "tc", Weight: 100, MaxInFlight: 1},
		{Name: "other", Token: "to"},
	}, 100, 100)
	capped, other := sc.byName["capped"], sc.byName["other"]
	mu.Lock()
	sc.pushLocked(capped, queuedJobs(capped, 3))
	sc.pushLocked(other, queuedJobs(other, 3))

	j1 := sc.nextLocked()
	if j1.tenant != capped {
		t.Fatalf("first slot went to %s", j1.tenant.name)
	}
	// capped is now at its cap: the next two slots must go to other.
	if j := sc.nextLocked(); j.tenant != other {
		t.Fatalf("capped tenant scheduled past its in-flight cap")
	}
	sc.doneLocked(capped)
	if j := sc.nextLocked(); j.tenant != capped {
		t.Fatal("released slot did not re-enable the capped tenant")
	}
	mu.Unlock()
}

// TestSchedulerAdmitQuotas: per-tenant and global queue bounds both
// reject with a Retry-After-carrying quota error.
func TestSchedulerAdmitQuotas(t *testing.T) {
	sc, mu := newTestSched(t, 6, []TenantConfig{
		{Name: "a", Token: "ta", MaxQueued: 2},
		{Name: "b", Token: "tb", MaxQueued: 100},
	}, 4, 4)
	a, b := sc.byName["a"], sc.byName["b"]
	mu.Lock()
	defer mu.Unlock()

	if err := sc.admitLocked(a, 3, 2); err == nil {
		t.Fatal("batch over the tenant quota admitted")
	} else {
		var qe *quotaError
		if !errors.As(err, &qe) || qe.retry < 1 {
			t.Fatalf("tenant rejection %v carries no retry hint", err)
		}
		if !strings.Contains(err.Error(), `client "a"`) {
			t.Fatalf("tenant rejection %v does not name the client", err)
		}
	}
	if err := sc.admitLocked(a, 2, 2); err != nil {
		t.Fatalf("batch within quota rejected: %v", err)
	}
	sc.pushLocked(a, queuedJobs(a, 2))
	if err := sc.admitLocked(a, 1, 2); err == nil {
		t.Fatal("tenant over its queued cap admitted")
	}
	// b has a huge personal quota but the global queue (6) has 4 slots left.
	if err := sc.admitLocked(b, 5, 2); err == nil {
		t.Fatal("batch over the global queue bound admitted")
	}
	if err := sc.admitLocked(b, 4, 2); err != nil {
		t.Fatalf("batch within the global bound rejected: %v", err)
	}
}

// TestSchedulerRetryAfterUsesRejectingConstraint: regression for the
// Retry-After hint being computed from the global backlog for both
// constraints. A tenant rejected only by its own (empty or small) queue
// must get a hint sized to its own backlog, even while another tenant
// holds hundreds of queued jobs; a global-bound rejection still scales
// with the global backlog.
func TestSchedulerRetryAfterUsesRejectingConstraint(t *testing.T) {
	sc, mu := newTestSched(t, 1000, []TenantConfig{
		{Name: "small", Token: "ts", MaxQueued: 2},
		{Name: "deep", Token: "td", MaxQueued: 500},
	}, 4, 4)
	small, deep := sc.byName["small"], sc.byName["deep"]
	mu.Lock()
	defer mu.Unlock()
	sc.pushLocked(deep, queuedJobs(deep, 400))

	var qe *quotaError
	err := sc.admitLocked(small, 3, 2) // over small's own quota; its queue is empty
	if !errors.As(err, &qe) {
		t.Fatalf("want quota error, got %v", err)
	}
	if qe.retry > 2 {
		t.Fatalf("tenant-quota Retry-After %ds reflects the other tenant's backlog (want <=2s: own queue is empty)", qe.retry)
	}

	err = sc.admitLocked(deep, 700, 2) // over the global bound
	if !errors.As(err, &qe) {
		t.Fatalf("want quota error, got %v", err)
	}
	if qe.retry < 100 {
		t.Fatalf("global-bound Retry-After %ds ignores the %d-deep global backlog", qe.retry, sc.totalQueued)
	}
}

// TestSchedulerReload: a live reload rotates tokens and retunes weights
// and quotas without touching scheduling state — surviving tenants keep
// their queues, in-flight counts, counters, and fairness pass; removed
// idle tenants disappear; new tenants join at the current virtual time.
func TestSchedulerReload(t *testing.T) {
	sc, mu := newTestSched(t, 100, []TenantConfig{
		{Name: "a", Token: "tokA1"},
		{Name: "b", Token: "tokB1"},
	}, 10, 4)
	a := sc.byName["a"]
	mu.Lock()
	defer mu.Unlock()
	sc.pushLocked(a, queuedJobs(a, 3))
	a.completed = 7
	passBefore := a.pass

	err := sc.reloadLocked([]TenantConfig{
		{Name: "a", Token: "tokA2", Weight: 5, MaxQueued: 20},
		{Name: "c", Token: "tokC1"},
	}, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.byName["a"] != a {
		t.Fatal("surviving tenant was rebuilt, losing accounting")
	}
	if sc.byToken["tokA1"] != nil || sc.byToken["tokA2"] != a {
		t.Fatal("token rotation not applied")
	}
	if a.weight != 5 || a.maxQueued != 20 || a.maxInFlight != 4 {
		t.Fatalf("reload config not applied: weight=%d maxQueued=%d maxInFlight=%d", a.weight, a.maxQueued, a.maxInFlight)
	}
	if len(a.queue) != 3 || a.completed != 7 || a.pass != passBefore {
		t.Fatal("reload disturbed queue/counters/fairness pass")
	}
	if sc.byName["b"] != nil || sc.byToken["tokB1"] != nil {
		t.Fatal("removed idle tenant still resolvable")
	}
	c := sc.byName["c"]
	if c == nil || c.pass != sc.vtime {
		t.Fatalf("new tenant missing or banked credit (pass=%d vtime=%d)", c.pass, sc.vtime)
	}
}

// TestSchedulerReloadRejectsOrphans: a reload dropping a tenant with
// queued or in-flight work is rejected wholesale, old table intact.
func TestSchedulerReloadRejectsOrphans(t *testing.T) {
	sc, mu := newTestSched(t, 100, []TenantConfig{
		{Name: "a", Token: "tokA"},
		{Name: "b", Token: "tokB"},
	}, 10, 4)
	a := sc.byName["a"]
	mu.Lock()
	defer mu.Unlock()
	sc.pushLocked(a, queuedJobs(a, 1))

	newSet := []TenantConfig{{Name: "b", Token: "tokB2"}}
	if err := sc.reloadLocked(newSet, 10, 4); err == nil {
		t.Fatal("reload orphaning a queued tenant accepted")
	}
	if sc.byName["a"] != a || sc.byToken["tokA"] != a || sc.byToken["tokB2"] != nil {
		t.Fatal("rejected reload modified the tenant table")
	}

	// Same with only in-flight (no queued) work.
	if j := sc.nextLocked(); j == nil || j.tenant != a {
		t.Fatal("setup: could not start a's job")
	}
	if err := sc.reloadLocked(newSet, 10, 4); err == nil {
		t.Fatal("reload orphaning an in-flight tenant accepted")
	}
	sc.doneLocked(a)
	if err := sc.reloadLocked(newSet, 10, 4); err != nil {
		t.Fatalf("reload after the tenant went idle still rejected: %v", err)
	}

	// Invalid sets are rejected too.
	for _, bad := range [][]TenantConfig{
		nil,
		{{Name: "x", Token: ""}},
		{{Name: "x", Token: "t"}, {Name: "y", Token: "t"}},
	} {
		if err := sc.reloadLocked(bad, 10, 4); err == nil {
			t.Fatalf("invalid reload %+v accepted", bad)
		}
	}
}

// TestSchedulerSyncSlots: synchronous runs consume the same in-flight
// slots as batch jobs.
func TestSchedulerSyncSlots(t *testing.T) {
	sc, mu := newTestSched(t, 8, []TenantConfig{{Name: "a", Token: "ta", MaxInFlight: 2}}, 8, 2)
	a := sc.byName["a"]
	mu.Lock()
	defer mu.Unlock()
	if err := sc.acquireSyncLocked(a); err != nil {
		t.Fatal(err)
	}
	if err := sc.acquireSyncLocked(a); err != nil {
		t.Fatal(err)
	}
	if err := sc.acquireSyncLocked(a); err == nil {
		t.Fatal("third concurrent sync run admitted past MaxInFlight=2")
	}
	sc.doneLocked(a)
	if err := sc.acquireSyncLocked(a); err != nil {
		t.Fatalf("released slot not reusable: %v", err)
	}
}

// TestSchedulerPurge: cancelled-while-queued jobs free their queue slots
// on purge without being scheduled.
func TestSchedulerPurge(t *testing.T) {
	sc, mu := newTestSched(t, 4, []TenantConfig{{Name: "a", Token: "ta"}}, 4, 4)
	a := sc.byName["a"]
	mu.Lock()
	defer mu.Unlock()
	jobs := queuedJobs(a, 4)
	sc.pushLocked(a, jobs)
	jobs[0].state = StateCancelled
	jobs[2].state = StateCancelled
	sc.purgeLocked()
	if sc.totalQueued != 2 || len(a.queue) != 2 {
		t.Fatalf("purge left totalQueued=%d len(queue)=%d, want 2/2", sc.totalQueued, len(a.queue))
	}
	if err := sc.admitLocked(a, 2, 1); err != nil {
		t.Fatalf("freed slots not admittable: %v", err)
	}
	if j := sc.nextLocked(); j != jobs[1] {
		t.Fatal("purge broke FIFO order")
	}
}

// TestSchedulerDrain: a draining scheduler serves its backlog, then
// returns nil to every waiter, including ones already blocked.
func TestSchedulerDrain(t *testing.T) {
	sc, mu := newTestSched(t, 8, []TenantConfig{{Name: "a", Token: "ta"}}, 8, 8)
	a := sc.byName["a"]

	// A blocked waiter must be woken by drainLocked.
	got := make(chan *jobEntry, 1)
	go func() {
		mu.Lock()
		j := sc.nextLocked()
		mu.Unlock()
		got <- j
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block
	mu.Lock()
	sc.pushLocked(a, queuedJobs(a, 1))
	mu.Unlock()
	if j := <-got; j == nil {
		t.Fatal("waiter got nil before drain")
	}

	mu.Lock()
	sc.pushLocked(a, queuedJobs(a, 2))
	sc.drainLocked()
	j1, j2 := sc.nextLocked(), sc.nextLocked()
	if j1 == nil || j2 == nil {
		t.Fatal("draining scheduler dropped backlog")
	}
	if j := sc.nextLocked(); j != nil {
		t.Fatal("drained empty scheduler returned a job")
	}
	mu.Unlock()
}
