package simsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ServerConfig tunes the service.
type ServerConfig struct {
	// Workers is the simulation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; submissions that would overflow it
	// are rejected with 429 and a Retry-After hint (0 = 64).
	QueueDepth int
	// JobTimeout is the per-job deadline (0 = none). It applies to queued
	// batch jobs and to synchronous /v1/run requests alike.
	JobTimeout time.Duration
	// Tool names the report producer in batch reports (0 = "facd").
	Tool string
}

// JobRunner executes and validates job specs. *Runner is the production
// implementation; tests substitute stubs.
type JobRunner interface {
	Validate(spec JobSpec) error
	Run(ctx context.Context, spec JobSpec) (rec obs.RunRecord, cacheHit bool, err error)
}

// Job states, as reported by the API.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// jobEntry is the service-side state of one job. Mutable fields are
// guarded by the server mutex.
type jobEntry struct {
	id    string
	batch string
	spec  JobSpec

	state    string
	errMsg   string
	cacheHit bool
	rec      *obs.RunRecord

	ctx    context.Context
	cancel context.CancelFunc
}

// Server is the simulation service: a bounded worker pool fed by a
// bounded queue, with batch bookkeeping, cancellation, backpressure,
// metrics, and graceful drain.
type Server struct {
	cfg    ServerConfig
	runner JobRunner

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *jobEntry
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	started  bool
	jobs     map[string]*jobEntry
	batches  map[string][]*jobEntry
	batchSeq int
	jobSeq   int
	busy     int

	submitted uint64
	completed uint64
	failed    uint64
	cancelled uint64
	cacheHits uint64
	syncRuns  uint64
}

// NewServer builds a server; call Start to launch its workers.
func NewServer(cfg ServerConfig, runner JobRunner) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Tool == "" {
		cfg.Tool = "facd"
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		runner:     runner,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *jobEntry, cfg.QueueDepth),
		jobs:       make(map[string]*jobEntry),
		batches:    make(map[string][]*jobEntry),
	}
}

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued job, honoring cancellation that raced its
// dequeue and the per-job deadline.
func (s *Server) runJob(j *jobEntry) {
	s.mu.Lock()
	if j.state != StateQueued {
		s.mu.Unlock()
		return // cancelled while queued
	}
	if j.ctx.Err() != nil {
		j.state = StateCancelled
		s.cancelled++
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	s.busy++
	s.mu.Unlock()

	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	rec, hit, err := s.runner.Run(ctx, j.spec)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.busy--
	switch {
	case err == nil:
		j.state = StateDone
		j.rec = &rec
		j.cacheHit = hit
		s.completed++
		if hit {
			s.cacheHits++
		}
	case j.ctx.Err() != nil && errors.Is(err, context.Canceled):
		// The job (or the whole server) was cancelled, not a failure of
		// the simulation itself.
		j.state = StateCancelled
		j.errMsg = err.Error()
		s.cancelled++
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.failed++
	}
}

// Drain stops accepting new work, lets queued and running jobs finish,
// and returns once the pool is idle. If ctx expires first, running jobs
// are cancelled and Drain waits for them to abort before returning
// ctx's error. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // submissions check draining under mu, so no send can race this
	}
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	mux.HandleFunc("GET /v1/batches/{id}/report", s.handleBatchReport)
	mux.HandleFunc("DELETE /v1/batches/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/run", s.handleRunSync)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submitRequest is the body of POST /v1/batches.
type submitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// maxBatchJobs bounds one submission; larger sweeps should batch their
// batches.
const maxBatchJobs = 4096

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeErr(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > maxBatchJobs {
		writeErr(w, http.StatusBadRequest, "batch has %d jobs, max %d", len(req.Jobs), maxBatchJobs)
		return
	}
	for i, spec := range req.Jobs {
		if err := s.runner.Validate(spec); err != nil {
			writeErr(w, http.StatusBadRequest, "job %d (%s): %v", i, spec, err)
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.started {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server not started")
		return
	}
	// Backpressure: reject rather than block when the queue cannot take
	// the whole batch. Queue occupancy only shrinks outside this mutex
	// (workers dequeue, submitters enqueue under it), so the check
	// guarantees the sends below cannot block.
	if free := cap(s.queue) - len(s.queue); len(req.Jobs) > free {
		retry := int(time.Duration(len(s.queue)/s.cfg.Workers+1) * time.Second / time.Second)
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusTooManyRequests, "job queue full (%d queued, %d free, batch of %d)",
			cap(s.queue)-free, free, len(req.Jobs))
		return
	}
	s.batchSeq++
	batchID := "b" + strconv.Itoa(s.batchSeq)
	jobIDs := make([]string, 0, len(req.Jobs))
	entries := make([]*jobEntry, 0, len(req.Jobs))
	for _, spec := range req.Jobs {
		s.jobSeq++
		ctx, cancel := context.WithCancel(s.baseCtx)
		j := &jobEntry{
			id:     "j" + strconv.Itoa(s.jobSeq),
			batch:  batchID,
			spec:   spec,
			state:  StateQueued,
			ctx:    ctx,
			cancel: cancel,
		}
		s.jobs[j.id] = j
		entries = append(entries, j)
		jobIDs = append(jobIDs, j.id)
		s.submitted++
		s.queue <- j
	}
	s.batches[batchID] = entries
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"batch": batchID,
		"jobs":  jobIDs,
	})
}

// jobView is the API representation of a job.
type jobView struct {
	ID        string         `json:"id"`
	Batch     string         `json:"batch"`
	Workload  string         `json:"workload"`
	Toolchain string         `json:"toolchain"`
	Machine   string         `json:"machine"`
	State     string         `json:"state"`
	CacheHit  bool           `json:"cache_hit,omitempty"`
	Error     string         `json:"error,omitempty"`
	Record    *obs.RunRecord `json:"record,omitempty"`
}

// viewLocked renders a job; includeRecord controls payload size on batch
// listings.
func (j *jobEntry) viewLocked(includeRecord bool) jobView {
	v := jobView{
		ID:        j.id,
		Batch:     j.batch,
		Workload:  j.spec.Workload,
		Toolchain: j.spec.Toolchain,
		Machine:   j.spec.Machine,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Error:     j.errMsg,
	}
	if includeRecord {
		v.Record = j.rec
	}
	return v
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entries, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	counts := map[string]int{}
	views := make([]jobView, 0, len(entries))
	allTerminal := true
	for _, j := range entries {
		counts[j.state]++
		if !terminal(j.state) {
			allTerminal = false
		}
		views = append(views, j.viewLocked(false))
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, map[string]any{
		"batch":     id,
		"total":     len(views),
		"queued":    counts[StateQueued],
		"running":   counts[StateRunning],
		"done":      counts[StateDone],
		"failed":    counts[StateFailed],
		"cancelled": counts[StateCancelled],
		"terminal":  allTerminal,
		"jobs":      views,
	})
}

func (s *Server) handleBatchReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entries, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	rep := obs.NewReport(s.cfg.Tool, runtime.Version())
	for _, j := range entries {
		if !terminal(j.state) {
			s.mu.Unlock()
			writeErr(w, http.StatusConflict, "batch %q still has unfinished jobs", id)
			return
		}
		if j.rec != nil {
			rep.Add(*j.rec)
		}
	}
	s.mu.Unlock()

	data, err := rep.Encode()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode report: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entries, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	n := 0
	for _, j := range entries {
		switch j.state {
		case StateQueued:
			j.state = StateCancelled
			s.cancelled++
			j.cancel()
			n++
		case StateRunning:
			j.cancel() // runJob records the terminal state when Run returns
			n++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"batch": id, "cancelling": n})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	v := j.viewLocked(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// handleRunSync runs one job synchronously on the caller's connection:
// the request context carries client-disconnect cancellation straight
// into the pipeline's cycle loop. It bypasses the queue (no backpressure
// interplay with batches) but shares the runner's cache and dedup.
func (s *Server) handleRunSync(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.syncRuns++
	s.mu.Unlock()

	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := s.runner.Validate(spec); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	rec, hit, err := s.runner.Run(ctx, spec)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing to answer
		}
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeErr(w, status, "%v", err)
		return
	}
	s.mu.Lock()
	s.completed++
	if hit {
		s.cacheHits++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"cache_hit": hit,
		"record":    rec,
	})
}

// runSummary is one finished job's stall/latency digest in /metrics.
type runSummary struct {
	Job             string             `json:"job"`
	Key             string             `json:"key"` // benchmark|toolchain|machine
	CacheHit        bool               `json:"cache_hit"`
	Cycles          uint64             `json:"cycles"`
	Insts           uint64             `json:"instructions"`
	IPC             float64            `json:"ipc"`
	StallTotal      uint64             `json:"stall_cycles_total"`
	Stalls          obs.StallBreakdown `json:"stall_cycles"`
	LoadLatencyMean float64            `json:"load_latency_mean"`
	LoadLatencyMax  uint64             `json:"load_latency_max"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := map[string]any{
		"queue_depth":    len(s.queue),
		"queue_capacity": cap(s.queue),
		"workers":        s.cfg.Workers,
		"workers_busy":   s.busy,
		"draining":       s.draining,
		"jobs": map[string]uint64{
			"submitted":  s.submitted,
			"completed":  s.completed,
			"failed":     s.failed,
			"cancelled":  s.cancelled,
			"cache_hits": s.cacheHits,
			"sync_runs":  s.syncRuns,
		},
	}
	var runs []runSummary
	for _, j := range s.jobs {
		if j.state != StateDone || j.rec == nil {
			continue
		}
		rec := j.rec
		runs = append(runs, runSummary{
			Job:             j.id,
			Key:             rec.Key(),
			CacheHit:        j.cacheHit,
			Cycles:          rec.Cycles,
			Insts:           rec.Insts,
			IPC:             rec.IPC,
			StallTotal:      rec.StallCyclesTotal,
			Stalls:          rec.Stalls,
			LoadLatencyMean: rec.LoadLatency.Mean(),
			LoadLatencyMax:  rec.LoadLatency.Max,
		})
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool {
		// Numeric job-id order ("j2" < "j10").
		return jobNum(runs[i].Job) < jobNum(runs[j].Job)
	})
	m["runs"] = runs

	if rs, ok := s.runner.(interface{ CacheStats() (DiskCacheStats, bool) }); ok {
		if cs, attached := rs.CacheStats(); attached {
			m["cache"] = cs
			m["cache_hit_rate"] = cs.HitRate()
		}
	}
	if dc, ok := s.runner.(interface{ DedupCount() uint64 }); ok {
		m["dedup_shared"] = dc.DedupCount()
	}
	writeJSON(w, http.StatusOK, m)
}

func jobNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	depth := len(s.queue)
	busy := s.busy
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":       state,
		"queue_depth":  depth,
		"workers_busy": busy,
	})
}
