package simsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ServerConfig tunes the service.
type ServerConfig struct {
	// Workers is the simulation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the global job queue; submissions that would
	// overflow it are rejected with 429 and a Retry-After hint (0 = 64).
	QueueDepth int
	// JobTimeout is the per-job deadline (0 = none). It applies to queued
	// batch jobs and to synchronous /v1/run requests alike.
	JobTimeout time.Duration
	// Tool names the report producer in batch reports (0 = "facd").
	Tool string

	// Clients declares the authenticated tenants. When empty the service
	// is open: every request maps to a single anonymous tenant. When
	// non-empty, requests must present a configured bearer token and are
	// scheduled fairly by tenant weight.
	Clients []TenantConfig
	// DefaultMaxQueued is the per-tenant queued-jobs cap for clients that
	// set none (0 = QueueDepth, i.e. only the global bound applies).
	DefaultMaxQueued int
	// DefaultMaxInFlight is the per-tenant cap on concurrently running
	// jobs — batch plus synchronous — for clients that set none
	// (0 = Workers).
	DefaultMaxInFlight int
	// MaxBodyBytes bounds any request body; larger bodies are refused
	// with 413 before they can exhaust memory (0 = 4 MiB).
	MaxBodyBytes int64
	// AccessLog, when non-nil, receives structured
	// request/admit/reject/complete events (see obs.AccessEvent).
	AccessLog obs.AccessSink
}

// JobRunner executes and validates job specs. *Runner is the production
// implementation; tests substitute stubs.
type JobRunner interface {
	Validate(spec JobSpec) error
	Run(ctx context.Context, spec JobSpec) (rec obs.RunRecord, cacheHit bool, err error)
}

// Job states, as reported by the API.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// jobEntry is the service-side state of one job. Mutable fields are
// guarded by the server mutex.
type jobEntry struct {
	id     string
	seq    int
	batch  string
	spec   JobSpec
	tenant *tenant

	state    string
	errMsg   string
	cacheHit bool
	worker   string // fleet worker that served the job ("" = local)
	rec      *obs.RunRecord

	enqueued time.Time
	started  time.Time
	finished time.Time

	ctx    context.Context
	cancel context.CancelFunc
}

// queueWait is submission-to-start latency; for jobs cancelled while
// queued it measures submission to cancellation.
func (j *jobEntry) queueWait() time.Duration {
	if j.started.IsZero() {
		if j.finished.IsZero() {
			return 0
		}
		return j.finished.Sub(j.enqueued)
	}
	return j.started.Sub(j.enqueued)
}

// runTime is start-to-terminal latency (zero while running or never
// started).
func (j *jobEntry) runTime() time.Duration {
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Server is the simulation service: a bounded worker pool fed by
// per-tenant queues under weighted-fair scheduling, with token
// authentication, per-tenant quotas, batch bookkeeping, cancellation,
// backpressure, structured access logs, metrics, and graceful drain.
type Server struct {
	cfg    ServerConfig
	runner JobRunner

	sched        *Scheduler
	authRequired bool
	anon         *tenant
	accessLog    obs.AccessSink

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	draining bool
	started  bool
	jobs     map[string]*jobEntry
	batches  map[string][]*jobEntry
	progress map[string]*progressLog
	batchSeq int
	jobSeq   int
	busy     int

	submitted uint64
	completed uint64
	failed    uint64
	cancelled uint64
	cacheHits uint64
	syncRuns  uint64
}

// anonTenantName identifies the single tenant of an open (no configured
// clients) server.
const anonTenantName = "anon"

// NewServer builds a server; call Start to launch its workers. It fails
// on inconsistent tenant configuration (duplicate names or tokens,
// out-of-range weights).
func NewServer(cfg ServerConfig, runner JobRunner) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Tool == "" {
		cfg.Tool = "facd"
	}
	if cfg.DefaultMaxQueued <= 0 {
		cfg.DefaultMaxQueued = cfg.QueueDepth
	}
	if cfg.DefaultMaxInFlight <= 0 {
		cfg.DefaultMaxInFlight = cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		runner:     runner,
		accessLog:  cfg.AccessLog,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*jobEntry),
		batches:    make(map[string][]*jobEntry),
		progress:   make(map[string]*progressLog),
	}
	clients := cfg.Clients
	s.authRequired = len(clients) > 0
	if !s.authRequired {
		// Open server: one anonymous tenant holds all quota state. The
		// token is never matched because authentication is skipped.
		clients = []TenantConfig{{Name: anonTenantName, Token: "\x00anonymous"}}
	}
	sched, err := newScheduler(&s.mu, cfg.QueueDepth, clients, cfg.DefaultMaxQueued, cfg.DefaultMaxInFlight)
	if err != nil {
		cancel()
		return nil, err
	}
	s.sched = sched
	if !s.authRequired {
		s.anon = sched.order[0]
	}
	return s, nil
}

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// progressLog is one batch's append-only progress-event history
// (schema fac/progress/v1). Events are immutable once appended, so a
// streaming subscriber snapshots a slice under the server mutex and
// writes it out without holding the lock. wake is closed and replaced
// on every append; subscribers select on the channel they last saw.
type progressLog struct {
	events []obs.ProgressEvent
	counts obs.ProgressCounts
	wake   chan struct{}
	done   bool // terminal batch summary has been emitted
}

// applyLocked folds one job transition into the batch census.
func (pl *progressLog) applyLocked(kind string, j *jobEntry) {
	c := &pl.counts
	switch kind {
	case obs.ProgressQueued:
		c.Total++
		c.Queued++
	case obs.ProgressRunning:
		c.Queued--
		c.Running++
	case obs.ProgressDone:
		c.Running--
		c.Done++
	case obs.ProgressFailed:
		c.Running--
		c.Failed++
	case obs.ProgressCancelled:
		if j.started.IsZero() {
			c.Queued--
		} else {
			c.Running--
		}
		c.Cancelled++
	}
}

// appendProgressLocked stamps and stores one event, then wakes every
// subscriber. Call with the server mutex held.
func (pl *progressLog) appendProgressLocked(batch string, e obs.ProgressEvent) {
	e.Seq = len(pl.events)
	e.Time = time.Now()
	e.Batch = batch
	e.Counts = pl.counts
	pl.events = append(pl.events, e)
	close(pl.wake)
	pl.wake = make(chan struct{})
}

// publishJobLocked records one job transition in the batch's progress
// stream and, when it is the batch's last terminal transition, follows
// it with the single "batch" summary event. Call with the mutex held.
func (s *Server) publishJobLocked(j *jobEntry, kind string) {
	pl := s.progress[j.batch]
	if pl == nil {
		return
	}
	pl.applyLocked(kind, j)
	e := obs.ProgressEvent{
		Event:    kind,
		Job:      j.id,
		Client:   j.tenant.name,
		Worker:   j.worker,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
	}
	switch kind {
	case obs.ProgressDone, obs.ProgressFailed, obs.ProgressCancelled:
		e.QueueWaitMS = durMS(j.queueWait())
		e.RunMS = durMS(j.runTime())
	}
	pl.appendProgressLocked(j.batch, e)
	if !pl.done && pl.counts.Total > 0 && pl.counts.Terminal() {
		pl.done = true
		pl.appendProgressLocked(j.batch, obs.ProgressEvent{Event: obs.ProgressBatch, Client: j.tenant.name})
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		j := s.sched.nextLocked()
		s.mu.Unlock()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one scheduled job, honoring cancellation that raced
// its dequeue and the per-job deadline. The job's tenant in-flight slot
// (claimed by nextLocked) is always released.
func (s *Server) runJob(j *jobEntry) {
	defer func() {
		s.mu.Lock()
		s.sched.doneLocked(j.tenant)
		s.mu.Unlock()
	}()
	s.mu.Lock()
	if j.state != StateQueued {
		s.mu.Unlock()
		return // cancelled while queued
	}
	if j.ctx.Err() != nil {
		j.state = StateCancelled
		j.finished = time.Now()
		s.cancelled++
		j.tenant.completed++
		s.publishJobLocked(j, obs.ProgressCancelled)
		s.mu.Unlock()
		s.completeEvent(j)
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.busy++
	s.publishJobLocked(j, obs.ProgressRunning)
	s.mu.Unlock()

	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	// The worker note lets a dispatching runner (the fleet coordinator)
	// attribute the run to the remote worker that served it.
	ctx, note := WithWorkerNote(ctx)
	rec, hit, err := s.runner.Run(ctx, j.spec)

	s.mu.Lock()
	s.busy--
	j.finished = time.Now()
	j.tenant.completed++
	j.worker = note.Get()
	kind := obs.ProgressDone
	switch {
	case err == nil:
		j.state = StateDone
		j.rec = &rec
		j.cacheHit = hit
		s.completed++
		if hit {
			s.cacheHits++
			j.tenant.cacheHits++
		}
	case j.ctx.Err() != nil && errors.Is(err, context.Canceled):
		// The job (or the whole server) was cancelled, not a failure of
		// the simulation itself.
		j.state = StateCancelled
		j.errMsg = err.Error()
		s.cancelled++
		kind = obs.ProgressCancelled
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.failed++
		kind = obs.ProgressFailed
	}
	s.publishJobLocked(j, kind)
	s.mu.Unlock()
	s.completeEvent(j)
}

// completeEvent emits the job's terminal access event. Call without the
// server mutex and only after the job is terminal (its fields are then
// immutable).
func (s *Server) completeEvent(j *jobEntry) {
	s.access(obs.AccessEvent{
		Event:       obs.AccessComplete,
		Client:      j.tenant.name,
		Batch:       j.batch,
		Job:         j.id,
		State:       j.state,
		CacheHit:    j.cacheHit,
		QueueWaitMS: durMS(j.queueWait()),
		RunMS:       durMS(j.runTime()),
	})
}

func (s *Server) access(e obs.AccessEvent) {
	if s.accessLog == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	s.accessLog.Access(e)
}

// DrainStats is the server's batch-job accounting snapshot. For a
// drained server, Submitted == Completed+Failed+Cancelled: every
// admitted job reached a reported terminal state, none were dropped.
type DrainStats struct {
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
}

// Stats snapshots the job counters.
func (s *Server) Stats() DrainStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DrainStats{Submitted: s.submitted, Completed: s.completed, Failed: s.failed, Cancelled: s.cancelled}
}

// Drain stops accepting new work, lets queued and running jobs finish,
// and returns once the pool is idle. If ctx expires first, running jobs
// are cancelled and Drain waits for them to abort before returning
// ctx's error. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.sched.drainLocked() // submissions check draining under mu, so no push can race this
	}
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// tenantCtxKey carries the authenticated tenant through a request.
type tenantCtxKey struct{}

func (s *Server) tenantFrom(r *http.Request) *tenant {
	t, _ := r.Context().Value(tenantCtxKey{}).(*tenant)
	return t
}

// authenticate resolves the request's tenant. With no configured
// clients every request maps to the anonymous tenant; otherwise the
// Authorization header must carry a configured bearer token. The token
// table is consulted under the server mutex because ReloadClients can
// swap it at any time.
func (s *Server) authenticate(r *http.Request) (*tenant, error) {
	if !s.authRequired {
		return s.anon, nil
	}
	h := r.Header.Get("Authorization")
	if h == "" {
		return nil, errors.New("missing Authorization header (want \"Bearer <token>\")")
	}
	tok, ok := strings.CutPrefix(h, "Bearer ")
	if !ok {
		return nil, errors.New("malformed Authorization header (want \"Bearer <token>\")")
	}
	s.mu.Lock()
	t, ok := s.sched.byToken[tok]
	s.mu.Unlock()
	if !ok {
		return nil, errors.New("unknown token")
	}
	return t, nil
}

// ReloadClients atomically replaces the tenant table (token rotation,
// weight or quota changes, tenant addition/removal) without a restart.
// Queued and in-flight jobs are untouched: tenants surviving the reload
// keep their queues, fairness passes, and counters, and a reload that
// would remove a tenant with queued or running work is rejected wholesale
// (drain or cancel that tenant's jobs first). Only servers started with
// configured clients can reload — an open server has no tenant table to
// swap.
func (s *Server) ReloadClients(clients []TenantConfig) error {
	if !s.authRequired {
		return errors.New("simsvc: cannot reload clients on an open (unauthenticated) server")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sched.reloadLocked(clients, s.cfg.DefaultMaxQueued, s.cfg.DefaultMaxInFlight)
}

// statusWriter captures the response status for access logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so the progress stream can
// push events through the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the HTTP API. Every endpoint except the operational
// pair (/healthz, /metrics) authenticates the caller, bounds the request
// body, and is access-logged.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	mux.HandleFunc("GET /v1/batches/{id}/report", s.handleBatchReport)
	mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	mux.HandleFunc("DELETE /v1/batches/{id}", s.handleBatchCancel)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/run", s.handleRunSync)

	ops := http.NewServeMux()
	ops.HandleFunc("GET /metrics", s.handleMetrics)
	ops.HandleFunc("GET /healthz", s.handleHealthz)

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			ops.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		client := ""
		t, err := s.authenticate(r)
		if err != nil {
			s.reject(sw, nil, http.StatusUnauthorized, "%v", err)
		} else {
			client = t.name
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
		}
		s.access(obs.AccessEvent{
			Event:  obs.AccessRequest,
			Client: client,
			Method: r.Method,
			Path:   r.URL.Path,
			Status: sw.status,
		})
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// reject refuses a request: it writes the error response, counts the
// rejection against the tenant (when known), and emits a reject access
// event carrying the reason.
func (s *Server) reject(w http.ResponseWriter, t *tenant, status int, format string, args ...any) {
	reason := fmt.Sprintf(format, args...)
	if t != nil {
		s.mu.Lock()
		t.rejected++
		s.mu.Unlock()
	}
	client := ""
	if t != nil {
		client = t.name
	}
	writeErr(w, status, "%s", reason)
	s.access(obs.AccessEvent{
		Event:  obs.AccessReject,
		Client: client,
		Status: status,
		Reason: reason,
	})
}

// decodeStrict decodes exactly one JSON value from the request body:
// unknown fields are errors (client typos fail loudly instead of being
// ignored), trailing data after the first value is an error, and a body
// over the server's byte limit maps to 413 rather than a generic 400.
func decodeStrict(r *http.Request, v any) (status int, err error) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return http.StatusBadRequest, fmt.Errorf("trailing data after JSON body (next token %v)", tok)
	}
	return 0, nil
}

// parseID validates an API identifier of the form <prefix><positive
// decimal>, e.g. "j12" or "b3". It rejects everything strconv.Atoi
// would partially accept ("", "j", "jxyz", "j+1", "j007") so malformed
// ids can never alias a real job or batch.
func parseID(prefix byte, id string) (int, bool) {
	if len(id) < 2 || id[0] != prefix {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n <= 0 || strconv.Itoa(n) != id[1:] {
		return 0, false
	}
	return n, true
}

// submitRequest is the body of POST /v1/batches.
type submitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// maxBatchJobs bounds one submission; larger sweeps should batch their
// batches.
const maxBatchJobs = 4096

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFrom(r)
	var req submitRequest
	if status, err := decodeStrict(r, &req); err != nil {
		s.reject(w, t, status, "%v", err)
		return
	}
	if len(req.Jobs) == 0 {
		s.reject(w, t, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > maxBatchJobs {
		s.reject(w, t, http.StatusBadRequest, "batch has %d jobs, max %d", len(req.Jobs), maxBatchJobs)
		return
	}
	for i, spec := range req.Jobs {
		if err := s.runner.Validate(spec); err != nil {
			s.reject(w, t, http.StatusBadRequest, "job %d (%s): %v", i, spec, err)
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(w, t, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.started {
		s.mu.Unlock()
		s.reject(w, t, http.StatusServiceUnavailable, "server not started")
		return
	}
	// Backpressure: reject rather than block when the tenant's queue
	// quota or the global queue cannot take the whole batch. A batch is
	// admitted entirely or not at all.
	if err := s.sched.admitLocked(t, len(req.Jobs), s.cfg.Workers); err != nil {
		t.rejected++
		s.mu.Unlock()
		var qe *quotaError
		if errors.As(err, &qe) {
			w.Header().Set("Retry-After", strconv.Itoa(qe.retry))
		}
		reason := err.Error()
		writeErr(w, http.StatusTooManyRequests, "%s", reason)
		s.access(obs.AccessEvent{Event: obs.AccessReject, Client: t.name, Status: http.StatusTooManyRequests, Reason: reason})
		return
	}
	now := time.Now()
	s.batchSeq++
	batchID := "b" + strconv.Itoa(s.batchSeq)
	jobIDs := make([]string, 0, len(req.Jobs))
	entries := make([]*jobEntry, 0, len(req.Jobs))
	for _, spec := range req.Jobs {
		s.jobSeq++
		ctx, cancel := context.WithCancel(s.baseCtx)
		j := &jobEntry{
			id:       "j" + strconv.Itoa(s.jobSeq),
			seq:      s.jobSeq,
			batch:    batchID,
			spec:     spec,
			tenant:   t,
			state:    StateQueued,
			enqueued: now,
			ctx:      ctx,
			cancel:   cancel,
		}
		s.jobs[j.id] = j
		entries = append(entries, j)
		jobIDs = append(jobIDs, j.id)
		s.submitted++
	}
	s.batches[batchID] = entries
	s.progress[batchID] = &progressLog{wake: make(chan struct{})}
	for _, j := range entries {
		s.publishJobLocked(j, obs.ProgressQueued)
	}
	s.sched.pushLocked(t, entries)
	s.mu.Unlock()

	s.access(obs.AccessEvent{Event: obs.AccessAdmit, Client: t.name, Batch: batchID, Jobs: len(jobIDs)})
	writeJSON(w, http.StatusAccepted, map[string]any{
		"batch": batchID,
		"jobs":  jobIDs,
	})
}

// jobView is the API representation of a job.
type jobView struct {
	ID        string `json:"id"`
	Batch     string `json:"batch"`
	Client    string `json:"client"`
	Workload  string `json:"workload"`
	Toolchain string `json:"toolchain"`
	Machine   string `json:"machine"`
	State     string `json:"state"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Worker    string `json:"worker,omitempty"`
	Error     string `json:"error,omitempty"`
	// QueueWaitMS and RunMS are wall-clock service latencies, reported
	// once the job has started (and finished, respectively).
	QueueWaitMS float64        `json:"queue_wait_ms,omitempty"`
	RunMS       float64        `json:"run_ms,omitempty"`
	Record      *obs.RunRecord `json:"record,omitempty"`
}

// viewLocked renders a job; includeRecord controls payload size on batch
// listings.
func (j *jobEntry) viewLocked(includeRecord bool) jobView {
	v := jobView{
		ID:          j.id,
		Batch:       j.batch,
		Client:      j.tenant.name,
		Workload:    j.spec.Workload,
		Toolchain:   j.spec.Toolchain,
		Machine:     j.spec.Machine,
		State:       j.state,
		CacheHit:    j.cacheHit,
		Worker:      j.worker,
		Error:       j.errMsg,
		QueueWaitMS: durMS(j.queueWait()),
		RunMS:       durMS(j.runTime()),
	}
	if includeRecord {
		v.Record = j.rec
	}
	return v
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := parseID('b', id); !ok {
		writeErr(w, http.StatusNotFound, "malformed batch id %q", id)
		return
	}
	s.mu.Lock()
	entries, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	counts := map[string]int{}
	views := make([]jobView, 0, len(entries))
	allTerminal := true
	for _, j := range entries {
		counts[j.state]++
		if !terminal(j.state) {
			allTerminal = false
		}
		views = append(views, j.viewLocked(false))
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, map[string]any{
		"batch":     id,
		"total":     len(views),
		"queued":    counts[StateQueued],
		"running":   counts[StateRunning],
		"done":      counts[StateDone],
		"failed":    counts[StateFailed],
		"cancelled": counts[StateCancelled],
		"terminal":  allTerminal,
		"jobs":      views,
	})
}

func (s *Server) handleBatchReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := parseID('b', id); !ok {
		writeErr(w, http.StatusNotFound, "malformed batch id %q", id)
		return
	}
	s.mu.Lock()
	entries, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	rep := obs.NewReport(s.cfg.Tool, runtime.Version())
	for _, j := range entries {
		if !terminal(j.state) {
			s.mu.Unlock()
			writeErr(w, http.StatusConflict, "batch %q still has unfinished jobs", id)
			return
		}
		if j.rec != nil {
			rep.Add(*j.rec)
		}
	}
	s.mu.Unlock()

	data, err := rep.Encode()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode report: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleBatchCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := parseID('b', id); !ok {
		writeErr(w, http.StatusNotFound, "malformed batch id %q", id)
		return
	}
	s.mu.Lock()
	entries, ok := s.batches[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	n := 0
	now := time.Now()
	var done []*jobEntry
	for _, j := range entries {
		switch j.state {
		case StateQueued:
			j.state = StateCancelled
			j.finished = now
			s.cancelled++
			j.tenant.completed++
			j.cancel()
			s.publishJobLocked(j, obs.ProgressCancelled)
			done = append(done, j)
			n++
		case StateRunning:
			j.cancel() // runJob records the terminal state when Run returns
			n++
		}
	}
	if len(done) > 0 {
		// Cancelled-while-queued jobs free their queue slots immediately.
		s.sched.purgeLocked()
	}
	s.mu.Unlock()
	for _, j := range done {
		s.completeEvent(j)
	}
	writeJSON(w, http.StatusOK, map[string]any{"batch": id, "cancelling": n})
}

// handleBatchEvents streams the batch's progress log as server-sent
// events (schema fac/progress/v1): the full history replays on
// subscribe, then live events follow until the batch's terminal summary,
// which ends the stream. The connection is held open by the subscriber,
// not by any worker — publishers only append under the mutex and close a
// wake channel, so a slow consumer can never stall a simulation.
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := parseID('b', id); !ok {
		writeErr(w, http.StatusNotFound, "malformed batch id %q", id)
		return
	}
	s.mu.Lock()
	pl, ok := s.progress[id]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown batch %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// The schema is announced once, in the opening hello event.
	fmt.Fprintf(w, "event: hello\ndata: {\"schema\":%q,\"batch\":%q}\n\n", obs.ProgressEventSchema, id)
	fl.Flush()

	idx := 0
	for {
		s.mu.Lock()
		pending := pl.events[idx:] // elements are immutable once appended
		wake := pl.wake
		finished := pl.done
		s.mu.Unlock()
		for _, e := range pending {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data); err != nil {
				return
			}
		}
		if len(pending) > 0 {
			fl.Flush()
			idx += len(pending)
		}
		if finished && len(pending) == 0 {
			return
		}
		if finished {
			continue // drain whatever raced in, then hit the branch above
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		case <-time.After(15 * time.Second):
			// Keepalive comment so idle streams survive intermediaries.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := parseID('j', id); !ok {
		writeErr(w, http.StatusNotFound, "malformed job id %q", id)
		return
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	v := j.viewLocked(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// handleRunSync runs one job synchronously on the caller's connection:
// the request context carries client-disconnect cancellation straight
// into the pipeline's cycle loop. It bypasses the queue (no backpressure
// interplay with batches) but counts against the tenant's in-flight cap
// and shares the runner's cache and dedup.
func (s *Server) handleRunSync(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFrom(r)
	var spec JobSpec
	if status, err := decodeStrict(r, &spec); err != nil {
		s.reject(w, t, status, "%v", err)
		return
	}
	if err := s.runner.Validate(spec); err != nil {
		s.reject(w, t, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(w, t, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if err := s.sched.acquireSyncLocked(t); err != nil {
		t.rejected++
		s.mu.Unlock()
		var qe *quotaError
		if errors.As(err, &qe) {
			w.Header().Set("Retry-After", strconv.Itoa(qe.retry))
		}
		reason := err.Error()
		writeErr(w, http.StatusTooManyRequests, "%s", reason)
		s.access(obs.AccessEvent{Event: obs.AccessReject, Client: t.name, Status: http.StatusTooManyRequests, Reason: reason})
		return
	}
	s.syncRuns++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.sched.doneLocked(t)
		s.mu.Unlock()
	}()

	ctx := r.Context()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	rec, hit, err := s.runner.Run(ctx, spec)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing to answer
		}
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeErr(w, status, "%v", err)
		return
	}
	if hit {
		s.mu.Lock()
		s.cacheHits++
		t.cacheHits++
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cache_hit": hit,
		"record":    rec,
	})
}

// WorkerStatus is one fleet worker's health and dispatch census,
// surfaced in /metrics when the server's runner is a fleet dispatcher.
// It lives in this package (not internal/fleet) so the server can name
// the interface without importing the fleet layer built on top of it.
type WorkerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Shard ownership: how many ring slots map to this worker is an
	// implementation detail; Dispatched counts jobs actually sent here.
	Dispatched uint64 `json:"dispatched"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	// Stolen counts jobs this worker owned that another worker finished
	// (failover or hedged dispatch won elsewhere).
	Stolen uint64 `json:"stolen"`
	// Hedges counts backup dispatches launched here for straggling owners.
	Hedges uint64 `json:"hedges"`
}

// runSummary is one finished job's stall/latency digest in /metrics.
type runSummary struct {
	Job             string             `json:"job"`
	Client          string             `json:"client"`
	Key             string             `json:"key"` // benchmark|toolchain|machine
	CacheHit        bool               `json:"cache_hit"`
	Cycles          uint64             `json:"cycles"`
	Insts           uint64             `json:"instructions"`
	IPC             float64            `json:"ipc"`
	StallTotal      uint64             `json:"stall_cycles_total"`
	Stalls          obs.StallBreakdown `json:"stall_cycles"`
	LoadLatencyMean float64            `json:"load_latency_mean"`
	LoadLatencyMax  uint64             `json:"load_latency_max"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := map[string]any{
		"queue_depth":    s.sched.totalQueued,
		"queue_capacity": s.sched.maxTotal,
		"workers":        s.cfg.Workers,
		"workers_busy":   s.busy,
		"draining":       s.draining,
		"auth_required":  s.authRequired,
		"jobs": map[string]uint64{
			"submitted":  s.submitted,
			"completed":  s.completed,
			"failed":     s.failed,
			"cancelled":  s.cancelled,
			"cache_hits": s.cacheHits,
			"sync_runs":  s.syncRuns,
		},
	}
	clients := make(map[string]any, len(s.sched.order))
	for _, t := range s.sched.order {
		clients[t.name] = t.viewLocked()
	}
	m["clients"] = clients

	var finished []*jobEntry
	// Sorted by job sequence number below, so the listing is deterministic.
	for _, j := range s.jobs { //lint:sorted
		if j.state != StateDone || j.rec == nil {
			continue
		}
		finished = append(finished, j)
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].seq < finished[k].seq })
	runs := make([]runSummary, 0, len(finished))
	for _, j := range finished {
		rec := j.rec
		runs = append(runs, runSummary{
			Job:             j.id,
			Client:          j.tenant.name,
			Key:             rec.Key(),
			CacheHit:        j.cacheHit,
			Cycles:          rec.Cycles,
			Insts:           rec.Insts,
			IPC:             rec.IPC,
			StallTotal:      rec.StallCyclesTotal,
			Stalls:          rec.Stalls,
			LoadLatencyMean: rec.LoadLatency.Mean(),
			LoadLatencyMax:  rec.LoadLatency.Max,
		})
	}
	s.mu.Unlock()
	m["runs"] = runs

	if rs, ok := s.runner.(interface{ CacheStats() (DiskCacheStats, bool) }); ok {
		if cs, attached := rs.CacheStats(); attached {
			m["cache"] = cs
			m["cache_hit_rate"] = cs.HitRate()
		}
	}
	if dc, ok := s.runner.(interface{ DedupCount() uint64 }); ok {
		m["dedup_shared"] = dc.DedupCount()
	}
	if fs, ok := s.runner.(interface{ FleetStats() []WorkerStatus }); ok {
		m["fleet"] = fs.FleetStats()
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	depth := s.sched.totalQueued
	busy := s.busy
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":       state,
		"queue_depth":  depth,
		"workers_busy": busy,
	})
}
