package simsvc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightDedup: callers that arrive while a leader is in flight run
// fn zero times themselves and share the leader's result. The follower
// hook sequences the interleaving so the test is deterministic: the
// leader is only released once every follower is committed to waiting.
func TestFlightDedup(t *testing.T) {
	var f Flight
	var calls atomic.Int64
	gate := make(chan struct{})
	release := make(chan struct{})

	const followers = 7
	joined := make(chan string, followers)
	f.testHookFollower = func(key string) { joined <- key }

	var wg sync.WaitGroup
	vals := make([]any, followers+1)
	shareds := make([]bool, followers+1)
	launch := func(i int) {
		defer wg.Done()
		v, shared, err := f.Do("k", func() (any, error) {
			calls.Add(1)
			close(gate) // leader is in: main goroutine may spawn followers
			<-release
			return 42, nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		vals[i], shareds[i] = v, shared
	}

	wg.Add(1)
	go launch(0)
	<-gate // leader registered and running
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go launch(i)
	}
	for i := 0; i < followers; i++ {
		if k := <-joined; k != "k" {
			t.Fatalf("follower joined key %q", k)
		}
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := range vals {
		if vals[i] != 42 {
			t.Fatalf("caller %d got %v, want 42", i, vals[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
}

// TestFlightKeysIndependent: distinct keys do not share.
func TestFlightKeysIndependent(t *testing.T) {
	var f Flight
	var calls atomic.Int64
	for _, k := range []string{"a", "b"} {
		v, shared, err := f.Do(k, func() (any, error) {
			calls.Add(1)
			return k, nil
		})
		if err != nil || shared || v != k {
			t.Fatalf("Do(%q) = %v, %v, %v", k, v, shared, err)
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("fn ran %d times, want 2", calls.Load())
	}
}

// TestFlightErrorNotSticky: a failed leader does not poison the key; the
// next call runs fn again.
func TestFlightErrorNotSticky(t *testing.T) {
	var f Flight
	boom := errors.New("boom")
	if _, _, err := f.Do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want boom", err)
	}
	v, _, err := f.Do("k", func() (any, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %v, %v; want 7, nil", v, err)
	}
}

// TestFlightPanicReleasesFollowers: a panicking leader must not strand
// followers on the done channel.
func TestFlightPanicReleasesFollowers(t *testing.T) {
	var f Flight
	gate := make(chan struct{})
	joined := make(chan struct{})
	f.testHookFollower = func(string) { close(joined) }
	go func() {
		defer func() { recover() }()
		f.Do("k", func() (any, error) {
			close(gate)
			<-joined // follower is committed to waiting on us
			panic("leader exploded")
		})
	}()
	<-gate
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Do("k", func() (any, error) { return nil, nil })
	}()
	<-done // must not hang
}
