package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minic"
)

func runFunctional(t *testing.T, w Workload, tc Toolchain) *emu.Emulator {
	t.Helper()
	p, err := Build(w, tc)
	if err != nil {
		t.Fatalf("Build(%s, %s): %v", w.Name, tc.Name, err)
	}
	e := emu.New(p)
	e.MaxInsts = 200_000_000
	if err := e.Run(); err != nil {
		t.Fatalf("Run(%s, %s): %v\noutput: %q", w.Name, tc.Name, err, e.Out.String())
	}
	return e
}

func TestSuiteComplete(t *testing.T) {
	ws := All()
	if len(ws) != 19 {
		t.Fatalf("suite has %d workloads, want 19", len(ws))
	}
	ints, fps := 0, 0
	for _, w := range ws {
		if w.Class == Int {
			ints++
		} else {
			fps++
		}
		if w.Expected == "" || w.Source == "" || w.Analogue == "" {
			t.Errorf("%s: incomplete workload definition", w.Name)
		}
	}
	if ints != 10 || fps != 9 {
		t.Errorf("class split = %d int, %d fp; want 10/9", ints, fps)
	}
	// Integer programs come first, as in the paper's tables.
	for i := 1; i < len(ws); i++ {
		if ws[i-1].Class == FP && ws[i].Class == Int {
			t.Error("ordering: FP before Int")
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("compress")
	if err != nil || w.Name != "compress" {
		t.Errorf("ByName(compress) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != 19 {
		t.Error("Names() length wrong")
	}
}

// TestOutputsBaseToolchain pins every workload's checksum under the stock
// toolchain.
func TestOutputsBaseToolchain(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			e := runFunctional(t, w, BaseToolchain())
			if got := e.Out.String(); got != w.Expected {
				t.Errorf("output = %q, want %q", got, w.Expected)
			}
			if e.ExitCode != 0 {
				t.Errorf("exit code = %d", e.ExitCode)
			}
		})
	}
}

// TestOutputsInvariantAcrossToolchains: the software-support optimizations
// (and disabling strength reduction) must never change program results.
func TestOutputsInvariantAcrossToolchains(t *testing.T) {
	noSR := func(tc Toolchain) Toolchain {
		tc.Name += "-nosr"
		tc.Opts.StrengthReduce = false
		return tc
	}
	chains := []Toolchain{FACToolchain(), noSR(BaseToolchain()), noSR(FACToolchain())}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, tc := range chains {
				e := runFunctional(t, w, tc)
				if got := e.Out.String(); got != w.Expected {
					t.Errorf("toolchain %s: output = %q, want %q", tc.Name, got, w.Expected)
				}
			}
		})
	}
}

func TestToolchainOptionWiring(t *testing.T) {
	base := BaseToolchain()
	if base.Opts.AlignStack || base.Link.AlignGP || base.Opts.MallocAlign != 8 {
		t.Errorf("base toolchain has FAC options: %+v", base.Opts)
	}
	if !base.Opts.StrengthReduce {
		t.Error("base toolchain must optimize (strength reduction on)")
	}
	fac := FACToolchain()
	if !fac.Opts.AlignStack || !fac.Opts.AlignStatics || !fac.Opts.AlignStructs ||
		!fac.Link.AlignGP || fac.Opts.MallocAlign != 32 {
		t.Errorf("fac toolchain missing options: %+v", fac.Opts)
	}
}

func TestBuildErrorsSurface(t *testing.T) {
	w := Workload{Name: "bad", Source: "int main() { return x; }"}
	if _, err := Build(w, BaseToolchain()); err == nil {
		t.Error("Build of broken source succeeded")
	}
	_ = minic.BaseOptions() // keep import for the options sanity check above
}

// TestEncodedTextDecodesBack: for every workload binary, the encoded text
// words decode to exactly the linked instruction stream — the binary image
// is a faithful alternate representation.
func TestEncodedTextDecodesBack(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			p, err := Build(w, FACToolchain())
			if err != nil {
				t.Fatal(err)
			}
			for i, word := range p.Words {
				pc := p.TextBase + uint32(i*4)
				in, err := isa.Decode(word, pc)
				if err != nil {
					t.Fatalf("word %d (%#08x): %v", i, word, err)
				}
				if in != p.Insts[i] {
					t.Fatalf("word %d: decoded %+v, linked %+v", i, in, p.Insts[i])
				}
			}
		})
	}
}
