package workload

// Floating-point benchmarks: analogues of the paper's FP codes, exercising
// double-precision array sweeps (stencil, filter, dense algebra), indirect
// indexing (sparse algebra), recursion-free compute loops (Monte Carlo),
// and struct-of-double physics (n-body).

func init() {
	register(Workload{
		Name:     "stencil",
		Analogue: "Tomcatv: 2D relaxation sweeps over double grids",
		Class:    FP,
		Source:   srcStencil,
		Expected: "stencil ok 50 5085\n",
	})
	register(Workload{
		Name:     "nbody",
		Analogue: "Doduc/Mdljdp2: particle simulation over structs of doubles",
		Class:    FP,
		Source:   srcNbody,
		Expected: "nbody ok 31 832\n",
	})
	register(Workload{
		Name:     "fir",
		Analogue: "Ear: FIR filtering of a generated signal",
		Class:    FP,
		Source:   srcFir,
		Expected: "fir ok 4064 62752\n",
	})
	register(Workload{
		Name:     "mcarlo",
		Analogue: "Ora: Monte-Carlo integration",
		Class:    FP,
		Source:   srcMcarlo,
		Expected: "mcarlo ok 32618 20000\n",
	})
	register(Workload{
		Name:     "matmul",
		Analogue: "Su2cor: dense matrix algebra",
		Class:    FP,
		Source:   srcMatmul,
		Expected: "matmul ok 32 38376\n",
	})
	register(Workload{
		Name:     "sparse",
		Analogue: "Spice: sparse matrix-vector products with index arrays",
		Class:    FP,
		Source:   srcSparse,
		Expected: "sparse ok 400 12414\n",
	})
}

const srcStencil = `
/* 5-point relaxation on a 48x48 double grid. Row size is not a power of
   two, so index scaling needs real multiplies (strength reduction of the
   outer subscript fails, as in the paper's Tomcatv discussion). */
double g[48][48];
double h[48][48];

int main() {
	int i; int j; int sweep;
	double acc;
	int scaled;
	for (i = 0; i < 48; i = i + 1) {
		for (j = 0; j < 48; j = j + 1) {
			g[i][j] = (i * 7 + j * 3) % 23;
			h[i][j] = 0.0;
		}
	}
	for (sweep = 0; sweep < 12; sweep = sweep + 1) {
		for (i = 1; i < 47; i = i + 1) {
			for (j = 1; j < 47; j = j + 1) {
				h[i][j] = (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]) * 0.25;
			}
		}
		for (i = 1; i < 47; i = i + 1) {
			for (j = 1; j < 47; j = j + 1) {
				g[i][j] = (h[i][j] + g[i][j]) * 0.5;
			}
		}
	}
	acc = 0.0;
	for (i = 0; i < 48; i = i + 1) {
		acc = acc + g[i][i];
	}
	scaled = acc * 10.0;
	print_str("stencil ok ");
	print_int((scaled / 100) % 100); print_char(' ');
	print_int(scaled);
	print_char(10);
	return 0;
}
`

const srcNbody = `
/* Softened-gravity n-body with velocity Verlet-ish stepping. */
struct body {
	double x; double y; double z;
	double vx; double vy; double vz;
	double m;
};
struct body bodies[32];

double mysqrt(double v) {
	double r; int i;
	if (v <= 0.0) { return 0.0; }
	r = v;
	if (r > 1.0) { r = v * 0.5 + 0.5; }
	for (i = 0; i < 12; i = i + 1) {
		r = (r + v / r) * 0.5;
	}
	return r;
}

int main() {
	int i; int j; int step; int alive; int scaled;
	double dx; double dy; double dz; double d2; double f; double dist;
	double ke;
	srand(17);
	for (i = 0; i < 32; i = i + 1) {
		bodies[i].x = (rand() % 1000) * 0.01;
		bodies[i].y = (rand() % 1000) * 0.01;
		bodies[i].z = (rand() % 1000) * 0.01;
		bodies[i].vx = 0.0;
		bodies[i].vy = 0.0;
		bodies[i].vz = 0.0;
		bodies[i].m = 1.0 + (rand() % 100) * 0.01;
	}
	for (step = 0; step < 8; step = step + 1) {
		for (i = 0; i < 32; i = i + 1) {
			for (j = 0; j < 32; j = j + 1) {
				if (i != j) {
					dx = bodies[j].x - bodies[i].x;
					dy = bodies[j].y - bodies[i].y;
					dz = bodies[j].z - bodies[i].z;
					d2 = dx * dx + dy * dy + dz * dz + 0.1;
					dist = mysqrt(d2);
					f = 0.001 * bodies[j].m / (d2 * dist);
					bodies[i].vx = bodies[i].vx + dx * f;
					bodies[i].vy = bodies[i].vy + dy * f;
					bodies[i].vz = bodies[i].vz + dz * f;
				}
			}
		}
		for (i = 0; i < 32; i = i + 1) {
			bodies[i].x = bodies[i].x + bodies[i].vx;
			bodies[i].y = bodies[i].y + bodies[i].vy;
			bodies[i].z = bodies[i].z + bodies[i].vz;
		}
	}
	ke = 0.0;
	alive = 0;
	for (i = 0; i < 32; i = i + 1) {
		double v2;
		v2 = bodies[i].vx * bodies[i].vx + bodies[i].vy * bodies[i].vy + bodies[i].vz * bodies[i].vz;
		ke = ke + 0.5 * bodies[i].m * v2;
		if (v2 > 0.0) { alive = alive + 1; }
	}
	scaled = ke * 100000.0;
	print_str("nbody ok ");
	print_int(alive - 1); print_char(' ');
	print_int(scaled % 100000);
	print_char(10);
	return 0;
}
`

const srcFir = `
/* 32-tap FIR filter over a 4096-sample generated signal. */
double signal[4096];
double coef[32];
double outsig[4096];

int main() {
	int i; int k; int n; int scaled;
	double acc; double energy;
	srand(8);
	n = 4096;
	for (i = 0; i < n; i = i + 1) {
		signal[i] = ((rand() % 2000) - 1000) * 0.001;
	}
	for (k = 0; k < 32; k = k + 1) {
		coef[k] = 0.03125 * (1.0 + 0.1 * (k % 5));
	}
	for (i = 0; i + 32 <= n; i = i + 1) {
		acc = 0.0;
		for (k = 0; k < 32; k = k + 1) {
			acc = acc + signal[i + k] * coef[k];
		}
		outsig[i] = acc;
	}
	energy = 0.0;
	for (i = 0; i < n; i = i + 1) {
		energy = energy + outsig[i] * outsig[i];
	}
	scaled = energy * 1000.0;
	print_str("fir ok ");
	print_int(n - 32); print_char(' ');
	print_int(scaled);
	print_char(10);
	return 0;
}
`

const srcMcarlo = `
/* Monte-Carlo estimate of pi: tight scalar FP loop, no memory traffic in
   the kernel beyond globals. */
int main() {
	int i; int inside; int trials; int scaled;
	double x; double y; double pi;
	srand(424242);
	trials = 20000;
	inside = 0;
	for (i = 0; i < trials; i = i + 1) {
		x = (rand() % 10000) * 0.0001;
		y = (rand() % 10000) * 0.0001;
		if (x * x + y * y < 1.0) {
			inside = inside + 1;
		}
	}
	pi = 4.0 * inside / trials;
	scaled = pi * 10000.0;
	print_str("mcarlo ok ");
	print_int(scaled); print_char(' ');
	print_int(trials);
	print_char(10);
	return 0;
}
`

const srcMatmul = `
/* 32x32 double matrix multiply. */
double A[32][32];
double B[32][32];
double C[32][32];

int main() {
	int i; int j; int k; int scaled;
	double acc; double trace;
	for (i = 0; i < 32; i = i + 1) {
		for (j = 0; j < 32; j = j + 1) {
			A[i][j] = ((i * 31 + j * 17) % 13) * 0.25;
			B[i][j] = ((i * 5 + j * 29) % 11) * 0.5;
		}
	}
	for (i = 0; i < 32; i = i + 1) {
		for (j = 0; j < 32; j = j + 1) {
			acc = 0.0;
			for (k = 0; k < 32; k = k + 1) {
				acc = acc + A[i][k] * B[k][j];
			}
			C[i][j] = acc;
		}
	}
	trace = 0.0;
	for (i = 0; i < 32; i = i + 1) {
		trace = trace + C[i][i];
	}
	scaled = trace * 10.0;
	print_str("matmul ok ");
	print_int(32); print_char(' ');
	print_int(scaled);
	print_char(10);
	return 0;
}
`

const srcSparse = `
/* Sparse matrix-vector products in CSR form: the value loads are indexed
   through a column array, so subscripts cannot be strength-reduced and the
   accesses use register+register addressing, as in Spice. */
double val[3600];
int colidx[3600];
int rowptr[401];
double x[400];
double y[400];

int main() {
	int i; int k; int r; int nnz; int iter; int scaled;
	double acc; double norm;
	srand(2025);
	nnz = 0;
	for (r = 0; r < 400; r = r + 1) {
		int cnt;
		rowptr[r] = nnz;
		cnt = 5 + (rand() & 7);
		for (k = 0; k < cnt; k = k + 1) {
			if (nnz < 3600) {
				colidx[nnz] = rand() % 400;
				val[nnz] = 0.001 * (1 + rand() % 999);
				nnz = nnz + 1;
			}
		}
	}
	rowptr[400] = nnz;
	for (i = 0; i < 400; i = i + 1) {
		x[i] = 1.0 + (i % 7) * 0.125;
	}
	for (iter = 0; iter < 10; iter = iter + 1) {
		for (r = 0; r < 400; r = r + 1) {
			acc = 0.0;
			for (k = rowptr[r]; k < rowptr[r + 1]; k = k + 1) {
				acc = acc + val[k] * x[colidx[k]];
			}
			y[r] = acc;
		}
		for (i = 0; i < 400; i = i + 1) {
			x[i] = 0.5 * x[i] + 0.1 * y[i] / (1.0 + 0.01 * (i % 10));
		}
	}
	norm = 0.0;
	for (i = 0; i < 400; i = i + 1) {
		norm = norm + x[i] * x[i];
	}
	scaled = norm * 100.0;
	print_str("sparse ok ");
	print_int(400); print_char(' ');
	print_int(scaled % 100000);
	print_char(10);
	return 0;
}
`
