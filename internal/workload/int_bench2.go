package workload

// Second wave of integer benchmarks, widening the suite toward the paper's
// ten integer codes.

func init() {
	register(Workload{
		Name:     "huffman",
		Analogue: "Compress/Eqntott: Huffman coding — tree building and bit packing",
		Class:    Int,
		Source:   srcHuffman,
		Expected: "huffman ok 38685 40 133497\n",
	})
	register(Workload{
		Name:     "tsp",
		Analogue: "Sc/YACR-2: combinatorial optimization (nearest neighbour + 2-opt)",
		Class:    Int,
		Source:   srcTsp,
		Expected: "tsp ok 1 441622 1\n",
	})
	register(Workload{
		Name:     "life",
		Analogue: "Espresso: dense 2D table updates (cellular automaton)",
		Class:    Int,
		Source:   srcLife,
		Expected: "life ok 765 56748\n",
	})
}

const srcHuffman = `
/* Huffman coding: frequency counting, array-based tree construction by
   repeated minimum extraction, and bit-level encoding of the text. */
char text[8192];
int freq[512];
int left[512];
int right[512];
int parent[512];
int codelen[256];
int codebits[256];
char outbuf[16384];

void gentext(int n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		int r;
		r = rand() % 100;
		if (r < 40) { text[i] = 'e' - (r % 5); }
		else {
			if (r < 75) { text[i] = 'a' + (r % 16); }
			else { text[i] = 'A' + (r % 26); }
		}
	}
}

int main() {
	int i; int n; int nodes; int a; int b;
	int outbits; int csum; int depth; int node;
	srand(77);
	n = 8192;
	gentext(n);
	for (i = 0; i < 512; i = i + 1) {
		freq[i] = 0; left[i] = -1; right[i] = -1; parent[i] = -1;
	}
	for (i = 0; i < n; i = i + 1) {
		freq[text[i]] = freq[text[i]] + 1;
	}
	/* Build the tree: nodes 0..255 are leaves; repeatedly join the two
	   smallest live roots. */
	nodes = 256;
	while (1) {
		a = -1; b = -1;
		for (i = 0; i < nodes; i = i + 1) {
			if (freq[i] > 0 && parent[i] < 0) {
				if (a < 0 || freq[i] < freq[a]) { b = a; a = i; }
				else {
					if (b < 0 || freq[i] < freq[b]) { b = i; }
				}
			}
		}
		if (b < 0) { break; }
		left[nodes] = a; right[nodes] = b;
		freq[nodes] = freq[a] + freq[b];
		parent[a] = nodes; parent[b] = nodes;
		nodes = nodes + 1;
	}
	/* Extract code lengths and (reversed) bit patterns per symbol. */
	for (i = 0; i < 256; i = i + 1) {
		codelen[i] = 0; codebits[i] = 0;
		if (freq[i] > 0) {
			depth = 0;
			node = i;
			while (parent[node] >= 0) {
				codebits[i] = codebits[i] * 2 + (right[parent[node]] == node);
				depth = depth + 1;
				node = parent[node];
			}
			codelen[i] = depth;
			if (depth == 0) { codelen[i] = 1; }
		}
	}
	/* Encode. */
	outbits = 0;
	for (i = 0; i < n; i = i + 1) {
		int c; int k;
		c = text[i];
		for (k = 0; k < codelen[c]; k = k + 1) {
			int bit; int byteidx;
			bit = (codebits[c] >> k) & 1;
			byteidx = outbits >> 3;
			outbuf[byteidx] = outbuf[byteidx] | (bit << (outbits & 7));
			outbits = outbits + 1;
		}
	}
	csum = 0;
	for (i = 0; i < (outbits >> 3); i = i + 1) {
		csum = (csum * 31 + outbuf[i]) & 1048575;
	}
	print_str("huffman ok ");
	print_int(outbits); print_char(' ');
	print_int(nodes - 256); print_char(' ');
	print_int(csum);
	print_char(10);
	return 0;
}
`

const srcTsp = `
/* Travelling salesman: nearest-neighbour construction then 2-opt
   improvement, on squared integer distances. */
int xs[90];
int ys[90];
int tour[90];
int used[90];

int dist2(int i, int j) {
	int dx; int dy;
	dx = xs[i] - xs[j];
	dy = ys[i] - ys[j];
	return dx * dx + dy * dy;
}

int tourlen() {
	int i; int sum;
	sum = 0;
	for (i = 0; i < 89; i = i + 1) {
		sum = sum + dist2(tour[i], tour[i + 1]);
	}
	return sum + dist2(tour[89], tour[0]);
}

int main() {
	int i; int j; int cur; int best; int bestd; int n;
	int improved; int pass; int before; int after;
	srand(4242);
	n = 90;
	for (i = 0; i < n; i = i + 1) {
		xs[i] = rand() % 1000;
		ys[i] = rand() % 1000;
		used[i] = 0;
	}
	/* Nearest neighbour. */
	cur = 0;
	used[0] = 1;
	tour[0] = 0;
	for (i = 1; i < n; i = i + 1) {
		best = -1; bestd = 0;
		for (j = 0; j < n; j = j + 1) {
			if (!used[j]) {
				int d;
				d = dist2(cur, j);
				if (best < 0 || d < bestd) { best = j; bestd = d; }
			}
		}
		tour[i] = best;
		used[best] = 1;
		cur = best;
	}
	before = tourlen();
	/* 2-opt passes: reverse segments that shorten the tour. */
	for (pass = 0; pass < 4; pass = pass + 1) {
		improved = 0;
		for (i = 0; i < n - 2; i = i + 1) {
			for (j = i + 2; j < n - 1; j = j + 1) {
				int d1; int d2;
				d1 = dist2(tour[i], tour[i + 1]) + dist2(tour[j], tour[j + 1]);
				d2 = dist2(tour[i], tour[j]) + dist2(tour[i + 1], tour[j + 1]);
				if (d2 < d1) {
					int lo; int hi;
					lo = i + 1; hi = j;
					while (lo < hi) {
						int t;
						t = tour[lo]; tour[lo] = tour[hi]; tour[hi] = t;
						lo = lo + 1; hi = hi - 1;
					}
					improved = 1;
				}
			}
		}
		if (!improved) { break; }
	}
	after = tourlen();
	print_str("tsp ok ");
	print_int(before > after); print_char(' ');
	print_int(after % 1000000); print_char(' ');
	print_int(tour[0] == 0);
	print_char(10);
	return 0;
}
`

const srcLife = `
/* Conway's game of life on a 64x64 toroidal grid. */
char grid[64][64];
char next[64][64];

int main() {
	int x; int y; int gen; int pop; int csum;
	srand(1001);
	for (y = 0; y < 64; y = y + 1) {
		for (x = 0; x < 64; x = x + 1) {
			grid[y][x] = (rand() % 100) < 35;
		}
	}
	for (gen = 0; gen < 12; gen = gen + 1) {
		for (y = 0; y < 64; y = y + 1) {
			int ym; int yp;
			ym = (y + 63) & 63;
			yp = (y + 1) & 63;
			for (x = 0; x < 64; x = x + 1) {
				int xm; int xp; int nbr;
				xm = (x + 63) & 63;
				xp = (x + 1) & 63;
				nbr = grid[ym][xm] + grid[ym][x] + grid[ym][xp]
				    + grid[y][xm] + grid[y][xp]
				    + grid[yp][xm] + grid[yp][x] + grid[yp][xp];
				if (grid[y][x]) {
					next[y][x] = nbr == 2 || nbr == 3;
				} else {
					next[y][x] = nbr == 3;
				}
			}
		}
		for (y = 0; y < 64; y = y + 1) {
			for (x = 0; x < 64; x = x + 1) {
				grid[y][x] = next[y][x];
			}
		}
	}
	pop = 0;
	csum = 0;
	for (y = 0; y < 64; y = y + 1) {
		for (x = 0; x < 64; x = x + 1) {
			pop = pop + grid[y][x];
			csum = (csum * 2 + grid[y][x]) % 65521;
		}
	}
	print_str("life ok ");
	print_int(pop); print_char(' ');
	print_int(csum);
	print_char(10);
	return 0;
}
`
