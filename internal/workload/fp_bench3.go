package workload

// Third wave of floating-point benchmarks, completing the suite at the
// paper's count of 19 programs (10 integer, 9 FP).

func init() {
	register(Workload{
		Name:     "ode",
		Analogue: "Mdljsp2: explicit ODE integration (4th-order Runge-Kutta)",
		Class:    FP,
		Source:   srcOde,
		Expected: "ode ok 2000 34813\n",
	})
	register(Workload{
		Name:     "wave",
		Analogue: "Su2cor/Tomcatv: leapfrog integration of the 1D wave equation",
		Class:    FP,
		Source:   srcWave,
		Expected: "wave ok 180 15813\n",
	})
}

const srcOde = `
/* Runge-Kutta (RK4) integration of a damped oscillator system: heavy
   scalar double arithmetic with small state arrays. */
double ys[8];
double k1[8];
double k2[8];
double k3[8];
double k4[8];
double tmp[8];

/* dy/dt for 4 coupled damped oscillators: y'' = -k y - c y'. */
void deriv(double *y, double *dy) {
	int i;
	for (i = 0; i < 4; i++) {
		dy[i] = y[i + 4];
		dy[i + 4] = -(1.0 + 0.1 * i) * y[i] - 0.05 * y[i + 4];
	}
}

void axpy(double *out, double *y, double *k, double h) {
	int i;
	for (i = 0; i < 8; i++) {
		out[i] = y[i] + h * k[i];
	}
}

int main() {
	int step; int i; int scaled;
	double h; double energy;
	h = 0.01;
	for (i = 0; i < 4; i++) {
		ys[i] = 1.0 + 0.25 * i;
		ys[i + 4] = 0.0;
	}
	for (step = 0; step < 2000; step++) {
		deriv(ys, k1);
		axpy(tmp, ys, k1, h * 0.5);
		deriv(tmp, k2);
		axpy(tmp, ys, k2, h * 0.5);
		deriv(tmp, k3);
		axpy(tmp, ys, k3, h);
		deriv(tmp, k4);
		for (i = 0; i < 8; i++) {
			ys[i] = ys[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
		}
	}
	energy = 0.0;
	for (i = 0; i < 4; i++) {
		energy = energy + (1.0 + 0.1 * i) * ys[i] * ys[i] + ys[i + 4] * ys[i + 4];
	}
	scaled = energy * 10000.0;
	print_str("ode ok ");
	print_int(2000); print_char(' ');
	print_int(scaled);
	print_char(10);
	return 0;
}
`

const srcWave = `
/* Leapfrog integration of the 1D wave equation on a 512-point string with
   fixed ends: three double arrays swept in lockstep. */
double prev[512];
double cur[512];
double next[512];

int main() {
	int i; int step; int scaled;
	double c2; double energy;
	c2 = 0.25;
	for (i = 0; i < 512; i++) {
		prev[i] = 0.0;
		cur[i] = 0.0;
	}
	/* Initial pluck: a triangular displacement around one third. */
	for (i = 100; i < 172; i++) {
		double d;
		d = i < 136 ? (i - 100) * 1.0 : (171 - i) * 1.0;
		cur[i] = d * 0.03;
		prev[i] = cur[i];
	}
	for (step = 0; step < 180; step++) {
		for (i = 1; i < 511; i++) {
			next[i] = 2.0 * cur[i] - prev[i] + c2 * (cur[i - 1] - 2.0 * cur[i] + cur[i + 1]);
		}
		next[0] = 0.0;
		next[511] = 0.0;
		for (i = 0; i < 512; i++) {
			prev[i] = cur[i];
			cur[i] = next[i];
		}
	}
	energy = 0.0;
	for (i = 1; i < 511; i++) {
		double v; double dx;
		v = cur[i] - prev[i];
		dx = cur[i + 1] - cur[i];
		energy = energy + v * v + c2 * dx * dx;
	}
	scaled = energy * 1000000.0;
	print_str("wave ok ");
	print_int(180); print_char(' ');
	print_int(scaled);
	print_char(10);
	return 0;
}
`
