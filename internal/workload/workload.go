// Package workload provides the benchmark suite used throughout the
// reproduction. The paper evaluated 15 SPEC92 programs plus four other
// codes; those inputs and binaries are not reproducible here, so the suite
// substitutes MiniC programs spanning the same reference-behavior classes
// the paper's analysis depends on (Section 2): compression, logic
// minimization, recursive search, string matching, pointer-chasing hash
// tables (including a GCC-style domain-specific arena allocator), struct
// sorting, channel routing, and FP stencil / n-body / filter / Monte-Carlo
// / dense and sparse linear algebra kernels. Every program prints a
// checksum that the validation tests pin.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/minic"
	"repro/internal/prog"
)

// Class tags a workload as integer or floating-point, mirroring the paper's
// grouping when averaging results.
type Class uint8

const (
	Int Class = iota
	FP
)

func (c Class) String() string {
	if c == FP {
		return "fp"
	}
	return "int"
}

// Workload is one benchmark program.
type Workload struct {
	Name string
	// Analogue names the paper benchmark(s) whose reference behaviour this
	// program stands in for.
	Analogue string
	Class    Class
	Source   string
	// Expected is the program's full output (checksum); runs are validated
	// against it.
	Expected string
}

var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns the full suite, integer programs first (the paper's table
// ordering), each class alphabetical.
func All() []Workload {
	out := append([]Workload(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName returns one workload.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the suite's benchmark names in All() order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// Toolchain bundles compiler options with the matching linker config: the
// two halves of the paper's "software support" axis.
type Toolchain struct {
	Name string
	Opts minic.Options
	Link prog.Config
}

// BaseToolchain is the paper's stock GCC 2.6 analogue: optimizing, no
// fast-address-calculation alignment support.
func BaseToolchain() Toolchain {
	return Toolchain{Name: "base", Opts: minic.BaseOptions(), Link: prog.DefaultConfig()}
}

// FACToolchain enables all Section 4 software support (compiler alignment
// options plus linker global-pointer alignment).
func FACToolchain() Toolchain {
	link := prog.DefaultConfig()
	link.AlignGP = true
	return Toolchain{Name: "fac", Opts: minic.FACOptions(), Link: link}
}

// Build compiles and links a workload with the given toolchain.
func Build(w Workload, tc Toolchain) (*prog.Program, error) {
	asmText, err := minic.Compile(w.Source, tc.Opts)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	obj, err := asm.Assemble(asmText)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	p, err := prog.Link(obj, tc.Link)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}
