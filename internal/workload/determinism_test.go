package workload

import (
	"encoding/json"
	"testing"
)

// TestBuildDeterministic: building the same workload twice produces an
// identical program — instruction for instruction, symbol for symbol.
// The toolchain once leaked map-iteration order into literal-pool layout
// and strength-reduction rewrite order, which moved data addresses and
// changed simulated timing from build to build; this pins the fix. Byte
// determinism is also what makes the content-addressed result cache
// (internal/simsvc) safe: the cache key hashes the source, not the
// build, so two builds of one source must time identically.
func TestBuildDeterministic(t *testing.T) {
	for _, w := range All() {
		for _, tc := range []struct {
			name string
			tc   Toolchain
		}{{"base", BaseToolchain()}, {"fac", FACToolchain()}} {
			p1, err := Build(w, tc.tc)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, tc.name, err)
			}
			p2, err := Build(w, tc.tc)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, tc.name, err)
			}
			b1, err := json.Marshal(p1)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := json.Marshal(p2)
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Errorf("%s/%s: two builds of the same source differ", w.Name, tc.name)
			}
		}
	}
}
