package workload

// Second wave of floating-point benchmarks.

func init() {
	register(Workload{
		Name:     "dct",
		Analogue: "Ear: 8x8 block DCT over an image (coefficient tables from a series-evaluated cosine)",
		Class:    FP,
		Source:   srcDct,
		Expected: "dct ok 16 30001\n",
	})
}

const srcDct = `
/* 2D 8x8 discrete cosine transform over a 32x32 synthetic image. The
   cosine table is computed in-program with range reduction plus a Taylor
   series (the runtime has no math library, as on the paper's target). */
double ctab[8][8];
double img[32][32];
double coef[32][32];
double tmp[8][8];

double mycos(double x) {
	double x2; double term; double sum; int k;
	/* Range-reduce into [-pi, pi]. */
	while (x > 3.14159265358979) { x = x - 6.28318530717959; }
	while (x < -3.14159265358979) { x = x + 6.28318530717959; }
	x2 = x * x;
	term = 1.0;
	sum = 1.0;
	for (k = 1; k <= 8; k = k + 1) {
		term = -term * x2 / ((2 * k - 1) * (2 * k));
		sum = sum + term;
	}
	return sum;
}

int main() {
	int u; int v; int x; int y; int bx; int by; int scaled;
	double acc; double energy;
	/* DCT basis: ctab[u][x] = cos((2x+1) u pi / 16). */
	for (u = 0; u < 8; u = u + 1) {
		for (x = 0; x < 8; x = x + 1) {
			ctab[u][x] = mycos((2 * x + 1) * u * 0.19634954084936);
		}
	}
	srand(300);
	for (y = 0; y < 32; y = y + 1) {
		for (x = 0; x < 32; x = x + 1) {
			img[y][x] = ((rand() % 256) - 128) * 0.0078125;
		}
	}
	/* Per 8x8 block: rows then columns. */
	for (by = 0; by < 4; by = by + 1) {
		for (bx = 0; bx < 4; bx = bx + 1) {
			for (u = 0; u < 8; u = u + 1) {
				for (y = 0; y < 8; y = y + 1) {
					acc = 0.0;
					for (x = 0; x < 8; x = x + 1) {
						acc = acc + img[by * 8 + y][bx * 8 + x] * ctab[u][x];
					}
					tmp[y][u] = acc;
				}
			}
			for (u = 0; u < 8; u = u + 1) {
				for (v = 0; v < 8; v = v + 1) {
					acc = 0.0;
					for (y = 0; y < 8; y = y + 1) {
						acc = acc + tmp[y][v] * ctab[u][y];
					}
					coef[by * 8 + u][bx * 8 + v] = acc * 0.0625;
				}
			}
		}
	}
	energy = 0.0;
	for (y = 0; y < 32; y = y + 1) {
		for (x = 0; x < 32; x = x + 1) {
			energy = energy + coef[y][x] * coef[y][x];
		}
	}
	scaled = energy * 1000.0;
	print_str("dct ok ");
	print_int(16); print_char(' ');
	print_int(scaled);
	print_char(10);
	return 0;
}
`
