package workload

// Integer benchmarks. Each stands in for one or more of the paper's integer
// codes, matched on reference behaviour rather than function: what matters
// to fast address calculation is the mix of global/stack/general-pointer
// addressing, offset sizes, and pointer alignment.

func init() {
	register(Workload{
		Name:     "compress",
		Analogue: "Compress (SPEC92): LZW compression, hashed dictionary",
		Class:    Int,
		Source:   srcCompress,
		Expected: "compress ok 3542 1771 26232\n",
	})
	register(Workload{
		Name:     "eqn",
		Analogue: "Eqntott/Espresso: bit-vector boolean function manipulation",
		Class:    Int,
		Source:   srcEqn,
		Expected: "eqn ok 4096 62043 7055\n",
	})
	register(Workload{
		Name:     "qsortst",
		Analogue: "Sc: record sorting and searching over structs",
		Class:    Int,
		Source:   srcQsortSt,
		Expected: "qsortst ok 1 60066 1000\n",
	})
	register(Workload{
		Name:     "queens",
		Analogue: "Xlisp (li-input: queens): recursion and stack traffic",
		Class:    Int,
		Source:   srcQueens,
		Expected: "queens ok 352\n",
	})
	register(Workload{
		Name:     "match",
		Analogue: "Grep/Elvis: string scanning and replacement",
		Class:    Int,
		Source:   srcMatch,
		Expected: "match ok 168 1696 4744616\n",
	})
	register(Workload{
		Name:     "hashp",
		Analogue: "Perl/GCC: pointer-chasing hash table over an arena allocator",
		Class:    Int,
		Source:   srcHashp,
		Expected: "hashp ok 1007 1031216 -1986\n",
	})
	register(Workload{
		Name:     "route",
		Analogue: "YACR-2: channel routing (interval track assignment)",
		Class:    Int,
		Source:   srcRoute,
		Expected: "route ok 46 65927\n",
	})
}

const srcCompress = `
/* LZW compression with a hashed dictionary, 12-bit codes. */
char text[12288];
char outbuf[24576];
int dict_key[8192];
int dict_code[8192];
int words[8];

void gentext(int n) {
	int i; int w; int j; int len;
	char *p;
	i = 0;
	while (i < n - 12) {
		w = rand() & 7;
		len = 3 + (w & 3);
		for (j = 0; j < len; j = j + 1) {
			text[i] = 'a' + ((words[w] >> (j * 3)) & 7);
			i = i + 1;
		}
		text[i] = ' ';
		i = i + 1;
	}
	while (i < n) { text[i] = '.'; i = i + 1; }
}

int main() {
	int i; int n; int w; int c; int next; int h; int key;
	int outlen; int csum; int codes;
	srand(1234);
	for (i = 0; i < 8; i = i + 1) { words[i] = rand(); }
	n = 12288;
	gentext(n);
	for (i = 0; i < 8192; i = i + 1) { dict_key[i] = -1; }
	next = 256;
	outlen = 0;
	codes = 0;
	w = text[0];
	for (i = 1; i < n; i = i + 1) {
		c = text[i];
		key = w * 256 + c;
		h = (key * 31) & 8191;
		while (dict_key[h] != -1 && dict_key[h] != key) {
			h = (h + 1) & 8191;
		}
		if (dict_key[h] == key) {
			w = dict_code[h];
		} else {
			outbuf[outlen] = w >> 4;
			outbuf[outlen + 1] = (w & 15) * 16;
			outlen = outlen + 2;
			codes = codes + 1;
			if (next < 4096) {
				dict_key[h] = key;
				dict_code[h] = next;
				next = next + 1;
			}
			w = c;
		}
	}
	csum = 0;
	for (i = 0; i < outlen; i = i + 1) {
		csum = (csum + outbuf[i] * (i & 255)) & 65535;
	}
	print_str("compress ok ");
	print_int(outlen); print_char(' ');
	print_int(codes); print_char(' ');
	print_int(csum);
	print_char(10);
	return 0;
}
`

const srcEqn = `
/* Bit-vector manipulation of boolean functions over 16 variables:
   build covers, apply set operations, count minterms. */
int fa[2048];
int fb[2048];
int fc[2048];
int tmp[2048];

int popcount(int *v, int n) {
	int i; int x; int count;
	count = 0;
	for (i = 0; i < n; i = i + 1) {
		x = v[i];
		while (x) {
			x = x & (x - 1);
			count = count + 1;
		}
	}
	return count;
}

int main() {
	int i; int pass; int ones; int agree; int total;
	srand(7);
	for (i = 0; i < 2048; i = i + 1) {
		fa[i] = rand() * 65536 + rand();
		fb[i] = rand() * 65536 + rand();
	}
	total = 0;
	for (pass = 0; pass < 6; pass = pass + 1) {
		for (i = 0; i < 2048; i = i + 1) {
			fc[i] = fa[i] & fb[i];
		}
		for (i = 0; i < 2048; i = i + 1) {
			tmp[i] = (fa[i] | fb[i]) ^ fc[i];
		}
		ones = popcount(tmp, 2048);
		total = (total + ones) & 65535;
		for (i = 0; i < 2048; i = i + 1) {
			fa[i] = fa[i] ^ (tmp[i] >> 1);
			fb[i] = fb[i] | (fc[i] << 1);
		}
	}
	agree = 0;
	for (i = 0; i < 2048; i = i + 1) {
		if ((fa[i] & fb[i]) == fc[i]) { agree = agree + 1; }
		else { agree = agree + (fa[i] == fb[i]); }
	}
	print_str("eqn ok ");
	print_int(2048 * 2 / 2 * 2); print_char(' ');
	print_int(total); print_char(' ');
	print_int(agree + popcount(fc, 2048) % 10000);
	print_char(10);
	return 0;
}
`

const srcQsortSt = `
/* Quicksort and binary search over an array of records. */
struct rec { int key; int val; int tag; };
struct rec recs[2000];

void swap(struct rec *a, struct rec *b) {
	int t;
	t = a->key; a->key = b->key; b->key = t;
	t = a->val; a->val = b->val; b->val = t;
	t = a->tag; a->tag = b->tag; b->tag = t;
}

void qs(int lo, int hi) {
	int i; int j; int pivot;
	if (lo >= hi) { return; }
	pivot = recs[(lo + hi) / 2].key;
	i = lo; j = hi;
	while (i <= j) {
		while (recs[i].key < pivot) { i = i + 1; }
		while (recs[j].key > pivot) { j = j - 1; }
		if (i <= j) {
			swap(&recs[i], &recs[j]);
			i = i + 1;
			j = j - 1;
		}
	}
	qs(lo, j);
	qs(i, hi);
}

int search(int key) {
	int lo; int hi; int mid;
	lo = 0; hi = 1999;
	while (lo <= hi) {
		mid = (lo + hi) / 2;
		if (recs[mid].key == key) { return mid; }
		if (recs[mid].key < key) { lo = mid + 1; }
		else { hi = mid - 1; }
	}
	return -1;
}

int main() {
	int i; int sorted; int found; int csum;
	srand(99);
	for (i = 0; i < 2000; i = i + 1) {
		recs[i].key = rand() * 4 + (rand() & 3);
		recs[i].val = i;
		recs[i].tag = rand() & 255;
	}
	qs(0, 1999);
	sorted = 1;
	for (i = 1; i < 2000; i = i + 1) {
		if (recs[i].key < recs[i - 1].key) { sorted = 0; }
	}
	found = 0;
	csum = 0;
	for (i = 0; i < 1000; i = i + 1) {
		int idx;
		idx = search(recs[(i * 7) % 2000].key);
		if (idx >= 0) { found = found + 1; csum = (csum + recs[idx].tag) & 65535; }
	}
	print_str("qsortst ok ");
	print_int(sorted); print_char(' ');
	print_int(csum + recs[0].key % 1000 + recs[1999].tag); print_char(' ');
	print_int(found);
	print_char(10);
	return 0;
}
`

const srcQueens = `
/* N-queens via recursive backtracking: deep call stacks, small frames. */
int cols[16];
int diag1[32];
int diag2[32];
int n;
int solutions;

void place(int row) {
	int c;
	if (row == n) {
		solutions = solutions + 1;
		return;
	}
	for (c = 0; c < n; c = c + 1) {
		if (!cols[c] && !diag1[row + c] && !diag2[row - c + n]) {
			cols[c] = 1; diag1[row + c] = 1; diag2[row - c + n] = 1;
			place(row + 1);
			cols[c] = 0; diag1[row + c] = 0; diag2[row - c + n] = 0;
		}
	}
}

int main() {
	n = 9;
	solutions = 0;
	place(0);
	print_str("queens ok ");
	print_int(solutions);
	print_char(10);
	return 0;
}
`

const srcMatch = `
/* Text scanning with literal pattern search and replacement. */
char text[8192];
char outbuf[16384];
char pats[4][8];

int main() {
	int i; int j; int k; int n; int hits; int outlen; int csum;
	int plen;
	char *p;
	srand(5);
	n = 8192;
	for (i = 0; i < n; i = i + 1) {
		text[i] = 'a' + (rand() % 6);
	}
	/* plant patterns */
	memcpy(&pats[0][0], "abca", 5);
	memcpy(&pats[1][0], "bddc", 5);
	memcpy(&pats[2][0], "cafe", 5);
	memcpy(&pats[3][0], "feed", 5);
	for (i = 0; i < 150; i = i + 1) {
		j = rand() % (n - 8);
		memcpy(&text[j], &pats[rand() & 3][0], 4);
	}
	hits = 0;
	outlen = 0;
	for (i = 0; i + 4 <= n; i = i + 1) {
		for (k = 0; k < 4; k = k + 1) {
			p = &pats[k][0];
			j = 0;
			while (j < 4 && text[i + j] == p[j]) { j = j + 1; }
			if (j == 4) {
				hits = hits + 1;
				/* replace: copy pattern uppercased into out */
				for (j = 0; j < 4; j = j + 1) {
					outbuf[outlen] = p[j] - 32;
					outlen = outlen + 1;
				}
			}
		}
		if ((i & 7) == 0) {
			outbuf[outlen] = text[i];
			outlen = outlen + 1;
		}
	}
	csum = 0;
	for (i = 0; i < outlen; i = i + 1) {
		csum = csum + outbuf[i] * ((i & 63) + 1);
	}
	print_str("match ok ");
	print_int(hits); print_char(' ');
	print_int(outlen); print_char(' ');
	print_int(csum);
	print_char(10);
	return 0;
}
`

const srcHashp = `
/* Chained hash table whose nodes come from a domain-specific arena
   allocator that packs allocations densely (the paper's GCC obstack
   pathology: word-aligned but never block-aligned pointers). */
struct entry { int key; int val; struct entry *next; };
struct entry *buckets[1024];
char pool[65536];
int poolpos;

char *arena(int nbytes) {
	char *p;
	p = &pool[poolpos];
	poolpos = poolpos + ((nbytes + 3) & ~3);
	return p;
}

void insert(int key, int val) {
	struct entry *e;
	int h;
	e = arena(sizeof(struct entry));
	h = (key * 2654435) & 1023;
	e->key = key;
	e->val = val;
	e->next = buckets[h];
	buckets[h] = e;
}

int lookup(int key) {
	struct entry *e;
	int h;
	h = (key * 2654435) & 1023;
	for (e = buckets[h]; e != 0; e = e->next) {
		if (e->key == key) { return e->val; }
	}
	return -1;
}

int main() {
	int i; int found; int csum; int misses;
	srand(2718);
	for (i = 0; i < 2000; i = i + 1) {
		insert(i * 3 + (rand() & 1), i);
	}
	found = 0; csum = 0; misses = 0;
	for (i = 0; i < 4000; i = i + 1) {
		int v;
		v = lookup((i * 3) % 6100);
		if (v >= 0) { found = found + 1; csum = (csum + v) & 1048575; }
		else { misses = misses + 1; }
	}
	print_str("hashp ok ");
	print_int(found); print_char(' ');
	print_int(csum + misses); print_char(' ');
	print_int(found - misses);
	print_char(10);
	return 0;
}
`

const srcRoute = `
/* Channel routing: greedy track assignment for intervals (YACR-2-like). */
int start[600];
int endc[600];
int track[600];
int lastend[64];
int order[600];

int main() {
	int i; int j; int t; int ntracks; int n; int csum;
	srand(31);
	n = 600;
	for (i = 0; i < n; i = i + 1) {
		start[i] = rand() % 900;
		endc[i] = start[i] + 1 + rand() % 80;
		order[i] = i;
	}
	/* insertion sort nets by start column */
	for (i = 1; i < n; i = i + 1) {
		int key; int oi;
		key = start[order[i]];
		oi = order[i];
		j = i - 1;
		while (j >= 0 && start[order[j]] > key) {
			order[j + 1] = order[j];
			j = j - 1;
		}
		order[j + 1] = oi;
	}
	for (t = 0; t < 64; t = t + 1) { lastend[t] = -1; }
	ntracks = 0;
	for (i = 0; i < n; i = i + 1) {
		int net;
		net = order[i];
		t = 0;
		while (t < 64 && lastend[t] >= start[net]) { t = t + 1; }
		if (t < 64) {
			track[net] = t;
			lastend[t] = endc[net];
			if (t + 1 > ntracks) { ntracks = t + 1; }
		} else {
			track[net] = -1;
		}
	}
	csum = 0;
	for (i = 0; i < n; i = i + 1) {
		if (track[i] >= 0) { csum = csum + track[i] * (i & 15); }
	}
	print_str("route ok ");
	print_int(ntracks); print_char(' ');
	print_int(csum);
	print_char(10);
	return 0;
}
`
