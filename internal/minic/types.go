package minic

import "fmt"

type typeKind uint8

const (
	tyVoid typeKind = iota
	tyInt
	tyChar
	tyDouble
	tyPtr
	tyArray
	tyStruct
)

// ctype is a MiniC type.
type ctype struct {
	kind typeKind
	elem *ctype   // pointer target / array element
	n    int      // array length
	sdef *structT // struct definition
}

type structT struct {
	name   string
	fields []field
	size   int // laid-out size (possibly padded to a power of two, §4)
	align  int
}

type field struct {
	name string
	ty   *ctype
	off  int
}

var (
	typeVoid   = &ctype{kind: tyVoid}
	typeInt    = &ctype{kind: tyInt}
	typeChar   = &ctype{kind: tyChar}
	typeDouble = &ctype{kind: tyDouble}
)

func ptrTo(t *ctype) *ctype { return &ctype{kind: tyPtr, elem: t} }
func arrayOf(t *ctype, n int) *ctype {
	return &ctype{kind: tyArray, elem: t, n: n}
}

func (t *ctype) String() string {
	switch t.kind {
	case tyVoid:
		return "void"
	case tyInt:
		return "int"
	case tyChar:
		return "char"
	case tyDouble:
		return "double"
	case tyPtr:
		return t.elem.String() + "*"
	case tyArray:
		return fmt.Sprintf("%s[%d]", t.elem, t.n)
	case tyStruct:
		return "struct " + t.sdef.name
	}
	return "?"
}

func (t *ctype) size() int {
	switch t.kind {
	case tyInt, tyPtr:
		return 4
	case tyChar:
		return 1
	case tyDouble:
		return 8
	case tyArray:
		return t.elem.size() * t.n
	case tyStruct:
		return t.sdef.size
	}
	return 0
}

func (t *ctype) alignment() int {
	switch t.kind {
	case tyInt, tyPtr:
		return 4
	case tyChar:
		return 1
	case tyDouble:
		return 8
	case tyArray:
		return t.elem.alignment()
	case tyStruct:
		return t.sdef.align
	}
	return 1
}

func (t *ctype) isNumeric() bool {
	return t.kind == tyInt || t.kind == tyChar || t.kind == tyDouble
}

func (t *ctype) isInteger() bool { return t.kind == tyInt || t.kind == tyChar }

func (t *ctype) isPtr() bool { return t.kind == tyPtr }

func (t *ctype) isScalar() bool {
	return t.isNumeric() || t.isPtr()
}

// decay converts array types to pointers (for expression contexts).
func (t *ctype) decay() *ctype {
	if t.kind == tyArray {
		return ptrTo(t.elem)
	}
	return t
}

// compatible reports whether a value of type b can be used where a is
// expected. Pointer types convert freely (the language has no casts);
// numeric types convert with the usual arithmetic conversions.
func compatible(a, b *ctype) bool {
	a, b = a.decay(), b.decay()
	if a.isNumeric() && b.isNumeric() {
		return true
	}
	if a.isPtr() && b.isPtr() {
		return true
	}
	if a.isPtr() && b.isInteger() { // p = 0
		return true
	}
	if a.isInteger() && b.isPtr() {
		return true
	}
	if a.kind == tyStruct && b.kind == tyStruct && a.sdef == b.sdef {
		return true
	}
	return false
}

// layoutStruct assigns field offsets. With pow2Pad (the paper's structured
// variable alignment support), the struct size is rounded up to the next
// power of two, with the overhead capped at maxPad bytes; internal field
// offsets are never changed (dense structures beat stricter internal
// alignment, Section 4).
func layoutStruct(s *structT, pow2Pad bool, maxPad int) {
	off := 0
	align := 1
	for i := range s.fields {
		f := &s.fields[i]
		a := f.ty.alignment()
		if a > align {
			align = a
		}
		off = alignInt(off, a)
		f.off = off
		off += f.ty.size()
	}
	s.align = align
	s.size = alignInt(off, align)
	if pow2Pad {
		p := 1
		for p < s.size {
			p <<= 1
		}
		if p-s.size <= maxPad {
			s.size = p
		}
	}
}

func alignInt(v, a int) int {
	if a <= 1 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}

// pow2Ceil returns the smallest power of two >= v (v > 0).
func pow2Ceil(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
