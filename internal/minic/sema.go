package minic

// sema resolves names, checks types, inserts numeric conversions, and
// gathers the per-function symbol lists the code generator allocates.

type scope struct {
	parent *scope
	syms   map[string]*symbol
}

func (s *scope) lookup(name string) *symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

type semaCtx struct {
	u         *unit
	fn        *function
	scope     *scope
	loopDepth int
}

func analyze(u *unit) error {
	globals := &scope{syms: make(map[string]*symbol)}
	for _, g := range u.globals {
		globals.syms[g.name] = g
	}
	if _, ok := u.funcs["main"]; !ok {
		return errf(1, "no main function")
	}
	for _, f := range u.order {
		c := &semaCtx{u: u, fn: f}
		c.scope = &scope{parent: globals, syms: make(map[string]*symbol)}
		for i := range f.params {
			pm := &f.params[i]
			sym := &symbol{name: pm.name, ty: pm.ty, param: true, reg: -1}
			if dup := c.scope.syms[pm.name]; dup != nil {
				return errf(f.line, "duplicate parameter %q", pm.name)
			}
			c.scope.syms[pm.name] = sym
			f.syms = append(f.syms, sym)
		}
		if err := c.stmts(f.body); err != nil {
			return err
		}
	}
	return nil
}

func (c *semaCtx) pushScope() { c.scope = &scope{parent: c.scope, syms: make(map[string]*symbol)} }
func (c *semaCtx) popScope()  { c.scope = c.scope.parent }

func (c *semaCtx) stmts(list []*stmt) error {
	c.pushScope()
	defer c.popScope()
	for _, st := range list {
		if err := c.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *semaCtx) stmt(st *stmt) error {
	switch st.op {
	case sExpr:
		_, err := c.expr(st.expr)
		return err
	case sDecl:
		sym := st.decl
		if sym.ty.kind == tyVoid {
			return errf(st.line, "void variable %q", sym.name)
		}
		if dup := c.scope.syms[sym.name]; dup != nil {
			return errf(st.line, "duplicate variable %q", sym.name)
		}
		c.scope.syms[sym.name] = sym
		c.fn.syms = append(c.fn.syms, sym)
		if st.init != nil {
			ty, err := c.expr(st.init)
			if err != nil {
				return err
			}
			if !compatible(sym.ty, ty) {
				return errf(st.line, "cannot initialize %s with %s", sym.ty, ty)
			}
			st.init = convertTo(st.init, sym.ty)
		}
		return nil
	case sIf:
		if err := c.condExpr(st.cond, st.line); err != nil {
			return err
		}
		if err := c.stmts(st.body); err != nil {
			return err
		}
		return c.stmts(st.elseBody)
	case sWhile, sDoWhile:
		if err := c.condExpr(st.cond, st.line); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmts(st.body)
	case sFor:
		c.pushScope()
		defer c.popScope()
		if st.forInit != nil {
			if err := c.stmt(st.forInit); err != nil {
				return err
			}
		}
		if st.cond != nil {
			if err := c.condExpr(st.cond, st.line); err != nil {
				return err
			}
		}
		if st.forPost != nil {
			if err := c.stmt(st.forPost); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.stmts(st.body)
	case sReturn:
		if st.expr == nil {
			if c.fn.ret.kind != tyVoid {
				return errf(st.line, "missing return value in %q", c.fn.name)
			}
			return nil
		}
		if c.fn.ret.kind == tyVoid {
			return errf(st.line, "return value in void function %q", c.fn.name)
		}
		ty, err := c.expr(st.expr)
		if err != nil {
			return err
		}
		if !compatible(c.fn.ret, ty) {
			return errf(st.line, "cannot return %s from %s %q", ty, c.fn.ret, c.fn.name)
		}
		st.expr = convertTo(st.expr, c.fn.ret)
		return nil
	case sBreak, sContinue:
		if c.loopDepth == 0 {
			return errf(st.line, "break/continue outside loop")
		}
		return nil
	case sBlock:
		return c.stmts(st.body)
	}
	return errf(st.line, "internal: unknown statement")
}

func (c *semaCtx) condExpr(e *expr, line int) error {
	ty, err := c.expr(e)
	if err != nil {
		return err
	}
	if !ty.decay().isScalar() {
		return errf(line, "condition has non-scalar type %s", ty)
	}
	return nil
}

// convertTo wraps e in a numeric conversion when needed. st.expr trees are
// rewritten in place by the caller.
func convertTo(e *expr, want *ctype) *expr {
	have := e.ty.decay()
	want = want.decay()
	if have.kind == tyDouble && want.kind != tyDouble && want.isNumeric() {
		return &expr{op: eCvt, line: e.line, lhs: e, ty: typeInt}
	}
	if have.kind != tyDouble && want.kind == tyDouble && have.isNumeric() {
		return &expr{op: eCvt, line: e.line, lhs: e, ty: typeDouble}
	}
	return e
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e *expr) bool {
	switch e.op {
	case eVar:
		return true
	case eDeref, eIndex:
		return true
	case eField:
		return isLvalue(e.lhs)
	}
	return false
}

func (c *semaCtx) expr(e *expr) (*ctype, error) {
	ty, err := c.exprInner(e)
	if err != nil {
		return nil, err
	}
	e.ty = ty
	return ty, nil
}

func (c *semaCtx) exprInner(e *expr) (*ctype, error) {
	switch e.op {
	case eIntLit:
		return typeInt, nil
	case eFloatLit:
		return typeDouble, nil
	case eStrLit:
		return ptrTo(typeChar), nil
	case eVar:
		sym := c.scope.lookup(e.sval)
		if sym == nil {
			return nil, errf(e.line, "undefined variable %q", e.sval)
		}
		sym.uses++
		e.sym = sym
		return sym.ty, nil
	case eCall:
		fn, ok := c.u.funcs[e.sval]
		if !ok {
			return nil, errf(e.line, "undefined function %q", e.sval)
		}
		if len(e.args) != len(fn.params) {
			return nil, errf(e.line, "%q takes %d arguments, got %d", e.sval, len(fn.params), len(e.args))
		}
		for i, arg := range e.args {
			ty, err := c.expr(arg)
			if err != nil {
				return nil, err
			}
			want := fn.params[i].ty
			if !compatible(want, ty) {
				return nil, errf(e.line, "argument %d of %q: cannot pass %s as %s", i+1, e.sval, ty, want)
			}
			e.args[i] = convertTo(arg, want)
		}
		e.fn = fn
		c.fn.makesCall = true
		return fn.ret, nil
	case eAssign:
		lty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		if !isLvalue(e.lhs) {
			return nil, errf(e.line, "assignment to non-lvalue")
		}
		if lty.kind == tyArray || lty.kind == tyStruct {
			return nil, errf(e.line, "cannot assign aggregate %s (use memcpy)", lty)
		}
		rty, err := c.expr(e.rhs)
		if err != nil {
			return nil, err
		}
		if !compatible(lty, rty) {
			return nil, errf(e.line, "cannot assign %s to %s", rty, lty)
		}
		e.rhs = convertTo(e.rhs, lty)
		return lty, nil
	case eAdd, eSub:
		lty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		rty, err := c.expr(e.rhs)
		if err != nil {
			return nil, err
		}
		ld, rd := lty.decay(), rty.decay()
		switch {
		case ld.isPtr() && rd.isInteger():
			return ld, nil // pointer arithmetic, scaled by codegen
		case e.op == eAdd && ld.isInteger() && rd.isPtr():
			// Normalize to ptr + int.
			e.lhs, e.rhs = e.rhs, e.lhs
			return rd, nil
		case e.op == eSub && ld.isPtr() && rd.isPtr():
			return typeInt, nil
		case ld.isNumeric() && rd.isNumeric():
			return c.arith(e, ld, rd)
		}
		return nil, errf(e.line, "invalid operands %s, %s", lty, rty)
	case eMul, eDiv:
		return c.binNumeric(e, true)
	case eMod, eShl, eShr, eBitAnd, eBitOr, eBitXor:
		return c.binInteger(e)
	case eLt, eLe, eGt, eGe, eEq, eNe:
		lty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		rty, err := c.expr(e.rhs)
		if err != nil {
			return nil, err
		}
		ld, rd := lty.decay(), rty.decay()
		if ld.isPtr() && rd.isPtr() || ld.isPtr() && rd.isInteger() || ld.isInteger() && rd.isPtr() {
			return typeInt, nil
		}
		if ld.isNumeric() && rd.isNumeric() {
			if ld.kind == tyDouble || rd.kind == tyDouble {
				e.lhs = convertTo(e.lhs, typeDouble)
				e.rhs = convertTo(e.rhs, typeDouble)
			}
			return typeInt, nil
		}
		return nil, errf(e.line, "invalid comparison %s, %s", lty, rty)
	case eLAnd, eLOr:
		for _, sub := range []*expr{e.lhs, e.rhs} {
			ty, err := c.expr(sub)
			if err != nil {
				return nil, err
			}
			if !ty.decay().isScalar() {
				return nil, errf(e.line, "non-scalar operand of logical operator")
			}
		}
		return typeInt, nil
	case eNot:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		if !ty.decay().isScalar() {
			return nil, errf(e.line, "non-scalar operand of !")
		}
		return typeInt, nil
	case eNeg:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		if !ty.isNumeric() {
			return nil, errf(e.line, "non-numeric operand of unary -")
		}
		if ty.kind == tyDouble {
			return typeDouble, nil
		}
		return typeInt, nil
	case eBitNot:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		if !ty.isInteger() {
			return nil, errf(e.line, "non-integer operand of ~")
		}
		return typeInt, nil
	case eAddr:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		if !isLvalue(e.lhs) {
			return nil, errf(e.line, "cannot take address of non-lvalue")
		}
		markAddrTaken(e.lhs)
		return ptrTo(ty), nil
	case eDeref:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		d := ty.decay()
		if !d.isPtr() {
			return nil, errf(e.line, "cannot dereference %s", ty)
		}
		if d.elem.kind == tyVoid {
			return nil, errf(e.line, "cannot dereference void*")
		}
		return d.elem, nil
	case eIndex:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		ity, err := c.expr(e.rhs)
		if err != nil {
			return nil, err
		}
		d := ty.decay()
		if !d.isPtr() {
			return nil, errf(e.line, "cannot index %s", ty)
		}
		if !ity.decay().isInteger() {
			return nil, errf(e.line, "array index has type %s", ity)
		}
		return d.elem, nil
	case eField:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		if ty.kind != tyStruct {
			return nil, errf(e.line, "request for field %q in non-struct %s", e.sval, ty)
		}
		for i := range ty.sdef.fields {
			if ty.sdef.fields[i].name == e.sval {
				e.field = &ty.sdef.fields[i]
				return e.field.ty, nil
			}
		}
		return nil, errf(e.line, "struct %s has no field %q", ty, e.sval)
	case eCvt:
		return e.ty, nil // inserted pre-typed
	case eCond:
		if err := c.condExpr(e.lhs, e.line); err != nil {
			return nil, err
		}
		tty, err := c.expr(e.args[0])
		if err != nil {
			return nil, err
		}
		ety, err := c.expr(e.args[1])
		if err != nil {
			return nil, err
		}
		td, ed := tty.decay(), ety.decay()
		switch {
		case td.kind == tyDouble || ed.kind == tyDouble:
			if !td.isNumeric() || !ed.isNumeric() {
				return nil, errf(e.line, "mismatched ?: arms %s, %s", tty, ety)
			}
			e.args[0] = convertTo(e.args[0], typeDouble)
			e.args[1] = convertTo(e.args[1], typeDouble)
			return typeDouble, nil
		case td.isPtr() || ed.isPtr():
			if !compatible(td, ed) {
				return nil, errf(e.line, "mismatched ?: arms %s, %s", tty, ety)
			}
			if td.isPtr() {
				return td, nil
			}
			return ed, nil
		case td.isInteger() && ed.isInteger():
			return typeInt, nil
		}
		return nil, errf(e.line, "mismatched ?: arms %s, %s", tty, ety)
	case ePostInc, ePostDec:
		ty, err := c.expr(e.lhs)
		if err != nil {
			return nil, err
		}
		if !isLvalue(e.lhs) {
			return nil, errf(e.line, "increment of non-lvalue")
		}
		d := ty.decay()
		if !d.isInteger() && !d.isPtr() {
			return nil, errf(e.line, "cannot increment %s", ty)
		}
		return d, nil
	}
	return nil, errf(e.line, "internal: unknown expression op %d", e.op)
}

// arith applies the usual arithmetic conversions to a binary node.
func (c *semaCtx) arith(e *expr, ld, rd *ctype) (*ctype, error) {
	if ld.kind == tyDouble || rd.kind == tyDouble {
		e.lhs = convertTo(e.lhs, typeDouble)
		e.rhs = convertTo(e.rhs, typeDouble)
		return typeDouble, nil
	}
	return typeInt, nil
}

func (c *semaCtx) binNumeric(e *expr, allowDouble bool) (*ctype, error) {
	lty, err := c.expr(e.lhs)
	if err != nil {
		return nil, err
	}
	rty, err := c.expr(e.rhs)
	if err != nil {
		return nil, err
	}
	ld, rd := lty.decay(), rty.decay()
	if !ld.isNumeric() || !rd.isNumeric() {
		return nil, errf(e.line, "invalid operands %s, %s", lty, rty)
	}
	if (ld.kind == tyDouble || rd.kind == tyDouble) && !allowDouble {
		return nil, errf(e.line, "operator requires integer operands")
	}
	return c.arith(e, ld, rd)
}

func (c *semaCtx) binInteger(e *expr) (*ctype, error) {
	lty, err := c.expr(e.lhs)
	if err != nil {
		return nil, err
	}
	rty, err := c.expr(e.rhs)
	if err != nil {
		return nil, err
	}
	if !lty.decay().isInteger() || !rty.decay().isInteger() {
		return nil, errf(e.line, "operator requires integer operands, got %s, %s", lty, rty)
	}
	return typeInt, nil
}

// markAddrTaken flags the root variable of an lvalue whose address escapes,
// forcing it into memory.
func markAddrTaken(e *expr) {
	switch e.op {
	case eVar:
		if e.sym != nil {
			e.sym.addrTaken = true
		}
	case eField:
		markAddrTaken(e.lhs)
	case eDeref, eIndex:
		// The storage is already in memory through a pointer; the root
		// variable itself need not be spilled.
	}
}
