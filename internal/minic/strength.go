package minic

import "fmt"

// strengthReduce rewrites counted for-loops so that array accesses indexed
// by the induction variable walk derived pointers instead (the classic
// strength reduction of subscript expressions, ASU86). After the rewrite,
// a[i] inside the loop compiles to a zero-offset load through a pointer
// that is bumped in the loop's post statement, and a[i+1] to a small
// constant offset off the same pointer — exactly the code GCC produces for
// the paper when strength reduction succeeds. When the pass does not apply
// (non-induction subscripts, modified bases), code generation falls back to
// register+register addressing.
func strengthReduce(u *unit) {
	for _, f := range u.order {
		sr := &reducer{fn: f}
		sr.stmts(f.body)
	}
}

type reducer struct {
	fn      *function
	counter int
}

func (r *reducer) stmts(list []*stmt) {
	for _, st := range list {
		r.stmt(st)
	}
}

func (r *reducer) stmt(st *stmt) {
	switch st.op {
	case sIf:
		r.stmts(st.body)
		r.stmts(st.elseBody)
	case sWhile, sDoWhile, sBlock:
		r.stmts(st.body)
	case sFor:
		// Inner loops first: their rewrites may still use this loop's IV.
		r.stmts(st.body)
		r.reduceFor(st)
	}
}

// ivPattern extracts the induction variable and step from a for statement,
// or returns nil.
func forInduction(st *stmt) (iv *symbol, startE *expr, step int64) {
	if st.forInit == nil || st.cond == nil || st.forPost == nil {
		return nil, nil, 0
	}
	init := st.forInit.expr
	if init == nil || init.op != eAssign || init.lhs.op != eVar {
		return nil, nil, 0
	}
	sym := init.lhs.sym
	if sym == nil || sym.global || sym.addrTaken || sym.ty.kind != tyInt {
		return nil, nil, 0
	}
	// Start must be re-evaluable without side effects.
	if !sideEffectFree(init.rhs) {
		return nil, nil, 0
	}
	post := st.forPost.expr
	if post == nil {
		return nil, nil, 0
	}
	// i++ / i-- post statements.
	if (post.op == ePostInc || post.op == ePostDec) && post.lhs.op == eVar && post.lhs.sym == sym {
		if post.op == ePostInc {
			return sym, init.rhs, 1
		}
		return sym, init.rhs, -1
	}
	if post.op != eAssign || post.lhs.op != eVar || post.lhs.sym != sym {
		return nil, nil, 0
	}
	rhs := post.rhs
	switch {
	case rhs.op == eAdd && rhs.lhs.op == eVar && rhs.lhs.sym == sym && rhs.rhs.op == eIntLit:
		return sym, init.rhs, rhs.rhs.ival
	case rhs.op == eSub && rhs.lhs.op == eVar && rhs.lhs.sym == sym && rhs.rhs.op == eIntLit:
		return sym, init.rhs, -rhs.rhs.ival
	}
	return nil, nil, 0
}

// sideEffectFree reports whether an expression can be evaluated twice.
func sideEffectFree(e *expr) bool {
	if e == nil {
		return true
	}
	switch e.op {
	case eAssign, eCall, ePostInc, ePostDec:
		return false
	}
	if !sideEffectFree(e.lhs) || !sideEffectFree(e.rhs) {
		return false
	}
	for _, a := range e.args {
		if !sideEffectFree(a) {
			return false
		}
	}
	return true
}

func (r *reducer) reduceFor(st *stmt) {
	iv, startE, step := forInduction(st)
	if iv == nil {
		return
	}
	// The IV must not be assigned inside the loop body.
	if assignsSym(st.body, iv) {
		return
	}
	// Collect candidate bases: loop-invariant array/pointer variables
	// indexed by the IV with scalar elements.
	cands := &indexCands{byBase: map[*symbol][]*expr{}}
	collectIndexAccesses(st.body, iv, cands)
	if st.cond != nil {
		collectIndexAccesses1(st.cond, iv, cands)
	}
	bases := cands.order[:0]
	for _, base := range cands.order {
		if base.addrTaken || assignsSym(st.body, base) || len(cands.byBase[base]) == 0 {
			continue
		}
		bases = append(bases, base)
	}
	if len(bases) == 0 {
		return
	}

	var newInits []*stmt
	var newPosts []*stmt
	for _, base := range bases {
		uses := cands.byBase[base]
		elem := base.ty.decay().elem
		ptrTy := ptrTo(elem)
		r.counter++
		p := &symbol{
			name: fmt.Sprintf("__sr_%s_%d", base.name, r.counter),
			ty:   ptrTy,
			reg:  -1,
			uses: len(uses) + 2,
		}
		r.fn.syms = append(r.fn.syms, p)

		// p = &base[start]
		baseRef := &expr{op: eVar, sval: base.name, sym: base, ty: base.ty}
		initIdx := &expr{op: eIndex, lhs: baseRef, rhs: cloneExpr(startE), ty: elem}
		initAddr := &expr{op: eAddr, lhs: initIdx, ty: ptrTy}
		pRef := func() *expr { return &expr{op: eVar, sval: p.name, sym: p, ty: ptrTy} }
		newInits = append(newInits, &stmt{
			op:   sExpr,
			line: st.line,
			expr: &expr{op: eAssign, lhs: pRef(), rhs: initAddr, ty: ptrTy},
		})

		// p = p + step
		bump := &expr{
			op:  eAdd,
			lhs: pRef(),
			rhs: &expr{op: eIntLit, ival: step, ty: typeInt},
			ty:  ptrTy,
		}
		newPosts = append(newPosts, &stmt{
			op:   sExpr,
			line: st.line,
			expr: &expr{op: eAssign, lhs: pRef(), rhs: bump, ty: ptrTy},
		})

		// Rewrite each access in place.
		for _, use := range uses {
			c := indexConstPart(use.rhs, iv)
			use.lhs = pRef()
			if c == 0 {
				// a[i] -> *p
				use.op = eDeref
				use.rhs = nil
			} else {
				// a[i+c] -> p[c]
				use.rhs = &expr{op: eIntLit, ival: c, ty: typeInt}
			}
		}
		iv.uses -= len(uses)
		if iv.uses < 1 {
			iv.uses = 1
		}
	}

	// Chain the new initializations after the loop init, and the pointer
	// bumps after the loop post (continue statements jump to the post
	// label, so increments stay paired with the IV update).
	st.forInit = &stmt{op: sBlock, line: st.line, body: append([]*stmt{st.forInit}, newInits...)}
	st.forPost = &stmt{op: sBlock, line: st.line, body: append([]*stmt{st.forPost}, newPosts...)}
}

// indexConstPart returns c for index expressions of the form i, i+c, c+i,
// or i-c.
func indexConstPart(idx *expr, iv *symbol) int64 {
	switch {
	case idx.op == eVar && idx.sym == iv:
		return 0
	case idx.op == eAdd && idx.lhs.op == eVar && idx.lhs.sym == iv && idx.rhs.op == eIntLit:
		return idx.rhs.ival
	case idx.op == eAdd && idx.rhs.op == eVar && idx.rhs.sym == iv && idx.lhs.op == eIntLit:
		return idx.lhs.ival
	case idx.op == eSub && idx.lhs.op == eVar && idx.lhs.sym == iv && idx.rhs.op == eIntLit:
		return -idx.rhs.ival
	}
	return 0
}

// isIVIndex reports whether idx matches the shapes indexConstPart handles.
func isIVIndex(idx *expr, iv *symbol) bool {
	switch {
	case idx.op == eVar && idx.sym == iv:
		return true
	case idx.op == eAdd && idx.lhs.op == eVar && idx.lhs.sym == iv && idx.rhs.op == eIntLit:
		return true
	case idx.op == eAdd && idx.rhs.op == eVar && idx.rhs.sym == iv && idx.lhs.op == eIntLit:
		return true
	case idx.op == eSub && idx.lhs.op == eVar && idx.lhs.sym == iv && idx.rhs.op == eIntLit:
		return true
	}
	return false
}

// indexCands groups candidate accesses by base symbol while remembering
// the order bases were first seen. Rewrites must happen in that order —
// iterating the pointer-keyed map directly would emit the pointer-temp
// declarations and bump statements in a different order on every
// process, producing nondeterministic code layout and timing.
type indexCands struct {
	byBase map[*symbol][]*expr
	order  []*symbol
}

func (c *indexCands) add(base *symbol, e *expr) {
	if _, seen := c.byBase[base]; !seen {
		c.order = append(c.order, base)
	}
	c.byBase[base] = append(c.byBase[base], e)
}

// collectIndexAccesses gathers eIndex(base, f(iv)) nodes with scalar
// element types, grouped by base symbol.
func collectIndexAccesses(list []*stmt, iv *symbol, out *indexCands) {
	var visitS func(st *stmt)
	visitS = func(st *stmt) {
		if st == nil {
			return
		}
		collectIndexAccesses1(st.expr, iv, out)
		collectIndexAccesses1(st.init, iv, out)
		collectIndexAccesses1(st.cond, iv, out)
		visitS(st.forInit)
		visitS(st.forPost)
		for _, b := range st.body {
			visitS(b)
		}
		for _, b := range st.elseBody {
			visitS(b)
		}
	}
	for _, st := range list {
		visitS(st)
	}
}

func collectIndexAccesses1(e *expr, iv *symbol, out *indexCands) {
	if e == nil {
		return
	}
	if e.op == eIndex && e.lhs.op == eVar && e.lhs.sym != nil && e.ty.isScalar() &&
		isIVIndex(e.rhs, iv) && e.lhs.sym != iv {
		base := e.lhs.sym
		if base.ty.decay().isPtr() {
			out.add(base, e)
		}
		return // the index subtree is consumed by the rewrite
	}
	collectIndexAccesses1(e.lhs, iv, out)
	collectIndexAccesses1(e.rhs, iv, out)
	for _, a := range e.args {
		collectIndexAccesses1(a, iv, out)
	}
}

// assignsSym reports whether any statement in list assigns to sym.
func assignsSym(list []*stmt, sym *symbol) bool {
	found := false
	var visitE func(e *expr)
	visitE = func(e *expr) {
		if e == nil || found {
			return
		}
		if (e.op == eAssign || e.op == ePostInc || e.op == ePostDec) &&
			e.lhs.op == eVar && e.lhs.sym == sym {
			found = true
			return
		}
		visitE(e.lhs)
		visitE(e.rhs)
		for _, a := range e.args {
			visitE(a)
		}
	}
	var visitS func(st *stmt)
	visitS = func(st *stmt) {
		if st == nil || found {
			return
		}
		visitE(st.expr)
		visitE(st.init)
		visitE(st.cond)
		visitS(st.forInit)
		visitS(st.forPost)
		for _, b := range st.body {
			visitS(b)
		}
		for _, b := range st.elseBody {
			visitS(b)
		}
	}
	for _, st := range list {
		visitS(st)
	}
	return found
}

// cloneExpr deep-copies a side-effect-free expression.
func cloneExpr(e *expr) *expr {
	if e == nil {
		return nil
	}
	c := *e
	c.lhs = cloneExpr(e.lhs)
	c.rhs = cloneExpr(e.rhs)
	if e.args != nil {
		c.args = make([]*expr, len(e.args))
		for i, a := range e.args {
			c.args[i] = cloneExpr(a)
		}
	}
	return &c
}
