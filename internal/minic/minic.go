package minic

// Options selects optimization and alignment behaviour. The alignment
// options implement the paper's Section 4 software support; StrengthReduce
// is the loop optimization whose success determines whether array accesses
// become zero-offset pointer walks or register+register indexing.
type Options struct {
	// StrengthReduce rewrites for-loops so that induction-variable array
	// accesses become pointer increments (zero-offset loads and stores).
	StrengthReduce bool

	// AlignStack rounds stack frames to a multiple of 64 bytes so the
	// stack pointer keeps a program-wide 64-byte alignment.
	AlignStack bool
	// AlignStatics raises static (and local aggregate) alignments to the
	// next power of two of their size, capped at 32 bytes.
	AlignStatics bool
	// AlignStructs rounds structure sizes to the next power of two when the
	// padding does not exceed MaxStructPad bytes.
	AlignStructs bool
	// MaxStructPad caps structure padding (default 16, the paper's bound).
	MaxStructPad int
	// MallocAlign is the dynamic allocation alignment (default 8; the
	// paper's software support raises it to 32).
	MallocAlign int
	// SmallDataMax is the largest global placed in the gp-addressed small
	// data region (default 8 bytes).
	SmallDataMax int

	// Peephole enables window-local assembly cleanups (store-to-load
	// forwarding, dead moves, jumps to the next line). Off by default so
	// the default toolchains produce exactly the code shapes the paper's
	// experiments analyse.
	Peephole bool

	// OmitRuntime skips the runtime prelude (for unit tests that inspect
	// bare code generation).
	OmitRuntime bool
}

// BaseOptions is the paper's baseline toolchain: optimizing (strength
// reduction on) but with no fast-address-calculation-specific alignment.
func BaseOptions() Options {
	return Options{StrengthReduce: true, MaxStructPad: 16, MallocAlign: 8, SmallDataMax: 8}
}

// FACOptions is the paper's software-support toolchain: baseline plus all
// Section 4 alignment optimizations (the matching linker option is
// prog.Config.AlignGP).
func FACOptions() Options {
	o := BaseOptions()
	o.AlignStack = true
	o.AlignStatics = true
	o.AlignStructs = true
	o.MallocAlign = 32
	return o
}

// Compile translates a MiniC translation unit to assembly text (runtime
// prelude included unless opts.OmitRuntime).
func Compile(src string, opts Options) (string, error) {
	if opts.MaxStructPad == 0 {
		opts.MaxStructPad = 16
	}
	if opts.MallocAlign == 0 {
		opts.MallocAlign = 8
	}
	full := src
	if !opts.OmitRuntime {
		full = runtimePrelude(opts.MallocAlign) + "\n" + src
	}
	u, err := parse(full, opts)
	if err != nil {
		return "", err
	}
	if err := analyze(u); err != nil {
		return "", err
	}
	if opts.StrengthReduce {
		strengthReduce(u)
	}
	asmText, err := generate(u, opts)
	if err != nil {
		return "", err
	}
	if opts.Peephole {
		asmText = peephole(asmText)
	}
	if !opts.OmitRuntime {
		asmText += startStub
	}
	return asmText, nil
}

// startStub is the only hand-written assembly in the runtime: the program
// entry point, which calls main and exits with its return value.
const startStub = `
	.text
	.globl _start
_start:
	jal main
	move $a0, $v0
	li $v0, 10
	syscall
`
