package minic

type exprOp uint8

const (
	eIntLit exprOp = iota
	eFloatLit
	eStrLit
	eVar
	eCall

	eAssign
	eAdd
	eSub
	eMul
	eDiv
	eMod
	eShl
	eShr
	eLt
	eLe
	eGt
	eGe
	eEq
	eNe
	eBitAnd
	eBitOr
	eBitXor
	eLAnd
	eLOr

	eNot
	eBitNot
	eNeg
	eAddr
	eDeref
	eIndex // lhs[rhs]
	eField // lhs.name  (also lhs->name after normalization to deref)
	eCvt   // numeric conversion inserted by sema

	eCond    // lhs ? args[0] : args[1]
	ePostInc // lhs++ (value is the old one)
	ePostDec // lhs--
)

type expr struct {
	op   exprOp
	line int
	ty   *ctype // set by sema

	lhs, rhs *expr

	ival  int64
	fval  float64
	sval  string // string literal / identifier / field name
	args  []*expr
	sym   *symbol // resolved variable (sema)
	fn    *function
	field *field // resolved struct field (sema)
}

type stmtOp uint8

const (
	sExpr stmtOp = iota
	sDecl
	sIf
	sWhile
	sDoWhile
	sFor
	sReturn
	sBreak
	sContinue
	sBlock
)

type stmt struct {
	op   stmtOp
	line int

	expr *expr // sExpr, sReturn (may be nil), sDecl initializer target

	decl *symbol // sDecl
	init *expr   // sDecl initializer

	cond     *expr
	forInit  *stmt
	forPost  *stmt
	body     []*stmt
	elseBody []*stmt
}

// symbol is a variable (global, parameter, or local).
type symbol struct {
	name   string
	ty     *ctype
	global bool
	param  bool

	// Sema/codegen state:
	addrTaken bool
	uses      int
	// Codegen assignment:
	reg      int // register-allocated local: s-register index or FP reg; -1 = memory
	isFPReg  bool
	frameOff int // offset from $sp for memory locals (valid when reg < 0)

	// Globals:
	small   bool // placed in the gp-addressed small-data region
	initI   int64
	initF   float64
	hasInit bool
}

type param struct {
	name string
	ty   *ctype
}

type function struct {
	name   string
	ret    *ctype
	params []param
	body   []*stmt
	line   int

	builtin bool

	// Sema results:
	syms      []*symbol // all locals + params in declaration order
	makesCall bool
}

type unit struct {
	structs map[string]*structT
	globals []*symbol
	funcs   map[string]*function
	order   []*function // definition order
	strings []string    // interned string literals
}
