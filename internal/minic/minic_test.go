package minic

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/prog"
)

// compileRun compiles, assembles, links, and executes a MiniC program,
// returning its output.
func compileRun(t *testing.T, src string, opts Options, link prog.Config) string {
	t.Helper()
	asmText, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	o, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatalf("Assemble: %v\n--- asm ---\n%s", err, numbered(asmText))
	}
	p, err := prog.Link(o, link)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	e := emu.New(p)
	e.MaxInsts = 100_000_000
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v\noutput so far: %q", err, e.Out.String())
	}
	return e.Out.String()
}

func numbered(s string) string {
	lines := strings.Split(s, "\n")
	var b strings.Builder
	for i, l := range lines {
		b.WriteString(strings.TrimRight(l, " "))
		_ = i
		b.WriteByte('\n')
	}
	return b.String()
}

// run with all four toolchain variants to catch option-dependent bugs.
func runAllVariants(t *testing.T, src, want string) {
	t.Helper()
	variants := []struct {
		name string
		opts Options
		link prog.Config
	}{
		{"base", BaseOptions(), prog.DefaultConfig()},
		{"base-nosr", func() Options { o := BaseOptions(); o.StrengthReduce = false; return o }(), prog.DefaultConfig()},
		{"fac", FACOptions(), func() prog.Config { c := prog.DefaultConfig(); c.AlignGP = true; return c }()},
		{"fac-nosr", func() Options { o := FACOptions(); o.StrengthReduce = false; return o }(), func() prog.Config { c := prog.DefaultConfig(); c.AlignGP = true; return c }()},
	}
	for _, v := range variants {
		if got := compileRun(t, src, v.opts, v.link); got != want {
			t.Errorf("%s: output = %q, want %q", v.name, got, want)
		}
	}
}

func TestHello(t *testing.T) {
	runAllVariants(t, `
int main() {
	print_str("hello\n");
	return 0;
}`, "hello\n")
}

func TestArithmeticOps(t *testing.T) {
	runAllVariants(t, `
int main() {
	int a; int b;
	a = 17; b = 5;
	print_int(a + b); print_char(' ');
	print_int(a - b); print_char(' ');
	print_int(a * b); print_char(' ');
	print_int(a / b); print_char(' ');
	print_int(a % b); print_char(' ');
	print_int(a << 2); print_char(' ');
	print_int(a >> 2); print_char(' ');
	print_int(a & b); print_char(' ');
	print_int(a | b); print_char(' ');
	print_int(a ^ b); print_char(' ');
	print_int(-a); print_char(' ');
	print_int(~a);
	return 0;
}`, "22 12 85 3 2 68 4 1 21 20 -17 -18")
}

func TestComparisonsAndLogic(t *testing.T) {
	runAllVariants(t, `
int main() {
	int a; int b;
	a = 3; b = 7;
	print_int(a < b);
	print_int(a > b);
	print_int(a <= 3);
	print_int(a >= 4);
	print_int(a == 3);
	print_int(a != 3);
	print_int(a < b && b < 10);
	print_int(a > b || b > 10);
	print_int(!a);
	print_int(!0);
	return 0;
}`, "1010101001")
}

func TestShortCircuit(t *testing.T) {
	runAllVariants(t, `
int hits;
int bump() { hits = hits + 1; return 1; }
int main() {
	int x;
	x = 0 && bump();
	x = 1 || bump();
	print_int(hits);
	x = 1 && bump();
	x = 0 || bump();
	print_int(hits);
	return 0;
}`, "02")
}

func TestControlFlow(t *testing.T) {
	runAllVariants(t, `
int main() {
	int i; int sum;
	sum = 0;
	for (i = 1; i <= 10; i = i + 1) {
		if (i == 3) { continue; }
		if (i == 9) { break; }
		sum = sum + i;
	}
	print_int(sum);
	print_char(' ');
	i = 0;
	while (i < 5) { i = i + 1; }
	print_int(i);
	return 0;
}`, "33 5")
}

func TestGlobalsSmallAndLarge(t *testing.T) {
	runAllVariants(t, `
int counter;                 /* small: gp-relative */
int bigarr[100];             /* large: lui/at addressing */
double gscale;
int main() {
	int i;
	counter = 42;
	gscale = 2.5;
	for (i = 0; i < 100; i = i + 1) {
		bigarr[i] = i * 2;
	}
	print_int(counter); print_char(' ');
	print_int(bigarr[7]); print_char(' ');
	print_int(bigarr[99]); print_char(' ');
	print_double(gscale);
	return 0;
}`, "42 14 198 2.5")
}

func TestArraysAndPointers(t *testing.T) {
	runAllVariants(t, `
int a[10];
int main() {
	int *p; int i;
	for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
	p = &a[3];
	print_int(*p); print_char(' ');
	print_int(p[2]); print_char(' ');
	print_int(*(p + 3)); print_char(' ');
	p = p + 1;
	print_int(*p); print_char(' ');
	print_int(a[2 + 2]); print_char(' ');
	print_int(&a[9] - &a[2]);
	return 0;
}`, "9 25 36 16 16 7")
}

func TestIndexConstants(t *testing.T) {
	runAllVariants(t, `
int a[16];
int main() {
	int i;
	for (i = 0; i < 16; i = i + 1) { a[i] = i; }
	for (i = 1; i < 15; i = i + 1) {
		a[i] = a[i - 1] + a[i + 1];
	}
	print_int(a[14]);
	return 0;
}`, "119")
}

func TestStructs(t *testing.T) {
	runAllVariants(t, `
struct point { int x; int y; };
struct rect { struct point min; struct point max; int tag; };
struct point pts[4];
int main() {
	struct rect r;
	struct rect *pr;
	int i;
	r.min.x = 1; r.min.y = 2;
	r.max.x = 30; r.max.y = 40;
	r.tag = 7;
	pr = &r;
	print_int(pr->max.x - pr->min.x); print_char(' ');
	print_int(pr->tag); print_char(' ');
	for (i = 0; i < 4; i = i + 1) {
		pts[i].x = i;
		pts[i].y = i * 10;
	}
	print_int(pts[3].y + pts[2].x);
	return 0;
}`, "29 7 32")
}

func TestStructSizesWithPadding(t *testing.T) {
	// 12-byte struct rounds to 16 under AlignStructs; sizeof reflects it.
	src := `
struct s3 { int a; int b; int c; };
int main() {
	print_int(sizeof(struct s3));
	return 0;
}`
	if got := compileRun(t, src, BaseOptions(), prog.DefaultConfig()); got != "12" {
		t.Errorf("base sizeof = %q, want 12", got)
	}
	if got := compileRun(t, src, FACOptions(), prog.DefaultConfig()); got != "16" {
		t.Errorf("fac sizeof = %q, want 16", got)
	}
}

func TestCharsAndStrings(t *testing.T) {
	runAllVariants(t, `
char buf[32];
int main() {
	char *s;
	int n;
	s = "abc";
	n = strlen(s);
	print_int(n); print_char(' ');
	memcpy(buf, s, n + 1);
	print_str(buf); print_char(' ');
	print_int(strcmp(buf, "abc")); print_char(' ');
	print_int(strcmp(buf, "abd") < 0); print_char(' ');
	buf[1] = 'X';
	print_str(buf);
	return 0;
}`, "3 abc 0 1 aXc")
}

func TestMallocAndLists(t *testing.T) {
	runAllVariants(t, `
struct node { int val; struct node *next; };
int main() {
	struct node *head; struct node *n;
	int i; int sum;
	head = 0;
	for (i = 1; i <= 5; i = i + 1) {
		n = malloc(sizeof(struct node));
		n->val = i * i;
		n->next = head;
		head = n;
	}
	sum = 0;
	for (n = head; n != 0; n = n->next) {
		sum = sum + n->val;
	}
	print_int(sum);
	return 0;
}`, "55")
}

func TestDoubles(t *testing.T) {
	runAllVariants(t, `
double xs[8];
int main() {
	int i;
	double sum; double scale;
	scale = 0.5;
	for (i = 0; i < 8; i = i + 1) {
		xs[i] = i * 1.5;
	}
	sum = 0.0;
	for (i = 0; i < 8; i = i + 1) {
		sum = sum + xs[i] * scale;
	}
	print_double(sum); print_char(' ');
	print_int(sum > 10.0); print_char(' ');
	print_int(sum < 22.0); print_char(' ');
	i = sum;
	print_int(i);
	return 0;
}`, "21 1 1 21")
}

func TestIntDoubleConversions(t *testing.T) {
	runAllVariants(t, `
double half(int n) { return n / 2.0; }
int main() {
	double d;
	int i;
	d = half(7);
	print_double(d); print_char(' ');
	i = d * 2.0;
	print_int(i); print_char(' ');
	d = 3;
	print_double(d + 0.25);
	return 0;
}`, "3.5 7 3.25")
}

func TestFunctionsAndRecursion(t *testing.T) {
	runAllVariants(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int ack(int m, int n) {
	if (m == 0) { return n + 1; }
	if (n == 0) { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	print_int(fib(15)); print_char(' ');
	print_int(ack(2, 3));
	return 0;
}`, "610 9")
}

func TestManyArguments(t *testing.T) {
	runAllVariants(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
	return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6 + g * 7 + h * 8;
}
double mix(double x, double y, double z, int k) {
	return x + y * 2.0 + z * 3.0 + k;
}
int main() {
	print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8));
	print_char(' ');
	print_double(mix(1.5, 2.0, 3.0, 10));
	return 0;
}`, "204 24.5")
}

func TestTwoDimensionalArrays(t *testing.T) {
	runAllVariants(t, `
int m[8][8];
int main() {
	int i; int j; int trace;
	for (i = 0; i < 8; i = i + 1) {
		for (j = 0; j < 8; j = j + 1) {
			m[i][j] = i * 8 + j;
		}
	}
	trace = 0;
	for (i = 0; i < 8; i = i + 1) {
		trace = trace + m[i][i];
	}
	print_int(trace);
	return 0;
}`, "252")
}

func TestRandDeterministic(t *testing.T) {
	runAllVariants(t, `
int main() {
	int i; int sum;
	srand(42);
	sum = 0;
	for (i = 0; i < 10; i = i + 1) {
		sum = sum + rand() % 100;
	}
	srand(42);
	print_int(sum - (rand() % 100) - (rand() % 100) >= 0);
	return 0;
}`, "1")
}

func TestAddressTakenLocals(t *testing.T) {
	runAllVariants(t, `
void bump(int *p) { *p = *p + 1; }
int main() {
	int x;
	x = 41;
	bump(&x);
	print_int(x);
	return 0;
}`, "42")
}

func TestCallsInExpressions(t *testing.T) {
	runAllVariants(t, `
int two() { return 2; }
int three() { return 3; }
int add(int a, int b) { return a + b; }
int main() {
	print_int(two() * 10 + three());
	print_char(' ');
	print_int(add(two(), three()) * add(three(), two()));
	return 0;
}`, "23 25")
}

func TestStrengthReductionCorrectness(t *testing.T) {
	// The same kernel with and without strength reduction must agree.
	src := `
int a[64]; int b[64];
int main() {
	int i; int sum;
	for (i = 0; i < 64; i = i + 1) { a[i] = i; b[i] = 64 - i; }
	sum = 0;
	for (i = 0; i < 64; i = i + 1) {
		sum = sum + a[i] * b[i];
	}
	print_int(sum);
	return 0;
}`
	on := compileRun(t, src, BaseOptions(), prog.DefaultConfig())
	off := func() Options { o := BaseOptions(); o.StrengthReduce = false; return o }()
	offOut := compileRun(t, src, off, prog.DefaultConfig())
	if on != offOut {
		t.Errorf("SR on %q != SR off %q", on, offOut)
	}
	if on != "43680" {
		t.Errorf("result = %q, want 43680", on)
	}
}

func TestStrengthReductionShapesCode(t *testing.T) {
	src := `
int a[64];
int consume(int x) { return x; }
int main() {
	int i; int sum;
	sum = 0;
	for (i = 0; i < 64; i = i + 1) {
		sum = sum + a[i];
	}
	return consume(sum);
}`
	srOn, err := Compile(src, BaseOptions())
	if err != nil {
		t.Fatal(err)
	}
	offOpts := BaseOptions()
	offOpts.StrengthReduce = false
	srOff, err := Compile(src, offOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Without SR the loop body indexes with register+register mode.
	if !strings.Contains(srOff, "lwx") {
		t.Error("expected lwx (reg+reg addressing) without strength reduction")
	}
	// With SR the array walk is a zero-offset load off a derived pointer.
	if !strings.Contains(srOn, "lw $t0, 0(") && !strings.Contains(srOn, ", 0($s") {
		if !strings.Contains(srOn, " 0(") {
			t.Errorf("expected zero-offset load with strength reduction:\n%s", srOn)
		}
	}
}

func TestBreakInsideReducedLoop(t *testing.T) {
	runAllVariants(t, `
int a[32];
int main() {
	int i; int found;
	for (i = 0; i < 32; i = i + 1) { a[i] = i * 3; }
	found = -1;
	for (i = 0; i < 32; i = i + 1) {
		if (a[i] == 45) { found = i; break; }
		if (a[i] % 7 == 3) { continue; }
	}
	print_int(found);
	return 0;
}`, "15")
}

func TestGPAlignmentChangesLayoutNotBehaviour(t *testing.T) {
	src := `
int x; int y = 5; double z = 1.5;
int main() {
	x = y * 4;
	print_int(x);
	print_double(z);
	return 0;
}`
	base := compileRun(t, src, BaseOptions(), prog.DefaultConfig())
	alignedLink := prog.DefaultConfig()
	alignedLink.AlignGP = true
	fac := compileRun(t, src, FACOptions(), alignedLink)
	if base != fac || base != "201.5" {
		t.Errorf("outputs differ: base %q fac %q", base, fac)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"int main() { return x; }", "undefined variable"},
		{"int main() { foo(); return 0; }", "undefined function"},
		{"int main() { print_int(1, 2); return 0; }", "takes 1 arguments"},
		{"int main() { int x; int x; return 0; }", "duplicate variable"},
		{"int main() { 1 = 2; return 0; }", "non-lvalue"},
		{"int main() { break; }", "outside loop"},
		{"int x; int x; int main() { return 0; }", "duplicate global"},
		{"int main() { int s; return s.x; }", "non-struct"},
		{"struct p { int x; }; int main() { struct p v; return v.y; }", "no field"},
		{"int main() { double d; d = 1.0; return d % 2; }", "integer operands"},
		{"int f() { return 1; } int f() { return 2; } int main() { return 0; }", "duplicate function"},
		{"int main() { return *4; }", "cannot dereference"},
		{"int main() { int a[(2]; return 0; }", "array length"},
		{"int main() { return 1 + ; }", "unexpected token"},
		{"int main() { if (1) { return 0; }", "end of file"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, BaseOptions())
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestNoMain(t *testing.T) {
	if _, err := Compile("int helper() { return 1; }", BaseOptions()); err == nil {
		t.Error("missing main not rejected")
	}
}

func TestSmallDataPlacement(t *testing.T) {
	src := `
int small;           /* 4 bytes -> sdata */
double dsmall;       /* 8 bytes -> sdata */
int big[16];         /* 64 bytes -> bss */
int main() { small = 1; dsmall = 2.0; big[0] = 3; return 0; }`
	asmText, err := Compile(src, BaseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, ".sdata") {
		t.Error("no .sdata section emitted")
	}
	if !strings.Contains(asmText, ".comm big, 64") {
		t.Errorf("big array not in bss:\n%s", asmText)
	}
}

func TestStackFrameAlignment(t *testing.T) {
	src := `
int peek(int *p) { return *p; }
int main() {
	int locals[13]; /* odd-sized frame */
	locals[0] = 7;
	return peek(&locals[0]);
}`
	facAsm, err := Compile(src, FACOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every frame adjustment must be a multiple of 64.
	for _, line := range strings.Split(facAsm, "\n") {
		line = strings.TrimSpace(line)
		const prefix = "addi $sp, $sp, -"
		if strings.HasPrefix(line, prefix) {
			n := 0
			for _, c := range line[len(prefix):] {
				if c < '0' || c > '9' {
					break
				}
				n = n*10 + int(c-'0')
			}
			if n%64 != 0 {
				t.Errorf("frame size %d not 64-aligned: %s", n, line)
			}
		}
	}
}
