package minic

import (
	"fmt"
	"strings"
)

// peephole performs window-local cleanups on the generated assembly text.
// It is deliberately conservative: every rule only fires on adjacent lines
// with no intervening labels or branches, so the transformations are safe
// regardless of control flow. The pass is opt-in (Options.Peephole) so the
// paper-reproduction code shapes stay untouched by default.
//
// Rules:
//  1. store-to-load forwarding:  sw $rX, N($sp) ; lw $rY, N($sp)
//     becomes sw $rX, N($sp) ; move $rY, $rX (and the move drops when X=Y)
//  2. self-move elimination:     move $rX, $rX  ->  (removed)
//  3. jump-to-next elimination:  j .L ; .L:     ->  .L:
func peephole(asmText string) string {
	lines := strings.Split(asmText, "\n")
	out := make([]string, 0, len(lines))

	for i := 0; i < len(lines); i++ {
		line := lines[i]
		trimmed := strings.TrimSpace(line)

		// Rule 3: j .L followed immediately by the label .L:.
		if target, ok := parseJump(trimmed); ok && i+1 < len(lines) {
			next := strings.TrimSpace(lines[i+1])
			if next == target+":" {
				continue // drop the jump; the label line follows
			}
		}

		// Rule 2: move $x, $x.
		if dst, src, ok := parseMove(trimmed); ok && dst == src {
			continue
		}

		// Rule 1: sw/lw forwarding through the same stack slot.
		if len(out) > 0 {
			if sReg, sOff, ok := parseSpMem(strings.TrimSpace(out[len(out)-1]), "sw"); ok {
				if lReg, lOff, ok2 := parseSpMem(trimmed, "lw"); ok2 && sOff == lOff {
					if lReg == sReg {
						continue // the value is already in the register
					}
					out = append(out, fmt.Sprintf("\tmove %s, %s", lReg, sReg))
					continue
				}
			}
		}

		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// parseJump matches "j LABEL".
func parseJump(line string) (string, bool) {
	rest, ok := strings.CutPrefix(line, "j ")
	if !ok {
		return "", false
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " ,($") {
		return "", false
	}
	if rest[0] >= '0' && rest[0] <= '9' {
		return "", false // numeric target
	}
	return rest, true
}

// parseMove matches "move $dst, $src".
func parseMove(line string) (dst, src string, ok bool) {
	rest, found := strings.CutPrefix(line, "move ")
	if !found {
		return "", "", false
	}
	parts := strings.SplitN(rest, ",", 2)
	if len(parts) != 2 {
		return "", "", false
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), true
}

// parseSpMem matches "<op> $reg, N($sp)".
func parseSpMem(line, op string) (reg, off string, ok bool) {
	rest, found := strings.CutPrefix(line, op+" ")
	if !found {
		return "", "", false
	}
	parts := strings.SplitN(rest, ",", 2)
	if len(parts) != 2 {
		return "", "", false
	}
	reg = strings.TrimSpace(parts[0])
	mem := strings.TrimSpace(parts[1])
	if !strings.HasSuffix(mem, "($sp)") {
		return "", "", false
	}
	off = strings.TrimSuffix(mem, "($sp)")
	if off == "" {
		return "", "", false
	}
	for _, c := range off {
		if c != '-' && (c < '0' || c > '9') {
			return "", "", false
		}
	}
	return reg, off, true
}
