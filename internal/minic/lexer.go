package minic

import (
	"strconv"
	"strings"
)

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole source up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return errf(l.line, "unterminated comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.at(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// punctuators, longest first.
var puncts = []string{
	"<<=", ">>=",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ",", ";", ".", "?", ":",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line := l.line
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: line}, nil
	}
	c := l.peekByte()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && (isIdentStart(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[text] {
			return token{kind: tKeyword, text: text, line: line}, nil
		}
		return token{kind: tIdent, text: text, line: line}, nil

	case isDigit(c):
		start := l.pos
		isFloat := false
		if c == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
			l.pos += 2
			for l.pos < len(l.src) && isHex(l.src[l.pos]) {
				l.pos++
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.peekByte() == '.' && isDigit(l.at(1)) {
				isFloat = true
				l.pos++
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			if l.peekByte() == 'e' || l.peekByte() == 'E' {
				save := l.pos
				l.pos++
				if l.peekByte() == '+' || l.peekByte() == '-' {
					l.pos++
				}
				if isDigit(l.peekByte()) {
					isFloat = true
					for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
						l.pos++
					}
				} else {
					l.pos = save
				}
			}
		}
		text := l.src[start:l.pos]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, errf(line, "bad float literal %q", text)
			}
			return token{kind: tFloatLit, fval: f, line: line}, nil
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil || v > 0xFFFFFFFF {
			return token{}, errf(line, "bad integer literal %q", text)
		}
		return token{kind: tIntLit, ival: v, line: line}, nil

	case c == '\'':
		l.pos++
		var v byte
		if l.peekByte() == '\\' {
			l.pos++
			e, err := unescape(l.peekByte(), line)
			if err != nil {
				return token{}, err
			}
			v = e
			l.pos++
		} else {
			v = l.peekByte()
			l.pos++
		}
		if l.peekByte() != '\'' {
			return token{}, errf(line, "unterminated char literal")
		}
		l.pos++
		return token{kind: tCharLit, ival: int64(v), line: line}, nil

	case c == '"':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errf(line, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				break
			}
			if ch == '\\' {
				l.pos++
				e, err := unescape(l.peekByte(), line)
				if err != nil {
					return token{}, err
				}
				b.WriteByte(e)
				l.pos++
				continue
			}
			if ch == '\n' {
				return token{}, errf(line, "newline in string literal")
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tStrLit, text: b.String(), line: line}, nil
	}

	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tPunct, text: p, line: line}, nil
		}
	}
	return token{}, errf(line, "unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func unescape(c byte, line int) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, errf(line, "bad escape \\%c", c)
}
