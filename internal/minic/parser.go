package minic

type parser struct {
	toks []token
	pos  int
	u    *unit
	opts Options
}

func parse(src string, opts Options) (*unit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		opts: opts,
		u: &unit{
			structs: make(map[string]*structT),
			funcs:   make(map[string]*function),
		},
	}
	declareBuiltins(p.u)
	for !p.atEOF() {
		if err := p.topLevel(); err != nil {
			return nil, err
		}
	}
	return p.u, nil
}

func declareBuiltins(u *unit) {
	b := func(name string, ret *ctype, params ...*ctype) {
		f := &function{name: name, ret: ret, builtin: true}
		for i, t := range params {
			f.params = append(f.params, param{name: string(rune('a' + i)), ty: t})
		}
		u.funcs[name] = f
	}
	charp := ptrTo(typeChar)
	// Only the inline-syscall builtins are predeclared; the rest of the
	// runtime (malloc, rand, memcpy, ...) is MiniC source in the prelude.
	b("print_int", typeVoid, typeInt)
	b("print_char", typeVoid, typeInt)
	b("print_str", typeVoid, charp)
	b("print_double", typeVoid, typeDouble)
	b("exit", typeVoid, typeInt)
	b("sbrk", charp, typeInt)
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tEOF }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == tKeyword && t.text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return errf(p.cur().line, "expected %q, got %q", s, p.cur().String())
}

// atType reports whether the current token starts a type.
func (p *parser) atType() bool {
	return p.isKeyword("int") || p.isKeyword("char") || p.isKeyword("double") ||
		p.isKeyword("void") || p.isKeyword("struct")
}

// baseType parses "int", "char", "double", "void", or "struct Name".
func (p *parser) baseType() (*ctype, error) {
	t := p.cur()
	switch {
	case p.accept("int"):
		return typeInt, nil
	case p.accept("char"):
		return typeChar, nil
	case p.accept("double"):
		return typeDouble, nil
	case p.accept("void"):
		return typeVoid, nil
	case p.accept("struct"):
		name := p.cur()
		if name.kind != tIdent {
			return nil, errf(name.line, "expected struct name")
		}
		p.advance()
		s, ok := p.u.structs[name.text]
		if !ok {
			return nil, errf(name.line, "unknown struct %q", name.text)
		}
		return &ctype{kind: tyStruct, sdef: s}, nil
	}
	return nil, errf(t.line, "expected type, got %q", t.String())
}

// declarator parses "*...name[N][M]..." after a base type.
func (p *parser) declarator(base *ctype) (string, *ctype, error) {
	ty := base
	for p.accept("*") {
		ty = ptrTo(ty)
	}
	nameTok := p.cur()
	if nameTok.kind != tIdent {
		return "", nil, errf(nameTok.line, "expected identifier, got %q", nameTok.String())
	}
	p.advance()
	// Array suffixes, outermost first.
	var dims []int
	for p.accept("[") {
		n := p.cur()
		if n.kind != tIntLit || n.ival <= 0 {
			return "", nil, errf(n.line, "expected positive array length")
		}
		p.advance()
		if err := p.expect("]"); err != nil {
			return "", nil, err
		}
		dims = append(dims, int(n.ival))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		ty = arrayOf(ty, dims[i])
	}
	return nameTok.text, ty, nil
}

// topLevel parses a struct definition, global variable, or function.
func (p *parser) topLevel() error {
	line := p.cur().line
	// struct S { ... };
	if p.isKeyword("struct") && p.toks[p.pos+2].kind == tPunct && p.toks[p.pos+2].text == "{" {
		return p.structDef()
	}
	base, err := p.baseType()
	if err != nil {
		return err
	}
	name, ty, err := p.declarator(base)
	if err != nil {
		return err
	}
	if p.isPunct("(") {
		return p.funcDef(name, ty, line)
	}
	// Global variable(s).
	for {
		if ty.kind == tyVoid {
			return errf(line, "void variable %q", name)
		}
		sym := &symbol{name: name, ty: ty, global: true, reg: -1}
		if p.accept("=") {
			if err := p.globalInit(sym); err != nil {
				return err
			}
		}
		if dup := p.findGlobal(name); dup != nil {
			return errf(line, "duplicate global %q", name)
		}
		p.u.globals = append(p.u.globals, sym)
		if p.accept(",") {
			name, ty, err = p.declarator(base)
			if err != nil {
				return err
			}
			continue
		}
		return p.expect(";")
	}
}

func (p *parser) findGlobal(name string) *symbol {
	for _, g := range p.u.globals {
		if g.name == name {
			return g
		}
	}
	return nil
}

func (p *parser) globalInit(sym *symbol) error {
	t := p.cur()
	neg := false
	if p.accept("-") {
		neg = true
		t = p.cur()
	}
	switch t.kind {
	case tIntLit, tCharLit:
		p.advance()
		v := t.ival
		if neg {
			v = -v
		}
		if sym.ty.kind == tyDouble {
			sym.initF, sym.hasInit = float64(v), true
		} else {
			sym.initI, sym.hasInit = v, true
		}
		return nil
	case tFloatLit:
		p.advance()
		v := t.fval
		if neg {
			v = -v
		}
		if sym.ty.kind != tyDouble {
			return errf(t.line, "float initializer for non-double %q", sym.name)
		}
		sym.initF, sym.hasInit = v, true
		return nil
	}
	return errf(t.line, "unsupported global initializer")
}

func (p *parser) structDef() error {
	p.advance() // struct
	nameTok := p.advance()
	if nameTok.kind != tIdent {
		return errf(nameTok.line, "expected struct name")
	}
	if _, dup := p.u.structs[nameTok.text]; dup {
		return errf(nameTok.line, "duplicate struct %q", nameTok.text)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	s := &structT{name: nameTok.text}
	// Register before field parsing so self-referential pointers work.
	p.u.structs[s.name] = s
	for !p.accept("}") {
		base, err := p.baseType()
		if err != nil {
			return err
		}
		for {
			fname, fty, err := p.declarator(base)
			if err != nil {
				return err
			}
			if fty.kind == tyVoid {
				return errf(nameTok.line, "void field %q", fname)
			}
			if fty.kind == tyStruct && fty.sdef == s {
				return errf(nameTok.line, "struct %q contains itself", s.name)
			}
			s.fields = append(s.fields, field{name: fname, ty: fty})
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	layoutStruct(s, p.opts.AlignStructs, p.opts.MaxStructPad)
	return nil
}

func (p *parser) funcDef(name string, ret *ctype, line int) error {
	if old, ok := p.u.funcs[name]; ok && (old.builtin || old.body != nil) {
		return errf(line, "duplicate function %q", name)
	}
	f := &function{name: name, ret: ret, line: line}
	if err := p.expect("("); err != nil {
		return err
	}
	if !p.accept(")") {
		if p.isKeyword("void") && p.toks[p.pos+1].text == ")" {
			p.advance()
		} else {
			for {
				base, err := p.baseType()
				if err != nil {
					return err
				}
				pname, pty, err := p.declarator(base)
				if err != nil {
					return err
				}
				if pty.kind == tyArray {
					pty = ptrTo(pty.elem) // arrays decay in parameters
				}
				if pty.kind == tyVoid || pty.kind == tyStruct {
					return errf(line, "unsupported parameter type %s", pty)
				}
				f.params = append(f.params, param{name: pname, ty: pty})
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	f.body = body
	p.u.funcs[name] = f
	p.u.order = append(p.u.order, f)
	return nil
}

func (p *parser) block() ([]*stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []*stmt
	for !p.accept("}") {
		if p.atEOF() {
			return nil, errf(p.cur().line, "unexpected end of file in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s...)
	}
	return stmts, nil
}

// statement returns one or more statements (a declaration list expands to
// one sDecl per declarator).
func (p *parser) statement() ([]*stmt, error) {
	line := p.cur().line
	switch {
	case p.atType():
		return p.declStmt()
	case p.isPunct("{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return []*stmt{{op: sBlock, line: line, body: body}}, nil
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		st := &stmt{op: sIf, line: line, cond: cond, body: then}
		if p.accept("else") {
			els, err := p.statement()
			if err != nil {
				return nil, err
			}
			st.elseBody = els
		}
		return []*stmt{st}, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return []*stmt{{op: sWhile, line: line, cond: cond, body: body}}, nil
	case p.accept("do"):
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []*stmt{{op: sDoWhile, line: line, cond: cond, body: body}}, nil
	case p.accept("for"):
		return p.forStmt(line)
	case p.accept("return"):
		st := &stmt{op: sReturn, line: line}
		if !p.isPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.expr = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []*stmt{st}, nil
	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []*stmt{{op: sBreak, line: line}}, nil
	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []*stmt{{op: sContinue, line: line}}, nil
	case p.accept(";"):
		return nil, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return []*stmt{{op: sExpr, line: line, expr: e}}, nil
}

func (p *parser) declStmt() ([]*stmt, error) {
	line := p.cur().line
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	var out []*stmt
	for {
		name, ty, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if ty.kind == tyVoid {
			return nil, errf(line, "void variable %q", name)
		}
		st := &stmt{op: sDecl, line: line, decl: &symbol{name: name, ty: ty, reg: -1}}
		if p.accept("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			st.init = init
		}
		out = append(out, st)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) forStmt(line int) ([]*stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &stmt{op: sFor, line: line}
	if !p.isPunct(";") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.forInit = &stmt{op: sExpr, line: line, expr: e}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.forPost = &stmt{op: sExpr, line: line, expr: e}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	st.body = body
	return []*stmt{st}, nil
}

// Expression parsing: precedence climbing.

func (p *parser) expr() (*expr, error) { return p.assignExpr() }

// compoundOps maps "op=" punctuators to the underlying binary operator.
var compoundOps = map[string]exprOp{
	"+=": eAdd, "-=": eSub, "*=": eMul, "/=": eDiv, "%=": eMod,
	"&=": eBitAnd, "|=": eBitOr, "^=": eBitXor, "<<=": eShl, ">>=": eShr,
}

func (p *parser) assignExpr() (*expr, error) {
	lhs, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	if p.isPunct("=") {
		line := p.cur().line
		p.advance()
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &expr{op: eAssign, line: line, lhs: lhs, rhs: rhs}, nil
	}
	if t := p.cur(); t.kind == tPunct {
		if op, ok := compoundOps[t.text]; ok {
			p.advance()
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			// Desugar "lhs op= rhs" into "lhs = lhs op rhs". The lvalue is
			// evaluated twice, so it must be side-effect free.
			if containsCall(lhs) {
				return nil, errf(t.line, "compound assignment target may not contain a call")
			}
			bin := &expr{op: op, line: t.line, lhs: cloneSyntax(lhs), rhs: rhs}
			return &expr{op: eAssign, line: t.line, lhs: lhs, rhs: bin}, nil
		}
	}
	return lhs, nil
}

// ternaryExpr parses "cond ? a : b" (right associative).
func (p *parser) ternaryExpr() (*expr, error) {
	cond, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	line := p.cur().line
	p.advance()
	thenE, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	elseE, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	return &expr{op: eCond, line: line, lhs: cond, args: []*expr{thenE, elseE}}, nil
}

// containsCall reports whether an (unanalyzed) expression contains a call.
func containsCall(e *expr) bool {
	if e == nil {
		return false
	}
	if e.op == eCall {
		return true
	}
	if containsCall(e.lhs) || containsCall(e.rhs) {
		return true
	}
	for _, a := range e.args {
		if containsCall(a) {
			return true
		}
	}
	return false
}

// cloneSyntax deep-copies a pre-sema expression tree.
func cloneSyntax(e *expr) *expr {
	if e == nil {
		return nil
	}
	c := *e
	c.lhs = cloneSyntax(e.lhs)
	c.rhs = cloneSyntax(e.rhs)
	if e.args != nil {
		c.args = make([]*expr, len(e.args))
		for i, a := range e.args {
			c.args[i] = cloneSyntax(a)
		}
	}
	return &c
}

type binOp struct {
	op   exprOp
	prec int
}

var binOps = map[string]binOp{
	"||": {eLOr, 1},
	"&&": {eLAnd, 2},
	"|":  {eBitOr, 3},
	"^":  {eBitXor, 4},
	"&":  {eBitAnd, 5},
	"==": {eEq, 6}, "!=": {eNe, 6},
	"<": {eLt, 7}, "<=": {eLe, 7}, ">": {eGt, 7}, ">=": {eGe, 7},
	"<<": {eShl, 8}, ">>": {eShr, 8},
	"+": {eAdd, 9}, "-": {eSub, 9},
	"*": {eMul, 10}, "/": {eDiv, 10}, "%": {eMod, 10},
}

func (p *parser) binaryExpr(minPrec int) (*expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		bo, ok := binOps[t.text]
		if !ok || bo.prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binaryExpr(bo.prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &expr{op: bo.op, line: t.line, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) unaryExpr() (*expr, error) {
	t := p.cur()
	switch {
	case p.accept("++"), p.accept("--"):
		// Prefix increment/decrement: desugar to "lhs = lhs +/- 1"
		// (the value is the updated one, as in C).
		lhs, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if containsCall(lhs) {
			return nil, errf(t.line, "increment target may not contain a call")
		}
		op := eAdd
		if t.text == "--" {
			op = eSub
		}
		one := &expr{op: eIntLit, line: t.line, ival: 1}
		bin := &expr{op: op, line: t.line, lhs: cloneSyntax(lhs), rhs: one}
		return &expr{op: eAssign, line: t.line, lhs: lhs, rhs: bin}, nil
	case p.accept("-"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &expr{op: eNeg, line: t.line, lhs: e}, nil
	case p.accept("!"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &expr{op: eNot, line: t.line, lhs: e}, nil
	case p.accept("~"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &expr{op: eBitNot, line: t.line, lhs: e}, nil
	case p.accept("&"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &expr{op: eAddr, line: t.line, lhs: e}, nil
	case p.accept("*"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &expr{op: eDeref, line: t.line, lhs: e}, nil
	case p.accept("sizeof"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if !p.atType() {
			return nil, errf(t.line, "sizeof needs a type")
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		for p.accept("*") {
			base = ptrTo(base)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &expr{op: eIntLit, line: t.line, ival: int64(base.size())}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (*expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &expr{op: eIndex, line: t.line, lhs: e, rhs: idx}
		case p.accept("."):
			name := p.advance()
			if name.kind != tIdent {
				return nil, errf(name.line, "expected field name")
			}
			e = &expr{op: eField, line: t.line, lhs: e, sval: name.text}
		case p.accept("->"):
			name := p.advance()
			if name.kind != tIdent {
				return nil, errf(name.line, "expected field name")
			}
			deref := &expr{op: eDeref, line: t.line, lhs: e}
			e = &expr{op: eField, line: t.line, lhs: deref, sval: name.text}
		case p.accept("++"):
			if containsCall(e) {
				return nil, errf(t.line, "increment target may not contain a call")
			}
			e = &expr{op: ePostInc, line: t.line, lhs: e}
		case p.accept("--"):
			if containsCall(e) {
				return nil, errf(t.line, "increment target may not contain a call")
			}
			e = &expr{op: ePostDec, line: t.line, lhs: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (*expr, error) {
	t := p.cur()
	switch t.kind {
	case tIntLit, tCharLit:
		p.advance()
		return &expr{op: eIntLit, line: t.line, ival: t.ival}, nil
	case tFloatLit:
		p.advance()
		return &expr{op: eFloatLit, line: t.line, fval: t.fval}, nil
	case tStrLit:
		p.advance()
		return &expr{op: eStrLit, line: t.line, sval: t.text}, nil
	case tIdent:
		p.advance()
		if p.accept("(") {
			call := &expr{op: eCall, line: t.line, sval: t.text}
			if !p.accept(")") {
				for {
					arg, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, arg)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &expr{op: eVar, line: t.line, sval: t.text}, nil
	case tPunct:
		if p.accept("(") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errf(t.line, "unexpected token %q", t.String())
}
