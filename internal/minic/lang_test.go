package minic

import (
	"strings"
	"testing"

	"repro/internal/prog"
)

// Tests for the C conveniences layered on the core subset: compound
// assignment, increment/decrement, do-while, and the conditional operator.

func TestCompoundAssignment(t *testing.T) {
	runAllVariants(t, `
int g[4];
int main() {
	int a;
	a = 10;
	a += 5; print_int(a); print_char(' ');
	a -= 3; print_int(a); print_char(' ');
	a *= 2; print_int(a); print_char(' ');
	a /= 4; print_int(a); print_char(' ');
	a %= 4; print_int(a); print_char(' ');
	a <<= 3; print_int(a); print_char(' ');
	a >>= 1; print_int(a); print_char(' ');
	a |= 3; print_int(a); print_char(' ');
	a &= 6; print_int(a); print_char(' ');
	a ^= 5; print_int(a); print_char(' ');
	g[2] = 1;
	g[2] += 41;
	print_int(g[2]);
	return 0;
}`, "15 12 24 6 2 16 8 11 2 7 42")
}

func TestIncrementDecrement(t *testing.T) {
	runAllVariants(t, `
int a[4];
int main() {
	int i; int *p;
	i = 5;
	print_int(i++); print_char(' ');
	print_int(i); print_char(' ');
	print_int(++i); print_char(' ');
	print_int(i--); print_char(' ');
	print_int(--i); print_char(' ');
	a[0] = 10; a[1] = 20; a[2] = 30;
	p = &a[0];
	print_int(*p++); print_char(' ');
	print_int(*p); print_char(' ');
	a[1]++;
	print_int(a[1]);
	return 0;
}`, "5 6 7 7 5 10 20 21")
}

func TestIncrementInLoops(t *testing.T) {
	// ++ as a for-loop post statement, with strength reduction applying.
	runAllVariants(t, `
int v[32];
int main() {
	int i; int sum;
	for (i = 0; i < 32; i++) {
		v[i] = i * 3;
	}
	sum = 0;
	for (i = 0; i < 32; i++) {
		sum += v[i];
	}
	print_int(sum);
	return 0;
}`, "1488")
}

func TestDoWhile(t *testing.T) {
	runAllVariants(t, `
int main() {
	int i; int sum;
	i = 0; sum = 0;
	do {
		sum += i;
		i++;
	} while (i < 5);
	print_int(sum); print_char(' ');
	/* body runs at least once even when the condition is false */
	i = 100;
	do {
		sum = sum + 1000;
	} while (i < 5);
	print_int(sum); print_char(' ');
	/* break and continue */
	i = 0;
	do {
		i++;
		if (i == 2) { continue; }
		if (i == 4) { break; }
		sum += i;
	} while (i < 10);
	print_int(sum);
	return 0;
}`, "10 1010 1014")
}

func TestTernary(t *testing.T) {
	runAllVariants(t, `
int max(int a, int b) { return a > b ? a : b; }
int main() {
	int x;
	double d;
	x = 3;
	print_int(x > 0 ? 1 : -1); print_char(' ');
	print_int(x > 10 ? 1 : -1); print_char(' ');
	print_int(max(4, 9)); print_char(' ');
	print_int(1 ? 2 ? 3 : 4 : 5); print_char(' ');
	d = x > 0 ? 1.5 : 0.25;
	print_double(d); print_char(' ');
	d = x > 10 ? 1 : 0.25;   /* mixed arms unify to double */
	print_double(d);
	return 0;
}`, "1 -1 9 3 1.5 0.25")
}

func TestTernaryWithPointers(t *testing.T) {
	runAllVariants(t, `
int a; int b;
int main() {
	int *p;
	a = 7; b = 9;
	p = a > b ? &a : &b;
	print_int(*p);
	return 0;
}`, "9")
}

func TestNewConstructErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"int f() { return 1; } int main() { int x; x = 0; f() += 1; return 0; }", "may not contain a call"},
		{"int g[4]; int f() { return 0; } int main() { g[f()] += 1; return 0; }", "may not contain a call"},
		{"int g[4]; int f() { return 0; } int main() { g[f()]++; return 0; }", "may not contain a call"},
		{"int main() { 5++; return 0; }", "non-lvalue"},
		{"int main() { double d; d = 1.0; d++; return 0; }", "cannot increment"},
		{"int main() { int x; x = 1 ? 1 : 2.5 > 1.0 ? 0 : 0; return x; }", ""}, // ok, just parse
		{"int main() { do { } while (1)", "expected"},
		{"struct s { int x; }; int main() { struct s v; int x; x = 1 ? v : v; return 0; }", "mismatched"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, BaseOptions())
		if c.want == "" {
			if err != nil {
				t.Errorf("Compile(%q) failed: %v", c.src, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestCompoundOnStructsAndPointers(t *testing.T) {
	runAllVariants(t, `
struct acc { int total; int count; };
struct acc a;
int main() {
	struct acc *p;
	int i;
	p = &a;
	for (i = 1; i <= 4; i++) {
		p->total += i * i;
		p->count++;
	}
	print_int(a.total); print_char(' ');
	print_int(a.count);
	return 0;
}`, "30 4")
}

func TestPostIncUsedAsStatement(t *testing.T) {
	// Common idiom: value discarded entirely.
	src := `
int main() {
	int n;
	n = 0;
	n++; n++; n++;
	n--;
	print_int(n);
	return 0;
}`
	if got := compileRun(t, src, BaseOptions(), prog.DefaultConfig()); got != "2" {
		t.Errorf("output = %q", got)
	}
}

func TestPeephole(t *testing.T) {
	in := "\tsw $t0, 8($sp)\n\tlw $t1, 8($sp)\n\tmove $t2, $t2\n\tj .L9\n.L9:\n\tlw $t3, 12($sp)\n"
	got := peephole(in)
	if strings.Contains(got, "lw $t1, 8($sp)") {
		t.Error("store-to-load not forwarded")
	}
	if !strings.Contains(got, "move $t1, $t0") {
		t.Errorf("forwarding move missing:\n%s", got)
	}
	if strings.Contains(got, "move $t2, $t2") {
		t.Error("self-move survived")
	}
	if strings.Contains(got, "j .L9") {
		t.Error("jump-to-next survived")
	}
	if !strings.Contains(got, "lw $t3, 12($sp)") {
		t.Error("unrelated load removed")
	}
	// Same register store/load: the load disappears entirely.
	in2 := "\tsw $t0, 8($sp)\n\tlw $t0, 8($sp)\n"
	if got2 := peephole(in2); strings.Contains(got2, "lw") || strings.Contains(got2, "move") {
		t.Errorf("same-register reload not eliminated:\n%s", got2)
	}
	// A label between store and load blocks forwarding.
	in3 := "\tsw $t0, 8($sp)\n.L1:\n\tlw $t1, 8($sp)\n"
	if got3 := peephole(in3); !strings.Contains(got3, "lw $t1, 8($sp)") {
		t.Error("forwarding across a label")
	}
}

// TestPeepholePreservesBehaviour runs every workload with the peephole pass
// enabled and checks outputs and an instruction-count reduction.
func TestPeepholePreservesBehaviour(t *testing.T) {
	src := `
int g;
int helper(int a, int b) { return a * b + g; }
int main() {
	int i; int sum;
	g = 3;
	sum = 0;
	for (i = 0; i < 50; i++) {
		sum += helper(i, i + 1);
	}
	print_int(sum);
	return 0;
}`
	opts := BaseOptions()
	plain := compileRun(t, src, opts, prog.DefaultConfig())
	opts.Peephole = true
	peep := compileRun(t, src, opts, prog.DefaultConfig())
	if plain != peep {
		t.Errorf("peephole changed output: %q vs %q", plain, peep)
	}
}
