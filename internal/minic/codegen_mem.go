package minic

// voidVal is the placeholder result of void calls; it is never read.
var voidVal = val{reg: -100}

// memOps maps an element type to load/store mnemonics (const and
// register+register forms).
func memOps(t *ctype) (load, loadX, store, storeX string, fp bool) {
	switch t.kind {
	case tyChar:
		return "lbu", "lbux", "sb", "sbx", false
	case tyDouble:
		return "lfd", "lfdx", "sfd", "sfdx", true
	default:
		return "lw", "lwx", "sw", "swx", false
	}
}

// loadLvalue loads the value of a deref/index/field lvalue.
func (g *gen) loadLvalue(e *expr) (val, error) {
	if !e.ty.isScalar() {
		// Aggregate-typed lvalues (multi-dim array rows, struct values)
		// evaluate to their address.
		return g.addr(e)
	}
	load, loadX, _, _, fp := memOps(e.ty)
	newOut := func() (val, error) {
		if fp {
			return g.allocFP(e.line)
		}
		return g.allocInt(e.line)
	}

	switch e.op {
	case eDeref:
		p, err := g.expr(e.lhs)
		if err != nil {
			return val{}, err
		}
		out, err := newOut()
		if err != nil {
			return val{}, err
		}
		g.emit("%s %s, 0(%s)", load, g.rn(out), g.rn(p))
		g.free(p)
		return out, nil

	case eField:
		base, err := g.addr(e.lhs)
		if err != nil {
			return val{}, err
		}
		out, err := newOut()
		if err != nil {
			return val{}, err
		}
		g.emit("%s %s, %d(%s)", load, g.rn(out), e.field.off, g.rn(base))
		g.free(base)
		return out, nil

	case eIndex:
		base, idxc, scaled, hasScaled, err := g.indexParts(e)
		if err != nil {
			return val{}, err
		}
		elemSize := int32(e.ty.size())
		switch {
		case hasScaled && idxc == 0:
			// Register+register addressing: the shape the paper's compiler
			// emits when strength reduction fails or is off.
			out, err := newOut()
			if err != nil {
				return val{}, err
			}
			g.emit("%s %s, (%s+%s)", loadX, g.rn(out), g.rn(base), g.rn(scaled))
			g.free(base)
			g.free(scaled)
			return out, nil
		case hasScaled:
			// Index constant: pointer = base+scaled, small constant offset.
			sum, err := g.resultReg(base, e.line)
			if err != nil {
				return val{}, err
			}
			g.emit("add %s, %s, %s", g.rn(sum), g.rn(base), g.rn(scaled))
			g.free(scaled)
			if sum != base {
				g.free(base)
			}
			out, err := newOut()
			if err != nil {
				return val{}, err
			}
			g.emit("%s %s, %d(%s)", load, g.rn(out), idxc*elemSize, g.rn(sum))
			g.free(sum)
			return out, nil
		default:
			out, err := newOut()
			if err != nil {
				return val{}, err
			}
			g.emit("%s %s, %d(%s)", load, g.rn(out), idxc*elemSize, g.rn(base))
			g.free(base)
			return out, nil
		}
	}
	return val{}, errf(e.line, "internal: loadLvalue on op %d", e.op)
}

// assign stores rhs into the lvalue lhs and returns the stored value.
func (g *gen) assign(lhs, rhs *expr, line int) (val, error) {
	v, err := g.expr(rhs)
	if err != nil {
		return val{}, err
	}
	return g.storeTo(lhs, v, line)
}

// storeTo writes an already-computed value into the lvalue lhs and returns
// the canonical location of the stored value (the register for
// register-allocated locals, v itself otherwise).
func (g *gen) storeTo(lhs *expr, v val, line int) (val, error) {
	switch lhs.op {
	case eVar:
		sym := lhs.sym
		if sym.reg >= 0 {
			dst := sreg(sym.reg)
			if sym.isFPReg {
				dst = sfreg(sym.reg)
				g.emit("fmov %s, %s", g.rn(dst), g.rn(v))
			} else {
				g.emit("move %s, %s", g.rn(dst), g.rn(v))
			}
			g.free(v)
			return dst, nil
		}
		_, _, store, _, _ := memOps(sym.ty)
		if sym.global {
			g.emit("%s %s, %s", store, g.rn(v), sym.name)
		} else {
			g.emit("%s %s, %d($sp)", store, g.rn(v), sym.frameOff)
		}
		return v, nil

	case eDeref:
		p, err := g.expr(lhs.lhs)
		if err != nil {
			return val{}, err
		}
		_, _, store, _, _ := memOps(lhs.ty)
		g.emit("%s %s, 0(%s)", store, g.rn(v), g.rn(p))
		g.free(p)
		return v, nil

	case eField:
		base, err := g.addr(lhs.lhs)
		if err != nil {
			return val{}, err
		}
		_, _, store, _, _ := memOps(lhs.ty)
		g.emit("%s %s, %d(%s)", store, g.rn(v), lhs.field.off, g.rn(base))
		g.free(base)
		return v, nil

	case eIndex:
		base, idxc, scaled, hasScaled, err := g.indexParts(lhs)
		if err != nil {
			return val{}, err
		}
		_, _, store, storeX, _ := memOps(lhs.ty)
		elemSize := int32(lhs.ty.size())
		switch {
		case hasScaled && idxc == 0:
			g.emit("%s %s, (%s+%s)", storeX, g.rn(v), g.rn(base), g.rn(scaled))
			g.free(base)
			g.free(scaled)
		case hasScaled:
			sum, err := g.resultReg(base, line)
			if err != nil {
				return val{}, err
			}
			g.emit("add %s, %s, %s", g.rn(sum), g.rn(base), g.rn(scaled))
			g.free(scaled)
			if sum != base {
				g.free(base)
			}
			g.emit("%s %s, %d(%s)", store, g.rn(v), idxc*elemSize, g.rn(sum))
			g.free(sum)
		default:
			g.emit("%s %s, %d(%s)", store, g.rn(v), idxc*elemSize, g.rn(base))
			g.free(base)
		}
		return v, nil
	}
	return val{}, errf(line, "internal: assign to op %d", lhs.op)
}

// syscallCodes maps the inline builtin functions to syscall numbers.
var syscallCodes = map[string]int{
	"print_int":    1,
	"print_double": 3,
	"print_str":    4,
	"sbrk":         9,
	"exit":         10,
	"print_char":   11,
}

func (g *gen) call(e *expr) (val, error) {
	// Inline syscall builtins.
	if code, ok := syscallCodes[e.fn.name]; ok && e.fn.builtin {
		if len(e.args) == 1 {
			v, err := g.expr(e.args[0])
			if err != nil {
				return val{}, err
			}
			if v.fp {
				g.emit("fmov $f12, %s", g.rn(v))
			} else {
				g.emit("move $a0, %s", g.rn(v))
			}
			g.free(v)
		}
		g.emit("li $v0, %d", code)
		g.emit("syscall")
		if e.fn.ret.kind == tyVoid {
			return voidVal, nil
		}
		out, err := g.allocInt(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("move %s, $v0", g.rn(out))
		return out, nil
	}

	// Regular call (runtime library functions included).
	slots := argSlots(e.fn)
	argVals := make([]val, len(e.args))
	for i, a := range e.args {
		v, err := g.expr(a)
		if err != nil {
			return val{}, err
		}
		argVals[i] = v
	}
	for i, v := range argVals {
		slot := slots[i]
		switch {
		case slot.intReg >= 0:
			g.emit("move $a%d, %s", slot.intReg, g.rn(v))
		case slot.fpReg >= 0:
			g.emit("fmov $f%d, %s", slot.fpReg, g.rn(v))
		case slot.isFP:
			g.emit("sfd %s, %d($sp)", g.rn(v), slot.stackOff)
		default:
			g.emit("sw %s, %d($sp)", g.rn(v), slot.stackOff)
		}
		g.free(v)
	}

	// Preserve live caller-saved temporaries across the call.
	var savedI, savedF []int
	for i := 0; i < numIntTemps; i++ {
		if g.intInUse[i] {
			g.emit("sw $t%d, %d($sp)", i, g.spillBase+i*4)
			savedI = append(savedI, i)
		}
	}
	for i := 0; i < numFPTemps; i++ {
		if g.fpInUse[i] {
			g.emit("sfd $f%d, %d($sp)", i*2, g.spillBase+numIntTemps*4+i*8)
			savedF = append(savedF, i)
		}
	}

	g.emit("jal %s", e.fn.name)

	for _, i := range savedI {
		g.emit("lw $t%d, %d($sp)", i, g.spillBase+i*4)
	}
	for _, i := range savedF {
		g.emit("lfd $f%d, %d($sp)", i*2, g.spillBase+numIntTemps*4+i*8)
	}

	switch {
	case e.fn.ret.kind == tyVoid:
		return voidVal, nil
	case e.fn.ret.kind == tyDouble:
		out, err := g.allocFP(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("fmov %s, $f0", g.rn(out))
		return out, nil
	default:
		out, err := g.allocInt(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("move %s, $v0", g.rn(out))
		return out, nil
	}
}

func (g *gen) cvt(e *expr) (val, error) {
	v, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	if e.ty.kind == tyDouble && !v.fp {
		out, err := g.allocFP(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("mtc1 %s, %s", g.rn(out), g.rn(v))
		g.emit("cvtdw %s, %s", g.rn(out), g.rn(out))
		g.free(v)
		return out, nil
	}
	if e.ty.kind != tyDouble && v.fp {
		out, err := g.allocInt(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("cvtwd $f18, %s", g.rn(v))
		g.emit("mfc1 %s, $f18", g.rn(out))
		g.free(v)
		return out, nil
	}
	return v, nil
}

func (g *gen) addSub(e *expr) (val, error) {
	ld := e.lhs.ty.decay()
	// Pointer arithmetic.
	if ld.isPtr() {
		if e.op == eSub && e.rhs.ty.decay().isPtr() {
			return g.ptrDiff(e)
		}
		return g.ptrOffset(e)
	}
	if e.ty.kind == tyDouble {
		return g.fpBinary(e)
	}
	// Integer add/sub with immediate folding.
	lv, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	if e.rhs.op == eIntLit {
		c := int32(e.rhs.ival)
		if e.op == eSub {
			c = -c
		}
		if c >= -32768 && c <= 32767 {
			out, err := g.resultReg(lv, e.line)
			if err != nil {
				return val{}, err
			}
			g.emit("addi %s, %s, %d", g.rn(out), g.rn(lv), c)
			if out != lv {
				g.free(lv)
			}
			return out, nil
		}
	}
	rv, err := g.expr(e.rhs)
	if err != nil {
		return val{}, err
	}
	out, err := g.resultReg(lv, e.line)
	if err != nil {
		return val{}, err
	}
	op := "add"
	if e.op == eSub {
		op = "sub"
	}
	g.emit("%s %s, %s, %s", op, g.rn(out), g.rn(lv), g.rn(rv))
	g.free(rv)
	if out != lv {
		g.free(lv)
	}
	return out, nil
}

// ptrOffset emits p +/- i with element-size scaling.
func (g *gen) ptrOffset(e *expr) (val, error) {
	elem := e.lhs.ty.decay().elem
	size := elem.size()
	pv, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	if e.rhs.op == eIntLit {
		c := int32(e.rhs.ival) * int32(size)
		if e.op == eSub {
			c = -c
		}
		if c >= -32768 && c <= 32767 {
			out, err := g.resultReg(pv, e.line)
			if err != nil {
				return val{}, err
			}
			g.emit("addi %s, %s, %d", g.rn(out), g.rn(pv), c)
			if out != pv {
				g.free(pv)
			}
			return out, nil
		}
	}
	iv, err := g.expr(e.rhs)
	if err != nil {
		return val{}, err
	}
	scaled, err := g.scaleIndex(iv, size, e.line)
	if err != nil {
		return val{}, err
	}
	out, err := g.resultReg(pv, e.line)
	if err != nil {
		return val{}, err
	}
	op := "add"
	if e.op == eSub {
		op = "sub"
	}
	g.emit("%s %s, %s, %s", op, g.rn(out), g.rn(pv), g.rn(scaled))
	g.free(scaled)
	if out != pv {
		g.free(pv)
	}
	return out, nil
}

func (g *gen) ptrDiff(e *expr) (val, error) {
	size := e.lhs.ty.decay().elem.size()
	lv, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	rv, err := g.expr(e.rhs)
	if err != nil {
		return val{}, err
	}
	out, err := g.resultReg(lv, e.line)
	if err != nil {
		return val{}, err
	}
	g.emit("sub %s, %s, %s", g.rn(out), g.rn(lv), g.rn(rv))
	g.free(rv)
	if out != lv {
		g.free(lv)
	}
	if size > 1 {
		if size&(size-1) == 0 {
			g.emit("sra %s, %s, %d", g.rn(out), g.rn(out), log2i(size))
		} else {
			g.emit("li $t8, %d", size)
			g.emit("div %s, %s, $t8", g.rn(out), g.rn(out))
		}
	}
	return out, nil
}

func (g *gen) fpBinary(e *expr) (val, error) {
	lv, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	rv, err := g.expr(e.rhs)
	if err != nil {
		return val{}, err
	}
	out, err := g.resultReg(lv, e.line)
	if err != nil {
		return val{}, err
	}
	var op string
	switch e.op {
	case eAdd:
		op = "fadd"
	case eSub:
		op = "fsub"
	case eMul:
		op = "fmul"
	case eDiv:
		op = "fdiv"
	default:
		return val{}, errf(e.line, "internal: fp op %d", e.op)
	}
	g.emit("%s %s, %s, %s", op, g.rn(out), g.rn(lv), g.rn(rv))
	g.free(rv)
	if out != lv {
		g.free(lv)
	}
	return out, nil
}

var intBinOps = map[exprOp]struct {
	op    string
	immOp string // "" if no immediate form
}{
	eMul:    {"mul", ""},
	eDiv:    {"div", ""},
	eMod:    {"rem", ""},
	eShl:    {"sllv", "sll"},
	eShr:    {"srav", "sra"},
	eBitAnd: {"and", "andi"},
	eBitOr:  {"or", "ori"},
	eBitXor: {"xor", "xori"},
}

func (g *gen) binary(e *expr) (val, error) {
	if e.ty.kind == tyDouble {
		return g.fpBinary(e)
	}
	info := intBinOps[e.op]
	lv, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	// Immediate forms.
	if e.rhs.op == eIntLit && info.immOp != "" {
		c := e.rhs.ival
		inRange := c >= 0 && c <= 0xFFFF
		if e.op == eShl || e.op == eShr {
			inRange = c >= 0 && c <= 31
		}
		if inRange {
			out, err := g.resultReg(lv, e.line)
			if err != nil {
				return val{}, err
			}
			g.emit("%s %s, %s, %d", info.immOp, g.rn(out), g.rn(lv), c)
			if out != lv {
				g.free(lv)
			}
			return out, nil
		}
	}
	// Multiplication by a power-of-two constant becomes a shift.
	if e.op == eMul && e.rhs.op == eIntLit && e.rhs.ival > 0 && e.rhs.ival&(e.rhs.ival-1) == 0 {
		out, err := g.resultReg(lv, e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("sll %s, %s, %d", g.rn(out), g.rn(lv), log2i(int(e.rhs.ival)))
		if out != lv {
			g.free(lv)
		}
		return out, nil
	}
	rv, err := g.expr(e.rhs)
	if err != nil {
		return val{}, err
	}
	out, err := g.resultReg(lv, e.line)
	if err != nil {
		return val{}, err
	}
	g.emit("%s %s, %s, %s", info.op, g.rn(out), g.rn(lv), g.rn(rv))
	g.free(rv)
	if out != lv {
		g.free(lv)
	}
	return out, nil
}

// boolValue materializes a 0/1 result.
func (g *gen) boolValue(e *expr) (val, error) {
	switch e.op {
	case eLt, eLe, eGt, eGe, eEq, eNe:
		l, r := e.lhs.ty.decay(), e.rhs.ty.decay()
		if l.kind != tyDouble && r.kind != tyDouble {
			return g.intCmpValue(e, l.isPtr() || r.isPtr())
		}
	}
	// General branchy materialization (doubles, &&, ||, !).
	out, err := g.allocInt(e.line)
	if err != nil {
		return val{}, err
	}
	done := g.newLabel()
	g.emit("li %s, 1", g.rn(out))
	if err := g.branchTrue(e, done); err != nil {
		return val{}, err
	}
	g.emit("li %s, 0", g.rn(out))
	g.label(done)
	return out, nil
}

func (g *gen) intCmpValue(e *expr, unsigned bool) (val, error) {
	lv, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	rv, err := g.expr(e.rhs)
	if err != nil {
		return val{}, err
	}
	slt := "slt"
	if unsigned {
		slt = "sltu"
	}
	out, err := g.allocInt(e.line)
	if err != nil {
		return val{}, err
	}
	o, a, b := g.rn(out), g.rn(lv), g.rn(rv)
	switch e.op {
	case eLt:
		g.emit("%s %s, %s, %s", slt, o, a, b)
	case eGt:
		g.emit("%s %s, %s, %s", slt, o, b, a)
	case eLe:
		g.emit("%s %s, %s, %s", slt, o, b, a)
		g.emit("xori %s, %s, 1", o, o)
	case eGe:
		g.emit("%s %s, %s, %s", slt, o, a, b)
		g.emit("xori %s, %s, 1", o, o)
	case eEq:
		g.emit("xor %s, %s, %s", o, a, b)
		g.emit("sltiu %s, %s, 1", o, o)
	case eNe:
		g.emit("xor %s, %s, %s", o, a, b)
		g.emit("sltu %s, $zero, %s", o, o)
	}
	g.free(lv)
	g.free(rv)
	return out, nil
}

// condValue materializes "cond ? a : b" through branches.
func (g *gen) condValue(e *expr) (val, error) {
	var out val
	var err error
	if e.ty.kind == tyDouble {
		out, err = g.allocFP(e.line)
	} else {
		out, err = g.allocInt(e.line)
	}
	if err != nil {
		return val{}, err
	}
	elseL, doneL := g.newLabel(), g.newLabel()
	if err := g.branchFalse(e.lhs, elseL); err != nil {
		return val{}, err
	}
	tv, err := g.expr(e.args[0])
	if err != nil {
		return val{}, err
	}
	if out.fp {
		g.emit("fmov %s, %s", g.rn(out), g.rn(tv))
	} else {
		g.emit("move %s, %s", g.rn(out), g.rn(tv))
	}
	g.free(tv)
	g.emit("j %s", doneL)
	g.label(elseL)
	ev, err := g.expr(e.args[1])
	if err != nil {
		return val{}, err
	}
	if out.fp {
		g.emit("fmov %s, %s", g.rn(out), g.rn(ev))
	} else {
		g.emit("move %s, %s", g.rn(out), g.rn(ev))
	}
	g.free(ev)
	g.label(doneL)
	return out, nil
}

// postIncDec implements lhs++ / lhs-- (the result is the old value).
func (g *gen) postIncDec(e *expr, negative bool) (val, error) {
	delta := int32(1)
	if t := e.lhs.ty.decay(); t.isPtr() {
		delta = int32(t.elem.size())
	}
	if negative {
		delta = -delta
	}
	cur, err := g.expr(e.lhs)
	if err != nil {
		return val{}, err
	}
	old, err := g.allocInt(e.line)
	if err != nil {
		return val{}, err
	}
	g.emit("move %s, %s", g.rn(old), g.rn(cur))
	if cur.isTemp() {
		g.emit("addi %s, %s, %d", g.rn(cur), g.rn(cur), delta)
		if _, err := g.storeTo(e.lhs, cur, e.line); err != nil {
			return val{}, err
		}
		g.free(cur)
		return old, nil
	}
	nv, err := g.allocInt(e.line)
	if err != nil {
		return val{}, err
	}
	g.emit("addi %s, %s, %d", g.rn(nv), g.rn(cur), delta)
	if _, err := g.storeTo(e.lhs, nv, e.line); err != nil {
		return val{}, err
	}
	g.free(nv)
	return old, nil
}
