package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/prog"
)

// Differential testing: generate random MiniC programs whose results the
// generator computes itself (with int32 semantics), then compile, assemble,
// link, and execute them on the emulator under every toolchain variant and
// compare. This exercises expression codegen (immediates, comparisons,
// shifts, spills), control flow, array addressing, register allocation
// pressure, and the strength-reduction pass against an independent model.

type dgen struct {
	r    *rand.Rand
	vars []string
	vals map[string]int32
	arr  []int32 // shadow of the global array g[16]
	b    strings.Builder
}

func (g *dgen) freshVar() string {
	name := fmt.Sprintf("v%d", len(g.vars))
	g.vars = append(g.vars, name)
	return name
}

// expr generates a random expression of bounded depth and returns its
// MiniC text and its value under int32 evaluation.
func (g *dgen) expr(depth int) (string, int32) {
	if depth <= 0 || g.r.Intn(3) == 0 {
		// Leaf: literal, variable, or array element.
		switch g.r.Intn(3) {
		case 0:
			v := int32(g.r.Intn(2001) - 1000)
			if g.r.Intn(8) == 0 { // occasionally large
				v = int32(g.r.Uint32())
			}
			if v < 0 {
				return fmt.Sprintf("(%d)", v), v
			}
			return fmt.Sprintf("%d", v), v
		case 1:
			if len(g.vars) > 0 {
				name := g.vars[g.r.Intn(len(g.vars))]
				return name, g.vals[name]
			}
			return "7", 7
		default:
			idx := g.r.Intn(len(g.arr))
			return fmt.Sprintf("g[%d]", idx), g.arr[idx]
		}
	}
	a, av := g.expr(depth - 1)
	b, bv := g.expr(depth - 1)
	switch g.r.Intn(13) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b), av + bv
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b), av - bv
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b), av * bv
	case 3:
		// Safe division: force a nonzero literal divisor.
		d := int32(g.r.Intn(99) + 1)
		// Avoid the INT_MIN / -1 trap by keeping divisors positive.
		return fmt.Sprintf("(%s / %d)", a, d), div32(av, d)
	case 4:
		d := int32(g.r.Intn(99) + 1)
		return fmt.Sprintf("(%s %% %d)", a, d), rem32(av, d)
	case 5:
		sh := uint(g.r.Intn(31))
		return fmt.Sprintf("(%s << %d)", a, sh), av << sh
	case 6:
		sh := uint(g.r.Intn(31))
		return fmt.Sprintf("(%s >> %d)", a, sh), av >> sh
	case 7:
		return fmt.Sprintf("(%s & %s)", a, b), av & bv
	case 8:
		return fmt.Sprintf("(%s | %s)", a, b), av | bv
	case 9:
		return fmt.Sprintf("(%s ^ %s)", a, b), av ^ bv
	case 10:
		cmp := []string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", a, cmp, b), b2i(cmp32(cmp, av, bv))
	case 11:
		// Ternary over a third subexpression.
		c, cv := g.expr(depth - 1)
		if cv != 0 {
			return fmt.Sprintf("(%s ? %s : %s)", c, a, b), av
		}
		return fmt.Sprintf("(%s ? %s : %s)", c, a, b), bv
	default:
		return fmt.Sprintf("(-%s)", a), -av
	}
}

func div32(a, b int32) int32 { return a / b }
func rem32(a, b int32) int32 { return a % b }

func cmp32(op string, a, b int32) bool {
	switch op {
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	case "==":
		return a == b
	}
	return a != b
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// stmt generates one statement and updates the shadow state.
func (g *dgen) stmt(depth int) {
	switch g.r.Intn(9) {
	case 0, 1: // new variable
		e, v := g.expr(3)
		name := g.freshVar()
		fmt.Fprintf(&g.b, "\tint %s; %s = %s;\n", name, name, e)
		g.vals[name] = v
	case 2: // reassign
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		name := g.vars[g.r.Intn(len(g.vars))]
		e, v := g.expr(3)
		fmt.Fprintf(&g.b, "\t%s = %s;\n", name, e)
		g.vals[name] = v
	case 3: // array store at constant index
		idx := g.r.Intn(len(g.arr))
		e, v := g.expr(2)
		fmt.Fprintf(&g.b, "\tg[%d] = %s;\n", idx, e)
		g.arr[idx] = v
	case 4: // if/else, condition evaluated by the shadow model
		ce, cv := g.expr(2)
		te, tv := g.expr(2)
		ee, ev := g.expr(2)
		name := g.freshVar()
		fmt.Fprintf(&g.b, "\tint %s;\n\tif (%s) { %s = %s; } else { %s = %s; }\n",
			name, ce, name, te, name, ee)
		if cv != 0 {
			g.vals[name] = tv
		} else {
			g.vals[name] = ev
		}
	case 6: // compound assignment to an existing variable
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		name := g.vars[g.r.Intn(len(g.vars))]
		e, v := g.expr(2)
		switch g.r.Intn(4) {
		case 0:
			fmt.Fprintf(&g.b, "\t%s += %s;\n", name, e)
			g.vals[name] += v
		case 1:
			fmt.Fprintf(&g.b, "\t%s -= %s;\n", name, e)
			g.vals[name] -= v
		case 2:
			fmt.Fprintf(&g.b, "\t%s ^= %s;\n", name, e)
			g.vals[name] ^= v
		default:
			fmt.Fprintf(&g.b, "\t%s *= %s;\n", name, e)
			g.vals[name] *= v
		}
	case 7: // increment/decrement statement
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		name := g.vars[g.r.Intn(len(g.vars))]
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "\t%s++;\n", name)
			g.vals[name]++
		} else {
			fmt.Fprintf(&g.b, "\t--%s;\n", name)
			g.vals[name]--
		}
	case 8: // do-while accumulation (runs at least once)
		if depth <= 0 {
			g.stmt(0)
			return
		}
		n := int32(g.r.Intn(6) + 1)
		name := g.freshVar()
		fmt.Fprintf(&g.b, "\tint %s; int c%s;\n\t%s = 0; c%s = 0;\n", name, name, name, name)
		fmt.Fprintf(&g.b, "\tdo { %s += c%s * 3 + 1; c%s++; } while (c%s < %d);\n",
			name, name, name, name, n)
		var acc int32
		for c := int32(0); c < n || c == 0; c++ {
			acc += c*3 + 1
			if c+1 >= n {
				break
			}
		}
		g.vals[name] = acc
	case 5: // counted loop accumulating into a fresh variable
		if depth <= 0 {
			g.stmt(0)
			return
		}
		n := g.r.Intn(7) + 1
		step, stepv := g.expr(1)
		name := g.freshVar()
		fmt.Fprintf(&g.b, "\tint %s; int i%s;\n\t%s = 0;\n", name, name, name)
		fmt.Fprintf(&g.b, "\tfor (i%s = 0; i%s < %d; i%s = i%s + 1) { %s = %s + g[i%s] + %s; }\n",
			name, name, n, name, name, name, name, name, step)
		var acc int32
		for i := 0; i < n; i++ {
			acc += g.arr[i] + stepv
		}
		g.vals[name] = acc
	}
}

// generate builds one random program and its expected output.
func generateProgram(seed int64) (src string, expected string) {
	g := &dgen{
		r:    rand.New(rand.NewSource(seed)),
		vals: make(map[string]int32),
		arr:  make([]int32, 16),
	}
	g.b.WriteString("int g[16];\nint main() {\n")
	// Seed the array.
	for i := range g.arr {
		v := int32(g.r.Intn(1000) - 500)
		g.arr[i] = v
		fmt.Fprintf(&g.b, "\tg[%d] = %d;\n", i, v)
	}
	nStmts := 4 + g.r.Intn(12)
	for i := 0; i < nStmts; i++ {
		g.stmt(1)
	}
	// Print a digest of all variables and the array.
	var digest int32
	for i, name := range g.vars {
		digest += g.vals[name] * int32(i+1)
	}
	for i, v := range g.arr {
		digest ^= v + int32(i)
	}
	g.b.WriteString("\tint digest; digest = 0;\n")
	for i, name := range g.vars {
		fmt.Fprintf(&g.b, "\tdigest = digest + %s * %d;\n", name, i+1)
	}
	for i := range g.arr {
		fmt.Fprintf(&g.b, "\tdigest = digest ^ (g[%d] + %d);\n", i, i)
	}
	g.b.WriteString("\tprint_int(digest);\n\treturn 0;\n}\n")
	return g.b.String(), fmt.Sprintf("%d", digest)
}

func runDiff(t *testing.T, src string, opts Options, link prog.Config) string {
	t.Helper()
	asmText, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("Compile: %v\n--- source ---\n%s", err, src)
	}
	o, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatalf("Assemble: %v\n--- source ---\n%s", err, src)
	}
	p, err := prog.Link(o, link)
	if err != nil {
		t.Fatalf("Link: %v\n--- source ---\n%s", err, src)
	}
	e := emu.New(p)
	e.MaxInsts = 10_000_000
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v\n--- source ---\n%s", err, src)
	}
	return e.Out.String()
}

// TestDifferentialRandomPrograms compiles and executes randomly generated
// programs and compares against the generator's own int32 evaluation, under
// all four toolchain variants.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 25
	}
	facLink := prog.DefaultConfig()
	facLink.AlignGP = true
	variants := []struct {
		name string
		opts Options
		link prog.Config
	}{
		{"base", BaseOptions(), prog.DefaultConfig()},
		{"base-nosr", func() Options { o := BaseOptions(); o.StrengthReduce = false; return o }(), prog.DefaultConfig()},
		{"fac", FACOptions(), facLink},
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src, want := generateProgram(seed)
		for _, v := range variants {
			got := runDiff(t, src, v.opts, v.link)
			if got != want {
				t.Fatalf("seed %d toolchain %s: got %q, want %q\n--- source ---\n%s",
					seed, v.name, got, want, src)
			}
		}
	}
}
