package minic

import "fmt"

// runtimePrelude returns the MiniC source of the runtime library. The
// dynamic allocator is a bump allocator over the sbrk syscall whose
// alignment is the paper's software-support knob (8 bytes stock, 32 bytes
// with fast-address-calculation optimizations). free is a no-op; the
// benchmark workloads bound their live heap.
func runtimePrelude(mallocAlign int) string {
	return fmt.Sprintf(`
int __rt_seed;
char *__rt_bump;
int __rt_avail;

char *malloc(int n) {
	char *p;
	int a;
	a = %d;
	n = (n + a - 1) & ~(a - 1);
	if (__rt_avail < n) {
		int chunk;
		chunk = 1 << 16;
		if (chunk < n) {
			chunk = n;
		}
		__rt_bump = sbrk(chunk);
		__rt_avail = chunk;
	}
	p = __rt_bump;
	__rt_bump = __rt_bump + n;
	__rt_avail = __rt_avail - n;
	return p;
}

void free(char *p) {
}

void srand(int s) {
	__rt_seed = s;
}

int rand() {
	__rt_seed = __rt_seed * 1103515245 + 12345;
	return (__rt_seed >> 16) & 32767;
}

void memset(char *d, int v, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		d[i] = v;
	}
}

void memcpy(char *d, char *s, int n) {
	int i;
	for (i = 0; i < n; i = i + 1) {
		d[i] = s[i];
	}
}

int strlen(char *s) {
	int n;
	n = 0;
	while (s[n]) {
		n = n + 1;
	}
	return n;
}

int strcmp(char *a, char *b) {
	int i;
	i = 0;
	while (a[i] && a[i] == b[i]) {
		i = i + 1;
	}
	return a[i] - b[i];
}
`, mallocAlign)
}
