// Package minic implements MCC, a small C-subset compiler targeting the
// extended MIPS-like ISA of this study. It stands in for the paper's GNU GCC
// 2.6 toolchain: it produces the same code shapes the paper analyses
// (global-pointer, stack-pointer, and general-pointer addressing;
// register+register array indexing when strength reduction is off; index
// constants; structure offsets) and implements the paper's Section 4
// software support (stack-frame, static, structure, and dynamic allocation
// alignment) behind options.
//
// Language: int (32-bit), char (8-bit), double (64-bit), pointers, fixed
// arrays, structs; functions; if/else, while, for, break, continue, return;
// the usual C operators with short-circuit && and ||; string and character
// literals; sizeof. No casts (pointer types convert implicitly), no
// unsigned, no typedef, no preprocessor.
package minic

import "fmt"

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tIntLit
	tCharLit
	tStrLit
	tFloatLit
	tPunct
	tKeyword
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of file"
	case tIntLit:
		return fmt.Sprintf("%d", t.ival)
	case tFloatLit:
		return fmt.Sprintf("%g", t.fval)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "double": true, "void": true,
	"struct": true, "if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
}

// Error is a compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
